#include <gtest/gtest.h>

#include <set>

#include "graph/graph.h"
#include "graph/path_utils.h"
#include "graph/road_network.h"
#include "graph/shortest_path.h"
#include "graph/temporal_graph.h"

namespace tpr::graph {
namespace {

// A 2x2 square: 0-1 / 2-3 with two-way streets all around.
RoadNetwork SquareNetwork() {
  RoadNetwork net;
  net.AddNode(0, 0);
  net.AddNode(100, 0);
  net.AddNode(0, 100);
  net.AddNode(100, 100);
  auto add = [&](int a, int b) {
    auto e = net.AddEdge(a, b, RoadType::kResidential, 1, false, false, 0);
    ASSERT_TRUE(e.ok());
  };
  add(0, 1); add(1, 0);
  add(0, 2); add(2, 0);
  add(1, 3); add(3, 1);
  add(2, 3); add(3, 2);
  return net;
}

TEST(GraphTest, AddEdgeUndirectedAddsBothArcs) {
  Graph g(3);
  g.AddEdge(0, 1);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.num_arcs(), 2u);
}

TEST(GraphTest, DirectedEdgeIsOneWay) {
  Graph g(2);
  g.AddEdge(0, 1, 1.0f, /*undirected=*/false);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
}

TEST(RoadNetworkTest, EdgeLengthFromCoordinates) {
  RoadNetwork net;
  net.AddNode(0, 0);
  net.AddNode(300, 400);
  auto e = net.AddEdge(0, 1, RoadType::kPrimary, 2, false, false, 0);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(net.edge(*e).length_m, 500.0, 1e-6);
}

TEST(RoadNetworkTest, RejectsBadEndpointsAndLanes) {
  RoadNetwork net;
  net.AddNode(0, 0);
  EXPECT_FALSE(net.AddEdge(0, 5, RoadType::kPrimary, 2, false, false, 0).ok());
  net.AddNode(1, 1);
  EXPECT_FALSE(net.AddEdge(0, 1, RoadType::kPrimary, 0, false, false, 0).ok());
  EXPECT_FALSE(
      net.AddEdge(0, 1, RoadType::kPrimary, kMaxLanes + 1, false, false, 0)
          .ok());
}

TEST(RoadNetworkTest, ValidatePathChecksAdjacency) {
  RoadNetwork net = SquareNetwork();
  // 0->1 (edge 0) then 1->3 (edge 4).
  EXPECT_TRUE(net.ValidatePath({0, 4}).ok());
  // 0->1 then 2->3 is not adjacent.
  EXPECT_FALSE(net.ValidatePath({0, 6}).ok());
  EXPECT_FALSE(net.ValidatePath({}).ok());
  EXPECT_FALSE(net.ValidatePath({99}).ok());
}

TEST(RoadNetworkTest, PathLengthSumsEdges) {
  RoadNetwork net = SquareNetwork();
  EXPECT_NEAR(net.PathLength({0, 4}), 200.0, 1e-6);
}

TEST(RoadNetworkTest, InOutEdgesConsistent) {
  RoadNetwork net = SquareNetwork();
  for (int v = 0; v < net.num_nodes(); ++v) {
    for (int eid : net.OutEdges(v)) EXPECT_EQ(net.edge(eid).from, v);
    for (int eid : net.InEdges(v)) EXPECT_EQ(net.edge(eid).to, v);
  }
}

TEST(RoadNetworkTest, TopologyGraphIsUndirectedWithoutDuplicates) {
  RoadNetwork net = SquareNetwork();
  Graph topo = net.BuildTopologyGraph();
  EXPECT_EQ(topo.num_nodes(), 4);
  // 4 undirected streets -> 8 arcs (two-way duplicates collapsed).
  EXPECT_EQ(topo.num_arcs(), 8u);
}

TEST(ShortestPathTest, FindsDirectRoute) {
  RoadNetwork net = SquareNetwork();
  auto result = ShortestPath(net, 0, 3, [&](int e) {
    return net.edge(e).length_m;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->edges.size(), 2u);
  EXPECT_NEAR(result->cost, 200.0, 1e-6);
  EXPECT_TRUE(net.ValidatePath(result->edges).ok());
}

TEST(ShortestPathTest, UnreachableReturnsNotFound) {
  RoadNetwork net;
  net.AddNode(0, 0);
  net.AddNode(10, 0);
  auto result = ShortestPath(net, 0, 1, [](int) { return 1.0; });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ShortestPathTest, RespectsEdgeWeights) {
  RoadNetwork net = SquareNetwork();
  // Make the 0->1 edge prohibitively expensive; the path must go via 2.
  auto result = ShortestPath(net, 0, 3, [&](int e) {
    return e == 0 ? 1e9 : net.edge(e).length_m;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(net.edge(result->edges.front()).to, 2);
}

TEST(ShortestPathTest, TimeDependentUsesEntryTimes) {
  RoadNetwork net = SquareNetwork();
  // Cost doubles after 100 seconds; a two-edge path pays the higher rate
  // on its second edge.
  auto cost = [&](int e, double t) {
    return net.edge(e).length_m * (t >= 100.0 ? 2.0 : 1.0) / 1.0;
  };
  auto result = TimeDependentFastestPath(net, 0, 3, 0.0, cost);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->cost, 100.0 + 200.0, 1e-6);
}

TEST(ShortestPathTest, KAlternativesAreDistinctAndValid) {
  RoadNetwork net = SquareNetwork();
  auto alts = KAlternativePaths(net, 0, 3, 2, [&](int e) {
    return net.edge(e).length_m;
  });
  ASSERT_TRUE(alts.ok());
  ASSERT_GE(alts->size(), 2u);
  EXPECT_NE((*alts)[0].edges, (*alts)[1].edges);
  for (const auto& alt : *alts) {
    EXPECT_TRUE(net.ValidatePath(alt.edges).ok());
  }
}

TEST(PathUtilsTest, SimilarityBounds) {
  RoadNetwork net = SquareNetwork();
  Path a = {0, 4};
  Path b = {2, 6};  // 0->2->3
  EXPECT_DOUBLE_EQ(PathSimilarity(net, a, a), 1.0);
  EXPECT_DOUBLE_EQ(PathSimilarity(net, a, b), 0.0);
  EXPECT_EQ(SharedEdgeCount(a, b), 0);
  EXPECT_EQ(SharedEdgeCount(a, a), 2);
}

TEST(PathUtilsTest, JaccardPartialOverlap) {
  Path a = {1, 2, 3};
  Path b = {3, 4};
  EXPECT_DOUBLE_EQ(PathJaccard(a, b), 0.25);  // |{3}| / |{1,2,3,4}|
}

TEST(TemporalGraphTest, NodeIdRoundTrip) {
  TemporalGraphConfig cfg;
  cfg.slots_per_day = 288;
  EXPECT_EQ(cfg.num_nodes(), 2016);
  // Monday 00:06 -> day 0, slot 1 (5-minute slots).
  EXPECT_EQ(TemporalNodeIdForTime(cfg, 6 * 60), 1);
  // Tuesday 00:00.
  EXPECT_EQ(TemporalNodeIdForTime(cfg, 24 * 3600), 288);
  // Wraps weekly.
  EXPECT_EQ(TemporalNodeIdForTime(cfg, 7 * 24 * 3600 + 6 * 60), 1);
  // Negative times wrap too.
  EXPECT_EQ(TemporalNodeIdForTime(cfg, -1),
            TemporalNodeIdForTime(cfg, 7 * 24 * 3600 - 1));
}

TEST(TemporalGraphTest, ConnectivityStructure) {
  TemporalGraphConfig cfg;
  cfg.slots_per_day = 24;
  cfg.days_per_week = 7;
  Graph g = BuildTemporalGraph(cfg);
  EXPECT_EQ(g.num_nodes(), 24 * 7);
  // Adjacent slots within a day.
  EXPECT_TRUE(g.HasEdge(TemporalNodeId(cfg, 0, 0), TemporalNodeId(cfg, 0, 1)));
  // Same slot on neighboring days.
  EXPECT_TRUE(g.HasEdge(TemporalNodeId(cfg, 0, 5), TemporalNodeId(cfg, 1, 5)));
  // Sunday -> Monday weekly wrap.
  EXPECT_TRUE(g.HasEdge(TemporalNodeId(cfg, 6, 5), TemporalNodeId(cfg, 0, 5)));
  // Midnight continuity.
  EXPECT_TRUE(
      g.HasEdge(TemporalNodeId(cfg, 0, 23), TemporalNodeId(cfg, 1, 0)));
  // No edge between unrelated slots.
  EXPECT_FALSE(
      g.HasEdge(TemporalNodeId(cfg, 0, 0), TemporalNodeId(cfg, 3, 12)));
}

// Property sweep: every temporal-graph node has degree >= 3 (two daily
// neighbors are guaranteed except at day boundaries, which connect
// across days; plus periodicity links).
class TemporalGraphDegreeTest : public ::testing::TestWithParam<int> {};

TEST_P(TemporalGraphDegreeTest, AllNodesConnected) {
  TemporalGraphConfig cfg;
  cfg.slots_per_day = GetParam();
  Graph g = BuildTemporalGraph(cfg);
  for (int v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(g.Neighbors(v).size(), 3u) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(SlotCounts, TemporalGraphDegreeTest,
                         ::testing::Values(24, 96, 288));

}  // namespace
}  // namespace tpr::graph
