#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <queue>
#include <set>
#include <string>
#include <utility>

#include "graph/path_utils.h"
#include "graph/shortest_path.h"

#include "synth/city_generator.h"
#include "synth/dataset.h"
#include "synth/fleet.h"
#include "synth/gps.h"
#include "synth/presets.h"
#include "synth/regime.h"
#include "synth/traffic_model.h"
#include "synth/weak_labels.h"

namespace tpr::synth {
namespace {

constexpr int64_t kHourS = 3600;
constexpr int64_t kDayS = 24 * kHourS;

CityConfig SmallCity() {
  CityConfig cfg;
  cfg.grid_width = 8;
  cfg.grid_height = 8;
  cfg.seed = 5;
  return cfg;
}

// BFS reachability over directed edges.
int CountReachable(const graph::RoadNetwork& net, int start, bool forward) {
  std::vector<char> seen(net.num_nodes(), 0);
  std::queue<int> q;
  q.push(start);
  seen[start] = 1;
  int count = 1;
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int eid : forward ? net.OutEdges(u) : net.InEdges(u)) {
      const int v = forward ? net.edge(eid).to : net.edge(eid).from;
      if (!seen[v]) {
        seen[v] = 1;
        ++count;
        q.push(v);
      }
    }
  }
  return count;
}

TEST(CityGeneratorTest, RejectsDegenerateGrid) {
  CityConfig cfg;
  cfg.grid_width = 2;
  EXPECT_FALSE(GenerateCity(cfg).ok());
}

TEST(CityGeneratorTest, ProducesStronglyConnectedNetwork) {
  auto net = GenerateCity(SmallCity());
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->num_nodes(), 64);
  EXPECT_GT(net->num_edges(), 100);
  EXPECT_EQ(CountReachable(*net, 0, true), net->num_nodes());
  EXPECT_EQ(CountReachable(*net, 0, false), net->num_nodes());
}

TEST(CityGeneratorTest, ContainsRoadHierarchy) {
  auto net = GenerateCity(SmallCity());
  ASSERT_TRUE(net.ok());
  std::set<graph::RoadType> types;
  for (const auto& e : net->edges()) types.insert(e.road_type);
  EXPECT_TRUE(types.count(graph::RoadType::kHighway));
  EXPECT_TRUE(types.count(graph::RoadType::kPrimary));
  EXPECT_TRUE(types.count(graph::RoadType::kResidential));
}

TEST(CityGeneratorTest, DeterministicForSeed) {
  auto a = GenerateCity(SmallCity());
  auto b = GenerateCity(SmallCity());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_edges(), b->num_edges());
  for (int e = 0; e < a->num_edges(); ++e) {
    EXPECT_EQ(a->edge(e).from, b->edge(e).from);
    EXPECT_EQ(a->edge(e).road_type, b->edge(e).road_type);
  }
}

TEST(CityGeneratorTest, ZonesOrderedByDistanceFromCenter) {
  auto net = GenerateCity(SmallCity());
  ASSERT_TRUE(net.ok());
  std::set<int> zones;
  for (const auto& e : net->edges()) zones.insert(e.zone);
  EXPECT_GE(zones.size(), 2u);
  for (const auto& e : net->edges()) {
    EXPECT_GE(e.zone, 0);
    EXPECT_LE(e.zone, 2);
  }
}

class TrafficModelTest : public ::testing::Test {
 protected:
  TrafficModelTest() {
    auto net = GenerateCity(SmallCity());
    network_ = std::make_shared<graph::RoadNetwork>(std::move(*net));
    model_ = std::make_unique<TrafficModel>(network_.get(), TrafficConfig{});
  }

  std::shared_ptr<graph::RoadNetwork> network_;
  std::unique_ptr<TrafficModel> model_;
};

TEST_F(TrafficModelTest, PeakSlowerThanOffPeak) {
  // Monday 08:00 (peak) vs Monday 12:00 (off-peak).
  const double peak = 8 * kHourS;
  const double noon = 12.5 * kHourS;
  for (int e = 0; e < std::min(20, network_->num_edges()); ++e) {
    EXPECT_LE(model_->CongestionMultiplier(e, peak),
              model_->CongestionMultiplier(e, noon));
  }
}

TEST_F(TrafficModelTest, WeekendMilderThanWeekday) {
  const double mon8 = 8 * kHourS;
  const double sat8 = 5 * kDayS + 8 * kHourS;
  EXPECT_GT(model_->CityCongestionIndex(mon8),
            model_->CityCongestionIndex(sat8));
}

TEST_F(TrafficModelTest, MultiplierBounded) {
  for (int e = 0; e < std::min(30, network_->num_edges()); ++e) {
    for (double t = 0; t < 7 * kDayS; t += 3601.0) {
      const double m = model_->CongestionMultiplier(e, t);
      EXPECT_GT(m, 0.0);
      EXPECT_LE(m, 1.0);
    }
  }
}

TEST_F(TrafficModelTest, TravelTimePositiveAndAdditive) {
  // A longer path takes longer; per-edge times are positive.
  const int e = 0;
  EXPECT_GT(model_->TravelTime(e, 0.0), 0.0);
  graph::Path one = {network_->OutEdges(0)[0]};
  const double t1 = model_->PathTravelTime(one, 0.0);
  EXPECT_GT(t1, 0.0);
}

TEST_F(TrafficModelTest, FifoProperty) {
  // Departing later never yields an earlier arrival (needed by the
  // time-dependent Dijkstra). Sampled over edges and times.
  for (int e = 0; e < std::min(10, network_->num_edges()); ++e) {
    for (double t = 6 * kHourS; t < 10 * kHourS; t += 600.0) {
      const double arrive1 = t + model_->TravelTime(e, t);
      const double t2 = t + 300.0;
      const double arrive2 = t2 + model_->TravelTime(e, t2);
      EXPECT_LE(arrive1, arrive2 + 1e-6);
    }
  }
}

TEST_F(TrafficModelTest, HigherClassRoadsAreFaster) {
  EXPECT_GT(BaseSpeedForType(graph::RoadType::kHighway),
            BaseSpeedForType(graph::RoadType::kPrimary));
  EXPECT_GT(BaseSpeedForType(graph::RoadType::kPrimary),
            BaseSpeedForType(graph::RoadType::kResidential));
}

TEST(WeakLabelTest, PopLabelWindows) {
  // Monday 08:00 -> morning peak.
  EXPECT_EQ(PopWeakLabel(8 * kHourS), kMorningPeak);
  // Monday 17:00 -> afternoon peak.
  EXPECT_EQ(PopWeakLabel(17 * kHourS), kAfternoonPeak);
  // Monday 12:00 -> off peak.
  EXPECT_EQ(PopWeakLabel(12 * kHourS), kOffPeak);
  // Saturday 08:00 -> off peak (weekend).
  EXPECT_EQ(PopWeakLabel(5 * kDayS + 8 * kHourS), kOffPeak);
  // Negative times wrap.
  EXPECT_EQ(PopWeakLabel(8 * kHourS - 7 * kDayS), kMorningPeak);
}

TEST(WeakLabelTest, TciLevelsOrdered) {
  auto net = GenerateCity(SmallCity());
  auto network = std::make_shared<graph::RoadNetwork>(std::move(*net));
  TrafficModel model(network.get(), TrafficConfig{});
  // Peak center should have a strictly higher level than free flow.
  const int peak = TciWeakLabel(model, 8 * kHourS);
  const int night = TciWeakLabel(model, 3 * kHourS);
  EXPECT_GT(peak, night);
  EXPECT_EQ(night, 0);
  EXPECT_LT(peak, kNumTciLabels);
}

TEST(WeakLabelTest, SchemeDispatch) {
  auto net = GenerateCity(SmallCity());
  auto network = std::make_shared<graph::RoadNetwork>(std::move(*net));
  TrafficModel model(network.get(), TrafficConfig{});
  EXPECT_EQ(NumWeakLabels(WeakLabelScheme::kPeakOffPeak), 3);
  EXPECT_EQ(NumWeakLabels(WeakLabelScheme::kCongestionIndex), 4);
  EXPECT_EQ(WeakLabelFor(WeakLabelScheme::kPeakOffPeak, model, 8 * kHourS),
            kMorningPeak);
}

class DatasetTest : public ::testing::Test {
 protected:
  DatasetTest() {
    auto preset = AalborgPreset();
    ScaleDataset(preset, 0.15);
    auto ds = BuildPresetDataset(preset);
    EXPECT_TRUE(ds.ok()) << ds.status().ToString();
    data_ = std::make_unique<CityDataset>(std::move(*ds));
  }

  std::unique_ptr<CityDataset> data_;
};

TEST_F(DatasetTest, AllPathsValid) {
  for (const auto& s : data_->unlabeled) {
    EXPECT_TRUE(data_->network->ValidatePath(s.path).ok());
  }
  for (const auto& s : data_->labeled) {
    EXPECT_TRUE(data_->network->ValidatePath(s.path).ok());
  }
}

TEST_F(DatasetTest, LabelsWellFormed) {
  for (const auto& s : data_->labeled) {
    EXPECT_GT(s.travel_time_s, 0.0);
    EXPECT_GE(s.rank_score, 0.0);
    EXPECT_LE(s.rank_score, 1.0);
    EXPECT_GE(s.group, 0);
  }
}

TEST_F(DatasetTest, EachGroupHasExactlyOneRecommendedTopRankedPath) {
  std::map<int, int> recommended_per_group;
  std::map<int, double> best_score;
  for (const auto& s : data_->labeled) {
    recommended_per_group[s.group] += s.recommended;
    best_score[s.group] = std::max(best_score[s.group], s.rank_score);
    if (s.recommended) {
      EXPECT_DOUBLE_EQ(s.rank_score, 1.0);
    }
  }
  for (const auto& [g, count] : recommended_per_group) {
    EXPECT_EQ(count, 1) << "group " << g;
    EXPECT_DOUBLE_EQ(best_score[g], 1.0) << "group " << g;
  }
}

TEST_F(DatasetTest, UnlabeledPathsRepeatAcrossDepartures) {
  // departures_per_trajectory > 1 means the same path appears with
  // multiple departure times (the raw material for WSC positives).
  std::map<graph::Path, std::set<int64_t>> departures;
  for (const auto& s : data_->unlabeled) {
    departures[s.path].insert(s.depart_time_s);
  }
  int repeated = 0;
  for (const auto& [path, times] : departures) {
    if (times.size() >= 2) ++repeated;
  }
  EXPECT_GT(repeated, 0);
}

TEST_F(DatasetTest, PeakTravelSlowerOnAverage) {
  // Use the deterministic model (not the noisy observations): the same
  // path must be slower at 8am Monday than 3am Monday.
  const auto& s = data_->unlabeled.front();
  const double peak = data_->traffic->PathTravelTime(s.path, 8 * kHourS);
  const double night = data_->traffic->PathTravelTime(s.path, 3 * kHourS);
  EXPECT_GT(peak, night);
}

TEST(DepartureSamplerTest, PeakFractionRespected) {
  DatasetConfig cfg;
  cfg.peak_demand_fraction = 1.0;
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const int64_t t = SampleDepartureTime(cfg, rng);
    EXPECT_NE(PopWeakLabel(t), kOffPeak);
  }
}

TEST(PresetTest, AllPresetsBuild) {
  for (auto preset : AllPresets()) {
    ScaleDataset(preset, 0.08);
    auto ds = BuildPresetDataset(preset);
    EXPECT_TRUE(ds.ok()) << preset.name << ": " << ds.status().ToString();
    EXPECT_FALSE(ds->unlabeled.empty());
    EXPECT_FALSE(ds->labeled.empty());
  }
}

TEST(GpsTest, TraceFollowsPath) {
  auto net = GenerateCity(SmallCity());
  auto network = std::make_shared<graph::RoadNetwork>(std::move(*net));
  TrafficModel model(network.get(), TrafficConfig{});
  // Build a real path via shortest path.
  auto sp = graph::ShortestPath(*network, 0, network->num_nodes() - 1,
                                [&](int e) { return network->edge(e).length_m; });
  ASSERT_TRUE(sp.ok());
  GpsConfig gps;
  gps.noise_m = 5.0;
  Rng rng(4);
  auto trace = SynthesizeTrace(*network, model, sp->edges, 0.0, gps, rng);
  ASSERT_GT(trace.size(), 2u);
  // Timestamps increase.
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].t, trace[i - 1].t);
  }
}

TEST(GpsTest, MapMatchRecoversMostOfThePath) {
  auto net = GenerateCity(SmallCity());
  auto network = std::make_shared<graph::RoadNetwork>(std::move(*net));
  TrafficModel model(network.get(), TrafficConfig{});
  auto sp = graph::ShortestPath(*network, 0, network->num_nodes() - 1,
                                [&](int e) { return network->edge(e).length_m; });
  ASSERT_TRUE(sp.ok());
  GpsConfig gps;
  gps.noise_m = 8.0;
  gps.sample_interval_s = 10.0;
  Rng rng(4);
  auto trace = SynthesizeTrace(*network, model, sp->edges, 0.0, gps, rng);
  auto matched = MapMatch(*network, trace, gps);
  ASSERT_TRUE(matched.ok()) << matched.status().ToString();
  EXPECT_TRUE(network->ValidatePath(*matched).ok());
  // The matched path shares a majority of edges with the true path.
  const int shared = graph::SharedEdgeCount(*matched, sp->edges);
  EXPECT_GE(shared, static_cast<int>(sp->edges.size()) / 2);
}

TEST(GpsTest, MapMatchEmptyTraceFails) {
  auto net = GenerateCity(SmallCity());
  auto network = std::make_shared<graph::RoadNetwork>(std::move(*net));
  EXPECT_FALSE(MapMatch(*network, {}, GpsConfig{}).ok());
}

TEST(GpsTest, MapMatchRejectsCorruptTimestamps) {
  auto net = GenerateCity(SmallCity());
  auto network = std::make_shared<graph::RoadNetwork>(std::move(*net));
  TrafficModel model(network.get(), TrafficConfig{});
  auto sp = graph::ShortestPath(*network, 0, network->num_nodes() - 1,
                                [&](int e) { return network->edge(e).length_m; });
  ASSERT_TRUE(sp.ok());
  GpsConfig gps;
  gps.noise_m = 8.0;
  gps.sample_interval_s = 10.0;
  Rng rng(4);
  auto trace = SynthesizeTrace(*network, model, sp->edges, 0.0, gps, rng);
  ASSERT_GT(trace.size(), 2u);

  // Out-of-order clock: the trace was corrupted in transit.
  auto swapped = trace;
  std::swap(swapped[0].t, swapped[1].t);
  EXPECT_EQ(MapMatch(*network, swapped, gps).status().code(),
            StatusCode::kInvalidArgument);

  // Non-finite timestamp.
  auto poisoned = trace;
  poisoned.back().t = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(MapMatch(*network, poisoned, gps).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Regime shifts: the drift simulator's post-shift worlds.
// ---------------------------------------------------------------------------

class RegimeTest : public ::testing::Test {
 protected:
  RegimeTest() {
    auto net = GenerateCity(SmallCity());
    network_ = std::make_shared<graph::RoadNetwork>(std::move(*net));
  }

  std::shared_ptr<graph::RoadNetwork> network_;
};

TEST_F(RegimeTest, MaterializationIsDeterministicAndSeedSensitive) {
  RegimeShiftConfig cfg;
  cfg.kind = RegimeKind::kIncident;
  cfg.seed = 3;
  cfg.edge_fraction = 0.05;
  const RegimeShift a = MakeRegimeShift(*network_, cfg);
  const RegimeShift b = MakeRegimeShift(*network_, cfg);
  ASSERT_EQ(a.edge_speed_scale, b.edge_speed_scale);
  EXPECT_FALSE(a.IsIdentity());
  // Sorted by edge id, all scales equal to the configured slowdown.
  for (size_t i = 1; i < a.edge_speed_scale.size(); ++i) {
    EXPECT_LT(a.edge_speed_scale[i - 1].first, a.edge_speed_scale[i].first);
  }
  for (const auto& [edge, scale] : a.edge_speed_scale) {
    EXPECT_DOUBLE_EQ(scale, cfg.speed_scale);
    EXPECT_DOUBLE_EQ(a.EdgeScale(edge), cfg.speed_scale);
  }
  cfg.seed = 4;
  const RegimeShift c = MakeRegimeShift(*network_, cfg);
  EXPECT_NE(a.edge_speed_scale, c.edge_speed_scale)
      << "a different seed must select different edges";
}

TEST_F(RegimeTest, IncidentSlowsExactlyTheAffectedEdges) {
  RegimeShiftConfig cfg;
  cfg.kind = RegimeKind::kIncident;
  cfg.seed = 9;
  cfg.edge_fraction = 0.04;
  cfg.speed_scale = 0.35;
  auto shift = std::make_shared<const RegimeShift>(
      MakeRegimeShift(*network_, cfg));
  ASSERT_FALSE(shift->edge_speed_scale.empty());
  TrafficModel base(network_.get(), TrafficConfig{});
  TrafficModel shifted(network_.get(), TrafficConfig{}, shift);
  for (int e = 0; e < network_->num_edges(); ++e) {
    const double ratio = shifted.FreeFlowSpeed(e) / base.FreeFlowSpeed(e);
    if (shift->EdgeScale(e) < 1.0) {
      EXPECT_NEAR(ratio, 0.35, 1e-12) << "edge " << e;
    } else {
      EXPECT_DOUBLE_EQ(ratio, 1.0) << "edge " << e;
    }
  }
}

TEST_F(RegimeTest, ClosureIsNearImpassable) {
  RegimeShiftConfig cfg;
  cfg.kind = RegimeKind::kClosure;
  cfg.seed = 2;
  const RegimeShift shift = MakeRegimeShift(*network_, cfg);
  ASSERT_FALSE(shift.edge_speed_scale.empty());
  for (const auto& [edge, scale] : shift.edge_speed_scale) {
    EXPECT_LT(scale, 0.1) << "edge " << edge;
    EXPECT_GT(scale, 0.0) << "edge " << edge;
  }
}

TEST_F(RegimeTest, RushHourShiftMovesThePeakWindows) {
  RegimeShiftConfig cfg;
  cfg.kind = RegimeKind::kRushHourShift;
  cfg.hour_shift = 1.5;
  auto shift = std::make_shared<const RegimeShift>(
      MakeRegimeShift(*network_, cfg));
  EXPECT_TRUE(shift->edge_speed_scale.empty());
  EXPECT_DOUBLE_EQ(shift->am_shift_h, 1.5);
  TrafficModel base(network_.get(), TrafficConfig{});
  TrafficModel shifted(network_.get(), TrafficConfig{}, shift);
  // Monday 08:00: the old AM peak center is congested in the base world
  // but calm after the +1.5h migration; Monday 09:30 is the new center.
  EXPECT_GT(base.CityCongestionIndex(8 * kHourS),
            shifted.CityCongestionIndex(8 * kHourS));
  EXPECT_GT(shifted.CityCongestionIndex(9.5 * kHourS),
            shifted.CityCongestionIndex(8 * kHourS));
  EXPECT_NEAR(shifted.CityCongestionIndex(9.5 * kHourS),
              base.CityCongestionIndex(8 * kHourS), 1e-9);
}

TEST_F(RegimeTest, SeasonalDemandScalesPeakSeverity) {
  RegimeShiftConfig cfg;
  cfg.kind = RegimeKind::kSeasonalDemand;
  cfg.demand_scale = 1.5;
  auto shift = std::make_shared<const RegimeShift>(
      MakeRegimeShift(*network_, cfg));
  EXPECT_DOUBLE_EQ(shift->severity_scale, 1.5);
  TrafficModel base(network_.get(), TrafficConfig{});
  TrafficModel shifted(network_.get(), TrafficConfig{}, shift);
  int strictly_worse = 0;
  for (int e = 0; e < std::min(40, network_->num_edges()); ++e) {
    const double b = base.CongestionMultiplier(e, 8 * kHourS);
    const double s = shifted.CongestionMultiplier(e, 8 * kHourS);
    EXPECT_LE(s, b + 1e-12) << "edge " << e;
    if (s < b - 1e-9) ++strictly_worse;
  }
  EXPECT_GT(strictly_worse, 0);
  // Off-peak is untouched: demand scaling only bites where there is peak.
  EXPECT_DOUBLE_EQ(shifted.CongestionMultiplier(0, 3 * kHourS),
                   base.CongestionMultiplier(0, 3 * kHourS));
}

TEST_F(RegimeTest, ComposeMergesEdgeScalesShiftsAndSeverity) {
  RegimeShiftConfig inc;
  inc.kind = RegimeKind::kIncident;
  inc.seed = 5;
  RegimeShiftConfig rush;
  rush.kind = RegimeKind::kRushHourShift;
  rush.hour_shift = -1.0;
  RegimeShiftConfig demand;
  demand.kind = RegimeKind::kSeasonalDemand;
  demand.demand_scale = 0.6;
  const RegimeShift a = MakeRegimeShift(*network_, inc);
  const RegimeShift combined = Compose(
      Compose(a, MakeRegimeShift(*network_, rush)),
      MakeRegimeShift(*network_, demand));
  EXPECT_EQ(combined.edge_speed_scale, a.edge_speed_scale);
  EXPECT_DOUBLE_EQ(combined.am_shift_h, -1.0);
  EXPECT_DOUBLE_EQ(combined.pm_shift_h, -1.0);
  EXPECT_DOUBLE_EQ(combined.severity_scale, 0.6);
  // Overlapping incidents multiply on the shared edges.
  const RegimeShift twice = Compose(a, a);
  for (size_t i = 0; i < a.edge_speed_scale.size(); ++i) {
    EXPECT_DOUBLE_EQ(twice.edge_speed_scale[i].second,
                     a.edge_speed_scale[i].second *
                         a.edge_speed_scale[i].second);
  }
}

TEST_F(DatasetTest, ShiftedDatasetStreamsTheSameNetworkUnderNewTraffic) {
  RegimeShiftConfig cfg;
  cfg.kind = RegimeKind::kIncident;
  cfg.seed = 13;
  cfg.edge_fraction = 0.05;
  const RegimeShift shift = MakeRegimeShift(*data_->network, cfg);
  DatasetConfig fresh_cfg;
  fresh_cfg.num_unlabeled_trajectories = 30;
  fresh_cfg.departures_per_trajectory = 2;
  fresh_cfg.num_labeled_groups = 20;
  fresh_cfg.alternatives_per_group = 2;
  fresh_cfg.seed = 99;
  auto fresh = GenerateShiftedDataset(*data_, shift, fresh_cfg);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh->name, data_->name + "-shifted");
  EXPECT_EQ(fresh->network.get(), data_->network.get())
      << "topology carries over; only traffic changes";
  ASSERT_NE(fresh->traffic->regime(), nullptr);
  EXPECT_FALSE(fresh->traffic->regime()->IsIdentity());
  EXPECT_FALSE(fresh->unlabeled.empty());
  EXPECT_FALSE(fresh->labeled.empty());
  for (const auto& s : fresh->unlabeled) {
    EXPECT_TRUE(fresh->network->ValidatePath(s.path).ok());
  }

  // Bitwise reproducible: the same base + shift + config streams the
  // same trajectories.
  auto again = GenerateShiftedDataset(*data_, shift, fresh_cfg);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->unlabeled.size(), fresh->unlabeled.size());
  for (size_t i = 0; i < fresh->unlabeled.size(); ++i) {
    EXPECT_EQ(again->unlabeled[i].path, fresh->unlabeled[i].path);
    EXPECT_EQ(again->unlabeled[i].depart_time_s,
              fresh->unlabeled[i].depart_time_s);
    EXPECT_DOUBLE_EQ(again->unlabeled[i].travel_time_s,
                     fresh->unlabeled[i].travel_time_s);
  }

  // Composing onto an already-shifted dataset stacks the regimes.
  auto stacked_traffic = MakeShiftedTraffic(*fresh, shift);
  ASSERT_NE(stacked_traffic->regime(), nullptr);
  for (const auto& [edge, scale] : shift.edge_speed_scale) {
    EXPECT_DOUBLE_EQ(stacked_traffic->regime()->EdgeScale(edge),
                     scale * scale);
  }
}

// Property sweep: observed travel times stay within a plausible factor of
// the deterministic model across presets.
class DatasetNoiseTest : public ::testing::TestWithParam<int> {};

TEST_P(DatasetNoiseTest, ObservationsNearModel) {
  auto presets = AllPresets();
  auto preset = presets[GetParam()];
  ScaleDataset(preset, 0.08);
  auto ds = BuildPresetDataset(preset);
  ASSERT_TRUE(ds.ok());
  for (const auto& s : ds->labeled) {
    const double model_time = ds->traffic->PathTravelTime(
        s.path, static_cast<double>(s.depart_time_s));
    EXPECT_GT(s.travel_time_s, model_time * 0.5);
    EXPECT_LT(s.travel_time_s, model_time * 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCities, DatasetNoiseTest,
                         ::testing::Values(0, 1, 2));

// ---------------------------------------------------------------------------
// City fleets.
// ---------------------------------------------------------------------------

// Full parameter signature of a fleet city; two cities with equal
// signatures generate bitwise-identical worlds.
std::string CitySig(const FleetCity& c) {
  std::string s = std::to_string(c.city_id) + "|" + c.name + "|" +
                  c.preset.name;
  auto add = [&s](double v) {
    uint64_t b = 0;
    static_assert(sizeof(b) == sizeof(v));
    __builtin_memcpy(&b, &v, sizeof b);
    s += "," + std::to_string(b);
  };
  const CityConfig& g = c.preset.city;
  s += "|" + std::to_string(g.grid_width) + "x" +
       std::to_string(g.grid_height) + ",s" + std::to_string(g.seed);
  add(g.spacing_m);
  add(g.drop_edge_prob);
  add(g.one_way_prob);
  add(c.preset.traffic.peak_severity);
  add(c.preset.traffic.signal_delay_s);
  s += "|d" + std::to_string(c.preset.data.seed) + "," +
       std::to_string(c.preset.data.num_unlabeled_trajectories) + "," +
       std::to_string(c.preset.data.num_labeled_groups);
  add(c.preset.data.observation_noise);
  for (const RegimeShiftConfig& sh : c.shifts) {
    s += "|k" + std::to_string(static_cast<int>(sh.kind)) + ",s" +
         std::to_string(sh.seed);
    add(sh.edge_fraction);
    add(sh.speed_scale);
    add(sh.hour_shift);
    add(sh.demand_scale);
  }
  return s;
}

TEST(FleetTest, CitiesAreAPureFunctionOfSeedAndId) {
  for (int id : {0, 1, 5}) {
    EXPECT_EQ(CitySig(MakeFleetCity(404, 1.0, id)),
              CitySig(MakeFleetCity(404, 1.0, id)));
  }
  // A different fleet seed derives a different world.
  EXPECT_NE(CitySig(MakeFleetCity(404, 1.0, 0)),
            CitySig(MakeFleetCity(405, 1.0, 0)));
}

TEST(FleetTest, CitiesAreIndependentOfFleetSize) {
  FleetConfig small;
  small.num_cities = 1;
  small.seed = 42;
  FleetConfig big = small;
  big.num_cities = 6;
  CityFleet one(small);
  CityFleet six(big);
  // City 0 of a 1-city fleet IS city 0 of a 6-city fleet: scaling
  // benches compare like with like.
  EXPECT_EQ(CitySig(one.city(0)), CitySig(six.city(0)));
  EXPECT_EQ(six.size(), 6);
}

TEST(FleetTest, CitiesAreDistinctAcrossIds) {
  CityFleet fleet(FleetConfig{.num_cities = 4, .seed = 7});
  for (int a = 0; a < fleet.size(); ++a) {
    for (int b = a + 1; b < fleet.size(); ++b) {
      EXPECT_NE(CitySig(fleet.city(a)), CitySig(fleet.city(b)))
          << "cities " << a << " and " << b << " collide";
      EXPECT_NE(fleet.city(a).name, fleet.city(b).name);
    }
  }
  // Every city carries a full drift schedule (one shift of each kind).
  for (const FleetCity& c : fleet.cities()) {
    ASSERT_EQ(c.shifts.size(), 4u);
    std::vector<int> kinds;
    for (const auto& sh : c.shifts) kinds.push_back(static_cast<int>(sh.kind));
    std::sort(kinds.begin(), kinds.end());
    EXPECT_EQ(kinds, (std::vector<int>{0, 1, 2, 3}));
  }
}

TEST(FleetTest, BuildDatasetIsReproducible) {
  FleetConfig fc;
  fc.num_cities = 1;
  fc.seed = 9;
  fc.dataset_scale = 0.05;
  CityFleet fleet(fc);
  auto a = fleet.BuildDataset(0);
  auto b = fleet.BuildDataset(0);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->unlabeled.size(), b->unlabeled.size());
  ASSERT_FALSE(a->unlabeled.empty());
  for (size_t i = 0; i < a->unlabeled.size(); ++i) {
    EXPECT_EQ(a->unlabeled[i].path, b->unlabeled[i].path);
    EXPECT_EQ(a->unlabeled[i].depart_time_s, b->unlabeled[i].depart_time_s);
  }
}

TEST(FleetTest, ConfigFromEnvOverrides) {
  setenv("TPR_SHARDS", "5", 1);
  setenv("TPR_FLEET_SEED", "123", 1);
  setenv("TPR_FLEET_SCALE", "0.5", 1);
  FleetConfig fc = FleetConfigFromEnv(FleetConfig{});
  EXPECT_EQ(fc.num_cities, 5);
  EXPECT_EQ(fc.seed, 123u);
  EXPECT_DOUBLE_EQ(fc.dataset_scale, 0.5);
  // Invalid values keep the defaults.
  setenv("TPR_SHARDS", "0", 1);
  setenv("TPR_FLEET_SCALE", "bogus", 1);
  fc = FleetConfigFromEnv(FleetConfig{});
  EXPECT_EQ(fc.num_cities, 3);
  EXPECT_DOUBLE_EQ(fc.dataset_scale, 1.0);
  unsetenv("TPR_SHARDS");
  unsetenv("TPR_FLEET_SEED");
  unsetenv("TPR_FLEET_SCALE");
}

}  // namespace
}  // namespace tpr::synth
