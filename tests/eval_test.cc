#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "eval/downstream.h"
#include "eval/metrics.h"
#include "synth/presets.h"
#include "util/rng.h"

namespace tpr::eval {
namespace {

TEST(MetricsTest, MaeMareMape) {
  std::vector<double> truth = {100, 200};
  std::vector<double> pred = {110, 180};
  EXPECT_DOUBLE_EQ(*Mae(truth, pred), 15.0);
  EXPECT_DOUBLE_EQ(*Mare(truth, pred), 30.0 / 300.0);
  EXPECT_DOUBLE_EQ(*Mape(truth, pred), 100.0 * (0.1 + 0.1) / 2.0);
}

TEST(MetricsTest, RejectsEmptyAndMismatched) {
  EXPECT_FALSE(Mae({}, {}).ok());
  EXPECT_FALSE(Mae({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(Mare({0.0}, {1.0}).ok());
  EXPECT_FALSE(Mape({0.0}, {1.0}).ok());  // all-zero ground truth
}

TEST(MetricsTest, MapeSkipsZeroTruth) {
  std::vector<double> truth = {0, 100};
  std::vector<double> pred = {50, 110};
  EXPECT_DOUBLE_EQ(*Mape(truth, pred), 10.0);
}

TEST(MetricsTest, KendallTauExtremes) {
  std::vector<double> truth = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(*KendallTau(truth, {10, 20, 30, 40}), 1.0);
  EXPECT_DOUBLE_EQ(*KendallTau(truth, {40, 30, 20, 10}), -1.0);
}

TEST(MetricsTest, KendallTauPartial) {
  // One discordant pair out of three.
  std::vector<double> truth = {1, 2, 3};
  std::vector<double> pred = {1, 3, 2};
  EXPECT_NEAR(*KendallTau(truth, pred), 1.0 / 3.0, 1e-9);
}

TEST(MetricsTest, SpearmanMatchesKnownValue) {
  std::vector<double> truth = {1, 2, 3, 4, 5};
  std::vector<double> pred = {2, 1, 4, 3, 5};
  // d = (1,-1,1,-1,0), sum d^2 = 4; rho = 1 - 6*4 / (5*24) = 0.8.
  EXPECT_NEAR(*SpearmanRho(truth, pred), 0.8, 1e-9);
}

TEST(MetricsTest, SpearmanHandlesTies) {
  std::vector<double> truth = {1, 1, 2, 3};
  std::vector<double> pred = {1, 1, 2, 3};
  EXPECT_NEAR(*SpearmanRho(truth, pred), 1.0, 1e-9);
}

TEST(MetricsTest, AverageRanksWithTies) {
  const auto ranks = AverageRanks({10, 20, 20, 30});
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(MetricsTest, AccuracyAndHitRate) {
  std::vector<int> truth = {1, 0, 1, 0};
  std::vector<int> pred = {1, 0, 0, 1};
  EXPECT_DOUBLE_EQ(*Accuracy(truth, pred), 0.5);
  EXPECT_DOUBLE_EQ(*HitRate(truth, pred), 0.5);  // TP=1, FN=1
  EXPECT_FALSE(HitRate({0, 0}, {0, 0}).ok());    // no positives
}

TEST(MetricsTest, GroupedTauAveragesGroups) {
  std::vector<int> groups = {0, 0, 1, 1};
  std::vector<double> truth = {1, 2, 1, 2};
  std::vector<double> pred = {1, 2, 2, 1};  // group 0: +1, group 1: -1
  EXPECT_NEAR(*GroupedKendallTau(groups, truth, pred), 0.0, 1e-9);
}

TEST(MetricsTest, GroupedSkipsSingletons) {
  std::vector<int> groups = {0, 1, 1};
  std::vector<double> truth = {5, 1, 2};
  std::vector<double> pred = {9, 1, 2};
  EXPECT_NEAR(*GroupedSpearmanRho(groups, truth, pred), 1.0, 1e-9);
}

class DownstreamTest : public ::testing::Test {
 protected:
  DownstreamTest() {
    auto preset = synth::AalborgPreset();
    synth::ScaleDataset(preset, 0.15);
    auto ds = synth::BuildPresetDataset(preset);
    EXPECT_TRUE(ds.ok());
    data_ = std::make_unique<synth::CityDataset>(std::move(*ds));
  }

  std::unique_ptr<synth::CityDataset> data_;
};

TEST_F(DownstreamTest, SplitGroupsKeepsGroupsIntact) {
  std::vector<int> train, test;
  SplitGroups(data_->labeled, 0.8, 99, &train, &test);
  EXPECT_FALSE(train.empty());
  EXPECT_FALSE(test.empty());
  std::set<int> train_groups, test_groups;
  for (int i : train) train_groups.insert(data_->labeled[i].group);
  for (int i : test) test_groups.insert(data_->labeled[i].group);
  for (int g : test_groups) EXPECT_EQ(train_groups.count(g), 0u);
}

TEST_F(DownstreamTest, SplitIsDeterministic) {
  std::vector<int> t1, v1, t2, v2;
  SplitGroups(data_->labeled, 0.8, 99, &t1, &v1);
  SplitGroups(data_->labeled, 0.8, 99, &t2, &v2);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(v1, v2);
}

TEST_F(DownstreamTest, OracleFeaturesScoreNearPerfect) {
  // An encoder that leaks the labels must produce near-perfect scores —
  // validates the probe plumbing end to end.
  auto oracle = [](const synth::TemporalPathSample& s) {
    return std::vector<float>{static_cast<float>(s.travel_time_s / 100.0),
                              static_cast<float>(s.rank_score),
                              static_cast<float>(s.recommended)};
  };
  auto scores = EvaluateTasks(*data_, oracle);
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  // Bounded by tree granularity on the miniature split, not exact zero.
  EXPECT_LT(scores->tte_mare, 0.2);
  EXPECT_GT(scores->pr_tau, 0.8);
  EXPECT_GT(scores->rec_acc, 0.9);
}

TEST_F(DownstreamTest, RandomFeaturesScoreNearChance) {
  Rng rng(31);
  auto noise = [&rng](const synth::TemporalPathSample&) {
    return std::vector<float>{static_cast<float>(rng.Gaussian()),
                              static_cast<float>(rng.Gaussian())};
  };
  auto scores = EvaluateTasks(*data_, noise);
  ASSERT_TRUE(scores.ok());
  EXPECT_LT(std::fabs(scores->pr_tau), 0.35);
}

TEST_F(DownstreamTest, FeatureMatrixShape) {
  auto enc = [](const synth::TemporalPathSample&) {
    return std::vector<float>{1.0f, 2.0f};
  };
  const auto m = BuildFeatureMatrix(data_->labeled, enc);
  EXPECT_EQ(m.rows, static_cast<int>(data_->labeled.size()));
  EXPECT_EQ(m.cols, 2);
  EXPECT_FLOAT_EQ(m.at(0, 1), 2.0f);
}

// --- Property-style metric tests over randomised data (fixed seeds) ---

// Random truth/prediction vectors with strictly positive truth values so
// every metric (including Mare/Mape) is defined.
struct MetricFixture {
  std::vector<double> truth;
  std::vector<double> pred;
};

MetricFixture RandomMetricData(uint64_t seed, int n = 32) {
  Rng rng(seed);
  MetricFixture f;
  for (int i = 0; i < n; ++i) {
    f.truth.push_back(rng.Uniform(10.0, 100.0));
    f.pred.push_back(rng.Uniform(10.0, 100.0));
  }
  return f;
}

template <typename Metric>
void ExpectPermutationInvariant(const Metric& metric, uint64_t seed) {
  const MetricFixture f = RandomMetricData(seed);
  std::vector<size_t> order(f.truth.size());
  std::iota(order.begin(), order.end(), size_t{0});
  Rng rng(seed + 1);
  rng.Shuffle(order);
  std::vector<double> truth_p, pred_p;
  for (size_t i : order) {
    truth_p.push_back(f.truth[i]);
    pred_p.push_back(f.pred[i]);
  }
  EXPECT_NEAR(*metric(f.truth, f.pred), *metric(truth_p, pred_p), 1e-12)
      << "metric not invariant under a joint permutation";
}

TEST(MetricPropertiesTest, PermutationInvariance) {
  ExpectPermutationInvariant(Mae, 501);
  ExpectPermutationInvariant(Mare, 502);
  ExpectPermutationInvariant(Mape, 503);
  ExpectPermutationInvariant(KendallTau, 504);
  ExpectPermutationInvariant(SpearmanRho, 505);
}

TEST(MetricPropertiesTest, ScaleBehaviour) {
  const MetricFixture f = RandomMetricData(510);
  const double k = 3.75;
  std::vector<double> truth_k = f.truth, pred_k = f.pred;
  for (double& v : truth_k) v *= k;
  for (double& v : pred_k) v *= k;
  // MAE is homogeneous of degree one; the relative errors are
  // scale-invariant under a common positive scaling.
  EXPECT_NEAR(*Mae(truth_k, pred_k), k * *Mae(f.truth, f.pred), 1e-9);
  EXPECT_NEAR(*Mare(truth_k, pred_k), *Mare(f.truth, f.pred), 1e-12);
  EXPECT_NEAR(*Mape(truth_k, pred_k), *Mape(f.truth, f.pred), 1e-9);
}

TEST(MetricPropertiesTest, RankCorrelationsInvariantUnderMonotoneMap) {
  const MetricFixture f = RandomMetricData(520);
  std::vector<double> pred_mono = f.pred;
  for (double& v : pred_mono) v = std::exp(0.05 * v) + 2.0 * v;
  EXPECT_NEAR(*KendallTau(f.truth, pred_mono), *KendallTau(f.truth, f.pred),
              1e-12);
  EXPECT_NEAR(*SpearmanRho(f.truth, pred_mono), *SpearmanRho(f.truth, f.pred),
              1e-12);
}

TEST(MetricPropertiesTest, PerfectPredictionIsAFixedPoint) {
  const MetricFixture f = RandomMetricData(530);
  EXPECT_DOUBLE_EQ(*Mae(f.truth, f.truth), 0.0);
  EXPECT_DOUBLE_EQ(*Mare(f.truth, f.truth), 0.0);
  EXPECT_DOUBLE_EQ(*Mape(f.truth, f.truth), 0.0);
  EXPECT_DOUBLE_EQ(*KendallTau(f.truth, f.truth), 1.0);
  EXPECT_DOUBLE_EQ(*SpearmanRho(f.truth, f.truth), 1.0);
  std::vector<int> labels;
  Rng rng(531);
  for (int i = 0; i < 32; ++i) labels.push_back(rng.Bernoulli(0.5) ? 1 : 0);
  EXPECT_DOUBLE_EQ(*Accuracy(labels, labels), 1.0);
  EXPECT_DOUBLE_EQ(*HitRate(labels, labels), 1.0);
}

TEST(MetricPropertiesTest, GroupedTauMatchesUngroupedOnSingleGroup) {
  const MetricFixture f = RandomMetricData(540, 12);
  const std::vector<int> one_group(f.truth.size(), 0);
  EXPECT_NEAR(*GroupedKendallTau(one_group, f.truth, f.pred),
              *KendallTau(f.truth, f.pred), 1e-12);
  EXPECT_NEAR(*GroupedSpearmanRho(one_group, f.truth, f.pred),
              *SpearmanRho(f.truth, f.pred), 1e-12);
}

}  // namespace
}  // namespace tpr::eval
