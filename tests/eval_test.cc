#include <gtest/gtest.h>

#include "eval/downstream.h"
#include "eval/metrics.h"
#include "synth/presets.h"

namespace tpr::eval {
namespace {

TEST(MetricsTest, MaeMareMape) {
  std::vector<double> truth = {100, 200};
  std::vector<double> pred = {110, 180};
  EXPECT_DOUBLE_EQ(*Mae(truth, pred), 15.0);
  EXPECT_DOUBLE_EQ(*Mare(truth, pred), 30.0 / 300.0);
  EXPECT_DOUBLE_EQ(*Mape(truth, pred), 100.0 * (0.1 + 0.1) / 2.0);
}

TEST(MetricsTest, RejectsEmptyAndMismatched) {
  EXPECT_FALSE(Mae({}, {}).ok());
  EXPECT_FALSE(Mae({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(Mare({0.0}, {1.0}).ok());
  EXPECT_FALSE(Mape({0.0}, {1.0}).ok());  // all-zero ground truth
}

TEST(MetricsTest, MapeSkipsZeroTruth) {
  std::vector<double> truth = {0, 100};
  std::vector<double> pred = {50, 110};
  EXPECT_DOUBLE_EQ(*Mape(truth, pred), 10.0);
}

TEST(MetricsTest, KendallTauExtremes) {
  std::vector<double> truth = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(*KendallTau(truth, {10, 20, 30, 40}), 1.0);
  EXPECT_DOUBLE_EQ(*KendallTau(truth, {40, 30, 20, 10}), -1.0);
}

TEST(MetricsTest, KendallTauPartial) {
  // One discordant pair out of three.
  std::vector<double> truth = {1, 2, 3};
  std::vector<double> pred = {1, 3, 2};
  EXPECT_NEAR(*KendallTau(truth, pred), 1.0 / 3.0, 1e-9);
}

TEST(MetricsTest, SpearmanMatchesKnownValue) {
  std::vector<double> truth = {1, 2, 3, 4, 5};
  std::vector<double> pred = {2, 1, 4, 3, 5};
  // d = (1,-1,1,-1,0), sum d^2 = 4; rho = 1 - 6*4 / (5*24) = 0.8.
  EXPECT_NEAR(*SpearmanRho(truth, pred), 0.8, 1e-9);
}

TEST(MetricsTest, SpearmanHandlesTies) {
  std::vector<double> truth = {1, 1, 2, 3};
  std::vector<double> pred = {1, 1, 2, 3};
  EXPECT_NEAR(*SpearmanRho(truth, pred), 1.0, 1e-9);
}

TEST(MetricsTest, AverageRanksWithTies) {
  const auto ranks = AverageRanks({10, 20, 20, 30});
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(MetricsTest, AccuracyAndHitRate) {
  std::vector<int> truth = {1, 0, 1, 0};
  std::vector<int> pred = {1, 0, 0, 1};
  EXPECT_DOUBLE_EQ(*Accuracy(truth, pred), 0.5);
  EXPECT_DOUBLE_EQ(*HitRate(truth, pred), 0.5);  // TP=1, FN=1
  EXPECT_FALSE(HitRate({0, 0}, {0, 0}).ok());    // no positives
}

TEST(MetricsTest, GroupedTauAveragesGroups) {
  std::vector<int> groups = {0, 0, 1, 1};
  std::vector<double> truth = {1, 2, 1, 2};
  std::vector<double> pred = {1, 2, 2, 1};  // group 0: +1, group 1: -1
  EXPECT_NEAR(*GroupedKendallTau(groups, truth, pred), 0.0, 1e-9);
}

TEST(MetricsTest, GroupedSkipsSingletons) {
  std::vector<int> groups = {0, 1, 1};
  std::vector<double> truth = {5, 1, 2};
  std::vector<double> pred = {9, 1, 2};
  EXPECT_NEAR(*GroupedSpearmanRho(groups, truth, pred), 1.0, 1e-9);
}

class DownstreamTest : public ::testing::Test {
 protected:
  DownstreamTest() {
    auto preset = synth::AalborgPreset();
    synth::ScaleDataset(preset, 0.15);
    auto ds = synth::BuildPresetDataset(preset);
    EXPECT_TRUE(ds.ok());
    data_ = std::make_unique<synth::CityDataset>(std::move(*ds));
  }

  std::unique_ptr<synth::CityDataset> data_;
};

TEST_F(DownstreamTest, SplitGroupsKeepsGroupsIntact) {
  std::vector<int> train, test;
  SplitGroups(data_->labeled, 0.8, 99, &train, &test);
  EXPECT_FALSE(train.empty());
  EXPECT_FALSE(test.empty());
  std::set<int> train_groups, test_groups;
  for (int i : train) train_groups.insert(data_->labeled[i].group);
  for (int i : test) test_groups.insert(data_->labeled[i].group);
  for (int g : test_groups) EXPECT_EQ(train_groups.count(g), 0u);
}

TEST_F(DownstreamTest, SplitIsDeterministic) {
  std::vector<int> t1, v1, t2, v2;
  SplitGroups(data_->labeled, 0.8, 99, &t1, &v1);
  SplitGroups(data_->labeled, 0.8, 99, &t2, &v2);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(v1, v2);
}

TEST_F(DownstreamTest, OracleFeaturesScoreNearPerfect) {
  // An encoder that leaks the labels must produce near-perfect scores —
  // validates the probe plumbing end to end.
  auto oracle = [](const synth::TemporalPathSample& s) {
    return std::vector<float>{static_cast<float>(s.travel_time_s / 100.0),
                              static_cast<float>(s.rank_score),
                              static_cast<float>(s.recommended)};
  };
  auto scores = EvaluateTasks(*data_, oracle);
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  // Bounded by tree granularity on the miniature split, not exact zero.
  EXPECT_LT(scores->tte_mare, 0.2);
  EXPECT_GT(scores->pr_tau, 0.8);
  EXPECT_GT(scores->rec_acc, 0.9);
}

TEST_F(DownstreamTest, RandomFeaturesScoreNearChance) {
  Rng rng(31);
  auto noise = [&rng](const synth::TemporalPathSample&) {
    return std::vector<float>{static_cast<float>(rng.Gaussian()),
                              static_cast<float>(rng.Gaussian())};
  };
  auto scores = EvaluateTasks(*data_, noise);
  ASSERT_TRUE(scores.ok());
  EXPECT_LT(std::fabs(scores->pr_tau), 0.35);
}

TEST_F(DownstreamTest, FeatureMatrixShape) {
  auto enc = [](const synth::TemporalPathSample&) {
    return std::vector<float>{1.0f, 2.0f};
  };
  const auto m = BuildFeatureMatrix(data_->labeled, enc);
  EXPECT_EQ(m.rows, static_cast<int>(data_->labeled.size()));
  EXPECT_EQ(m.cols, 2);
  EXPECT_FLOAT_EQ(m.at(0, 1), 2.0f);
}

}  // namespace
}  // namespace tpr::eval
