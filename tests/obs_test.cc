#include "obs/metrics.h"
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/wsc_trainer.h"
#include "par/thread_pool.h"
#include "synth/presets.h"

// ---------------------------------------------------------------------------
// Allocation counting. The disabled-path contract of tpr::obs is "one
// atomic load plus a branch, no allocation", so the test binary replaces
// global operator new to count heap allocations inside a window.
// ---------------------------------------------------------------------------

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<uint64_t> g_alloc_count{0};

void* CountedAlloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tpr::obs {
namespace {

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterAndGaugeAreGatedByEnableFlag) {
  Counter c;
  Gauge g;
  SetMetricsEnabled(false);
  c.Add(5);
  g.Set(3.25);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);

  SetMetricsEnabled(true);
  c.Add(5);
  c.Add();
  g.Set(3.25);
  EXPECT_EQ(c.value(), 6u);
  EXPECT_EQ(g.value(), 3.25);
}

TEST(MetricsTest, RegistryReturnsStableHandles) {
  Counter& a = GetCounter("obs_test.stable");
  Counter& b = GetCounter("obs_test.stable");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = GetHistogram("obs_test.stable_hist");
  Histogram& h2 = GetHistogram("obs_test.stable_hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsTest, HistogramPercentilesOfUniformData) {
  SetMetricsEnabled(true);
  Histogram h({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int v = 1; v <= 100; ++v) h.Observe(v);

  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);

  // Exact at the extremes, bucket-width accurate in between.
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
  EXPECT_NEAR(h.Percentile(50), 50.5, 10.0);
  EXPECT_NEAR(h.Percentile(90), 90.0, 10.0);
  EXPECT_NEAR(h.Percentile(25), 25.5, 10.0);
}

TEST(MetricsTest, HistogramBucketAssignmentAndOverflow) {
  SetMetricsEnabled(true);
  Histogram h({1.0, 2.0});
  h.Observe(0.5);  // bucket 0: (-inf, 1)
  h.Observe(1.0);  // bucket 1: boundaries open the next bucket
  h.Observe(1.5);  // bucket 1: [1, 2)
  h.Observe(9.0);  // overflow bucket: [2, inf)
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  // Percentiles in the unbounded overflow bucket clamp to observed max.
  EXPECT_DOUBLE_EQ(h.Percentile(100), 9.0);
  EXPECT_GE(h.Percentile(99), 2.0);
  EXPECT_LE(h.Percentile(99), 9.0);
}

TEST(MetricsTest, HistogramSingleValueIsExactAtEveryPercentile) {
  SetMetricsEnabled(true);
  Histogram h(Histogram::DurationBuckets());
  for (int i = 0; i < 3; ++i) h.Observe(0.042);
  EXPECT_DOUBLE_EQ(h.Percentile(1), 0.042);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.042);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.042);
}

TEST(MetricsTest, HistogramEmptyReturnsZero) {
  Histogram h({1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(MetricsTest, GaugeDisabledSetPreservesTheLastEnabledValue) {
  // The drift detector exports its PH statistic through gauges; a
  // mid-run disable must freeze the last written value, not zero it —
  // dashboards read "last known", never a phantom reset.
  SetMetricsEnabled(true);
  Gauge& g = GetGauge("obs_test.freeze_gauge");
  g.Set(4.5);
  SetMetricsEnabled(false);
  g.Set(99.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
  SetMetricsEnabled(true);
  g.Set(6.25);
  EXPECT_DOUBLE_EQ(g.value(), 6.25);
}

TEST(MetricsTest, ResetAllMetricsZeroesEverything) {
  SetMetricsEnabled(true);
  GetCounter("obs_test.reset_me").Add(7);
  GetGauge("obs_test.reset_me_g").Set(1.5);
  GetHistogram("obs_test.reset_me_h").Observe(0.5);
  ResetAllMetrics();
  EXPECT_EQ(GetCounter("obs_test.reset_me").value(), 0u);
  EXPECT_EQ(GetGauge("obs_test.reset_me_g").value(), 0.0);
  EXPECT_EQ(GetHistogram("obs_test.reset_me_h").count(), 0u);
}

TEST(MetricsTest, JsonSnapshotContainsRegisteredMetrics) {
  SetMetricsEnabled(true);
  GetCounter("obs_test.json_counter").Add(3);
  GetGauge("obs_test.json_gauge").Set(2.5);
  GetHistogram("obs_test.json_hist").Observe(0.25);
  const std::string json = MetricsToJson();
  EXPECT_NE(json.find("\"obs_test.json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Disabled-path overhead: recording through every metric type and
// constructing spans must not allocate while observability is off.
// ---------------------------------------------------------------------------

TEST(ObsOverheadTest, DisabledPathsDoNotAllocate) {
  if (TraceEnabled()) StopTrace();  // the suite may run with TPR_TRACE set
  SetMetricsEnabled(false);
  Counter& c = GetCounter("obs_test.noalloc_counter");
  Gauge& g = GetGauge("obs_test.noalloc_gauge");
  Histogram& h = GetHistogram("obs_test.noalloc_hist");

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (int i = 0; i < 1000; ++i) {
    c.Add();
    g.Set(i);
    h.Observe(i * 1e-3);
    ScopedSpan span("obs_test.noalloc_span");
    TraceCounter("obs_test.noalloc", 1.0);
  }
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0u);

  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

struct ParsedEvent {
  std::string name;
  char phase = '?';
  int tid = -1;
  int64_t ts = 0;
  int64_t dur = 0;
};

int64_t ExtractInt(const std::string& line, const std::string& key) {
  auto pos = line.find(key);
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << line;
  if (pos == std::string::npos) return 0;
  return std::atoll(line.c_str() + pos + key.size());
}

std::string ExtractString(const std::string& line, const std::string& key) {
  auto pos = line.find(key);
  if (pos == std::string::npos) return "";
  pos += key.size();
  return line.substr(pos, line.find('"', pos) - pos);
}

// Parses the one-event-per-line JSON StopTrace writes. Also sanity-checks
// the envelope and brace balance (our strings never contain braces).
std::vector<ParsedEvent> ParseTrace(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\"}"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));

  std::vector<ParsedEvent> events;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("{\"name\"", 0) != 0) continue;
    ParsedEvent e;
    e.name = ExtractString(line, "\"name\":\"");
    e.phase = ExtractString(line, "\"ph\":\"")[0];
    e.tid = static_cast<int>(ExtractInt(line, "\"tid\":"));
    e.ts = ExtractInt(line, "\"ts\":");
    if (e.phase == 'X') e.dur = ExtractInt(line, "\"dur\":");
    events.push_back(e);
  }
  return events;
}

const ParsedEvent* FindEvent(const std::vector<ParsedEvent>& events,
                             const std::string& name) {
  for (const auto& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

TEST(TraceTest, SpanNestingAndThreadAttribution) {
  const std::string path = ::testing::TempDir() + "/obs_trace_test.json";
  StartTrace(path);

  {
    ScopedSpan outer("obs_test.outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      ScopedSpan inner("obs_test.inner", "depth", 1.0);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  std::thread ta([] {
    SetTraceThreadName("obs-test-worker-a");
    ScopedSpan s("obs_test.thread_a");
  });
  std::thread tb([] { ScopedSpan s("obs_test.thread_b"); });
  ta.join();
  tb.join();

  TraceCounter("obs_test.queue", 3.0);
  ASSERT_TRUE(StopTrace());

  const auto events = ParseTrace(path);
  const ParsedEvent* outer = FindEvent(events, "obs_test.outer");
  const ParsedEvent* inner = FindEvent(events, "obs_test.inner");
  const ParsedEvent* a = FindEvent(events, "obs_test.thread_a");
  const ParsedEvent* b = FindEvent(events, "obs_test.thread_b");
  const ParsedEvent* counter = FindEvent(events, "obs_test.queue");
  const ParsedEvent* meta = FindEvent(events, "thread_name");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(counter, nullptr);
  ASSERT_NE(meta, nullptr);

  // Nesting: the inner complete event lies within the outer one, on the
  // same thread track.
  EXPECT_EQ(inner->tid, outer->tid);
  EXPECT_GE(inner->ts, outer->ts);
  EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur);
  EXPECT_GT(outer->dur, inner->dur);

  // Thread attribution: spawned threads get their own stable tids, and
  // the thread_name metadata lands on the thread that set it.
  EXPECT_NE(a->tid, outer->tid);
  EXPECT_NE(b->tid, outer->tid);
  EXPECT_NE(a->tid, b->tid);
  EXPECT_EQ(meta->tid, a->tid);
  EXPECT_EQ(meta->phase, 'M');
  EXPECT_EQ(counter->phase, 'C');
}

TEST(TraceTest, StopWithoutStartReturnsFalse) {
  if (TraceEnabled()) StopTrace();
  EXPECT_FALSE(StopTrace());
}

TEST(TraceTest, RestartDropsEventsFromPreviousTrace) {
  const std::string path = ::testing::TempDir() + "/obs_trace_restart.json";
  StartTrace(path + ".first");
  { ScopedSpan s("obs_test.before_restart"); }
  StartTrace(path);
  { ScopedSpan s("obs_test.after_restart"); }
  ASSERT_TRUE(StopTrace());
  const auto events = ParseTrace(path);
  EXPECT_EQ(FindEvent(events, "obs_test.before_restart"), nullptr);
  EXPECT_NE(FindEvent(events, "obs_test.after_restart"), nullptr);
}

// ---------------------------------------------------------------------------
// Instrumentation must not perturb training: with tracing AND metrics
// enabled, one epoch remains bitwise identical across thread counts
// (the same invariant par_test checks with observability off).
// ---------------------------------------------------------------------------

class ObsDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto preset = synth::AalborgPreset();
    synth::ScaleDataset(preset, 0.1);
    auto ds = synth::BuildPresetDataset(preset);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    auto data = std::make_shared<synth::CityDataset>(std::move(*ds));
    core::FeatureConfig fc;
    fc.temporal_graph.slots_per_day = 48;
    fc.node2vec.walks_per_node = 2;
    fc.node2vec.epochs = 1;
    auto fs = core::BuildFeatureSpace(data, fc);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    features_ = new std::shared_ptr<const core::FeatureSpace>(
        std::make_shared<const core::FeatureSpace>(std::move(*fs)));
  }

  static std::shared_ptr<const core::FeatureSpace>* features_;
};

std::shared_ptr<const core::FeatureSpace>* ObsDeterminismTest::features_ =
    nullptr;

TEST_F(ObsDeterminismTest, TracingPreservesThreadCountDeterminism) {
  const std::string path = ::testing::TempDir() + "/obs_determinism_trace.json";
  StartTrace(path);
  SetMetricsEnabled(true);

  std::vector<int> idx(24);
  std::iota(idx.begin(), idx.end(), 0);

  auto train = [&](int threads) {
    par::SetDefaultThreads(threads);
    core::WscConfig cfg;
    cfg.encoder.d_hidden = 16;
    cfg.encoder.projection_dim = 8;
    cfg.anchors_per_batch = 6;
    core::WscModel model(*features_, cfg);
    auto loss = model.TrainEpoch(idx);
    EXPECT_TRUE(loss.ok()) << loss.status().ToString();
    std::vector<float> flat;
    for (const auto& p : model.encoder().Parameters()) {
      const auto& v = p.value();
      flat.insert(flat.end(), v.data(), v.data() + v.size());
    }
    return std::make_pair(*loss, flat);
  };

  const auto [loss1, params1] = train(1);
  const auto [loss4, params4] = train(4);
  par::SetDefaultThreads(par::ConfiguredThreads());

  EXPECT_EQ(loss1, loss4);  // exact, not approximate
  ASSERT_EQ(params1.size(), params4.size());
  for (size_t i = 0; i < params1.size(); ++i) {
    ASSERT_EQ(params1[i], params4[i]) << "parameter element " << i;
  }

  // The trace collected during training must contain the trainer's and
  // optimizer's spans, and the instrumentation must have counted work.
  ASSERT_TRUE(StopTrace());
  const auto events = ParseTrace(path);
  EXPECT_NE(FindEvent(events, "wsc.train_epoch"), nullptr);
  EXPECT_NE(FindEvent(events, "wsc.shard"), nullptr);
  EXPECT_NE(FindEvent(events, "nn.adam_step"), nullptr);
  EXPECT_GT(GetCounter("nn.adam_steps").value(), 0u);
  EXPECT_GT(GetCounter("nn.matmul_ops").value(), 0u);
  EXPECT_GT(GetHistogram("nn.adam_step_seconds").count(), 0u);
}

}  // namespace
}  // namespace tpr::obs
