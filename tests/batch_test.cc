#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "batch/batch.h"
#include "core/encoder.h"
#include "core/features.h"
#include "fault/fault.h"
#include "gradcheck.h"
#include "kern/kern.h"
#include "nn/autograd.h"
#include "nn/modules.h"
#include "nn/padded_batch.h"
#include "nn/transformer.h"
#include "obs/metrics.h"
#include "quant/quant.h"
#include "serve/service.h"
#include "synth/presets.h"
#include "util/rng.h"

namespace tpr {
namespace {

using core::FeatureSpace;
using core::TemporalPathEncoder;

/// Pins the compute kernel for one scope. The scalar kernel is the
/// reproducibility anchor: under it, padded-batch forwards are bitwise
/// identical to single-sequence forwards (padded_batch.h), which is what
/// most of these tests assert.
class ScopedKernel {
 public:
  explicit ScopedKernel(kern::Kernel k) : prev_(kern::ActiveKernel()) {
    kern::SetKernel(k);
  }
  ~ScopedKernel() { kern::SetKernel(prev_); }
  ScopedKernel(const ScopedKernel&) = delete;
  ScopedKernel& operator=(const ScopedKernel&) = delete;

 private:
  kern::Kernel prev_;
};

nn::Tensor RandomTensor(int rows, int cols, Rng& rng) {
  nn::Tensor t(rows, cols);
  float* d = t.data();
  for (int i = 0; i < rows * cols; ++i) {
    d[i] = 2.0f * static_cast<float>(rng.Uniform()) - 1.0f;
  }
  return t;
}

// ---------------------------------------------------------------------------
// BatchFormer: deterministic formation, flushing, coalescing.
// ---------------------------------------------------------------------------

TEST(BatchFormerTest, GroupHashIsPureAndSensitiveToEveryComponent) {
  const graph::Path p{1, 2, 3};
  const uint64_t h = batch::BatchFormer::GroupHash(p, 900, 7);
  EXPECT_EQ(h, batch::BatchFormer::GroupHash(p, 900, 7));
  EXPECT_NE(h, batch::BatchFormer::GroupHash(p, 1800, 7));
  EXPECT_NE(h, batch::BatchFormer::GroupHash(p, 900, 8));
  EXPECT_NE(h, batch::BatchFormer::GroupHash({1, 2}, 900, 7));
  // The fold offsets edge ids, so a trailing edge 0 is not a no-op.
  EXPECT_NE(h, batch::BatchFormer::GroupHash({1, 2, 3, 0}, 900, 7));
}

TEST(BatchFormerTest, SizeFlushAtMaxBatchDistinctGroups) {
  batch::BatchConfig cfg;
  cfg.max_batch = 3;
  cfg.max_ticks = 1000;
  batch::BatchFormer former(cfg);
  EXPECT_FALSE(former.Arrive(1, {1}, 0, 0).has_value());
  EXPECT_FALSE(former.Arrive(2, {2}, 0, 0).has_value());
  auto flushed = former.Arrive(3, {3}, 0, 0);
  ASSERT_TRUE(flushed.has_value());
  EXPECT_EQ(flushed->seq, 0u);
  ASSERT_EQ(flushed->groups.size(), 3u);
  // Group-arrival order is preserved.
  EXPECT_EQ(flushed->groups[0].path, graph::Path{1});
  EXPECT_EQ(flushed->groups[2].path, graph::Path{3});
  EXPECT_FALSE(former.has_pending());

  // The next size flush gets the next sequence number.
  (void)former.Arrive(4, {1}, 0, 0);
  (void)former.Arrive(5, {2}, 0, 0);
  auto second = former.Arrive(6, {3}, 0, 0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->seq, 1u);
}

TEST(BatchFormerTest, AgeFlushAfterMaxTicksOfLogicalTime) {
  batch::BatchConfig cfg;
  cfg.max_batch = 100;
  cfg.max_ticks = 4;
  batch::BatchFormer former(cfg);
  EXPECT_FALSE(former.Tick().has_value()) << "nothing pending, nothing ages";
  EXPECT_FALSE(former.Arrive(1, {1}, 0, 0).has_value());
  EXPECT_FALSE(former.Tick().has_value());
  EXPECT_FALSE(former.Arrive(2, {2}, 0, 0).has_value());
  EXPECT_FALSE(former.Tick().has_value());
  EXPECT_FALSE(former.Tick().has_value());
  auto flushed = former.Tick();  // the OLDEST arrival is now 4 ticks old
  ASSERT_TRUE(flushed.has_value());
  EXPECT_EQ(flushed->groups.size(), 2u)
      << "arrivals during the window ride the aged batch";
  EXPECT_FALSE(former.has_pending());
}

TEST(BatchFormerTest, CoalesceJoinsDuplicatesWithinATimeBucket) {
  batch::BatchConfig cfg;
  cfg.max_batch = 100;
  cfg.time_bucket_s = 900;
  batch::BatchFormer former(cfg);
  const graph::Path p{4, 5};
  EXPECT_EQ(former.EncodeTime(100), 0);
  EXPECT_EQ(former.EncodeTime(850), 0);
  EXPECT_EQ(former.EncodeTime(950), 900);
  (void)former.Arrive(1, p, 100, 7);
  (void)former.Arrive(2, p, 850, 7);  // same bucket: joins ticket 1's group
  (void)former.Arrive(3, p, 950, 7);  // next bucket: its own group
  EXPECT_EQ(former.pending_groups(), 2);
  auto flushed = former.FlushAll();
  ASSERT_TRUE(flushed.has_value());
  ASSERT_EQ(flushed->groups.size(), 2u);
  EXPECT_EQ(flushed->groups[0].tickets, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(flushed->groups[0].encode_time_s, 0)
      << "a coalesced group encodes at the bucket-representative time";
  EXPECT_EQ(flushed->groups[1].tickets, (std::vector<uint64_t>{3}));
  EXPECT_EQ(flushed->groups[1].encode_time_s, 900);
  EXPECT_EQ(flushed->total_requests(), 3u);

  // A different salt (another model generation) never coalesces.
  (void)former.Arrive(4, p, 100, 7);
  (void)former.Arrive(5, p, 100, 8);
  EXPECT_EQ(former.pending_groups(), 2);
}

TEST(BatchFormerTest, CoalesceOffKeysEveryRequestByItsTicket) {
  batch::BatchConfig cfg;
  cfg.max_batch = 100;
  cfg.coalesce = false;
  batch::BatchFormer former(cfg);
  const graph::Path p{4, 5};
  EXPECT_EQ(former.EncodeTime(850), 850) << "no bucketing without coalescing";
  (void)former.Arrive(1, p, 850, 7);
  (void)former.Arrive(2, p, 850, 7);
  auto flushed = former.FlushAll();
  ASSERT_TRUE(flushed.has_value());
  ASSERT_EQ(flushed->groups.size(), 2u);
  EXPECT_NE(flushed->groups[0].key_hash, flushed->groups[1].key_hash);
  EXPECT_EQ(flushed->groups[0].encode_time_s, 850);
}

TEST(BatchFormerTest, FormationIsAPureFunctionOfTheArrivalTrace) {
  // One flattened signature of every flush decision the former makes
  // over a mixed trace (duplicates, bucket edges, size and age flushes).
  const auto run = [] {
    batch::BatchConfig cfg;
    cfg.max_batch = 5;
    cfg.max_ticks = 7;
    batch::BatchFormer former(cfg);
    std::vector<uint64_t> signature;
    const auto fold = [&signature](std::optional<batch::FormedBatch> b) {
      if (!b.has_value()) return;
      signature.push_back(b->seq);
      for (const auto& g : b->groups) {
        signature.push_back(g.key_hash);
        signature.push_back(static_cast<uint64_t>(g.encode_time_s));
        for (uint64_t t : g.tickets) signature.push_back(t);
      }
    };
    Rng rng(3);
    for (uint64_t ticket = 0; ticket < 400; ++ticket) {
      const graph::Path path{static_cast<int>(rng.Uniform() * 6),
                             static_cast<int>(rng.Uniform() * 6)};
      const int64_t depart = static_cast<int64_t>(rng.Uniform() * 4000);
      fold(former.Arrive(ticket, path, depart, /*salt=*/1));
      fold(former.Tick());  // mirrors the service: one tick per admission
    }
    fold(former.FlushAll());
    return signature;
  };
  const std::vector<uint64_t> a = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, run()) << "same trace must reproduce the same batches";
}

TEST(BatchFormerTest, FromEnvReadsOverridesAndIgnoresGarbage) {
  ::setenv("TPR_BATCH_MAX", "7", 1);
  ::setenv("TPR_BATCH_TICKS", "9", 1);
  batch::BatchConfig cfg = batch::FromEnv();
  EXPECT_EQ(cfg.max_batch, 7);
  EXPECT_EQ(cfg.max_ticks, 9);
  ::setenv("TPR_BATCH_MAX", "not-a-number", 1);
  ::unsetenv("TPR_BATCH_TICKS");
  batch::BatchConfig dflt;
  cfg = batch::FromEnv();
  EXPECT_EQ(cfg.max_batch, dflt.max_batch);
  EXPECT_EQ(cfg.max_ticks, dflt.max_ticks);
  ::unsetenv("TPR_BATCH_MAX");
}

// ---------------------------------------------------------------------------
// Padded-batch forwards: valid rows bitwise equal to single forwards
// under the scalar kernel (the contract of padded_batch.h).
// ---------------------------------------------------------------------------

template <typename Module>
void ExpectBatchRowsMatchSingle(const Module& module,
                                const std::vector<nn::Tensor>& seqs) {
  nn::NoGradGuard guard;
  const nn::PaddedBatch in = nn::PackSequences(seqs);
  const nn::PaddedBatch out = module.ForwardBatch(in);
  ASSERT_EQ(out.batch, in.batch);
  ASSERT_EQ(out.max_len, in.max_len);
  const int dim = out.data.cols();
  for (int b = 0; b < in.batch; ++b) {
    const nn::Var single = module.Forward(nn::Var::Leaf(seqs[b]));
    ASSERT_EQ(single.cols(), dim);
    for (int t = 0; t < in.lengths[b]; ++t) {
      for (int j = 0; j < dim; ++j) {
        ASSERT_EQ(out.data.value().at(out.row(t, b), j),
                  single.value().at(t, j))
            << "sequence " << b << " step " << t << " dim " << j;
      }
    }
  }
}

TEST(PaddedBatchTest, LstmForwardBatchRowsAreBitwiseEqualToSingle) {
  ScopedKernel scalar(kern::Kernel::kScalar);
  Rng rng(11);
  nn::Lstm lstm(6, 8, /*num_layers=*/2, rng);
  std::vector<nn::Tensor> seqs;
  for (int len : {5, 1, 3, 7, 2}) seqs.push_back(RandomTensor(len, 6, rng));
  ExpectBatchRowsMatchSingle(lstm, seqs);
}

TEST(PaddedBatchTest, GruForwardBatchRowsAreBitwiseEqualToSingle) {
  ScopedKernel scalar(kern::Kernel::kScalar);
  Rng rng(12);
  nn::GruLayer gru(6, 8, rng);
  std::vector<nn::Tensor> seqs;
  for (int len : {4, 1, 6, 2}) seqs.push_back(RandomTensor(len, 6, rng));
  ExpectBatchRowsMatchSingle(gru, seqs);
}

TEST(PaddedBatchTest, TransformerForwardBatchRowsAreBitwiseEqualToSingle) {
  ScopedKernel scalar(kern::Kernel::kScalar);
  Rng rng(13);
  nn::TransformerEncoder transformer(6, 8, /*num_layers=*/2, rng);
  std::vector<nn::Tensor> seqs;
  for (int len : {5, 2, 4, 1}) seqs.push_back(RandomTensor(len, 6, rng));
  ExpectBatchRowsMatchSingle(transformer, seqs);
}

// ---------------------------------------------------------------------------
// Gradients through the masked ops.
// ---------------------------------------------------------------------------

TEST(MaskedOpsTest, MaskedAggregationsGradcheck) {
  Rng rng(21);
  const std::vector<int> lengths = {4, 2, 3};
  nn::Var data = nn::XavierParam(4 * 3, 5, rng);  // max_len=4, batch=3
  testing::ExpectGradientsMatch(
      [&] {
        return nn::Add(nn::Sum(nn::SequenceMeanBatch(data, lengths)),
                       nn::Sum(nn::SequenceMaxBatch(data, lengths)));
      },
      {data});
}

TEST(MaskedOpsTest, MaskedAttentionGradcheck) {
  Rng rng(22);
  nn::Var scores = nn::XavierParam(3, 6, rng);
  nn::Var values = nn::XavierParam(6, 4, rng);
  testing::ExpectGradientsMatch(
      [&] {
        return nn::Sum(nn::MatMulValidCols(
            nn::SoftmaxRowsMasked(scores, /*valid=*/4), values, /*valid=*/4));
      },
      {scores, values});
}

TEST(MaskedOpsTest, LstmForwardBatchGradcheck) {
  Rng rng(23);
  nn::LstmLayer lstm(3, 4, rng);
  nn::PaddedBatch in;
  in.batch = 3;
  in.max_len = 4;
  in.lengths = {4, 2, 3};
  // Non-zero padding rows on purpose: the masked aggregation must not
  // read them, so their analytic AND numeric gradients are both zero.
  in.data = nn::XavierParam(in.rows(), 3, rng);
  std::vector<nn::Var> params = lstm.Parameters();
  params.push_back(in.data);
  testing::ExpectGradientsMatch(
      [&] {
        return nn::Sum(
            nn::SequenceMeanBatch(lstm.ForwardBatch(in).data, in.lengths));
      },
      params);
}

// ---------------------------------------------------------------------------
// Encoder-level bitwise equivalence on a tiny city.
// ---------------------------------------------------------------------------

class BatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto preset = synth::AalborgPreset();
    synth::ScaleDataset(preset, 0.1);
    auto ds = synth::BuildPresetDataset(preset);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    data_ = new std::shared_ptr<synth::CityDataset>(
        std::make_shared<synth::CityDataset>(std::move(*ds)));
    core::FeatureConfig fc;
    fc.temporal_graph.slots_per_day = 48;
    fc.node2vec.walks_per_node = 2;
    fc.node2vec.epochs = 1;
    auto fs = core::BuildFeatureSpace(*data_, fc);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    features_ = new std::shared_ptr<const FeatureSpace>(
        std::make_shared<const FeatureSpace>(std::move(*fs)));
  }

  // Freed so the suite is LeakSanitizer-clean (CI runs it under ASan).
  static void TearDownTestSuite() {
    delete features_;
    features_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  void SetUp() override {
    fault::ClearPlan();
    obs::SetMetricsEnabled(true);
    obs::ResetAllMetrics();
  }
  void TearDown() override {
    fault::ClearPlan();
    obs::SetMetricsEnabled(false);
  }

  static core::EncoderConfig TinyEncoder() {
    core::EncoderConfig cfg;
    cfg.d_hidden = 16;
    cfg.projection_dim = 8;
    return cfg;
  }

  static serve::ServiceConfig BatchedService() {
    serve::ServiceConfig cfg;
    cfg.num_workers = 2;
    cfg.queue_capacity = 64;
    cfg.block_when_full = true;
    cfg.max_retries = 2;
    cfg.backoff_base_ms = 0.01;
    cfg.backoff_max_ms = 0.05;
    cfg.breaker_trip_threshold = 5;
    cfg.breaker_open_requests = 4;
    cfg.cache_capacity = 256;
    cfg.time_bucket_s = 600;
    cfg.batch_max = 8;
    cfg.batch_ticks = 4;
    return cfg;
  }

  static void Install(const std::string& spec) {
    auto plan = fault::FaultPlan::Parse(spec);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    fault::InstallPlan(*std::move(plan));
  }

  serve::PathQuery Query(int sample, uint64_t id, int64_t time_shift = 0) {
    const auto& s =
        (*data_)->unlabeled[static_cast<size_t>(sample) %
                            (*data_)->unlabeled.size()];
    serve::PathQuery q;
    q.path = s.path;
    q.depart_time_s = s.depart_time_s + time_shift;
    q.id = id;
    return q;
  }

  /// N (path, time) items with varying path lengths and times.
  std::vector<core::PathTimeItem> Items(int n) const {
    std::vector<core::PathTimeItem> items;
    items.reserve(static_cast<size_t>(n));
    const auto& samples = (*data_)->unlabeled;
    for (int i = 0; i < n; ++i) {
      const auto& s = samples[static_cast<size_t>(i) % samples.size()];
      items.push_back(
          core::PathTimeItem{&s.path, s.depart_time_s + (i % 3) * 700});
    }
    return items;
  }

  std::shared_ptr<const FeatureSpace> features() { return *features_; }

  /// Int8 twin of `encoder` for the quantized rung, calibrated over a
  /// few dataset paths.
  std::shared_ptr<const quant::QuantizedEncoder> MakeTwin(
      const TemporalPathEncoder& encoder, uint64_t generation) {
    std::vector<core::PathTimeItem> calibration;
    const auto& samples = (*data_)->unlabeled;
    for (size_t i = 0; i < 8 && i < samples.size(); ++i) {
      calibration.push_back({&samples[i].path, samples[i].depart_time_s});
    }
    auto model = quant::QuantizeEncoder(encoder, calibration);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    if (!model.ok()) return nullptr;
    model->generation = generation;
    return std::make_shared<const quant::QuantizedEncoder>(
        features(), *std::move(model));
  }

  static std::shared_ptr<synth::CityDataset>* data_;
  static std::shared_ptr<const FeatureSpace>* features_;
};

std::shared_ptr<synth::CityDataset>* BatchTest::data_ = nullptr;
std::shared_ptr<const FeatureSpace>* BatchTest::features_ = nullptr;

TEST_F(BatchTest, EncodeValueBatchIsBitwiseEqualToSingleEncodes) {
  // The acceptance assertion: one padded batched forward returns, for
  // every item, exactly the bytes of an independent single encode —
  // across both sequence models and all three aggregations.
  ScopedKernel scalar(kern::Kernel::kScalar);
  for (core::SequenceModel model :
       {core::SequenceModel::kLstm, core::SequenceModel::kTransformer}) {
    for (core::Aggregation agg :
         {core::Aggregation::kMean, core::Aggregation::kMax,
          core::Aggregation::kLast}) {
      core::EncoderConfig cfg = TinyEncoder();
      cfg.sequence_model = model;
      cfg.aggregation = agg;
      TemporalPathEncoder encoder(features(), cfg);
      const std::vector<core::PathTimeItem> items = Items(6);
      const auto batch = encoder.EncodeValueBatch(items);
      ASSERT_EQ(batch.size(), items.size());
      for (size_t i = 0; i < items.size(); ++i) {
        EXPECT_EQ(batch[i], encoder.EncodeValue(*items[i].path,
                                                items[i].depart_time_s))
            << "item " << i << " model " << static_cast<int>(model)
            << " aggregation " << static_cast<int>(agg);
      }
    }
  }
}

TEST_F(BatchTest, EncodeValueBatchIsInvariantToBatchComposition) {
  // Under the ACTIVE kernel (scalar or avx2), an item's embedding must
  // not depend on what else rode in its batch: every padded row runs
  // lane-uniform, row-independent math. The batched service relies on
  // this — idle flushes change batch composition, never outcomes.
  TemporalPathEncoder encoder(features(), TinyEncoder());
  const std::vector<core::PathTimeItem> items = Items(6);
  const auto together = encoder.EncodeValueBatch(items);
  ASSERT_EQ(together.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    const auto alone = encoder.EncodeValueBatch({items[i]});
    ASSERT_EQ(alone.size(), 1u);
    EXPECT_EQ(together[i], alone[0]) << "item " << i;
  }
}

TEST_F(BatchTest, EncodeValueBatchCancellableHonoursCancellation) {
  TemporalPathEncoder encoder(features(), TinyEncoder());
  const std::vector<core::PathTimeItem> items = Items(3);
  auto full = encoder.EncodeValueBatchCancellable(items, [] { return false; });
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, encoder.EncodeValueBatch(items));
  EXPECT_FALSE(encoder.EncodeValueBatchCancellable(items, [] { return true; })
                   .has_value());
}

// ---------------------------------------------------------------------------
// Batched service: per-request semantics and determinism.
// ---------------------------------------------------------------------------

TEST_F(BatchTest, BatchedServiceServesTheBucketRepresentativeEncode) {
  ScopedKernel scalar(kern::Kernel::kScalar);
  serve::ServiceConfig cfg = BatchedService();
  auto encoder =
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  serve::InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(encoder, 1);
  ASSERT_TRUE(svc.Start().ok());

  // Two queries in the same time bucket: each encodes at the
  // bucket-representative time whether or not they coalesced, so their
  // embeddings are identical bytes — and exactly the direct encode at
  // the bucket floor.
  serve::PathQuery q1 = Query(0, 1);
  q1.depart_time_s = (q1.depart_time_s / cfg.time_bucket_s) * cfg.time_bucket_s;
  serve::PathQuery q2 = q1;
  q2.id = 2;
  q2.depart_time_s += cfg.time_bucket_s / 2;  // same bucket, later instant

  serve::ServeResult r1 = svc.SubmitAndWait(q1);
  serve::ServeResult r2 = svc.SubmitAndWait(q2);
  ASSERT_TRUE(r1.status.ok()) << r1.status.ToString();
  ASSERT_TRUE(r2.status.ok()) << r2.status.ToString();
  EXPECT_EQ(r1.rung, serve::Rung::kFull);
  EXPECT_EQ(r2.rung, serve::Rung::kFull);
  const std::vector<float> direct =
      encoder->EncodeValue(q1.path, q1.depart_time_s);
  EXPECT_EQ(r1.embedding, direct);
  EXPECT_EQ(r2.embedding, direct);
  EXPECT_GE(obs::GetCounter("serve.batches").value(), 1u);
  svc.Shutdown();
}

TEST_F(BatchTest, InjectedBatchFlushDropDegradesTheWholeGroup) {
  serve::ServiceConfig cfg = BatchedService();
  cfg.num_workers = 1;
  serve::InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("batch-flush:p=1");

  // Every flush drops: no rung-0 attempt is ever made (like alloc, and
  // no breaker signal), and the ladder serves the cache rung.
  serve::ServeResult first = svc.SubmitAndWait(Query(0, 100));
  ASSERT_TRUE(first.status.ok());
  EXPECT_EQ(first.rung, serve::Rung::kCached);
  EXPECT_EQ(first.attempts, 0);
  serve::ServeResult second = svc.SubmitAndWait(Query(0, 101));
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.rung, serve::Rung::kCached);
  EXPECT_EQ(second.embedding, first.embedding);
  EXPECT_EQ(obs::GetCounter("serve.breaker_trips").value(), 0u);
  svc.Shutdown();
}

TEST_F(BatchTest, BatchedTotalOutageRetriesThenFallsBack) {
  serve::ServiceConfig cfg = BatchedService();
  cfg.num_workers = 1;
  cfg.breaker_trip_threshold = 1000;  // keep rung 0 reachable
  serve::InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("encoder-forward:p=1");

  serve::ServeResult r = svc.SubmitAndWait(Query(1, 200));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rung, serve::Rung::kFallback);
  EXPECT_EQ(r.attempts, 1 + cfg.max_retries);
  EXPECT_GE(obs::GetCounter("serve.retries").value(),
            static_cast<uint64_t>(cfg.max_retries));
  svc.Shutdown();
}

TEST_F(BatchTest, QuantRungServesTheWholeGroupAtTheGroupEncodeTime) {
  serve::ServiceConfig cfg = BatchedService();
  cfg.num_workers = 1;
  cfg.breaker_trip_threshold = 1000;
  auto encoder =
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  auto twin = MakeTwin(*encoder, 1);
  ASSERT_NE(twin, nullptr);
  serve::InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(encoder, 1, twin);
  ASSERT_TRUE(svc.Start().ok());
  Install("encoder-forward:p=1");

  // Two queries in one (path, bucket) group: the fp32 batched ladder
  // exhausts, then ONE quantized group encode at the group's
  // bucket-representative time serves both members identical bytes.
  serve::PathQuery q1 = Query(0, 400);
  q1.depart_time_s =
      (q1.depart_time_s / cfg.time_bucket_s) * cfg.time_bucket_s;
  serve::PathQuery q2 = q1;
  q2.id = 401;
  q2.depart_time_s += cfg.time_bucket_s / 3;

  auto f1 = svc.Submit(q1);
  auto f2 = svc.Submit(q2);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  serve::ServeResult r1 = f1->get();
  serve::ServeResult r2 = f2->get();
  ASSERT_TRUE(r1.status.ok()) << r1.status.ToString();
  ASSERT_TRUE(r2.status.ok()) << r2.status.ToString();
  EXPECT_EQ(r1.rung, serve::Rung::kQuantized);
  EXPECT_EQ(r2.rung, serve::Rung::kQuantized);
  EXPECT_EQ(r1.attempts, 1 + cfg.max_retries);
  const std::vector<float> expected =
      twin->EncodeValue(q1.path, q1.depart_time_s);
  EXPECT_EQ(r1.embedding, expected);
  EXPECT_EQ(r2.embedding, expected)
      << "group members must share the bucket-representative quant encode";
  EXPECT_GE(obs::GetCounter("serve.quant_hits").value(), 2u);
  svc.Shutdown();
}

TEST_F(BatchTest, QuantEncodeFaultDegradesTheWholeGroupTogether) {
  serve::ServiceConfig cfg = BatchedService();
  cfg.num_workers = 1;
  auto encoder =
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  auto twin = MakeTwin(*encoder, 1);
  ASSERT_NE(twin, nullptr);
  serve::InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(encoder, 1, twin);
  ASSERT_TRUE(svc.Start().ok());
  // batch-flush drops the whole batch pre-encode; quant-encode (keyed by
  // the GROUP hash) then fails the twin for every member at once.
  Install("batch-flush:p=1;quant-encode:p=1");

  serve::PathQuery q1 = Query(0, 410);
  serve::PathQuery q2 = q1;
  q2.id = 411;
  auto f1 = svc.Submit(q1);
  auto f2 = svc.Submit(q2);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  serve::ServeResult r1 = f1->get();
  serve::ServeResult r2 = f2->get();
  ASSERT_TRUE(r1.status.ok());
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(r1.rung, serve::Rung::kCached);
  EXPECT_EQ(r2.rung, serve::Rung::kCached);
  EXPECT_EQ(r1.embedding, r2.embedding);
  EXPECT_EQ(obs::GetCounter("serve.quant_hits").value(), 0u);
  EXPECT_EQ(obs::GetCounter("serve.breaker_trips").value(), 0u)
      << "quantized failures must never feed the breaker";
  svc.Shutdown();
}

TEST_F(BatchTest, BatchFlushDropLandsOnTheQuantRungWhenTheTwinIsHealthy) {
  serve::ServiceConfig cfg = BatchedService();
  cfg.num_workers = 1;
  auto encoder =
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  auto twin = MakeTwin(*encoder, 1);
  ASSERT_NE(twin, nullptr);
  serve::InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(encoder, 1, twin);
  ASSERT_TRUE(svc.Start().ok());
  Install("batch-flush:p=1");

  serve::ServeResult r = svc.SubmitAndWait(Query(0, 420));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rung, serve::Rung::kQuantized);
  EXPECT_EQ(r.attempts, 0) << "batch-flush makes no rung-0 attempt";
  svc.Shutdown();
}

TEST_F(BatchTest, BatchedRetryRecoversFromATransientGroupFault) {
  serve::ServiceConfig cfg = BatchedService();
  cfg.num_workers = 1;
  cfg.breaker_trip_threshold = 1000;
  serve::InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("encoder-forward:p=0.5,seed=9");

  // Batched verdicts are keyed by the GROUP hash, not the request id:
  // find a query whose group fails attempt 0 and recovers on attempt 1.
  // The group key mirrors AdmitToGeneration: bucket-representative time,
  // salt = pinned generation (coalescing on).
  bool found = false;
  serve::PathQuery q;
  for (int sample = 0; sample < 64 && !found; ++sample) {
    q = Query(sample, 1000 + static_cast<uint64_t>(sample));
    const int64_t bucket =
        (q.depart_time_s / cfg.time_bucket_s) * cfg.time_bucket_s;
    const uint64_t key =
        batch::BatchFormer::GroupHash(q.path, bucket, /*salt=*/1);
    if (fault::WouldFail(fault::kEncoderForward, MixSeed(key, 0)) &&
        !fault::WouldFail(fault::kEncoderForward, MixSeed(key, 1))) {
      found = true;
    }
  }
  ASSERT_TRUE(found);

  serve::ServeResult r = svc.SubmitAndWait(q);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rung, serve::Rung::kFull);
  EXPECT_EQ(r.attempts, 2);
  svc.Shutdown();
}

TEST_F(BatchTest, ShutdownResolvesEveryWaitingBatchedRequest) {
  serve::ServiceConfig cfg = BatchedService();
  cfg.num_workers = 1;
  serve::InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("slow-worker:delay_ms=20");

  std::vector<std::future<serve::ServeResult>> futures;
  for (uint64_t i = 0; i < 12; ++i) {
    auto submitted = svc.Submit(Query(static_cast<int>(i), i));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  svc.Shutdown();
  int unavailable = 0;
  for (auto& f : futures) {
    serve::ServeResult r = f.get();  // promises parked in waiting_ too
    EXPECT_TRUE(r.status.ok() ||
                r.status.code() == StatusCode::kUnavailable)
        << r.status.ToString();
    unavailable += r.status.code() == StatusCode::kUnavailable ? 1 : 0;
  }
  EXPECT_GT(unavailable, 0) << "shutdown drained nothing";
}

// ---------------------------------------------------------------------------
// The batched determinism soak: same trace + plan => identical
// per-request outcomes across runs and worker counts — batch
// boundaries, coalescing, and grouped rung-retry ladders included.
// ---------------------------------------------------------------------------

struct Outcome {
  int code = 0;
  int rung = -1;
  int attempts = 0;
  std::vector<float> embedding;
  bool operator==(const Outcome& o) const {
    return code == o.code && rung == o.rung && attempts == o.attempts &&
           embedding == o.embedding;
  }
};

class BatchSoakTest : public BatchTest {
 protected:
  // encoder-forward exercises the group-keyed retry ladder, quant-encode
  // the group-level int8 rung, alloc and batch-flush the pre-encode
  // degrades, queue-full the admission sheds.
  static constexpr char kSpec[] =
      "encoder-forward:p=0.1;quant-encode:p=0.5,seed=7;alloc:p=0.02;"
      "queue-full:p=0.01;batch-flush:p=0.05";

  std::vector<Outcome> RunSoak(int num_workers, int n) {
    Install(kSpec);
    serve::ServiceConfig cfg = BatchedService();
    cfg.num_workers = num_workers;
    cfg.queue_capacity = 128;
    auto encoder =
        std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
    auto twin = MakeTwin(*encoder, 1);
    EXPECT_NE(twin, nullptr);
    serve::InferenceService svc(features(), TinyEncoder(), cfg);
    svc.InstallModel(encoder, 1, twin);
    EXPECT_TRUE(svc.Start().ok());

    // Single submitter, ids == tickets, duplicate-heavy trace: arrivals
    // come in runs of 8 identical (path, bucket) keys, so duplicates
    // land inside the same batch window and coalescing is exercised.
    std::vector<Outcome> outcomes(static_cast<size_t>(n));
    std::vector<std::pair<size_t, std::future<serve::ServeResult>>> pending;
    pending.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      auto submitted = svc.Submit(
          Query((i / 8) % 7, static_cast<uint64_t>(i), ((i / 8) % 3) * 500));
      if (!submitted.ok()) {
        outcomes[static_cast<size_t>(i)].code =
            static_cast<int>(submitted.status().code());
        continue;
      }
      pending.emplace_back(static_cast<size_t>(i), std::move(*submitted));
    }
    for (auto& [idx, future] : pending) {
      serve::ServeResult r = future.get();
      Outcome& o = outcomes[idx];
      o.code = static_cast<int>(r.status.code());
      if (r.status.ok()) {
        o.rung = static_cast<int>(r.rung);
        o.attempts = r.attempts;
        o.embedding = std::move(r.embedding);
      }
    }
    svc.Shutdown();
    fault::ClearPlan();
    return outcomes;
  }
};

TEST_F(BatchSoakTest, OutcomesAreIdenticalAcrossRunsAndWorkerCounts) {
  const int n = 3000;
  std::vector<Outcome> run_a = RunSoak(/*num_workers=*/4, n);

  int ok = 0, shed = 0;
  int rung_count[4] = {0, 0, 0, 0};
  for (const Outcome& o : run_a) {
    if (o.code == static_cast<int>(StatusCode::kOk)) {
      ++ok;
      ASSERT_GE(o.rung, 0);
      rung_count[o.rung] += 1;
      EXPECT_EQ(o.embedding.size(), 16u);
    } else {
      EXPECT_EQ(o.code, static_cast<int>(StatusCode::kResourceExhausted));
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, n);
  EXPECT_GT(ok, n / 2);
  EXPECT_GT(rung_count[0], 0) << "full rung never reached";
  EXPECT_GT(rung_count[1], 0) << "quantized rung never reached";
  EXPECT_GT(rung_count[2], 0) << "cached rung never reached";
  EXPECT_GT(obs::GetCounter("serve.batch_coalesced").value(), 0u)
      << "the duplicate-heavy trace never coalesced anything";

  // Same trace, same plan, same worker count: bitwise identical
  // per-request outcomes even though batch COMPOSITION (idle flushes)
  // is wall-clock dependent.
  std::vector<Outcome> run_b = RunSoak(/*num_workers=*/4, n);
  ASSERT_EQ(run_a.size(), run_b.size());
  for (size_t i = 0; i < run_a.size(); ++i) {
    ASSERT_TRUE(run_a[i] == run_b[i]) << "outcome diverged at request " << i;
  }

  // And a different worker count reproduces the same prefix: outcomes
  // are a pure function of the request, never of batch membership.
  const int m = 1000;
  std::vector<Outcome> run_c = RunSoak(/*num_workers=*/1, m);
  for (size_t i = 0; i < run_c.size(); ++i) {
    ASSERT_TRUE(run_a[i] == run_c[i])
        << "outcome diverged from single-worker run at request " << i;
  }
}

}  // namespace
}  // namespace tpr
