#include "par/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/wsc_trainer.h"
#include "nn/autograd.h"
#include "nn/grad_accumulator.h"
#include "synth/presets.h"

namespace tpr::par {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  int sum = 0;  // no atomics needed: everything runs on this thread
  pool.ParallelFor(10, [&](int i) { sum += i; });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(3);
  auto fut = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(3);
  auto fut = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](int i) {
                         if (i == 37) throw std::runtime_error("bad index");
                       }),
      std::runtime_error);
  // The pool must stay usable after an aborted loop.
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

// When several indices throw concurrently, the smallest-index exception
// must be the one rethrown on the calling thread. Indices are claimed in
// ascending order, so the smallest throwing index always fires before
// the abort flag can stop it — the winner is deterministic at any thread
// count. Repeated to rattle the race under TSan.
TEST(ThreadPoolTest, ParallelForRethrowsTheSmallestIndexException) {
  ThreadPool pool(4);
  for (int rep = 0; rep < 25; ++rep) {
    try {
      pool.ParallelFor(256, [&](int i) {
        if (i == 10 || i == 90 || i == 200) {
          throw std::runtime_error(std::to_string(i));
        }
      });
      FAIL() << "ParallelFor must rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "10") << "rep " << rep;
    }
  }
}

// Exception storm: every participant throws repeatedly while others are
// mid-iteration. The loop must neither terminate the process nor wedge
// the pool, and index 0 — always the first claim — must win the rethrow.
TEST(ThreadPoolTest, ExceptionStormLeavesThePoolUsable) {
  ThreadPool pool(4);
  for (int rep = 0; rep < 10; ++rep) {
    try {
      pool.ParallelFor(128, [&](int i) {
        if (i % 7 == 0) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "ParallelFor must rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "0") << "rep " << rep;
    }
    std::atomic<int> count{0};
    pool.ParallelFor(32, [&](int) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 32);
  }
}

TEST(ThreadPoolTest, SubmitExceptionDoesNotPoisonLaterTasks) {
  ThreadPool pool(3);
  auto bad = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  auto good = pool.Submit([] { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(6 * 5);
  pool.ParallelFor(6, [&](int i) {
    pool.ParallelFor(5, [&](int j) { hits[i * 5 + j].fetch_add(1); });
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, NestedSubmitRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&](int i) {
    auto fut = pool.Submit([i] { return i + 1; });
    total.fetch_add(fut.get());
  });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPoolTest, WorkerIndexStaysWithinPoolBounds) {
  ThreadPool pool(4);
  EXPECT_EQ(WorkerIndex(), 0);  // caller thread
  std::atomic<bool> in_bounds{true};
  pool.ParallelFor(64, [&](int) {
    const int w = WorkerIndex();
    if (w < 0 || w >= pool.num_threads()) in_bounds = false;
  });
  EXPECT_TRUE(in_bounds.load());
}

TEST(ThreadPoolTest, ConfiguredThreadsIsPositive) {
  EXPECT_GE(ConfiguredThreads(), 1);
}

// ---------------------------------------------------------------------------
// GradAccumulator
// ---------------------------------------------------------------------------

TEST(GradAccumulatorTest, ReduceSumsShardsInOrder) {
  auto master = nn::Var::Leaf(nn::Tensor::RowVector({1.0f, 2.0f}), true);
  nn::GradAccumulator acc({master});
  acc.BeginBatch(3);

  // Fill shards 2, 0 out of order; leave shard 1 empty (failed shard).
  for (int shard : {2, 0}) {
    auto replica = nn::Var::Leaf(nn::Tensor::RowVector({1.0f, 2.0f}), true);
    auto loss = nn::Sum(nn::Scale(replica, static_cast<float>(shard + 1)));
    loss.Backward();
    acc.CaptureShard(shard, {replica});
    // Capture moves the gradient out, leaving the replica reusable.
    EXPECT_TRUE(replica.grad().empty());
  }
  EXPECT_EQ(acc.captured(), 2);

  master.ZeroGrad();
  acc.Reduce(0.5f);
  // d(shard0)/dp = 1, d(shard2)/dp = 3; scaled by 0.5 -> 2.0 per element.
  ASSERT_FALSE(master.grad().empty());
  EXPECT_FLOAT_EQ(master.grad().at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(master.grad().at(0, 1), 2.0f);
}

TEST(GradAccumulatorTest, CopyParamValuesSyncsReplicas) {
  auto master = nn::Var::Leaf(nn::Tensor::RowVector({3.0f, -1.0f}), true);
  std::vector<nn::Var> replica = {
      nn::Var::Leaf(nn::Tensor::RowVector({0.0f, 0.0f}), true)};
  nn::CopyParamValues({master}, replica);
  EXPECT_FLOAT_EQ(replica[0].value().at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(replica[0].value().at(0, 1), -1.0f);
}

// ---------------------------------------------------------------------------
// End-to-end determinism: training must be bitwise identical for any
// thread count because shard structure and rng streams never depend on
// the thread count, and gradients reduce in fixed shard order.
// ---------------------------------------------------------------------------

class ParDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto preset = synth::AalborgPreset();
    synth::ScaleDataset(preset, 0.1);
    auto ds = synth::BuildPresetDataset(preset);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    auto data = std::make_shared<synth::CityDataset>(std::move(*ds));
    core::FeatureConfig fc;
    fc.temporal_graph.slots_per_day = 48;
    fc.node2vec.walks_per_node = 2;
    fc.node2vec.epochs = 1;
    auto fs = core::BuildFeatureSpace(data, fc);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    features_ = new std::shared_ptr<const core::FeatureSpace>(
        std::make_shared<const core::FeatureSpace>(std::move(*fs)));
  }

  static core::WscConfig TinyWsc() {
    core::WscConfig cfg;
    cfg.encoder.d_hidden = 16;
    cfg.encoder.projection_dim = 8;
    cfg.anchors_per_batch = 6;
    return cfg;
  }

  static std::shared_ptr<const core::FeatureSpace>* features_;
};

std::shared_ptr<const core::FeatureSpace>* ParDeterminismTest::features_ =
    nullptr;

TEST_F(ParDeterminismTest, TrainEpochIsBitwiseIdenticalAcrossThreadCounts) {
  std::vector<int> idx(24);
  std::iota(idx.begin(), idx.end(), 0);

  auto train = [&](int threads) {
    SetDefaultThreads(threads);
    core::WscModel model(*features_, TinyWsc());
    auto loss = model.TrainEpoch(idx);
    EXPECT_TRUE(loss.ok()) << loss.status().ToString();
    std::vector<float> flat;
    for (const auto& p : model.encoder().Parameters()) {
      const auto& v = p.value();
      flat.insert(flat.end(), v.data(), v.data() + v.size());
    }
    return std::make_pair(*loss, flat);
  };

  const auto [loss1, params1] = train(1);
  const auto [loss4, params4] = train(4);
  SetDefaultThreads(ConfiguredThreads());  // restore for other tests

  EXPECT_EQ(loss1, loss4);  // exact, not approximate
  ASSERT_EQ(params1.size(), params4.size());
  for (size_t i = 0; i < params1.size(); ++i) {
    ASSERT_EQ(params1[i], params4[i]) << "parameter element " << i;
  }
}

}  // namespace
}  // namespace tpr::par
