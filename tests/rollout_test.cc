#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <limits>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/features.h"
#include "core/probe.h"
#include "fault/fault.h"
#include "nn/autograd.h"
#include "obs/metrics.h"
#include "quant/quant.h"
#include "rollout/controller.h"
#include "rollout/manifest.h"
#include "serve/service.h"
#include "synth/presets.h"
#include "util/rng.h"

namespace tpr::rollout {
namespace {

using core::FeatureSpace;
using core::TemporalPathEncoder;
using serve::InferenceService;
using serve::PathQuery;
using serve::ServeResult;
using serve::ServiceConfig;

std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "tpr_rollout_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Deterministic additive noise on every parameter: a "new training
/// generation" that is different but of comparable quality.
void PerturbParameters(TemporalPathEncoder& encoder, float scale,
                       uint64_t seed) {
  Rng rng(seed);
  for (nn::Var p : encoder.Parameters()) {
    if (!p.defined()) continue;
    nn::Tensor& t = p.mutable_value();
    float* d = t.data();
    for (size_t i = 0; i < t.size(); ++i) {
      d[i] += scale * (2.0f * static_cast<float>(rng.Uniform()) - 1.0f);
    }
  }
}

/// Zeroes every parameter: the embeddings collapse and the probe
/// read-out degenerates to a constant predictor — a *quality*
/// regression with perfectly finite parameters.
void ZeroParameters(TemporalPathEncoder& encoder) {
  for (nn::Var p : encoder.Parameters()) {
    if (!p.defined()) continue;
    nn::Tensor& t = p.mutable_value();
    float* d = t.data();
    for (size_t i = 0; i < t.size(); ++i) d[i] = 0.0f;
  }
}

// ---------------------------------------------------------------------------
// Fixture on the tiny city (shared across the suite, built once).
// ---------------------------------------------------------------------------

class RolloutTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto preset = synth::AalborgPreset();
    synth::ScaleDataset(preset, 0.1);
    auto ds = synth::BuildPresetDataset(preset);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    data_ = new std::shared_ptr<synth::CityDataset>(
        std::make_shared<synth::CityDataset>(std::move(*ds)));
    core::FeatureConfig fc;
    fc.temporal_graph.slots_per_day = 48;
    fc.node2vec.walks_per_node = 2;
    fc.node2vec.epochs = 1;
    auto fs = core::BuildFeatureSpace(*data_, fc);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    features_ = new std::shared_ptr<const FeatureSpace>(
        std::make_shared<const FeatureSpace>(std::move(*fs)));
  }

  static void TearDownTestSuite() {
    delete features_;
    features_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  void SetUp() override {
    fault::ClearPlan();
    obs::SetMetricsEnabled(true);
    obs::ResetAllMetrics();
  }
  void TearDown() override {
    fault::ClearPlan();
    obs::SetMetricsEnabled(false);
  }

  static core::EncoderConfig TinyEncoder() {
    core::EncoderConfig cfg;
    cfg.d_hidden = 16;
    cfg.projection_dim = 8;
    return cfg;
  }

  static ServiceConfig TinyService() {
    ServiceConfig cfg;
    cfg.num_workers = 2;
    cfg.queue_capacity = 128;
    cfg.block_when_full = true;
    cfg.max_retries = 2;
    cfg.backoff_base_ms = 0.01;
    cfg.backoff_max_ms = 0.05;
    cfg.breaker_trip_threshold = 5;
    cfg.breaker_open_requests = 4;
    cfg.cache_capacity = 256;
    cfg.time_bucket_s = 600;
    cfg.canary_permille = 300;
    cfg.canary_promote_after = 8;
    return cfg;
  }

  static void Install(const std::string& spec) {
    auto plan = fault::FaultPlan::Parse(spec);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    fault::InstallPlan(*std::move(plan));
  }

  PathQuery Query(int sample, uint64_t id, int64_t time_shift = 0) {
    const auto& s =
        (*data_)->unlabeled[static_cast<size_t>(sample) %
                            (*data_)->unlabeled.size()];
    PathQuery q;
    q.path = s.path;
    q.depart_time_s = s.depart_time_s + time_shift;
    q.id = id;
    return q;
  }

  static core::ProbeSet Probe() { return core::BuildProbeSet(**data_, 48, 5); }

  std::shared_ptr<const FeatureSpace> features() { return *features_; }

  std::shared_ptr<TemporalPathEncoder> MakeEncoder() {
    return std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  }

  static std::shared_ptr<synth::CityDataset>* data_;
  static std::shared_ptr<const FeatureSpace>* features_;
};

std::shared_ptr<synth::CityDataset>* RolloutTest::data_ = nullptr;
std::shared_ptr<const FeatureSpace>* RolloutTest::features_ = nullptr;

// Temporary diagnostic: prints the empirical constants the soak pins.
TEST_F(RolloutTest, DISABLED_Diagnostics) {
  const core::ProbeSet probe = Probe();
  auto base = MakeEncoder();
  auto base_mae = core::ProbeTravelTimeMae(*base, probe);
  ASSERT_TRUE(base_mae.ok()) << base_mae.status().ToString();
  std::printf("base mae       = %.6f\n", *base_mae);
  for (uint64_t seed : {2ull, 4ull, 5ull}) {
    auto good = MakeEncoder();
    PerturbParameters(*good, 0.02f, seed);
    auto mae = core::ProbeTravelTimeMae(*good, probe);
    ASSERT_TRUE(mae.ok());
    std::printf("perturbed(%llu) = %.6f (ratio %.4f)\n",
                static_cast<unsigned long long>(seed), *mae,
                *mae / *base_mae);
  }
  auto bad = MakeEncoder();
  ZeroParameters(*bad);
  EXPECT_TRUE(core::AllParametersFinite(*bad));
  auto bad_mae = core::ProbeTravelTimeMae(*bad, probe);
  if (bad_mae.ok()) {
    std::printf("zeroed mae     = %.6f (ratio %.4f)\n", *bad_mae,
                *bad_mae / *base_mae);
  } else {
    std::printf("zeroed mae     = ERROR %s\n",
                bad_mae.status().ToString().c_str());
  }
  // Seed search for the canary-regression site: want gen 4 to fail and
  // gens 2, 5 to pass.
  for (uint64_t s = 0; s < 64; ++s) {
    char spec[64];
    std::snprintf(spec, sizeof spec, "canary-regression:p=0.5,seed=%llu",
                  static_cast<unsigned long long>(s));
    auto plan = fault::FaultPlan::Parse(spec);
    ASSERT_TRUE(plan.ok());
    fault::InstallPlan(*std::move(plan));
    const bool g2 = fault::WouldFail(fault::kCanaryRegression, 2);
    const bool g4 = fault::WouldFail(fault::kCanaryRegression, 4);
    const bool g5 = fault::WouldFail(fault::kCanaryRegression, 5);
    if (!g2 && g4 && !g5) {
      std::printf("canary-regression seed = %llu\n",
                  static_cast<unsigned long long>(s));
      break;
    }
  }
  fault::ClearPlan();
}

// ---------------------------------------------------------------------------
// Manifest unit tests.
// ---------------------------------------------------------------------------

TEST_F(RolloutTest, ManifestEncodeDecodeRoundTrip) {
  Manifest m;
  ModelRecord a;
  a.generation = 3;
  a.state = ModelState::kLive;
  a.probe_mae = 12.5;
  a.incumbent_mae = 13.0;
  a.reason = "bootstrap";
  m.Upsert(a);
  ModelRecord b;
  b.generation = 7;
  b.state = ModelState::kQuarantined;
  b.reason = "quality regression: probe mae 99 vs incumbent 12";
  m.Upsert(b);
  m.set_live_generation(3);
  m.set_canary_generation(0);

  auto decoded = Manifest::Decode(m.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->live_generation(), 3u);
  EXPECT_EQ(decoded->canary_generation(), 0u);
  ASSERT_EQ(decoded->records().size(), 2u);
  const ModelRecord* ra = decoded->Find(3);
  ASSERT_NE(ra, nullptr);
  EXPECT_EQ(ra->state, ModelState::kLive);
  EXPECT_DOUBLE_EQ(ra->probe_mae, 12.5);
  EXPECT_DOUBLE_EQ(ra->incumbent_mae, 13.0);
  EXPECT_EQ(ra->reason, "bootstrap");
  const ModelRecord* rb = decoded->Find(7);
  ASSERT_NE(rb, nullptr);
  EXPECT_EQ(rb->state, ModelState::kQuarantined);
  EXPECT_DOUBLE_EQ(rb->probe_mae, -1.0);

  EXPECT_FALSE(Manifest::Decode("not a manifest").ok());
}

TEST_F(RolloutTest, ManifestPublishIsAtomicAndTornPublishFallsBackToMirror) {
  const std::string dir = ScratchDir("manifest_torn");
  Manifest m;
  ModelRecord rec;
  rec.generation = 1;
  rec.state = ModelState::kLive;
  rec.reason = "bootstrap";
  m.Upsert(rec);
  m.set_live_generation(1);
  ASSERT_TRUE(m.Publish(dir).ok());

  auto loaded = Manifest::Load(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->live_generation(), 1u);
  EXPECT_EQ(loaded->publish_count(), 1u);

  // A torn publish writes a truncated primary; the mirror still holds the
  // previous good state and Load falls back to it.
  m.set_live_generation(2);
  Install("rollout-publish:nth=1");
  EXPECT_EQ(m.Publish(dir).code(), StatusCode::kInternal);
  fault::ClearPlan();
  EXPECT_GE(obs::GetCounter("rollout.publish_torn").value(), 1u);

  auto recovered = Manifest::Load(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->live_generation(), 1u)
      << "mirror must serve the pre-tear state";
  EXPECT_GE(obs::GetCounter("rollout.manifest_torn").value(), 1u);

  // Republishing heals the primary.
  ASSERT_TRUE(m.Publish(dir).ok());
  auto healed = Manifest::Load(dir);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->live_generation(), 2u);

  EXPECT_EQ(Manifest::Load(ScratchDir("manifest_empty")).status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Controller gate tests.
// ---------------------------------------------------------------------------

TEST_F(RolloutTest, ControllerBootstrapsFirstValidGeneration) {
  const std::string dir = ScratchDir("bootstrap");
  auto enc = MakeEncoder();
  ASSERT_TRUE(InferenceService::SaveModel(*enc, dir, 1).ok());

  InferenceService svc(features(), TinyEncoder(), TinyService());
  RolloutConfig rcfg;
  rcfg.model_dir = dir;
  RolloutController ctl(&svc, features(), TinyEncoder(), Probe(), rcfg);
  ASSERT_TRUE(ctl.Init().ok());

  auto report = ctl.Tick();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->published);
  EXPECT_EQ(svc.model_generation(), 1u);
  EXPECT_NE(svc.live_model(), nullptr);
  EXPECT_EQ(ctl.manifest().live_generation(), 1u);
  EXPECT_GT(ctl.incumbent_mae(), 0.0);
  EXPECT_EQ(obs::GetCounter("rollout.bootstraps").value(), 1u);

  // The published manifest round-trips from disk.
  auto loaded = Manifest::Load(dir);
  ASSERT_TRUE(loaded.ok());
  const ModelRecord* rec = loaded->Find(1);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, ModelState::kLive);
  EXPECT_EQ(rec->reason, "bootstrap");

  // An idle tick makes no decisions and publishes nothing.
  auto idle = ctl.Tick();
  ASSERT_TRUE(idle.ok());
  EXPECT_FALSE(idle->published);
  EXPECT_TRUE(idle->events.empty());
}

TEST_F(RolloutTest, ControllerQuarantinesCorruptAndNonFiniteCandidates) {
  const std::string dir = ScratchDir("gates");
  auto enc = MakeEncoder();
  ASSERT_TRUE(InferenceService::SaveModel(*enc, dir, 1).ok());

  InferenceService svc(features(), TinyEncoder(), TinyService());
  RolloutConfig rcfg;
  rcfg.model_dir = dir;
  RolloutController ctl(&svc, features(), TinyEncoder(), Probe(), rcfg);
  ASSERT_TRUE(ctl.Init().ok());
  ASSERT_TRUE(ctl.Tick().ok());  // bootstrap gen 1

  // Gen 2: garbage bytes — fails the envelope gate.
  ckpt::CheckpointDir cdir(dir);
  {
    std::ofstream out(cdir.PathFor(2), std::ios::binary);
    out << "corrupt candidate";
  }
  // Gen 3: finite-shaped but NaN parameters — fails the finiteness gate.
  auto poisoned = MakeEncoder();
  {
    nn::Var p = poisoned->Parameters().front();
    p.mutable_value().data()[0] = std::numeric_limits<float>::quiet_NaN();
  }
  ASSERT_TRUE(InferenceService::SaveModel(*poisoned, dir, 3).ok());

  auto report = ctl.Tick();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(obs::GetCounter("rollout.quarantined").value(), 2u);
  EXPECT_EQ(svc.model_generation(), 1u) << "live traffic undisturbed";
  const ModelRecord* r2 = ctl.manifest().Find(2);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r2->state, ModelState::kQuarantined);
  EXPECT_NE(r2->reason.find("envelope"), std::string::npos) << r2->reason;
  const ModelRecord* r3 = ctl.manifest().Find(3);
  ASSERT_NE(r3, nullptr);
  EXPECT_EQ(r3->state, ModelState::kQuarantined);
  EXPECT_EQ(r3->reason, "non-finite parameters");

  // Both files moved into quarantine/ and are never re-offered.
  namespace fs = std::filesystem;
  for (uint64_t gen : {2ull, 3ull}) {
    const fs::path moved =
        fs::path(dir) / "quarantine" / fs::path(cdir.PathFor(gen)).filename();
    EXPECT_TRUE(fs::exists(moved)) << moved;
    EXPECT_FALSE(fs::exists(cdir.PathFor(gen)));
  }
  auto idle = ctl.Tick();
  ASSERT_TRUE(idle.ok());
  EXPECT_TRUE(idle->events.empty()) << "quarantined generations re-offered";
}

TEST_F(RolloutTest, ControllerQuarantinesQualityRegressionsAndRemembersAcrossRestart) {
  const std::string dir = ScratchDir("quality");
  auto enc = MakeEncoder();
  ASSERT_TRUE(InferenceService::SaveModel(*enc, dir, 1).ok());

  InferenceService svc(features(), TinyEncoder(), TinyService());
  RolloutConfig rcfg;
  rcfg.model_dir = dir;
  rcfg.quality_budget = 0.10;
  RolloutController ctl(&svc, features(), TinyEncoder(), Probe(), rcfg);
  ASSERT_TRUE(ctl.Init().ok());
  ASSERT_TRUE(ctl.Tick().ok());  // bootstrap gen 1

  // Gen 2 collapses to a constant predictor: ~29% worse probe MAE, far
  // outside the 10% budget.
  auto bad = MakeEncoder();
  ZeroParameters(*bad);
  ASSERT_TRUE(InferenceService::SaveModel(*bad, dir, 2).ok());
  auto report = ctl.Tick();
  ASSERT_TRUE(report.ok());
  const ModelRecord* r2 = ctl.manifest().Find(2);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r2->state, ModelState::kQuarantined);
  EXPECT_NE(r2->reason.find("quality regression"), std::string::npos)
      << r2->reason;
  EXPECT_GT(r2->probe_mae, r2->incumbent_mae);
  EXPECT_EQ(svc.canary_status().installed, false);

  // Gen 3 is comparable quality: it passes the gate and starts canarying.
  auto good = MakeEncoder();
  PerturbParameters(*good, 0.02f, 3);
  ASSERT_TRUE(InferenceService::SaveModel(*good, dir, 3).ok());
  ASSERT_TRUE(ctl.Tick().ok());
  EXPECT_TRUE(svc.canary_status().installed);
  EXPECT_EQ(svc.canary_status().generation, 3u);
  const ModelRecord* r3 = ctl.manifest().Find(3);
  ASSERT_NE(r3, nullptr);
  EXPECT_EQ(r3->state, ModelState::kCanary);

  // A restarted controller reloads the same state from the manifest: the
  // quarantined generation stays quarantined, the incumbent baseline is
  // restored, and nothing is re-decided.
  RolloutController again(&svc, features(), TinyEncoder(), Probe(), rcfg);
  ASSERT_TRUE(again.Init().ok());
  EXPECT_EQ(again.manifest().live_generation(), 1u);
  EXPECT_DOUBLE_EQ(again.incumbent_mae(), ctl.incumbent_mae());
  const ModelRecord* reloaded = again.manifest().Find(2);
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(reloaded->state, ModelState::kQuarantined);
}

// ---------------------------------------------------------------------------
// Gate 5: the quantized twin.
// ---------------------------------------------------------------------------

TEST_F(RolloutTest, ControllerPublishesQuantizedTwinsThroughTheMaeGate) {
  const std::string dir = ScratchDir("twin");
  auto enc = MakeEncoder();
  ASSERT_TRUE(InferenceService::SaveModel(*enc, dir, 1).ok());

  InferenceService svc(features(), TinyEncoder(), TinyService());
  RolloutConfig rcfg;
  rcfg.model_dir = dir;
  RolloutController ctl(&svc, features(), TinyEncoder(), Probe(), rcfg);
  ASSERT_TRUE(ctl.Init().ok());
  auto report = ctl.Tick();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->published);

  // The bootstrap published its int8 twin beside the checkpoint.
  auto artifact = quant::LoadQuantizedModel(dir, 1);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_EQ(artifact->generation, 1u);
  EXPECT_EQ(obs::GetCounter("rollout.quant_twins").value(), 1u);
  auto has_event = [&](const TickReport& r, const std::string& needle) {
    for (const std::string& e : r.events) {
      if (e.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_event(*report, "quantized twin passed"));

  // Under a total fp32 encoder outage the installed twin answers traffic
  // from the quantized rung, at the live generation.
  ASSERT_TRUE(svc.Start().ok());
  Install("encoder-forward:p=1");
  auto submitted = svc.Submit(Query(0, 900));
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  ServeResult r = submitted->get();
  fault::ClearPlan();
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.rung, serve::Rung::kQuantized);
  EXPECT_EQ(r.generation, 1u);
  svc.Shutdown();

  // A canary candidate carries its own twin: gen 2 publishes quant-2.q8
  // before the canary begins.
  auto good = MakeEncoder();
  PerturbParameters(*good, 0.02f, 2);
  ASSERT_TRUE(InferenceService::SaveModel(*good, dir, 2).ok());
  auto canary_report = ctl.Tick();
  ASSERT_TRUE(canary_report.ok()) << canary_report.status().ToString();
  EXPECT_TRUE(svc.canary_status().installed);
  EXPECT_TRUE(has_event(*canary_report, "quantized twin passed"));
  EXPECT_TRUE(quant::LoadQuantizedModel(dir, 2).ok());
  EXPECT_EQ(obs::GetCounter("rollout.quant_twins").value(), 2u);
}

TEST_F(RolloutTest, NegativeTwinDeltaDrillQuarantinesTheCandidateAndItsArtifact) {
  const std::string dir = ScratchDir("twin_drill");
  auto enc = MakeEncoder();
  ASSERT_TRUE(InferenceService::SaveModel(*enc, dir, 1).ok());

  InferenceService svc(features(), TinyEncoder(), TinyService());
  RolloutConfig rcfg;
  rcfg.model_dir = dir;
  // A negative delta budget fails every twin deterministically: the
  // quarantine drill. The fp32 candidate is perfectly healthy, yet it
  // must not go live without its twin.
  rcfg.quant_mae_delta = -1.0;
  RolloutController ctl(&svc, features(), TinyEncoder(), Probe(), rcfg);
  ASSERT_TRUE(ctl.Init().ok());
  auto report = ctl.Tick();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->published && svc.live_model() != nullptr)
      << "drill candidate went live";

  EXPECT_EQ(svc.live_model(), nullptr);
  EXPECT_EQ(obs::GetCounter("rollout.quarantined").value(), 1u);
  EXPECT_EQ(obs::GetCounter("rollout.quant_twins").value(), 0u);
  const ModelRecord* rec = ctl.manifest().Find(1);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, ModelState::kQuarantined);
  EXPECT_NE(rec->reason.find("quantized twin"), std::string::npos)
      << rec->reason;
  // No orphaned artifact survives the quarantine.
  EXPECT_EQ(quant::LoadQuantizedModel(dir, 1).status().code(),
            StatusCode::kNotFound);
}

TEST_F(RolloutTest, DisablingTwinsSkipsGateFiveAndPublishesNoArtifact) {
  const std::string dir = ScratchDir("twin_off");
  auto enc = MakeEncoder();
  ASSERT_TRUE(InferenceService::SaveModel(*enc, dir, 1).ok());

  InferenceService svc(features(), TinyEncoder(), TinyService());
  RolloutConfig rcfg;
  rcfg.model_dir = dir;
  rcfg.quantize_twins = false;
  RolloutController ctl(&svc, features(), TinyEncoder(), Probe(), rcfg);
  ASSERT_TRUE(ctl.Init().ok());
  auto report = ctl.Tick();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->published);
  EXPECT_EQ(svc.model_generation(), 1u);

  bool skipped = false;
  for (const std::string& e : report->events) {
    skipped = skipped || e.find("quantized twin skipped") != std::string::npos;
  }
  EXPECT_TRUE(skipped);
  EXPECT_EQ(obs::GetCounter("rollout.quant_twins").value(), 0u);
  EXPECT_EQ(quant::LoadQuantizedModel(dir, 1).status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Acceptance soak: determinism under fault.
//
// A fixed fault spec + seed drives five generation publishes through the
// full lifecycle — bootstrap, clean promotion, quality-regression
// quarantine, injected canary-regression rollback, and a second promotion
// — with torn manifest publishes injected along the way (rollout-publish
// tears calls 3, 6, 9, ...). The complete rollout trace (tick events) and
// every request's (status, rung, attempts, generation, canary, embedding
// bytes) must be bitwise identical across repeated runs and across worker
// counts, and incumbent traffic must observe zero non-injected failures.
// ---------------------------------------------------------------------------

constexpr char kSoakSpec[] =
    "encoder-forward:p=0.08;alloc:p=0.02;"
    "canary-regression:p=0.5,seed=3;rollout-publish:nth=3";

struct Outcome {
  StatusCode code = StatusCode::kOk;
  serve::Rung rung = serve::Rung::kFull;
  int attempts = 0;
  uint64_t generation = 0;
  bool canary = false;
  std::vector<float> embedding;
  bool operator==(const Outcome&) const = default;
};

struct SoakTrace {
  std::vector<std::string> events;    // "tick N: <event>" lines, in order
  std::vector<Outcome> outcomes;      // every request, submission order
  uint64_t final_live = 0;
  size_t dim = 0;
  uint64_t promoted = 0, rolled_back = 0, quarantined = 0;
  uint64_t publishes = 0, torn = 0;
};

class RolloutSoakTest : public RolloutTest {
 protected:
  void RunSoak(int num_workers, SoakTrace* trace_out) {
    fault::ClearPlan();
    obs::ResetAllMetrics();
    // Same directory for every run: tick events quote paths, and the
    // trace comparison is byte-for-byte.
    const std::string dir = ScratchDir("soak");

    // Five pre-built generations: 1 and 2 and 5 are good, 3 collapses to a
    // constant predictor (quality regression), 4 is good but carries the
    // injected canary-regression verdict under the soak seed.
    std::vector<std::shared_ptr<TemporalPathEncoder>> gens(6);
    gens[1] = MakeEncoder();
    for (uint64_t g : {2ull, 4ull, 5ull}) {
      gens[g] = MakeEncoder();
      PerturbParameters(*gens[g], 0.02f, g);
    }
    gens[3] = MakeEncoder();
    ZeroParameters(*gens[3]);

    ServiceConfig cfg = TinyService();
    cfg.num_workers = num_workers;
    InferenceService svc(features(), TinyEncoder(), cfg);
    RolloutConfig rcfg;
    rcfg.model_dir = dir;
    rcfg.quality_budget = 0.10;
    RolloutController ctl(&svc, features(), TinyEncoder(), Probe(), rcfg);

    Install(kSoakSpec);
    ASSERT_TRUE(ctl.Init().ok());

    SoakTrace& trace = *trace_out;
    int tick_no = 0;
    auto tick = [&] {
      auto report = ctl.Tick();
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      ++tick_no;
      for (const std::string& e : report->events) {
        trace.events.push_back("tick " + std::to_string(tick_no) + ": " + e);
      }
    };

    uint64_t next_id = 1;
    auto phase = [&] {
      std::vector<std::future<ServeResult>> futures;
      for (int i = 0; i < 64; ++i) {
        const uint64_t id = next_id++;
        auto submitted = svc.Submit(Query(i, id, (i % 5) * 700));
        ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
        futures.push_back(std::move(*submitted));
      }
      for (auto& f : futures) {
        ServeResult r = f.get();
        Outcome o;
        o.code = r.status.code();
        o.rung = r.rung;
        o.attempts = r.attempts;
        o.generation = r.generation;
        o.canary = r.canary;
        o.embedding = std::move(r.embedding);
        trace.outcomes.push_back(std::move(o));
      }
    };

    for (uint64_t g = 1; g <= 5; ++g) {
      ASSERT_TRUE(InferenceService::SaveModel(*gens[g], dir, g).ok());
      tick();  // scan: bootstrap (g=1), canary, or quarantine; publish
      if (g == 1) {
        ASSERT_TRUE(svc.Start().ok());
      }
      phase();
      tick();  // fold the canary resolution; publish (may tear)
      tick();  // republish after a torn publish
    }
    tick();  // settle any trailing dirty state
    tick();
    svc.Shutdown();
    fault::ClearPlan();

    trace.final_live = svc.model_generation();
    trace.dim = svc.representation_dim();
    trace.promoted = obs::GetCounter("rollout.promoted").value();
    trace.rolled_back = obs::GetCounter("rollout.rolled_back").value();
    trace.quarantined = obs::GetCounter("rollout.quarantined").value();
    trace.publishes = obs::GetCounter("rollout.publishes").value();
    trace.torn = obs::GetCounter("rollout.publish_torn").value();

    // The on-disk manifest reflects the full lifecycle after the run.
    auto manifest = Manifest::Load(dir);
    ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
    EXPECT_EQ(manifest->live_generation(), trace.final_live);
    EXPECT_EQ(manifest->canary_generation(), 0u);
    auto expect_state = [&](uint64_t gen, ModelState want) {
      const ModelRecord* rec = manifest->Find(gen);
      ASSERT_NE(rec, nullptr) << "gen " << gen << " missing from manifest";
      EXPECT_EQ(rec->state, want)
          << "gen " << gen << ": " << ModelStateName(rec->state) << " ("
          << rec->reason << ")";
    };
    expect_state(1, ModelState::kRetired);
    expect_state(2, ModelState::kRetired);
    expect_state(3, ModelState::kQuarantined);
    expect_state(4, ModelState::kQuarantined);
    expect_state(5, ModelState::kLive);

    // Quarantined checkpoints were moved out of the candidate directory.
    namespace fs = std::filesystem;
    ckpt::CheckpointDir cdir(dir);
    for (uint64_t gen : {3ull, 4ull}) {
      const fs::path moved = fs::path(dir) / "quarantine" /
                             fs::path(cdir.PathFor(gen)).filename();
      EXPECT_TRUE(fs::exists(moved)) << moved;
    }
  }
};

TEST_F(RolloutSoakTest, FullLifecycleIsBitwiseDeterministicAcrossRunsAndWorkerCounts) {
  SoakTrace base;
  RunSoak(/*num_workers=*/4, &base);
  if (HasFatalFailure()) return;

  // The scenario exercised every lifecycle edge.
  EXPECT_EQ(base.final_live, 5u);
  EXPECT_EQ(base.promoted, 2u) << "gens 2 and 5";
  EXPECT_EQ(base.rolled_back, 1u) << "gen 4";
  EXPECT_EQ(base.quarantined, 2u) << "gens 3 and 4";
  EXPECT_GE(base.publishes, 5u);
  EXPECT_GE(base.torn, 1u) << "rollout-publish:nth=3 must tear a publish";
  auto has_event = [&](const std::string& needle) {
    for (const std::string& e : base.events) {
      if (e.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_event("gen 1 bootstrapped live"));
  EXPECT_TRUE(has_event("canary gen 2 promoted: clean-requests"));
  EXPECT_TRUE(has_event("gen 3 quarantined: quality regression"));
  EXPECT_TRUE(has_event("canary rolled back: injected canary-regression"));
  EXPECT_TRUE(has_event("canary gen 5 promoted: clean-requests"));
  EXPECT_TRUE(has_event("publish failed"));

  // Incumbent traffic observed zero non-injected failures: every request
  // in the run (320 across five phases) came back OK, and every
  // non-canary request was served by the incumbent generation of its
  // phase (1, 1, 2, 2, 2 after the gen-2 promotion mid-phase 2).
  ASSERT_EQ(base.outcomes.size(), 320u);
  for (size_t i = 0; i < base.outcomes.size(); ++i) {
    EXPECT_EQ(base.outcomes[i].code, StatusCode::kOk) << "request " << i;
    EXPECT_EQ(base.outcomes[i].embedding.size(), base.dim) << "request " << i;
  }
  // Canary traffic is a strict, non-trivial subset of the run.
  size_t canaried = 0;
  for (const Outcome& o : base.outcomes) canaried += o.canary ? 1 : 0;
  EXPECT_GT(canaried, 0u);
  EXPECT_LT(canaried, base.outcomes.size() / 2);

  // Bitwise determinism: a second 4-worker run and a 1-worker run must
  // reproduce the identical trace — same events in the same tick order,
  // and every request's outcome (embedding bytes included) identical.
  SoakTrace repeat;
  RunSoak(/*num_workers=*/4, &repeat);
  if (HasFatalFailure()) return;
  EXPECT_EQ(base.events, repeat.events);
  EXPECT_EQ(base.outcomes == repeat.outcomes, true)
      << "4-worker rerun diverged";

  SoakTrace solo;
  RunSoak(/*num_workers=*/1, &solo);
  if (HasFatalFailure()) return;
  EXPECT_EQ(base.events, solo.events);
  EXPECT_EQ(base.outcomes == solo.outcomes, true)
      << "1-worker run diverged from 4-worker run";
  EXPECT_EQ(solo.final_live, base.final_live);
  EXPECT_EQ(solo.publishes, base.publishes);
  EXPECT_EQ(solo.torn, base.torn);
}

}  // namespace
}  // namespace tpr::rollout
