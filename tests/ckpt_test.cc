#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "baselines/baseline.h"
#include "baselines/dgi.h"
#include "baselines/gmi.h"
#include "baselines/memory_bank.h"
#include "baselines/supervised.h"
#include "ckpt/checkpoint.h"
#include "ckpt/serialize.h"
#include "core/wsccl.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "nn/modules.h"
#include "nn/optimizer.h"
#include "par/thread_pool.h"
#include "synth/presets.h"

namespace tpr::ckpt {
namespace {

using core::CurriculumStrategy;
using core::FeatureSpace;
using core::WsccalConfig;
using core::WsccalPipeline;
using core::WscModel;

// Fresh, empty scratch directory under the test temp root.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "tpr_ckpt_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

uint64_t Bits(double v) {
  uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

// ---------------------------------------------------------------------------
// Serialization primitives.
// ---------------------------------------------------------------------------

TEST(Serialize, PrimitivesRoundTrip) {
  Writer w;
  w.U8(7);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.I32(-42);
  w.I64(-1234567890123ll);
  w.F32(3.25f);
  w.F64(-2.5);
  w.Str("checkpoint");
  w.Str("");

  Reader r(w.bytes());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  int64_t i64;
  float f32;
  double f64;
  std::string s1, s2;
  ASSERT_TRUE(r.U8(&u8).ok());
  ASSERT_TRUE(r.U32(&u32).ok());
  ASSERT_TRUE(r.U64(&u64).ok());
  ASSERT_TRUE(r.I32(&i32).ok());
  ASSERT_TRUE(r.I64(&i64).ok());
  ASSERT_TRUE(r.F32(&f32).ok());
  ASSERT_TRUE(r.F64(&f64).ok());
  ASSERT_TRUE(r.Str(&s1).ok());
  ASSERT_TRUE(r.Str(&s2).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1234567890123ll);
  EXPECT_EQ(f32, 3.25f);
  EXPECT_EQ(f64, -2.5);
  EXPECT_EQ(s1, "checkpoint");
  EXPECT_EQ(s2, "");
  EXPECT_TRUE(r.AtEnd());
  // Reading past the end is an error, not UB.
  EXPECT_FALSE(r.U8(&u8).ok());
}

TEST(Serialize, ReaderRejectsTruncation) {
  Writer w;
  w.Str("some payload string");
  const std::string bytes = w.TakeBytes();
  for (size_t len = 0; len < bytes.size(); ++len) {
    Reader r(std::string_view(bytes).substr(0, len));
    std::string s;
    EXPECT_FALSE(r.Str(&s).ok()) << "truncated at " << len;
  }
}

TEST(Serialize, TensorRoundTrip) {
  nn::Tensor t(3, 4);
  for (size_t i = 0; i < t.size(); ++i) t[i] = 0.5f * static_cast<float>(i);
  Writer w;
  WriteTensor(w, t);
  Reader r(w.bytes());
  nn::Tensor out;
  ASSERT_TRUE(ReadTensor(r, &out).ok());
  ASSERT_TRUE(out.SameShape(t));
  for (size_t i = 0; i < t.size(); ++i) EXPECT_EQ(out[i], t[i]);
}

TEST(Serialize, TensorRejectsCorruptShape) {
  Writer w;
  w.I32(-1);  // rows
  w.I32(4);   // cols
  Reader r(w.bytes());
  nn::Tensor out;
  EXPECT_FALSE(ReadTensor(r, &out).ok());

  Writer big;
  big.I32(1 << 20);
  big.I32(1 << 20);  // 2^40 elements: absurd, must be refused pre-alloc
  Reader rb(big.bytes());
  EXPECT_FALSE(ReadTensor(rb, &out).ok());
}

TEST(Serialize, TensorListRoundTrip) {
  std::vector<nn::Tensor> list = {nn::Tensor(2, 2, 1.5f), nn::Tensor(),
                                  nn::Tensor(1, 3, -0.25f)};
  Writer w;
  WriteTensorList(w, list);
  Reader r(w.bytes());
  std::vector<nn::Tensor> out;
  ASSERT_TRUE(ReadTensorList(r, &out).ok());
  ASSERT_EQ(out.size(), list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    ASSERT_TRUE(out[i].SameShape(list[i]));
    for (size_t k = 0; k < list[i].size(); ++k) {
      EXPECT_EQ(out[i][k], list[i][k]);
    }
  }
}

TEST(Serialize, RngRoundTripReproducesDraws) {
  Rng rng(12345);
  for (int i = 0; i < 17; ++i) rng.NextU64();  // advance past the seed
  Writer w;
  WriteRng(w, rng);
  Reader r(w.bytes());
  Rng restored(999);  // different seed, fully overwritten by ReadRng
  ASSERT_TRUE(ReadRng(r, &restored).ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(restored.NextU64(), rng.NextU64()) << "draw " << i;
  }
}

TEST(Serialize, AdamStateRoundTrip) {
  Rng rng(3);
  nn::Linear lin(4, 3, rng);
  nn::Adam adam(lin.Parameters(), 1e-2f);
  // Take a step so the moments are non-trivial.
  nn::Var x = nn::Var::Leaf(nn::Tensor(1, 4, 0.5f));
  nn::Var loss = nn::Sum(lin.Forward(x));
  adam.ZeroGrad();
  loss.Backward();
  adam.Step();

  Writer w;
  WriteAdamState(w, adam);

  nn::Linear lin2(4, 3, rng);
  nn::Adam adam2(lin2.Parameters(), 1e-2f);
  Reader r(w.bytes());
  ASSERT_TRUE(ReadAdamStateInto(r, &adam2).ok());

  const nn::AdamState a = adam.ExportState();
  const nn::AdamState b = adam2.ExportState();
  ASSERT_EQ(a.t, b.t);
  ASSERT_EQ(a.m.size(), b.m.size());
  for (size_t i = 0; i < a.m.size(); ++i) {
    for (size_t k = 0; k < a.m[i].size(); ++k) {
      EXPECT_EQ(a.m[i][k], b.m[i][k]);
      EXPECT_EQ(a.v[i][k], b.v[i][k]);
    }
  }
}

TEST(Serialize, AdamImportRejectsShapeMismatch) {
  Rng rng(3);
  nn::Linear lin(4, 3, rng);
  nn::Adam adam(lin.Parameters(), 1e-2f);
  Writer w;
  WriteAdamState(w, adam);

  nn::Linear other(5, 3, rng);  // different architecture
  nn::Adam adam2(other.Parameters(), 1e-2f);
  Reader r(w.bytes());
  EXPECT_FALSE(ReadAdamStateInto(r, &adam2).ok());
}

// ---------------------------------------------------------------------------
// Envelope integrity: every flipped byte and every truncation length of a
// wrapped checkpoint must be detected.
// ---------------------------------------------------------------------------

TEST(Envelope, RoundTrip) {
  const std::string payload = "hello checkpoint payload";
  const std::string bytes = WrapPayload(payload);
  EXPECT_EQ(bytes.size(), payload.size() + kHeaderBytes + kFooterBytes);
  auto out = UnwrapPayload(bytes);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, payload);
}

TEST(Envelope, EveryByteFlipIsDetected) {
  const std::string bytes = WrapPayload("corruption sweep payload");
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    EXPECT_FALSE(UnwrapPayload(corrupt).ok()) << "flip at byte " << i;
  }
}

TEST(Envelope, EveryTruncationIsDetected) {
  const std::string bytes = WrapPayload("truncation sweep payload");
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(UnwrapPayload(std::string_view(bytes).substr(0, len)).ok())
        << "truncated to " << len;
  }
  // Trailing garbage (e.g. two writes into one file) is also refused.
  EXPECT_FALSE(UnwrapPayload(bytes + "x").ok());
}

// ---------------------------------------------------------------------------
// Atomic write fault injection: kill the writer at every byte offset and
// assert the previous file always survives intact.
// ---------------------------------------------------------------------------

TEST(AtomicWrite, SurvivesKillAtEveryByteOffset) {
  const std::string dir = ScratchDir("atomic_sweep");
  const std::string path = dir + "/state.tpr";
  const std::string old_bytes = WrapPayload("generation A");
  ASSERT_TRUE(AtomicWriteFile(path, old_bytes).ok());

  const std::string new_bytes = WrapPayload("generation B -- longer payload");
  // k < size: torn temp write. k == size: complete temp write, killed
  // before the rename makes it visible.
  for (size_t k = 0; k <= new_bytes.size(); ++k) {
    SetWriteFaultInjector([k](size_t) { return k; });
    EXPECT_FALSE(AtomicWriteFile(path, new_bytes).ok()) << "kill at " << k;
    SetWriteFaultInjector(nullptr);
    auto survived = ReadFileBytes(path);
    ASSERT_TRUE(survived.ok());
    auto payload = UnwrapPayload(*survived);
    ASSERT_TRUE(payload.ok()) << "kill at " << k << " corrupted the file";
    EXPECT_EQ(*payload, "generation A") << "kill at " << k;
  }

  // Without a fault the new generation replaces the old atomically.
  ASSERT_TRUE(AtomicWriteFile(path, new_bytes).ok());
  auto out = UnwrapPayload(*ReadFileBytes(path));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "generation B -- longer payload");
}

TEST(CheckpointDirTest, FaultDuringSaveFallsBackToPreviousGeneration) {
  const std::string dir = ScratchDir("dir_fault");
  CheckpointDir cd(dir);
  ASSERT_TRUE(cd.Save(1, "epoch one state").ok());

  const std::string payload2 = "epoch two state";
  const size_t envelope = payload2.size() + kHeaderBytes + kFooterBytes;
  for (size_t k = 0; k <= envelope; ++k) {
    SetWriteFaultInjector([k](size_t) { return k; });
    EXPECT_FALSE(cd.Save(2, payload2).ok());
    SetWriteFaultInjector(nullptr);
    auto loaded = cd.LoadLatest();
    ASSERT_TRUE(loaded.ok()) << "kill at " << k;
    EXPECT_EQ(loaded->seq, 1u);
    EXPECT_EQ(loaded->payload, "epoch one state");
  }

  ASSERT_TRUE(cd.Save(2, payload2).ok());
  auto loaded = cd.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->seq, 2u);
  EXPECT_EQ(loaded->payload, payload2);
}

TEST(CheckpointDirTest, SkipsCorruptNewestGeneration) {
  const std::string dir = ScratchDir("dir_corrupt");
  CheckpointDir cd(dir);
  ASSERT_TRUE(cd.Save(1, "good state").ok());
  // A later generation that bypassed the atomic protocol (e.g. a partial
  // copy): visible but corrupt.
  std::FILE* f = std::fopen(cd.PathFor(2).c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a checkpoint", f);
  std::fclose(f);

  auto loaded = cd.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->seq, 1u);
  EXPECT_EQ(loaded->payload, "good state");
}

TEST(CheckpointDirTest, LoadLatestQuarantinesCorruptGenerations) {
  obs::SetMetricsEnabled(true);
  obs::ResetAllMetrics();
  const std::string dir = ScratchDir("dir_quarantine");
  CheckpointDir cd(dir);
  ASSERT_TRUE(cd.Save(1, "good state").ok());
  std::FILE* f = std::fopen(cd.PathFor(2).c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a checkpoint", f);
  std::fclose(f);
  ASSERT_EQ(cd.ListSeqs(), (std::vector<uint64_t>{1, 2}));

  // The corrupt newest generation is MOVED to quarantine/, not merely
  // skipped: the next load must not re-read it.
  auto loaded = cd.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->seq, 1u);
  EXPECT_EQ(obs::GetCounter("ckpt.load_fallbacks").value(), 1u);
  EXPECT_EQ(obs::GetCounter("ckpt.quarantined").value(), 1u);
  EXPECT_FALSE(std::filesystem::exists(cd.PathFor(2)));
  EXPECT_TRUE(std::filesystem::exists(
      dir + "/quarantine/" +
      std::filesystem::path(cd.PathFor(2)).filename().string()));
  EXPECT_EQ(cd.ListSeqs(), (std::vector<uint64_t>{1}))
      << "quarantined files must never be offered again";

  auto again = cd.LoadLatest();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(obs::GetCounter("ckpt.load_fallbacks").value(), 1u)
      << "second load re-scanned the quarantined file";

  // Read errors are transient and must NOT quarantine: the file stays.
  auto plan = fault::FaultPlan::Parse("ckpt-read:after=0");
  ASSERT_TRUE(plan.ok());
  fault::InstallPlan(*std::move(plan));
  EXPECT_EQ(cd.LoadLatest().status().code(), StatusCode::kNotFound);
  fault::ClearPlan();
  EXPECT_TRUE(std::filesystem::exists(cd.PathFor(1)));
  EXPECT_TRUE(cd.LoadLatest().ok());

  // Quarantining a missing sequence is an error, not a crash.
  EXPECT_FALSE(cd.Quarantine(99).ok());
  obs::SetMetricsEnabled(false);
}

TEST(CheckpointDirTest, NoValidCheckpointIsNotFound) {
  const std::string dir = ScratchDir("dir_empty");
  CheckpointDir cd(dir);
  EXPECT_EQ(cd.LoadLatest().status().code(), StatusCode::kNotFound);

  std::FILE* f = std::fopen(cd.PathFor(7).c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("garbage", f);
  std::fclose(f);
  EXPECT_EQ(cd.LoadLatest().status().code(), StatusCode::kNotFound);
}

TEST(CheckpointDirTest, RotationKeepsTwoGenerations) {
  const std::string dir = ScratchDir("dir_rotate");
  CheckpointDir cd(dir);
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    ASSERT_TRUE(cd.Save(seq, "state " + std::to_string(seq)).ok());
  }
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    EXPECT_FALSE(std::filesystem::exists(cd.PathFor(seq))) << seq;
  }
  EXPECT_TRUE(std::filesystem::exists(cd.PathFor(4)));
  EXPECT_TRUE(std::filesystem::exists(cd.PathFor(5)));
  auto loaded = cd.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->seq, 5u);
}

TEST(CheckpointDirTest, RetentionPinExemptsTheLiveGenerationFromPruning) {
  const std::string dir = ScratchDir("dir_pin");
  CheckpointDir cd(dir);
  ASSERT_TRUE(cd.Save(1, "live generation").ok());
  ASSERT_TRUE(cd.Pin(1).ok());
  EXPECT_EQ(cd.PinnedSeq().value_or(0), 1u);

  // keep=2 would normally prune everything older than 4 and 5 — the
  // pinned live generation must survive every rotation.
  for (uint64_t seq = 2; seq <= 5; ++seq) {
    ASSERT_TRUE(cd.Save(seq, "state " + std::to_string(seq)).ok());
  }
  EXPECT_EQ(cd.ListSeqs(), (std::vector<uint64_t>{1, 4, 5}));

  // The pin is a durable on-disk marker: a fresh CheckpointDir instance
  // on the same directory honours it (publisher and rollout controller
  // need not share an object).
  CheckpointDir other(dir);
  EXPECT_EQ(other.PinnedSeq().value_or(0), 1u);
  ASSERT_TRUE(other.Save(6, "state 6").ok());
  EXPECT_EQ(cd.ListSeqs(), (std::vector<uint64_t>{1, 5, 6}));

  // Re-pinning replaces the previous pin: one pin per directory.
  ASSERT_TRUE(cd.Pin(6).ok());
  EXPECT_EQ(cd.PinnedSeq().value_or(0), 6u);
  ASSERT_TRUE(cd.Save(7, "state 7").ok());
  ASSERT_TRUE(cd.Save(8, "state 8").ok());
  EXPECT_EQ(cd.ListSeqs(), (std::vector<uint64_t>{6, 7, 8}))
      << "generation 1 loses protection when the pin moves";

  // Unpin restores plain keep-last-K behaviour.
  ASSERT_TRUE(cd.Unpin().ok());
  EXPECT_FALSE(cd.PinnedSeq().has_value());
  ASSERT_TRUE(cd.Save(9, "state 9").ok());
  EXPECT_EQ(cd.ListSeqs(), (std::vector<uint64_t>{8, 9}));
  EXPECT_TRUE(cd.Unpin().ok()) << "unpinning twice is a no-op";
}

TEST(CheckpointDirTest, CorruptPinMarkerReadsAsNoPin) {
  obs::SetMetricsEnabled(true);
  obs::ResetAllMetrics();
  const std::string dir = ScratchDir("dir_pin_corrupt");
  CheckpointDir cd(dir);
  ASSERT_TRUE(cd.Save(1, "state 1").ok());
  ASSERT_TRUE(cd.Pin(1).ok());

  // Torn/bit-flipped marker (bypassed the atomic protocol).
  std::FILE* f = std::fopen((dir + "/PINNED").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("torn pin marker", f);
  std::fclose(f);
  EXPECT_FALSE(cd.PinnedSeq().has_value());
  EXPECT_GE(obs::GetCounter("ckpt.pin_invalid").value(), 1u);

  // A corrupt pin fails open: rotation proceeds as if unpinned — the
  // retention policy must never wedge on a bad marker.
  for (uint64_t seq = 2; seq <= 4; ++seq) {
    ASSERT_TRUE(cd.Save(seq, "state " + std::to_string(seq)).ok());
  }
  EXPECT_EQ(cd.ListSeqs(), (std::vector<uint64_t>{3, 4}));
  obs::SetMetricsEnabled(false);
}

// ---------------------------------------------------------------------------
// Model / baseline state round trips on a tiny city.
// ---------------------------------------------------------------------------

class CkptModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto preset = synth::AalborgPreset();
    synth::ScaleDataset(preset, 0.1);
    auto ds = synth::BuildPresetDataset(preset);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    data_ = new std::shared_ptr<synth::CityDataset>(
        std::make_shared<synth::CityDataset>(std::move(*ds)));
    core::FeatureConfig fc;
    fc.temporal_graph.slots_per_day = 48;
    fc.node2vec.walks_per_node = 2;
    fc.node2vec.epochs = 1;
    auto fs = core::BuildFeatureSpace(*data_, fc);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    features_ = new std::shared_ptr<const FeatureSpace>(
        std::make_shared<const FeatureSpace>(std::move(*fs)));
  }

  // Freed so the suite is LeakSanitizer-clean (CI runs it under ASan).
  static void TearDownTestSuite() {
    delete features_;
    features_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  static core::WscConfig TinyWsc() {
    core::WscConfig cfg;
    cfg.encoder.d_hidden = 16;
    cfg.encoder.projection_dim = 8;
    cfg.anchors_per_batch = 6;
    return cfg;
  }

  static WsccalConfig TinyWsccal(CurriculumStrategy strategy) {
    WsccalConfig cfg;
    cfg.wsc = TinyWsc();
    cfg.curriculum.strategy = strategy;
    cfg.curriculum.num_meta_sets = 2;
    cfg.curriculum.expert_epochs = 1;
    cfg.stage_epochs = 1;
    cfg.final_epochs = 2;
    return cfg;
  }

  static std::vector<int> AllUnlabeled() {
    std::vector<int> all((*data_)->unlabeled.size());
    std::iota(all.begin(), all.end(), 0);
    return all;
  }

  const synth::CityDataset& data() { return **data_; }
  std::shared_ptr<const FeatureSpace> features() { return *features_; }

  static std::shared_ptr<synth::CityDataset>* data_;
  static std::shared_ptr<const FeatureSpace>* features_;
};

std::shared_ptr<synth::CityDataset>* CkptModelTest::data_ = nullptr;
std::shared_ptr<const FeatureSpace>* CkptModelTest::features_ = nullptr;

TEST_F(CkptModelTest, WscModelStateRoundTripIsBitExact) {
  par::SetDefaultThreads(1);
  const auto indices = AllUnlabeled();
  WscModel a(features(), TinyWsc());
  ASSERT_TRUE(a.TrainEpoch(indices).ok());
  Writer w;
  ASSERT_TRUE(a.SaveState(w).ok());

  WscModel b(features(), TinyWsc());
  Reader r(w.bytes());
  ASSERT_TRUE(b.LoadState(r).ok());
  EXPECT_TRUE(r.AtEnd());

  for (int i = 0; i < 3; ++i) {
    const auto& sample = data().unlabeled[i];
    EXPECT_EQ(a.Encode(sample.path, sample.depart_time_s),
              b.Encode(sample.path, sample.depart_time_s));
  }
  // The restored model continues training exactly as the original.
  auto loss_a = a.TrainEpoch(indices);
  auto loss_b = b.TrainEpoch(indices);
  ASSERT_TRUE(loss_a.ok() && loss_b.ok());
  EXPECT_EQ(Bits(*loss_a), Bits(*loss_b));
}

TEST_F(CkptModelTest, WscModelLoadRejectsDifferentArchitecture) {
  WscModel a(features(), TinyWsc());
  Writer w;
  ASSERT_TRUE(a.SaveState(w).ok());

  core::WscConfig other = TinyWsc();
  other.encoder.d_hidden = 8;
  WscModel b(features(), other);
  Reader r(w.bytes());
  EXPECT_EQ(b.LoadState(r).code(), StatusCode::kFailedPrecondition);
}

TEST_F(CkptModelTest, DgiBaselineRoundTrip) {
  baselines::DgiModel::Config cfg;
  cfg.hidden_dim = 8;
  cfg.epochs = 3;
  baselines::DgiModel trained(features(), cfg);
  ASSERT_TRUE(trained.Train().ok());
  Writer w;
  ASSERT_TRUE(baselines::SaveBaseline(trained, w).ok());

  baselines::DgiModel fresh(features(), cfg);
  Reader r(w.bytes());
  ASSERT_TRUE(baselines::LoadBaseline(fresh, r).ok());
  for (int i = 0; i < 3; ++i) {
    const auto& sample = data().unlabeled[i];
    EXPECT_EQ(trained.Encode(sample), fresh.Encode(sample));
  }
}

TEST_F(CkptModelTest, MemoryBankBaselineRoundTripIncludesBank) {
  baselines::MemoryBankModel::Config cfg;
  cfg.hidden_dim = 8;
  cfg.epochs = 1;
  baselines::MemoryBankModel trained(features(), cfg);
  ASSERT_TRUE(trained.Train().ok());
  Writer w;
  ASSERT_TRUE(baselines::SaveBaseline(trained, w).ok());

  baselines::MemoryBankModel fresh(features(), cfg);
  Reader r(w.bytes());
  ASSERT_TRUE(baselines::LoadBaseline(fresh, r).ok());
  for (int i = 0; i < 3; ++i) {
    const auto& sample = data().unlabeled[i];
    EXPECT_EQ(trained.Encode(sample), fresh.Encode(sample));
  }
}

TEST_F(CkptModelTest, SupervisedBaselineRoundTripIncludesNormalisation) {
  par::SetDefaultThreads(1);
  baselines::SupervisedConfig cfg;
  cfg.encoder.d_hidden = 8;
  cfg.encoder.projection_dim = 8;
  cfg.epochs = 1;
  std::vector<int> train_idx;
  for (int i = 0; i < static_cast<int>(data().labeled.size()) && i < 24; ++i) {
    train_idx.push_back(i);
  }
  baselines::PathRankModel trained(features(), train_idx, cfg);
  ASSERT_TRUE(trained.Train().ok());
  Writer w;
  ASSERT_TRUE(baselines::SaveBaseline(trained, w).ok());

  baselines::PathRankModel fresh(features(), train_idx, cfg);
  Reader r(w.bytes());
  ASSERT_TRUE(baselines::LoadBaseline(fresh, r).ok());
  for (int i = 0; i < 3; ++i) {
    const auto& sample = data().labeled[i];
    EXPECT_EQ(trained.Encode(sample), fresh.Encode(sample));
    EXPECT_EQ(trained.PredictPrimary(sample), fresh.PredictPrimary(sample));
  }
}

TEST_F(CkptModelTest, LoadBaselineRejectsWrongMethod) {
  baselines::DgiModel::Config cfg;
  cfg.hidden_dim = 8;
  cfg.epochs = 1;
  baselines::DgiModel dgi(features(), cfg);
  ASSERT_TRUE(dgi.Train().ok());
  Writer w;
  ASSERT_TRUE(baselines::SaveBaseline(dgi, w).ok());

  baselines::GmiModel gmi(features());
  Reader r(w.bytes());
  EXPECT_EQ(baselines::LoadBaseline(gmi, r).code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Resumable curriculum training: a killed-and-resumed run must reproduce
// the uninterrupted run bit for bit, at any thread count.
// ---------------------------------------------------------------------------

class CkptResumeTest : public CkptModelTest {
 protected:
  void RunKillResumeTest(int threads, CurriculumStrategy strategy,
                         const std::string& dir_name) {
    par::SetDefaultThreads(threads);
    const WsccalConfig cfg = TinyWsccal(strategy);

    auto straight = WsccalPipeline::Train(features(), cfg);
    ASSERT_TRUE(straight.ok()) << straight.status().ToString();
    ASSERT_TRUE((*straight)->completed());

    const std::string dir = ScratchDir(dir_name);
    WsccalConfig killed = cfg;
    killed.ckpt_dir = dir;
    killed.checkpoint_every_n_epochs = 1;
    killed.stop_after_epochs = 2;
    auto partial = WsccalPipeline::Train(features(), killed);
    ASSERT_TRUE(partial.ok()) << partial.status().ToString();
    EXPECT_FALSE((*partial)->completed());
    EXPECT_EQ((*partial)->epochs_completed(), 2u);

    WsccalConfig resume = cfg;
    resume.ckpt_dir = dir;
    auto resumed = WsccalPipeline::Train(features(), resume);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    ASSERT_TRUE((*resumed)->completed());

    EXPECT_EQ(Bits((*straight)->final_loss()), Bits((*resumed)->final_loss()))
        << "straight " << (*straight)->final_loss() << " vs resumed "
        << (*resumed)->final_loss();
    EXPECT_EQ((*straight)->epochs_completed(), (*resumed)->epochs_completed());
    for (int i = 0; i < 3; ++i) {
      const auto& sample = data().unlabeled[i];
      EXPECT_EQ((*straight)->Encode(sample), (*resumed)->Encode(sample));
    }
  }
};

TEST_F(CkptResumeTest, ResumeEqualsStraightThroughSingleThread) {
  RunKillResumeTest(1, CurriculumStrategy::kHeuristic, "resume_t1");
}

TEST_F(CkptResumeTest, ResumeEqualsStraightThroughFourThreads) {
  RunKillResumeTest(4, CurriculumStrategy::kHeuristic, "resume_t4");
}

TEST_F(CkptResumeTest, ResumeEqualsStraightThroughLearnedCurriculum) {
  RunKillResumeTest(1, CurriculumStrategy::kLearned, "resume_learned");
}

TEST_F(CkptResumeTest, ResumeFromOlderGenerationAfterCorruption) {
  par::SetDefaultThreads(1);
  const WsccalConfig cfg = TinyWsccal(CurriculumStrategy::kHeuristic);

  auto straight = WsccalPipeline::Train(features(), cfg);
  ASSERT_TRUE(straight.ok()) << straight.status().ToString();

  const std::string dir = ScratchDir("resume_corrupt");
  WsccalConfig killed = cfg;
  killed.ckpt_dir = dir;
  killed.stop_after_epochs = 2;
  auto partial = WsccalPipeline::Train(features(), killed);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();

  // Truncate the newest checkpoint, as a torn copy would. The resume
  // must fall back to the previous generation, replay the lost epoch
  // deterministically, and still match the straight-through run.
  CheckpointDir cd(dir);
  const std::string newest = cd.PathFor((*partial)->epochs_completed());
  ASSERT_TRUE(std::filesystem::exists(newest));
  auto bytes = ReadFileBytes(newest);
  ASSERT_TRUE(bytes.ok());
  std::FILE* f = std::fopen(newest.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes->data(), 1, bytes->size() / 2, f);
  std::fclose(f);

  WsccalConfig resume = cfg;
  resume.ckpt_dir = dir;
  auto resumed = WsccalPipeline::Train(features(), resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_TRUE((*resumed)->completed());
  EXPECT_EQ(Bits((*straight)->final_loss()), Bits((*resumed)->final_loss()));
}

TEST_F(CkptResumeTest, ResumeRefusedUnderDifferentConfig) {
  par::SetDefaultThreads(1);
  const std::string dir = ScratchDir("resume_mismatch");
  WsccalConfig killed = TinyWsccal(CurriculumStrategy::kHeuristic);
  killed.ckpt_dir = dir;
  killed.stop_after_epochs = 1;
  auto partial = WsccalPipeline::Train(features(), killed);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();

  WsccalConfig other = TinyWsccal(CurriculumStrategy::kHeuristic);
  other.ckpt_dir = dir;
  other.wsc.lambda = 0.5f;  // different objective weighting
  auto resumed = WsccalPipeline::Train(features(), other);
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CkptResumeTest, CompletedCheckpointShortCircuitsTraining) {
  par::SetDefaultThreads(1);
  const std::string dir = ScratchDir("resume_completed");
  WsccalConfig cfg = TinyWsccal(CurriculumStrategy::kHeuristic);
  cfg.ckpt_dir = dir;
  auto first = WsccalPipeline::Train(features(), cfg);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE((*first)->completed());

  // Re-running with the same directory loads the completion checkpoint
  // and returns the identical model without training a single epoch.
  auto again = WsccalPipeline::Train(features(), cfg);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_TRUE((*again)->completed());
  EXPECT_EQ(Bits((*first)->final_loss()), Bits((*again)->final_loss()));
  for (int i = 0; i < 3; ++i) {
    const auto& sample = data().unlabeled[i];
    EXPECT_EQ((*first)->Encode(sample), (*again)->Encode(sample));
  }
}

TEST_F(CkptResumeTest, CkptDirFromEnvironment) {
  par::SetDefaultThreads(1);
  const std::string dir = ScratchDir("resume_env");
  ASSERT_EQ(setenv("TPR_CKPT_DIR", dir.c_str(), 1), 0);
  WsccalConfig cfg = TinyWsccal(CurriculumStrategy::kHeuristic);
  cfg.stop_after_epochs = 1;
  auto partial = WsccalPipeline::Train(features(), cfg);
  unsetenv("TPR_CKPT_DIR");
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE(CheckpointDir(dir).LoadLatest().ok());
}

TEST_F(CkptResumeTest, SerializeDeserializeRoundTrip) {
  par::SetDefaultThreads(1);
  const WsccalConfig cfg = TinyWsccal(CurriculumStrategy::kHeuristic);
  auto trained = WsccalPipeline::Train(features(), cfg);
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();

  auto payload = (*trained)->Serialize();
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  auto loaded = WsccalPipeline::Deserialize(features(), cfg, *payload);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (int i = 0; i < 3; ++i) {
    const auto& sample = data().unlabeled[i];
    EXPECT_EQ((*trained)->Encode(sample), (*loaded)->Encode(sample));
  }

  WsccalConfig other = cfg;
  other.final_epochs += 1;
  EXPECT_EQ(
      WsccalPipeline::Deserialize(features(), other, *payload).status().code(),
      StatusCode::kFailedPrecondition);
}

TEST_F(CkptResumeTest, PartialPipelineRefusesToSerialize) {
  par::SetDefaultThreads(1);
  const std::string dir = ScratchDir("partial_serialize");
  WsccalConfig cfg = TinyWsccal(CurriculumStrategy::kHeuristic);
  cfg.ckpt_dir = dir;
  cfg.stop_after_epochs = 1;
  auto partial = WsccalPipeline::Train(features(), cfg);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_EQ((*partial)->Serialize().status().code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Concurrent writers (fleet mode: several shards' controllers publish in
// one process).
// ---------------------------------------------------------------------------

TEST(ConcurrentWriteTest, RacingWritersOfOnePathLeaveOneWholeFile) {
  const std::string dir = ScratchDir("concurrent_write");
  const std::string path = dir + "/shared.tpr";
  // Each thread repeatedly writes its own recognisable payload to the
  // SAME path. Unique temp names mean the last rename wins whole: the
  // visible file must always be EXACTLY one thread's payload, never an
  // interleaving or a torn prefix.
  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 24;
  std::vector<std::string> payloads;
  for (int t = 0; t < kThreads; ++t) {
    payloads.push_back(std::string(2048, static_cast<char>('A' + t)));
  }
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kWritesPerThread; ++i) {
        if (!AtomicWriteFile(path, WrapPayload(payloads[static_cast<size_t>(t)]))
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(failures.load(), 0);

  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto payload = UnwrapPayload(*bytes);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  EXPECT_NE(std::find(payloads.begin(), payloads.end(), *payload),
            payloads.end())
      << "visible file is not any single writer's payload";

  // No temp litter left behind once all writers finished.
  int stray_tmps = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().filename().string().find(".tmp.") != std::string::npos) {
      ++stray_tmps;
    }
  }
  EXPECT_EQ(stray_tmps, 0);
}

TEST(ConcurrentWriteTest, ShardDirsDoNotCrossContaminate) {
  // Two CheckpointDirs in one process (two shards) saving and pruning
  // concurrently: each directory ends with exactly its own lineage.
  const std::string root = ScratchDir("multi_dir");
  CheckpointDir a(root + "/shard-0/models");
  CheckpointDir b(root + "/shard-1/models");
  std::filesystem::create_directories(a.dir());
  std::filesystem::create_directories(b.dir());
  std::thread ta([&] {
    for (uint64_t seq = 1; seq <= 12; ++seq) {
      ASSERT_TRUE(a.Save(seq, "shard0-payload-" + std::to_string(seq)).ok());
    }
  });
  std::thread tb([&] {
    for (uint64_t seq = 1; seq <= 12; ++seq) {
      ASSERT_TRUE(b.Save(seq, "shard1-payload-" + std::to_string(seq)).ok());
    }
  });
  ta.join();
  tb.join();
  auto la = a.LoadLatest();
  auto lb = b.LoadLatest();
  ASSERT_TRUE(la.ok()) << la.status().ToString();
  ASSERT_TRUE(lb.ok()) << lb.status().ToString();
  EXPECT_EQ(la->seq, 12u);
  EXPECT_EQ(lb->seq, 12u);
  EXPECT_EQ(la->payload, "shard0-payload-12");
  EXPECT_EQ(lb->payload, "shard1-payload-12");
  // Pins are per directory, not process state.
  ASSERT_TRUE(a.Pin(11).ok());
  EXPECT_EQ(a.PinnedSeq().value_or(0), 11u);
  EXPECT_FALSE(b.PinnedSeq().has_value());
}

}  // namespace
}  // namespace tpr::ckpt
