#ifndef TPR_TESTS_GRADCHECK_H_
#define TPR_TESTS_GRADCHECK_H_

// Central finite-difference gradient checker for the autograd engine.
//
// ExpectGradientsMatch evaluates the analytic gradients of a scalar loss
// with respect to a parameter list and compares each probed entry against
// the central difference (f(θ+h) − f(θ−h)) / 2h. The loss closure must
// be a pure function of the parameter VALUES: any internal randomness
// (negative sampling, dropout) must be re-seeded identically on every
// call, otherwise the finite difference measures noise, not gradient.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "nn/autograd.h"
#include "nn/tensor.h"

namespace tpr::testing {

struct GradCheckOptions {
  /// Central-difference step. float32 forward passes limit how small
  /// this can usefully be; 1e-3 balances truncation vs rounding error.
  float step = 1e-3f;
  /// An entry passes when |analytic − numeric| <= abs_tol + rel_tol *
  /// max(|analytic|, |numeric|).
  float abs_tol = 2e-3f;
  float rel_tol = 2e-2f;
  /// Entries probed per parameter tensor (strided across the tensor, so
  /// every weight matrix region is sampled). Two forward passes per
  /// entry make exhaustive probing of large losses too slow.
  int max_entries_per_param = 16;
};

inline void ExpectGradientsMatch(const std::function<nn::Var()>& loss_fn,
                                 const std::vector<nn::Var>& params,
                                 const GradCheckOptions& opts = {}) {
  // Analytic pass.
  for (nn::Var p : params) p.ZeroGrad();
  nn::Var loss = loss_fn();
  ASSERT_TRUE(loss.defined()) << "loss closure returned an undefined Var";
  loss.Backward();
  std::vector<nn::Tensor> analytic;
  analytic.reserve(params.size());
  for (const nn::Var& p : params) analytic.push_back(p.grad());

  const auto eval = [&loss_fn]() -> double {
    nn::NoGradGuard guard;  // FD probes need values only
    return loss_fn().scalar();
  };

  for (size_t i = 0; i < params.size(); ++i) {
    nn::Var p = params[i];  // shared handle; mutations hit the model
    nn::Tensor& value = p.mutable_value();
    const size_t n = value.size();
    if (n == 0) continue;
    const size_t stride =
        std::max<size_t>(1, n / static_cast<size_t>(
                                  std::max(1, opts.max_entries_per_param)));
    for (size_t k = 0; k < n; k += stride) {
      const float saved = value[k];
      value[k] = saved + opts.step;
      const double f_plus = eval();
      value[k] = saved - opts.step;
      const double f_minus = eval();
      value[k] = saved;
      const double numeric = (f_plus - f_minus) / (2.0 * opts.step);
      const double a =
          analytic[i].empty() ? 0.0 : static_cast<double>(analytic[i][k]);
      const double tol =
          opts.abs_tol +
          opts.rel_tol * std::max(std::fabs(a), std::fabs(numeric));
      EXPECT_NEAR(a, numeric, tol)
          << "param " << i << " entry " << k << " (of " << n << ")";
    }
  }
}

}  // namespace tpr::testing

#endif  // TPR_TESTS_GRADCHECK_H_
