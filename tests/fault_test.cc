#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/wsccl.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "par/thread_pool.h"
#include "synth/presets.h"

namespace tpr::fault {
namespace {

using core::CurriculumStrategy;
using core::FeatureSpace;
using core::WsccalConfig;
using core::WsccalPipeline;
using core::WscModel;

// Fresh, empty scratch directory under the test temp root.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "tpr_fault_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

uint64_t Bits(double v) {
  uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

// The plan is process-global; every test installs its own and tears it
// down so verdicts never leak across tests.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClearPlan();
    obs::SetMetricsEnabled(false);
    obs::ResetAllMetrics();
  }
  void TearDown() override {
    ClearPlan();
    SetCkptWriteKillPoint(nullptr);
    obs::SetMetricsEnabled(false);
    unsetenv("TPR_FAULT");
  }

  static void Install(const std::string& spec) {
    auto plan = FaultPlan::Parse(spec);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    InstallPlan(*std::move(plan));
  }
};

// ---------------------------------------------------------------------------
// Spec grammar.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, ParseAcceptsFullGrammar) {
  auto plan = FaultPlan::Parse(
      "encoder-forward:p=0.25,seed=9;ckpt-read:nth=3;"
      "alloc:after=2,until=5;slow-worker:p=0.5,delay_ms=1.5");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->rules().size(), 4u);

  const SiteRule* fwd = plan->Find(kEncoderForward);
  ASSERT_NE(fwd, nullptr);
  EXPECT_DOUBLE_EQ(fwd->probability, 0.25);
  EXPECT_EQ(fwd->seed, 9u);

  const SiteRule* read = plan->Find(kCkptRead);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->nth, 3u);

  const SiteRule* alloc = plan->Find(kAlloc);
  ASSERT_NE(alloc, nullptr);
  EXPECT_TRUE(alloc->has_after);
  EXPECT_EQ(alloc->after, 2u);
  EXPECT_EQ(alloc->until, 5u);

  const SiteRule* slow = plan->Find(kSlowWorker);
  ASSERT_NE(slow, nullptr);
  EXPECT_DOUBLE_EQ(slow->delay_ms, 1.5);

  EXPECT_EQ(plan->Find("no-such-site"), nullptr);
}

TEST_F(FaultTest, ParseRejectsMalformedSpecs) {
  const char* bad[] = {
      "encoder-forward",             // no options
      ":p=0.1",                      // empty site
      "alloc:boom=1",                // unknown option
      "alloc:p",                     // option without value
      "alloc:p=abc",                 // unparseable number
      "alloc:p=1.5",                 // probability out of range
      "alloc:nth=0",                 // nth must be positive
      "alloc:until=3",               // until without after
      "alloc:after=5,until=3",       // empty window
      "alloc:after=5,until=5",       // empty window (boundary)
      "alloc:delay_ms=-1",           // negative delay
      "alloc:p=0.1;alloc:p=0.2",     // duplicate site
  };
  for (const char* spec : bad) {
    EXPECT_FALSE(FaultPlan::Parse(spec).ok()) << spec;
  }
  // Empty spec parses to an empty (inactive) plan.
  auto empty = FaultPlan::Parse("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST_F(FaultTest, EnvInstallLoadsAndValidatesTprFault) {
  setenv("TPR_FAULT", "alloc:p=1", 1);
  ASSERT_TRUE(InstallPlanFromEnv().ok());
  EXPECT_TRUE(PlanActive());
  EXPECT_TRUE(ShouldFail(kAlloc, 1));

  // An unset TPR_FAULT is a no-op, not a clear: an explicitly installed
  // plan survives, and only ClearPlan removes it.
  unsetenv("TPR_FAULT");
  ASSERT_TRUE(InstallPlanFromEnv().ok());
  EXPECT_TRUE(PlanActive());
  ClearPlan();
  EXPECT_FALSE(PlanActive());

  setenv("TPR_FAULT", "alloc:wat=1", 1);
  EXPECT_EQ(InstallPlanFromEnv().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Verdict semantics.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, NoPlanNeverFails) {
  EXPECT_FALSE(PlanActive());
  EXPECT_FALSE(ShouldFail(kAlloc, 123));
  EXPECT_FALSE(ShouldFail(kCkptRead));
  EXPECT_FALSE(WouldFail(kEncoderForward, 7));
  EXPECT_DOUBLE_EQ(DelayMs(kSlowWorker, 1), 0.0);
}

TEST_F(FaultTest, PModeIsAPureFunctionOfTheKey) {
  Install("encoder-forward:p=0.5,seed=42");
  constexpr int kKeys = 2000;
  std::vector<bool> first(kKeys), second(kKeys);
  int fails = 0;
  for (int k = 0; k < kKeys; ++k) {
    first[k] = ShouldFail(kEncoderForward, k);
    fails += first[k] ? 1 : 0;
  }
  for (int k = 0; k < kKeys; ++k) second[k] = ShouldFail(kEncoderForward, k);
  EXPECT_EQ(first, second);
  // Hash-uniform: the empirical rate is close to p.
  EXPECT_GT(fails, kKeys / 2 - kKeys / 8);
  EXPECT_LT(fails, kKeys / 2 + kKeys / 8);
  // WouldFail is the pure lookahead of the same verdict.
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(WouldFail(kEncoderForward, k), first[k]) << k;
  }
}

TEST_F(FaultTest, PModeIsIndependentOfThreadInterleaving) {
  Install("encoder-forward:p=0.3,seed=11");
  constexpr int kKeys = 512;
  std::vector<char> serial(kKeys), threaded(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    serial[k] = ShouldFail(kEncoderForward, k) ? 1 : 0;
  }
  par::SetDefaultThreads(4);
  par::DefaultPool().ParallelFor(kKeys, [&](int k) {
    threaded[k] = ShouldFail(kEncoderForward, k) ? 1 : 0;
  });
  par::SetDefaultThreads(1);
  EXPECT_EQ(serial, threaded);
}

TEST_F(FaultTest, SeedDecorrelatesPModeVerdicts) {
  Install("alloc:p=0.5,seed=1");
  std::vector<bool> a(256);
  for (int k = 0; k < 256; ++k) a[k] = WouldFail(kAlloc, k);
  Install("alloc:p=0.5,seed=2");
  std::vector<bool> b(256);
  for (int k = 0; k < 256; ++k) b[k] = WouldFail(kAlloc, k);
  EXPECT_NE(a, b);
}

TEST_F(FaultTest, NthModeFailsEveryNthCall) {
  Install("ckpt-read:nth=3");
  std::vector<bool> verdicts;
  for (int i = 0; i < 9; ++i) verdicts.push_back(ShouldFail(kCkptRead));
  const std::vector<bool> expected = {false, false, true, false, false,
                                      true,  false, false, true};
  EXPECT_EQ(verdicts, expected);
}

TEST_F(FaultTest, AfterModeFailsForeverWithoutUntil) {
  Install("alloc:after=2");
  std::vector<bool> verdicts;
  for (int i = 0; i < 6; ++i) verdicts.push_back(ShouldFail(kAlloc, 0));
  const std::vector<bool> expected = {false, false, true, true, true, true};
  EXPECT_EQ(verdicts, expected);
}

TEST_F(FaultTest, UntilBoundsTheOutageWindow) {
  Install("alloc:after=2,until=4");
  std::vector<bool> verdicts;
  for (int i = 0; i < 6; ++i) verdicts.push_back(ShouldFail(kAlloc, 0));
  // Calls are 1-based: (after, until] = {3, 4} fail, then the site
  // recovers — the shape the watchdog-rollback tests below rely on.
  const std::vector<bool> expected = {false, false, true, true, false, false};
  EXPECT_EQ(verdicts, expected);
}

TEST_F(FaultTest, DelayIsGatedByProbabilityWhenBothPresent) {
  Install("slow-worker:delay_ms=2.5");
  for (int k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(DelayMs(kSlowWorker, k), 2.5);
  }
  Install("slow-worker:p=0.5,seed=3,delay_ms=2.5");
  int delayed = 0, clean = 0;
  for (int k = 0; k < 256; ++k) {
    const double d = DelayMs(kSlowWorker, k);
    (d > 0 ? delayed : clean) += 1;
    EXPECT_EQ(d > 0, WouldFail(kSlowWorker, k)) << k;
  }
  EXPECT_GT(delayed, 0);
  EXPECT_GT(clean, 0);
}

TEST_F(FaultTest, InjectedFailuresAreCounted) {
  obs::SetMetricsEnabled(true);
  obs::ResetAllMetrics();
  Install("alloc:p=1");
  for (int k = 0; k < 5; ++k) EXPECT_TRUE(ShouldFail(kAlloc, k));
  EXPECT_EQ(obs::GetCounter("fault.alloc.injected").value(), 5u);
}

// ---------------------------------------------------------------------------
// Checkpoint I/O sites.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, CkptWriteFaultFailsTheSave) {
  const std::string dir = ScratchDir("write_fault");
  ckpt::CheckpointDir cd(dir);
  Install("ckpt-write:after=0");
  EXPECT_FALSE(cd.Save(1, "payload").ok());
  ClearPlan();
  ASSERT_TRUE(cd.Save(1, "payload").ok());
  auto loaded = cd.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->payload, "payload");
}

TEST_F(FaultTest, CkptReadFaultFallsBackToOlderGeneration) {
  const std::string dir = ScratchDir("read_fault");
  ckpt::CheckpointDir cd(dir);
  ASSERT_TRUE(cd.Save(1, "old").ok());
  ASSERT_TRUE(cd.Save(2, "new").ok());
  // The first read (the newest file) fails once; LoadLatest must fall
  // back to the surviving older generation instead of erroring out.
  Install("ckpt-read:after=0,until=1");
  auto loaded = cd.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->seq, 1u);
  EXPECT_EQ(loaded->payload, "old");
  // With the window expired the newest generation is served again.
  auto recovered = cd.LoadLatest();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->seq, 2u);
}

TEST_F(FaultTest, CkptKillPointHookRoundTrips) {
  EXPECT_FALSE(static_cast<bool>(CkptWriteKillPoint()));
  SetCkptWriteKillPoint([](size_t size) { return size / 2; });
  ASSERT_TRUE(static_cast<bool>(CkptWriteKillPoint()));
  EXPECT_EQ(CkptWriteKillPoint()(10), 5u);
  SetCkptWriteKillPoint(nullptr);
  EXPECT_FALSE(static_cast<bool>(CkptWriteKillPoint()));
}

// ---------------------------------------------------------------------------
// Training watchdog drills (nan-loss site) on a tiny city.
// ---------------------------------------------------------------------------

class WatchdogTest : public FaultTest {
 protected:
  static void SetUpTestSuite() {
    auto preset = synth::AalborgPreset();
    synth::ScaleDataset(preset, 0.1);
    auto ds = synth::BuildPresetDataset(preset);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    data_ = new std::shared_ptr<synth::CityDataset>(
        std::make_shared<synth::CityDataset>(std::move(*ds)));
    core::FeatureConfig fc;
    fc.temporal_graph.slots_per_day = 48;
    fc.node2vec.walks_per_node = 2;
    fc.node2vec.epochs = 1;
    auto fs = core::BuildFeatureSpace(*data_, fc);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    features_ = new std::shared_ptr<const FeatureSpace>(
        std::make_shared<const FeatureSpace>(std::move(*fs)));
  }

  // Freed so the suite is LeakSanitizer-clean (CI runs it under ASan).
  static void TearDownTestSuite() {
    delete features_;
    features_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  static core::WscConfig TinyWsc() {
    core::WscConfig cfg;
    cfg.encoder.d_hidden = 16;
    cfg.encoder.projection_dim = 8;
    cfg.anchors_per_batch = 6;
    return cfg;
  }

  static WsccalConfig TinyWsccal() {
    WsccalConfig cfg;
    cfg.wsc = TinyWsc();
    cfg.curriculum.strategy = CurriculumStrategy::kHeuristic;
    cfg.curriculum.num_meta_sets = 2;
    cfg.curriculum.expert_epochs = 1;
    cfg.stage_epochs = 1;
    cfg.final_epochs = 2;
    return cfg;
  }

  static std::vector<int> AllUnlabeled() {
    std::vector<int> all((*data_)->unlabeled.size());
    std::iota(all.begin(), all.end(), 0);
    return all;
  }

  std::shared_ptr<const FeatureSpace> features() { return *features_; }

  static std::shared_ptr<synth::CityDataset>* data_;
  static std::shared_ptr<const FeatureSpace>* features_;
};

std::shared_ptr<synth::CityDataset>* WatchdogTest::data_ = nullptr;
std::shared_ptr<const FeatureSpace>* WatchdogTest::features_ = nullptr;

TEST_F(WatchdogTest, SkipsInjectedBadBatchesAndFinishesTheEpoch) {
  par::SetDefaultThreads(1);
  obs::SetMetricsEnabled(true);
  obs::ResetAllMetrics();
  Install("nan-loss:nth=4");
  WscModel model(features(), TinyWsc());
  auto loss = model.TrainEpoch(AllUnlabeled());
  ASSERT_TRUE(loss.ok()) << loss.status().ToString();
  EXPECT_TRUE(std::isfinite(*loss));
  EXPECT_GE(obs::GetCounter("wsc.watchdog_skipped").value(), 1u);
  EXPECT_EQ(model.consecutive_bad_batches(), 0);
}

TEST_F(WatchdogTest, AbortsWithDataLossAfterConsecutiveBadBatches) {
  par::SetDefaultThreads(1);
  Install("nan-loss:after=0");  // every batch is poisoned
  core::WscConfig cfg = TinyWsc();
  cfg.watchdog_max_consecutive_bad = 3;
  WscModel model(features(), cfg);
  auto loss = model.TrainEpoch(AllUnlabeled());
  EXPECT_EQ(loss.status().code(), StatusCode::kDataLoss);
}

TEST_F(WatchdogTest, PipelineRollsBackOnceAndMatchesTheCleanRunBitwise) {
  par::SetDefaultThreads(1);
  obs::SetMetricsEnabled(true);

  // Clean reference run. wsc.batches counts every stepped batch, which
  // with no bad batches equals the number of nan-loss watchdog checks —
  // the call count the fault window below is aimed at.
  WsccalConfig cfg = TinyWsccal();
  cfg.wsc.watchdog_max_consecutive_bad = 1;
  obs::ResetAllMetrics();
  cfg.ckpt_dir = ScratchDir("rollback_clean");
  auto clean = WsccalPipeline::Train(features(), cfg);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_TRUE((*clean)->completed());
  const uint64_t total_batches = obs::GetCounter("wsc.batches").value();
  ASSERT_GT(total_batches, 2u);
  const double clean_loss = (*clean)->final_loss();

  // Faulted run: poison exactly the last batch of the schedule. The
  // watchdog aborts the final epoch with DataLoss, the pipeline rolls
  // back to the last checkpoint, and the re-run (site calls past the
  // window) must reproduce the clean run bit for bit.
  obs::ResetAllMetrics();
  Install("nan-loss:after=" + std::to_string(total_batches - 1) +
          ",until=" + std::to_string(total_batches));
  cfg.ckpt_dir = ScratchDir("rollback_faulted");
  auto healed = WsccalPipeline::Train(features(), cfg);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_TRUE((*healed)->completed());
  EXPECT_EQ(obs::GetCounter("wsccl.watchdog_rollbacks").value(), 1u);
  EXPECT_GE(obs::GetCounter("wsc.watchdog_skipped").value(), 1u);
  EXPECT_EQ(Bits((*healed)->final_loss()), Bits(clean_loss));
}

// ---------------------------------------------------------------------------
// Shard-qualified rules (`site@shard`) + thread-local fault scopes.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, ShardQualifierOnlyFiresInsideItsScope) {
  Install("encoder-forward@shard1:p=1");
  // No scope installed and no bare rule: the qualified rule is invisible.
  EXPECT_FALSE(ShouldFail(kEncoderForward, 1));
  {
    ScopedShard scope("shard1");
    EXPECT_EQ(CurrentShard(), "shard1");
    EXPECT_TRUE(ShouldFail(kEncoderForward, 1));
    {
      // Empty scope is a no-op: the outer scope stays installed, so a
      // scoped shard calling an unscoped component keeps its identity.
      ScopedShard noop("");
      EXPECT_EQ(CurrentShard(), "shard1");
      EXPECT_TRUE(ShouldFail(kEncoderForward, 1));
    }
    {
      ScopedShard inner("shard2");
      EXPECT_EQ(CurrentShard(), "shard2");
      EXPECT_FALSE(ShouldFail(kEncoderForward, 1));
    }
    EXPECT_EQ(CurrentShard(), "shard1");
  }
  EXPECT_EQ(CurrentShard(), "");
}

TEST_F(FaultTest, QualifiedRuleOverridesBareOnlyWithinItsScope) {
  auto plan = FaultPlan::Parse("ckpt-write:p=0.25,seed=3;ckpt-write@s1:p=1");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const SiteRule* bare = plan->Find(kCkptWrite);
  ASSERT_NE(bare, nullptr);
  EXPECT_DOUBLE_EQ(bare->probability, 0.25);
  const SiteRule* scoped = plan->Find(kCkptWrite, "s1");
  ASSERT_NE(scoped, nullptr);
  EXPECT_DOUBLE_EQ(scoped->probability, 1.0);
  // A scope with no qualified rule falls back to the bare rule.
  const SiteRule* other = plan->Find(kCkptWrite, "s2");
  ASSERT_NE(other, nullptr);
  EXPECT_DOUBLE_EQ(other->probability, 0.25);

  InstallPlan(*std::move(plan));
  {
    ScopedShard scope("s1");
    for (uint64_t k = 0; k < 8; ++k) EXPECT_TRUE(ShouldFail(kCkptWrite, k));
  }
  {
    // s2 sees the bare p=0.25 rule: some keys pass.
    ScopedShard scope("s2");
    int failures = 0;
    for (uint64_t k = 0; k < 64; ++k) failures += ShouldFail(kCkptWrite, k);
    EXPECT_GT(failures, 0);
    EXPECT_LT(failures, 40);
  }
}

TEST_F(FaultTest, ScopedVerdictsDecorrelateAcrossShards) {
  // Same site, same seed, different shard qualifiers: the verdict
  // streams must differ (the qualified name is folded into the hash).
  Install("encoder-forward@a:p=0.5,seed=9;encoder-forward@b:p=0.5,seed=9");
  std::vector<bool> a, b;
  {
    ScopedShard scope("a");
    for (uint64_t k = 0; k < 64; ++k) a.push_back(ShouldFail(kEncoderForward, k));
  }
  {
    ScopedShard scope("b");
    for (uint64_t k = 0; k < 64; ++k) b.push_back(ShouldFail(kEncoderForward, k));
  }
  EXPECT_NE(a, b);
}

TEST_F(FaultTest, ScopedInjectionsCountUnderTheQualifiedName) {
  obs::SetMetricsEnabled(true);
  obs::ResetAllMetrics();
  Install("route-dispatch@shard0:p=1");
  {
    ScopedShard scope("shard0");
    EXPECT_TRUE(ShouldFail(kRouteDispatch, 7));
  }
  EXPECT_EQ(obs::GetCounter("fault.route-dispatch@shard0.injected").value(),
            1u);
  EXPECT_EQ(obs::GetCounter("fault.route-dispatch.injected").value(), 0u);
}

TEST_F(FaultTest, ShardQualifierGrammarRejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::Parse("@shard0:p=1").ok());
  EXPECT_FALSE(FaultPlan::Parse("encoder-forward@:p=1").ok());
  EXPECT_FALSE(FaultPlan::Parse("encoder-forward@a@b:p=1").ok());
  // Duplicate (site, scope) pairs are rejected; same site under
  // different scopes (or bare + scoped) is fine.
  EXPECT_FALSE(FaultPlan::Parse("alloc@s:p=1;alloc@s:p=0.5").ok());
  EXPECT_TRUE(FaultPlan::Parse("alloc:p=0.1;alloc@s:p=1;alloc@t:p=1").ok());
}

TEST_F(WatchdogTest, PipelineGivesUpAfterMaxRollbacks) {
  par::SetDefaultThreads(1);
  obs::SetMetricsEnabled(true);

  // Clean run, only to size the outage: the fault must start after at
  // least one checkpoint exists or there is nothing to roll back to.
  WsccalConfig cfg = TinyWsccal();
  cfg.wsc.watchdog_max_consecutive_bad = 1;
  cfg.max_watchdog_rollbacks = 2;
  obs::ResetAllMetrics();
  cfg.ckpt_dir = ScratchDir("exhausted_clean");
  ASSERT_TRUE(WsccalPipeline::Train(features(), cfg).ok());
  const uint64_t total_batches = obs::GetCounter("wsc.batches").value();
  ASSERT_GT(total_batches, 2u);

  // A permanent outage from the last batch on: every rollback re-runs
  // straight into a poisoned batch until the budget is exhausted.
  obs::ResetAllMetrics();
  Install("nan-loss:after=" + std::to_string(total_batches - 1));
  cfg.ckpt_dir = ScratchDir("exhausted_faulted");
  auto result = WsccalPipeline::Train(features(), cfg);
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(obs::GetCounter("wsccl.watchdog_rollbacks").value(), 2u);
}

}  // namespace
}  // namespace tpr::fault
