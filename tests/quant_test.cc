#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/features.h"
#include "core/probe.h"
#include "kern/kern.h"
#include "nn/tensor.h"
#include "par/thread_pool.h"
#include "quant/quant.h"
#include "synth/presets.h"
#include "util/rng.h"

namespace tpr::quant {
namespace {

using core::FeatureSpace;
using core::TemporalPathEncoder;

class ScopedKernel {
 public:
  explicit ScopedKernel(kern::Kernel k) : previous_(kern::ActiveKernel()) {
    kern::SetKernel(k);
  }
  ~ScopedKernel() { kern::SetKernel(previous_); }

 private:
  kern::Kernel previous_;
};

std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "tpr_quant_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

nn::Tensor RandomTensor(int rows, int cols, uint64_t seed, float span) {
  nn::Tensor t(rows, cols);
  Rng rng(seed);
  float* d = t.data();
  for (size_t i = 0; i < t.size(); ++i) {
    d[i] = span * (2.0f * static_cast<float>(rng.Uniform()) - 1.0f);
  }
  return t;
}

// ---------------------------------------------------------------------------
// Quantization numerics (satellite: property tests).
// ---------------------------------------------------------------------------

TEST(QuantizePerChannelTest, RoundtripErrorIsWithinHalfAScaleStep) {
  // Odd shapes on purpose: per-channel packing must not assume alignment.
  const int shapes[][2] = {{1, 1}, {3, 5}, {17, 7}, {48, 64}, {33, 129}};
  for (const auto& s : shapes) {
    const nn::Tensor w =
        RandomTensor(s[0], s[1], 1000u + static_cast<uint64_t>(s[0]), 2.0f);
    const QuantizedTensor q = QuantizePerChannel(w);
    ASSERT_EQ(q.rows, s[1]);  // output channels = fp32 columns
    ASSERT_EQ(q.cols, s[0]);
    ASSERT_EQ(q.scales.size(), static_cast<size_t>(s[1]));
    for (int c = 0; c < s[1]; ++c) {
      const float scale = q.scales[c];
      ASSERT_GT(scale, 0.0f);
      for (int r = 0; r < s[0]; ++r) {
        const int8_t qv = q.data[static_cast<size_t>(c) * s[0] + r];
        const float dequant = static_cast<float>(qv) * scale;
        const float err = std::abs(dequant - w.at(r, c));
        // The symmetric-rounding guarantee, with a whisper of fp slack.
        EXPECT_LE(err, 0.5f * scale + 1e-6f * scale)
            << "shape " << s[0] << "x" << s[1] << " at (" << r << "," << c
            << ")";
      }
    }
  }
}

TEST(QuantizePerChannelTest, ZeroChannelGetsUnitScaleAndZeroCodes) {
  nn::Tensor w(4, 2);
  w.at(0, 1) = 3.0f;  // channel 1 is live, channel 0 all-zero
  const QuantizedTensor q = QuantizePerChannel(w);
  EXPECT_EQ(q.scales[0], 1.0f);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(q.data[static_cast<size_t>(0) * 4 + r], 0);
  }
}

TEST(QuantizePerChannelTest, RoundsHalfwayCasesToEven) {
  // Channel max 127 -> scale exactly 1.0, so codes are round(w) under
  // round-to-nearest-even: 2.5 -> 2, 3.5 -> 4.
  nn::Tensor w = nn::Tensor::FromValues(4, 1, {127.0f, 2.5f, 3.5f, -2.5f});
  const QuantizedTensor q = QuantizePerChannel(w);
  ASSERT_EQ(q.scales[0], 1.0f);
  EXPECT_EQ(q.data[0], 127);
  EXPECT_EQ(q.data[1], 2);
  EXPECT_EQ(q.data[2], 4);
  EXPECT_EQ(q.data[3], -2);
}

TEST(QuantizeRowTest, SaturatesBeyondTheCalibratedRange) {
  const float x[4] = {0.5f, -0.5f, 10.0f, -10.0f};
  int8_t q[4];
  // inv_scale for a calibrated max_abs of 1.0: 127 / 1.0.
  kern::QuantizeRow(x, 127.0f, q, 4);
  EXPECT_EQ(q[0], 64);  // 63.5 rounds to even
  EXPECT_EQ(q[1], -64);
  EXPECT_EQ(q[2], 127);
  EXPECT_EQ(q[3], -127);
}

TEST(MinMaxObserverTest, MergeIsOrderIndependent) {
  const float a[3] = {0.5f, -2.0f, 1.0f};
  const float b[2] = {3.0f, -0.1f};
  MinMaxObserver ab, ba, oa, ob;
  oa.Observe(a, 3);
  ob.Observe(b, 2);
  ab = oa;
  ab.Merge(ob);
  ba = ob;
  ba.Merge(oa);
  EXPECT_EQ(ab.max_abs, ba.max_abs);
  EXPECT_EQ(ab.max_abs, 3.0f);
  EXPECT_EQ(ab.Scale(), 3.0f / 127.0f);
  EXPECT_EQ(MinMaxObserver{}.Scale(), 1.0f);
}

// ---------------------------------------------------------------------------
// Int8 GEMM: scalar and avx2 must agree BITWISE (exact integer math).
// ---------------------------------------------------------------------------

TEST(GemmInt8Test, ScalarAndAvx2AgreeBitwiseOnOddShapes) {
  if (!kern::CpuSupportsAvx2()) {
    GTEST_SKIP() << "no avx2 on this CPU";
  }
  // Shapes straddle every edge: k below/at/above the 16-lane step, n
  // below/at/above the 4-row block, m = 1 and many.
  const int shapes[][3] = {{1, 1, 1},   {1, 15, 3},  {2, 16, 4},
                           {3, 17, 5},  {5, 31, 7},  {4, 48, 12},
                           {7, 129, 9}, {6, 64, 64}, {1, 200, 33}};
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    Rng rng(static_cast<uint64_t>(m * 1000 + k * 10 + n));
    std::vector<int8_t> a(static_cast<size_t>(m) * k);
    std::vector<int8_t> bt(static_cast<size_t>(n) * k);
    for (auto& v : a) {
      v = static_cast<int8_t>(static_cast<int>(rng.Uniform() * 255.0) - 127);
    }
    for (auto& v : bt) {
      v = static_cast<int8_t>(static_cast<int>(rng.Uniform() * 255.0) - 127);
    }
    std::vector<int32_t> scalar_out(static_cast<size_t>(m) * n, -1);
    std::vector<int32_t> avx2_out(static_cast<size_t>(m) * n, -2);
    {
      ScopedKernel pin(kern::Kernel::kScalar);
      kern::GemmInt8(a.data(), bt.data(), scalar_out.data(), m, k, n);
    }
    {
      ScopedKernel pin(kern::Kernel::kAvx2);
      kern::GemmInt8(a.data(), bt.data(), avx2_out.data(), m, k, n);
    }
    EXPECT_EQ(scalar_out, avx2_out) << "m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(GemmInt8Test, ZeroInnerDimensionZeroesTheOutput) {
  int32_t out[4] = {1, 2, 3, 4};
  kern::GemmInt8(nullptr, nullptr, out, 2, 0, 2);
  for (int32_t v : out) EXPECT_EQ(v, 0);
}

TEST(GemmInt8WideTest, MatchesNarrowGemmUnderEveryKernel) {
  // The pre-widened panel changes only how weights are stored, never the
  // exact int32 accumulation — wide must equal narrow bitwise under both
  // kernels. Shapes straddle the 16-lane k step, the 4-channel block,
  // the 2-row register block, and the 32-row L1 tile.
  const int shapes[][3] = {{1, 1, 1},    {1, 15, 3},  {2, 16, 4},
                           {3, 17, 5},   {5, 31, 7},  {7, 129, 9},
                           {6, 64, 64},  {33, 17, 5}, {40, 16, 8},
                           {65, 48, 12}, {1, 200, 33}};
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    Rng rng(static_cast<uint64_t>(m * 1000 + k * 10 + n));
    std::vector<int8_t> a(static_cast<size_t>(m) * k);
    std::vector<int8_t> bt(static_cast<size_t>(n) * k);
    for (auto& v : a) {
      v = static_cast<int8_t>(static_cast<int>(rng.Uniform() * 255.0) - 127);
    }
    for (auto& v : bt) {
      v = static_cast<int8_t>(static_cast<int>(rng.Uniform() * 255.0) - 127);
    }
    const std::vector<int16_t> btw(bt.begin(), bt.end());
    std::vector<int32_t> narrow_out(static_cast<size_t>(m) * n, -1);
    kern::GemmInt8(a.data(), bt.data(), narrow_out.data(), m, k, n);
    std::vector<kern::Kernel> kernels = {kern::Kernel::kScalar};
    if (kern::CpuSupportsAvx2()) kernels.push_back(kern::Kernel::kAvx2);
    for (kern::Kernel kk : kernels) {
      ScopedKernel pin(kk);
      std::vector<int32_t> wide_out(static_cast<size_t>(m) * n, -2);
      kern::GemmInt8Wide(a.data(), btw.data(), wide_out.data(), m, k, n);
      EXPECT_EQ(narrow_out, wide_out)
          << "m=" << m << " k=" << k << " n=" << n << " kernel="
          << static_cast<int>(kk);
    }
  }
}

TEST(GemmInt8WideTest, ZeroInnerDimensionZeroesTheOutput) {
  int32_t out[4] = {1, 2, 3, 4};
  kern::GemmInt8Wide(nullptr, nullptr, out, 2, 0, 2);
  for (int32_t v : out) EXPECT_EQ(v, 0);
}

TEST(QuantEpilogueTest, Avx2LegsMatchScalarBitwise) {
  // QuantizeRow / DequantBias / DequantAcc dispatch to avx2 lanes that
  // apply the identical per-element op sequence (round-to-nearest-even,
  // mul, add — no FMA), so the quantized forward must not change with
  // TPR_KERNEL. Sizes cover the 8-lane step and its tails.
  if (!kern::CpuSupportsAvx2()) {
    GTEST_SKIP() << "no avx2 on this CPU";
  }
  Rng rng(77);
  for (const int n : {1, 7, 8, 9, 31, 64, 200}) {
    std::vector<float> x(n), b_scales(n), bias(n);
    std::vector<int32_t> acc(n);
    for (int i = 0; i < n; ++i) {
      x[i] = static_cast<float>(rng.Uniform() * 40.0 - 20.0);
      b_scales[i] = static_cast<float>(rng.Uniform() * 0.1 + 1e-3);
      bias[i] = static_cast<float>(rng.Uniform() - 0.5);
      acc[i] = static_cast<int32_t>(rng.Uniform() * 60000.0 - 30000.0);
    }
    // Values straddling the clamp and exact halfway codes.
    x[0] = 1000.0f;
    if (n > 1) x[1] = -1000.0f;
    if (n > 2) x[2] = 0.5f;

    std::vector<int8_t> q_scalar(n, 11), q_avx2(n, 22);
    std::vector<float> yb_scalar(n), yb_avx2(n);
    std::vector<float> ya_scalar(n, 0.25f), ya_avx2(n, 0.25f);
    {
      ScopedKernel pin(kern::Kernel::kScalar);
      kern::QuantizeRow(x.data(), 8.0f, q_scalar.data(), n);
      kern::DequantBias(acc.data(), 0.03f, b_scales.data(), bias.data(),
                        yb_scalar.data(), 1, n);
      kern::DequantAcc(acc.data(), 0.03f, b_scales.data(), ya_scalar.data(),
                       1, n);
    }
    {
      ScopedKernel pin(kern::Kernel::kAvx2);
      kern::QuantizeRow(x.data(), 8.0f, q_avx2.data(), n);
      kern::DequantBias(acc.data(), 0.03f, b_scales.data(), bias.data(),
                        yb_avx2.data(), 1, n);
      kern::DequantAcc(acc.data(), 0.03f, b_scales.data(), ya_avx2.data(), 1,
                       n);
    }
    EXPECT_EQ(q_scalar, q_avx2) << "n=" << n;
    EXPECT_EQ(yb_scalar, yb_avx2) << "n=" << n;
    EXPECT_EQ(ya_scalar, ya_avx2) << "n=" << n;
  }
}

TEST(DequantTest, BiasAndAccumulateEpilogues) {
  const int32_t acc[4] = {254, -254, 127, 0};
  const float b_scales[2] = {0.5f, 2.0f};
  const float bias[2] = {1.0f, -1.0f};
  float y[4] = {0.0f, 0.0f, 10.0f, 10.0f};
  kern::DequantBias(acc, /*a_scale=*/0.01f, b_scales, bias, y, 2, 2);
  EXPECT_FLOAT_EQ(y[0], 254.0f * 0.005f + 1.0f);
  EXPECT_FLOAT_EQ(y[1], -254.0f * 0.02f - 1.0f);
  EXPECT_FLOAT_EQ(y[2], 127.0f * 0.005f + 1.0f);
  EXPECT_FLOAT_EQ(y[3], -1.0f);

  float z[2] = {1.0f, 1.0f};
  kern::DequantAcc(acc, 0.01f, b_scales, z, 1, 2);
  EXPECT_FLOAT_EQ(z[0], 1.0f + 254.0f * 0.005f);
  EXPECT_FLOAT_EQ(z[1], 1.0f - 254.0f * 0.02f);
}

// ---------------------------------------------------------------------------
// End-to-end on a tiny city.
// ---------------------------------------------------------------------------

class QuantTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto preset = synth::AalborgPreset();
    synth::ScaleDataset(preset, 0.1);
    auto ds = synth::BuildPresetDataset(preset);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    data_ = new std::shared_ptr<synth::CityDataset>(
        std::make_shared<synth::CityDataset>(std::move(*ds)));
    core::FeatureConfig fc;
    fc.temporal_graph.slots_per_day = 48;
    fc.node2vec.walks_per_node = 2;
    fc.node2vec.epochs = 1;
    auto fs = core::BuildFeatureSpace(*data_, fc);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    features_ = new std::shared_ptr<const FeatureSpace>(
        std::make_shared<const FeatureSpace>(std::move(*fs)));
  }

  static void TearDownTestSuite() {
    delete features_;
    features_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  static core::EncoderConfig TinyEncoder() {
    core::EncoderConfig cfg;
    cfg.d_hidden = 16;
    cfg.projection_dim = 8;
    return cfg;
  }

  /// Calibration items over the first `n` unlabeled paths.
  static std::vector<core::PathTimeItem> Calibration(size_t n) {
    std::vector<core::PathTimeItem> items;
    items.reserve(n);
    for (size_t i = 0; i < n && i < (*data_)->unlabeled.size(); ++i) {
      items.push_back(
          {&(*data_)->unlabeled[i].path,
           (*data_)->unlabeled[i].depart_time_s});
    }
    return items;
  }

  static std::shared_ptr<const FeatureSpace> features() { return *features_; }

  static std::shared_ptr<synth::CityDataset>* data_;
  static std::shared_ptr<const FeatureSpace>* features_;
};

std::shared_ptr<synth::CityDataset>* QuantTest::data_ = nullptr;
std::shared_ptr<const FeatureSpace>* QuantTest::features_ = nullptr;

TEST_F(QuantTest, QuantizeEncoderRejectsBadInputs) {
  TemporalPathEncoder encoder(features(), TinyEncoder());
  EXPECT_EQ(QuantizeEncoder(encoder, {}).status().code(),
            StatusCode::kInvalidArgument);

  core::EncoderConfig tf = TinyEncoder();
  tf.sequence_model = core::SequenceModel::kTransformer;
  TemporalPathEncoder transformer(features(), tf);
  EXPECT_EQ(QuantizeEncoder(transformer, Calibration(2)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(QuantTest, CalibrationIsBitwiseDeterministic) {
  TemporalPathEncoder encoder(features(), TinyEncoder());
  const auto calibration = Calibration(8);

  // Reference run: one thread, scalar kernels pinned.
  par::SetDefaultThreads(1);
  std::string reference;
  {
    ScopedKernel pin(kern::Kernel::kScalar);
    auto m = QuantizeEncoder(encoder, calibration);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    reference = EncodeQuantizedModel(*m);
  }

  // Same thread count, run-to-run.
  {
    ScopedKernel pin(kern::Kernel::kScalar);
    auto m = QuantizeEncoder(encoder, calibration);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(EncodeQuantizedModel(*m), reference) << "run-to-run diverged";
  }

  // Four calibration threads: the per-item observers merge by max, which
  // is order-independent, so the artifact bytes cannot move.
  par::SetDefaultThreads(4);
  {
    ScopedKernel pin(kern::Kernel::kScalar);
    auto m = QuantizeEncoder(encoder, calibration);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(EncodeQuantizedModel(*m), reference) << "thread count leaked in";
  }

  // Dispatched avx2: calibration uses its own scalar fp32 reference
  // forward, so the kernel leg cannot leak in either.
  if (kern::CpuSupportsAvx2()) {
    ScopedKernel pin(kern::Kernel::kAvx2);
    auto m = QuantizeEncoder(encoder, calibration);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(EncodeQuantizedModel(*m), reference) << "TPR_KERNEL leaked in";
  }
  par::SetDefaultThreads(1);
}

TEST_F(QuantTest, BatchEncodeMatchesSingleEncodeBitwise) {
  // The batched forward runs the recurrent steps in lockstep across
  // items of different path lengths; every row must still be bitwise
  // the single encode, under either kernel leg.
  TemporalPathEncoder encoder(features(), TinyEncoder());
  auto model = QuantizeEncoder(encoder, Calibration(8));
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  QuantizedEncoder qe(features(), *std::move(model));

  // Build items with deliberately mixed lengths by taking prefixes of
  // the calibration paths (a prefix of a valid path is a valid path),
  // so the lockstep active-row dropout is exercised: short items finish
  // and drop out of the per-step GEMM while long ones keep going.
  const auto base = Calibration(6);
  std::vector<graph::Path> paths;
  paths.reserve(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    const graph::Path& full = *base[i].path;
    const size_t len = std::max<size_t>(1, full.size() - i % full.size());
    paths.emplace_back(full.begin(), full.begin() + len);
  }
  std::vector<core::PathTimeItem> items;
  for (size_t i = 0; i < base.size(); ++i) {
    items.push_back({&paths[i], base[i].depart_time_s});
  }
  size_t min_len = items[0].path->size(), max_len = min_len;
  for (const auto& item : items) {
    min_len = std::min(min_len, item.path->size());
    max_len = std::max(max_len, item.path->size());
  }
  ASSERT_LT(min_len, max_len);

  std::vector<kern::Kernel> kernels = {kern::Kernel::kScalar};
  if (kern::CpuSupportsAvx2()) kernels.push_back(kern::Kernel::kAvx2);
  for (kern::Kernel kk : kernels) {
    ScopedKernel pin(kk);
    const auto batch = qe.EncodeValueBatch(items);
    ASSERT_EQ(batch.size(), items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      EXPECT_EQ(batch[i],
                qe.EncodeValue(*items[i].path, items[i].depart_time_s))
          << "batch row " << i << " diverged from single encode under kernel "
          << static_cast<int>(kk);
    }
  }
}

TEST_F(QuantTest, QuantizedProbeMaeStaysNearFullPrecision) {
  TemporalPathEncoder encoder(features(), TinyEncoder());
  const core::ProbeSet probe = core::BuildProbeSet(**data_, 32, 11);
  ASSERT_FALSE(probe.queries.empty());

  auto fp32_mae = core::ProbeTravelTimeMae(encoder, probe);
  ASSERT_TRUE(fp32_mae.ok()) << fp32_mae.status().ToString();

  std::vector<core::PathTimeItem> calibration;
  for (const auto& q : probe.queries) {
    calibration.push_back({&q.path, q.depart_time_s});
  }
  auto model = QuantizeEncoder(encoder, calibration);
  ASSERT_TRUE(model.ok());
  QuantizedEncoder qe(features(), *std::move(model));
  ASSERT_EQ(qe.representation_dim(), encoder.representation_dim());

  auto quant_mae = core::ProbeTravelTimeMaeWith(
      [&qe](const graph::Path& path, int64_t t) {
        return qe.EncodeValue(path, t);
      },
      qe.representation_dim(), probe);
  ASSERT_TRUE(quant_mae.ok()) << quant_mae.status().ToString();
  EXPECT_GT(*quant_mae, 0.0);
  // The rollout gate's default delta budget.
  EXPECT_LE(*quant_mae, *fp32_mae * 1.25)
      << "quantized twin would fail the default rollout gate";
}

TEST_F(QuantTest, ArtifactRoundtripsAndRejectsCorruption) {
  const std::string dir = ScratchDir("artifact");
  core::EncoderConfig cfg = TinyEncoder();
  cfg.d_hidden = 32;
  TemporalPathEncoder encoder(features(), cfg);
  auto model = QuantizeEncoder(encoder, Calibration(4));
  ASSERT_TRUE(model.ok());
  model->generation = 7;

  EXPECT_EQ(LoadQuantizedModel(dir, 7).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(SaveQuantizedModel(dir, *model, 7).ok());

  auto loaded = LoadQuantizedModel(dir, 7);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->generation, 7u);
  EXPECT_EQ(EncodeQuantizedModel(*loaded), EncodeQuantizedModel(*model));

  // The decoded twin serves the same bytes as the in-memory one.
  QuantizedEncoder a(features(), *model);
  QuantizedEncoder b(features(), *std::move(loaded));
  const auto& item = (*data_)->unlabeled[0];
  EXPECT_EQ(a.EncodeValue(item.path, item.depart_time_s),
            b.EncodeValue(item.path, item.depart_time_s));

  // One flipped byte anywhere in the envelope kills the load.
  const std::string path = QuantArtifactPath(dir, 7);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 32u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x5a);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_FALSE(LoadQuantizedModel(dir, 7).ok());

  RemoveQuantArtifact(dir, 7);
  EXPECT_EQ(LoadQuantizedModel(dir, 7).status().code(), StatusCode::kNotFound);
  RemoveQuantArtifact(dir, 7);  // idempotent on a missing file
}

TEST_F(QuantTest, ArtifactIsRoughlyFourTimesSmallerThanFp32) {
  // Large enough that the LSTM weights dominate the fixed fp32 overhead
  // (embedding tables, scales, biases).
  core::EncoderConfig cfg = TinyEncoder();
  cfg.d_hidden = 64;
  cfg.projection_dim = 16;
  TemporalPathEncoder encoder(features(), cfg);
  auto model = QuantizeEncoder(encoder, Calibration(4));
  ASSERT_TRUE(model.ok());

  size_t fp32_bytes = 0;
  for (nn::Var p : encoder.Parameters()) {
    if (p.defined()) fp32_bytes += p.value().size() * sizeof(float);
  }
  const size_t quant_bytes = EncodeQuantizedModel(*model).size();
  EXPECT_GE(static_cast<double>(fp32_bytes) /
                static_cast<double>(quant_bytes),
            3.0)
      << "fp32 " << fp32_bytes << "B vs quant " << quant_bytes << "B";
  // Layer 0: w_ih 48x256 + w_hh 64x256; layer 1: w_ih 64x256 + w_hh
  // 64x256 — one int8 byte per weight.
  EXPECT_EQ(model->WeightBytes(),
            static_cast<size_t>(48 + 64 + 64 + 64) * 4 * 64)
      << "unexpected int8 payload for 2 LSTM layers";
}

TEST_F(QuantTest, QuantEnabledFromEnvHonoursTheKnob) {
  const char* saved = std::getenv("TPR_QUANT");
  const std::string saved_value = saved != nullptr ? saved : "";

  ::unsetenv("TPR_QUANT");
  EXPECT_TRUE(QuantEnabledFromEnv());
  ::setenv("TPR_QUANT", "1", 1);
  EXPECT_TRUE(QuantEnabledFromEnv());
  ::setenv("TPR_QUANT", "0", 1);
  EXPECT_FALSE(QuantEnabledFromEnv());
  ::setenv("TPR_QUANT", "off", 1);
  EXPECT_FALSE(QuantEnabledFromEnv());

  if (saved != nullptr) {
    ::setenv("TPR_QUANT", saved_value.c_str(), 1);
  } else {
    ::unsetenv("TPR_QUANT");
  }
}

}  // namespace
}  // namespace tpr::quant
