#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/optimizer.h"
#include "nn/transformer.h"

namespace tpr::nn {
namespace {

// Finite-difference gradient check (shared pattern with nn_test).
void CheckGradient(Var param, const std::function<Var()>& loss_fn,
                   float tolerance = 5e-2f) {
  Var loss = loss_fn();
  param.ZeroGrad();
  loss.Backward();
  Tensor analytic = param.grad();
  ASSERT_FALSE(analytic.empty());
  const float eps = 1e-3f;
  Tensor& value = param.mutable_value();
  for (size_t i = 0; i < value.size(); ++i) {
    const float original = value[i];
    value[i] = original + eps;
    const float up = loss_fn().scalar();
    value[i] = original - eps;
    const float down = loss_fn().scalar();
    value[i] = original;
    const float numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric,
                tolerance * std::max(1.0f, std::fabs(numeric)))
        << "element " << i;
  }
}

TEST(SelfAttentionTest, OutputShape) {
  Rng rng(41);
  SelfAttention attn(6, 4, rng);
  Var x = UniformParam(5, 6, 0.5f, rng);
  Var y = attn.Forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 4);
}

TEST(SelfAttentionTest, GradientCheck) {
  Rng rng(42);
  SelfAttention attn(3, 3, rng);
  Var x = UniformParam(4, 3, 0.5f, rng);
  CheckGradient(x, [&] { return Sum(attn.Forward(x)); });
  for (auto& p : attn.Parameters()) {
    CheckGradient(p, [&] { return Sum(attn.Forward(x)); });
  }
}

TEST(SelfAttentionTest, PermutationEquivariantWithoutPositions) {
  // Pure self-attention treats the sequence as a set: permuting the rows
  // of the input permutes the rows of the output.
  Rng rng(43);
  SelfAttention attn(3, 3, rng);
  Var x = UniformParam(3, 3, 0.5f, rng);
  Var y = attn.Forward(x);

  // Swap rows 0 and 2 of the input.
  Tensor swapped = x.value();
  for (int j = 0; j < 3; ++j) {
    std::swap(swapped.at(0, j), swapped.at(2, j));
  }
  Var y2 = attn.Forward(Var::Leaf(swapped));
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(y.value().at(0, j), y2.value().at(2, j), 1e-5);
    EXPECT_NEAR(y.value().at(2, j), y2.value().at(0, j), 1e-5);
    EXPECT_NEAR(y.value().at(1, j), y2.value().at(1, j), 1e-5);
  }
}

TEST(TransformerBlockTest, ShapePreservingAndBounded) {
  Rng rng(44);
  TransformerBlock block(8, 16, rng);
  Var x = UniformParam(6, 8, 0.5f, rng);
  Var y = block.Forward(x);
  EXPECT_EQ(y.rows(), 6);
  EXPECT_EQ(y.cols(), 8);
  for (size_t i = 0; i < y.value().size(); ++i) {
    EXPECT_LE(std::fabs(y.value()[i]), 1.0f);  // tanh-bounded
  }
}

TEST(TransformerEncoderTest, PositionsBreakPermutationInvariance) {
  // Unlike bare attention, the encoder adds position encodings: the same
  // multiset of edge vectors in a different order yields different output.
  Rng rng(45);
  TransformerEncoder enc(4, 8, 1, rng);
  Var x = UniformParam(3, 4, 0.5f, rng);
  Tensor reversed = x.value();
  for (int j = 0; j < 4; ++j) std::swap(reversed.at(0, j), reversed.at(2, j));
  Var a = enc.Forward(x);
  Var b = enc.Forward(Var::Leaf(reversed));
  // Mean-aggregated outputs differ.
  Var ma = RowMean(a);
  Var mb = RowMean(b);
  double diff = 0;
  for (int j = 0; j < 8; ++j) {
    diff += std::fabs(ma.value()[j] - mb.value()[j]);
  }
  EXPECT_GT(diff, 1e-4);
}

TEST(TransformerEncoderTest, TrainsOnToyObjective) {
  // Regress the mean of the first input column from the aggregated
  // encoder output; loss should drop.
  Rng rng(46);
  TransformerEncoder enc(2, 8, 1, rng);
  Linear head(8, 1, rng);
  std::vector<Var> params = enc.Parameters();
  auto hp = head.Parameters();
  params.insert(params.end(), hp.begin(), hp.end());
  Adam opt(params, 0.01f);

  auto make_example = [&](float target) {
    Tensor x(4, 2);
    for (int i = 0; i < 4; ++i) {
      x.at(i, 0) = target + static_cast<float>(rng.Gaussian(0, 0.05));
      x.at(i, 1) = static_cast<float>(rng.Gaussian());
    }
    return x;
  };
  auto epoch = [&]() {
    float total = 0;
    for (float target : {-0.5f, 0.0f, 0.5f}) {
      Var x = Var::Leaf(make_example(target));
      Var pred = head.Forward(RowMean(enc.Forward(x)));
      Var loss = MseLoss(pred, Tensor::RowVector({target}));
      opt.ZeroGrad();
      loss.Backward();
      opt.Step();
      total += loss.scalar();
    }
    return total / 3;
  };
  const float first = epoch();
  float last = first;
  for (int e = 0; e < 60; ++e) last = epoch();
  EXPECT_LT(last, first * 0.5f);
}

// Property sweep: encoder output is finite for varying sequence lengths.
class TransformerLengthTest : public ::testing::TestWithParam<int> {};

TEST_P(TransformerLengthTest, FiniteOutputs) {
  Rng rng(47);
  TransformerEncoder enc(4, 8, 2, rng);
  Var x = UniformParam(GetParam(), 4, 0.5f, rng);
  Var y = enc.Forward(x);
  EXPECT_EQ(y.rows(), GetParam());
  for (size_t i = 0; i < y.value().size(); ++i) {
    EXPECT_TRUE(std::isfinite(y.value()[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, TransformerLengthTest,
                         ::testing::Values(1, 2, 8, 32));

}  // namespace
}  // namespace tpr::nn
