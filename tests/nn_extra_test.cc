// Additional nn coverage: edge cases, numerical stability, graph reuse,
// and parameterized property sweeps complementing nn_test.cc.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/autograd.h"
#include "nn/modules.h"
#include "nn/optimizer.h"

namespace tpr::nn {
namespace {

Var MakeParam(std::vector<float> values, int rows, int cols) {
  return Var::Leaf(Tensor::FromValues(rows, cols, std::move(values)),
                   /*requires_grad=*/true);
}

TEST(AutogradExtraTest, BackwardTwiceAccumulates) {
  // Calling Backward on two separate graphs over the same leaf adds up.
  Var a = MakeParam({2.0f}, 1, 1);
  Sum(Mul(a, a)).Backward();   // d/da a^2 = 4
  Sum(Scale(a, 3.0f)).Backward();  // + 3
  EXPECT_FLOAT_EQ(a.grad()[0], 7.0f);
}

TEST(AutogradExtraTest, ZeroGradResets) {
  Var a = MakeParam({2.0f}, 1, 1);
  Sum(Mul(a, a)).Backward();
  a.ZeroGrad();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
}

TEST(AutogradExtraTest, ConstantLeafGetsNoGradient) {
  Var a = MakeParam({1.0f, 2.0f}, 1, 2);
  Var c = Var::Leaf(Tensor::RowVector({3.0f, 4.0f}));
  Var loss = Sum(Mul(a, c));
  loss.Backward();
  EXPECT_TRUE(c.grad().empty());
  EXPECT_FLOAT_EQ(a.grad()[0], 3.0f);
}

TEST(AutogradExtraTest, DeepChainGradient) {
  // 60 chained tanh ops: gradients flow without stack overflow (iterative
  // topo sort) and stay finite.
  Var a = MakeParam({0.5f}, 1, 1);
  Var x = a;
  for (int i = 0; i < 60; ++i) x = Tanh(x);
  Sum(x).Backward();
  EXPECT_TRUE(std::isfinite(a.grad()[0]));
}

TEST(AutogradExtraTest, SigmoidExtremeInputsStable) {
  Var a = MakeParam({100.0f, -100.0f}, 1, 2);
  Var y = Sigmoid(a);
  EXPECT_NEAR(y.value()[0], 1.0f, 1e-6f);
  EXPECT_NEAR(y.value()[1], 0.0f, 1e-6f);
  Sum(y).Backward();
  EXPECT_TRUE(std::isfinite(a.grad()[0]));
}

TEST(AutogradExtraTest, SoftplusExtremeInputsStable) {
  Var a = MakeParam({500.0f, -500.0f}, 1, 2);
  Var y = Softplus(a);
  EXPECT_NEAR(y.value()[0], 500.0f, 1e-3f);
  EXPECT_NEAR(y.value()[1], 0.0f, 1e-6f);
}

TEST(AutogradExtraTest, CosineSimSelfIsOne) {
  Var a = MakeParam({0.3f, -0.7f, 0.2f}, 1, 3);
  EXPECT_NEAR(CosineSim(a, a).scalar(), 1.0f, 1e-5f);
}

TEST(AutogradExtraTest, CosineSimNearZeroVectorFinite) {
  Var a = MakeParam({1e-12f, 0.0f}, 1, 2);
  Var b = MakeParam({1.0f, 0.0f}, 1, 2);
  Var s = CosineSim(a, b);
  EXPECT_TRUE(std::isfinite(s.scalar()));
  s.Backward();
  EXPECT_TRUE(std::isfinite(a.grad()[0]));
}

TEST(AutogradExtraTest, GatherRepeatedIndicesAccumulate) {
  Var table = MakeParam({1, 2, 3, 4}, 2, 2);
  Var g = Gather(table, {0, 0, 0});
  Sum(g).Backward();
  EXPECT_FLOAT_EQ(table.grad().at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(table.grad().at(1, 0), 0.0f);
}

TEST(AutogradExtraTest, MseLossZeroAtTarget) {
  Var pred = MakeParam({1.0f, 2.0f}, 1, 2);
  Var loss = MseLoss(pred, Tensor::RowVector({1.0f, 2.0f}));
  EXPECT_FLOAT_EQ(loss.scalar(), 0.0f);
}

TEST(AutogradExtraTest, RowMeanOfSingleRowIsIdentity) {
  Var a = MakeParam({1, 2, 3}, 1, 3);
  Var m = RowMean(a);
  for (int j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(m.value()[j], a.value()[j]);
  }
}

TEST(ModulesExtraTest, LinearNoBias) {
  Rng rng(51);
  Linear layer(2, 2, rng, /*bias=*/false);
  EXPECT_EQ(layer.Parameters().size(), 1u);
  // Zero input -> zero output without bias.
  Var zero = Var::Leaf(Tensor(1, 2));
  Var y = layer.Forward(zero);
  EXPECT_FLOAT_EQ(y.value()[0], 0.0f);
  EXPECT_FLOAT_EQ(y.value()[1], 0.0f);
}

TEST(ModulesExtraTest, LstmForgetBiasInitialisedToOne) {
  Rng rng(52);
  LstmLayer layer(2, 3, rng);
  const auto params = layer.Parameters();
  const Tensor& bias = params[2].value();
  // Gate order [i, f, g, o]: forget block is columns [h, 2h).
  for (int j = 3; j < 6; ++j) EXPECT_FLOAT_EQ(bias.at(0, j), 1.0f);
  for (int j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(bias.at(0, j), 0.0f);
}

TEST(ModulesExtraTest, LstmLearnsToCountSteps) {
  // Distinguish length-2 from length-6 constant sequences — requires the
  // recurrent state to integrate over time.
  Rng rng(53);
  Lstm lstm(1, 4, 1, rng);
  Linear head(4, 1, rng);
  std::vector<Var> params = lstm.Parameters();
  auto hp = head.Parameters();
  params.insert(params.end(), hp.begin(), hp.end());
  Adam opt(params, 0.02f);

  auto example = [&](int steps, float target) {
    Var x = Var::Leaf(Tensor(steps, 1, 0.5f));
    Var seq = lstm.Forward(x);
    Var pred = head.Forward(SliceRow(seq, steps - 1));
    return MseLoss(pred, Tensor::RowVector({target}));
  };
  float first = 0, last = 0;
  for (int e = 0; e < 150; ++e) {
    Var loss = Add(example(2, -1.0f), example(6, 1.0f));
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
    if (e == 0) first = loss.scalar();
    last = loss.scalar();
  }
  EXPECT_LT(last, first * 0.3f);
}

TEST(OptimizerExtraTest, WeightDecayShrinksWeights) {
  Var w = MakeParam({1.0f}, 1, 1);
  Sgd opt({w}, 0.1f, /*weight_decay=*/0.5f);
  // Zero gradient; only decay acts.
  Var loss = Sum(Scale(w, 0.0f));
  opt.ZeroGrad();
  loss.Backward();
  opt.Step();
  EXPECT_NEAR(w.value()[0], 1.0f - 0.1f * 0.5f, 1e-6f);
}

TEST(OptimizerExtraTest, AdamHandlesSparseGradients) {
  // A parameter that never receives gradient must remain unchanged.
  Var used = MakeParam({1.0f}, 1, 1);
  Var unused = MakeParam({2.0f}, 1, 1);
  Adam opt({used, unused}, 0.1f);
  for (int i = 0; i < 5; ++i) {
    Var loss = Sum(Mul(used, used));
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }
  EXPECT_FLOAT_EQ(unused.value()[0], 2.0f);
  EXPECT_LT(used.value()[0], 1.0f);
}

// Property sweep: gradient of Sum(activation(x)) has the same shape as x
// and is finite across activations and shapes.
struct ActivationCase {
  const char* name;
  Var (*fn)(const Var&);
};

class ActivationSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ActivationSweepTest, FiniteGradients) {
  const auto [rows, cols] = GetParam();
  Rng rng(54);
  const ActivationCase cases[] = {
      {"tanh", &Tanh}, {"sigmoid", &Sigmoid}, {"relu", &Relu},
      {"softplus", &Softplus}, {"exp", &Exp}};
  for (const auto& c : cases) {
    Var x = UniformParam(rows, cols, 0.9f, rng);
    Var loss = Sum(c.fn(x));
    loss.Backward();
    ASSERT_TRUE(x.grad().SameShape(x.value())) << c.name;
    for (size_t i = 0; i < x.grad().size(); ++i) {
      EXPECT_TRUE(std::isfinite(x.grad()[i])) << c.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ActivationSweepTest,
    ::testing::Combine(::testing::Values(1, 3, 7),
                       ::testing::Values(1, 4, 16)));

}  // namespace
}  // namespace tpr::nn
