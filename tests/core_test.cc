#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>

#include "core/curriculum.h"
#include "gradcheck.h"
#include "core/encoder.h"
#include "core/features.h"
#include "core/probe.h"
#include "core/wsc_loss.h"
#include "core/wsccl.h"
#include "par/thread_pool.h"
#include "synth/presets.h"
#include "synth/regime.h"

namespace tpr::core {
namespace {

// Shared tiny fixture: one small city + features, built once.
class CoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto preset = synth::AalborgPreset();
    synth::ScaleDataset(preset, 0.1);
    auto ds = synth::BuildPresetDataset(preset);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    data_ = new std::shared_ptr<synth::CityDataset>(
        std::make_shared<synth::CityDataset>(std::move(*ds)));
    FeatureConfig fc;
    fc.temporal_graph.slots_per_day = 48;
    fc.node2vec.walks_per_node = 2;
    fc.node2vec.epochs = 1;
    auto fs = BuildFeatureSpace(*data_, fc);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    features_ = new std::shared_ptr<const FeatureSpace>(
        std::make_shared<const FeatureSpace>(std::move(*fs)));
  }

  static EncoderConfig TinyEncoder() {
    EncoderConfig cfg;
    cfg.d_hidden = 16;
    cfg.projection_dim = 8;
    return cfg;
  }

  static WscConfig TinyWsc() {
    WscConfig cfg;
    cfg.encoder = TinyEncoder();
    cfg.anchors_per_batch = 6;
    return cfg;
  }

  const synth::CityDataset& data() { return **data_; }
  std::shared_ptr<const FeatureSpace> features() { return *features_; }

  static std::shared_ptr<synth::CityDataset>* data_;
  static std::shared_ptr<const FeatureSpace>* features_;
};

std::shared_ptr<synth::CityDataset>* CoreTest::data_ = nullptr;
std::shared_ptr<const FeatureSpace>* CoreTest::features_ = nullptr;

TEST_F(CoreTest, FeatureSpaceShapes) {
  const auto& fs = *features();
  EXPECT_EQ(fs.road_embeddings.num_nodes(), data().network->num_nodes());
  EXPECT_EQ(fs.road_embeddings.dim, fs.config.road_embedding_dim);
  EXPECT_EQ(fs.temporal_embeddings.num_nodes(),
            fs.config.temporal_graph.num_nodes());
  EXPECT_EQ(fs.temporal_embeddings.dim, fs.config.temporal_embedding_dim);
}

TEST_F(CoreTest, EncoderOutputShapes) {
  TemporalPathEncoder encoder(features(), TinyEncoder());
  const auto& sample = data().unlabeled.front();
  const auto encoded = encoder.Encode(sample.path, sample.depart_time_s);
  EXPECT_EQ(encoded.tpr.rows(), 1);
  EXPECT_EQ(encoded.tpr.cols(), 16);
  EXPECT_EQ(encoded.edge_reps.rows(),
            static_cast<int>(sample.path.size()));
  EXPECT_EQ(encoded.edge_reps.cols(), 16);
  EXPECT_EQ(encoded.tpr_proj.cols(), 8);
  EXPECT_EQ(encoded.edge_reps_proj.rows(), encoded.edge_reps.rows());
}

TEST_F(CoreTest, TprIsMeanOfEdgeReps) {
  TemporalPathEncoder encoder(features(), TinyEncoder());
  const auto& sample = data().unlabeled.front();
  const auto encoded = encoder.Encode(sample.path, sample.depart_time_s);
  for (int j = 0; j < encoded.tpr.cols(); ++j) {
    double mean = 0;
    for (int i = 0; i < encoded.edge_reps.rows(); ++i) {
      mean += encoded.edge_reps.value().at(i, j);
    }
    mean /= encoded.edge_reps.rows();
    EXPECT_NEAR(encoded.tpr.value().at(0, j), mean, 1e-5);
  }
}

TEST_F(CoreTest, EncoderDependsOnDepartureTime) {
  TemporalPathEncoder encoder(features(), TinyEncoder());
  const auto& sample = data().unlabeled.front();
  // Monday 8am vs Monday 3am should produce different TPRs.
  const auto morning = encoder.EncodeValue(sample.path, 8 * 3600);
  const auto night = encoder.EncodeValue(sample.path, 3 * 3600);
  double diff = 0;
  for (size_t i = 0; i < morning.size(); ++i) {
    diff += std::fabs(morning[i] - night[i]);
  }
  EXPECT_GT(diff, 1e-4);
}

TEST_F(CoreTest, NtEncoderIgnoresDepartureTime) {
  auto cfg = TinyEncoder();
  cfg.use_temporal = false;
  TemporalPathEncoder encoder(features(), cfg);
  const auto& sample = data().unlabeled.front();
  const auto a = encoder.EncodeValue(sample.path, 8 * 3600);
  const auto b = encoder.EncodeValue(sample.path, 3 * 3600);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST_F(CoreTest, EncoderDeterministicForSeed) {
  TemporalPathEncoder a(features(), TinyEncoder());
  TemporalPathEncoder b(features(), TinyEncoder());
  const auto& sample = data().unlabeled.front();
  const auto va = a.EncodeValue(sample.path, sample.depart_time_s);
  const auto vb = b.EncodeValue(sample.path, sample.depart_time_s);
  EXPECT_EQ(va, vb);
}

TEST_F(CoreTest, CopyParamsBetweenEncoders) {
  TemporalPathEncoder a(features(), TinyEncoder());
  auto cfg = TinyEncoder();
  cfg.seed = 999;
  TemporalPathEncoder b(features(), cfg);
  ASSERT_TRUE(a.CopyParamsFrom(b).ok());
  const auto& sample = data().unlabeled.front();
  EXPECT_EQ(a.EncodeValue(sample.path, sample.depart_time_s),
            b.EncodeValue(sample.path, sample.depart_time_s));
}

TEST_F(CoreTest, TransformerEncoderVariant) {
  auto cfg = TinyEncoder();
  cfg.sequence_model = SequenceModel::kTransformer;
  cfg.lstm_layers = 1;
  TemporalPathEncoder encoder(features(), cfg);
  const auto& sample = data().unlabeled.front();
  const auto encoded = encoder.Encode(sample.path, sample.depart_time_s);
  EXPECT_EQ(encoded.tpr.cols(), cfg.d_hidden);
  EXPECT_EQ(encoded.edge_reps.rows(),
            static_cast<int>(sample.path.size()));
  for (size_t i = 0; i < encoded.tpr.value().size(); ++i) {
    EXPECT_TRUE(std::isfinite(encoded.tpr.value()[i]));
  }
  // Trainable end to end through the WSC losses.
  auto wsc = TinyWsc();
  wsc.encoder = cfg;
  WscModel model(features(), wsc);
  std::vector<int> idx(12);
  std::iota(idx.begin(), idx.end(), 0);
  EXPECT_TRUE(model.TrainEpoch(idx).ok());
}

TEST_F(CoreTest, AggregationVariants) {
  const auto& sample = data().unlabeled.front();
  auto mean_cfg = TinyEncoder();
  auto max_cfg = TinyEncoder();
  max_cfg.aggregation = Aggregation::kMax;
  auto last_cfg = TinyEncoder();
  last_cfg.aggregation = Aggregation::kLast;

  TemporalPathEncoder mean_enc(features(), mean_cfg);
  TemporalPathEncoder max_enc(features(), max_cfg);
  TemporalPathEncoder last_enc(features(), last_cfg);
  // Same seed -> same LSTM; aggregation alone changes the TPR.
  const auto mean_rep = mean_enc.EncodeValue(sample.path, sample.depart_time_s);
  const auto max_rep = max_enc.EncodeValue(sample.path, sample.depart_time_s);
  const auto last_rep = last_enc.EncodeValue(sample.path, sample.depart_time_s);
  EXPECT_NE(mean_rep, max_rep);
  EXPECT_NE(mean_rep, last_rep);
  // Max aggregation dominates the mean elementwise.
  for (size_t i = 0; i < mean_rep.size(); ++i) {
    EXPECT_GE(max_rep[i], mean_rep[i] - 1e-5f);
  }
  // Last aggregation equals the final edge representation.
  const auto encoded = last_enc.Encode(sample.path, sample.depart_time_s);
  const int last_row = encoded.edge_reps.rows() - 1;
  for (int j = 0; j < encoded.edge_reps.cols(); ++j) {
    EXPECT_FLOAT_EQ(last_rep[j], encoded.edge_reps.value().at(last_row, j));
  }
}

// ---------------------------------------------------------------------------
// WSC losses
// ---------------------------------------------------------------------------

class WscLossTest : public CoreTest {
 protected:
  // Builds a batch of 4 items: 0 and 1 are positives (same path + label),
  // 2 shares the path with a different label, 3 is a different path.
  std::vector<BatchItem> MakeBatch(TemporalPathEncoder& encoder) {
    const auto& p0 = data().unlabeled[0].path;
    const graph::Path* other = &data().unlabeled[1].path;
    for (const auto& s : data().unlabeled) {
      if (s.path != p0) {
        other = &s.path;
        break;
      }
    }
    std::vector<BatchItem> batch(4);
    batch[0] = {&p0, 8 * 3600, 0, encoder.Encode(p0, 8 * 3600)};
    batch[1] = {&p0, 8 * 3600 + 1800, 0, encoder.Encode(p0, 8 * 3600 + 1800)};
    batch[2] = {&p0, 12 * 3600, 2, encoder.Encode(p0, 12 * 3600)};
    batch[3] = {other, 8 * 3600, 0, encoder.Encode(*other, 8 * 3600)};
    return batch;
  }
};

TEST_F(WscLossTest, PositivePairRules) {
  graph::Path a = {1, 2, 3};
  graph::Path b = {1, 2, 3};
  graph::Path c = {4, 5};
  BatchItem x{&a, 0, 0, {}};
  BatchItem same_path_same_label{&b, 100, 0, {}};
  BatchItem same_path_other_label{&b, 0, 1, {}};
  BatchItem other_path{&c, 0, 0, {}};
  EXPECT_TRUE(IsPositivePair(x, same_path_same_label));
  EXPECT_FALSE(IsPositivePair(x, same_path_other_label));
  EXPECT_FALSE(IsPositivePair(x, other_path));
}

TEST_F(WscLossTest, GlobalLossFiniteAndDifferentiable) {
  TemporalPathEncoder encoder(features(), TinyEncoder());
  auto batch = MakeBatch(encoder);
  WscLossConfig cfg;
  nn::Var loss = GlobalWscLoss(batch, cfg);
  ASSERT_TRUE(loss.defined());
  EXPECT_TRUE(std::isfinite(loss.scalar()));
  loss.Backward();
  // Some encoder parameter must receive gradient.
  bool any_grad = false;
  for (const auto& p : encoder.Parameters()) {
    if (!p.grad().empty() && p.grad().Norm() > 0) any_grad = true;
  }
  EXPECT_TRUE(any_grad);
}

TEST_F(WscLossTest, GlobalLossUndefinedWithoutPositives) {
  TemporalPathEncoder encoder(features(), TinyEncoder());
  auto batch = MakeBatch(encoder);
  batch.erase(batch.begin() + 1);   // drop the positive partner
  batch.erase(batch.begin() + 1);   // drop same-path-other-label
  batch.erase(batch.begin() + 1);   // only one item left
  WscLossConfig cfg;
  EXPECT_FALSE(GlobalWscLoss(batch, cfg).defined());
}

TEST_F(WscLossTest, LocalLossFinite) {
  TemporalPathEncoder encoder(features(), TinyEncoder());
  auto batch = MakeBatch(encoder);
  WscLossConfig cfg;
  Rng rng(5);
  nn::Var loss = LocalWscLoss(batch, cfg, rng);
  ASSERT_TRUE(loss.defined());
  EXPECT_TRUE(std::isfinite(loss.scalar()));
}

TEST_F(WscLossTest, GlobalLossPrefersAlignedPositives) {
  // Hand-crafted representations: if the query is closer to its positive
  // than to negatives, the loss must be lower than in the flipped case.
  auto make_item = [](const graph::Path* p, int label,
                      std::vector<float> rep) {
    BatchItem item;
    item.path = p;
    item.weak_label = label;
    item.encoded.tpr = nn::Var::Leaf(nn::Tensor::RowVector(rep));
    item.encoded.tpr_proj = item.encoded.tpr;
    return item;
  };
  static const graph::Path pa = {1, 2};
  static const graph::Path pb = {3, 4};
  WscLossConfig cfg;

  std::vector<BatchItem> aligned = {
      make_item(&pa, 0, {1, 0}), make_item(&pa, 0, {0.9f, 0.1f}),
      make_item(&pb, 1, {-1, 0})};
  std::vector<BatchItem> misaligned = {
      make_item(&pa, 0, {1, 0}), make_item(&pa, 0, {-1, 0}),
      make_item(&pb, 1, {0.9f, 0.1f})};
  EXPECT_LT(GlobalWscLoss(aligned, cfg).scalar(),
            GlobalWscLoss(misaligned, cfg).scalar());
}

// ---------------------------------------------------------------------------
// Trainer, curriculum, pipeline
// ---------------------------------------------------------------------------

TEST_F(CoreTest, SampleDepartureWithLabelMatches) {
  Rng rng(6);
  for (int label : {0, 1, 2}) {
    const int64_t t = SampleDepartureWithLabel(
        synth::WeakLabelScheme::kPeakOffPeak, label, *data().traffic, 0, rng);
    EXPECT_EQ(synth::PopWeakLabel(t), label);
  }
}

TEST_F(CoreTest, TrainEpochRunsAndReportsLoss) {
  WscModel model(features(), TinyWsc());
  std::vector<int> idx(std::min<size_t>(24, data().unlabeled.size()));
  std::iota(idx.begin(), idx.end(), 0);
  auto loss = model.TrainEpoch(idx);
  ASSERT_TRUE(loss.ok()) << loss.status().ToString();
  EXPECT_TRUE(std::isfinite(*loss));
}

TEST_F(CoreTest, TrainEpochRejectsEmptyAndDisabledLosses) {
  WscModel model(features(), TinyWsc());
  EXPECT_FALSE(model.TrainEpoch({}).ok());
  auto cfg = TinyWsc();
  cfg.use_global = false;
  cfg.use_local = false;
  WscModel disabled(features(), cfg);
  EXPECT_FALSE(disabled.TrainEpoch({0, 1}).ok());
}

TEST_F(CoreTest, MetaSetsSortedByLength) {
  std::vector<int> idx(data().unlabeled.size());
  std::iota(idx.begin(), idx.end(), 0);
  auto meta = SplitMetaSets(data(), idx, 3);
  ASSERT_EQ(meta.size(), 3u);
  // Max length of set i <= min length of set i+1.
  for (size_t i = 0; i + 1 < meta.size(); ++i) {
    double max_i = 0, min_next = 1e18;
    for (int s : meta[i]) {
      max_i = std::max(max_i,
                       data().network->PathLength(data().unlabeled[s].path));
    }
    for (int s : meta[i + 1]) {
      min_next = std::min(
          min_next, data().network->PathLength(data().unlabeled[s].path));
    }
    EXPECT_LE(max_i, min_next + 1e-9);
  }
}

TEST_F(CoreTest, MetaSetsPartitionInput) {
  std::vector<int> idx(data().unlabeled.size());
  std::iota(idx.begin(), idx.end(), 0);
  auto meta = SplitMetaSets(data(), idx, 4);
  std::set<int> seen;
  for (const auto& m : meta) {
    for (int s : m) EXPECT_TRUE(seen.insert(s).second);
  }
  EXPECT_EQ(seen.size(), idx.size());
}

TEST_F(CoreTest, BuildStagesOrdersEasyToHard) {
  std::vector<ScoredSample> scored;
  for (int i = 0; i < 12; ++i) scored.push_back({i, static_cast<double>(i)});
  Rng rng(7);
  auto stages = BuildStages(scored, 3, rng);
  ASSERT_EQ(stages.size(), 3u);
  // Highest scores (easiest) land in stage 0.
  for (int s : stages[0]) EXPECT_GE(s, 8);
  for (int s : stages[2]) EXPECT_LE(s, 3);
}

TEST_F(CoreTest, HeuristicCurriculumShortestFirst) {
  std::vector<int> idx(data().unlabeled.size());
  std::iota(idx.begin(), idx.end(), 0);
  auto stages = BuildCurriculum(features(), TinyWsc(),
                                {CurriculumStrategy::kHeuristic, 3, 1}, idx);
  ASSERT_TRUE(stages.ok());
  double mean_first = 0, mean_last = 0;
  for (int s : stages->front()) mean_first += data().unlabeled[s].path.size();
  for (int s : stages->back()) mean_last += data().unlabeled[s].path.size();
  mean_first /= stages->front().size();
  mean_last /= stages->back().size();
  EXPECT_LT(mean_first, mean_last);
}

TEST_F(CoreTest, LearnedDifficultyScoresCoverAllSamples) {
  std::vector<int> idx(std::min<size_t>(30, data().unlabeled.size()));
  std::iota(idx.begin(), idx.end(), 0);
  CurriculumConfig cfg;
  cfg.num_meta_sets = 2;
  cfg.expert_epochs = 1;
  auto scored = EvaluateDifficulty(features(), TinyWsc(), cfg, idx);
  ASSERT_TRUE(scored.ok()) << scored.status().ToString();
  EXPECT_EQ(scored->size(), idx.size());
  for (const auto& s : *scored) {
    // Sum of N-1 = 1 cosine similarity, bounded by [-1, 1].
    EXPECT_GE(s.score, -1.01);
    EXPECT_LE(s.score, 1.01);
  }
}

TEST_F(CoreTest, PipelineTrainsEndToEnd) {
  WsccalConfig cfg;
  cfg.wsc = TinyWsc();
  cfg.curriculum.num_meta_sets = 2;
  cfg.curriculum.expert_epochs = 1;
  cfg.stage_epochs = 1;
  cfg.final_epochs = 1;
  auto pipeline = WsccalPipeline::Train(features(), cfg);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  const auto& sample = data().unlabeled.front();
  const auto rep = (*pipeline)->Encode(sample);
  EXPECT_EQ(rep.size(), 16u);
  for (float v : rep) EXPECT_TRUE(std::isfinite(v));
}

TEST_F(CoreTest, PipelineRejectsNullFeatures) {
  EXPECT_FALSE(WsccalPipeline::Train(nullptr, WsccalConfig{}).ok());
}

// Property sweep over weak-label schemes: training runs and the model's
// WeakLabelOf stays within the scheme's range.
class WeakLabelSchemeTest
    : public CoreTest,
      public ::testing::WithParamInterface<synth::WeakLabelScheme> {};

TEST_P(WeakLabelSchemeTest, TrainerHandlesScheme) {
  auto cfg = TinyWsc();
  cfg.weak_labels = GetParam();
  WscModel model(features(), cfg);
  for (int i = 0; i < 10; ++i) {
    const int label = model.WeakLabelOf(data().unlabeled[i]);
    EXPECT_GE(label, 0);
    EXPECT_LT(label, synth::NumWeakLabels(GetParam()));
  }
  std::vector<int> idx(16);
  std::iota(idx.begin(), idx.end(), 0);
  EXPECT_TRUE(model.TrainEpoch(idx).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, WeakLabelSchemeTest,
    ::testing::Values(synth::WeakLabelScheme::kPeakOffPeak,
                      synth::WeakLabelScheme::kCongestionIndex));

// End-to-end gradient checks of the WSC losses through the full encoder.
// The batch is two positive pairs with opposite weak labels, so every
// query has at least one positive and one negative for both losses.
class WscLossGradCheck : public CoreTest {
 protected:
  std::vector<BatchItem> MakeBatch() {
    const auto& a = data().unlabeled[0];
    const auto& b = data().unlabeled[1];
    std::vector<BatchItem> batch;
    for (const auto* sample : {&a, &a, &b, &b}) {
      BatchItem item;
      item.path = &sample->path;
      item.depart_time_s = sample->depart_time_s;
      item.weak_label = sample == &a ? 0 : 1;
      batch.push_back(item);
    }
    // Positives of the same path at different departure times (Section V-A).
    batch[1].depart_time_s += 1800;
    batch[3].depart_time_s += 1800;
    return batch;
  }

  static EncoderConfig GradCheckEncoder() {
    EncoderConfig cfg;
    cfg.d_hidden = 8;
    cfg.projection_dim = 4;
    cfg.lstm_layers = 1;
    return cfg;
  }

  static tpr::testing::GradCheckOptions LossOptions() {
    tpr::testing::GradCheckOptions opts;
    opts.max_entries_per_param = 4;
    return opts;
  }
};

TEST_F(WscLossGradCheck, GlobalWscLossMatchesFiniteDifferences) {
  TemporalPathEncoder encoder(features(), GradCheckEncoder());
  WscLossConfig cfg;
  auto loss_fn = [&] {
    auto batch = MakeBatch();
    for (auto& item : batch) {
      item.encoded = encoder.Encode(*item.path, item.depart_time_s);
    }
    return GlobalWscLoss(batch, cfg);
  };
  tpr::testing::ExpectGradientsMatch(loss_fn, encoder.Parameters(),
                                     LossOptions());
}

TEST_F(WscLossGradCheck, LocalWscLossMatchesFiniteDifferences) {
  TemporalPathEncoder encoder(features(), GradCheckEncoder());
  WscLossConfig cfg;
  cfg.pos_edges_per_query = 2;
  cfg.neg_edges_per_query = 3;
  auto loss_fn = [&] {
    auto batch = MakeBatch();
    for (auto& item : batch) {
      item.encoded = encoder.Encode(*item.path, item.depart_time_s);
    }
    Rng rng(123);  // re-seeded so every evaluation samples the same edges
    return LocalWscLoss(batch, cfg, rng);
  };
  tpr::testing::ExpectGradientsMatch(loss_fn, encoder.Parameters(),
                                     LossOptions());
}

// ---------------------------------------------------------------------------
// Golden-probe read-out under distribution shift: the drift detector's
// quality signal must stay finite and honest on degenerate and
// post-shift windows.
// ---------------------------------------------------------------------------

class ProbeShiftTest : public CoreTest {
 protected:
  static void ZeroParameters(TemporalPathEncoder& encoder) {
    for (nn::Var p : encoder.Parameters()) {
      if (!p.defined()) continue;
      nn::Tensor& t = p.mutable_value();
      for (size_t i = 0; i < t.size(); ++i) t.data()[i] = 0.0f;
    }
  }
};

TEST_F(ProbeShiftTest, RidgeReadoutSurvivesDegenerateWindows) {
  TemporalPathEncoder encoder(features(), TinyEncoder());

  // Fewer queries than embedding dimensions: the ridge term keeps the
  // normal equations solvable where plain least squares is singular.
  ProbeSet tiny = BuildProbeSet(data(), 2, 5);
  ASSERT_EQ(tiny.queries.size(), 2u);
  auto tiny_mae = ProbeTravelTimeMae(encoder, tiny);
  ASSERT_TRUE(tiny_mae.ok()) << tiny_mae.status().ToString();
  EXPECT_TRUE(std::isfinite(*tiny_mae));

  // Collapsed embeddings (zeroed encoder) against constant labels: the
  // read-out degenerates to a bias-only fit, which nails a constant
  // label up to ridge shrinkage.
  TemporalPathEncoder collapsed(features(), TinyEncoder());
  ZeroParameters(collapsed);
  ProbeSet constant = BuildProbeSet(data(), 16, 5);
  for (auto& q : constant.queries) q.travel_time_s = 600.0;
  auto const_mae = ProbeTravelTimeMae(collapsed, constant);
  ASSERT_TRUE(const_mae.ok()) << const_mae.status().ToString();
  EXPECT_LT(*const_mae, 600.0 * 0.01);

  // Collapsed embeddings against VARYING labels: a constant predictor
  // cannot fit them, and the honest answer is a large finite MAE, not a
  // solver failure.
  ProbeSet varied = BuildProbeSet(data(), 16, 5);
  auto collapsed_mae = ProbeTravelTimeMae(collapsed, varied);
  ASSERT_TRUE(collapsed_mae.ok()) << collapsed_mae.status().ToString();
  TemporalPathEncoder healthy(features(), TinyEncoder());
  auto healthy_mae = ProbeTravelTimeMae(healthy, varied);
  ASSERT_TRUE(healthy_mae.ok());
  EXPECT_GT(*collapsed_mae, *healthy_mae);
}

TEST_F(ProbeShiftTest, PostShiftLabelsRaiseTheFrozenEncoderMae) {
  // Relabel the probe paths with ground truth from a closed-road world:
  // a handful of paths get dramatically slower while the rest keep their
  // old labels, exactly the heteroscedastic residue a frozen encoder's
  // read-out cannot absorb.
  synth::RegimeShiftConfig cfg;
  cfg.kind = synth::RegimeKind::kClosure;
  cfg.seed = 21;
  cfg.edge_fraction = 0.08;
  const synth::RegimeShift shift =
      synth::MakeRegimeShift(*data().network, cfg);
  synth::TrafficModel shifted(data().network.get(), data().traffic->config(),
                              std::make_shared<const synth::RegimeShift>(shift));

  TemporalPathEncoder encoder(features(), TinyEncoder());
  ProbeSet base = BuildProbeSet(data(), 48, 5);
  ProbeSet post = base;
  int slower = 0;
  for (size_t i = 0; i < post.queries.size(); ++i) {
    auto& q = post.queries[i];
    q.travel_time_s = shifted.PathTravelTime(
        q.path, static_cast<double>(q.depart_time_s));
    if (q.travel_time_s > 1.5 * base.queries[i].travel_time_s) ++slower;
  }
  ASSERT_GT(slower, 0) << "the closure must hit some probe paths";

  auto base_mae = ProbeTravelTimeMae(encoder, base);
  auto post_mae = ProbeTravelTimeMae(encoder, post);
  ASSERT_TRUE(base_mae.ok()) << base_mae.status().ToString();
  ASSERT_TRUE(post_mae.ok()) << post_mae.status().ToString();
  EXPECT_TRUE(std::isfinite(*post_mae));
  EXPECT_GT(*post_mae, *base_mae)
      << "the shifted world must read as a quality regression";
}

TEST_F(ProbeShiftTest, ProbeMaeIsBitwiseIdenticalAtOneAndFourThreads) {
  TemporalPathEncoder encoder(features(), TinyEncoder());
  const ProbeSet probe = BuildProbeSet(data(), 48, 5);
  auto bits = [&] {
    auto mae = ProbeTravelTimeMae(encoder, probe);
    EXPECT_TRUE(mae.ok());
    uint64_t b = 0;
    const double v = mae.ok() ? *mae : -1.0;
    std::memcpy(&b, &v, sizeof b);
    return b;
  };
  const int before = par::DefaultPool().num_threads();
  par::SetDefaultThreads(1);
  const uint64_t solo = bits();
  par::SetDefaultThreads(4);
  const uint64_t quad = bits();
  par::SetDefaultThreads(before);
  EXPECT_EQ(solo, quad)
      << "the detector's input signal must not depend on thread count";
}

}  // namespace
}  // namespace tpr::core
