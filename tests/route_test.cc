#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/features.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "route/router.h"
#include "route/shard.h"
#include "serve/service.h"
#include "synth/fleet.h"
#include "synth/presets.h"
#include "util/rng.h"

namespace tpr::route {
namespace {

using core::FeatureSpace;
using core::TemporalPathEncoder;

std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "tpr_route_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Fixture: one tiny city's feature space, shared by every shard. Router
// behaviour never depends on WHAT a shard serves, so all shards serving
// the same tiny world keeps the suite fast.
// ---------------------------------------------------------------------------

class RouteTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto preset = synth::AalborgPreset();
    synth::ScaleDataset(preset, 0.1);
    auto ds = synth::BuildPresetDataset(preset);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    data_ = new std::shared_ptr<synth::CityDataset>(
        std::make_shared<synth::CityDataset>(std::move(*ds)));
    core::FeatureConfig fc;
    fc.temporal_graph.slots_per_day = 48;
    fc.node2vec.walks_per_node = 2;
    fc.node2vec.epochs = 1;
    auto fs = core::BuildFeatureSpace(*data_, fc);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    features_ = new std::shared_ptr<const FeatureSpace>(
        std::make_shared<const FeatureSpace>(std::move(*fs)));
  }

  static void TearDownTestSuite() {
    delete features_;
    features_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  void SetUp() override {
    fault::ClearPlan();
    obs::SetMetricsEnabled(true);
    obs::ResetAllMetrics();
  }
  void TearDown() override {
    fault::ClearPlan();
    obs::SetMetricsEnabled(false);
  }

  static core::EncoderConfig TinyEncoder() {
    core::EncoderConfig cfg;
    cfg.d_hidden = 16;
    cfg.projection_dim = 8;
    return cfg;
  }

  static serve::ServiceConfig TinyService(const std::string& shard) {
    serve::ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.queue_capacity = 64;
    cfg.block_when_full = true;
    cfg.max_retries = 1;
    cfg.backoff_base_ms = 0.01;
    cfg.backoff_max_ms = 0.05;
    cfg.cache_capacity = 64;
    cfg.shard = shard;
    cfg.metrics_prefix = shard.empty() ? "" : shard + ".";
    return cfg;
  }

  static void Install(const std::string& spec) {
    auto plan = fault::FaultPlan::Parse(spec);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    fault::InstallPlan(*std::move(plan));
  }

  serve::PathQuery Query(int sample, uint64_t id) {
    const auto& s =
        (*data_)->unlabeled[static_cast<size_t>(sample) %
                            (*data_)->unlabeled.size()];
    serve::PathQuery q;
    q.path = s.path;
    q.depart_time_s = s.depart_time_s;
    q.id = id;
    return q;
  }

  std::shared_ptr<const FeatureSpace> features() { return *features_; }

  /// A started service serving generation 1, scoped to `shard`.
  std::unique_ptr<serve::InferenceService> MakeService(
      const std::string& shard) {
    auto svc = std::make_unique<serve::InferenceService>(
        features(), TinyEncoder(), TinyService(shard));
    svc->InstallModel(
        std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
    EXPECT_TRUE(svc->Start().ok());
    return svc;
  }

  static std::shared_ptr<synth::CityDataset>* data_;
  static std::shared_ptr<const FeatureSpace>* features_;
};

std::shared_ptr<synth::CityDataset>* RouteTest::data_ = nullptr;
std::shared_ptr<const FeatureSpace>* RouteTest::features_ = nullptr;

// ---------------------------------------------------------------------------
// Pure-hash routing.
// ---------------------------------------------------------------------------

TEST_F(RouteTest, RoutingIsCanonicalOverTheCitySet) {
  auto s0 = MakeService("");
  // Endpoints registered in two different orders must induce the same
  // city -> shard-index mapping (canonical = sorted by city id).
  const std::vector<int> cities = {7, 2, 11, 5};
  std::vector<ShardEndpoint> fwd, rev;
  for (int c : cities) fwd.push_back({c, "", s0.get()});
  for (auto it = cities.rbegin(); it != cities.rend(); ++it) {
    rev.push_back({*it, "", s0.get()});
  }
  Router a(fwd, RouterConfig{});
  Router b(rev, RouterConfig{});
  std::vector<int> sorted = cities;
  std::sort(sorted.begin(), sorted.end());
  for (int c : cities) {
    ASSERT_EQ(a.ShardForCity(c), b.ShardForCity(c));
    // Shard index is the city's rank in the sorted set.
    const auto rank = std::find(sorted.begin(), sorted.end(), c);
    EXPECT_EQ(a.ShardForCity(c),
              static_cast<int>(rank - sorted.begin()));
    EXPECT_EQ(a.Health(a.ShardForCity(c)).name,
              "shard" + std::to_string(c));
  }
  EXPECT_EQ(a.ShardForCity(99), -1);
  EXPECT_EQ(a.ShardForCity(-3), -1);
}

TEST_F(RouteTest, RoutingIdenticalAcrossRouterThreads) {
  auto svc = MakeService("");
  std::vector<ShardEndpoint> eps;
  for (int c = 0; c < 8; ++c) eps.push_back({c * 3, "", svc.get()});
  Router router(eps, RouterConfig{});

  std::vector<int> single(64);
  for (int c = 0; c < 64; ++c) single[c] = router.ShardForCity(c);

  std::vector<std::vector<int>> per_thread(4, std::vector<int>(64, -2));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int c = 0; c < 64; ++c) {
        per_thread[static_cast<size_t>(t)][static_cast<size_t>(c)] =
            router.ShardForCity(c);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& got : per_thread) EXPECT_EQ(got, single);
}

// ---------------------------------------------------------------------------
// Health machine: quarantine, deterministic re-probe, recovery.
// ---------------------------------------------------------------------------

TEST_F(RouteTest, QuarantineShedsAndReprobesDeterministically) {
  RouterConfig rc;
  rc.quarantine_after = 3;
  rc.backoff_initial = 4;
  rc.backoff_max = 16;

  // Two identical runs must produce the identical error trace and the
  // identical probe schedule.
  std::vector<std::string> traces[2];
  std::vector<uint64_t> probe_at[2];
  for (int run = 0; run < 2; ++run) {
    fault::ClearPlan();
    Install("route-dispatch@shard0:p=1");
    auto svc = MakeService("shard0");
    Router router({{0, "shard0", svc.get()}}, rc);
    for (uint64_t i = 0; i < 60; ++i) {
      RouteResult r = router.Dispatch({0, Query(0, 100 + i), 0});
      traces[run].push_back(RouteErrorName(r.error));
      probe_at[run].push_back(router.Health(0).next_probe_at);
    }
    svc->Shutdown();
  }
  EXPECT_EQ(traces[0], traces[1]);
  EXPECT_EQ(probe_at[0], probe_at[1]);

  // Shape of one run: 3 dispatch faults, then quarantine sheds with
  // periodic failed probes (faults), never a success while p=1.
  int faults = 0, sheds = 0;
  for (const auto& e : traces[0]) {
    if (e == "dispatch-fault") ++faults;
    if (e == "shard-quarantined") ++sheds;
  }
  EXPECT_EQ(faults + sheds, 60);
  EXPECT_GE(faults, 4);  // 3 to quarantine + at least one failed probe
  EXPECT_GT(sheds, 40);  // backoff keeps most requests shed
}

TEST_F(RouteTest, ShardRecoversWhenProbeSucceeds) {
  RouterConfig rc;
  rc.quarantine_after = 2;
  rc.backoff_initial = 2;
  rc.backoff_max = 4;
  Install("route-dispatch@shard0:p=1");
  auto svc = MakeService("shard0");
  Router router({{0, "shard0", svc.get()}}, rc);

  // Drive into quarantine.
  for (uint64_t i = 0; i < 2; ++i) {
    EXPECT_EQ(router.Dispatch({0, Query(0, 200 + i), 0}).error,
              RouteError::kDispatchFault);
  }
  ASSERT_EQ(router.Health(0).state, ShardState::kQuarantined);

  // Heal the world; the next admitted probe recovers the shard and
  // subsequent requests flow normally.
  fault::ClearPlan();
  bool recovered = false;
  for (uint64_t i = 0; i < 16 && !recovered; ++i) {
    RouteResult r = router.Dispatch({0, Query(0, 300 + i), 0});
    if (r.error == RouteError::kNone) {
      EXPECT_TRUE(r.status.ok()) << r.status.ToString();
      recovered = true;
    } else {
      EXPECT_EQ(r.error, RouteError::kShardQuarantined);
    }
  }
  EXPECT_TRUE(recovered);
  EXPECT_EQ(router.Health(0).state, ShardState::kHealthy);
  EXPECT_EQ(router.Dispatch({0, Query(1, 400), 0}).error, RouteError::kNone);
  svc->Shutdown();
}

// ---------------------------------------------------------------------------
// Partial availability: bombing one shard never perturbs the others.
// ---------------------------------------------------------------------------

TEST_F(RouteTest, HealthyShardsAreBitwiseUnaffectedByASickShard) {
  // Per-city trace of everything the determinism contract covers:
  // route error, serve status, rung, generation, embedding bytes.
  auto run = [&](bool bombed) {
    std::map<int, std::string> traces;
    fault::ClearPlan();
    if (bombed) {
      Install(
          "route-dispatch@shard0:p=0.6,seed=11;"
          "encoder-forward@shard0:p=0.8,seed=12");
    }
    std::vector<std::unique_ptr<serve::InferenceService>> svcs;
    std::vector<ShardEndpoint> eps;
    for (int c = 0; c < 3; ++c) {
      svcs.push_back(MakeService("shard" + std::to_string(c)));
      eps.push_back({c, "shard" + std::to_string(c), svcs.back().get()});
    }
    Router router(eps, RouterConfig{});
    for (int c = 0; c < 3; ++c) {
      std::string& t = traces[c];
      for (uint64_t i = 0; i < 24; ++i) {
        const uint64_t id = (static_cast<uint64_t>(c + 1) << 32) | i;
        RouteResult r =
            router.Dispatch({c, Query(static_cast<int>(i), id), 0});
        t += RouteErrorName(r.error);
        t += "|" + std::to_string(static_cast<int>(r.status.code()));
        if (r.status.ok()) {
          t += "|" + std::string(serve::RungName(r.serve.rung)) + "|g" +
               std::to_string(r.serve.generation);
          for (float v : r.serve.embedding) {
            uint32_t bits;
            static_assert(sizeof(bits) == sizeof(v));
            __builtin_memcpy(&bits, &v, sizeof(bits));
            t += "," + std::to_string(bits);
          }
        }
        t += "\n";
      }
    }
    for (auto& svc : svcs) svc->Shutdown();
    return traces;
  };

  auto clean = run(false);
  auto bombed = run(true);
  // The sick shard visibly degraded...
  EXPECT_NE(clean[0], bombed[0]);
  // ...while the healthy shards' full request traces are byte-identical.
  EXPECT_EQ(clean[1], bombed[1]);
  EXPECT_EQ(clean[2], bombed[2]);
}

TEST_F(RouteTest, CrossCityLegsDegradeIndependently) {
  Install("route-dispatch@shard0:p=1");
  auto s0 = MakeService("shard0");
  auto s1 = MakeService("shard1");
  Router router({{0, "shard0", s0.get()}, {1, "shard1", s1.get()}},
                RouterConfig{});

  std::vector<CityRequest> legs;
  legs.push_back({0, Query(0, 1), 0});
  legs.push_back({1, Query(1, 2), 0});
  legs.push_back({42, Query(2, 3), 0});  // unmapped city
  auto results = router.DispatchMulti(legs);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].error, RouteError::kDispatchFault);
  EXPECT_EQ(results[0].shard, "shard0");
  EXPECT_EQ(results[1].error, RouteError::kNone);
  EXPECT_TRUE(results[1].status.ok()) << results[1].status.ToString();
  EXPECT_EQ(results[1].serve.embedding.size(), 16u);
  EXPECT_EQ(results[2].error, RouteError::kNoShardForCity);
  EXPECT_EQ(results[2].shard_index, -1);
  s0->Shutdown();
  s1->Shutdown();
}

// ---------------------------------------------------------------------------
// CityShard bundle: namespacing + per-shard isolation.
// ---------------------------------------------------------------------------

TEST_F(RouteTest, CityShardBundlesNamespacedStacks) {
  const std::string root = ScratchDir("bundle");
  core::ProbeSet probe;  // empty probe: no traffic-gate scoring needed

  CityShardConfig c0;
  c0.city_id = 0;
  c0.root = root;
  c0.service = TinyService("");
  CityShardConfig c1 = c0;
  c1.city_id = 1;

  CityShard shard0(features(), TinyEncoder(), probe, c0);
  CityShard shard1(features(), TinyEncoder(), probe, c1);

  EXPECT_EQ(shard0.name(), "shard0");
  EXPECT_EQ(shard1.name(), "shard1");
  EXPECT_TRUE(std::filesystem::is_directory(root + "/shard-0/models"));
  EXPECT_TRUE(std::filesystem::is_directory(root + "/shard-1/models"));
  ASSERT_TRUE(shard0.Init().ok());
  ASSERT_TRUE(shard1.Init().ok());

  for (CityShard* s : {&shard0, &shard1}) {
    s->service().InstallModel(
        std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
    ASSERT_TRUE(s->service().Start().ok());
  }

  // Traffic on shard 0 only: its metric namespace moves, shard 1's
  // stays untouched — two services in one process no longer fold into
  // the same counters.
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(
        shard0.service().SubmitAndWait(Query(static_cast<int>(i), 500 + i))
            .status.ok());
  }
  EXPECT_EQ(obs::GetCounter("shard0.serve.requests").value(), 4u);
  EXPECT_EQ(obs::GetCounter("shard1.serve.requests").value(), 0u);

  // Health snapshots are per shard.
  serve::ServiceHealth h0 = shard0.service().Health();
  EXPECT_TRUE(h0.started);
  EXPECT_EQ(h0.generation, 1u);
  EXPECT_EQ(h0.breaker_state, 0);
  shard0.service().Shutdown();
  shard1.service().Shutdown();
  EXPECT_FALSE(shard0.service().Health().started);
}

// ---------------------------------------------------------------------------
// Fleet-driven routing sanity: one shard per fleet city.
// ---------------------------------------------------------------------------

TEST_F(RouteTest, FleetCitiesAllRoute) {
  synth::FleetConfig fc;
  fc.num_cities = 5;
  fc.seed = 77;
  synth::CityFleet fleet(fc);
  auto svc = MakeService("");
  std::vector<ShardEndpoint> eps;
  for (const auto& city : fleet.cities()) {
    eps.push_back({city.city_id, "", svc.get()});
  }
  Router router(eps, RouterConfig{});
  for (const auto& city : fleet.cities()) {
    EXPECT_GE(router.ShardForCity(city.city_id), 0);
  }
  EXPECT_EQ(router.num_shards(), 5);
  svc->Shutdown();
}

}  // namespace
}  // namespace tpr::route
