#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/features.h"
#include "core/probe.h"
#include "drift/adaptation.h"
#include "drift/detector.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "par/thread_pool.h"
#include "rollout/controller.h"
#include "rollout/manifest.h"
#include "serve/service.h"
#include "synth/dataset.h"
#include "synth/presets.h"
#include "synth/regime.h"

namespace tpr::drift {
namespace {

using core::FeatureSpace;
using serve::InferenceService;
using serve::ServiceConfig;

std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "tpr_drift_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

uint64_t Bits(double v) {
  uint64_t b = 0;
  static_assert(sizeof b == sizeof v);
  __builtin_memcpy(&b, &v, sizeof b);
  return b;
}

// ---------------------------------------------------------------------------
// Detector unit tests: the windowed Page–Hinkley statistic in log space.
// ---------------------------------------------------------------------------

DriftDetectorConfig TinyDetector() {
  DriftDetectorConfig cfg;
  cfg.window = 4;
  cfg.delta = 0.01;
  cfg.lambda = 0.25;
  cfg.min_windows = 3;
  cfg.cooldown_windows = 1;
  return cfg;
}

class DetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::ClearPlan();
    obs::SetMetricsEnabled(true);
    obs::ResetAllMetrics();
  }
  void TearDown() override {
    fault::ClearPlan();
    obs::SetMetricsEnabled(false);
  }
};

TEST_F(DetectorTest, StationarySignalNeverAlarms) {
  DriftDetector det(TinyDetector());
  for (int i = 0; i < 40; ++i) {
    EXPECT_FALSE(det.Observe(10.0)) << "observation " << i;
  }
  EXPECT_FALSE(det.alarmed());
  EXPECT_EQ(det.windows(), 10u);
  EXPECT_EQ(det.detections(), 0u);
  // Constant input: the cumulative deviation only loses delta per window,
  // so the statistic stays pinned at zero.
  EXPECT_DOUBLE_EQ(det.statistic(), 0.0);
  EXPECT_NEAR(det.baseline_log_mean(), std::log(10.0), 1e-12);
  EXPECT_EQ(obs::GetCounter("drift.windows").value(), 10u);
  EXPECT_DOUBLE_EQ(obs::GetGauge("drift.window_mae").value(), 10.0);
}

TEST_F(DetectorTest, StepChangeAlarmsAtADeterministicWindow) {
  DriftDetector det(TinyDetector());
  // Five quiet windows at MAE 10, then the world shifts to MAE 15 — a
  // 50% relative regression. ln(15/10) ≈ 0.405 per window dwarfs the
  // 0.01 drift allowance, so the very first post-shift window crosses
  // lambda = 0.25.
  int alarm_obs = -1;
  int obs_no = 0;
  for (int i = 0; i < 5 * 4; ++i, ++obs_no) ASSERT_FALSE(det.Observe(10.0));
  for (int i = 0; i < 2 * 4 && alarm_obs < 0; ++i, ++obs_no) {
    if (det.Observe(15.0)) alarm_obs = obs_no;
  }
  EXPECT_EQ(alarm_obs, 23) << "alarm must fire exactly when window 6 closes";
  EXPECT_TRUE(det.alarmed());
  EXPECT_EQ(det.detections(), 1u);
  EXPECT_GT(det.statistic(), det.config().lambda);
  EXPECT_EQ(obs::GetCounter("drift.detections").value(), 1u);

  // Sticky: further windows are not scored until Reset().
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(det.Observe(30.0));
  EXPECT_EQ(det.detections(), 1u);

  // Reset rebuilds the baseline on the new world; the first window after
  // reset is dropped (cooldown), and a now-stationary signal stays quiet.
  det.Reset();
  EXPECT_FALSE(det.alarmed());
  for (int i = 0; i < 6 * 4; ++i) {
    EXPECT_FALSE(det.Observe(15.0)) << "observation " << i;
  }
  EXPECT_EQ(det.detections(), 1u);
}

TEST_F(DetectorTest, NonFiniteObservationsAreClampedNotFatal) {
  DriftDetector det(TinyDetector());
  const double bad[] = {std::nan(""), -3.0, 0.0,
                        std::numeric_limits<double>::infinity()};
  for (double v : bad) det.Observe(v);  // one full window of garbage
  EXPECT_EQ(det.windows(), 1u);
  EXPECT_TRUE(std::isfinite(det.statistic()));
  EXPECT_TRUE(std::isfinite(det.baseline_log_mean()));
  for (int i = 0; i < 40; ++i) det.Observe(10.0);
  EXPECT_TRUE(std::isfinite(det.statistic()));
}

TEST_F(DetectorTest, StatisticIsBitwiseDeterministicAcrossRunsAndThreadCounts) {
  // The statistic is pure sequential arithmetic over the observation
  // stream — thread count never enters it. Pin that: the same stream
  // yields bit-identical statistics under 1-thread and 4-thread pools.
  auto run = [] {
    DriftDetector det(TinyDetector());
    std::vector<uint64_t> stats;
    for (int i = 0; i < 64; ++i) {
      det.Observe(10.0 + 0.25 * (i % 7) + (i >= 40 ? 4.0 : 0.0));
      stats.push_back(Bits(det.statistic()));
    }
    stats.push_back(det.detections());
    return stats;
  };
  const int before = par::DefaultPool().num_threads();
  par::SetDefaultThreads(1);
  const auto solo = run();
  par::SetDefaultThreads(4);
  const auto quad = run();
  par::SetDefaultThreads(before);
  EXPECT_EQ(solo, run());
  EXPECT_EQ(solo, quad);
}

TEST_F(DetectorTest, FaultSiteFlipsVerdictsBothWays) {
  // p=1 flips EVERY verdict: a stationary signal false-positives on the
  // first scored window...
  auto plan = fault::FaultPlan::Parse("drift-detect:p=1");
  ASSERT_TRUE(plan.ok());
  fault::InstallPlan(*std::move(plan));
  DriftDetector fp(TinyDetector());
  int alarm_window = -1;
  for (int i = 0; i < 5 * 4 && alarm_window < 0; ++i) {
    if (fp.Observe(10.0)) alarm_window = static_cast<int>(fp.windows());
  }
  EXPECT_EQ(alarm_window, 1) << "injected false positive";
  EXPECT_EQ(obs::GetCounter("fault.drift-detect.injected").value(), 1u);

  // ...and an nth=6 plan suppresses the genuine window-6 alarm (false
  // negative), so detection lands one window later.
  fault::ClearPlan();
  plan = fault::FaultPlan::Parse("drift-detect:nth=6");
  ASSERT_TRUE(plan.ok());
  fault::InstallPlan(*std::move(plan));
  DriftDetector fn(TinyDetector());
  alarm_window = -1;
  for (int i = 0; i < 5 * 4; ++i) ASSERT_FALSE(fn.Observe(10.0));
  for (int i = 0; i < 3 * 4 && alarm_window < 0; ++i) {
    if (fn.Observe(15.0)) alarm_window = static_cast<int>(fn.windows());
  }
  EXPECT_EQ(alarm_window, 7)
      << "suppressed at window 6, caught at window 7";
  fault::ClearPlan();
}

TEST_F(DetectorTest, ConfigFromEnvOverlaysAndIgnoresGarbage) {
  ::setenv("TPR_DRIFT_WINDOW", "8", 1);
  ::setenv("TPR_DRIFT_DELTA", "0.02", 1);
  ::setenv("TPR_DRIFT_LAMBDA", "not-a-number", 1);
  ::setenv("TPR_DRIFT_MIN_WINDOWS", "5", 1);
  ::setenv("TPR_DRIFT_COOLDOWN", "2", 1);
  DriftDetectorConfig cfg = DriftDetectorConfigFromEnv();
  ::unsetenv("TPR_DRIFT_WINDOW");
  ::unsetenv("TPR_DRIFT_DELTA");
  ::unsetenv("TPR_DRIFT_LAMBDA");
  ::unsetenv("TPR_DRIFT_MIN_WINDOWS");
  ::unsetenv("TPR_DRIFT_COOLDOWN");
  EXPECT_EQ(cfg.window, 8);
  EXPECT_DOUBLE_EQ(cfg.delta, 0.02);
  EXPECT_DOUBLE_EQ(cfg.lambda, DriftDetectorConfig{}.lambda)
      << "malformed value must keep the default";
  EXPECT_EQ(cfg.min_windows, 5);
  EXPECT_EQ(cfg.cooldown_windows, 2);

  ::setenv("TPR_DRIFT_EPOCHS", "9", 1);
  AdaptationConfig acfg = AdaptationConfigFromEnv(AdaptationConfig{});
  ::unsetenv("TPR_DRIFT_EPOCHS");
  EXPECT_EQ(acfg.total_epochs, 9);
}

// ---------------------------------------------------------------------------
// Fixture: tiny city + features, built once for the adaptation suite.
// ---------------------------------------------------------------------------

class DriftTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto preset = synth::AalborgPreset();
    synth::ScaleDataset(preset, 0.1);
    auto ds = synth::BuildPresetDataset(preset);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    data_ = new std::shared_ptr<synth::CityDataset>(
        std::make_shared<synth::CityDataset>(std::move(*ds)));
    core::FeatureConfig fc;
    fc.temporal_graph.slots_per_day = 48;
    fc.node2vec.walks_per_node = 2;
    fc.node2vec.epochs = 1;
    auto fs = core::BuildFeatureSpace(*data_, fc);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    features_ = new std::shared_ptr<const FeatureSpace>(
        std::make_shared<const FeatureSpace>(std::move(*fs)));

    // One fresh post-shift window, shared by every test: incidents on 5%
    // of edges plus a holiday-season demand surge.
    synth::RegimeShiftConfig incident;
    incident.kind = synth::RegimeKind::kIncident;
    incident.seed = 11;
    incident.edge_fraction = 0.05;
    synth::RegimeShiftConfig seasonal;
    seasonal.kind = synth::RegimeKind::kSeasonalDemand;
    seasonal.demand_scale = 1.4;
    const synth::RegimeShift shift =
        Compose(synth::MakeRegimeShift(*(*data_)->network, incident),
                synth::MakeRegimeShift(*(*data_)->network, seasonal));
    synth::DatasetConfig fresh_cfg;
    fresh_cfg.num_unlabeled_trajectories = 40;
    fresh_cfg.departures_per_trajectory = 2;
    fresh_cfg.num_labeled_groups = 30;
    fresh_cfg.alternatives_per_group = 2;
    fresh_cfg.seed = 777;
    auto fresh = synth::GenerateShiftedDataset(**data_, shift, fresh_cfg);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    fresh_ = new std::shared_ptr<const synth::CityDataset>(
        std::make_shared<const synth::CityDataset>(std::move(*fresh)));
  }

  static void TearDownTestSuite() {
    delete fresh_;
    fresh_ = nullptr;
    delete features_;
    features_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  void SetUp() override {
    fault::ClearPlan();
    obs::SetMetricsEnabled(true);
    obs::ResetAllMetrics();
  }
  void TearDown() override {
    fault::ClearPlan();
    obs::SetMetricsEnabled(false);
  }

  static core::EncoderConfig TinyEncoder() {
    core::EncoderConfig cfg;
    cfg.d_hidden = 16;
    cfg.projection_dim = 8;
    return cfg;
  }

  static core::WscConfig TinyWsc() {
    core::WscConfig cfg;
    cfg.encoder = TinyEncoder();
    cfg.anchors_per_batch = 6;
    return cfg;
  }

  static ServiceConfig TinyService() {
    ServiceConfig cfg;
    cfg.num_workers = 2;
    cfg.queue_capacity = 128;
    cfg.block_when_full = true;
    cfg.max_retries = 2;
    cfg.backoff_base_ms = 0.01;
    cfg.backoff_max_ms = 0.05;
    cfg.cache_capacity = 256;
    cfg.time_bucket_s = 600;
    cfg.canary_permille = 300;
    cfg.canary_promote_after = 8;
    return cfg;
  }

  static AdaptationConfig TinyAdaptation(const std::string& model_dir) {
    AdaptationConfig cfg;
    cfg.model_dir = model_dir;
    cfg.finetune_dir = model_dir + "/finetune";
    cfg.wsc = TinyWsc();
    cfg.total_epochs = 2;
    cfg.epochs_per_tick = 1;
    cfg.probe_queries = 32;
    return cfg;
  }

  /// Fast-alarm detector: two-observation windows, alarm allowed from
  /// window 2 on.
  static DriftDetectorConfig FastDetector() {
    DriftDetectorConfig cfg;
    cfg.window = 2;
    cfg.delta = 0.01;
    cfg.lambda = 0.25;
    cfg.min_windows = 2;
    cfg.cooldown_windows = 1;
    return cfg;
  }

  const synth::CityDataset& data() { return **data_; }
  std::shared_ptr<const FeatureSpace> features() { return *features_; }
  std::shared_ptr<const synth::CityDataset> fresh() { return *fresh_; }

  std::shared_ptr<core::TemporalPathEncoder> MakeEncoder() {
    return std::make_shared<core::TemporalPathEncoder>(features(),
                                                       TinyEncoder());
  }

  static std::shared_ptr<synth::CityDataset>* data_;
  static std::shared_ptr<const FeatureSpace>* features_;
  static std::shared_ptr<const synth::CityDataset>* fresh_;
};

std::shared_ptr<synth::CityDataset>* DriftTest::data_ = nullptr;
std::shared_ptr<const FeatureSpace>* DriftTest::features_ = nullptr;
std::shared_ptr<const synth::CityDataset>* DriftTest::fresh_ = nullptr;

TEST_F(DriftTest, RelabelProbeSetSwapsLabelsOntoTheShiftedWorld) {
  const core::ProbeSet base = core::BuildProbeSet(data(), 32, 5);
  const core::ProbeSet shifted = RelabelProbeSet(base, *fresh()->traffic);
  ASSERT_EQ(shifted.queries.size(), base.queries.size());
  int changed = 0;
  for (size_t i = 0; i < base.queries.size(); ++i) {
    EXPECT_EQ(shifted.queries[i].path, base.queries[i].path);
    EXPECT_EQ(shifted.queries[i].depart_time_s, base.queries[i].depart_time_s);
    EXPECT_GT(shifted.queries[i].travel_time_s, 0.0);
    if (std::fabs(shifted.queries[i].travel_time_s -
                  base.queries[i].travel_time_s) > 1.0) {
      ++changed;
    }
  }
  EXPECT_GT(changed, 0) << "the regime shift must move some labels";
}

// ---------------------------------------------------------------------------
// Full loop: detect -> fine-tune -> candidate -> canary -> promote, with
// the incumbent serving untouched throughout.
// ---------------------------------------------------------------------------

TEST_F(DriftTest, DetectionFineTunesAndPromotesThroughTheRolloutGates) {
  const std::string dir = ScratchDir("loop");
  auto enc = MakeEncoder();
  ASSERT_TRUE(InferenceService::SaveModel(*enc, dir, 1).ok());

  InferenceService svc(features(), TinyEncoder(), TinyService());
  rollout::RolloutConfig rcfg;
  rcfg.model_dir = dir;
  // The plumbing is under test, not the learning curve: a generous
  // budget keeps the fine-tuned candidate inside the quality gate.
  rcfg.quality_budget = 0.50;
  rcfg.quantize_twins = false;
  rollout::RolloutController rollout(&svc, features(), TinyEncoder(),
                                     core::BuildProbeSet(data(), 48, 5), rcfg);
  ASSERT_TRUE(rollout.Init().ok());
  ASSERT_TRUE(rollout.Tick().ok());  // bootstrap gen 1
  ASSERT_EQ(svc.model_generation(), 1u);
  ASSERT_TRUE(svc.Start().ok());

  AdaptationController adapt(features(), &svc, &rollout, FastDetector(),
                             TinyAdaptation(dir));

  // Quiet serving: stationary probe MAE, no alarm, ticks are no-ops.
  for (int i = 0; i < 8; ++i) ASSERT_FALSE(adapt.ObserveProbeMae(12.0));
  auto quiet = adapt.Tick(fresh());
  ASSERT_TRUE(quiet.ok()) << quiet.status().ToString();
  EXPECT_TRUE(quiet->events.empty());
  EXPECT_EQ(adapt.state(), AdaptState::kIdle);

  // The shift lands: probe MAE jumps 2x and the detector alarms.
  bool alarmed = false;
  for (int i = 0; i < 8 && !alarmed; ++i) {
    alarmed = adapt.ObserveProbeMae(24.0);
  }
  ASSERT_TRUE(alarmed);

  // Launch tick: warm start from gen 1, curriculum over the fresh pool,
  // rollout probe refreshed onto the post-shift labels.
  auto launch = adapt.Tick(fresh());
  ASSERT_TRUE(launch.ok()) << launch.status().ToString();
  EXPECT_EQ(adapt.state(), AdaptState::kFineTuning);
  EXPECT_EQ(adapt.fine_tunes_launched(), 1u);
  EXPECT_EQ(adapt.candidate_generation(), 2u);
  auto has_event = [](const AdaptReport& r, const std::string& needle) {
    for (const std::string& e : r.events) {
      if (e.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_event(*launch, "fine-tune launched"));
  EXPECT_TRUE(has_event(*launch, "rollout probe refreshed"));

  // Two epochs at one per tick, then the candidate publishes.
  bool published = false;
  for (int i = 0; i < 4 && !published; ++i) {
    auto r = adapt.Tick(fresh());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    published = r->published;
  }
  ASSERT_TRUE(published);
  EXPECT_EQ(adapt.state(), AdaptState::kCooldown);
  EXPECT_EQ(adapt.fine_tunes_published(), 1u);
  EXPECT_FALSE(std::filesystem::exists(dir + "/finetune"))
      << "fine-tune state must be cleaned up after publish";
  // While the rollout lineage is unresolved, cooldown holds and new
  // observations are ignored.
  EXPECT_FALSE(adapt.ObserveProbeMae(24.0));

  // The rollout controller picks the candidate up and canaries it
  // against the refreshed (post-shift) probe.
  auto scan = rollout.Tick();
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_TRUE(svc.canary_status().installed);
  EXPECT_EQ(svc.canary_status().generation, 2u);
  EXPECT_GE(obs::GetCounter("rollout.probe_refreshes").value(), 1u);
  auto held = adapt.Tick(fresh());
  ASSERT_TRUE(held.ok());
  EXPECT_EQ(adapt.state(), AdaptState::kCooldown) << "canary still in flight";

  // Incumbent traffic flows clean through the whole canary.
  std::vector<std::future<serve::ServeResult>> futures;
  for (int i = 0; i < 64; ++i) {
    const auto& s = data().unlabeled[static_cast<size_t>(i) %
                                     data().unlabeled.size()];
    serve::PathQuery q;
    q.path = s.path;
    q.depart_time_s = s.depart_time_s;
    q.id = static_cast<uint64_t>(i) + 1;
    auto submitted = svc.Submit(q);
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(*submitted));
  }
  for (auto& f : futures) {
    serve::ServeResult r = f.get();
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  }
  auto fold = rollout.Tick();
  ASSERT_TRUE(fold.ok()) << fold.status().ToString();
  EXPECT_EQ(svc.model_generation(), 2u) << "adapted candidate promoted";
  const rollout::ModelRecord* rec = rollout.manifest().Find(2);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, rollout::ModelState::kLive);

  // Promotion pinned the new live generation against ckpt pruning.
  EXPECT_EQ(ckpt::CheckpointDir(dir).PinnedSeq().value_or(0), 2u);

  // Cooldown resolves and the loop re-arms with a fresh baseline.
  auto rearm = adapt.Tick(fresh());
  ASSERT_TRUE(rearm.ok());
  EXPECT_EQ(adapt.state(), AdaptState::kIdle);
  EXPECT_FALSE(adapt.detector().alarmed());
  svc.Shutdown();
}

TEST_F(DriftTest, LaunchWithoutLiveGenerationIsFailedPrecondition) {
  const std::string dir = ScratchDir("nolive");
  InferenceService svc(features(), TinyEncoder(), TinyService());
  AdaptationController adapt(features(), &svc, nullptr, FastDetector(),
                             TinyAdaptation(dir));
  EXPECT_EQ(adapt.ForceStartFineTune(fresh()).code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Bitwise determinism: a fine-tune killed at an epoch boundary and
// resumed publishes the exact same candidate bytes as an uninterrupted
// run, at 1 and at 4 threads.
// ---------------------------------------------------------------------------

class DriftResumeTest : public DriftTest {
 protected:
  /// Runs a fine-tune to completion against `model_dir` (which must hold
  /// live gen 1), publishing candidate gen 7 into `publish_dir`. When
  /// `kill_after_first_epoch`, the controller is destroyed after one
  /// epoch and a NEW controller resumes from the checkpointed state.
  void RunFineTune(const std::string& model_dir,
                   const std::string& publish_dir,
                   const std::string& finetune_dir,
                   bool kill_after_first_epoch, uint64_t* resumes_out) {
    InferenceService svc(features(), TinyEncoder(), TinyService());
    auto enc = MakeEncoder();
    svc.InstallModel(enc, 1, nullptr);

    AdaptationConfig cfg = TinyAdaptation(model_dir);
    cfg.publish_dir = publish_dir;
    cfg.finetune_dir = finetune_dir;
    cfg.total_epochs = 3;
    cfg.forced_candidate_generation = 7;

    auto drive = [&](AdaptationController& ctl, int max_ticks) {
      for (int i = 0; i < max_ticks; ++i) {
        if (ctl.state() == AdaptState::kCooldown) return;
        auto r = ctl.Tick(fresh());
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
    };

    if (kill_after_first_epoch) {
      {
        AdaptationController ctl(features(), &svc, nullptr, FastDetector(),
                                 cfg);
        ASSERT_TRUE(ctl.ForceStartFineTune(fresh()).ok());
        auto r = ctl.Tick(fresh());  // epoch 1 of 3, then "killed"
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        ASSERT_EQ(ctl.state(), AdaptState::kFineTuning);
      }
      AdaptationController resumed(features(), &svc, nullptr, FastDetector(),
                                   cfg);
      drive(resumed, 8);
      EXPECT_EQ(resumed.fine_tunes_resumed(), 1u);
      EXPECT_EQ(resumed.fine_tunes_published(), 1u);
      if (resumes_out) *resumes_out = resumed.fine_tunes_resumed();
    } else {
      AdaptationController ctl(features(), &svc, nullptr, FastDetector(),
                               cfg);
      ASSERT_TRUE(ctl.ForceStartFineTune(fresh()).ok());
      drive(ctl, 8);
      EXPECT_EQ(ctl.fine_tunes_published(), 1u);
      if (resumes_out) *resumes_out = ctl.fine_tunes_resumed();
    }
  }

  static std::string CandidateBytes(const std::string& dir) {
    auto bytes = ckpt::ReadFileBytes(ckpt::CheckpointDir(dir).PathFor(7));
    EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
    return bytes.ok() ? *bytes : std::string();
  }
};

TEST_F(DriftResumeTest, KilledAndResumedFineTunePublishesIdenticalBytes) {
  const std::string model_dir = ScratchDir("resume_model");
  auto enc = MakeEncoder();
  ASSERT_TRUE(InferenceService::SaveModel(*enc, model_dir, 1).ok());

  // Reference: straight through.
  const std::string ref_out = ScratchDir("resume_ref");
  RunFineTune(model_dir, ref_out, ScratchDir("resume_ref_ft"),
              /*kill_after_first_epoch=*/false, nullptr);
  if (HasFatalFailure()) return;
  const std::string ref = CandidateBytes(ref_out);
  ASSERT_FALSE(ref.empty());

  // Fine-tuning actually moved the parameters off the warm start.
  auto source = ckpt::ReadFileBytes(ckpt::CheckpointDir(model_dir).PathFor(1));
  ASSERT_TRUE(source.ok());
  EXPECT_NE(ref, *source);

  // Kill + resume must reproduce the reference bytes exactly.
  uint64_t resumes = 0;
  const std::string kill_out = ScratchDir("resume_kill");
  RunFineTune(model_dir, kill_out, ScratchDir("resume_kill_ft"),
              /*kill_after_first_epoch=*/true, &resumes);
  if (HasFatalFailure()) return;
  EXPECT_EQ(resumes, 1u);
  EXPECT_EQ(obs::GetCounter("drift.finetune_resumes").value(), 1u);
  EXPECT_EQ(CandidateBytes(kill_out), ref)
      << "kill+resume diverged from the uninterrupted run";

  // And the whole thing is thread-count independent.
  const int before = par::DefaultPool().num_threads();
  par::SetDefaultThreads(4);
  const std::string quad_out = ScratchDir("resume_quad");
  RunFineTune(model_dir, quad_out, ScratchDir("resume_quad_ft"),
              /*kill_after_first_epoch=*/true, nullptr);
  par::SetDefaultThreads(before);
  if (HasFatalFailure()) return;
  EXPECT_EQ(CandidateBytes(quad_out), ref)
      << "4-thread kill+resume diverged from the 1-thread reference";
}

TEST_F(DriftResumeTest, ResumeRefusesAForeignOrStaleState) {
  const std::string model_dir = ScratchDir("refuse_model");
  auto enc = MakeEncoder();
  ASSERT_TRUE(InferenceService::SaveModel(*enc, model_dir, 1).ok());
  InferenceService svc(features(), TinyEncoder(), TinyService());
  svc.InstallModel(enc, 1, nullptr);

  // A foreign payload in the fine-tune dir: the first tick refuses it,
  // wipes the state, and stays idle.
  AdaptationConfig cfg = TinyAdaptation(model_dir);
  cfg.finetune_dir = ScratchDir("refuse_ft");
  ASSERT_TRUE(
      ckpt::CheckpointDir(cfg.finetune_dir).Save(1, "not drift state").ok());
  AdaptationController ctl(features(), &svc, nullptr, FastDetector(), cfg);
  auto r = ctl.Tick(fresh());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(ctl.state(), AdaptState::kIdle);
  EXPECT_EQ(ctl.fine_tunes_resumed(), 0u);
  bool refused = false;
  for (const std::string& e : r->events) {
    refused = refused || e.find("resume refused") != std::string::npos;
  }
  EXPECT_TRUE(refused);
  EXPECT_FALSE(std::filesystem::exists(cfg.finetune_dir))
      << "refused state must be wiped";
}

}  // namespace
}  // namespace tpr::drift
