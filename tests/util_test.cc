#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"
#include "util/status.h"
#include "util/table_printer.h"

namespace tpr {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool differ = false;
  for (int i = 0; i < 10; ++i) differ |= a.NextU64() != b.NextU64();
  EXPECT_TRUE(differ);
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(4);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-2}, int64_t{2});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(6);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SerializeRestoreRoundTrip) {
  Rng rng(0xDEADBEEF);
  for (int i = 0; i < 17; ++i) rng.NextU64();  // advance off the seed state
  const std::array<uint64_t, 4> state = rng.Serialize();
  std::vector<uint64_t> expected;
  for (int i = 0; i < 32; ++i) expected.push_back(rng.NextU64());

  Rng restored(1);  // different seed; Restore must fully overwrite it
  restored.Restore(state);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(restored.NextU64(), expected[i]) << "draw " << i;
  }
  // Restoring again rewinds the same generator to the saved point.
  restored.Restore(state);
  EXPECT_EQ(restored.NextU64(), expected[0]);
}

TEST(RngTest, SerializedStateIsNeverAllZero) {
  // xoshiro-style generators break on the all-zero state; Seed must not
  // produce it even for seed 0.
  for (uint64_t seed : {uint64_t{0}, uint64_t{1}, uint64_t{42}}) {
    Rng rng(seed);
    const auto state = rng.Serialize();
    bool all_zero = true;
    for (uint64_t word : state) all_zero &= word == 0;
    EXPECT_FALSE(all_zero) << "seed " << seed;
  }
}

TEST(RngTest, SampleDiscreteRespectsWeights) {
  Rng rng(8);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.SampleDiscrete(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1]);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"Method", "MAE"});
  t.AddRow({"WSCCL", "31.66"});
  t.AddSeparator();
  t.AddRow({"A-much-longer-name", "7"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("WSCCL"), std::string::npos);
  EXPECT_NE(s.find("A-much-longer-name"), std::string::npos);
  EXPECT_NE(s.find("+"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsDecimals) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
}

}  // namespace
}  // namespace tpr
