#include <gtest/gtest.h>

#include <cmath>

#include "baselines/bert_path.h"
#include "baselines/common.h"
#include "baselines/dgi.h"
#include "baselines/gcn_tte.h"
#include "baselines/gmi.h"
#include "baselines/infograph.h"
#include "baselines/memory_bank.h"
#include "baselines/node2vec_path.h"
#include "baselines/pim.h"
#include "baselines/supervised.h"
#include "eval/downstream.h"
#include "synth/presets.h"

namespace tpr::baselines {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto preset = synth::AalborgPreset();
    synth::ScaleDataset(preset, 0.1);
    auto ds = synth::BuildPresetDataset(preset);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    auto data = std::make_shared<synth::CityDataset>(std::move(*ds));
    core::FeatureConfig fc;
    fc.temporal_graph.slots_per_day = 48;
    fc.node2vec.walks_per_node = 2;
    fc.node2vec.epochs = 1;
    auto fs = core::BuildFeatureSpace(data, fc);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    features_ = new std::shared_ptr<const core::FeatureSpace>(
        std::make_shared<const core::FeatureSpace>(std::move(*fs)));
  }

  static std::shared_ptr<const core::FeatureSpace> features() {
    return *features_;
  }
  static const synth::CityDataset& data() { return *features()->data; }

  static std::vector<int> TrainIndices() {
    std::vector<int> train, test;
    eval::SplitGroups(data().labeled, 0.8, 99, &train, &test);
    return train;
  }

  // Checks Train() + Encode() produce finite, fixed-size representations
  // with at least some variation across samples.
  static void CheckModel(PathRepresentationModel& model) {
    ASSERT_TRUE(model.Train().ok()) << model.name();
    const auto a = model.Encode(data().unlabeled[0]);
    const auto b = model.Encode(data().unlabeled[5]);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a.size(), b.size());
    double diff = 0;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(std::isfinite(a[i])) << model.name();
      diff += std::fabs(a[i] - b[i]);
    }
    EXPECT_GT(diff, 1e-7) << model.name() << " produced constant reps";
  }

  static std::shared_ptr<const core::FeatureSpace>* features_;
};

std::shared_ptr<const core::FeatureSpace>* BaselinesTest::features_ = nullptr;

TEST_F(BaselinesTest, EdgeFeatureVectorShape) {
  const auto f = EdgeFeatureVector(*features(), 0);
  EXPECT_EQ(static_cast<int>(f.size()), EdgeFeatureDim(*features()));
  // One-hot road type block sums to exactly 1.
  float onehot = 0;
  for (int i = 0; i < graph::kNumRoadTypes; ++i) onehot += f[i];
  EXPECT_FLOAT_EQ(onehot, 1.0f);
}

TEST_F(BaselinesTest, AdjacencyRowsNormalised) {
  const auto a = NodeGraphAdjacency(*data().network);
  EXPECT_EQ(a.rows(), data().network->num_nodes());
  // Symmetric normalisation keeps entries in (0, 1].
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i], 0.0f);
    EXPECT_LE(a[i], 1.0f);
  }
}

TEST_F(BaselinesTest, LineGraphConnectsConsecutiveEdges) {
  const auto a = LineGraphAdjacency(*data().network);
  const auto& net = *data().network;
  // For a sample of edges, consecutive edges must have nonzero weight.
  for (int e = 0; e < std::min(20, net.num_edges()); ++e) {
    for (int next : net.OutEdges(net.edge(e).to)) {
      if (next == e) continue;
      EXPECT_GT(a.at(e, next), 0.0f);
    }
  }
}

TEST_F(BaselinesTest, Node2vecPath) {
  Node2vecPathModel model(features());
  CheckModel(model);
}

TEST_F(BaselinesTest, Dgi) {
  DgiModel::Config cfg;
  cfg.epochs = 5;
  DgiModel model(features(), cfg);
  CheckModel(model);
}

TEST_F(BaselinesTest, Gmi) {
  GmiModel::Config cfg;
  cfg.epochs = 5;
  GmiModel model(features(), cfg);
  CheckModel(model);
}

TEST_F(BaselinesTest, MemoryBank) {
  MemoryBankModel::Config cfg;
  cfg.epochs = 1;
  cfg.hidden_dim = 8;
  MemoryBankModel model(features(), cfg);
  CheckModel(model);
}

TEST_F(BaselinesTest, BertPath) {
  BertPathModel::Config cfg;
  cfg.epochs = 1;
  cfg.hidden_dim = 8;
  BertPathModel model(features(), cfg);
  CheckModel(model);
}

TEST_F(BaselinesTest, InfoGraph) {
  InfoGraphModel::Config cfg;
  cfg.epochs = 1;
  cfg.hidden_dim = 8;
  InfoGraphModel model(features(), cfg);
  CheckModel(model);
}

TEST_F(BaselinesTest, PimAndPimTemporal) {
  PimModel::Config cfg;
  cfg.epochs = 1;
  cfg.hidden_dim = 8;
  PimModel pim(features(), cfg);
  CheckModel(pim);

  PimTemporalModel pim_t(features(), cfg);
  ASSERT_TRUE(pim_t.Train().ok());
  const auto base = pim.Encode(data().unlabeled[0]);
  const auto temporal = pim_t.Encode(data().unlabeled[0]);
  // PIM-Temporal appends the temporal embedding.
  EXPECT_EQ(temporal.size(),
            base.size() + features()->config.temporal_embedding_dim);
}

TEST_F(BaselinesTest, PimTemporalChangesWithTime) {
  PimModel::Config cfg;
  cfg.epochs = 0;
  cfg.hidden_dim = 8;
  PimTemporalModel model(features(), cfg);
  ASSERT_TRUE(model.Train().ok());
  auto s1 = data().unlabeled[0];
  auto s2 = s1;
  s2.depart_time_s = s1.depart_time_s + 12 * 3600;
  const auto a = model.Encode(s1);
  const auto b = model.Encode(s2);
  double diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff += std::fabs(a[i] - b[i]);
  EXPECT_GT(diff, 1e-6);
}

template <typename Model>
void CheckSupervised(std::shared_ptr<const core::FeatureSpace> features,
                     std::vector<int> train, SupervisedTask task) {
  SupervisedConfig cfg;
  cfg.primary = task;
  cfg.epochs = 2;
  cfg.encoder.d_hidden = 16;
  Model model(features, train, cfg);
  ASSERT_TRUE(model.Train().ok());
  const auto& sample = features->data->labeled[train[0]];
  const auto rep = model.Encode(sample);
  EXPECT_EQ(rep.size(), 16u);
  const double pred = model.PredictPrimary(sample);
  EXPECT_TRUE(std::isfinite(pred));
  if (task == SupervisedTask::kTravelTime) {
    EXPECT_GT(pred, 0.0);  // travel times are positive
  }
}

TEST_F(BaselinesTest, PathRankTrainsBothTasks) {
  CheckSupervised<PathRankModel>(features(), TrainIndices(),
                                 SupervisedTask::kTravelTime);
  CheckSupervised<PathRankModel>(features(), TrainIndices(),
                                 SupervisedTask::kRanking);
}

TEST_F(BaselinesTest, HmtrlTrains) {
  CheckSupervised<HmtrlModel>(features(), TrainIndices(),
                              SupervisedTask::kTravelTime);
}

TEST_F(BaselinesTest, DeepGttTrains) {
  CheckSupervised<DeepGttModel>(features(), TrainIndices(),
                                SupervisedTask::kTravelTime);
}

TEST_F(BaselinesTest, SupervisedRejectsEmptyTrainSet) {
  SupervisedConfig cfg;
  cfg.encoder.d_hidden = 8;
  PathRankModel model(features(), {}, cfg);
  EXPECT_FALSE(model.Train().ok());
}

TEST_F(BaselinesTest, PathRankPretrainingTransplant) {
  SupervisedConfig cfg;
  cfg.encoder.d_hidden = 16;
  core::TemporalPathEncoder pretrained(features(), cfg.encoder);
  PathRankModel model(features(), TrainIndices(), cfg);
  ASSERT_TRUE(model.InitEncoderFrom(pretrained).ok());
  // After transplant (before training), the model's representation equals
  // the pretrained encoder's output.
  const auto& sample = data().labeled[0];
  EXPECT_EQ(model.Encode(sample),
            pretrained.EncodeValue(sample.path, sample.depart_time_s));
}

TEST_F(BaselinesTest, GcnPredictsPositiveTimes) {
  GcnTteModel::Config cfg;
  cfg.epochs = 20;
  GcnTteModel model(features(), cfg);
  ASSERT_TRUE(model.Train(TrainIndices()).ok());
  const auto& sample = data().labeled[0];
  const double t = model.PredictTravelTime(sample.path, sample.depart_time_s);
  EXPECT_GT(t, 0.0);
  EXPECT_TRUE(std::isfinite(t));
}

TEST_F(BaselinesTest, GcnIsTimeInvariantStgcnIsNot) {
  GcnTteModel::Config gcfg;
  gcfg.epochs = 10;
  GcnTteModel gcn(features(), gcfg);
  ASSERT_TRUE(gcn.Train(TrainIndices()).ok());
  const auto& path = data().labeled[0].path;
  EXPECT_DOUBLE_EQ(gcn.PredictTravelTime(path, 8 * 3600),
                   gcn.PredictTravelTime(path, 3 * 3600));

  StgcnTteModel::Config scfg;
  scfg.epochs = 20;
  StgcnTteModel stgcn(features(), scfg);
  ASSERT_TRUE(stgcn.Train(TrainIndices()).ok());
  // STGCN conditions on the time bucket; peak vs night buckets exist in
  // training, so predictions generally differ (not asserting direction).
  const double peak = stgcn.PredictTravelTime(path, 8 * 3600);
  const double night = stgcn.PredictTravelTime(path, 3 * 3600);
  EXPECT_TRUE(std::isfinite(peak));
  EXPECT_TRUE(std::isfinite(night));
}

TEST_F(BaselinesTest, EdgePredictorsRejectEmptyTraining) {
  GcnTteModel gcn(features());
  EXPECT_FALSE(gcn.Train({}).ok());
  StgcnTteModel stgcn(features());
  EXPECT_FALSE(stgcn.Train({}).ok());
}

}  // namespace
}  // namespace tpr::baselines
