#include <gtest/gtest.h>

#include <cmath>

#include "node2vec/alias.h"
#include "node2vec/node2vec.h"

namespace tpr::node2vec {
namespace {

// Two 5-cliques joined by a single bridge edge — embeddings should place
// same-clique nodes closer than cross-clique nodes.
graph::Graph TwoCliques() {
  graph::Graph g(10);
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 5; ++i) {
      for (int j = i + 1; j < 5; ++j) {
        g.AddEdge(c * 5 + i, c * 5 + j);
      }
    }
  }
  g.AddEdge(4, 5);  // bridge
  return g;
}

TEST(AliasTest, SamplesProportionally) {
  AliasTable table({1.0, 0.0, 3.0});
  Rng rng(11);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[table.Sample(rng)];
  EXPECT_EQ(counts[1], 0);
  const double ratio = static_cast<double>(counts[2]) / counts[0];
  EXPECT_NEAR(ratio, 3.0, 0.4);
}

TEST(AliasTest, SingleOutcome) {
  AliasTable table({2.5});
  Rng rng(12);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

TEST(WalksTest, WalksStayOnGraph) {
  graph::Graph g = TwoCliques();
  Node2VecConfig cfg;
  cfg.walk_length = 10;
  cfg.walks_per_node = 2;
  Rng rng(13);
  const auto walks = GenerateWalks(g, cfg, rng);
  EXPECT_EQ(walks.size(), static_cast<size_t>(10 * 2));
  for (const auto& walk : walks) {
    EXPECT_GE(walk.size(), 2u);
    for (size_t i = 1; i < walk.size(); ++i) {
      EXPECT_TRUE(g.HasEdge(walk[i - 1], walk[i]))
          << walk[i - 1] << " -> " << walk[i];
    }
  }
}

TEST(WalksTest, IsolatedNodesProduceNoWalks) {
  graph::Graph g(3);
  g.AddEdge(0, 1);
  Node2VecConfig cfg;
  cfg.walks_per_node = 1;
  Rng rng(14);
  const auto walks = GenerateWalks(g, cfg, rng);
  EXPECT_EQ(walks.size(), 2u);  // node 2 is isolated
}

TEST(WalksTest, LowPEncouragesBacktracking) {
  // On a long path graph, p << 1 makes returning to the previous node
  // much more likely, producing walks that revisit nodes more often.
  graph::Graph g(30);
  for (int i = 0; i + 1 < 30; ++i) g.AddEdge(i, i + 1);
  auto revisit_rate = [&](double p) {
    Node2VecConfig cfg;
    cfg.p = p;
    cfg.q = 1.0;
    cfg.walk_length = 20;
    cfg.walks_per_node = 4;
    Rng rng(15);
    const auto walks = GenerateWalks(g, cfg, rng);
    double revisits = 0, steps = 0;
    for (const auto& walk : walks) {
      for (size_t i = 2; i < walk.size(); ++i) {
        revisits += walk[i] == walk[i - 2] ? 1 : 0;
        steps += 1;
      }
    }
    return revisits / steps;
  };
  EXPECT_GT(revisit_rate(0.05), revisit_rate(10.0) + 0.1);
}

TEST(Node2VecTest, RejectsBadInput) {
  EXPECT_FALSE(TrainNode2Vec(graph::Graph(0), Node2VecConfig{}).ok());
  graph::Graph g(2);
  g.AddEdge(0, 1);
  Node2VecConfig bad;
  bad.dim = 0;
  EXPECT_FALSE(TrainNode2Vec(g, bad).ok());
}

TEST(Node2VecTest, CommunityStructureInEmbeddings) {
  graph::Graph g = TwoCliques();
  Node2VecConfig cfg;
  cfg.dim = 16;
  cfg.walks_per_node = 8;
  cfg.walk_length = 20;
  cfg.epochs = 3;
  auto emb = TrainNode2Vec(g, cfg);
  ASSERT_TRUE(emb.ok());
  EXPECT_EQ(emb->num_nodes(), 10);
  EXPECT_EQ(emb->dim, 16);

  // Average intra-clique similarity must exceed inter-clique similarity.
  double intra = 0, inter = 0;
  int n_intra = 0, n_inter = 0;
  for (int i = 0; i < 10; ++i) {
    for (int j = i + 1; j < 10; ++j) {
      const double s = emb->Cosine(i, j);
      if ((i < 5) == (j < 5)) {
        intra += s;
        ++n_intra;
      } else {
        inter += s;
        ++n_inter;
      }
    }
  }
  EXPECT_GT(intra / n_intra, inter / n_inter + 0.1);
}

TEST(Node2VecTest, DeterministicForSeed) {
  graph::Graph g = TwoCliques();
  Node2VecConfig cfg;
  cfg.dim = 8;
  auto a = TrainNode2Vec(g, cfg);
  auto b = TrainNode2Vec(g, cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int v = 0; v < 10; ++v) {
    for (int d = 0; d < 8; ++d) {
      EXPECT_FLOAT_EQ((*a)[v][d], (*b)[v][d]);
    }
  }
}

TEST(Node2VecTest, EmbeddingsAreFinite) {
  graph::Graph g = TwoCliques();
  Node2VecConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 4;
  auto emb = TrainNode2Vec(g, cfg);
  ASSERT_TRUE(emb.ok());
  for (int v = 0; v < emb->num_nodes(); ++v) {
    for (float x : (*emb)[v]) EXPECT_TRUE(std::isfinite(x));
  }
}

}  // namespace
}  // namespace tpr::node2vec
