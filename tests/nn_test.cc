#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "gradcheck.h"
#include "nn/autograd.h"
#include "nn/modules.h"
#include "nn/optimizer.h"
#include "nn/transformer.h"
#include "util/rng.h"

namespace tpr::nn {
namespace {

// Numerically checks d(loss)/d(param) for every element of `param`, where
// `loss_fn` rebuilds the graph from scratch each call.
void CheckGradient(Var param, const std::function<Var()>& loss_fn,
                   float tolerance = 2e-2f) {
  Var loss = loss_fn();
  param.ZeroGrad();
  loss.Backward();
  Tensor analytic = param.grad();
  ASSERT_FALSE(analytic.empty());

  const float eps = 1e-3f;
  Tensor& value = param.mutable_value();
  for (size_t i = 0; i < value.size(); ++i) {
    const float original = value[i];
    value[i] = original + eps;
    const float up = loss_fn().scalar();
    value[i] = original - eps;
    const float down = loss_fn().scalar();
    value[i] = original;
    const float numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric,
                tolerance * std::max(1.0f, std::fabs(numeric)))
        << "at element " << i;
  }
}

Var MakeParam(std::vector<float> values, int rows, int cols) {
  return Var::Leaf(Tensor::FromValues(rows, cols, std::move(values)),
                   /*requires_grad=*/true);
}

TEST(TensorTest, ShapeAndFill) {
  Tensor t(2, 3, 1.5f);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_FLOAT_EQ(t.Sum(), 9.0f);
  t.Fill(0.0f);
  EXPECT_FLOAT_EQ(t.Sum(), 0.0f);
}

TEST(TensorTest, MatMulAccumulate) {
  Tensor a = Tensor::FromValues(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromValues(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor out(2, 2);
  MatMulAccumulate(a, b, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 58);
  EXPECT_FLOAT_EQ(out.at(0, 1), 64);
  EXPECT_FLOAT_EQ(out.at(1, 0), 139);
  EXPECT_FLOAT_EQ(out.at(1, 1), 154);
}

TEST(TensorTest, TransposedMatMulsAgreeWithExplicit) {
  // a^T * b == transpose(a) matmul b
  Tensor a = Tensor::FromValues(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromValues(3, 2, {1, 0, 0, 1, 1, 1});
  Tensor out(2, 2);
  MatMulTransAAccumulate(a, b, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 1 * 1 + 3 * 0 + 5 * 1);
  EXPECT_FLOAT_EQ(out.at(1, 1), 2 * 0 + 4 * 1 + 6 * 1);

  Tensor c = Tensor::FromValues(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor d = Tensor::FromValues(2, 3, {1, 1, 0, 0, 1, 1});
  Tensor out2(2, 2);
  MatMulTransBAccumulate(c, d, out2);
  EXPECT_FLOAT_EQ(out2.at(0, 0), 1 + 2);
  EXPECT_FLOAT_EQ(out2.at(0, 1), 2 + 3);
}

TEST(AutogradTest, AddBackward) {
  Var a = MakeParam({1, 2, 3}, 1, 3);
  Var b = MakeParam({4, 5, 6}, 1, 3);
  CheckGradient(a, [&] { return Sum(Add(a, b)); });
  CheckGradient(b, [&] { return Sum(Add(a, b)); });
}

TEST(AutogradTest, MatMulBackward) {
  Var a = MakeParam({0.5f, -1.0f, 2.0f, 0.3f, 0.7f, -0.2f}, 2, 3);
  Var b = MakeParam({1.0f, 0.2f, -0.4f, 0.9f, 0.1f, -0.6f}, 3, 2);
  CheckGradient(a, [&] { return Sum(MatMul(a, b)); });
  CheckGradient(b, [&] { return Sum(MatMul(a, b)); });
}

TEST(AutogradTest, MulDivBackward) {
  Var a = MakeParam({0.5f, -1.0f, 2.0f}, 1, 3);
  Var b = MakeParam({1.5f, 2.0f, 4.0f}, 1, 3);
  CheckGradient(a, [&] { return Sum(Mul(a, b)); });
  CheckGradient(a, [&] { return Sum(Div(a, b)); });
  CheckGradient(b, [&] { return Sum(Div(a, b)); });
}

TEST(AutogradTest, ActivationsBackward) {
  Var a = MakeParam({0.5f, -1.0f, 2.0f, -0.3f}, 1, 4);
  CheckGradient(a, [&] { return Sum(Tanh(a)); });
  CheckGradient(a, [&] { return Sum(Sigmoid(a)); });
  CheckGradient(a, [&] { return Sum(Softplus(a)); });
  CheckGradient(a, [&] { return Sum(Exp(a)); });
}

TEST(AutogradTest, ReluBackward) {
  Var a = MakeParam({0.5f, -1.0f, 2.0f}, 1, 3);
  Var loss = Sum(Relu(a));
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0f);
  EXPECT_FLOAT_EQ(a.grad()[1], 0.0f);
  EXPECT_FLOAT_EQ(a.grad()[2], 1.0f);
}

TEST(AutogradTest, LogSqrtBackward) {
  Var a = MakeParam({0.5f, 1.0f, 2.0f}, 1, 3);
  CheckGradient(a, [&] { return Sum(Log(a)); });
  CheckGradient(a, [&] { return Sum(Sqrt(a)); });
}

TEST(AutogradTest, RowMeanRowMaxBackward) {
  Var a = MakeParam({1, 2, 3, 7, 5, 0.5f}, 2, 3);
  CheckGradient(a, [&] { return Sum(RowMean(a)); });
  CheckGradient(a, [&] { return Sum(RowMax(a)); });
}

TEST(AutogradTest, ConcatSliceGatherBackward) {
  Var a = MakeParam({1, 2, 3, 4}, 2, 2);
  Var b = MakeParam({5, 6, 7, 8}, 2, 2);
  CheckGradient(a, [&] { return Sum(ConcatCols({a, b})); });
  CheckGradient(a, [&] { return Sum(ConcatRows({a, b})); });
  CheckGradient(a, [&] { return Sum(SliceCols(ConcatCols({a, b}), 1, 2)); });
  CheckGradient(a, [&] { return Sum(SliceRow(a, 1)); });
  CheckGradient(a, [&] { return Sum(Gather(a, {1, 1, 0})); });
}

TEST(AutogradTest, CosineSimMatchesDefinition) {
  Var a = MakeParam({1, 0, 1}, 1, 3);
  Var b = MakeParam({1, 1, 0}, 1, 3);
  EXPECT_NEAR(CosineSim(a, b).scalar(), 0.5f, 1e-5f);
}

TEST(AutogradTest, CosineSimBackward) {
  Var a = MakeParam({0.5f, -1.0f, 2.0f}, 1, 3);
  Var b = MakeParam({1.5f, 2.0f, -0.5f}, 1, 3);
  CheckGradient(a, [&] { return CosineSim(a, b); });
  CheckGradient(b, [&] { return CosineSim(a, b); });
}

TEST(AutogradTest, LogSumExpBackward) {
  Var a = MakeParam({0.5f, -1.0f, 2.0f, 0.0f}, 1, 4);
  CheckGradient(a, [&] { return LogSumExp(a); });
  // Stability: large inputs must not overflow.
  Var big = MakeParam({1000.0f, 999.0f}, 1, 2);
  EXPECT_NEAR(LogSumExp(big).scalar(), 1000.0f + std::log(1 + std::exp(-1.0f)),
              1e-2f);
}

TEST(AutogradTest, SoftmaxRowsBackward) {
  Var a = MakeParam({0.5f, -1.0f, 2.0f, 1.0f, 0.0f, -0.5f}, 2, 3);
  CheckGradient(a, [&] { return Sum(Mul(SoftmaxRows(a), a)); });
}

TEST(AutogradTest, SoftmaxRowsSumsToOne) {
  Var a = MakeParam({3.0f, 1.0f, -2.0f}, 1, 3);
  Var y = SoftmaxRows(a);
  EXPECT_NEAR(y.value().Sum(), 1.0f, 1e-5f);
}

TEST(AutogradTest, BceWithLogitsMatchesManual) {
  Var x = MakeParam({0.7f}, 1, 1);
  const float expected =
      -std::log(1.0f / (1.0f + std::exp(-0.7f)));  // target = 1
  EXPECT_NEAR(BceWithLogits(x, 1.0f).scalar(), expected, 1e-5f);
  CheckGradient(x, [&] { return BceWithLogits(x, 0.3f); });
}

TEST(AutogradTest, GradAccumulatesAcrossSharedUse) {
  Var a = MakeParam({2.0f}, 1, 1);
  Var loss = Sum(Add(a, a));
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 2.0f);
}

TEST(AutogradTest, NoGradGuardSkipsGraph) {
  Var a = MakeParam({1.0f, 2.0f}, 1, 2);
  NoGradGuard guard;
  Var s = Sum(a);
  EXPECT_FALSE(s.requires_grad());
}

TEST(AutogradTest, DiamondGraphBackward) {
  // loss = sum(a*a + a), checks topological ordering with shared parents.
  Var a = MakeParam({1.5f, -0.5f}, 1, 2);
  CheckGradient(a, [&] { return Sum(Add(Mul(a, a), a)); });
}

TEST(ModulesTest, LinearShapesAndGradient) {
  Rng rng(11);
  Linear layer(3, 2, rng);
  Var x = MakeParam({0.5f, -1.0f, 2.0f}, 1, 3);
  Var y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 1);
  EXPECT_EQ(y.cols(), 2);
  for (auto& p : layer.Parameters()) {
    CheckGradient(p, [&] { return Sum(layer.Forward(x)); });
  }
}

TEST(ModulesTest, EmbeddingLookup) {
  Rng rng(12);
  Embedding emb(5, 4, rng);
  Var out = emb.Forward({1, 3, 1});
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 4);
  // Rows 0 and 2 must be identical (same id).
  for (int j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out.value().at(0, j), out.value().at(2, j));
  }
}

TEST(ModulesTest, LstmShapesAndGradient) {
  Rng rng(13);
  Lstm lstm(4, 3, 2, rng);
  Var x = MakeParam({0.1f, 0.2f, -0.1f, 0.4f, -0.3f, 0.5f, 0.2f, 0.0f,
                     0.3f, -0.2f, 0.1f, 0.6f},
                    3, 4);
  Var y = lstm.Forward(x);
  EXPECT_EQ(y.rows(), 3);
  EXPECT_EQ(y.cols(), 3);
  CheckGradient(x, [&] { return Sum(lstm.Forward(x)); }, 5e-2f);
}

TEST(ModulesTest, GruShapesAndGradient) {
  Rng rng(14);
  GruLayer gru(3, 2, rng);
  Var x = MakeParam({0.1f, 0.2f, -0.1f, 0.4f, -0.3f, 0.5f}, 2, 3);
  Var y = gru.Forward(x);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 2);
  CheckGradient(x, [&] { return Sum(gru.Forward(x)); }, 5e-2f);
}

TEST(ModulesTest, MlpReducesLossOnToyRegression) {
  Rng rng(15);
  Mlp mlp({2, 8, 1}, rng);
  Adam opt(mlp.Parameters(), 0.01f);
  // Learn y = x0 + 2*x1 on a few points.
  std::vector<std::pair<std::vector<float>, float>> points = {
      {{0.0f, 0.0f}, 0.0f}, {{1.0f, 0.0f}, 1.0f},
      {{0.0f, 1.0f}, 2.0f}, {{1.0f, 1.0f}, 3.0f}};
  auto epoch_loss = [&] {
    float total = 0;
    for (auto& [xv, yv] : points) {
      Var x = Var::Leaf(Tensor::RowVector(xv));
      Var loss = MseLoss(mlp.Forward(x), Tensor::RowVector({yv}));
      opt.ZeroGrad();
      loss.Backward();
      opt.Step();
      total += loss.scalar();
    }
    return total / points.size();
  };
  const float first = epoch_loss();
  float last = first;
  for (int e = 0; e < 200; ++e) last = epoch_loss();
  EXPECT_LT(last, first * 0.2f);
}

TEST(ModulesTest, CopyParamsFromTransplantsValues) {
  Rng rng1(16), rng2(17);
  Linear a(3, 2, rng1), b(3, 2, rng2);
  ASSERT_TRUE(a.CopyParamsFrom(b).ok());
  Var x = MakeParam({1, 2, 3}, 1, 3);
  Var ya = a.Forward(x);
  Var yb = b.Forward(x);
  for (size_t i = 0; i < ya.value().size(); ++i) {
    EXPECT_FLOAT_EQ(ya.value()[i], yb.value()[i]);
  }
}

TEST(ModulesTest, CopyParamsFromRejectsMismatch) {
  Rng rng(18);
  Linear a(3, 2, rng), b(2, 2, rng);
  EXPECT_FALSE(a.CopyParamsFrom(b).ok());
}

TEST(OptimizerTest, SgdDescendsQuadratic) {
  Var w = MakeParam({5.0f}, 1, 1);
  Sgd opt({w}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    Var loss = Mul(w, w);
    opt.ZeroGrad();
    Sum(loss).Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.value()[0], 0.0f, 1e-3f);
}

TEST(OptimizerTest, AdamDescendsQuadratic) {
  Var w = MakeParam({5.0f}, 1, 1);
  Adam opt({w}, 0.3f);
  for (int i = 0; i < 200; ++i) {
    Var loss = Sum(Mul(w, w));
    opt.ZeroGrad();
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.value()[0], 0.0f, 0.05f);
}

TEST(OptimizerTest, ClipGradNormBoundsNorm) {
  Var w = MakeParam({3.0f, 4.0f}, 1, 2);
  Sgd opt({w}, 0.1f);
  Var loss = Sum(Mul(w, Var::Leaf(Tensor::RowVector({30.0f, 40.0f}))));
  opt.ZeroGrad();
  loss.Backward();
  const float pre_norm = opt.ClipGradNorm(1.0f);
  EXPECT_NEAR(pre_norm, 50.0f, 1e-3f);
  EXPECT_NEAR(w.grad().Norm(), 1.0f, 1e-4f);
}

// Fixed input sequence for the module-level gradient checks.
Var FixedSequence(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Tensor t(rows, cols);
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.Gaussian(0.0, 0.5));
  }
  return Var::Leaf(std::move(t));
}

TEST(GradCheckModules, LstmMatchesFiniteDifferences) {
  Rng rng(101);
  Lstm lstm(3, 4, 2, rng);
  Var x = FixedSequence(5, 3, 7);
  tpr::testing::ExpectGradientsMatch([&] { return Sum(lstm.Forward(x)); },
                                     lstm.Parameters());
}

TEST(GradCheckModules, GruMatchesFiniteDifferences) {
  Rng rng(102);
  GruLayer gru(3, 4, rng);
  Var x = FixedSequence(5, 3, 8);
  tpr::testing::ExpectGradientsMatch([&] { return Sum(gru.Forward(x)); },
                                     gru.Parameters());
}

TEST(GradCheckModules, SelfAttentionMatchesFiniteDifferences) {
  Rng rng(103);
  SelfAttention attention(4, 4, rng);
  Var x = FixedSequence(6, 4, 9);
  tpr::testing::ExpectGradientsMatch(
      [&] { return Sum(attention.Forward(x)); }, attention.Parameters());
}

}  // namespace
}  // namespace tpr::nn
