#include <gtest/gtest.h>

#include <cstdlib>
#include <unistd.h>
#include <filesystem>

#include "synth/io.h"
#include "synth/presets.h"

namespace tpr::synth {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tpr_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, SaveLoadRoundTrip) {
  auto preset = AalborgPreset();
  ScaleDataset(preset, 0.08);
  auto original = BuildPresetDataset(preset);
  ASSERT_TRUE(original.ok());

  ASSERT_TRUE(SaveCityDataset(*original, dir_.string()).ok());
  auto loaded = LoadCityDataset(dir_.string(), preset.traffic);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->name, original->name);
  ASSERT_EQ(loaded->network->num_nodes(), original->network->num_nodes());
  ASSERT_EQ(loaded->network->num_edges(), original->network->num_edges());
  for (int e = 0; e < original->network->num_edges(); ++e) {
    const auto& a = original->network->edge(e);
    const auto& b = loaded->network->edge(e);
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
    EXPECT_EQ(a.road_type, b.road_type);
    EXPECT_EQ(a.num_lanes, b.num_lanes);
    EXPECT_EQ(a.one_way, b.one_way);
    EXPECT_EQ(a.has_signal, b.has_signal);
    EXPECT_EQ(a.zone, b.zone);
    EXPECT_NEAR(a.length_m, b.length_m, 1e-3);
  }

  ASSERT_EQ(loaded->unlabeled.size(), original->unlabeled.size());
  ASSERT_EQ(loaded->labeled.size(), original->labeled.size());
  for (size_t i = 0; i < original->labeled.size(); ++i) {
    const auto& a = original->labeled[i];
    const auto& b = loaded->labeled[i];
    EXPECT_EQ(a.path, b.path);
    EXPECT_EQ(a.depart_time_s, b.depart_time_s);
    EXPECT_NEAR(a.travel_time_s, b.travel_time_s, 1e-3);
    EXPECT_NEAR(a.rank_score, b.rank_score, 1e-5);
    EXPECT_EQ(a.recommended, b.recommended);
    EXPECT_EQ(a.group, b.group);
  }

  // The reconstructed traffic model works against the loaded network.
  const auto& sample = loaded->labeled.front();
  EXPECT_GT(loaded->traffic->PathTravelTime(
                sample.path, static_cast<double>(sample.depart_time_s)),
            0.0);
}

TEST_F(IoTest, LoadMissingDirectoryFails) {
  auto loaded = LoadCityDataset((dir_ / "nope").string());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(IoTest, SaveNullNetworkFails) {
  CityDataset empty;
  EXPECT_FALSE(SaveCityDataset(empty, dir_.string()).ok());
}

}  // namespace
}  // namespace tpr::synth
