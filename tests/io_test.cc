#include <gtest/gtest.h>

#include <cstdlib>
#include <unistd.h>
#include <filesystem>
#include <fstream>
#include <string>

#include "synth/io.h"
#include "synth/presets.h"
#include "util/rng.h"

namespace tpr::synth {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tpr_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, SaveLoadRoundTrip) {
  auto preset = AalborgPreset();
  ScaleDataset(preset, 0.08);
  auto original = BuildPresetDataset(preset);
  ASSERT_TRUE(original.ok());

  ASSERT_TRUE(SaveCityDataset(*original, dir_.string()).ok());
  auto loaded = LoadCityDataset(dir_.string(), preset.traffic);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->name, original->name);
  ASSERT_EQ(loaded->network->num_nodes(), original->network->num_nodes());
  ASSERT_EQ(loaded->network->num_edges(), original->network->num_edges());
  for (int e = 0; e < original->network->num_edges(); ++e) {
    const auto& a = original->network->edge(e);
    const auto& b = loaded->network->edge(e);
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
    EXPECT_EQ(a.road_type, b.road_type);
    EXPECT_EQ(a.num_lanes, b.num_lanes);
    EXPECT_EQ(a.one_way, b.one_way);
    EXPECT_EQ(a.has_signal, b.has_signal);
    EXPECT_EQ(a.zone, b.zone);
    EXPECT_NEAR(a.length_m, b.length_m, 1e-3);
  }

  ASSERT_EQ(loaded->unlabeled.size(), original->unlabeled.size());
  ASSERT_EQ(loaded->labeled.size(), original->labeled.size());
  for (size_t i = 0; i < original->labeled.size(); ++i) {
    const auto& a = original->labeled[i];
    const auto& b = loaded->labeled[i];
    EXPECT_EQ(a.path, b.path);
    EXPECT_EQ(a.depart_time_s, b.depart_time_s);
    EXPECT_NEAR(a.travel_time_s, b.travel_time_s, 1e-3);
    EXPECT_NEAR(a.rank_score, b.rank_score, 1e-5);
    EXPECT_EQ(a.recommended, b.recommended);
    EXPECT_EQ(a.group, b.group);
  }

  // The reconstructed traffic model works against the loaded network.
  const auto& sample = loaded->labeled.front();
  EXPECT_GT(loaded->traffic->PathTravelTime(
                sample.path, static_cast<double>(sample.depart_time_s)),
            0.0);
}

TEST_F(IoTest, LoadMissingDirectoryFails) {
  auto loaded = LoadCityDataset((dir_ / "nope").string());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(IoTest, SaveNullNetworkFails) {
  CityDataset empty;
  EXPECT_FALSE(SaveCityDataset(empty, dir_.string()).ok());
}

// ---------------------------------------------------------------------------
// Malformed-input hardening: external CSV is untrusted. Every corruption
// must surface as a typed Status — never an exception, crash, or a
// silently wrong dataset.
// ---------------------------------------------------------------------------

class IoHardeningTest : public IoTest {
 protected:
  // A tiny valid dataset written field by field, so each test can replace
  // exactly one file with a corrupted variant.
  void SetUp() override {
    IoTest::SetUp();
    WriteFile("meta.csv", "name\ntiny\n");
    WriteFile("nodes.csv", "x,y\n0,0\n100,0\n100,100\n");
    WriteFile("edges.csv",
              "from,to,length_m,road_type,num_lanes,one_way,has_signal,zone\n"
              "0,1,100,0,2,0,0,0\n"
              "1,2,100,0,2,0,1,0\n");
    WriteFile("unlabeled.csv", kSampleHeader + std::string(kGoodRow));
    WriteFile("labeled.csv", kSampleHeader + std::string(kGoodRow));
  }

  static constexpr const char* kSampleHeader =
      "path,depart_time_s,travel_time_s,rank_score,recommended,group\n";
  static constexpr const char* kGoodRow = "0|1,100,10.5,0.5,1,0\n";

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(dir_ / name);
    out << content;
    ASSERT_TRUE(out.good());
  }

  StatusOr<CityDataset> Load() {
    return LoadCityDataset(dir_.string(), TrafficConfig{});
  }

  // Replaces the unlabeled samples with one row and loads.
  Status LoadWithSampleRow(const std::string& row) {
    WriteFile("unlabeled.csv", kSampleHeader + row);
    return Load().status();
  }
};

TEST_F(IoHardeningTest, BaselineDatasetLoads) {
  auto loaded = Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->network->num_edges(), 2);
  ASSERT_EQ(loaded->unlabeled.size(), 1u);
  EXPECT_EQ(loaded->unlabeled[0].path, (graph::Path{0, 1}));
}

TEST_F(IoHardeningTest, SampleRowCorruptionsAreTypedErrors) {
  // Truncated row (field missing).
  EXPECT_EQ(LoadWithSampleRow("0|1,100,10.5,0.5,1\n").code(),
            StatusCode::kInvalidArgument);
  // Too many fields.
  EXPECT_EQ(LoadWithSampleRow("0|1,100,10.5,0.5,1,0,9\n").code(),
            StatusCode::kInvalidArgument);
  // Trailing junk on an integer field.
  EXPECT_EQ(LoadWithSampleRow("0|1,100x,10.5,0.5,1,0\n").code(),
            StatusCode::kInvalidArgument);
  // Non-finite float.
  EXPECT_EQ(LoadWithSampleRow("0|1,100,inf,0.5,1,0\n").code(),
            StatusCode::kInvalidArgument);
  // Empty path.
  EXPECT_EQ(LoadWithSampleRow(",100,10.5,0.5,1,0\n").code(),
            StatusCode::kInvalidArgument);
  // Flag outside {0, 1}.
  EXPECT_EQ(LoadWithSampleRow("0|1,100,10.5,0.5,2,0\n").code(),
            StatusCode::kOutOfRange);
  // Negative times.
  EXPECT_EQ(LoadWithSampleRow("0|1,-5,10.5,0.5,1,0\n").code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(LoadWithSampleRow("0|1,100,-1,0.5,1,0\n").code(),
            StatusCode::kOutOfRange);
  // Path referencing an edge the network does not have.
  EXPECT_FALSE(LoadWithSampleRow("0|999,100,10.5,0.5,1,0\n").ok());
}

TEST_F(IoHardeningTest, EdgeRowCorruptionsAreTypedErrors) {
  const std::string header =
      "from,to,length_m,road_type,num_lanes,one_way,has_signal,zone\n";
  // road_type outside the enum.
  WriteFile("edges.csv", header + "0,1,100,99,2,0,0,0\n");
  EXPECT_EQ(Load().status().code(), StatusCode::kOutOfRange);
  // Boolean field that is not 0/1.
  WriteFile("edges.csv", header + "0,1,100,0,2,2,0,0\n");
  EXPECT_EQ(Load().status().code(), StatusCode::kOutOfRange);
  // Endpoint outside the node table (caught by AddEdge's validation).
  WriteFile("edges.csv", header + "0,57,100,0,2,0,0,0\n");
  EXPECT_FALSE(Load().ok());
  // Truncated row.
  WriteFile("edges.csv", header + "0,1,100,0\n");
  EXPECT_EQ(Load().status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IoHardeningTest, NodeRowCorruptionsAreTypedErrors) {
  WriteFile("nodes.csv", "x,y\n0\n");
  EXPECT_EQ(Load().status().code(), StatusCode::kInvalidArgument);
  WriteFile("nodes.csv", "x,y\n0,nan\n");
  EXPECT_EQ(Load().status().code(), StatusCode::kInvalidArgument);
}

// Fuzz-style sweep: random byte flips and truncations of the sample file
// must load cleanly or fail with a Status — never crash (ASan/UBSan run
// this in CI). Deterministic seed, so a failure replays.
TEST_F(IoHardeningTest, RandomlyCorruptedSampleFilesNeverCrash) {
  const std::string good =
      kSampleHeader + std::string(kGoodRow) + "1|0,200,7.25,0.25,0,1\n";
  Rng rng(20260805);
  for (int iter = 0; iter < 200; ++iter) {
    std::string bytes = good;
    const int mode = static_cast<int>(rng.Uniform() * 3);
    if (mode == 0 && !bytes.empty()) {  // truncate
      bytes.resize(static_cast<size_t>(rng.Uniform() * bytes.size()));
    } else {  // flip 1-4 bytes
      const int flips = 1 + static_cast<int>(rng.Uniform() * 4);
      for (int f = 0; f < flips && !bytes.empty(); ++f) {
        const size_t pos = static_cast<size_t>(rng.Uniform() * bytes.size());
        bytes[pos] = static_cast<char>(rng.Uniform() * 256);
      }
    }
    WriteFile("unlabeled.csv", bytes);
    auto loaded = Load();  // OK or typed error are both fine; UB is not
    if (!loaded.ok()) {
      EXPECT_FALSE(loaded.status().ToString().empty());
    }
  }
}

}  // namespace
}  // namespace tpr::synth
