// Cross-module integration tests: the full quickstart flow (city ->
// features -> WSCCL -> downstream probes) and the Fig. 7 pre-training
// flow, at miniature scale.

#include <gtest/gtest.h>

#include "baselines/node2vec_path.h"
#include "baselines/supervised.h"
#include "core/wsccl.h"
#include "eval/downstream.h"
#include "synth/presets.h"

namespace tpr {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto preset = synth::HarbinPreset();
    synth::ScaleDataset(preset, 0.1);
    auto ds = synth::BuildPresetDataset(preset);
    ASSERT_TRUE(ds.ok());
    auto data = std::make_shared<synth::CityDataset>(std::move(*ds));
    core::FeatureConfig fc;
    fc.temporal_graph.slots_per_day = 48;
    fc.node2vec.walks_per_node = 2;
    fc.node2vec.epochs = 1;
    auto fs = core::BuildFeatureSpace(data, fc);
    ASSERT_TRUE(fs.ok());
    features_ = new std::shared_ptr<const core::FeatureSpace>(
        std::make_shared<const core::FeatureSpace>(std::move(*fs)));
  }

  static std::shared_ptr<const core::FeatureSpace> features() {
    return *features_;
  }
  static const synth::CityDataset& data() { return *features()->data; }

  static core::WsccalConfig TinyConfig() {
    core::WsccalConfig cfg;
    cfg.wsc.encoder.d_hidden = 16;
    cfg.wsc.encoder.projection_dim = 8;
    cfg.wsc.anchors_per_batch = 6;
    cfg.curriculum.num_meta_sets = 2;
    cfg.curriculum.expert_epochs = 1;
    cfg.stage_epochs = 1;
    cfg.final_epochs = 1;
    return cfg;
  }

  static std::shared_ptr<const core::FeatureSpace>* features_;
};

std::shared_ptr<const core::FeatureSpace>* IntegrationTest::features_ =
    nullptr;

TEST_F(IntegrationTest, EndToEndWsccalProbes) {
  auto model = core::WsccalPipeline::Train(features(), TinyConfig());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  auto scores = eval::EvaluateTasks(
      data(), [&](const synth::TemporalPathSample& s) {
        return (*model)->Encode(s);
      });
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  // Sanity bounds, not quality claims (miniature config).
  EXPECT_GT(scores->tte_mae, 0.0);
  EXPECT_LT(scores->tte_mare, 1.5);
  EXPECT_GE(scores->pr_tau, -1.0);
  EXPECT_LE(scores->pr_tau, 1.0);
  EXPECT_GE(scores->rec_acc, 0.3);
}

TEST_F(IntegrationTest, WsccalBeatsTopologyOnlyBaselineOnTte) {
  auto model = core::WsccalPipeline::Train(features(), TinyConfig());
  ASSERT_TRUE(model.ok());
  auto wsccl = eval::EvaluateTasks(
      data(), [&](const synth::TemporalPathSample& s) {
        return (*model)->Encode(s);
      });
  baselines::Node2vecPathModel baseline(features());
  ASSERT_TRUE(baseline.Train().ok());
  auto floor = eval::EvaluateTasks(
      data(), [&](const synth::TemporalPathSample& s) {
        return baseline.Encode(s);
      });
  ASSERT_TRUE(wsccl.ok() && floor.ok());
  // At this miniature scale only a loose bound is stable; the bench
  // harness measures the real margins (see EXPERIMENTS.md).
  EXPECT_LT(wsccl->tte_mae, floor->tte_mae * 1.6);
}

TEST_F(IntegrationTest, PretrainingFlowRuns) {
  auto wsccl = core::WsccalPipeline::Train(features(), TinyConfig());
  ASSERT_TRUE(wsccl.ok());

  std::vector<int> train, test;
  eval::SplitGroups(data().labeled, 0.8, 99, &train, &test);
  baselines::SupervisedConfig cfg;
  cfg.primary = baselines::SupervisedTask::kTravelTime;
  cfg.encoder = TinyConfig().wsc.encoder;
  cfg.epochs = 2;

  baselines::PathRankModel warm(features(), train, cfg);
  ASSERT_TRUE(warm.InitEncoderFrom((*wsccl)->model().encoder()).ok());
  ASSERT_TRUE(warm.Train().ok());
  const double pred = warm.PredictPrimary(data().labeled[test[0]]);
  EXPECT_TRUE(std::isfinite(pred));
  EXPECT_GT(pred, 0.0);
}

TEST_F(IntegrationTest, WeakLabelSchemesProduceDifferentModels) {
  auto pop_cfg = TinyConfig();
  auto tci_cfg = TinyConfig();
  tci_cfg.wsc.weak_labels = synth::WeakLabelScheme::kCongestionIndex;
  auto pop = core::WsccalPipeline::Train(features(), pop_cfg);
  auto tci = core::WsccalPipeline::Train(features(), tci_cfg);
  ASSERT_TRUE(pop.ok() && tci.ok());
  const auto& s = data().unlabeled.front();
  EXPECT_NE((*pop)->Encode(s), (*tci)->Encode(s));
}

}  // namespace
}  // namespace tpr
