#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <functional>
#include <vector>

#include "gradcheck.h"
#include "kern/arena.h"
#include "kern/kern.h"
#include "nn/autograd.h"
#include "nn/modules.h"
#include "nn/tensor.h"
#include "par/thread_pool.h"
#include "util/rng.h"

namespace tpr::kern {
namespace {

// Pins the active kernel for one test and restores the previous one on
// exit, so test order never leaks a kernel choice.
class ScopedKernel {
 public:
  explicit ScopedKernel(Kernel k) : previous_(ActiveKernel()) { SetKernel(k); }
  ~ScopedKernel() { SetKernel(previous_); }

 private:
  Kernel previous_;
};

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Gaussian());
  return v;
}

void ExpectNearRel(const std::vector<float>& a, const std::vector<float>& b,
                   float rel_tol) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const float scale = std::max(1.0f, std::fabs(b[i]));
    EXPECT_NEAR(a[i], b[i], rel_tol * scale) << "at flat index " << i;
  }
}

using GemmFn = void (*)(const float*, const float*, float*, int, int, int);

// Runs one GEMM variant under `k` and returns the accumulated output
// (seeded with a nonzero pattern so += semantics are exercised).
std::vector<float> RunGemm(GemmFn fn, Kernel k, const std::vector<float>& a,
                           const std::vector<float>& b, int d0, int d1,
                           int d2, size_t out_n) {
  ScopedKernel pin(k);
  std::vector<float> out(out_n);
  for (size_t i = 0; i < out_n; ++i) out[i] = 0.25f * static_cast<float>(i % 7);
  fn(a.data(), b.data(), out.data(), d0, d1, d2);
  return out;
}

// Shapes chosen to hit every code path of the avx2 microkernels: full
// 16-column panels, the 8-column tail, the scalar column tail, 4-row
// tiles, 1-3 row tails, packed (m >= 8, n >= 16) and unpacked panels,
// and empty extents.
struct GemmShape {
  int m, k, n;
};
const GemmShape kShapes[] = {
    {1, 1, 1},   {1, 7, 1},   {3, 5, 7},    {4, 16, 16}, {5, 17, 23},
    {8, 32, 16}, {9, 33, 17}, {16, 64, 48}, {1, 64, 9},  {2, 3, 31},
    {7, 8, 8},   {12, 1, 40}, {4, 0, 8},    {0, 5, 8},   {6, 5, 0},
};

TEST(GemmParityTest, GemmAccAvx2MatchesScalar) {
  if (!CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this CPU";
  for (const auto& s : kShapes) {
    const auto a = RandomVec(static_cast<size_t>(s.m) * s.k, 11);
    const auto b = RandomVec(static_cast<size_t>(s.k) * s.n, 22);
    const size_t on = static_cast<size_t>(s.m) * s.n;
    const auto sc = RunGemm(&GemmAcc, Kernel::kScalar, a, b, s.m, s.k, s.n, on);
    const auto vx = RunGemm(&GemmAcc, Kernel::kAvx2, a, b, s.m, s.k, s.n, on);
    SCOPED_TRACE(::testing::Message()
                 << "m=" << s.m << " k=" << s.k << " n=" << s.n);
    ExpectNearRel(vx, sc, 1e-5f);
  }
}

TEST(GemmParityTest, GemmTransAAccAvx2MatchesScalar) {
  if (!CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this CPU";
  for (const auto& s : kShapes) {
    // a is k x m here (transposed operand).
    const auto a = RandomVec(static_cast<size_t>(s.k) * s.m, 33);
    const auto b = RandomVec(static_cast<size_t>(s.k) * s.n, 44);
    const size_t on = static_cast<size_t>(s.m) * s.n;
    const auto sc =
        RunGemm(&GemmTransAAcc, Kernel::kScalar, a, b, s.k, s.m, s.n, on);
    const auto vx =
        RunGemm(&GemmTransAAcc, Kernel::kAvx2, a, b, s.k, s.m, s.n, on);
    SCOPED_TRACE(::testing::Message()
                 << "m=" << s.m << " k=" << s.k << " n=" << s.n);
    ExpectNearRel(vx, sc, 1e-5f);
  }
}

TEST(GemmParityTest, GemmTransBAccAvx2MatchesScalar) {
  if (!CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this CPU";
  for (const auto& s : kShapes) {
    const auto a = RandomVec(static_cast<size_t>(s.m) * s.k, 55);
    // b is n x k here (transposed operand).
    const auto b = RandomVec(static_cast<size_t>(s.n) * s.k, 66);
    const size_t on = static_cast<size_t>(s.m) * s.n;
    const auto sc =
        RunGemm(&GemmTransBAcc, Kernel::kScalar, a, b, s.m, s.k, s.n, on);
    const auto vx =
        RunGemm(&GemmTransBAcc, Kernel::kAvx2, a, b, s.m, s.k, s.n, on);
    SCOPED_TRACE(::testing::Message()
                 << "m=" << s.m << " k=" << s.k << " n=" << s.n);
    ExpectNearRel(vx, sc, 1e-5f);
  }
}

TEST(GemmParityTest, GemmAccMatchesNaiveReference) {
  // The scalar kernel is the reproducibility anchor, so pin it against a
  // textbook triple loop at one awkward shape.
  const int m = 5, k = 13, n = 19;
  const auto a = RandomVec(static_cast<size_t>(m) * k, 77);
  const auto b = RandomVec(static_cast<size_t>(k) * n, 88);
  std::vector<float> ref(static_cast<size_t>(m) * n, 0.0f);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float s = 0.0f;
      for (int kk = 0; kk < k; ++kk) {
        s += a[static_cast<size_t>(i) * k + kk] *
             b[static_cast<size_t>(kk) * n + j];
      }
      ref[static_cast<size_t>(i) * n + j] = s;
    }
  }
  ScopedKernel pin(Kernel::kScalar);
  std::vector<float> out(static_cast<size_t>(m) * n, 0.0f);
  GemmAcc(a.data(), b.data(), out.data(), m, k, n);
  ExpectNearRel(out, ref, 1e-5f);
}

TEST(GemmParityTest, EachKernelIsBitwiseDeterministic) {
  const int m = 9, k = 33, n = 17;
  const auto a = RandomVec(static_cast<size_t>(m) * k, 99);
  const auto b = RandomVec(static_cast<size_t>(k) * n, 111);
  const size_t on = static_cast<size_t>(m) * n;
  for (Kernel kr : {Kernel::kScalar, Kernel::kAvx2}) {
    if (kr == Kernel::kAvx2 && !CpuSupportsAvx2()) continue;
    const auto r1 = RunGemm(&GemmAcc, kr, a, b, m, k, n, on);
    const auto r2 = RunGemm(&GemmAcc, kr, a, b, m, k, n, on);
    EXPECT_EQ(0, std::memcmp(r1.data(), r2.data(), on * sizeof(float)))
        << KernelName(kr) << " is not run-to-run bitwise stable";
  }
}

TEST(ElementwiseParityTest, FusedActivationsMatchScalar) {
  if (!CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this CPU";
  for (int n : {1, 7, 15, 16, 17, 64, 100}) {
    const auto x = RandomVec(n, 7);
    const auto b = RandomVec(n, 8);
    std::vector<float> sig_sc(n), sig_vx(n), tanh_sc(n), tanh_vx(n);
    {
      ScopedKernel pin(Kernel::kScalar);
      AddSigmoid(x.data(), b.data(), sig_sc.data(), n);
      AddTanh(x.data(), b.data(), tanh_sc.data(), n);
    }
    {
      ScopedKernel pin(Kernel::kAvx2);
      AddSigmoid(x.data(), b.data(), sig_vx.data(), n);
      AddTanh(x.data(), b.data(), tanh_vx.data(), n);
    }
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    ExpectNearRel(sig_vx, sig_sc, 1e-6f);
    ExpectNearRel(tanh_vx, tanh_sc, 1e-6f);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(sig_sc[i], SigmoidScalar(x[i] + b[i]), 1e-7f);
      EXPECT_NEAR(tanh_sc[i], std::tanh(x[i] + b[i]), 1e-6f);
    }
  }
}

TEST(ElementwiseParityTest, AccumulatorsMatchScalar) {
  if (!CpuSupportsAvx2()) GTEST_SKIP() << "no AVX2 on this CPU";
  for (int n : {1, 9, 16, 31, 200}) {
    const auto a = RandomVec(n, 3);
    const auto b = RandomVec(n, 4);
    const auto seed = RandomVec(n, 5);
    std::vector<float> had_sc = seed, had_vx = seed;
    std::vector<float> axpy_sc = seed, axpy_vx = seed;
    std::vector<float> add_sc = seed, add_vx = seed;
    {
      ScopedKernel pin(Kernel::kScalar);
      HadamardAcc(a.data(), b.data(), had_sc.data(), n);
      AxpyAcc(-1.5f, a.data(), axpy_sc.data(), n);
      AddAcc(a.data(), add_sc.data(), n);
    }
    {
      ScopedKernel pin(Kernel::kAvx2);
      HadamardAcc(a.data(), b.data(), had_vx.data(), n);
      AxpyAcc(-1.5f, a.data(), axpy_vx.data(), n);
      AddAcc(a.data(), add_vx.data(), n);
    }
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    ExpectNearRel(had_vx, had_sc, 1e-6f);
    ExpectNearRel(axpy_vx, axpy_sc, 1e-6f);
    ExpectNearRel(add_vx, add_sc, 1e-6f);
  }
}

TEST(DispatchTest, ResolveKernelSpec) {
  EXPECT_EQ(ResolveKernelSpec("scalar"), Kernel::kScalar);
  const Kernel auto_kernel =
      CpuSupportsAvx2() ? Kernel::kAvx2 : Kernel::kScalar;
  EXPECT_EQ(ResolveKernelSpec("auto"), auto_kernel);
  EXPECT_EQ(ResolveKernelSpec(""), auto_kernel);
  EXPECT_EQ(ResolveKernelSpec(nullptr), auto_kernel);
  if (CpuSupportsAvx2()) {
    EXPECT_EQ(ResolveKernelSpec("avx2"), Kernel::kAvx2);
  }
}

TEST(DispatchTest, KernelNames) {
  EXPECT_STREQ(KernelName(Kernel::kScalar), "scalar");
  EXPECT_STREQ(KernelName(Kernel::kAvx2), "avx2");
}

#if GTEST_HAS_DEATH_TEST
TEST(DispatchDeathTest, UnknownSpecIsFatal) {
  EXPECT_DEATH(ResolveKernelSpec("sse9"), "TPR_KERNEL");
}
#endif

// ---------------------------------------------------------------------------
// Fused autograd ops: forward equivalence against the unfused
// composition, and numeric gradient checks, both under each kernel.
// ---------------------------------------------------------------------------

void CheckGradient(nn::Var param, const std::function<nn::Var()>& loss_fn,
                   float tolerance = 2e-2f) {
  nn::Var loss = loss_fn();
  param.ZeroGrad();
  loss.Backward();
  nn::Tensor analytic = param.grad();
  ASSERT_FALSE(analytic.empty());

  const float eps = 1e-3f;
  nn::Tensor& value = param.mutable_value();
  for (size_t i = 0; i < value.size(); ++i) {
    const float original = value[i];
    value[i] = original + eps;
    const float up = loss_fn().scalar();
    value[i] = original - eps;
    const float down = loss_fn().scalar();
    value[i] = original;
    const float numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric,
                tolerance * std::max(1.0f, std::fabs(numeric)))
        << "at element " << i;
  }
}

nn::Var RandomLeaf(int rows, int cols, uint64_t seed) {
  auto v = RandomVec(static_cast<size_t>(rows) * cols, seed);
  return nn::Var::Leaf(nn::Tensor::FromValues(rows, cols, std::move(v)),
                       /*requires_grad=*/true);
}

std::vector<Kernel> KernelsUnderTest() {
  std::vector<Kernel> ks = {Kernel::kScalar};
  if (CpuSupportsAvx2()) ks.push_back(Kernel::kAvx2);
  return ks;
}

TEST(FusedOpTest, AffineMatchesUnfusedComposition) {
  for (Kernel k : KernelsUnderTest()) {
    ScopedKernel pin(k);
    nn::Var x = RandomLeaf(3, 5, 1);
    nn::Var w = RandomLeaf(5, 7, 2);
    nn::Var b = RandomLeaf(1, 7, 3);
    const nn::Tensor fused = nn::Affine(x, w, b).value();
    const nn::Tensor unfused = nn::AddRow(nn::MatMul(x, w), b).value();
    ASSERT_EQ(fused.size(), unfused.size());
    for (size_t i = 0; i < fused.size(); ++i) {
      EXPECT_NEAR(fused[i], unfused[i],
                  1e-5f * std::max(1.0f, std::fabs(unfused[i])))
          << KernelName(k) << " element " << i;
    }
  }
}

TEST(FusedOpTest, AffineSumMatchesUnfusedComposition) {
  for (Kernel k : KernelsUnderTest()) {
    ScopedKernel pin(k);
    nn::Var x1 = RandomLeaf(4, 6, 4);
    nn::Var w1 = RandomLeaf(6, 9, 5);
    nn::Var x2 = RandomLeaf(4, 3, 6);
    nn::Var w2 = RandomLeaf(3, 9, 7);
    nn::Var b = RandomLeaf(1, 9, 8);
    const nn::Tensor fused = nn::AffineSum(x1, w1, x2, w2, b).value();
    const nn::Tensor unfused =
        nn::AddRow(nn::Add(nn::MatMul(x1, w1), nn::MatMul(x2, w2)), b).value();
    ASSERT_EQ(fused.size(), unfused.size());
    for (size_t i = 0; i < fused.size(); ++i) {
      EXPECT_NEAR(fused[i], unfused[i],
                  1e-5f * std::max(1.0f, std::fabs(unfused[i])))
          << KernelName(k) << " element " << i;
    }
  }
}

TEST(FusedOpTest, LstmCellMatchesUnfusedComposition) {
  const int m = 3, h = 4;
  for (Kernel k : KernelsUnderTest()) {
    ScopedKernel pin(k);
    nn::Var gates = RandomLeaf(m, 4 * h, 9);
    nn::Var c_prev = RandomLeaf(m, h, 10);
    const nn::Tensor fused = nn::LstmCellOp(gates, c_prev).value();
    nn::Var i = nn::Sigmoid(nn::SliceCols(gates, 0, h));
    nn::Var f = nn::Sigmoid(nn::SliceCols(gates, h, h));
    nn::Var g = nn::Tanh(nn::SliceCols(gates, 2 * h, h));
    nn::Var o = nn::Sigmoid(nn::SliceCols(gates, 3 * h, h));
    nn::Var c = nn::Add(nn::Mul(f, c_prev), nn::Mul(i, g));
    nn::Var ht = nn::Mul(o, nn::Tanh(c));
    ASSERT_EQ(fused.rows(), m);
    ASSERT_EQ(fused.cols(), 2 * h);
    for (int r = 0; r < m; ++r) {
      for (int cidx = 0; cidx < h; ++cidx) {
        EXPECT_NEAR(fused.at(r, cidx), ht.value().at(r, cidx), 1e-5f)
            << KernelName(k) << " h at " << r << "," << cidx;
        EXPECT_NEAR(fused.at(r, h + cidx), c.value().at(r, cidx), 1e-5f)
            << KernelName(k) << " c at " << r << "," << cidx;
      }
    }
  }
}

TEST(FusedOpTest, GruCellMatchesUnfusedComposition) {
  const int m = 3, h = 4;
  for (Kernel k : KernelsUnderTest()) {
    ScopedKernel pin(k);
    nn::Var gi = RandomLeaf(m, 3 * h, 11);
    nn::Var gh = RandomLeaf(m, 3 * h, 12);
    nn::Var h_prev = RandomLeaf(m, h, 13);
    const nn::Tensor fused = nn::GruCellOp(gi, gh, h_prev).value();
    nn::Var r = nn::Sigmoid(
        nn::Add(nn::SliceCols(gi, 0, h), nn::SliceCols(gh, 0, h)));
    nn::Var z = nn::Sigmoid(
        nn::Add(nn::SliceCols(gi, h, h), nn::SliceCols(gh, h, h)));
    nn::Var n = nn::Tanh(nn::Add(nn::SliceCols(gi, 2 * h, h),
                                 nn::Mul(r, nn::SliceCols(gh, 2 * h, h))));
    nn::Var ht = nn::Add(nn::Sub(n, nn::Mul(z, n)), nn::Mul(z, h_prev));
    ASSERT_EQ(fused.size(), ht.value().size());
    for (size_t idx = 0; idx < fused.size(); ++idx) {
      EXPECT_NEAR(fused[idx], ht.value()[idx], 1e-5f)
          << KernelName(k) << " element " << idx;
    }
  }
}

TEST(FusedOpTest, AffineGradcheck) {
  for (Kernel k : KernelsUnderTest()) {
    ScopedKernel pin(k);
    nn::Var x = RandomLeaf(3, 4, 14);
    nn::Var w = RandomLeaf(4, 5, 15);
    nn::Var b = RandomLeaf(1, 5, 16);
    auto loss = [&] { return nn::Sum(nn::Tanh(nn::Affine(x, w, b))); };
    CheckGradient(x, loss);
    CheckGradient(w, loss);
    CheckGradient(b, loss);
  }
}

TEST(FusedOpTest, AffineSumGradcheck) {
  for (Kernel k : KernelsUnderTest()) {
    ScopedKernel pin(k);
    nn::Var x1 = RandomLeaf(2, 3, 17);
    nn::Var w1 = RandomLeaf(3, 4, 18);
    nn::Var x2 = RandomLeaf(2, 5, 19);
    nn::Var w2 = RandomLeaf(5, 4, 20);
    nn::Var b = RandomLeaf(1, 4, 21);
    auto loss = [&] {
      return nn::Sum(nn::Sigmoid(nn::AffineSum(x1, w1, x2, w2, b)));
    };
    CheckGradient(x1, loss);
    CheckGradient(w1, loss);
    CheckGradient(x2, loss);
    CheckGradient(w2, loss);
    CheckGradient(b, loss);
  }
}

TEST(FusedOpTest, LstmCellGradcheck) {
  const int m = 2, h = 3;
  for (Kernel k : KernelsUnderTest()) {
    ScopedKernel pin(k);
    nn::Var gates = RandomLeaf(m, 4 * h, 22);
    nn::Var c_prev = RandomLeaf(m, h, 23);
    auto loss = [&] { return nn::Sum(nn::LstmCellOp(gates, c_prev)); };
    CheckGradient(gates, loss);
    CheckGradient(c_prev, loss);
  }
}

TEST(FusedOpTest, GruCellGradcheck) {
  const int m = 2, h = 3;
  for (Kernel k : KernelsUnderTest()) {
    ScopedKernel pin(k);
    nn::Var gi = RandomLeaf(m, 3 * h, 24);
    nn::Var gh = RandomLeaf(m, 3 * h, 25);
    nn::Var h_prev = RandomLeaf(m, h, 26);
    auto loss = [&] { return nn::Sum(nn::GruCellOp(gi, gh, h_prev)); };
    CheckGradient(gi, loss);
    CheckGradient(gh, loss);
    CheckGradient(h_prev, loss);
  }
}

// The shared gradcheck.h sweep over whole modules, repeated under each
// kernel: the fused cell ops inside LstmLayer/GruLayer and the Affine
// inside Linear must keep their gradients correct on both code paths.
TEST(FusedOpTest, ModuleGradcheckSweepUnderEachKernel) {
  for (Kernel kr : KernelsUnderTest()) {
    ScopedKernel pin(kr);
    SCOPED_TRACE(KernelName(kr));
    Rng rng(40);
    {
      nn::Lstm lstm(6, 5, 2, rng);
      nn::Var x = RandomLeaf(4, 6, 41);
      testing::ExpectGradientsMatch(
          [&] { return nn::Sum(lstm.Forward(x)); }, lstm.Parameters());
    }
    {
      nn::GruLayer gru(6, 5, rng);
      nn::Var x = RandomLeaf(4, 6, 42);
      testing::ExpectGradientsMatch(
          [&] { return nn::Sum(gru.Forward(x)); }, gru.Parameters());
    }
    {
      nn::Linear linear(6, 3, rng);
      nn::Var x = RandomLeaf(4, 6, 43);
      testing::ExpectGradientsMatch(
          [&] { return nn::Sum(nn::Tanh(linear.Forward(x))); },
          linear.Parameters());
    }
  }
}

// ---------------------------------------------------------------------------
// Arena allocator.
// ---------------------------------------------------------------------------

TEST(ArenaTest, BucketRounding) {
  EXPECT_EQ(ArenaBucketBytes(1), 64u);
  EXPECT_EQ(ArenaBucketBytes(64), 64u);
  EXPECT_EQ(ArenaBucketBytes(65), 128u);
  EXPECT_EQ(ArenaBucketBytes(1000), 1024u);
  EXPECT_EQ(ArenaBucketBytes(1024), 1024u);
  EXPECT_EQ(ArenaBucketBytes(1025), 2048u);
}

TEST(ArenaTest, FreeListReuseSameBlock) {
  constexpr size_t kBytes = 4096;
  void* p1 = ArenaAlloc(kBytes);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p1) % 64, 0u) << "not 64-byte aligned";
  ArenaFree(p1, kBytes);
  const ArenaStats before = ThreadArenaStats();
  void* p2 = ArenaAlloc(kBytes);
  EXPECT_EQ(p2, p1) << "freed block was not recycled";
  const ArenaStats after = ThreadArenaStats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.alloc_bytes, before.alloc_bytes)
      << "recycled alloc fetched fresh system bytes";
  ArenaFree(p2, kBytes);
}

TEST(ArenaTest, ZeroByteAllocIsNull) {
  EXPECT_EQ(ArenaAlloc(0), nullptr);
  ArenaFree(nullptr, 0);  // must be a no-op
}

TEST(ArenaTest, TrimReleasesCachedBlocks) {
  // Park a distinctive block, then trim: the cached bytes must drop and
  // the next allocation of that size must miss again.
  constexpr size_t kBytes = 1u << 20;
  ArenaFree(ArenaAlloc(kBytes), kBytes);
  const ArenaStats cached = ThreadArenaStats();
  EXPECT_GE(cached.cached_bytes, kBytes);
  const uint64_t released = TrimThreadArena();
  EXPECT_GE(released, kBytes);
  const ArenaStats after = ThreadArenaStats();
  EXPECT_EQ(after.cached_bytes, 0u);
  EXPECT_EQ(after.cached_blocks, 0u);
  const uint64_t misses_before = after.misses;
  ArenaFree(ArenaAlloc(kBytes), kBytes);
  EXPECT_EQ(ThreadArenaStats().misses, misses_before + 1);
}

TEST(ArenaTest, ManyCyclesStayInFreeList) {
  TrimThreadArena();
  const ArenaStats start = ThreadArenaStats();
  for (int i = 0; i < 1000; ++i) {
    void* p = ArenaAlloc(512);
    ArenaFree(p, 512);
  }
  const ArenaStats end = ThreadArenaStats();
  // First cycle misses, the other 999 hit the free list.
  EXPECT_EQ(end.misses, start.misses + 1);
  EXPECT_EQ(end.hits, start.hits + 999);
}

TEST(ArenaTest, PerThreadIsolationUnderPool) {
  // Each pool thread allocates from its own arena: the total hit+miss
  // delta across threads must equal the per-thread work, with no
  // cross-thread double counting.
  par::ThreadPool pool(3);
  constexpr size_t kBytes = 3u << 16;
  std::atomic<uint64_t> events{0};
  pool.RunOnAllWorkers([&](int) {
    const ArenaStats before = ThreadArenaStats();
    void* p = ArenaAlloc(kBytes);
    ASSERT_NE(p, nullptr);
    ArenaFree(p, kBytes);
    const ArenaStats after = ThreadArenaStats();
    EXPECT_GE(after.cached_bytes, ArenaBucketBytes(kBytes));
    events += (after.hits + after.misses) - (before.hits + before.misses);
  });
  EXPECT_EQ(events.load(), 3u);
}

TEST(ArenaTest, CrossThreadFreeTransfersOwnership) {
  par::ThreadPool pool(2);
  constexpr size_t kBytes = 5u << 16;  // rounds to a 512 KiB bucket
  void* p = ArenaAlloc(kBytes);
  ASSERT_NE(p, nullptr);
  // The background worker frees a block allocated here; ownership must
  // land on ITS free lists, not this thread's.
  uint64_t worker_cached_delta = 0;
  pool.Submit([&] {
      const uint64_t before = ThreadArenaStats().cached_bytes;
      ArenaFree(p, kBytes);
      worker_cached_delta = ThreadArenaStats().cached_bytes - before;
    }).get();
  EXPECT_GE(worker_cached_delta, ArenaBucketBytes(kBytes));
}

TEST(ArenaTest, SteadyStateTrainingStepAllocatesNothing) {
  // The tentpole claim: after warmup, a fixed-shape forward/backward
  // step is served entirely from the free lists — zero fresh bytes from
  // the system allocator. Single-threaded so ThreadArenaStats covers the
  // whole graph.
  nn::Var w1 = RandomLeaf(16, 32, 30);
  nn::Var b1 = RandomLeaf(1, 32, 31);
  nn::Var w2 = RandomLeaf(32, 8, 32);
  nn::Var b2 = RandomLeaf(1, 8, 33);
  nn::Var x = RandomLeaf(4, 16, 34);
  auto step = [&] {
    nn::Var h = nn::Tanh(nn::Affine(x, w1, b1));
    nn::Var loss = nn::Sum(nn::Sigmoid(nn::Affine(h, w2, b2)));
    w1.ZeroGrad();
    b1.ZeroGrad();
    w2.ZeroGrad();
    b2.ZeroGrad();
    loss.Backward();
  };
  for (int i = 0; i < 5; ++i) step();  // warm the free lists
  const uint64_t alloc_before = ThreadArenaStats().alloc_bytes;
  const uint64_t hits_before = ThreadArenaStats().hits;
  for (int i = 0; i < 20; ++i) step();
  const ArenaStats after = ThreadArenaStats();
  EXPECT_EQ(after.alloc_bytes, alloc_before)
      << "steady-state step fetched fresh bytes from the system";
  EXPECT_GT(after.hits, hits_before) << "steady-state step bypassed the arena";
}

TEST(ArenaTest, FloatBufferValueSemantics) {
  FloatBuffer a(8);
  for (size_t i = 0; i < 8; ++i) a[i] = static_cast<float>(i);
  FloatBuffer b = a;  // deep copy
  b[0] = 42.0f;
  EXPECT_FLOAT_EQ(a[0], 0.0f);
  FloatBuffer c = std::move(a);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): testing move
  EXPECT_EQ(c.size(), 8u);
  EXPECT_FLOAT_EQ(c[7], 7.0f);
  FloatBuffer empty;
  empty.Fill(1.0f);  // no-op on empty, must not crash
  EXPECT_TRUE(empty.empty());
}

TEST(ArenaTest, ArenaFnInlineAndHeapCaptures) {
  // Small capture: stored inline.
  int small = 7;
  ArenaFn<int()> f1 = [small] { return small + 1; };
  EXPECT_TRUE(static_cast<bool>(f1));
  EXPECT_EQ(f1(), 8);

  // Oversized capture: spills to the arena and still survives moves.
  struct Big {
    float payload[128];
  } big{};
  big.payload[0] = 2.5f;
  big.payload[127] = 4.5f;
  ArenaFn<float()> f2 = [big] { return big.payload[0] + big.payload[127]; };
  ArenaFn<float()> f3 = std::move(f2);
  EXPECT_FALSE(static_cast<bool>(f2));  // NOLINT(bugprone-use-after-move)
  EXPECT_FLOAT_EQ(f3(), 7.0f);

  ArenaFn<int()> moved = std::move(f1);
  EXPECT_EQ(moved(), 8);
}

}  // namespace
}  // namespace tpr::kern
