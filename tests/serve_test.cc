#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/features.h"
#include "fault/fault.h"
#include "nn/autograd.h"
#include "obs/metrics.h"
#include "quant/quant.h"
#include "serve/lru_cache.h"
#include "serve/service.h"
#include "synth/presets.h"
#include "util/rng.h"

namespace tpr::serve {
namespace {

using core::FeatureSpace;
using core::TemporalPathEncoder;

std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "tpr_serve_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Deterministically nudges every parameter so two encoders built from
/// the same features/config stop being bitwise-identical.
void PerturbParameters(core::TemporalPathEncoder& encoder, float scale,
                       uint64_t seed) {
  Rng rng(seed);
  for (nn::Var p : encoder.Parameters()) {
    if (!p.defined()) continue;
    nn::Tensor& t = p.mutable_value();
    float* d = t.data();
    for (size_t i = 0; i < t.size(); ++i) {
      d[i] += scale * (2.0f * static_cast<float>(rng.Uniform()) - 1.0f);
    }
  }
}

// ---------------------------------------------------------------------------
// LRU cache.
// ---------------------------------------------------------------------------

TEST(EmbeddingLruCacheTest, EvictsLeastRecentlyUsed) {
  EmbeddingLruCache cache(2);
  cache.Put("a", {1.0f});
  cache.Put("b", {2.0f});
  ASSERT_TRUE(cache.Get("a").has_value());  // refresh "a"
  cache.Put("c", {3.0f});                   // evicts "b"
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("a").has_value());
}

TEST(EmbeddingLruCacheTest, ZeroCapacityDisablesCaching) {
  EmbeddingLruCache cache(0);
  cache.Put("a", {1.0f});
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// Service fixture on a tiny city.
// ---------------------------------------------------------------------------

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto preset = synth::AalborgPreset();
    synth::ScaleDataset(preset, 0.1);
    auto ds = synth::BuildPresetDataset(preset);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    data_ = new std::shared_ptr<synth::CityDataset>(
        std::make_shared<synth::CityDataset>(std::move(*ds)));
    core::FeatureConfig fc;
    fc.temporal_graph.slots_per_day = 48;
    fc.node2vec.walks_per_node = 2;
    fc.node2vec.epochs = 1;
    auto fs = core::BuildFeatureSpace(*data_, fc);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    features_ = new std::shared_ptr<const FeatureSpace>(
        std::make_shared<const FeatureSpace>(std::move(*fs)));
  }

  // Freed so the suite is LeakSanitizer-clean (CI runs it under ASan).
  static void TearDownTestSuite() {
    delete features_;
    features_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  void SetUp() override {
    fault::ClearPlan();
    obs::SetMetricsEnabled(true);
    obs::ResetAllMetrics();
  }
  void TearDown() override {
    fault::ClearPlan();
    obs::SetMetricsEnabled(false);
  }

  static core::EncoderConfig TinyEncoder() {
    core::EncoderConfig cfg;
    cfg.d_hidden = 16;
    cfg.projection_dim = 8;
    return cfg;
  }

  static ServiceConfig TinyService() {
    ServiceConfig cfg;
    cfg.num_workers = 2;
    cfg.queue_capacity = 64;
    cfg.block_when_full = true;
    cfg.max_retries = 2;
    cfg.backoff_base_ms = 0.01;
    cfg.backoff_max_ms = 0.05;
    cfg.breaker_trip_threshold = 5;
    cfg.breaker_open_requests = 4;
    cfg.cache_capacity = 256;
    cfg.time_bucket_s = 600;
    return cfg;
  }

  static void Install(const std::string& spec) {
    auto plan = fault::FaultPlan::Parse(spec);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    fault::InstallPlan(*std::move(plan));
  }

  PathQuery Query(int sample, uint64_t id, int64_t time_shift = 0) {
    const auto& s =
        (*data_)->unlabeled[static_cast<size_t>(sample) %
                            (*data_)->unlabeled.size()];
    PathQuery q;
    q.path = s.path;
    q.depart_time_s = s.depart_time_s + time_shift;
    q.id = id;
    return q;
  }

  std::shared_ptr<const FeatureSpace> features() { return *features_; }

  /// Int8 twin of `encoder`, calibrated over a few dataset paths — the
  /// same artifact tpr::rollout publishes beside a candidate.
  std::shared_ptr<const quant::QuantizedEncoder> MakeTwin(
      const TemporalPathEncoder& encoder, uint64_t generation) {
    std::vector<core::PathTimeItem> calibration;
    const auto& samples = (*data_)->unlabeled;
    for (size_t i = 0; i < 8 && i < samples.size(); ++i) {
      calibration.push_back({&samples[i].path, samples[i].depart_time_s});
    }
    auto model = quant::QuantizeEncoder(encoder, calibration);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    if (!model.ok()) return nullptr;
    model->generation = generation;
    return std::make_shared<const quant::QuantizedEncoder>(
        features(), *std::move(model));
  }

  static std::shared_ptr<synth::CityDataset>* data_;
  static std::shared_ptr<const FeatureSpace>* features_;
};

std::shared_ptr<synth::CityDataset>* ServeTest::data_ = nullptr;
std::shared_ptr<const FeatureSpace>* ServeTest::features_ = nullptr;

// ---------------------------------------------------------------------------
// Basic serving.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, StartRequiresAModel) {
  InferenceService svc(features(), TinyEncoder(), TinyService());
  EXPECT_EQ(svc.Start().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(svc.SubmitAndWait(Query(0, 1)).status.code(),
            StatusCode::kUnavailable);

  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  EXPECT_EQ(svc.Start().code(), StatusCode::kFailedPrecondition);
  svc.Shutdown();
  EXPECT_EQ(svc.SubmitAndWait(Query(0, 2)).status.code(),
            StatusCode::kUnavailable);
}

TEST_F(ServeTest, FullRungMatchesTheEncoderExactly) {
  auto encoder =
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  InferenceService svc(features(), TinyEncoder(), TinyService());
  svc.InstallModel(encoder, 1);
  ASSERT_TRUE(svc.Start().ok());

  const PathQuery q = Query(0, 42);
  ServeResult r = svc.SubmitAndWait(q);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.rung, Rung::kFull);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(r.embedding, encoder->EncodeValue(q.path, q.depart_time_s));
  EXPECT_EQ(static_cast<int>(r.embedding.size()), svc.representation_dim());
}

TEST_F(ServeTest, CancellableEncodeMatchesAndHonoursCancellation) {
  TemporalPathEncoder encoder(features(), TinyEncoder());
  const PathQuery q = Query(0, 1);
  auto full = encoder.EncodeValueCancellable(q.path, q.depart_time_s,
                                             [] { return false; });
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, encoder.EncodeValue(q.path, q.depart_time_s));
  EXPECT_FALSE(encoder
                   .EncodeValueCancellable(q.path, q.depart_time_s,
                                           [] { return true; })
                   .has_value());
}

// ---------------------------------------------------------------------------
// Model lifecycle through the checkpoint layer.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, LoadModelKeepsServingTheOldGenerationOnFailure) {
  const std::string dir_a = ScratchDir("gen_a");
  const std::string dir_b = ScratchDir("gen_b");
  TemporalPathEncoder encoder(features(), TinyEncoder());
  ASSERT_TRUE(InferenceService::SaveModel(encoder, dir_a, 3).ok());
  ASSERT_TRUE(InferenceService::SaveModel(encoder, dir_b, 4).ok());

  InferenceService svc(features(), TinyEncoder(), TinyService());
  ASSERT_TRUE(svc.LoadModel(dir_a).ok());
  EXPECT_EQ(svc.model_generation(), 3u);
  ASSERT_TRUE(svc.Start().ok());

  const PathQuery q = Query(0, 7);
  EXPECT_EQ(svc.SubmitAndWait(q).embedding,
            encoder.EncodeValue(q.path, q.depart_time_s));

  // A dead checkpoint store must not dislodge the installed model.
  Install("ckpt-read:after=0");
  EXPECT_FALSE(svc.LoadModel(dir_b).ok());
  EXPECT_EQ(svc.model_generation(), 3u);
  ServeResult still = svc.SubmitAndWait(Query(0, 8));
  ASSERT_TRUE(still.status.ok());
  EXPECT_EQ(still.rung, Rung::kFull);

  fault::ClearPlan();
  ASSERT_TRUE(svc.LoadModel(dir_b).ok());
  EXPECT_EQ(svc.model_generation(), 4u);
}

TEST_F(ServeTest, LoadModelRejectsMismatchedRepresentationDim) {
  const std::string dir = ScratchDir("wrong_dim");
  core::EncoderConfig wide = TinyEncoder();
  wide.d_hidden = 8;
  TemporalPathEncoder encoder(features(), wide);
  ASSERT_TRUE(InferenceService::SaveModel(encoder, dir, 1).ok());

  InferenceService svc(features(), TinyEncoder(), TinyService());
  EXPECT_EQ(svc.LoadModel(dir).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(svc.model_generation(), 0u);
}

// ---------------------------------------------------------------------------
// Degradation ladder under injected faults.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, AllocFaultDegradesToTheCacheRung) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("alloc:p=1");  // rung 0 is never attempted

  ServeResult first = svc.SubmitAndWait(Query(0, 100));
  ASSERT_TRUE(first.status.ok());
  EXPECT_EQ(first.rung, Rung::kCached);
  EXPECT_EQ(first.attempts, 0);

  // Same (path, bucket), different request: a cache hit with identical
  // bytes — hit vs recompute is invisible in the result.
  ServeResult second = svc.SubmitAndWait(Query(0, 101));
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.rung, Rung::kCached);
  EXPECT_EQ(second.embedding, first.embedding);
  EXPECT_EQ(obs::GetCounter("serve.cache_hits").value(), 1u);
  EXPECT_EQ(obs::GetCounter("serve.cache_misses").value(), 1u);
}

TEST_F(ServeTest, TotalEncoderOutageDegradesToTheFallbackRung) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  cfg.breaker_trip_threshold = 1000;  // keep rung 0 reachable throughout
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("encoder-forward:p=1");

  ServeResult r = svc.SubmitAndWait(Query(1, 200));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rung, Rung::kFallback);
  EXPECT_EQ(r.attempts, 1 + cfg.max_retries);
  EXPECT_EQ(static_cast<int>(r.embedding.size()), svc.representation_dim());
  // The fallback is pure arithmetic over frozen node2vec vectors.
  EXPECT_EQ(svc.SubmitAndWait(Query(1, 201)).embedding, r.embedding);
  EXPECT_GE(obs::GetCounter("serve.retries").value(),
            static_cast<uint64_t>(cfg.max_retries));
}

TEST_F(ServeTest, RetryRecoversFromATransientForwardFault) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  cfg.breaker_trip_threshold = 1000;
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("encoder-forward:p=0.5,seed=9");

  // Find a request id whose first attempt fails and second succeeds —
  // WouldFail is the pure lookahead of the worker's verdicts.
  uint64_t id = 0;
  bool found = false;
  for (uint64_t k = 1; k < 4096 && !found; ++k) {
    if (fault::WouldFail(fault::kEncoderForward, MixSeed(k, 0)) &&
        !fault::WouldFail(fault::kEncoderForward, MixSeed(k, 1))) {
      id = k;
      found = true;
    }
  }
  ASSERT_TRUE(found);

  ServeResult r = svc.SubmitAndWait(Query(2, id));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rung, Rung::kFull);
  EXPECT_EQ(r.attempts, 2);
}

TEST_F(ServeTest, EveryRungIsReachableUnderAProbabilisticOutage) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  cfg.breaker_trip_threshold = 1000;
  cfg.cache_capacity = 4;  // force recomputes too
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("encoder-forward:p=0.6,seed=5");

  int rung_count[4] = {0, 0, 0, 0};
  for (int i = 0; i < 200; ++i) {
    ServeResult r = svc.SubmitAndWait(
        Query(i % 17, 1000 + static_cast<uint64_t>(i), (i % 5) * 700));
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    rung_count[static_cast<int>(r.rung)] += 1;
  }
  EXPECT_GT(rung_count[0], 0) << "full rung never reached";
  EXPECT_EQ(rung_count[1], 0) << "no twin installed, yet the quant rung hit";
  EXPECT_GT(rung_count[2], 0) << "cached rung never reached";
  EXPECT_GT(rung_count[3], 0) << "fallback rung never reached";
  EXPECT_GT(obs::GetCounter("serve.retries").value(), 0u);
}

// ---------------------------------------------------------------------------
// Quantized rung (rung 1).
// ---------------------------------------------------------------------------

TEST_F(ServeTest, QuantRungServesUnderAFullEncoderOutage) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  cfg.breaker_trip_threshold = 1000;
  auto encoder =
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  auto twin = MakeTwin(*encoder, 1);
  ASSERT_NE(twin, nullptr);
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(encoder, 1, twin);
  ASSERT_TRUE(svc.Start().ok());
  Install("encoder-forward:p=1");

  // The fp32 rung exhausts its retries, then the int8 twin answers at
  // the EXACT request time — not the cache's bucket-representative time.
  const PathQuery q = Query(0, 300, /*time_shift=*/7);
  ServeResult r = svc.SubmitAndWait(q);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.rung, Rung::kQuantized);
  EXPECT_EQ(r.attempts, 1 + cfg.max_retries);
  EXPECT_EQ(r.generation, 1u);
  EXPECT_EQ(r.embedding, twin->EncodeValue(q.path, q.depart_time_s));
  EXPECT_EQ(static_cast<int>(r.embedding.size()), svc.representation_dim());
  EXPECT_EQ(obs::GetCounter("serve.quant_hits").value(), 1u);
}

TEST_F(ServeTest, QuantEncodeFaultDegradesPastTheQuantRung) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  cfg.breaker_trip_threshold = 1000;
  auto encoder =
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  auto twin = MakeTwin(*encoder, 1);
  ASSERT_NE(twin, nullptr);
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(encoder, 1, twin);
  ASSERT_TRUE(svc.Start().ok());
  // alloc skips rung 0 entirely (the cache rung stays computable); the
  // injected quant-encode fault must push the ladder past the twin.
  Install("alloc:p=1;quant-encode:p=1");

  ServeResult r = svc.SubmitAndWait(Query(0, 301));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rung, Rung::kCached);
  EXPECT_EQ(obs::GetCounter("serve.quant_hits").value(), 0u);
  // Quantized failures are never breaker signals.
  EXPECT_EQ(obs::GetCounter("serve.breaker_trips").value(), 0u);
}

TEST_F(ServeTest, TprQuantEnvDisablesTheQuantRung) {
  ::setenv("TPR_QUANT", "0", 1);
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  cfg.breaker_trip_threshold = 1000;
  auto encoder =
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  auto twin = MakeTwin(*encoder, 1);
  ASSERT_NE(twin, nullptr);
  // The ctor snapshots TPR_QUANT; even an explicitly installed twin must
  // not serve.
  InferenceService svc(features(), TinyEncoder(), cfg);
  ::unsetenv("TPR_QUANT");
  svc.InstallModel(encoder, 1, twin);
  ASSERT_TRUE(svc.Start().ok());
  Install("alloc:p=1");

  ServeResult r = svc.SubmitAndWait(Query(0, 302));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rung, Rung::kCached);
  EXPECT_EQ(obs::GetCounter("serve.quant_hits").value(), 0u);
}

TEST_F(ServeTest, LoadModelAutoLoadsTheQuantTwinArtifact) {
  const std::string dir = ScratchDir("quant_twin");
  TemporalPathEncoder encoder(features(), TinyEncoder());
  ASSERT_TRUE(InferenceService::SaveModel(encoder, dir, 5).ok());
  auto twin = MakeTwin(encoder, 5);
  ASSERT_NE(twin, nullptr);
  ASSERT_TRUE(quant::SaveQuantizedModel(dir, twin->model(), 5).ok());

  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  cfg.breaker_trip_threshold = 1000;
  InferenceService svc(features(), TinyEncoder(), cfg);
  ASSERT_TRUE(svc.LoadModel(dir).ok());
  ASSERT_TRUE(svc.Start().ok());
  Install("encoder-forward:p=1");

  const PathQuery q = Query(0, 303);
  ServeResult r = svc.SubmitAndWait(q);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rung, Rung::kQuantized);
  EXPECT_EQ(r.generation, 5u);
  EXPECT_EQ(r.embedding, twin->EncodeValue(q.path, q.depart_time_s));
}

TEST_F(ServeTest, LoadModelWithoutAnArtifactKeepsTheOldLadder) {
  const std::string dir = ScratchDir("no_twin");
  TemporalPathEncoder encoder(features(), TinyEncoder());
  ASSERT_TRUE(InferenceService::SaveModel(encoder, dir, 6).ok());

  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  cfg.breaker_trip_threshold = 1000;
  InferenceService svc(features(), TinyEncoder(), cfg);
  ASSERT_TRUE(svc.LoadModel(dir).ok());  // a missing twin is not an error
  ASSERT_TRUE(svc.Start().ok());
  Install("alloc:p=1");

  ServeResult r = svc.SubmitAndWait(Query(0, 304));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rung, Rung::kCached);
  EXPECT_EQ(obs::GetCounter("serve.quant_twin_load_failures").value(), 0u);
}

TEST_F(ServeTest, InjectedQueueFullShedsAtAdmission) {
  InferenceService svc(features(), TinyEncoder(), TinyService());
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("queue-full:p=1");
  ServeResult r = svc.SubmitAndWait(Query(0, 1));
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(obs::GetCounter("serve.shed").value(), 1u);

  fault::ClearPlan();
  EXPECT_TRUE(svc.SubmitAndWait(Query(0, 2)).status.ok());
}

TEST_F(ServeTest, DeadlineExceededUnderInjectedSlowness) {
  InferenceService svc(features(), TinyEncoder(), TinyService());
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("slow-worker:delay_ms=50");
  ServeResult r = svc.SubmitAndWait(Query(0, 1), /*deadline_ms=*/2);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(obs::GetCounter("serve.deadline_exceeded").value(), 1u);

  // Without the injected slowness the same deadline is comfortable.
  fault::ClearPlan();
  EXPECT_TRUE(svc.SubmitAndWait(Query(0, 2), /*deadline_ms=*/5000).status.ok());
}

TEST_F(ServeTest, ShutdownResolvesEveryQueuedRequest) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("slow-worker:delay_ms=20");

  std::vector<std::future<ServeResult>> futures;
  for (uint64_t i = 0; i < 8; ++i) {
    auto submitted = svc.Submit(Query(0, i));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  svc.Shutdown();
  int unavailable = 0;
  for (auto& f : futures) {
    ServeResult r = f.get();  // every promise must resolve — no hangs
    EXPECT_TRUE(r.status.ok() ||
                r.status.code() == StatusCode::kUnavailable)
        << r.status.ToString();
    unavailable += r.status.code() == StatusCode::kUnavailable ? 1 : 0;
  }
  EXPECT_GT(unavailable, 0) << "shutdown drained nothing";
}

// ---------------------------------------------------------------------------
// Circuit breaker.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, BreakerTripsUnderOutageAndReclosesAfterRecovery) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  cfg.max_retries = 0;
  cfg.breaker_trip_threshold = 3;
  cfg.breaker_open_requests = 2;
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());

  // Total outage, folded predictively in admission order: requests 1-3
  // trip the breaker, 4-5 are skipped straight past rung 0, and the
  // half-open probe (6) fails and reopens it.
  Install("encoder-forward:p=1");
  uint64_t id = 0;
  for (int i = 0; i < 3; ++i) {
    ServeResult r = svc.SubmitAndWait(Query(0, ++id));
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.rung, Rung::kFallback);
    EXPECT_EQ(r.attempts, 1);
  }
  EXPECT_EQ(obs::GetCounter("serve.breaker_trips").value(), 1u);
  for (int i = 0; i < 2; ++i) {
    ServeResult r = svc.SubmitAndWait(Query(0, ++id));
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.attempts, 0) << "open breaker must skip rung 0";
  }
  EXPECT_EQ(obs::GetCounter("serve.breaker_open_skips").value(), 2u);
  ServeResult probe = svc.SubmitAndWait(Query(0, ++id));
  ASSERT_TRUE(probe.status.ok());
  EXPECT_EQ(probe.attempts, 1);  // the probe goes back into rung 0
  EXPECT_EQ(probe.rung, Rung::kFallback);
  EXPECT_EQ(obs::GetCounter("serve.breaker_trips").value(), 2u);

  // The outage ends (observed mode: no plan). The still-open breaker
  // keeps skipping rung 0 for its window, then a successful probe
  // re-closes it and traffic returns to the full encoder.
  fault::ClearPlan();
  for (int i = 0; i < 2; ++i) {
    ServeResult r = svc.SubmitAndWait(Query(0, ++id));
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.attempts, 0);
  }
  ServeResult recovery_probe = svc.SubmitAndWait(Query(0, ++id));
  ASSERT_TRUE(recovery_probe.status.ok());
  EXPECT_EQ(recovery_probe.rung, Rung::kFull);
  ServeResult after = svc.SubmitAndWait(Query(0, ++id));
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.rung, Rung::kFull);
  EXPECT_EQ(obs::GetCounter("serve.breaker_open_skips").value(), 4u);
}

// ---------------------------------------------------------------------------
// Install/swap contract: every install is a fresh generation slot.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, InstallModelAlwaysResetsTheRungOneCache) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  auto encoder =
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(encoder, 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("alloc:p=1");  // every request lands on the cache rung

  ASSERT_TRUE(svc.SubmitAndWait(Query(0, 100)).status.ok());  // miss
  ASSERT_TRUE(svc.SubmitAndWait(Query(0, 101)).status.ok());  // hit
  EXPECT_EQ(obs::GetCounter("serve.cache_hits").value(), 1u);
  EXPECT_EQ(obs::GetCounter("serve.cache_misses").value(), 1u);

  // Re-installing — even the SAME generation number — must start from an
  // empty cache: the installed parameters may differ, and stale entries
  // would serve the old model's embeddings.
  svc.InstallModel(encoder, 1);
  ServeResult r = svc.SubmitAndWait(Query(0, 102));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rung, Rung::kCached);
  EXPECT_EQ(obs::GetCounter("serve.cache_hits").value(), 1u);
  EXPECT_EQ(obs::GetCounter("serve.cache_misses").value(), 2u)
      << "InstallModel served a stale cache entry";
}

TEST_F(ServeTest, InstallModelAlwaysResetsTheBreaker) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  cfg.max_retries = 0;
  cfg.breaker_trip_threshold = 2;
  cfg.breaker_open_requests = 8;
  auto encoder =
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(encoder, 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("encoder-forward:p=1");

  for (uint64_t id = 1; id <= 2; ++id) {
    EXPECT_EQ(svc.SubmitAndWait(Query(0, id)).attempts, 1);
  }
  EXPECT_EQ(obs::GetCounter("serve.breaker_trips").value(), 1u);
  EXPECT_EQ(svc.SubmitAndWait(Query(0, 3)).attempts, 0) << "breaker not open";

  // Same generation number again: the breaker must still reset — its
  // failure history described the previous install.
  svc.InstallModel(encoder, 1);
  EXPECT_EQ(svc.SubmitAndWait(Query(0, 4)).attempts, 1)
      << "InstallModel kept the tripped breaker";
  EXPECT_EQ(obs::GetCounter("serve.breaker_open_skips").value(), 1u);
}

TEST_F(ServeTest, LoadModelUnderLiveTrafficServesExactlyOneGeneration) {
  const std::string dir_a = ScratchDir("swap_a");
  const std::string dir_b = ScratchDir("swap_b");
  auto enc3 = std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  auto enc4 = std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  PerturbParameters(*enc4, 0.05f, 99);
  ASSERT_TRUE(InferenceService::SaveModel(*enc3, dir_a, 3).ok());
  ASSERT_TRUE(InferenceService::SaveModel(*enc4, dir_b, 4).ok());

  const PathQuery base = Query(0, 0);
  const std::vector<float> e3 = enc3->EncodeValue(base.path, base.depart_time_s);
  const std::vector<float> e4 = enc4->EncodeValue(base.path, base.depart_time_s);
  ASSERT_NE(e3, e4);

  InferenceService svc(features(), TinyEncoder(), TinyService());
  ASSERT_TRUE(svc.LoadModel(dir_a).ok());
  ASSERT_TRUE(svc.Start().ok());

  // Full-rate traffic on one thread while the model swaps under it: every
  // result must be the exact embedding of the generation it reports —
  // never a torn read or a mix of parameters.
  std::atomic<bool> stop{false};
  std::atomic<int> served[2] = {{0}, {0}};
  std::thread traffic([&] {
    uint64_t id = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      PathQuery q = base;
      q.id = id++;
      ServeResult r = svc.SubmitAndWait(q);
      if (!r.status.ok()) continue;
      EXPECT_EQ(r.rung, Rung::kFull);
      if (r.generation == 3) {
        EXPECT_EQ(r.embedding, e3);
        served[0].fetch_add(1);
      } else if (r.generation == 4) {
        EXPECT_EQ(r.embedding, e4);
        served[1].fetch_add(1);
      } else {
        ADD_FAILURE() << "request served by unknown generation "
                      << r.generation;
      }
    }
  });
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(svc.LoadModel((i % 2) != 0 ? dir_b : dir_a).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  traffic.join();
  svc.Shutdown();
  EXPECT_GT(served[0].load() + served[1].load(), 0);
}

// ---------------------------------------------------------------------------
// Shutdown under backpressure.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, ShutdownWakesAndShedsBlockedSubmitters) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  cfg.queue_capacity = 1;
  cfg.block_when_full = true;
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("slow-worker:delay_ms=500");

  // One request occupies the worker, one fills the queue, and two
  // submitter threads block on the full queue.
  auto busy = svc.Submit(Query(0, 1));
  ASSERT_TRUE(busy.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto queued = svc.Submit(Query(0, 2));
  ASSERT_TRUE(queued.ok());

  std::atomic<int> shed{0};
  std::vector<std::thread> submitters;
  for (int i = 0; i < 2; ++i) {
    submitters.emplace_back([&svc, &shed, this, i] {
      auto blocked = svc.Submit(Query(0, 10 + static_cast<uint64_t>(i)));
      if (!blocked.ok()) {
        EXPECT_EQ(blocked.status().code(), StatusCode::kUnavailable);
        shed.fetch_add(1);
      } else {
        ServeResult r = blocked->get();
        EXPECT_TRUE(r.status.ok() ||
                    r.status.code() == StatusCode::kUnavailable);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Shutdown must wake both blocked submitters (they shed Unavailable
  // instead of deadlocking on not_full_) and resolve the orphaned
  // queued request.
  svc.Shutdown();
  for (auto& t : submitters) t.join();
  EXPECT_EQ(shed.load(), 2);
  EXPECT_TRUE(busy->get().status.ok());
  EXPECT_EQ(queued->get().status.code(), StatusCode::kUnavailable);
}

TEST_F(ServeTest, ConcurrentShutdownJoinsWorkersExactlyOnce) {
  InferenceService svc(features(), TinyEncoder(), TinyService());
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  for (uint64_t i = 0; i < 16; ++i) {
    (void)svc.Submit(Query(static_cast<int>(i), i));
  }
  // Racing Shutdown calls (plus the destructor's) must each claim a
  // disjoint set of worker threads — a double-join aborts the process.
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 3; ++i) {
    stoppers.emplace_back([&svc] { svc.Shutdown(); });
  }
  for (auto& t : stoppers) t.join();
}

// ---------------------------------------------------------------------------
// Canary lifecycle.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, CanaryPromotesAfterCleanTraffic) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  cfg.canary_permille = 1000;  // route everything for the unit test
  cfg.canary_promote_after = 5;
  auto incumbent =
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  auto candidate =
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  PerturbParameters(*candidate, 0.05f, 7);
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(incumbent, 1);
  ASSERT_TRUE(svc.Start().ok());
  ASSERT_TRUE(svc.BeginCanary(candidate, 2).ok());
  EXPECT_EQ(svc.BeginCanary(candidate, 3).code(),
            StatusCode::kFailedPrecondition)
      << "only one canary may be in flight";
  EXPECT_EQ(svc.model_generation(), 1u);

  for (uint64_t id = 1; id <= 5; ++id) {
    const PathQuery q = Query(0, id);
    ServeResult r = svc.SubmitAndWait(q);
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.generation, 2u);
    EXPECT_TRUE(r.canary);
    EXPECT_EQ(r.embedding, candidate->EncodeValue(q.path, q.depart_time_s));
  }
  EXPECT_EQ(svc.model_generation(), 2u) << "canary did not promote";
  EXPECT_FALSE(svc.canary_status().installed);
  auto res = svc.TakeCanaryResolution();
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->verdict, CanaryVerdict::kPromoted);
  EXPECT_EQ(res->generation, 2u);
  EXPECT_EQ(res->routed, 5u);
  EXPECT_EQ(res->clean, 5u);
  EXPECT_EQ(res->reason, "clean-requests");
  EXPECT_FALSE(svc.TakeCanaryResolution().has_value());

  // Post-promotion traffic is incumbent traffic on the new generation.
  ServeResult after = svc.SubmitAndWait(Query(0, 99));
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.generation, 2u);
  EXPECT_FALSE(after.canary);
}

TEST_F(ServeTest, CanaryRollsBackOnInjectedRegressionWithoutHurtingTraffic) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  cfg.canary_permille = 1000;
  auto incumbent =
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  auto candidate =
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  PerturbParameters(*candidate, 0.05f, 11);
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(incumbent, 1);
  ASSERT_TRUE(svc.Start().ok());
  ASSERT_TRUE(svc.BeginCanary(candidate, 2).ok());
  Install("canary-regression:p=1");

  // The first routed request detects the regression at admission; it is
  // re-pinned to the incumbent and gets a first-class answer.
  const PathQuery q = Query(0, 1);
  ServeResult r = svc.SubmitAndWait(q);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.generation, 1u);
  EXPECT_FALSE(r.canary);
  EXPECT_EQ(r.rung, Rung::kFull);
  EXPECT_EQ(r.embedding, incumbent->EncodeValue(q.path, q.depart_time_s));

  EXPECT_EQ(svc.model_generation(), 1u);
  EXPECT_FALSE(svc.canary_status().installed);
  auto res = svc.TakeCanaryResolution();
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->verdict, CanaryVerdict::kRolledBack);
  EXPECT_EQ(res->generation, 2u);
  EXPECT_EQ(res->routed, 1u);
  EXPECT_EQ(res->clean, 0u);
  EXPECT_EQ(res->reason, "injected canary-regression");
}

TEST_F(ServeTest, CanaryRollsBackWhenItsBreakerTrips) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  cfg.max_retries = 0;
  cfg.breaker_trip_threshold = 3;
  cfg.canary_permille = 1000;
  cfg.canary_promote_after = 100;
  auto incumbent =
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  auto candidate =
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(incumbent, 1);
  ASSERT_TRUE(svc.Start().ok());
  ASSERT_TRUE(svc.BeginCanary(candidate, 2).ok());
  Install("encoder-forward:p=1");

  // Three predicted failures trip the canary's own breaker in admission
  // order; the third resolves the rollback.
  for (uint64_t id = 1; id <= 3; ++id) {
    ServeResult r = svc.SubmitAndWait(Query(0, id));
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.generation, 2u);
    EXPECT_TRUE(r.canary);
    EXPECT_EQ(r.rung, Rung::kFallback);
  }
  auto res = svc.TakeCanaryResolution();
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->verdict, CanaryVerdict::kRolledBack);
  EXPECT_EQ(res->reason, "breaker-trip");
  EXPECT_EQ(res->routed, 3u);
  EXPECT_EQ(svc.model_generation(), 1u) << "incumbent must be untouched";
  EXPECT_EQ(obs::GetCounter("serve.canary_rollbacks").value(), 1u);

  // Later traffic routes back to the incumbent with its own breaker.
  ServeResult after = svc.SubmitAndWait(Query(0, 4));
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.generation, 1u);
  EXPECT_FALSE(after.canary);
}

TEST_F(ServeTest, InstallModelAbortsAnInFlightCanary) {
  auto encoder =
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  InferenceService svc(features(), TinyEncoder(), TinyService());
  EXPECT_EQ(svc.BeginCanary(encoder, 2).code(),
            StatusCode::kFailedPrecondition)
      << "a canary needs an incumbent";
  svc.InstallModel(encoder, 1);
  ASSERT_TRUE(svc.BeginCanary(encoder, 2).ok());
  EXPECT_TRUE(svc.canary_status().installed);
  svc.InstallModel(encoder, 3);
  EXPECT_FALSE(svc.canary_status().installed);
  EXPECT_EQ(svc.model_generation(), 3u);
  auto res = svc.TakeCanaryResolution();
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->verdict, CanaryVerdict::kRolledBack);
  EXPECT_EQ(res->reason, "superseded by InstallModel");
}

TEST_F(ServeTest, CanaryRoutingIsAKeyedFraction) {
  ServiceConfig cfg = TinyService();
  cfg.canary_permille = 200;
  InferenceService svc(features(), TinyEncoder(), cfg);
  int routed = 0;
  for (uint64_t id = 0; id < 10000; ++id) {
    routed += svc.RoutesToCanary(id) ? 1 : 0;
  }
  // A pure hash of the id: close to the configured fraction, and
  // trivially identical across runs and worker counts.
  EXPECT_GT(routed, 1700);
  EXPECT_LT(routed, 2300);
}

// ---------------------------------------------------------------------------
// The acceptance soak: 10k requests, 4 workers, 10% forward faults —
// zero crashes, every request resolves, and outcomes are bitwise
// identical across runs and worker counts.
// ---------------------------------------------------------------------------

struct Outcome {
  int code = 0;
  int rung = -1;
  int attempts = 0;
  uint64_t generation = 0;
  std::vector<float> embedding;
  bool operator==(const Outcome& o) const {
    return code == o.code && rung == o.rung && attempts == o.attempts &&
           generation == o.generation && embedding == o.embedding;
  }
};

class SoakTest : public ServeTest {
 protected:
  static constexpr char kSpec[] =
      "encoder-forward:p=0.1;ckpt-read:p=0.1;alloc:p=0.02;queue-full:p=0.01";

  std::vector<Outcome> RunSoak(int num_workers, int n) {
    Install(kSpec);
    ServiceConfig cfg = TinyService();
    cfg.num_workers = num_workers;
    cfg.queue_capacity = 128;
    cfg.block_when_full = true;  // backpressure: sheds stay deterministic
    InferenceService svc(features(), TinyEncoder(), cfg);
    svc.InstallModel(
        std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
    EXPECT_TRUE(svc.Start().ok());

    // Single submitter, ids == tickets: the determinism contract's
    // preconditions (see serve/service.h).
    std::vector<Outcome> outcomes(static_cast<size_t>(n));
    std::vector<std::pair<size_t, std::future<ServeResult>>> pending;
    pending.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      auto submitted = svc.Submit(
          Query(i % 31, static_cast<uint64_t>(i), (i % 7) * 500));
      if (!submitted.ok()) {
        outcomes[static_cast<size_t>(i)].code =
            static_cast<int>(submitted.status().code());
        continue;
      }
      pending.emplace_back(static_cast<size_t>(i), std::move(*submitted));
    }
    for (auto& [idx, future] : pending) {
      ServeResult r = future.get();
      Outcome& o = outcomes[idx];
      o.code = static_cast<int>(r.status.code());
      if (r.status.ok()) {
        o.rung = static_cast<int>(r.rung);
        o.attempts = r.attempts;
        o.generation = r.generation;
        o.embedding = std::move(r.embedding);
      }
    }
    svc.Shutdown();
    fault::ClearPlan();
    return outcomes;
  }
};

TEST_F(SoakTest, TenThousandRequestsAreBitwiseReproducible) {
  const int n = 10000;
  std::vector<Outcome> run_a = RunSoak(/*num_workers=*/4, n);

  // Every request resolved: success on some rung, or an explicit shed.
  // No twin is installed, so the quant rung (1) must never serve.
  int ok = 0, shed = 0;
  int rung_count[4] = {0, 0, 0, 0};
  for (const Outcome& o : run_a) {
    if (o.code == static_cast<int>(StatusCode::kOk)) {
      ++ok;
      ASSERT_GE(o.rung, 0);
      rung_count[o.rung] += 1;
      EXPECT_EQ(o.embedding.size(), 16u);
    } else {
      EXPECT_EQ(o.code, static_cast<int>(StatusCode::kResourceExhausted));
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, n);
  EXPECT_GT(ok, n / 2);
  EXPECT_GT(shed, 0);
  EXPECT_GT(rung_count[0], 0);
  EXPECT_EQ(rung_count[1], 0);
  EXPECT_GT(rung_count[2], 0);
  EXPECT_GT(rung_count[3], 0);

  // Same spec + seed + thread count: bitwise identical per-request
  // outcomes, including which rung served each request.
  std::vector<Outcome> run_b = RunSoak(/*num_workers=*/4, n);
  ASSERT_EQ(run_a.size(), run_b.size());
  for (size_t i = 0; i < run_a.size(); ++i) {
    ASSERT_TRUE(run_a[i] == run_b[i]) << "outcome diverged at request " << i;
  }

  // Outcomes are a pure function of the request id, so a different
  // worker count reproduces the same prefix too.
  const int m = 1500;
  std::vector<Outcome> run_c = RunSoak(/*num_workers=*/1, m);
  for (size_t i = 0; i < run_c.size(); ++i) {
    ASSERT_TRUE(run_a[i] == run_c[i])
        << "outcome diverged from single-worker run at request " << i;
  }
}

// ---------------------------------------------------------------------------
// The full-ladder soak: with an int8 twin installed every rung — full,
// quantized, cached, fallback — takes traffic under a probabilistic
// outage, and the per-request outcomes stay bitwise identical across
// runs and worker counts.
// ---------------------------------------------------------------------------

class QuantLadderSoakTest : public ServeTest {
 protected:
  // encoder-forward starves rung 0, quant-encode fails half the twin
  // encodes, cache-compute failures (encoder-forward under the cache
  // salt) push the rest down to the fallback.
  static constexpr char kSpec[] =
      "encoder-forward:p=0.6,seed=5;quant-encode:p=0.5,seed=7;"
      "alloc:p=0.02;queue-full:p=0.01";

  std::vector<Outcome> RunSoak(int num_workers, int n) {
    Install(kSpec);
    ServiceConfig cfg = TinyService();
    cfg.num_workers = num_workers;
    cfg.queue_capacity = 128;
    cfg.block_when_full = true;
    cfg.breaker_trip_threshold = 1000;  // keep rung 0 reachable
    cfg.cache_capacity = 4;             // force cache recomputes
    auto encoder =
        std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
    auto twin = MakeTwin(*encoder, 1);
    EXPECT_NE(twin, nullptr);
    InferenceService svc(features(), TinyEncoder(), cfg);
    svc.InstallModel(encoder, 1, twin);
    EXPECT_TRUE(svc.Start().ok());

    std::vector<Outcome> outcomes(static_cast<size_t>(n));
    std::vector<std::pair<size_t, std::future<ServeResult>>> pending;
    pending.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      auto submitted = svc.Submit(
          Query(i % 17, static_cast<uint64_t>(i), (i % 5) * 700));
      if (!submitted.ok()) {
        outcomes[static_cast<size_t>(i)].code =
            static_cast<int>(submitted.status().code());
        continue;
      }
      pending.emplace_back(static_cast<size_t>(i), std::move(*submitted));
    }
    for (auto& [idx, future] : pending) {
      ServeResult r = future.get();
      Outcome& o = outcomes[idx];
      o.code = static_cast<int>(r.status.code());
      if (r.status.ok()) {
        o.rung = static_cast<int>(r.rung);
        o.attempts = r.attempts;
        o.generation = r.generation;
        o.embedding = std::move(r.embedding);
      }
    }
    svc.Shutdown();
    fault::ClearPlan();
    return outcomes;
  }
};

TEST_F(QuantLadderSoakTest, EveryRungServesAndOutcomesAreBitwiseIdentical) {
  const int n = 4000;
  std::vector<Outcome> run_a = RunSoak(/*num_workers=*/4, n);

  int ok = 0;
  int rung_count[4] = {0, 0, 0, 0};
  for (const Outcome& o : run_a) {
    if (o.code != static_cast<int>(StatusCode::kOk)) {
      EXPECT_EQ(o.code, static_cast<int>(StatusCode::kResourceExhausted));
      continue;
    }
    ++ok;
    ASSERT_GE(o.rung, 0);
    rung_count[o.rung] += 1;
    EXPECT_EQ(o.generation, 1u);
    EXPECT_EQ(o.embedding.size(), 16u);
  }
  EXPECT_GT(ok, n / 2);
  EXPECT_GT(rung_count[0], 0) << "full rung never reached";
  EXPECT_GT(rung_count[1], 0) << "quantized rung never reached";
  EXPECT_GT(rung_count[2], 0) << "cached rung never reached";
  EXPECT_GT(rung_count[3], 0) << "fallback rung never reached";
  EXPECT_GT(obs::GetCounter("serve.quant_hits").value(), 0u);

  std::vector<Outcome> run_b = RunSoak(/*num_workers=*/4, n);
  ASSERT_EQ(run_a.size(), run_b.size());
  for (size_t i = 0; i < run_a.size(); ++i) {
    ASSERT_TRUE(run_a[i] == run_b[i]) << "outcome diverged at request " << i;
  }

  const int m = 1200;
  std::vector<Outcome> run_c = RunSoak(/*num_workers=*/1, m);
  for (size_t i = 0; i < run_c.size(); ++i) {
    ASSERT_TRUE(run_a[i] == run_c[i])
        << "outcome diverged from single-worker run at request " << i;
  }
}

// ---------------------------------------------------------------------------
// Fleet mode: per-instance metric namespaces + the health snapshot.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, PrefixedServicesDoNotShareCounters) {
  // Two services in one process, distinct prefixes: each instance's
  // traffic lands in its own namespace instead of folding into one
  // global counter set (the pre-fleet behaviour).
  ServiceConfig ca = TinyService();
  ca.shard = "shard0";
  ca.metrics_prefix = "shard0.";
  ServiceConfig cb = TinyService();
  cb.shard = "shard1";
  cb.metrics_prefix = "shard1.";
  InferenceService a(features(), TinyEncoder(), ca);
  InferenceService b(features(), TinyEncoder(), cb);
  for (InferenceService* svc : {&a, &b}) {
    svc->InstallModel(
        std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
    ASSERT_TRUE(svc->Start().ok());
  }
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(a.SubmitAndWait(Query(static_cast<int>(i), 900 + i))
                    .status.ok());
  }
  ASSERT_TRUE(b.SubmitAndWait(Query(0, 990)).status.ok());
  EXPECT_EQ(obs::GetCounter("shard0.serve.requests").value(), 5u);
  EXPECT_EQ(obs::GetCounter("shard1.serve.requests").value(), 1u);
  EXPECT_EQ(obs::GetCounter("serve.requests").value(), 0u);
  a.Shutdown();
  b.Shutdown();
}

TEST_F(ServeTest, HealthSnapshotTracksLifecycleAndBreaker) {
  ServiceConfig cfg = TinyService();
  cfg.breaker_trip_threshold = 3;
  InferenceService svc(features(), TinyEncoder(), cfg);

  ServiceHealth h = svc.Health();
  EXPECT_FALSE(h.started);
  EXPECT_EQ(h.generation, 0u);

  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 7);
  ASSERT_TRUE(svc.Start().ok());
  h = svc.Health();
  EXPECT_TRUE(h.started);
  EXPECT_EQ(h.generation, 7u);
  EXPECT_EQ(h.breaker_state, 0);
  EXPECT_EQ(h.consecutive_failures, 0);
  EXPECT_FALSE(h.canary_installed);

  // Persistent rung-0 faults trip the breaker; the snapshot reports it.
  Install("encoder-forward:p=1");
  for (uint64_t i = 0; i < 8; ++i) {
    const ServeResult r = svc.SubmitAndWait(Query(static_cast<int>(i), i));
    ASSERT_TRUE(r.status.ok());  // ladder degrades, never fails
    EXPECT_NE(r.rung, Rung::kFull);
  }
  h = svc.Health();
  EXPECT_EQ(h.breaker_state, 1);  // open
  svc.Shutdown();
  EXPECT_FALSE(svc.Health().started);
}

}  // namespace
}  // namespace tpr::serve
