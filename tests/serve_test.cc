#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <future>
#include <string>
#include <tuple>
#include <vector>

#include "core/features.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "serve/lru_cache.h"
#include "serve/service.h"
#include "synth/presets.h"
#include "util/rng.h"

namespace tpr::serve {
namespace {

using core::FeatureSpace;
using core::TemporalPathEncoder;

std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "tpr_serve_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// LRU cache.
// ---------------------------------------------------------------------------

TEST(EmbeddingLruCacheTest, EvictsLeastRecentlyUsed) {
  EmbeddingLruCache cache(2);
  cache.Put("a", {1.0f});
  cache.Put("b", {2.0f});
  ASSERT_TRUE(cache.Get("a").has_value());  // refresh "a"
  cache.Put("c", {3.0f});                   // evicts "b"
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("a").has_value());
}

TEST(EmbeddingLruCacheTest, ZeroCapacityDisablesCaching) {
  EmbeddingLruCache cache(0);
  cache.Put("a", {1.0f});
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// Service fixture on a tiny city.
// ---------------------------------------------------------------------------

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto preset = synth::AalborgPreset();
    synth::ScaleDataset(preset, 0.1);
    auto ds = synth::BuildPresetDataset(preset);
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    data_ = new std::shared_ptr<synth::CityDataset>(
        std::make_shared<synth::CityDataset>(std::move(*ds)));
    core::FeatureConfig fc;
    fc.temporal_graph.slots_per_day = 48;
    fc.node2vec.walks_per_node = 2;
    fc.node2vec.epochs = 1;
    auto fs = core::BuildFeatureSpace(*data_, fc);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    features_ = new std::shared_ptr<const FeatureSpace>(
        std::make_shared<const FeatureSpace>(std::move(*fs)));
  }

  // Freed so the suite is LeakSanitizer-clean (CI runs it under ASan).
  static void TearDownTestSuite() {
    delete features_;
    features_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  void SetUp() override {
    fault::ClearPlan();
    obs::SetMetricsEnabled(true);
    obs::ResetAllMetrics();
  }
  void TearDown() override {
    fault::ClearPlan();
    obs::SetMetricsEnabled(false);
  }

  static core::EncoderConfig TinyEncoder() {
    core::EncoderConfig cfg;
    cfg.d_hidden = 16;
    cfg.projection_dim = 8;
    return cfg;
  }

  static ServiceConfig TinyService() {
    ServiceConfig cfg;
    cfg.num_workers = 2;
    cfg.queue_capacity = 64;
    cfg.block_when_full = true;
    cfg.max_retries = 2;
    cfg.backoff_base_ms = 0.01;
    cfg.backoff_max_ms = 0.05;
    cfg.breaker_trip_threshold = 5;
    cfg.breaker_open_requests = 4;
    cfg.cache_capacity = 256;
    cfg.time_bucket_s = 600;
    return cfg;
  }

  static void Install(const std::string& spec) {
    auto plan = fault::FaultPlan::Parse(spec);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    fault::InstallPlan(*std::move(plan));
  }

  PathQuery Query(int sample, uint64_t id, int64_t time_shift = 0) {
    const auto& s =
        (*data_)->unlabeled[static_cast<size_t>(sample) %
                            (*data_)->unlabeled.size()];
    PathQuery q;
    q.path = s.path;
    q.depart_time_s = s.depart_time_s + time_shift;
    q.id = id;
    return q;
  }

  std::shared_ptr<const FeatureSpace> features() { return *features_; }

  static std::shared_ptr<synth::CityDataset>* data_;
  static std::shared_ptr<const FeatureSpace>* features_;
};

std::shared_ptr<synth::CityDataset>* ServeTest::data_ = nullptr;
std::shared_ptr<const FeatureSpace>* ServeTest::features_ = nullptr;

// ---------------------------------------------------------------------------
// Basic serving.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, StartRequiresAModel) {
  InferenceService svc(features(), TinyEncoder(), TinyService());
  EXPECT_EQ(svc.Start().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(svc.SubmitAndWait(Query(0, 1)).status.code(),
            StatusCode::kUnavailable);

  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  EXPECT_EQ(svc.Start().code(), StatusCode::kFailedPrecondition);
  svc.Shutdown();
  EXPECT_EQ(svc.SubmitAndWait(Query(0, 2)).status.code(),
            StatusCode::kUnavailable);
}

TEST_F(ServeTest, FullRungMatchesTheEncoderExactly) {
  auto encoder =
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder());
  InferenceService svc(features(), TinyEncoder(), TinyService());
  svc.InstallModel(encoder, 1);
  ASSERT_TRUE(svc.Start().ok());

  const PathQuery q = Query(0, 42);
  ServeResult r = svc.SubmitAndWait(q);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.rung, Rung::kFull);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(r.embedding, encoder->EncodeValue(q.path, q.depart_time_s));
  EXPECT_EQ(static_cast<int>(r.embedding.size()), svc.representation_dim());
}

TEST_F(ServeTest, CancellableEncodeMatchesAndHonoursCancellation) {
  TemporalPathEncoder encoder(features(), TinyEncoder());
  const PathQuery q = Query(0, 1);
  auto full = encoder.EncodeValueCancellable(q.path, q.depart_time_s,
                                             [] { return false; });
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, encoder.EncodeValue(q.path, q.depart_time_s));
  EXPECT_FALSE(encoder
                   .EncodeValueCancellable(q.path, q.depart_time_s,
                                           [] { return true; })
                   .has_value());
}

// ---------------------------------------------------------------------------
// Model lifecycle through the checkpoint layer.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, LoadModelKeepsServingTheOldGenerationOnFailure) {
  const std::string dir_a = ScratchDir("gen_a");
  const std::string dir_b = ScratchDir("gen_b");
  TemporalPathEncoder encoder(features(), TinyEncoder());
  ASSERT_TRUE(InferenceService::SaveModel(encoder, dir_a, 3).ok());
  ASSERT_TRUE(InferenceService::SaveModel(encoder, dir_b, 4).ok());

  InferenceService svc(features(), TinyEncoder(), TinyService());
  ASSERT_TRUE(svc.LoadModel(dir_a).ok());
  EXPECT_EQ(svc.model_generation(), 3u);
  ASSERT_TRUE(svc.Start().ok());

  const PathQuery q = Query(0, 7);
  EXPECT_EQ(svc.SubmitAndWait(q).embedding,
            encoder.EncodeValue(q.path, q.depart_time_s));

  // A dead checkpoint store must not dislodge the installed model.
  Install("ckpt-read:after=0");
  EXPECT_FALSE(svc.LoadModel(dir_b).ok());
  EXPECT_EQ(svc.model_generation(), 3u);
  ServeResult still = svc.SubmitAndWait(Query(0, 8));
  ASSERT_TRUE(still.status.ok());
  EXPECT_EQ(still.rung, Rung::kFull);

  fault::ClearPlan();
  ASSERT_TRUE(svc.LoadModel(dir_b).ok());
  EXPECT_EQ(svc.model_generation(), 4u);
}

TEST_F(ServeTest, LoadModelRejectsMismatchedRepresentationDim) {
  const std::string dir = ScratchDir("wrong_dim");
  core::EncoderConfig wide = TinyEncoder();
  wide.d_hidden = 8;
  TemporalPathEncoder encoder(features(), wide);
  ASSERT_TRUE(InferenceService::SaveModel(encoder, dir, 1).ok());

  InferenceService svc(features(), TinyEncoder(), TinyService());
  EXPECT_EQ(svc.LoadModel(dir).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(svc.model_generation(), 0u);
}

// ---------------------------------------------------------------------------
// Degradation ladder under injected faults.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, AllocFaultDegradesToTheCacheRung) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("alloc:p=1");  // rung 0 is never attempted

  ServeResult first = svc.SubmitAndWait(Query(0, 100));
  ASSERT_TRUE(first.status.ok());
  EXPECT_EQ(first.rung, Rung::kCached);
  EXPECT_EQ(first.attempts, 0);

  // Same (path, bucket), different request: a cache hit with identical
  // bytes — hit vs recompute is invisible in the result.
  ServeResult second = svc.SubmitAndWait(Query(0, 101));
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.rung, Rung::kCached);
  EXPECT_EQ(second.embedding, first.embedding);
  EXPECT_EQ(obs::GetCounter("serve.cache_hits").value(), 1u);
  EXPECT_EQ(obs::GetCounter("serve.cache_misses").value(), 1u);
}

TEST_F(ServeTest, TotalEncoderOutageDegradesToTheFallbackRung) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  cfg.breaker_trip_threshold = 1000;  // keep rung 0 reachable throughout
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("encoder-forward:p=1");

  ServeResult r = svc.SubmitAndWait(Query(1, 200));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rung, Rung::kFallback);
  EXPECT_EQ(r.attempts, 1 + cfg.max_retries);
  EXPECT_EQ(static_cast<int>(r.embedding.size()), svc.representation_dim());
  // The fallback is pure arithmetic over frozen node2vec vectors.
  EXPECT_EQ(svc.SubmitAndWait(Query(1, 201)).embedding, r.embedding);
  EXPECT_GE(obs::GetCounter("serve.retries").value(),
            static_cast<uint64_t>(cfg.max_retries));
}

TEST_F(ServeTest, RetryRecoversFromATransientForwardFault) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  cfg.breaker_trip_threshold = 1000;
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("encoder-forward:p=0.5,seed=9");

  // Find a request id whose first attempt fails and second succeeds —
  // WouldFail is the pure lookahead of the worker's verdicts.
  uint64_t id = 0;
  bool found = false;
  for (uint64_t k = 1; k < 4096 && !found; ++k) {
    if (fault::WouldFail(fault::kEncoderForward, MixSeed(k, 0)) &&
        !fault::WouldFail(fault::kEncoderForward, MixSeed(k, 1))) {
      id = k;
      found = true;
    }
  }
  ASSERT_TRUE(found);

  ServeResult r = svc.SubmitAndWait(Query(2, id));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rung, Rung::kFull);
  EXPECT_EQ(r.attempts, 2);
}

TEST_F(ServeTest, EveryRungIsReachableUnderAProbabilisticOutage) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  cfg.breaker_trip_threshold = 1000;
  cfg.cache_capacity = 4;  // force recomputes too
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("encoder-forward:p=0.6,seed=5");

  int rung_count[3] = {0, 0, 0};
  for (int i = 0; i < 200; ++i) {
    ServeResult r = svc.SubmitAndWait(
        Query(i % 17, 1000 + static_cast<uint64_t>(i), (i % 5) * 700));
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    rung_count[static_cast<int>(r.rung)] += 1;
  }
  EXPECT_GT(rung_count[0], 0) << "full rung never reached";
  EXPECT_GT(rung_count[1], 0) << "cached rung never reached";
  EXPECT_GT(rung_count[2], 0) << "fallback rung never reached";
  EXPECT_GT(obs::GetCounter("serve.retries").value(), 0u);
}

TEST_F(ServeTest, InjectedQueueFullShedsAtAdmission) {
  InferenceService svc(features(), TinyEncoder(), TinyService());
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("queue-full:p=1");
  ServeResult r = svc.SubmitAndWait(Query(0, 1));
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(obs::GetCounter("serve.shed").value(), 1u);

  fault::ClearPlan();
  EXPECT_TRUE(svc.SubmitAndWait(Query(0, 2)).status.ok());
}

TEST_F(ServeTest, DeadlineExceededUnderInjectedSlowness) {
  InferenceService svc(features(), TinyEncoder(), TinyService());
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("slow-worker:delay_ms=50");
  ServeResult r = svc.SubmitAndWait(Query(0, 1), /*deadline_ms=*/2);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(obs::GetCounter("serve.deadline_exceeded").value(), 1u);

  // Without the injected slowness the same deadline is comfortable.
  fault::ClearPlan();
  EXPECT_TRUE(svc.SubmitAndWait(Query(0, 2), /*deadline_ms=*/5000).status.ok());
}

TEST_F(ServeTest, ShutdownResolvesEveryQueuedRequest) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());
  Install("slow-worker:delay_ms=20");

  std::vector<std::future<ServeResult>> futures;
  for (uint64_t i = 0; i < 8; ++i) {
    auto submitted = svc.Submit(Query(0, i));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  svc.Shutdown();
  int unavailable = 0;
  for (auto& f : futures) {
    ServeResult r = f.get();  // every promise must resolve — no hangs
    EXPECT_TRUE(r.status.ok() ||
                r.status.code() == StatusCode::kUnavailable)
        << r.status.ToString();
    unavailable += r.status.code() == StatusCode::kUnavailable ? 1 : 0;
  }
  EXPECT_GT(unavailable, 0) << "shutdown drained nothing";
}

// ---------------------------------------------------------------------------
// Circuit breaker.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, BreakerTripsUnderOutageAndReclosesAfterRecovery) {
  ServiceConfig cfg = TinyService();
  cfg.num_workers = 1;
  cfg.max_retries = 0;
  cfg.breaker_trip_threshold = 3;
  cfg.breaker_open_requests = 2;
  InferenceService svc(features(), TinyEncoder(), cfg);
  svc.InstallModel(
      std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
  ASSERT_TRUE(svc.Start().ok());

  // Total outage, folded predictively in admission order: requests 1-3
  // trip the breaker, 4-5 are skipped straight past rung 0, and the
  // half-open probe (6) fails and reopens it.
  Install("encoder-forward:p=1");
  uint64_t id = 0;
  for (int i = 0; i < 3; ++i) {
    ServeResult r = svc.SubmitAndWait(Query(0, ++id));
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.rung, Rung::kFallback);
    EXPECT_EQ(r.attempts, 1);
  }
  EXPECT_EQ(obs::GetCounter("serve.breaker_trips").value(), 1u);
  for (int i = 0; i < 2; ++i) {
    ServeResult r = svc.SubmitAndWait(Query(0, ++id));
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.attempts, 0) << "open breaker must skip rung 0";
  }
  EXPECT_EQ(obs::GetCounter("serve.breaker_open_skips").value(), 2u);
  ServeResult probe = svc.SubmitAndWait(Query(0, ++id));
  ASSERT_TRUE(probe.status.ok());
  EXPECT_EQ(probe.attempts, 1);  // the probe goes back into rung 0
  EXPECT_EQ(probe.rung, Rung::kFallback);
  EXPECT_EQ(obs::GetCounter("serve.breaker_trips").value(), 2u);

  // The outage ends (observed mode: no plan). The still-open breaker
  // keeps skipping rung 0 for its window, then a successful probe
  // re-closes it and traffic returns to the full encoder.
  fault::ClearPlan();
  for (int i = 0; i < 2; ++i) {
    ServeResult r = svc.SubmitAndWait(Query(0, ++id));
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.attempts, 0);
  }
  ServeResult recovery_probe = svc.SubmitAndWait(Query(0, ++id));
  ASSERT_TRUE(recovery_probe.status.ok());
  EXPECT_EQ(recovery_probe.rung, Rung::kFull);
  ServeResult after = svc.SubmitAndWait(Query(0, ++id));
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.rung, Rung::kFull);
  EXPECT_EQ(obs::GetCounter("serve.breaker_open_skips").value(), 4u);
}

// ---------------------------------------------------------------------------
// The acceptance soak: 10k requests, 4 workers, 10% forward faults —
// zero crashes, every request resolves, and outcomes are bitwise
// identical across runs and worker counts.
// ---------------------------------------------------------------------------

struct Outcome {
  int code = 0;
  int rung = -1;
  int attempts = 0;
  std::vector<float> embedding;
  bool operator==(const Outcome& o) const {
    return code == o.code && rung == o.rung && attempts == o.attempts &&
           embedding == o.embedding;
  }
};

class SoakTest : public ServeTest {
 protected:
  static constexpr char kSpec[] =
      "encoder-forward:p=0.1;ckpt-read:p=0.1;alloc:p=0.02;queue-full:p=0.01";

  std::vector<Outcome> RunSoak(int num_workers, int n) {
    Install(kSpec);
    ServiceConfig cfg = TinyService();
    cfg.num_workers = num_workers;
    cfg.queue_capacity = 128;
    cfg.block_when_full = true;  // backpressure: sheds stay deterministic
    InferenceService svc(features(), TinyEncoder(), cfg);
    svc.InstallModel(
        std::make_shared<TemporalPathEncoder>(features(), TinyEncoder()), 1);
    EXPECT_TRUE(svc.Start().ok());

    // Single submitter, ids == tickets: the determinism contract's
    // preconditions (see serve/service.h).
    std::vector<Outcome> outcomes(static_cast<size_t>(n));
    std::vector<std::pair<size_t, std::future<ServeResult>>> pending;
    pending.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      auto submitted = svc.Submit(
          Query(i % 31, static_cast<uint64_t>(i), (i % 7) * 500));
      if (!submitted.ok()) {
        outcomes[static_cast<size_t>(i)].code =
            static_cast<int>(submitted.status().code());
        continue;
      }
      pending.emplace_back(static_cast<size_t>(i), std::move(*submitted));
    }
    for (auto& [idx, future] : pending) {
      ServeResult r = future.get();
      Outcome& o = outcomes[idx];
      o.code = static_cast<int>(r.status.code());
      if (r.status.ok()) {
        o.rung = static_cast<int>(r.rung);
        o.attempts = r.attempts;
        o.embedding = std::move(r.embedding);
      }
    }
    svc.Shutdown();
    fault::ClearPlan();
    return outcomes;
  }
};

TEST_F(SoakTest, TenThousandRequestsAreBitwiseReproducible) {
  const int n = 10000;
  std::vector<Outcome> run_a = RunSoak(/*num_workers=*/4, n);

  // Every request resolved: success on some rung, or an explicit shed.
  int ok = 0, shed = 0;
  int rung_count[3] = {0, 0, 0};
  for (const Outcome& o : run_a) {
    if (o.code == static_cast<int>(StatusCode::kOk)) {
      ++ok;
      ASSERT_GE(o.rung, 0);
      rung_count[o.rung] += 1;
      EXPECT_EQ(o.embedding.size(), 16u);
    } else {
      EXPECT_EQ(o.code, static_cast<int>(StatusCode::kResourceExhausted));
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, n);
  EXPECT_GT(ok, n / 2);
  EXPECT_GT(shed, 0);
  EXPECT_GT(rung_count[0], 0);
  EXPECT_GT(rung_count[1], 0);
  EXPECT_GT(rung_count[2], 0);

  // Same spec + seed + thread count: bitwise identical per-request
  // outcomes, including which rung served each request.
  std::vector<Outcome> run_b = RunSoak(/*num_workers=*/4, n);
  ASSERT_EQ(run_a.size(), run_b.size());
  for (size_t i = 0; i < run_a.size(); ++i) {
    ASSERT_TRUE(run_a[i] == run_b[i]) << "outcome diverged at request " << i;
  }

  // Outcomes are a pure function of the request id, so a different
  // worker count reproduces the same prefix too.
  const int m = 1500;
  std::vector<Outcome> run_c = RunSoak(/*num_workers=*/1, m);
  for (size_t i = 0; i < run_c.size(); ++i) {
    ASSERT_TRUE(run_a[i] == run_c[i])
        << "outcome diverged from single-worker run at request " << i;
  }
}

}  // namespace
}  // namespace tpr::serve
