#include <gtest/gtest.h>

#include <cmath>

#include "gbdt/gradient_boosting.h"
#include "gbdt/tree.h"
#include "util/rng.h"

namespace tpr::gbdt {
namespace {

// y = 3*x0 + noise-free step on x1.
Matrix MakeRegressionData(int n, std::vector<float>* y, Rng& rng) {
  Matrix x(n, 3);
  y->resize(n);
  for (int i = 0; i < n; ++i) {
    x.at(i, 0) = static_cast<float>(rng.Uniform(-1, 1));
    x.at(i, 1) = static_cast<float>(rng.Uniform(-1, 1));
    x.at(i, 2) = static_cast<float>(rng.Uniform(-1, 1));  // irrelevant
    (*y)[i] = 3.0f * x.at(i, 0) + (x.at(i, 1) > 0 ? 2.0f : 0.0f);
  }
  return x;
}

TEST(RegressionTreeTest, FitsAStepFunction) {
  Rng rng(21);
  Matrix x(100, 1);
  std::vector<float> y(100);
  std::vector<int> idx(100);
  for (int i = 0; i < 100; ++i) {
    x.at(i, 0) = static_cast<float>(i) / 100.0f;
    y[i] = i < 50 ? -1.0f : 1.0f;
    idx[i] = i;
  }
  RegressionTree tree;
  TreeConfig cfg;
  cfg.max_depth = 1;
  cfg.min_samples_leaf = 5;
  tree.Fit(x, y, idx, cfg, rng);
  float lo = 0.2f, hi = 0.8f;
  EXPECT_NEAR(tree.Predict(&lo), -1.0f, 0.1f);
  EXPECT_NEAR(tree.Predict(&hi), 1.0f, 0.1f);
}

TEST(RegressionTreeTest, RespectsMinSamplesLeaf) {
  Rng rng(22);
  Matrix x(20, 1);
  std::vector<float> y(20);
  std::vector<int> idx(20);
  for (int i = 0; i < 20; ++i) {
    x.at(i, 0) = static_cast<float>(i);
    y[i] = static_cast<float>(i % 2);
    idx[i] = i;
  }
  RegressionTree tree;
  TreeConfig cfg;
  cfg.max_depth = 10;
  cfg.min_samples_leaf = 10;
  tree.Fit(x, y, idx, cfg, rng);
  // At most one split is possible with 20 samples and leaves of >= 10.
  EXPECT_LE(tree.num_nodes(), 3);
}

TEST(RegressionTreeTest, ConstantTargetGivesSingleLeaf) {
  Rng rng(23);
  Matrix x(30, 2);
  std::vector<float> y(30, 5.0f);
  std::vector<int> idx(30);
  for (int i = 0; i < 30; ++i) {
    x.at(i, 0) = static_cast<float>(i);
    idx[i] = i;
  }
  RegressionTree tree;
  tree.Fit(x, y, idx, TreeConfig{}, rng);
  EXPECT_EQ(tree.num_nodes(), 1);
  float v = 3.0f;
  EXPECT_FLOAT_EQ(tree.Predict(&v), 5.0f);
}

TEST(GbrTest, LearnsLinearPlusStep) {
  Rng rng(24);
  std::vector<float> y;
  Matrix x = MakeRegressionData(400, &y, rng);
  GradientBoostingRegressor gbr;
  ASSERT_TRUE(gbr.Fit(x, y).ok());
  double total_err = 0;
  for (int i = 0; i < x.rows; ++i) {
    total_err += std::fabs(gbr.Predict(x.row(i)) - y[i]);
  }
  EXPECT_LT(total_err / x.rows, 0.35);
}

TEST(GbrTest, RejectsBadInput) {
  GradientBoostingRegressor gbr;
  EXPECT_FALSE(gbr.Fit(Matrix(), {}).ok());
  Matrix x(3, 1);
  EXPECT_FALSE(gbr.Fit(x, {1.0f}).ok());
}

TEST(GbrTest, PredictBatchMatchesScalar) {
  Rng rng(25);
  std::vector<float> y;
  Matrix x = MakeRegressionData(50, &y, rng);
  GradientBoostingRegressor gbr;
  ASSERT_TRUE(gbr.Fit(x, y).ok());
  const auto batch = gbr.PredictBatch(x);
  for (int i = 0; i < x.rows; ++i) {
    EXPECT_FLOAT_EQ(batch[i], gbr.Predict(x.row(i)));
  }
}

TEST(GbcTest, SeparatesTwoBlobs) {
  Rng rng(26);
  Matrix x(200, 2);
  std::vector<int> y(200);
  for (int i = 0; i < 200; ++i) {
    const bool positive = i % 2 == 0;
    x.at(i, 0) = static_cast<float>(rng.Gaussian(positive ? 2.0 : -2.0, 0.5));
    x.at(i, 1) = static_cast<float>(rng.Gaussian());
    y[i] = positive ? 1 : 0;
  }
  GradientBoostingClassifier gbc;
  ASSERT_TRUE(gbc.Fit(x, y).ok());
  int correct = 0;
  for (int i = 0; i < x.rows; ++i) {
    correct += gbc.Predict(x.row(i)) == y[i];
  }
  EXPECT_GT(correct, 190);
}

TEST(GbcTest, ProbabilitiesInRange) {
  Rng rng(27);
  Matrix x(60, 2);
  std::vector<int> y(60);
  for (int i = 0; i < 60; ++i) {
    x.at(i, 0) = static_cast<float>(rng.Gaussian());
    x.at(i, 1) = static_cast<float>(rng.Gaussian());
    y[i] = rng.Bernoulli(0.3) ? 1 : 0;
  }
  GradientBoostingClassifier gbc;
  ASSERT_TRUE(gbc.Fit(x, y).ok());
  for (int i = 0; i < x.rows; ++i) {
    const float p = gbc.PredictProba(x.row(i));
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(GbcTest, ImbalancedBaseScoreMatchesPrior) {
  // With no informative features, predicted probability ~= class prior.
  Rng rng(28);
  Matrix x(300, 1);
  std::vector<int> y(300);
  for (int i = 0; i < 300; ++i) {
    x.at(i, 0) = 0.0f;  // constant feature: no splits possible
    y[i] = i < 60 ? 1 : 0;
  }
  GradientBoostingClassifier gbc;
  ASSERT_TRUE(gbc.Fit(x, y).ok());
  float v = 0.0f;
  EXPECT_NEAR(gbc.PredictProba(&v), 0.2f, 0.05f);
}

// Property sweep: more trees never make training-set MAE worse by much
// (boosting monotonicity on the training set).
class BoostingDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(BoostingDepthTest, TrainErrorDecreasesWithTrees) {
  Rng rng(29);
  std::vector<float> y;
  Matrix x = MakeRegressionData(200, &y, rng);
  auto train_mae = [&](int trees) {
    BoostingConfig cfg;
    cfg.num_trees = trees;
    cfg.tree.max_depth = GetParam();
    cfg.subsample = 1.0;
    GradientBoostingRegressor gbr(cfg);
    EXPECT_TRUE(gbr.Fit(x, y).ok());
    double err = 0;
    for (int i = 0; i < x.rows; ++i) {
      err += std::fabs(gbr.Predict(x.row(i)) - y[i]);
    }
    return err / x.rows;
  };
  EXPECT_LT(train_mae(100), train_mae(10) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Depths, BoostingDepthTest, ::testing::Values(2, 3, 5));

}  // namespace
}  // namespace tpr::gbdt
