file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_weak_labels.dir/table7_weak_labels.cc.o"
  "CMakeFiles/bench_table7_weak_labels.dir/table7_weak_labels.cc.o.d"
  "bench_table7_weak_labels"
  "bench_table7_weak_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_weak_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
