file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_metasets.dir/table12_metasets.cc.o"
  "CMakeFiles/bench_table12_metasets.dir/table12_metasets.cc.o.d"
  "bench_table12_metasets"
  "bench_table12_metasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_metasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
