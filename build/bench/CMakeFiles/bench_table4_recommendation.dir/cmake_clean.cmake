file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_recommendation.dir/table4_recommendation.cc.o"
  "CMakeFiles/bench_table4_recommendation.dir/table4_recommendation.cc.o.d"
  "bench_table4_recommendation"
  "bench_table4_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
