file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_pim_temporal.dir/table9_pim_temporal.cc.o"
  "CMakeFiles/bench_table9_pim_temporal.dir/table9_pim_temporal.cc.o.d"
  "bench_table9_pim_temporal"
  "bench_table9_pim_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_pim_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
