# Empty compiler generated dependencies file for bench_table9_pim_temporal.
# This may be replaced when dependencies are built.
