# Empty dependencies file for bench_table5_cl_strategy.
# This may be replaced when dependencies are built.
