file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_cl_strategy.dir/table5_cl_strategy.cc.o"
  "CMakeFiles/bench_table5_cl_strategy.dir/table5_cl_strategy.cc.o.d"
  "bench_table5_cl_strategy"
  "bench_table5_cl_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_cl_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
