file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_temporal.dir/table8_temporal.cc.o"
  "CMakeFiles/bench_table8_temporal.dir/table8_temporal.cc.o.d"
  "bench_table8_temporal"
  "bench_table8_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
