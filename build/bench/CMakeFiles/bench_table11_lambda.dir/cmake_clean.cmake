file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_lambda.dir/table11_lambda.cc.o"
  "CMakeFiles/bench_table11_lambda.dir/table11_lambda.cc.o.d"
  "bench_table11_lambda"
  "bench_table11_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
