file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_pretraining.dir/fig7_pretraining.cc.o"
  "CMakeFiles/bench_fig7_pretraining.dir/fig7_pretraining.cc.o.d"
  "bench_fig7_pretraining"
  "bench_fig7_pretraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_pretraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
