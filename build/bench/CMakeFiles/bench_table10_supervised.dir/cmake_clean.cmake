file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_supervised.dir/table10_supervised.cc.o"
  "CMakeFiles/bench_table10_supervised.dir/table10_supervised.cc.o.d"
  "bench_table10_supervised"
  "bench_table10_supervised.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_supervised.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
