# Empty dependencies file for bench_table10_supervised.
# This may be replaced when dependencies are built.
