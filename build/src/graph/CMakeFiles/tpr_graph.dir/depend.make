# Empty dependencies file for tpr_graph.
# This may be replaced when dependencies are built.
