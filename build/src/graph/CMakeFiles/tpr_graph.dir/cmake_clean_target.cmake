file(REMOVE_RECURSE
  "libtpr_graph.a"
)
