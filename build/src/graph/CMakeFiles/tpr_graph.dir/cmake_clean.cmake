file(REMOVE_RECURSE
  "CMakeFiles/tpr_graph.dir/graph.cc.o"
  "CMakeFiles/tpr_graph.dir/graph.cc.o.d"
  "CMakeFiles/tpr_graph.dir/path_utils.cc.o"
  "CMakeFiles/tpr_graph.dir/path_utils.cc.o.d"
  "CMakeFiles/tpr_graph.dir/road_network.cc.o"
  "CMakeFiles/tpr_graph.dir/road_network.cc.o.d"
  "CMakeFiles/tpr_graph.dir/shortest_path.cc.o"
  "CMakeFiles/tpr_graph.dir/shortest_path.cc.o.d"
  "CMakeFiles/tpr_graph.dir/temporal_graph.cc.o"
  "CMakeFiles/tpr_graph.dir/temporal_graph.cc.o.d"
  "libtpr_graph.a"
  "libtpr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
