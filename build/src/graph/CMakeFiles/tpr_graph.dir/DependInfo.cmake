
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/tpr_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/tpr_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/path_utils.cc" "src/graph/CMakeFiles/tpr_graph.dir/path_utils.cc.o" "gcc" "src/graph/CMakeFiles/tpr_graph.dir/path_utils.cc.o.d"
  "/root/repo/src/graph/road_network.cc" "src/graph/CMakeFiles/tpr_graph.dir/road_network.cc.o" "gcc" "src/graph/CMakeFiles/tpr_graph.dir/road_network.cc.o.d"
  "/root/repo/src/graph/shortest_path.cc" "src/graph/CMakeFiles/tpr_graph.dir/shortest_path.cc.o" "gcc" "src/graph/CMakeFiles/tpr_graph.dir/shortest_path.cc.o.d"
  "/root/repo/src/graph/temporal_graph.cc" "src/graph/CMakeFiles/tpr_graph.dir/temporal_graph.cc.o" "gcc" "src/graph/CMakeFiles/tpr_graph.dir/temporal_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
