file(REMOVE_RECURSE
  "CMakeFiles/tpr_util.dir/logging.cc.o"
  "CMakeFiles/tpr_util.dir/logging.cc.o.d"
  "CMakeFiles/tpr_util.dir/rng.cc.o"
  "CMakeFiles/tpr_util.dir/rng.cc.o.d"
  "CMakeFiles/tpr_util.dir/status.cc.o"
  "CMakeFiles/tpr_util.dir/status.cc.o.d"
  "CMakeFiles/tpr_util.dir/table_printer.cc.o"
  "CMakeFiles/tpr_util.dir/table_printer.cc.o.d"
  "libtpr_util.a"
  "libtpr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
