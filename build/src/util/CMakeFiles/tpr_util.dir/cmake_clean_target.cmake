file(REMOVE_RECURSE
  "libtpr_util.a"
)
