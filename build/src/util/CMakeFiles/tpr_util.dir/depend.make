# Empty dependencies file for tpr_util.
# This may be replaced when dependencies are built.
