
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node2vec/alias.cc" "src/node2vec/CMakeFiles/tpr_node2vec.dir/alias.cc.o" "gcc" "src/node2vec/CMakeFiles/tpr_node2vec.dir/alias.cc.o.d"
  "/root/repo/src/node2vec/node2vec.cc" "src/node2vec/CMakeFiles/tpr_node2vec.dir/node2vec.cc.o" "gcc" "src/node2vec/CMakeFiles/tpr_node2vec.dir/node2vec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/tpr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/tpr_par.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
