file(REMOVE_RECURSE
  "libtpr_node2vec.a"
)
