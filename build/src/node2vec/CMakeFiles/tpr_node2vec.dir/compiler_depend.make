# Empty compiler generated dependencies file for tpr_node2vec.
# This may be replaced when dependencies are built.
