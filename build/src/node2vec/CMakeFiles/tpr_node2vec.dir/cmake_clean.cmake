file(REMOVE_RECURSE
  "CMakeFiles/tpr_node2vec.dir/alias.cc.o"
  "CMakeFiles/tpr_node2vec.dir/alias.cc.o.d"
  "CMakeFiles/tpr_node2vec.dir/node2vec.cc.o"
  "CMakeFiles/tpr_node2vec.dir/node2vec.cc.o.d"
  "libtpr_node2vec.a"
  "libtpr_node2vec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpr_node2vec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
