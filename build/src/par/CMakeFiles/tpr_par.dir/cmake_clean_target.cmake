file(REMOVE_RECURSE
  "libtpr_par.a"
)
