file(REMOVE_RECURSE
  "CMakeFiles/tpr_par.dir/thread_pool.cc.o"
  "CMakeFiles/tpr_par.dir/thread_pool.cc.o.d"
  "libtpr_par.a"
  "libtpr_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpr_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
