# Empty dependencies file for tpr_par.
# This may be replaced when dependencies are built.
