file(REMOVE_RECURSE
  "libtpr_synth.a"
)
