# Empty dependencies file for tpr_synth.
# This may be replaced when dependencies are built.
