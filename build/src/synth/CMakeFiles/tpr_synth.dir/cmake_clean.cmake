file(REMOVE_RECURSE
  "CMakeFiles/tpr_synth.dir/city_generator.cc.o"
  "CMakeFiles/tpr_synth.dir/city_generator.cc.o.d"
  "CMakeFiles/tpr_synth.dir/dataset.cc.o"
  "CMakeFiles/tpr_synth.dir/dataset.cc.o.d"
  "CMakeFiles/tpr_synth.dir/gps.cc.o"
  "CMakeFiles/tpr_synth.dir/gps.cc.o.d"
  "CMakeFiles/tpr_synth.dir/io.cc.o"
  "CMakeFiles/tpr_synth.dir/io.cc.o.d"
  "CMakeFiles/tpr_synth.dir/presets.cc.o"
  "CMakeFiles/tpr_synth.dir/presets.cc.o.d"
  "CMakeFiles/tpr_synth.dir/traffic_model.cc.o"
  "CMakeFiles/tpr_synth.dir/traffic_model.cc.o.d"
  "CMakeFiles/tpr_synth.dir/weak_labels.cc.o"
  "CMakeFiles/tpr_synth.dir/weak_labels.cc.o.d"
  "libtpr_synth.a"
  "libtpr_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpr_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
