
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/city_generator.cc" "src/synth/CMakeFiles/tpr_synth.dir/city_generator.cc.o" "gcc" "src/synth/CMakeFiles/tpr_synth.dir/city_generator.cc.o.d"
  "/root/repo/src/synth/dataset.cc" "src/synth/CMakeFiles/tpr_synth.dir/dataset.cc.o" "gcc" "src/synth/CMakeFiles/tpr_synth.dir/dataset.cc.o.d"
  "/root/repo/src/synth/gps.cc" "src/synth/CMakeFiles/tpr_synth.dir/gps.cc.o" "gcc" "src/synth/CMakeFiles/tpr_synth.dir/gps.cc.o.d"
  "/root/repo/src/synth/io.cc" "src/synth/CMakeFiles/tpr_synth.dir/io.cc.o" "gcc" "src/synth/CMakeFiles/tpr_synth.dir/io.cc.o.d"
  "/root/repo/src/synth/presets.cc" "src/synth/CMakeFiles/tpr_synth.dir/presets.cc.o" "gcc" "src/synth/CMakeFiles/tpr_synth.dir/presets.cc.o.d"
  "/root/repo/src/synth/traffic_model.cc" "src/synth/CMakeFiles/tpr_synth.dir/traffic_model.cc.o" "gcc" "src/synth/CMakeFiles/tpr_synth.dir/traffic_model.cc.o.d"
  "/root/repo/src/synth/weak_labels.cc" "src/synth/CMakeFiles/tpr_synth.dir/weak_labels.cc.o" "gcc" "src/synth/CMakeFiles/tpr_synth.dir/weak_labels.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/tpr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/tpr_par.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
