# Empty compiler generated dependencies file for tpr_eval.
# This may be replaced when dependencies are built.
