file(REMOVE_RECURSE
  "libtpr_eval.a"
)
