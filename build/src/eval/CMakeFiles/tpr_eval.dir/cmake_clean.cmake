file(REMOVE_RECURSE
  "CMakeFiles/tpr_eval.dir/downstream.cc.o"
  "CMakeFiles/tpr_eval.dir/downstream.cc.o.d"
  "CMakeFiles/tpr_eval.dir/metrics.cc.o"
  "CMakeFiles/tpr_eval.dir/metrics.cc.o.d"
  "libtpr_eval.a"
  "libtpr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
