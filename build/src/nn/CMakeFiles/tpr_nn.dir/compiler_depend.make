# Empty compiler generated dependencies file for tpr_nn.
# This may be replaced when dependencies are built.
