file(REMOVE_RECURSE
  "CMakeFiles/tpr_nn.dir/autograd.cc.o"
  "CMakeFiles/tpr_nn.dir/autograd.cc.o.d"
  "CMakeFiles/tpr_nn.dir/grad_accumulator.cc.o"
  "CMakeFiles/tpr_nn.dir/grad_accumulator.cc.o.d"
  "CMakeFiles/tpr_nn.dir/modules.cc.o"
  "CMakeFiles/tpr_nn.dir/modules.cc.o.d"
  "CMakeFiles/tpr_nn.dir/optimizer.cc.o"
  "CMakeFiles/tpr_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/tpr_nn.dir/tensor.cc.o"
  "CMakeFiles/tpr_nn.dir/tensor.cc.o.d"
  "CMakeFiles/tpr_nn.dir/transformer.cc.o"
  "CMakeFiles/tpr_nn.dir/transformer.cc.o.d"
  "libtpr_nn.a"
  "libtpr_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpr_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
