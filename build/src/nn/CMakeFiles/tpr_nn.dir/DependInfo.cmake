
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/autograd.cc" "src/nn/CMakeFiles/tpr_nn.dir/autograd.cc.o" "gcc" "src/nn/CMakeFiles/tpr_nn.dir/autograd.cc.o.d"
  "/root/repo/src/nn/grad_accumulator.cc" "src/nn/CMakeFiles/tpr_nn.dir/grad_accumulator.cc.o" "gcc" "src/nn/CMakeFiles/tpr_nn.dir/grad_accumulator.cc.o.d"
  "/root/repo/src/nn/modules.cc" "src/nn/CMakeFiles/tpr_nn.dir/modules.cc.o" "gcc" "src/nn/CMakeFiles/tpr_nn.dir/modules.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/tpr_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/tpr_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/nn/CMakeFiles/tpr_nn.dir/tensor.cc.o" "gcc" "src/nn/CMakeFiles/tpr_nn.dir/tensor.cc.o.d"
  "/root/repo/src/nn/transformer.cc" "src/nn/CMakeFiles/tpr_nn.dir/transformer.cc.o" "gcc" "src/nn/CMakeFiles/tpr_nn.dir/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
