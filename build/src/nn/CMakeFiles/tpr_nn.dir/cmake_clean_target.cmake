file(REMOVE_RECURSE
  "libtpr_nn.a"
)
