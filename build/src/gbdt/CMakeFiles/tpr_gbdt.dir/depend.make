# Empty dependencies file for tpr_gbdt.
# This may be replaced when dependencies are built.
