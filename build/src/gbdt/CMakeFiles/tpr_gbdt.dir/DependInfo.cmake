
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gbdt/gradient_boosting.cc" "src/gbdt/CMakeFiles/tpr_gbdt.dir/gradient_boosting.cc.o" "gcc" "src/gbdt/CMakeFiles/tpr_gbdt.dir/gradient_boosting.cc.o.d"
  "/root/repo/src/gbdt/tree.cc" "src/gbdt/CMakeFiles/tpr_gbdt.dir/tree.cc.o" "gcc" "src/gbdt/CMakeFiles/tpr_gbdt.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
