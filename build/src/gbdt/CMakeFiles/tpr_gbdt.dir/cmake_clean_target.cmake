file(REMOVE_RECURSE
  "libtpr_gbdt.a"
)
