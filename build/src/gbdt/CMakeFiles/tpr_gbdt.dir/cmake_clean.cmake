file(REMOVE_RECURSE
  "CMakeFiles/tpr_gbdt.dir/gradient_boosting.cc.o"
  "CMakeFiles/tpr_gbdt.dir/gradient_boosting.cc.o.d"
  "CMakeFiles/tpr_gbdt.dir/tree.cc.o"
  "CMakeFiles/tpr_gbdt.dir/tree.cc.o.d"
  "libtpr_gbdt.a"
  "libtpr_gbdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpr_gbdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
