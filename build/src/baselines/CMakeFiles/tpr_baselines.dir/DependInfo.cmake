
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bert_path.cc" "src/baselines/CMakeFiles/tpr_baselines.dir/bert_path.cc.o" "gcc" "src/baselines/CMakeFiles/tpr_baselines.dir/bert_path.cc.o.d"
  "/root/repo/src/baselines/common.cc" "src/baselines/CMakeFiles/tpr_baselines.dir/common.cc.o" "gcc" "src/baselines/CMakeFiles/tpr_baselines.dir/common.cc.o.d"
  "/root/repo/src/baselines/dgi.cc" "src/baselines/CMakeFiles/tpr_baselines.dir/dgi.cc.o" "gcc" "src/baselines/CMakeFiles/tpr_baselines.dir/dgi.cc.o.d"
  "/root/repo/src/baselines/gcn_tte.cc" "src/baselines/CMakeFiles/tpr_baselines.dir/gcn_tte.cc.o" "gcc" "src/baselines/CMakeFiles/tpr_baselines.dir/gcn_tte.cc.o.d"
  "/root/repo/src/baselines/gmi.cc" "src/baselines/CMakeFiles/tpr_baselines.dir/gmi.cc.o" "gcc" "src/baselines/CMakeFiles/tpr_baselines.dir/gmi.cc.o.d"
  "/root/repo/src/baselines/infograph.cc" "src/baselines/CMakeFiles/tpr_baselines.dir/infograph.cc.o" "gcc" "src/baselines/CMakeFiles/tpr_baselines.dir/infograph.cc.o.d"
  "/root/repo/src/baselines/memory_bank.cc" "src/baselines/CMakeFiles/tpr_baselines.dir/memory_bank.cc.o" "gcc" "src/baselines/CMakeFiles/tpr_baselines.dir/memory_bank.cc.o.d"
  "/root/repo/src/baselines/node2vec_path.cc" "src/baselines/CMakeFiles/tpr_baselines.dir/node2vec_path.cc.o" "gcc" "src/baselines/CMakeFiles/tpr_baselines.dir/node2vec_path.cc.o.d"
  "/root/repo/src/baselines/pim.cc" "src/baselines/CMakeFiles/tpr_baselines.dir/pim.cc.o" "gcc" "src/baselines/CMakeFiles/tpr_baselines.dir/pim.cc.o.d"
  "/root/repo/src/baselines/supervised.cc" "src/baselines/CMakeFiles/tpr_baselines.dir/supervised.cc.o" "gcc" "src/baselines/CMakeFiles/tpr_baselines.dir/supervised.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tpr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/gbdt/CMakeFiles/tpr_gbdt.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/tpr_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/tpr_par.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tpr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/node2vec/CMakeFiles/tpr_node2vec.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tpr_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
