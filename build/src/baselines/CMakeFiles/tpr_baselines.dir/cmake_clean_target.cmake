file(REMOVE_RECURSE
  "libtpr_baselines.a"
)
