# Empty dependencies file for tpr_baselines.
# This may be replaced when dependencies are built.
