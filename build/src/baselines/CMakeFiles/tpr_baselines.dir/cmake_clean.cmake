file(REMOVE_RECURSE
  "CMakeFiles/tpr_baselines.dir/bert_path.cc.o"
  "CMakeFiles/tpr_baselines.dir/bert_path.cc.o.d"
  "CMakeFiles/tpr_baselines.dir/common.cc.o"
  "CMakeFiles/tpr_baselines.dir/common.cc.o.d"
  "CMakeFiles/tpr_baselines.dir/dgi.cc.o"
  "CMakeFiles/tpr_baselines.dir/dgi.cc.o.d"
  "CMakeFiles/tpr_baselines.dir/gcn_tte.cc.o"
  "CMakeFiles/tpr_baselines.dir/gcn_tte.cc.o.d"
  "CMakeFiles/tpr_baselines.dir/gmi.cc.o"
  "CMakeFiles/tpr_baselines.dir/gmi.cc.o.d"
  "CMakeFiles/tpr_baselines.dir/infograph.cc.o"
  "CMakeFiles/tpr_baselines.dir/infograph.cc.o.d"
  "CMakeFiles/tpr_baselines.dir/memory_bank.cc.o"
  "CMakeFiles/tpr_baselines.dir/memory_bank.cc.o.d"
  "CMakeFiles/tpr_baselines.dir/node2vec_path.cc.o"
  "CMakeFiles/tpr_baselines.dir/node2vec_path.cc.o.d"
  "CMakeFiles/tpr_baselines.dir/pim.cc.o"
  "CMakeFiles/tpr_baselines.dir/pim.cc.o.d"
  "CMakeFiles/tpr_baselines.dir/supervised.cc.o"
  "CMakeFiles/tpr_baselines.dir/supervised.cc.o.d"
  "libtpr_baselines.a"
  "libtpr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
