# Empty dependencies file for tpr_core.
# This may be replaced when dependencies are built.
