file(REMOVE_RECURSE
  "CMakeFiles/tpr_core.dir/curriculum.cc.o"
  "CMakeFiles/tpr_core.dir/curriculum.cc.o.d"
  "CMakeFiles/tpr_core.dir/encoder.cc.o"
  "CMakeFiles/tpr_core.dir/encoder.cc.o.d"
  "CMakeFiles/tpr_core.dir/features.cc.o"
  "CMakeFiles/tpr_core.dir/features.cc.o.d"
  "CMakeFiles/tpr_core.dir/wsc_loss.cc.o"
  "CMakeFiles/tpr_core.dir/wsc_loss.cc.o.d"
  "CMakeFiles/tpr_core.dir/wsc_trainer.cc.o"
  "CMakeFiles/tpr_core.dir/wsc_trainer.cc.o.d"
  "CMakeFiles/tpr_core.dir/wsccl.cc.o"
  "CMakeFiles/tpr_core.dir/wsccl.cc.o.d"
  "libtpr_core.a"
  "libtpr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
