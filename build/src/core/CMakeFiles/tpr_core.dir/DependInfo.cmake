
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/curriculum.cc" "src/core/CMakeFiles/tpr_core.dir/curriculum.cc.o" "gcc" "src/core/CMakeFiles/tpr_core.dir/curriculum.cc.o.d"
  "/root/repo/src/core/encoder.cc" "src/core/CMakeFiles/tpr_core.dir/encoder.cc.o" "gcc" "src/core/CMakeFiles/tpr_core.dir/encoder.cc.o.d"
  "/root/repo/src/core/features.cc" "src/core/CMakeFiles/tpr_core.dir/features.cc.o" "gcc" "src/core/CMakeFiles/tpr_core.dir/features.cc.o.d"
  "/root/repo/src/core/wsc_loss.cc" "src/core/CMakeFiles/tpr_core.dir/wsc_loss.cc.o" "gcc" "src/core/CMakeFiles/tpr_core.dir/wsc_loss.cc.o.d"
  "/root/repo/src/core/wsc_trainer.cc" "src/core/CMakeFiles/tpr_core.dir/wsc_trainer.cc.o" "gcc" "src/core/CMakeFiles/tpr_core.dir/wsc_trainer.cc.o.d"
  "/root/repo/src/core/wsccl.cc" "src/core/CMakeFiles/tpr_core.dir/wsccl.cc.o" "gcc" "src/core/CMakeFiles/tpr_core.dir/wsccl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/tpr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/node2vec/CMakeFiles/tpr_node2vec.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/tpr_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tpr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/tpr_par.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
