file(REMOVE_RECURSE
  "libtpr_core.a"
)
