file(REMOVE_RECURSE
  "CMakeFiles/path_ranking.dir/path_ranking.cpp.o"
  "CMakeFiles/path_ranking.dir/path_ranking.cpp.o.d"
  "path_ranking"
  "path_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
