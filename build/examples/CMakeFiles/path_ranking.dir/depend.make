# Empty dependencies file for path_ranking.
# This may be replaced when dependencies are built.
