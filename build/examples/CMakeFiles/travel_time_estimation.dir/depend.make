# Empty dependencies file for travel_time_estimation.
# This may be replaced when dependencies are built.
