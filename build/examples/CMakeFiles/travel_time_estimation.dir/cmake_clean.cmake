file(REMOVE_RECURSE
  "CMakeFiles/travel_time_estimation.dir/travel_time_estimation.cpp.o"
  "CMakeFiles/travel_time_estimation.dir/travel_time_estimation.cpp.o.d"
  "travel_time_estimation"
  "travel_time_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/travel_time_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
