# Empty compiler generated dependencies file for curriculum_inspect.
# This may be replaced when dependencies are built.
