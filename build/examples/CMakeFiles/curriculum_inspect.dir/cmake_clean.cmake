file(REMOVE_RECURSE
  "CMakeFiles/curriculum_inspect.dir/curriculum_inspect.cpp.o"
  "CMakeFiles/curriculum_inspect.dir/curriculum_inspect.cpp.o.d"
  "curriculum_inspect"
  "curriculum_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curriculum_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
