# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/node2vec_test[1]_include.cmake")
include("/root/repo/build/tests/gbdt_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/transformer_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/nn_extra_test[1]_include.cmake")
include("/root/repo/build/tests/par_test[1]_include.cmake")
