
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/synth_test.cc" "tests/CMakeFiles/synth_test.dir/synth_test.cc.o" "gcc" "tests/CMakeFiles/synth_test.dir/synth_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/tpr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/tpr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/gbdt/CMakeFiles/tpr_gbdt.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/tpr_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/node2vec/CMakeFiles/tpr_node2vec.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tpr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tpr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/tpr_par.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
