#!/usr/bin/env python3
"""Merge per-bench smoke JSON records and gate on perf regressions.

Subcommands:

  merge <dir> -o merged.json
      Collects every *.json record written by the bench binaries
      (TPR_BENCH_JSON) under <dir> into one {"records": [...]} document,
      sorted by bench name so the artifact diffs cleanly.

  check <merged.json> <baseline.json> [--tolerance 0.25]
      Compares current metrics against the checked-in baseline. All
      gated metrics are lower-is-better; a metric regresses when
      current > baseline * (1 + tolerance). A baseline metric may be a
      bare number (uses the default tolerance) or an object
      {"value": v, "tolerance": t} for metrics with a wider noise band
      (wall time on shared CI runners). A bench or metric present in
      the baseline but missing from the merged record is also a
      failure: losing coverage silently would defeat the gate.

  throughput <merged.json> --bench <name> --gate METRIC:MIN[:DEGRADED] ...
      Floor-gates higher-is-better ratio metrics (batched-serving
      speedup, p99 gain) from one record of the merged smoke document.
      These metrics are deliberately NOT in bench_baseline.json — the
      check subcommand is lower-is-better-only. Each --gate names a
      metric and its required floor, with an optional degraded floor
      used when the runner has fewer cores than --threads (a saturated
      single pipeline and a batched pipeline then contend for the same
      core, compressing the measurable gap).

  speedup <timing.json> [--min-speedup 1.3]
      Gates the BENCH_parallel_training.json record written by
      run_benches.sh full mode: identical_metrics must be true (the
      bitwise-reproducibility contract across thread counts) and the
      1-vs-N-thread wall-clock speedup must clear the floor. The floor
      is core-count aware: on a runner with fewer cores than the
      benchmarked thread count, real parallel speedup is physically
      impossible, so the gate only requires that threading does not
      grossly slow the run down (--min-speedup-degraded, default 0.45).

Only the Python standard library is used.
"""

import argparse
import json
import os
import pathlib
import sys


def load_records(path):
    with open(path) as f:
        doc = json.load(f)
    return {rec["bench"]: rec for rec in doc["records"]}


def cmd_merge(args):
    records = []
    for p in sorted(pathlib.Path(args.dir).glob("*.json")):
        try:
            with open(p) as f:
                records.append(json.load(f))
        except (json.JSONDecodeError, OSError) as e:
            print(f"bench_gate: skipping unreadable {p}: {e}", file=sys.stderr)
            return 1
    records.sort(key=lambda r: r.get("bench", ""))
    merged = {"records": records}
    with open(args.output, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_gate: merged {len(records)} records into {args.output}")
    return 0


def baseline_entry(raw, default_tolerance):
    if isinstance(raw, dict):
        return float(raw["value"]), float(raw.get("tolerance", default_tolerance))
    return float(raw), default_tolerance


def cmd_check(args):
    current = load_records(args.merged)
    with open(args.baseline) as f:
        baseline = json.load(f)

    failures = []
    rows = []
    for rec in baseline["records"]:
        bench = rec["bench"]
        cur = current.get(bench)
        if cur is None:
            failures.append(f"{bench}: missing from merged results")
            continue
        for metric, raw in sorted(rec["metrics"].items()):
            base, tol = baseline_entry(raw, args.tolerance)
            if metric not in cur.get("metrics", {}):
                failures.append(f"{bench}/{metric}: missing from merged results")
                continue
            try:
                value = float(cur["metrics"][metric])
            except (TypeError, ValueError):
                failures.append(
                    f"{bench}/{metric}: non-numeric value "
                    f"{cur['metrics'][metric]!r} in merged results"
                )
                continue
            limit = base * (1.0 + tol)
            ok = value <= limit
            rows.append((bench, metric, base, value, tol, ok))
            if not ok:
                if base != 0:
                    delta = value / base - 1.0
                    failures.append(
                        f"{bench}/{metric}: {value:.6g} vs baseline "
                        f"{base:.6g} ({delta:+.1%} > allowed +{tol:.0%})"
                    )
                else:
                    failures.append(
                        f"{bench}/{metric}: {value:.6g} vs baseline 0 "
                        f"(any increase regresses)"
                    )

    width = max((len(f"{b}/{m}") for b, m, *_ in rows), default=20)
    print(f"{'metric':<{width}}  {'baseline':>12}  {'current':>12}  "
          f"{'tol':>5}  status")
    for bench, metric, base, value, tol, ok in rows:
        print(f"{bench + '/' + metric:<{width}}  {base:>12.6g}  "
              f"{value:>12.6g}  {tol:>5.0%}  {'ok' if ok else 'REGRESSED'}")

    if failures:
        print(f"\nbench_gate: {len(failures)} failure(s):", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"\nbench_gate: all {len(rows)} gated metrics within tolerance")
    return 0


def parse_gate(spec):
    """METRIC:MIN[:DEGRADED] -> (metric, min_floor, degraded_floor)."""
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            f"bad --gate {spec!r}: expected METRIC:MIN[:DEGRADED]")
    try:
        floor = float(parts[1])
        degraded = float(parts[2]) if len(parts) == 3 else floor
    except ValueError as e:
        raise argparse.ArgumentTypeError(f"bad --gate {spec!r}: {e}")
    return parts[0], floor, degraded


def cmd_throughput(args):
    current = load_records(args.merged)
    rec = current.get(args.bench)
    if rec is None:
        print(f"bench_gate: bench {args.bench!r} missing from {args.merged}",
              file=sys.stderr)
        return 1

    cores = os.cpu_count() or 1
    degraded_runner = cores < args.threads
    if degraded_runner:
        mode = (f"{cores} core(s) < {args.threads} workers: degraded floors "
                "(pipelines contend for the same cores)")
    else:
        mode = f"{cores} cores >= {args.threads} workers: full floors"
    print(f"bench_gate throughput: bench={args.bench} cores={cores} ({mode})")

    failures = []
    for metric, floor, degraded in args.gate:
        required = degraded if degraded_runner else floor
        raw = rec.get("metrics", {}).get(metric)
        if raw is None:
            failures.append(f"{metric}: missing from {args.bench} record")
            print(f"  {metric:<32} MISSING (floor {required:.2f})")
            continue
        try:
            value = float(raw)
        except (TypeError, ValueError):
            failures.append(f"{metric}: non-numeric value {raw!r} in "
                            f"{args.bench} record")
            print(f"  {metric:<32} NON-NUMERIC (floor {required:.2f})")
            continue
        ok = value >= required
        print(f"  {metric:<32} {value:>8.3f}  floor {required:.2f}  "
              f"{'ok' if ok else 'BELOW FLOOR'}")
        if not ok:
            failures.append(
                f"{metric}: {value:.3f} below required {required:.2f} ({mode})"
            )

    if failures:
        print(f"\nbench_gate: {len(failures)} failure(s):", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"\nbench_gate: all {len(args.gate)} throughput floor(s) cleared")
    return 0


def cmd_speedup(args):
    with open(args.timing) as f:
        rec = json.load(f)

    threads = int(rec.get("threads", 0))
    speedup = float(rec.get("speedup", 0.0))
    identical = rec.get("identical_metrics", False)
    cores = os.cpu_count() or 1

    failures = []
    if identical is not True:
        failures.append(
            "identical_metrics is not true: thread count changed the "
            "training result, breaking the bitwise-reproducibility contract"
        )
    if cores >= threads:
        floor = args.min_speedup
        mode = f"{cores} cores >= {threads} threads: full floor"
    else:
        floor = args.min_speedup_degraded
        mode = (f"{cores} core(s) < {threads} threads: degraded floor "
                "(no parallel speedup physically possible)")
    if speedup < floor:
        failures.append(
            f"speedup {speedup:.3f} below required {floor:.2f} ({mode})"
        )

    print(f"bench_gate speedup: bench={rec.get('bench', '?')} "
          f"threads={threads} cores={cores}")
    print(f"  seconds threads=1: {rec.get('seconds_threads1', '?')}")
    print(f"  seconds threads=N: {rec.get('seconds_threadsN', '?')}")
    print(f"  speedup:           {speedup:.3f} (floor {floor:.2f}; {mode})")
    print(f"  identical_metrics: {identical}")

    if failures:
        print(f"\nbench_gate: {len(failures)} failure(s):", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print("\nbench_gate: parallel-training gate passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_merge = sub.add_parser("merge", help="merge per-bench records")
    p_merge.add_argument("dir", help="directory of per-bench *.json records")
    p_merge.add_argument("-o", "--output", required=True)
    p_merge.set_defaults(func=cmd_merge)

    p_check = sub.add_parser("check", help="gate merged results vs baseline")
    p_check.add_argument("merged")
    p_check.add_argument("baseline")
    p_check.add_argument("--tolerance", type=float, default=0.25,
                         help="default relative tolerance (default 0.25)")
    p_check.set_defaults(func=cmd_check)

    p_tput = sub.add_parser(
        "throughput", help="floor-gate higher-is-better ratio metrics")
    p_tput.add_argument("merged", help="merged smoke document")
    p_tput.add_argument("--bench", required=True,
                        help="record name, e.g. bench_serve_latency")
    p_tput.add_argument("--gate", action="append", required=True,
                        type=parse_gate, metavar="METRIC:MIN[:DEGRADED]",
                        help="metric floor; repeatable. DEGRADED applies "
                             "when the runner has fewer cores than --threads")
    p_tput.add_argument("--threads", type=int, default=4,
                        help="worker threads the bench saturates (default 4)")
    p_tput.set_defaults(func=cmd_throughput)

    p_speedup = sub.add_parser(
        "speedup", help="gate the parallel-training timing record")
    p_speedup.add_argument("timing", help="BENCH_parallel_training.json")
    p_speedup.add_argument("--min-speedup", type=float, default=1.3,
                           help="required 1-vs-N speedup when the runner "
                                "has >= N cores (default 1.3)")
    p_speedup.add_argument("--min-speedup-degraded", type=float, default=0.45,
                           help="required speedup when the runner has fewer "
                                "cores than threads (default 0.45)")
    p_speedup.set_defaults(func=cmd_speedup)

    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
