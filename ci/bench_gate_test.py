#!/usr/bin/env python3
"""Regression tests for ci/bench_gate.py (stdlib only).

These lock the gate's failure contract: a metric that is missing,
non-numeric, or below its floor must FAIL the gate with a readable
message — never pass silently and never die with a traceback. Run with

    python3 ci/bench_gate_test.py
"""

import argparse
import contextlib
import io
import json
import os
import sys
import tempfile
import unittest
import unittest.mock

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_gate  # noqa: E402


def write_json(path, doc):
    with open(path, "w") as f:
        json.dump(doc, f)


def merged_doc(metrics, bench="bench_serve_latency"):
    return {"records": [{"bench": bench, "metrics": metrics}]}


@contextlib.contextmanager
def captured():
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        yield out, err


class ThroughputGateTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)
        self.merged = os.path.join(self.tmp.name, "merged.json")

    def run_gate(self, metrics, gates, threads=1, bench="bench_serve_latency"):
        write_json(self.merged, merged_doc(metrics))
        args = argparse.Namespace(
            merged=self.merged, bench=bench, threads=threads,
            gate=[bench_gate.parse_gate(g) for g in gates])
        with captured() as (out, err):
            rc = bench_gate.cmd_throughput(args)
        return rc, out.getvalue(), err.getvalue()

    def test_clears_floor(self):
        rc, _, _ = self.run_gate({"speedup": 3.0}, ["speedup:2.0"])
        self.assertEqual(rc, 0)

    def test_below_floor_fails(self):
        rc, _, err = self.run_gate({"speedup": 1.5}, ["speedup:2.0"])
        self.assertEqual(rc, 1)
        self.assertIn("below required", err)

    def test_missing_metric_fails_not_passes(self):
        rc, out, err = self.run_gate({"other": 9.0}, ["speedup:2.0"])
        self.assertEqual(rc, 1)
        self.assertIn("missing from bench_serve_latency record", err)
        self.assertIn("MISSING", out)

    def test_missing_bench_record_fails(self):
        write_json(self.merged, merged_doc({"speedup": 3.0}, bench="other"))
        args = argparse.Namespace(
            merged=self.merged, bench="bench_serve_latency", threads=1,
            gate=[bench_gate.parse_gate("speedup:2.0")])
        with captured() as (_, err):
            rc = bench_gate.cmd_throughput(args)
        self.assertEqual(rc, 1)
        self.assertIn("missing from", err.getvalue())

    def test_non_numeric_metric_fails_without_traceback(self):
        rc, _, err = self.run_gate({"speedup": "fast"}, ["speedup:2.0"])
        self.assertEqual(rc, 1)
        self.assertIn("non-numeric", err)

    def test_degraded_floor_applies_when_runner_has_fewer_cores(self):
        with unittest.mock.patch.object(bench_gate.os, "cpu_count",
                                        return_value=1):
            rc, _, _ = self.run_gate({"speedup": 1.2}, ["speedup:2.0:1.0"],
                                     threads=4)
        self.assertEqual(rc, 0)
        with unittest.mock.patch.object(bench_gate.os, "cpu_count",
                                        return_value=8):
            rc, _, _ = self.run_gate({"speedup": 1.2}, ["speedup:2.0:1.0"],
                                     threads=4)
        self.assertEqual(rc, 1)

    def test_parse_gate_rejects_malformed_specs(self):
        for bad in ("speedup", "speedup:", "speedup:x", "a:1:2:3"):
            with self.assertRaises(argparse.ArgumentTypeError):
                bench_gate.parse_gate(bad)
        self.assertEqual(bench_gate.parse_gate("m:2.0"), ("m", 2.0, 2.0))
        self.assertEqual(bench_gate.parse_gate("m:2.0:1.5"), ("m", 2.0, 1.5))


class CheckGateTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)
        self.merged = os.path.join(self.tmp.name, "merged.json")
        self.baseline = os.path.join(self.tmp.name, "baseline.json")

    def run_check(self, current_metrics, baseline_metrics, tolerance=0.25):
        write_json(self.merged, merged_doc(current_metrics, bench="b"))
        write_json(self.baseline,
                   {"records": [{"bench": "b", "metrics": baseline_metrics}]})
        args = argparse.Namespace(merged=self.merged, baseline=self.baseline,
                                  tolerance=tolerance)
        with captured() as (out, err):
            rc = bench_gate.cmd_check(args)
        return rc, out.getvalue(), err.getvalue()

    def test_within_tolerance_passes(self):
        rc, _, _ = self.run_check({"ms": 1.2}, {"ms": 1.0})
        self.assertEqual(rc, 0)

    def test_regression_fails(self):
        rc, _, err = self.run_check({"ms": 1.6}, {"ms": 1.0})
        self.assertEqual(rc, 1)
        self.assertIn("vs baseline", err)

    def test_baseline_metric_missing_from_merged_fails(self):
        rc, _, err = self.run_check({"other": 1.0}, {"ms": 1.0})
        self.assertEqual(rc, 1)
        self.assertIn("missing from merged results", err)

    def test_non_numeric_current_value_fails_without_traceback(self):
        rc, _, err = self.run_check({"ms": None}, {"ms": 1.0})
        self.assertEqual(rc, 1)
        self.assertIn("non-numeric", err)

    def test_per_metric_tolerance_object(self):
        rc, _, _ = self.run_check({"ms": 1.9}, {"ms": {"value": 1.0,
                                                       "tolerance": 1.0}})
        self.assertEqual(rc, 0)
        rc, _, _ = self.run_check({"ms": 2.1}, {"ms": {"value": 1.0,
                                                       "tolerance": 1.0}})
        self.assertEqual(rc, 1)


class MergeTest(unittest.TestCase):
    def test_merge_sorts_and_rejects_unreadable_records(self):
        with tempfile.TemporaryDirectory() as tmp:
            write_json(os.path.join(tmp, "b.json"), {"bench": "zeta"})
            write_json(os.path.join(tmp, "a.json"), {"bench": "alpha"})
            out_path = os.path.join(tmp, "merged.json")
            args = argparse.Namespace(dir=tmp, output=out_path)
            with captured():
                self.assertEqual(bench_gate.cmd_merge(args), 0)
            with open(out_path) as f:
                doc = json.load(f)
            self.assertEqual([r["bench"] for r in doc["records"]],
                             ["alpha", "zeta"])

            with open(os.path.join(tmp, "broken.json"), "w") as f:
                f.write("{not json")
            with captured():
                self.assertEqual(bench_gate.cmd_merge(args), 1)


class SpeedupGateTest(unittest.TestCase):
    def run_speedup(self, rec, min_speedup=1.3, degraded=0.45):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "timing.json")
            write_json(path, rec)
            args = argparse.Namespace(timing=path, min_speedup=min_speedup,
                                      min_speedup_degraded=degraded)
            with captured() as (_, err):
                rc = bench_gate.cmd_speedup(args)
            return rc, err.getvalue()

    def test_divergent_metrics_fail_even_with_good_speedup(self):
        rc, err = self.run_speedup({"bench": "b", "threads": 1,
                                    "speedup": 9.0,
                                    "identical_metrics": False})
        self.assertEqual(rc, 1)
        self.assertIn("identical_metrics", err)

    def test_identical_metrics_and_speedup_pass(self):
        rc, _ = self.run_speedup({"bench": "b", "threads": 1, "speedup": 2.0,
                                  "identical_metrics": True})
        self.assertEqual(rc, 0)


if __name__ == "__main__":
    unittest.main()
