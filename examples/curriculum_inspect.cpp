// Curriculum inspection: runs the curriculum sample-evaluation stage
// (Section VI-B) on a small city and prints how difficulty scores relate
// to path length, plus the resulting stage composition — a window into
// what the learned curriculum actually orders.
//
//   ./build/examples/curriculum_inspect

#include <cstdio>
#include <memory>
#include <numeric>

#include "core/curriculum.h"
#include "synth/presets.h"
#include "util/table_printer.h"

int main() {
  using namespace tpr;

  synth::CityPreset preset = synth::AalborgPreset();
  synth::ScaleDataset(preset, 0.35);
  auto dataset = synth::BuildPresetDataset(preset);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto data = std::make_shared<synth::CityDataset>(std::move(*dataset));

  core::FeatureConfig fc;
  fc.temporal_graph.slots_per_day = 96;
  auto features_or = core::BuildFeatureSpace(data, fc);
  if (!features_or.ok()) {
    std::fprintf(stderr, "features: %s\n",
                 features_or.status().ToString().c_str());
    return 1;
  }
  auto features =
      std::make_shared<const core::FeatureSpace>(std::move(*features_or));

  std::vector<int> all(data->unlabeled.size());
  std::iota(all.begin(), all.end(), 0);

  core::WscConfig wsc;
  wsc.encoder.d_hidden = 32;  // small experts are enough for inspection
  core::CurriculumConfig curriculum;
  curriculum.num_meta_sets = 4;
  curriculum.expert_epochs = 1;

  std::printf("Scoring %zu temporal paths with %d expert WSC models...\n",
              all.size(), curriculum.num_meta_sets);
  auto scored = core::EvaluateDifficulty(features, wsc, curriculum, all);
  if (!scored.ok()) {
    std::fprintf(stderr, "difficulty: %s\n",
                 scored.status().ToString().c_str());
    return 1;
  }

  Rng rng(3);
  auto stages = core::BuildStages(*scored, curriculum.num_meta_sets, rng);

  TablePrinter t({"Stage", "#paths", "Mean difficulty score", "Mean #edges",
                  "Mean length (m)"});
  for (size_t st = 0; st < stages.size(); ++st) {
    double mean_edges = 0, mean_len = 0, mean_score = 0;
    for (int idx : stages[st]) {
      mean_edges += static_cast<double>(data->unlabeled[idx].path.size());
      mean_len += data->network->PathLength(data->unlabeled[idx].path);
    }
    for (const auto& s : *scored) {
      for (int idx : stages[st]) {
        if (s.index == idx) mean_score += s.score;
      }
    }
    const double n = static_cast<double>(stages[st].size());
    t.AddRow({std::to_string(st + 1), std::to_string(stages[st].size()),
              TablePrinter::Num(mean_score / n, 3),
              TablePrinter::Num(mean_edges / n, 1),
              TablePrinter::Num(mean_len / n, 0)});
  }
  std::printf("Curriculum stages (easy -> hard):\n%s", t.ToString().c_str());
  std::printf(
      "Higher score = the sample's TPR agrees across experts (Eq. 13).\n");
  return 0;
}
