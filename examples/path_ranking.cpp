// Path ranking walkthrough: for one origin-destination query, rank the
// trajectory path against its alternatives using WSCCL representations
// and a GBR probe, and print the predicted vs ground-truth ordering —
// the Fig. 1 scenario of the paper (rankings change with departure time).
//
//   ./build/examples/path_ranking

#include <algorithm>
#include <cstdio>
#include <memory>
#include <numeric>

#include "core/wsccl.h"
#include "eval/downstream.h"
#include "gbdt/gradient_boosting.h"
#include "synth/presets.h"
#include "util/table_printer.h"

int main() {
  using namespace tpr;

  synth::CityPreset preset = synth::AalborgPreset();
  synth::ScaleDataset(preset, 0.5);
  auto dataset = synth::BuildPresetDataset(preset);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto data = std::make_shared<synth::CityDataset>(std::move(*dataset));

  core::FeatureConfig fc;
  fc.temporal_graph.slots_per_day = 96;
  auto features_or = core::BuildFeatureSpace(data, fc);
  if (!features_or.ok()) {
    std::fprintf(stderr, "features: %s\n",
                 features_or.status().ToString().c_str());
    return 1;
  }
  auto features =
      std::make_shared<const core::FeatureSpace>(std::move(*features_or));

  core::WsccalConfig cfg;
  cfg.curriculum.num_meta_sets = 4;
  cfg.curriculum.expert_epochs = 1;
  cfg.final_epochs = 2;
  auto model_or = core::WsccalPipeline::Train(features, cfg);
  if (!model_or.ok()) {
    std::fprintf(stderr, "wsccl: %s\n",
                 model_or.status().ToString().c_str());
    return 1;
  }
  auto& model = *model_or;

  // Fit a ranking-score GBR probe on the labeled training split.
  std::vector<int> train, test;
  eval::SplitGroups(data->labeled, 0.8, 99, &train, &test);
  auto encode = [&](const synth::TemporalPathSample& s) {
    return model->Encode(s);
  };
  std::vector<synth::TemporalPathSample> train_samples;
  std::vector<float> train_scores;
  for (int i : train) {
    train_samples.push_back(data->labeled[i]);
    train_scores.push_back(static_cast<float>(data->labeled[i].rank_score));
  }
  const auto x_train = eval::BuildFeatureMatrix(train_samples, encode);
  gbdt::GradientBoostingRegressor gbr;
  if (auto st = gbr.Fit(x_train, train_scores); !st.ok()) {
    std::fprintf(stderr, "gbr: %s\n", st.ToString().c_str());
    return 1;
  }

  // Pick the first test group and rank its candidate paths.
  const int group = data->labeled[test[0]].group;
  std::vector<const synth::TemporalPathSample*> candidates;
  for (int i : test) {
    if (data->labeled[i].group == group) candidates.push_back(&data->labeled[i]);
  }
  std::vector<double> predicted;
  for (const auto* c : candidates) {
    const auto rep = encode(*c);
    gbdt::Matrix m(1, static_cast<int>(rep.size()));
    std::copy(rep.begin(), rep.end(), m.data.begin());
    predicted.push_back(gbr.Predict(m.row(0)));
  }
  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return predicted[a] > predicted[b]; });

  std::printf("OD query group %d (%zu candidate paths):\n", group,
              candidates.size());
  TablePrinter t({"Rank", "#edges", "Length (m)", "Predicted score",
                  "True score", "Driver's choice"});
  for (size_t r = 0; r < order.size(); ++r) {
    const auto* c = candidates[order[r]];
    t.AddRow({std::to_string(r + 1), std::to_string(c->path.size()),
              TablePrinter::Num(data->network->PathLength(c->path), 0),
              TablePrinter::Num(predicted[order[r]], 3),
              TablePrinter::Num(c->rank_score, 3),
              c->recommended ? "yes" : ""});
  }
  std::printf("%s", t.ToString().c_str());
  return 0;
}
