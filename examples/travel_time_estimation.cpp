// Travel-time estimation walkthrough: compares a WSCCL representation
// probe against a purely topological node2vec baseline and against the
// supervised DeepGTT model, on the Harbin analogue. Demonstrates the full
// public API: presets, feature spaces, the WSCCL pipeline, baselines, and
// the downstream evaluation harness.
//
//   ./build/examples/travel_time_estimation

#include <cstdio>
#include <memory>

#include "baselines/node2vec_path.h"
#include "baselines/supervised.h"
#include "core/wsccl.h"
#include "eval/downstream.h"
#include "synth/presets.h"
#include "util/table_printer.h"

int main() {
  using namespace tpr;

  synth::CityPreset preset = synth::HarbinPreset();
  synth::ScaleDataset(preset, 0.5);
  auto dataset = synth::BuildPresetDataset(preset);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto data = std::make_shared<synth::CityDataset>(std::move(*dataset));

  core::FeatureConfig fc;
  fc.temporal_graph.slots_per_day = 96;
  auto features_or = core::BuildFeatureSpace(data, fc);
  if (!features_or.ok()) {
    std::fprintf(stderr, "features: %s\n",
                 features_or.status().ToString().c_str());
    return 1;
  }
  auto features =
      std::make_shared<const core::FeatureSpace>(std::move(*features_or));

  TablePrinter t({"Method", "MAE (s)", "MARE", "MAPE (%)"});
  auto add = [&](const std::string& name, const eval::TaskScores& s) {
    t.AddRow({name, TablePrinter::Num(s.tte_mae), TablePrinter::Num(s.tte_mare),
              TablePrinter::Num(s.tte_mape)});
  };

  // 1. Topology-only baseline.
  {
    baselines::Node2vecPathModel model(features);
    model.Train();
    auto s = eval::EvaluateTasks(*data, [&](const synth::TemporalPathSample& x) {
      return model.Encode(x);
    });
    add(model.name(), *s);
  }

  // 2. Supervised DeepGTT trained on the probe's labeled split.
  {
    std::vector<int> train, test;
    eval::SplitGroups(data->labeled, 0.8, 99, &train, &test);
    baselines::SupervisedConfig cfg;
    cfg.primary = baselines::SupervisedTask::kTravelTime;
    baselines::DeepGttModel model(features, train, cfg);
    if (auto st = model.Train(); !st.ok()) {
      std::fprintf(stderr, "deepgtt: %s\n", st.ToString().c_str());
      return 1;
    }
    auto s = eval::EvaluateTasks(*data, [&](const synth::TemporalPathSample& x) {
      return model.Encode(x);
    });
    add(model.name(), *s);
  }

  // 3. WSCCL (weakly supervised, no task labels used for the encoder).
  {
    core::WsccalConfig cfg;
    cfg.curriculum.num_meta_sets = 4;
    cfg.curriculum.expert_epochs = 1;
    cfg.final_epochs = 2;
    auto model = core::WsccalPipeline::Train(features, cfg);
    if (!model.ok()) {
      std::fprintf(stderr, "wsccl: %s\n", model.status().ToString().c_str());
      return 1;
    }
    auto s = eval::EvaluateTasks(*data, [&](const synth::TemporalPathSample& x) {
      return (*model)->Encode(x);
    });
    add("WSCCL", *s);
  }

  std::printf("Travel-time estimation on %s (GBR probes on frozen reps):\n%s",
              data->name.c_str(), t.ToString().c_str());
  return 0;
}
