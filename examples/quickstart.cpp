// Quickstart: generate a small synthetic city, train WSCCL on its
// unlabeled temporal paths, and use the learned representations for
// travel-time estimation with a gradient-boosting probe.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "core/features.h"
#include "core/wsccl.h"
#include "eval/downstream.h"
#include "synth/presets.h"
#include "util/table_printer.h"

int main() {
  using namespace tpr;

  // 1. A small synthetic city (Aalborg analogue, shrunk for speed).
  synth::CityPreset preset = synth::AalborgPreset();
  synth::ScaleDataset(preset, 0.4);
  auto dataset_or = synth::BuildPresetDataset(preset);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset_or.status().ToString().c_str());
    return 1;
  }
  auto data = std::make_shared<synth::CityDataset>(std::move(*dataset_or));
  std::printf("City '%s': %d nodes, %d edges, %zu unlabeled / %zu labeled "
              "temporal paths\n",
              data->name.c_str(), data->network->num_nodes(),
              data->network->num_edges(), data->unlabeled.size(),
              data->labeled.size());

  // 2. Precompute node2vec features (road topology + temporal graph).
  core::FeatureConfig feature_config;
  feature_config.temporal_graph.slots_per_day = 96;  // 15-minute slots
  auto features_or = core::BuildFeatureSpace(data, feature_config);
  if (!features_or.ok()) {
    std::fprintf(stderr, "features: %s\n",
                 features_or.status().ToString().c_str());
    return 1;
  }
  auto features =
      std::make_shared<const core::FeatureSpace>(std::move(*features_or));

  // 3. Train WSCCL (weakly-supervised contrastive + curriculum).
  core::WsccalConfig config;
  config.curriculum.num_meta_sets = 3;
  config.final_epochs = 3;
  auto model_or = core::WsccalPipeline::Train(features, config);
  if (!model_or.ok()) {
    std::fprintf(stderr, "train: %s\n", model_or.status().ToString().c_str());
    return 1;
  }
  auto& model = *model_or;
  std::printf("Trained WSCCL; final contrastive loss %.4f\n",
              model->final_loss());

  // 4. Downstream: travel-time estimation via a GBR probe on frozen TPRs.
  auto scores_or = eval::EvaluateTasks(
      *data, [&](const synth::TemporalPathSample& s) {
        return model->Encode(s);
      });
  if (!scores_or.ok()) {
    std::fprintf(stderr, "eval: %s\n", scores_or.status().ToString().c_str());
    return 1;
  }
  const auto& s = *scores_or;
  TablePrinter t({"Task", "Metric", "Value"});
  t.AddRow({"Travel time", "MAE (s)", TablePrinter::Num(s.tte_mae)});
  t.AddRow({"Travel time", "MARE", TablePrinter::Num(s.tte_mare)});
  t.AddRow({"Travel time", "MAPE (%)", TablePrinter::Num(s.tte_mape)});
  t.AddRow({"Path ranking", "MAE", TablePrinter::Num(s.pr_mae)});
  t.AddRow({"Path ranking", "Kendall tau", TablePrinter::Num(s.pr_tau)});
  t.AddRow({"Path ranking", "Spearman rho", TablePrinter::Num(s.pr_rho)});
  t.AddRow({"Recommendation", "Accuracy", TablePrinter::Num(s.rec_acc)});
  t.AddRow({"Recommendation", "Hit rate", TablePrinter::Num(s.rec_hr)});
  std::printf("%s", t.ToString().c_str());
  return 0;
}
