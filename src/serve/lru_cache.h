#ifndef TPR_SERVE_LRU_CACHE_H_
#define TPR_SERVE_LRU_CACHE_H_

// Thread-safe LRU cache of path embeddings, keyed by (edge sequence,
// time bucket). The degradation ladder's middle rung: when the full
// temporal encoder is unavailable, a previously computed bucket-level
// embedding is close enough — departure times within one bucket map to
// the same temporal-graph neighbourhood anyway.
//
// Values MUST be pure functions of the key (tpr::serve computes them at
// the bucket-representative time, never the request's exact time), so a
// hit and a recompute return bitwise-identical bytes and eviction order
// can never change what a request observes — only whether it pays the
// recompute.

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace tpr::serve {

class EmbeddingLruCache {
 public:
  explicit EmbeddingLruCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached embedding and refreshes its recency, or nullopt.
  std::optional<std::vector<float>> Get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entries beyond capacity. A capacity of 0 disables caching.
  void Put(const std::string& key, std::vector<float> value) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    while (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    index_.clear();
    order_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return order_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<std::pair<std::string, std::vector<float>>> order_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, std::vector<float>>>::
                         iterator>
      index_;
};

}  // namespace tpr::serve

#endif  // TPR_SERVE_LRU_CACHE_H_
