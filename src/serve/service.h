#ifndef TPR_SERVE_SERVICE_H_
#define TPR_SERVE_SERVICE_H_

// In-process embedding inference service over the trained WSCCL temporal
// path encoder.
//
// Requests enter a bounded queue guarded by admission control (shed or
// block when full), are processed by dedicated worker threads, and carry
// an optional deadline that is propagated into the encoder forward pass
// as cooperative cancellation. Transient rung-0 failures are retried
// with deterministic jittered exponential backoff; sustained failure
// trips a per-model-generation circuit breaker. Every request that is
// admitted resolves — in the worst case via the degradation ladder:
//
//   rung 0 (kFull)      full temporal encoder at the exact request time
//   rung 1 (kQuantized) int8 post-training-quantized twin of the pinned
//                       generation at the exact request time (per-request
//                       path) or the group encode time (batched path) —
//                       keeps the temporal signal at ~4x smaller weights
//   rung 2 (kCached)    LRU-cached embedding keyed by (path, time bucket),
//                       computed at the bucket-representative time
//   rung 3 (kFallback)  node2vec mean-pool over the path's edge endpoint
//                       embeddings, shaped to representation_dim
//
// The quantized rung serves only when the generation carries an int8
// twin (published by tpr::rollout, or loaded from the quant-<seq>.q8
// artifact beside the checkpoint) and ServiceConfig::quantized_rung is
// on (TPR_QUANT=0/off force-disables it). Its fault site is
// "quant-encode", keyed per request by id and per batch group by the
// group hash, so outage plans can fail rung 0 (encoder-forward) while
// the int8 rung keeps answering — and a quant-encode fault degrades a
// whole batched group at once, like batch-flush does for rung 0.
// Quantized failures are NEVER breaker signals: the breaker describes
// the fp32 model's health only.
//
// Micro-batching. With ServiceConfig::batch_max > 0 the pipeline runs
// batched: admissions feed a deterministic tpr::batch::BatchFormer
// (flush by size or logical-ticks age, duplicate (path, time-bucket,
// generation) keys coalesced into one encode) and workers run each
// flushed batch through ONE padded rung-0 forward per model generation.
// Every request keeps its own deadline, retry accounting, breaker fold,
// and canary routing; rung-0 fault verdicts are keyed by the batch-group
// hash so a request's outcome never depends on which batch it rode in.
//
// Generations. The service holds up to TWO live model generations — the
// incumbent and an optional canary — each with its own rung-2 cache,
// circuit breaker, and metrics (their state describes one set of
// parameters and never leaks across generations). Model swaps are
// RCU-style: writers build a fresh immutable generation slot and swap
// the shared pointer; every request *pins* its generation at admission,
// so workers read the model without a lock and an in-flight request is
// always served by exactly one generation even while swaps race past it.
//
// Canarying. While a canary is installed, a deterministic keyed
// fraction of requests (hash of the request id — never wall clock or
// thread identity) routes to it. The canary auto-resolves in admission
// (ticket) order: `canary_promote_after` clean rung-0 requests promote
// it to incumbent; a canary breaker trip or an injected
// `canary-regression` fault rolls it back — incumbent traffic is never
// disturbed either way. tpr::rollout drives this loop end to end
// (validation gate, manifest lineage, quarantine).
//
// Determinism contract (what the soak tests assert): with a fixed
// TPR_FAULT spec, seed, and single submitter, the (status, rung,
// generation, embedding bytes) outcome of every request — and every
// canary promotion/rollback decision — is identical across runs and
// worker counts. This falls out of four choices: fault verdicts are
// keyed by request id (never by wall clock or thread), cache values are
// pure functions of the cache key (so hit vs recompute is invisible),
// the circuit breaker folds keyed failure *predictions* in admission
// order rather than observed completions in race order, and canary
// routing/resolution are likewise folded at admission. Deadlines are
// wall-clock dependent and therefore outside the contract.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "batch/batch.h"
#include "core/encoder.h"
#include "core/features.h"
#include "obs/metrics.h"
#include "quant/quant.h"
#include "serve/lru_cache.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace tpr::serve {

/// One embedding request: a path and a departure time. `id` is the
/// stable request identity — fault verdicts, backoff jitter, and canary
/// routing key off it, so replaying the same ids reproduces the same
/// outcomes.
struct PathQuery {
  graph::Path path;
  int64_t depart_time_s = 0;
  uint64_t id = 0;
};

/// Which rung of the degradation ladder produced the embedding.
enum class Rung { kFull = 0, kQuantized = 1, kCached = 2, kFallback = 3 };

const char* RungName(Rung r);

/// Outcome of one admitted request.
struct ServeResult {
  Status status;                  // OK, DeadlineExceeded, or Unavailable
  Rung rung = Rung::kFull;        // valid when status.ok()
  std::vector<float> embedding;   // representation_dim values when ok
  int attempts = 0;               // rung-0 encoder attempts made
  uint64_t ticket = 0;            // admission order, 0-based
  uint64_t generation = 0;        // model generation that served it
  bool canary = false;            // served by the canary generation
};

/// How a canary resolved.
enum class CanaryVerdict { kPromoted, kRolledBack };

const char* CanaryVerdictName(CanaryVerdict v);

/// One resolved canary episode, consumed by the rollout controller.
struct CanaryResolution {
  uint64_t generation = 0;
  CanaryVerdict verdict = CanaryVerdict::kPromoted;
  std::string reason;   // "clean-requests", "breaker-trip", ...
  uint64_t routed = 0;  // requests routed to the canary
  uint64_t clean = 0;   // clean rung-0 outcomes folded
};

/// Snapshot of the in-flight canary (if any).
struct CanaryStatus {
  bool installed = false;
  uint64_t generation = 0;
  uint64_t routed = 0;
  uint64_t clean = 0;
};

struct ServiceConfig {
  int num_workers = 4;
  int queue_capacity = 256;
  /// Full queue: true blocks the submitter (backpressure), false sheds
  /// with ResourceExhausted (load shedding).
  bool block_when_full = false;
  /// Rung-0 encoder attempts = 1 + max_retries.
  int max_retries = 2;
  double backoff_base_ms = 1.0;
  double backoff_max_ms = 50.0;
  /// Consecutive rung-0 request failures that open the breaker.
  int breaker_trip_threshold = 5;
  /// Requests sent straight to rung 1 while open, before one half-open
  /// probe is allowed back into rung 0.
  int breaker_open_requests = 16;
  size_t cache_capacity = 1024;
  /// Width of the rung-2 cache's time buckets.
  int64_t time_bucket_s = 900;
  /// Drives backoff jitter (mixed with request id and attempt).
  uint64_t seed = 7;
  /// Per-mille of requests routed to an installed canary, decided by a
  /// pure hash of the request id.
  int canary_permille = 200;
  /// Clean rung-0 canary requests that promote the canary to incumbent.
  int canary_promote_after = 64;
  /// Micro-batching. >0 switches the pipeline to batched mode: Submit
  /// feeds a deterministic BatchFormer (tpr::batch) instead of the
  /// per-request queue, and workers run whole batches through ONE padded
  /// encoder forward. 0 (default) keeps the legacy per-request pipeline.
  /// Deadline/retry/breaker/canary semantics are preserved per request
  /// either way; in batched mode the rung-0 fault verdicts are keyed by
  /// the request's batch-group hash, so outcomes stay independent of
  /// batch composition (see tpr::batch).
  int batch_max = 0;
  /// Age-flush threshold in logical ticks (one tick per admission).
  int batch_ticks = 128;
  /// Coalesce duplicate (path, time-bucket, generation) requests into one
  /// encode whose result fans out to all waiters.
  bool batch_coalesce = true;
  /// Serve the int8 rung when the pinned generation carries a quantized
  /// twin. Force-disabled process-wide by TPR_QUANT=0/off (checked once
  /// at service construction).
  bool quantized_rung = true;
  /// Shard identity (fleet mode). Non-empty `shard` installs a
  /// fault::ScopedShard around admission, model loads, and worker
  /// processing, so `site@shard` TPR_FAULT rules can target exactly this
  /// instance. Empty (default) leaves the caller's scope untouched.
  std::string shard;
  /// Obs namespace for every metric this instance records
  /// ("shard0." -> "shard0.serve.requests"). Empty (default) keeps the
  /// historical global names — which also means two unprefixed instances
  /// in one process fold into the same counters; give fleet instances
  /// distinct prefixes.
  std::string metrics_prefix;
};

/// Point-in-time health snapshot, exported for routing tiers. Breaker
/// state and consecutive_failures describe the incumbent generation and
/// fold deterministically (admission order) under an active fault plan;
/// queue_depth is an instantaneous load signal and is NOT part of the
/// determinism contract — routers must not let it influence decisions
/// they need reproduced bitwise.
struct ServiceHealth {
  bool started = false;
  uint64_t generation = 0;       // incumbent model generation (0 = none)
  int queue_depth = 0;           // queued + batch-waiting requests
  int breaker_state = 0;         // 0 closed, 1 open, 2 half-open
  int consecutive_failures = 0;  // incumbent rung-0 failures folded
  bool canary_installed = false;
};

/// Multi-threaded inference service. Construction wires the pipeline but
/// takes no model; call LoadModel (or InstallModel) then Start. All
/// public methods are thread-safe.
class InferenceService {
 public:
  InferenceService(std::shared_ptr<const core::FeatureSpace> features,
                   const core::EncoderConfig& encoder_config,
                   const ServiceConfig& config);
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Writes `encoder`'s parameters as serve model generation `generation`
  /// into `dir` (a ckpt::CheckpointDir of envelope-wrapped files).
  static Status SaveModel(const core::TemporalPathEncoder& encoder,
                          const std::string& dir, uint64_t generation);

  /// A serve-model checkpoint payload decoded into a fresh encoder.
  struct DecodedModel {
    std::shared_ptr<const core::TemporalPathEncoder> encoder;
    uint64_t generation = 0;
  };

  /// Decodes a SaveModel payload (already envelope-unwrapped) into a
  /// fresh encoder built from `config`. FailedPrecondition on a foreign
  /// tag, a representation-dim mismatch, or a parameter-shape mismatch.
  static StatusOr<DecodedModel> DecodeModelPayload(
      std::string_view payload,
      std::shared_ptr<const core::FeatureSpace> features,
      const core::EncoderConfig& config);

  /// Loads the newest valid model generation from `dir` into a fresh
  /// encoder built from the constructor's EncoderConfig. On any failure
  /// (injected ckpt-read fault, torn file, shape mismatch) the currently
  /// installed model — if any — keeps serving and the error is returned.
  /// Like InstallModel, a successful load starts the generation with a
  /// fresh circuit breaker and an empty rung-2 cache: breaker state and
  /// cached embeddings described the old parameters.
  Status LoadModel(const std::string& dir);

  /// Installs an already-built encoder as the incumbent model generation
  /// `generation`. ALWAYS starts with a fresh circuit breaker and an
  /// empty rung-2 cache — the same stale-state contract as LoadModel —
  /// and rolls back any in-flight canary (the comparison baseline it was
  /// canarying against is gone). In-flight requests pinned to the
  /// previous generation complete against it.
  /// `quant` (optional) is the generation's int8 twin; it shares the
  /// generation number and serves the quantized rung.
  void InstallModel(std::shared_ptr<const core::TemporalPathEncoder> encoder,
                    uint64_t generation,
                    std::shared_ptr<const quant::QuantizedEncoder> quant =
                        nullptr);

  /// Installs `encoder` as the canary generation: a keyed fraction of
  /// subsequent requests route to it (see ServiceConfig). The canary
  /// auto-resolves — promote on canary_promote_after clean requests,
  /// roll back on breaker trip or injected canary-regression fault —
  /// and the resolution is queued for TakeCanaryResolution.
  /// FailedPrecondition without an incumbent or with a canary already
  /// in flight.
  Status BeginCanary(std::shared_ptr<const core::TemporalPathEncoder> encoder,
                     uint64_t generation,
                     std::shared_ptr<const quant::QuantizedEncoder> quant =
                         nullptr);

  /// Force-resolves the in-flight canary (observed-mode controllers,
  /// tests). FailedPrecondition when no canary is installed.
  Status PromoteCanary(const std::string& reason = "manual");
  Status AbortCanary(const std::string& reason = "manual");

  /// Oldest unconsumed canary resolution, or nullopt. The rollout
  /// controller polls this to record lineage.
  std::optional<CanaryResolution> TakeCanaryResolution();

  CanaryStatus canary_status() const;

  /// Health snapshot for routing tiers (see ServiceHealth).
  ServiceHealth Health() const;

  /// Spawns the worker threads. FailedPrecondition without a model.
  Status Start();

  /// Stops admission, fails queued-but-unprocessed requests with
  /// Unavailable, wakes submitters blocked on a full queue (they shed
  /// with Unavailable instead of deadlocking), and joins the workers.
  /// Idempotent and safe to race from several threads; the destructor
  /// calls it.
  void Shutdown();

  /// Admission control. On success the future resolves to the request's
  /// ServeResult; the error path is shedding (ResourceExhausted — queue
  /// full and block_when_full is false, or an injected queue-full fault)
  /// or Unavailable after Shutdown. `deadline_ms` <= 0 means no
  /// deadline; otherwise it is relative to the moment of admission and
  /// propagates into the worker as cooperative cancellation.
  StatusOr<std::future<ServeResult>> Submit(PathQuery query,
                                            double deadline_ms = 0);

  /// Submit + wait, folding admission errors into ServeResult::status.
  ServeResult SubmitAndWait(PathQuery query, double deadline_ms = 0);

  /// Generation of the incumbent model (0 before any install).
  uint64_t model_generation() const;

  /// The incumbent encoder (nullptr before any install). The rollout
  /// controller probes it to score candidates against the live model.
  std::shared_ptr<const core::TemporalPathEncoder> live_model() const;

  int representation_dim() const { return encoder_config_.d_hidden; }

  /// Pure routing predicate: would request `id` route to a canary?
  /// Exposed so tests and the rollout bench can predict traffic splits.
  bool RoutesToCanary(uint64_t id) const;

 private:
  // Breaker state machine. Guarded by mu_ (admission path) so the fold
  // order is exactly the ticket order.
  struct Breaker {
    enum class State { kClosed, kOpen, kHalfOpen };
    State state = State::kClosed;
    int consecutive_failures = 0;
    int open_skips_remaining = 0;
    bool probe_in_flight = false;  // observed mode only
  };

  /// One serving generation: an immutable model plus the mutable
  /// per-generation state (rung-2 cache, breaker, canary bookkeeping).
  /// The model and cache pointers are immutable after construction and
  /// read lock-free by pinned requests; breaker/routed/clean are
  /// guarded by mu_.
  struct GenState {
    std::shared_ptr<const core::TemporalPathEncoder> model;
    /// Int8 twin serving the quantized rung; null when the generation
    /// was published without one (gate failure, TPR_QUANT off, no
    /// artifact on disk).
    std::shared_ptr<const quant::QuantizedEncoder> quant;
    uint64_t generation = 0;
    std::unique_ptr<EmbeddingLruCache> cache;
    Breaker breaker;
    uint64_t routed = 0;  // canary: requests routed here
    uint64_t clean = 0;   // canary: clean rung-0 outcomes
  };

  struct Request {
    PathQuery query;
    uint64_t ticket = 0;
    std::shared_ptr<GenState> gen;  // pinned at admission
    bool canary = false;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    bool skip_rung0 = false;       // breaker-open: straight to rung 1
    bool breaker_predicted = false;  // outcome already folded at admission
    bool breaker_probe = false;      // observed-mode half-open probe
    // Batched mode: the request's batch-group hash, computed at admission
    // from (path, encode time, pinned generation). Keys the batched fault
    // verdicts so outcomes are independent of batch composition.
    uint64_t group_key = 0;
    // Batched mode: the group-level quantized attempt already ran (and
    // failed) for this request's group, so DegradedLadder must not try
    // the rung again per-request.
    bool quant_decided = false;
    std::promise<ServeResult> promise;
  };

  /// Builds a fresh generation slot (fresh breaker, empty cache).
  std::shared_ptr<GenState> MakeGenState(
      std::shared_ptr<const core::TemporalPathEncoder> encoder,
      uint64_t generation,
      std::shared_ptr<const quant::QuantizedEncoder> quant) const;

  /// Pure prediction: will this request degrade WITHOUT a rung-0 attempt
  /// (injected scratch-alloc failure, or — batched mode — an injected
  /// batch-flush drop of its group)? Neither counts as a breaker signal.
  bool PredictRung0Skip(const Request& req) const;

  /// Pure prediction: will every rung-0 attempt of this request fail
  /// under the active fault plan? (p-mode sites only; see fault.h.)
  /// Batched mode keys the attempts by the request's group hash.
  bool PredictRung0Failure(const Request& req) const;

  /// Admission-time routing + breaker fold + canary resolution for the
  /// pinned generation; decides skip_rung0. Caller holds mu_.
  void AdmitToGeneration(Request& req);

  /// Predictive breaker fold (active fault plan). Caller holds mu_.
  /// Returns true when this admission tripped the breaker open.
  bool BreakerAdmit(GenState& gen, Request& req);

  /// Observed-mode breaker update from a worker (no active fault plan).
  /// Also folds observed canary outcomes when `gen` is the canary.
  void BreakerRecord(GenState& gen, bool success, bool was_probe);

  /// Resolves the in-flight canary: promote swaps it into the incumbent
  /// slot, rollback drops it. Queues the resolution. Caller holds mu_.
  void ResolveCanaryLocked(CanaryVerdict verdict, const std::string& reason);

  void WorkerLoop();
  ServeResult Process(Request& req);

  /// Batched pipeline (batch_max > 0). Workers pop formed batches,
  /// extract their member requests from waiting_, and run each batch
  /// through ONE padded encoder forward per model generation. A worker
  /// that finds nothing ready for ~1ms drains the former's partial batch
  /// (idle flush) — a wall-clock race that changes which batch a request
  /// rides in but never its outcome (verdicts are group-keyed).
  void BatchedWorkerLoop();
  void ProcessBatch(batch::FormedBatch& batch,
                    std::vector<std::vector<Request>>& members);

  /// DeadlineExceeded outcome for `req` (reports a timed-out half-open
  /// probe as failure so the breaker never waits on it).
  ServeResult DeadlineResult(Request& req);

  /// Rungs 1-3 of the ladder (quantized -> cache -> fallback), shared by
  /// the per-request and batched pipelines. `result` carries the
  /// identity fields and the rung-0 attempt count already made.
  ServeResult DegradedLadder(Request& req, ServeResult result,
                             const Stopwatch& sw);

  /// Resolves TPR_QUANT against the configured quantized_rung flag.
  static ServiceConfig ApplyQuantEnv(ServiceConfig config);

  /// Per-rung latency histogram, resolved through this instance's
  /// metric scope.
  void ObserveRungLatency(Rung rung, double seconds) const;

  /// Rung 2: mean-pooled node2vec endpoint embeddings, zero-padded or
  /// truncated to representation_dim. Pure; cannot fail.
  std::vector<float> FallbackEmbedding(const PathQuery& query) const;

  std::string CacheKey(const PathQuery& query, int64_t* bucket) const;

  std::shared_ptr<const core::FeatureSpace> features_;
  const core::EncoderConfig encoder_config_;
  const ServiceConfig config_;
  const obs::MetricScope metrics_;  // prefix = config_.metrics_prefix

  mutable std::mutex mu_;  // queue + tickets + generation slots/breakers
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Request> queue_;
  // Batched mode (batch_max > 0): the former collects admissions into
  // groups, waiting_ parks the admitted requests by ticket until their
  // batch flushes into ready_. All guarded by mu_.
  std::unique_ptr<batch::BatchFormer> former_;
  std::unordered_map<uint64_t, Request> waiting_;
  std::deque<batch::FormedBatch> ready_;
  std::shared_ptr<GenState> live_;    // incumbent; null before install
  std::shared_ptr<GenState> canary_;  // in-flight canary; usually null
  std::deque<CanaryResolution> resolutions_;
  uint64_t next_ticket_ = 0;
  bool started_ = false;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tpr::serve

#endif  // TPR_SERVE_SERVICE_H_
