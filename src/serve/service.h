#ifndef TPR_SERVE_SERVICE_H_
#define TPR_SERVE_SERVICE_H_

// In-process embedding inference service over the trained WSCCL temporal
// path encoder.
//
// Requests enter a bounded queue guarded by admission control (shed or
// block when full), are processed by dedicated worker threads, and carry
// an optional deadline that is propagated into the encoder forward pass
// as cooperative cancellation. Transient rung-1 failures are retried
// with deterministic jittered exponential backoff; sustained failure
// trips a per-model-generation circuit breaker. Every request that is
// admitted resolves — in the worst case via the degradation ladder:
//
//   rung 0 (kFull)     full temporal encoder at the exact request time
//   rung 1 (kCached)   LRU-cached embedding keyed by (path, time bucket),
//                      computed at the bucket-representative time
//   rung 2 (kFallback) node2vec mean-pool over the path's edge endpoint
//                      embeddings, shaped to representation_dim
//
// Determinism contract (what the soak test asserts): with a fixed
// TPR_FAULT spec, seed, and single submitter, the (status, rung,
// embedding bytes) outcome of every request is identical across runs and
// worker counts. This falls out of three choices: fault verdicts are
// keyed by request id (never by wall clock or thread), cache values are
// pure functions of the cache key (so hit vs recompute is invisible),
// and the circuit breaker folds keyed failure *predictions* in admission
// order rather than observed completions in race order. Deadlines are
// wall-clock dependent and therefore outside the contract.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/encoder.h"
#include "core/features.h"
#include "serve/lru_cache.h"
#include "util/status.h"

namespace tpr::serve {

/// One embedding request: a path and a departure time. `id` is the
/// stable request identity — fault verdicts and backoff jitter key off
/// it, so replaying the same ids reproduces the same outcomes.
struct PathQuery {
  graph::Path path;
  int64_t depart_time_s = 0;
  uint64_t id = 0;
};

/// Which rung of the degradation ladder produced the embedding.
enum class Rung { kFull = 0, kCached = 1, kFallback = 2 };

const char* RungName(Rung r);

/// Outcome of one admitted request.
struct ServeResult {
  Status status;                  // OK, DeadlineExceeded, or Unavailable
  Rung rung = Rung::kFull;        // valid when status.ok()
  std::vector<float> embedding;   // representation_dim values when ok
  int attempts = 0;               // rung-0 encoder attempts made
  uint64_t ticket = 0;            // admission order, 0-based
};

struct ServiceConfig {
  int num_workers = 4;
  int queue_capacity = 256;
  /// Full queue: true blocks the submitter (backpressure), false sheds
  /// with ResourceExhausted (load shedding).
  bool block_when_full = false;
  /// Rung-0 encoder attempts = 1 + max_retries.
  int max_retries = 2;
  double backoff_base_ms = 1.0;
  double backoff_max_ms = 50.0;
  /// Consecutive rung-0 request failures that open the breaker.
  int breaker_trip_threshold = 5;
  /// Requests sent straight to rung 1 while open, before one half-open
  /// probe is allowed back into rung 0.
  int breaker_open_requests = 16;
  size_t cache_capacity = 1024;
  /// Width of the rung-1 cache's time buckets.
  int64_t time_bucket_s = 900;
  /// Drives backoff jitter (mixed with request id and attempt).
  uint64_t seed = 7;
};

/// Multi-threaded inference service. Construction wires the pipeline but
/// takes no model; call LoadModel (or InstallModel) then Start. All
/// public methods are thread-safe.
class InferenceService {
 public:
  InferenceService(std::shared_ptr<const core::FeatureSpace> features,
                   const core::EncoderConfig& encoder_config,
                   const ServiceConfig& config);
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Writes `encoder`'s parameters as serve model generation `generation`
  /// into `dir` (a ckpt::CheckpointDir of envelope-wrapped files).
  static Status SaveModel(const core::TemporalPathEncoder& encoder,
                          const std::string& dir, uint64_t generation);

  /// Loads the newest valid model generation from `dir` into a fresh
  /// encoder built from the constructor's EncoderConfig. On any failure
  /// (injected ckpt-read fault, torn file, shape mismatch) the currently
  /// installed model — if any — keeps serving and the error is returned.
  /// Loading a NEW generation resets the circuit breaker and clears the
  /// rung-1 cache: their state described the old parameters.
  Status LoadModel(const std::string& dir);

  /// Installs an already-built encoder as model generation `generation`
  /// (tests, or callers that keep the encoder in process).
  void InstallModel(std::shared_ptr<const core::TemporalPathEncoder> encoder,
                    uint64_t generation);

  /// Spawns the worker threads. FailedPrecondition without a model.
  Status Start();

  /// Stops admission, fails queued-but-unprocessed requests with
  /// Unavailable, and joins the workers. Idempotent; the destructor
  /// calls it.
  void Shutdown();

  /// Admission control. On success the future resolves to the request's
  /// ServeResult; the error path is shedding (ResourceExhausted — queue
  /// full and block_when_full is false, or an injected queue-full fault)
  /// or Unavailable after Shutdown. `deadline_ms` <= 0 means no
  /// deadline; otherwise it is relative to the moment of admission and
  /// propagates into the worker as cooperative cancellation.
  StatusOr<std::future<ServeResult>> Submit(PathQuery query,
                                            double deadline_ms = 0);

  /// Submit + wait, folding admission errors into ServeResult::status.
  ServeResult SubmitAndWait(PathQuery query, double deadline_ms = 0);

  /// Generation of the installed model (0 before any install).
  uint64_t model_generation() const;

  int representation_dim() const { return encoder_config_.d_hidden; }

 private:
  struct Request {
    PathQuery query;
    uint64_t ticket = 0;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    bool skip_rung0 = false;       // breaker-open: straight to rung 1
    bool breaker_predicted = false;  // outcome already folded at admission
    bool breaker_probe = false;      // observed-mode half-open probe
    std::promise<ServeResult> promise;
  };

  // Breaker state machine. Guarded by mu_ (admission path) so the fold
  // order is exactly the ticket order.
  struct Breaker {
    enum class State { kClosed, kOpen, kHalfOpen };
    State state = State::kClosed;
    int consecutive_failures = 0;
    int open_skips_remaining = 0;
    bool probe_in_flight = false;  // observed mode only
  };

  /// Pure prediction: will every rung-0 attempt of this request fail
  /// under the active fault plan? (p-mode sites only; see fault.h.)
  bool PredictRung0Failure(const PathQuery& query) const;

  /// Admission-time breaker fold; decides skip_rung0. Caller holds mu_.
  void BreakerAdmit(Request& req);

  /// Observed-mode breaker update from a worker (no active fault plan).
  void BreakerRecord(bool success, bool was_probe);

  void WorkerLoop();
  ServeResult Process(Request& req);

  /// Rung 2: mean-pooled node2vec endpoint embeddings, zero-padded or
  /// truncated to representation_dim. Pure; cannot fail.
  std::vector<float> FallbackEmbedding(const PathQuery& query) const;

  std::string CacheKey(const PathQuery& query, int64_t* bucket) const;

  std::shared_ptr<const core::FeatureSpace> features_;
  const core::EncoderConfig encoder_config_;
  const ServiceConfig config_;

  mutable std::mutex model_mu_;
  std::shared_ptr<const core::TemporalPathEncoder> model_;
  uint64_t generation_ = 0;

  EmbeddingLruCache cache_;

  mutable std::mutex mu_;  // queue + breaker + tickets
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Request> queue_;
  Breaker breaker_;
  uint64_t next_ticket_ = 0;
  bool started_ = false;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tpr::serve

#endif  // TPR_SERVE_SERVICE_H_
