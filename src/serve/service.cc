#include "serve/service.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>

#include "ckpt/checkpoint.h"
#include "ckpt/serialize.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "quant/quant.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace tpr::serve {
namespace {

// Salts decorrelating the keyed fault verdicts of the different sites a
// single request touches (rung-0 attempts vs alloc vs rung-2 compute),
// and the canary routing hash from all of them.
constexpr uint64_t kAllocSalt = 0xA110C5EEDULL;
constexpr uint64_t kCacheSalt = 0xCAC4E5EEDULL;
constexpr uint64_t kRouteSalt = 0xCA9A995EEDULL;

void SleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

constexpr char kModelTag[] = "tpr-serve-model";

}  // namespace

void InferenceService::ObserveRungLatency(Rung rung, double seconds) const {
  if (!obs::MetricsEnabled()) return;
  switch (rung) {
    case Rung::kFull:
      metrics_.histogram("serve.rung_full_seconds").Observe(seconds);
      break;
    case Rung::kQuantized:
      metrics_.histogram("serve.rung_quantized_seconds").Observe(seconds);
      break;
    case Rung::kCached:
      metrics_.histogram("serve.rung_cached_seconds").Observe(seconds);
      break;
    case Rung::kFallback:
      metrics_.histogram("serve.rung_fallback_seconds").Observe(seconds);
      break;
  }
}

const char* RungName(Rung r) {
  switch (r) {
    case Rung::kFull:
      return "full";
    case Rung::kQuantized:
      return "quantized";
    case Rung::kCached:
      return "cached";
    case Rung::kFallback:
      return "fallback";
  }
  return "?";
}

const char* CanaryVerdictName(CanaryVerdict v) {
  switch (v) {
    case CanaryVerdict::kPromoted:
      return "promoted";
    case CanaryVerdict::kRolledBack:
      return "rolled-back";
  }
  return "?";
}

InferenceService::InferenceService(
    std::shared_ptr<const core::FeatureSpace> features,
    const core::EncoderConfig& encoder_config, const ServiceConfig& config)
    : features_(std::move(features)),
      encoder_config_(encoder_config),
      config_(ApplyQuantEnv(config)),
      metrics_(config_.metrics_prefix) {
  TPR_CHECK(features_ != nullptr);
  TPR_CHECK(config_.num_workers > 0);
  TPR_CHECK(config_.queue_capacity > 0);
  TPR_CHECK(config_.max_retries >= 0);
  TPR_CHECK(config_.time_bucket_s > 0);
  TPR_CHECK(config_.canary_permille >= 0 && config_.canary_permille <= 1000);
  TPR_CHECK(config_.canary_promote_after > 0);
  if (config_.batch_max > 0) {
    batch::BatchConfig bc;
    bc.max_batch = config_.batch_max;
    bc.max_ticks = config_.batch_ticks;
    bc.coalesce = config_.batch_coalesce;
    bc.time_bucket_s = config_.time_bucket_s;
    former_ = std::make_unique<batch::BatchFormer>(bc);
  }
}

ServiceConfig InferenceService::ApplyQuantEnv(ServiceConfig config) {
  if (!quant::QuantEnabledFromEnv()) config.quantized_rung = false;
  return config;
}

InferenceService::~InferenceService() { Shutdown(); }

Status InferenceService::SaveModel(const core::TemporalPathEncoder& encoder,
                                   const std::string& dir,
                                   uint64_t generation) {
  ckpt::Writer w;
  w.Str(kModelTag);
  w.U64(generation);
  w.I32(encoder.representation_dim());
  ckpt::WriteParamValues(w, encoder.Parameters());
  return ckpt::CheckpointDir(dir).Save(generation, w.bytes());
}

StatusOr<InferenceService::DecodedModel> InferenceService::DecodeModelPayload(
    std::string_view payload,
    std::shared_ptr<const core::FeatureSpace> features,
    const core::EncoderConfig& config) {
  ckpt::Reader r(payload);
  std::string tag;
  uint64_t generation = 0;
  int32_t dim = 0;
  TPR_RETURN_IF_ERROR(r.Str(&tag));
  if (tag != kModelTag) {
    return Status::FailedPrecondition("not a serve model checkpoint");
  }
  TPR_RETURN_IF_ERROR(r.U64(&generation));
  TPR_RETURN_IF_ERROR(r.I32(&dim));
  if (dim != config.d_hidden) {
    return Status::FailedPrecondition(
        "serve model dim " + std::to_string(dim) + " != configured " +
        std::to_string(config.d_hidden));
  }
  auto encoder =
      std::make_shared<core::TemporalPathEncoder>(std::move(features), config);
  TPR_RETURN_IF_ERROR(ckpt::ReadParamValuesInto(r, encoder->Parameters()));
  DecodedModel out;
  out.encoder = std::move(encoder);
  out.generation = generation;
  return out;
}

Status InferenceService::LoadModel(const std::string& dir) {
  fault::ScopedShard shard_scope(config_.shard);  // ckpt-read site
  auto loaded = ckpt::CheckpointDir(dir).LoadLatest();
  if (!loaded.ok()) {
    metrics_.counter("serve.model_load_failures").Add(1);
    return loaded.status();
  }
  auto decoded = DecodeModelPayload(loaded->payload, features_, encoder_config_);
  if (!decoded.ok()) {
    metrics_.counter("serve.model_load_failures").Add(1);
    return decoded.status();
  }
  // The int8 twin is optional sidecar state: published beside the
  // checkpoint by tpr::rollout. Absent or unreadable, the generation
  // serves with the quantized rung dark — never a load failure.
  std::shared_ptr<const quant::QuantizedEncoder> twin;
  if (config_.quantized_rung) {
    auto model = quant::LoadQuantizedModel(dir, loaded->seq);
    if (model.ok() && model->generation == decoded->generation) {
      twin = std::make_shared<const quant::QuantizedEncoder>(
          features_, std::move(model).value());
    } else if (model.status().code() != StatusCode::kNotFound) {
      metrics_.counter("serve.quant_twin_load_failures").Add(1);
    }
  }
  InstallModel(std::move(decoded->encoder), decoded->generation,
               std::move(twin));
  return Status::OK();
}

std::shared_ptr<InferenceService::GenState> InferenceService::MakeGenState(
    std::shared_ptr<const core::TemporalPathEncoder> encoder,
    uint64_t generation,
    std::shared_ptr<const quant::QuantizedEncoder> quant) const {
  auto gen = std::make_shared<GenState>();
  gen->model = std::move(encoder);
  gen->quant = config_.quantized_rung ? std::move(quant) : nullptr;
  gen->generation = generation;
  gen->cache = std::make_unique<EmbeddingLruCache>(config_.cache_capacity);
  return gen;
}

void InferenceService::InstallModel(
    std::shared_ptr<const core::TemporalPathEncoder> encoder,
    uint64_t generation,
    std::shared_ptr<const quant::QuantizedEncoder> quant) {
  TPR_CHECK(encoder != nullptr);
  auto gen = MakeGenState(std::move(encoder), generation, std::move(quant));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (canary_ != nullptr) {
      // The incumbent the canary was being compared against is gone, so
      // the comparison is void: roll the canary back rather than keep
      // scoring it against a different baseline.
      ResolveCanaryLocked(CanaryVerdict::kRolledBack,
                          "superseded by InstallModel");
    }
    live_ = std::move(gen);
  }
  metrics_.gauge("serve.model_generation").Set(static_cast<double>(generation));
}

Status InferenceService::BeginCanary(
    std::shared_ptr<const core::TemporalPathEncoder> encoder,
    uint64_t generation,
    std::shared_ptr<const quant::QuantizedEncoder> quant) {
  if (encoder == nullptr) {
    return Status::InvalidArgument("null canary encoder");
  }
  auto gen = MakeGenState(std::move(encoder), generation, std::move(quant));
  std::lock_guard<std::mutex> lock(mu_);
  if (live_ == nullptr) {
    return Status::FailedPrecondition("no incumbent model to canary against");
  }
  if (canary_ != nullptr) {
    return Status::FailedPrecondition("a canary is already in flight");
  }
  canary_ = std::move(gen);
  metrics_.counter("serve.canaries").Add(1);
  metrics_.gauge("serve.canary_generation").Set(static_cast<double>(generation));
  return Status::OK();
}

Status InferenceService::PromoteCanary(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (canary_ == nullptr) {
    return Status::FailedPrecondition("no canary in flight");
  }
  ResolveCanaryLocked(CanaryVerdict::kPromoted, reason);
  return Status::OK();
}

Status InferenceService::AbortCanary(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (canary_ == nullptr) {
    return Status::FailedPrecondition("no canary in flight");
  }
  ResolveCanaryLocked(CanaryVerdict::kRolledBack, reason);
  return Status::OK();
}

std::optional<CanaryResolution> InferenceService::TakeCanaryResolution() {
  std::lock_guard<std::mutex> lock(mu_);
  if (resolutions_.empty()) return std::nullopt;
  CanaryResolution res = std::move(resolutions_.front());
  resolutions_.pop_front();
  return res;
}

ServiceHealth InferenceService::Health() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceHealth h;
  h.started = started_ && !stopping_;
  h.queue_depth = static_cast<int>(queue_.size() + waiting_.size());
  h.canary_installed = canary_ != nullptr;
  if (live_ != nullptr) {
    h.generation = live_->generation;
    switch (live_->breaker.state) {
      case Breaker::State::kClosed:
        h.breaker_state = 0;
        break;
      case Breaker::State::kOpen:
        h.breaker_state = 1;
        break;
      case Breaker::State::kHalfOpen:
        h.breaker_state = 2;
        break;
    }
    h.consecutive_failures = live_->breaker.consecutive_failures;
  }
  return h;
}

CanaryStatus InferenceService::canary_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  CanaryStatus s;
  if (canary_ != nullptr) {
    s.installed = true;
    s.generation = canary_->generation;
    s.routed = canary_->routed;
    s.clean = canary_->clean;
  }
  return s;
}

void InferenceService::ResolveCanaryLocked(CanaryVerdict verdict,
                                           const std::string& reason) {
  CanaryResolution res;
  res.generation = canary_->generation;
  res.verdict = verdict;
  res.reason = reason;
  res.routed = canary_->routed;
  res.clean = canary_->clean;
  if (verdict == CanaryVerdict::kPromoted) {
    // The canary slot — fresh breaker, warm cache, its own metrics —
    // becomes the incumbent wholesale; nothing about its state resets.
    live_ = std::move(canary_);
    metrics_.counter("serve.canary_promotions").Add(1);
    metrics_.gauge("serve.model_generation")
        .Set(static_cast<double>(live_->generation));
  } else {
    metrics_.counter("serve.canary_rollbacks").Add(1);
  }
  canary_.reset();
  metrics_.gauge("serve.canary_generation").Set(0);
  resolutions_.push_back(std::move(res));
}

uint64_t InferenceService::model_generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_ != nullptr ? live_->generation : 0;
}

std::shared_ptr<const core::TemporalPathEncoder>
InferenceService::live_model() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_ != nullptr ? live_->model : nullptr;
}

bool InferenceService::RoutesToCanary(uint64_t id) const {
  // Pure hash of the request id: the same id routes the same way at any
  // worker count, on any run. (Whether a canary is actually installed is
  // a separate question — this is only the routing predicate.)
  return MixSeed(kRouteSalt, id) % 1000 <
         static_cast<uint64_t>(config_.canary_permille);
}

Status InferenceService::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (live_ == nullptr) {
    return Status::FailedPrecondition("no model installed");
  }
  if (started_) return Status::FailedPrecondition("already started");
  started_ = true;
  stopping_ = false;
  workers_.reserve(static_cast<size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    if (former_ != nullptr) {
      workers_.emplace_back([this] { BatchedWorkerLoop(); });
    } else {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
  return Status::OK();
}

void InferenceService::Shutdown() {
  std::deque<Request> orphaned;
  std::unordered_map<uint64_t, Request> orphaned_waiting;
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Claim the queue AND the worker threads under the lock so racing
    // Shutdown calls (or Shutdown vs destructor) each join a disjoint —
    // possibly empty — set of threads instead of double-joining.
    orphaned.swap(queue_);
    // Batched mode: every unprocessed request — pending in the former or
    // sitting in a formed-but-unpopped batch — is still parked in
    // waiting_ (workers extract members atomically with the pop), so
    // failing waiting_ covers ready_'s batches too.
    orphaned_waiting.swap(waiting_);
    ready_.clear();
    workers.swap(workers_);
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  const auto fail_unavailable = [](Request& req) {
    ServeResult result;
    result.status = Status::Unavailable("service shutting down");
    result.ticket = req.ticket;
    if (req.gen != nullptr) result.generation = req.gen->generation;
    result.canary = req.canary;
    req.promise.set_value(std::move(result));
  };
  for (auto& req : orphaned) fail_unavailable(req);
  for (auto& entry : orphaned_waiting) fail_unavailable(entry.second);
  for (auto& t : workers) t.join();
  if (!workers.empty()) metrics_.gauge("serve.queue_depth").Set(0);
}

bool InferenceService::PredictRung0Skip(const Request& req) const {
  if (fault::WouldFail(fault::kAlloc, MixSeed(kAllocSalt, req.query.id))) {
    return true;
  }
  // Batched mode: an injected batch-flush drop degrades the request's
  // whole group before any encode — like alloc, no rung-0 attempt.
  return former_ != nullptr &&
         fault::WouldFail(fault::kBatchFlush, req.group_key);
}

bool InferenceService::PredictRung0Failure(const Request& req) const {
  if (PredictRung0Skip(req)) {
    // The worker will degrade without attempting rung 0 — neither a
    // success nor a failure signal for the breaker.
    return false;
  }
  // Batched mode keys the attempt verdicts by the group hash: every
  // member of a group shares the batched encode, so they must share its
  // failure pattern no matter which batch the group rides in.
  const uint64_t base = former_ != nullptr ? req.group_key : req.query.id;
  for (int a = 0; a <= config_.max_retries; ++a) {
    if (!fault::WouldFail(fault::kEncoderForward,
                          MixSeed(base, static_cast<uint64_t>(a)))) {
      return false;
    }
  }
  return true;
}

bool InferenceService::BreakerAdmit(GenState& gen, Request& req) {
  Breaker& b = gen.breaker;
  req.breaker_predicted = true;
  const bool no_attempt = PredictRung0Skip(req);
  const bool predicted_fail = PredictRung0Failure(req);
  bool tripped = false;
  switch (b.state) {
    case Breaker::State::kClosed:
      if (no_attempt) break;  // no rung-0 attempt, no signal
      if (predicted_fail) {
        if (++b.consecutive_failures >= config_.breaker_trip_threshold) {
          b.state = Breaker::State::kOpen;
          b.open_skips_remaining = config_.breaker_open_requests;
          metrics_.counter("serve.breaker_trips").Add(1);
          tripped = true;
        }
      } else {
        b.consecutive_failures = 0;
      }
      break;
    case Breaker::State::kOpen:
      req.skip_rung0 = true;
      metrics_.counter("serve.breaker_open_skips").Add(1);
      if (--b.open_skips_remaining <= 0) {
        b.state = Breaker::State::kHalfOpen;
      }
      break;
    case Breaker::State::kHalfOpen:
      // This request is the probe: it goes to rung 0 and its predicted
      // outcome resolves the breaker immediately, in admission order.
      if (no_attempt || predicted_fail) {
        b.state = Breaker::State::kOpen;
        b.open_skips_remaining = config_.breaker_open_requests;
        if (predicted_fail) {
          metrics_.counter("serve.breaker_trips").Add(1);
          tripped = true;
        }
      } else {
        b.state = Breaker::State::kClosed;
        b.consecutive_failures = 0;
      }
      break;
  }
  return tripped;
}

void InferenceService::BreakerRecord(GenState& gen, bool success,
                                     bool was_probe) {
  std::lock_guard<std::mutex> lock(mu_);
  Breaker& b = gen.breaker;
  if (was_probe) b.probe_in_flight = false;
  if (success) {
    b.state = Breaker::State::kClosed;
    b.consecutive_failures = 0;
    // Observed-mode canary accounting: clean rung-0 completions promote.
    // (Completion order is thread-dependent, so observed-mode canarying
    // is outside the bitwise-determinism contract — see the header.)
    if (&gen == canary_.get()) {
      if (++gen.clean >=
          static_cast<uint64_t>(config_.canary_promote_after)) {
        ResolveCanaryLocked(CanaryVerdict::kPromoted, "clean-requests");
      }
    }
    return;
  }
  const bool was_open = b.state == Breaker::State::kOpen;
  if (b.state == Breaker::State::kHalfOpen ||
      ++b.consecutive_failures >= config_.breaker_trip_threshold) {
    if (b.state != Breaker::State::kOpen) {
      metrics_.counter("serve.breaker_trips").Add(1);
    }
    b.state = Breaker::State::kOpen;
    b.open_skips_remaining = config_.breaker_open_requests;
  }
  if (&gen == canary_.get() && !was_open &&
      b.state == Breaker::State::kOpen) {
    ResolveCanaryLocked(CanaryVerdict::kRolledBack, "breaker-trip");
  }
}

void InferenceService::AdmitToGeneration(Request& req) {
  req.gen = live_;
  if (canary_ != nullptr && RoutesToCanary(req.query.id)) {
    ++canary_->routed;
    metrics_.counter("serve.canary_requests").Add(1);
    // Injected quality regression: the canary rolls back the moment
    // traffic reaches it, and this request is served by the incumbent —
    // canary failures must never cost a user a good answer.
    if (fault::ShouldFail(fault::kCanaryRegression, canary_->generation)) {
      ResolveCanaryLocked(CanaryVerdict::kRolledBack,
                          "injected canary-regression");
    } else {
      req.gen = canary_;
      req.canary = true;
    }
  }
  if (former_ != nullptr) {
    // Batch-group identity. The pinned generation rides in the hash salt
    // so a coalesced group is generation-homogeneous — exactly one model
    // serves it — plus the ticket when coalescing is off (every request
    // is its own group). Must mirror the salt Submit hands
    // BatchFormer::Arrive.
    const uint64_t salt = config_.batch_coalesce
                              ? req.gen->generation
                              : MixSeed(req.gen->generation, req.ticket);
    req.group_key = batch::BatchFormer::GroupHash(
        req.query.path, former_->EncodeTime(req.query.depart_time_s), salt);
  }
  GenState& gen = *req.gen;
  if (fault::PlanActive()) {
    const bool tripped = BreakerAdmit(gen, req);
    if (req.canary) {
      if (tripped) {
        // The request stays pinned to the now-detached canary state and
        // serves degraded; every later request routes to the incumbent.
        ResolveCanaryLocked(CanaryVerdict::kRolledBack, "breaker-trip");
      } else if (!req.skip_rung0 && !PredictRung0Skip(req) &&
                 !PredictRung0Failure(req)) {
        if (++gen.clean >=
            static_cast<uint64_t>(config_.canary_promote_after)) {
          ResolveCanaryLocked(CanaryVerdict::kPromoted, "clean-requests");
        }
      }
    }
    return;
  }
  // Observed mode (no fault plan): breaker outcomes are reported by the
  // workers; admission only applies the current state. Half-open admits
  // exactly one probe back into rung 0; others keep degrading until the
  // probe reports.
  Breaker& b = gen.breaker;
  if (b.state == Breaker::State::kOpen) {
    req.skip_rung0 = true;
    metrics_.counter("serve.breaker_open_skips").Add(1);
    if (--b.open_skips_remaining <= 0) {
      b.state = Breaker::State::kHalfOpen;
    }
  } else if (b.state == Breaker::State::kHalfOpen) {
    if (b.probe_in_flight) {
      req.skip_rung0 = true;
      metrics_.counter("serve.breaker_open_skips").Add(1);
    } else {
      b.probe_in_flight = true;
      req.breaker_probe = true;
    }
  }
}

StatusOr<std::future<ServeResult>> InferenceService::Submit(
    PathQuery query, double deadline_ms) {
  // Admission (queue-full verdicts, breaker fold predictions) runs on
  // the submitter's thread; scope it so site@shard rules see this shard.
  fault::ScopedShard shard_scope(config_.shard);
  const auto admitted_at = std::chrono::steady_clock::now();
  Request req;
  req.query = std::move(query);
  if (deadline_ms > 0) {
    req.has_deadline = true;
    req.deadline =
        admitted_at + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              deadline_ms));
  }
  std::future<ServeResult> future = req.promise.get_future();
  bool notify = true;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_ || stopping_) {
      return Status::Unavailable("service not accepting requests");
    }
    req.ticket = next_ticket_++;
    metrics_.counter("serve.requests").Add(1);
    // Injected admission failure: behaves exactly like a full queue.
    if (fault::ShouldFail(fault::kQueueFull, req.ticket)) {
      metrics_.counter("serve.shed").Add(1);
      return Status::ResourceExhausted("queue full (injected)");
    }
    if (former_ != nullptr) {
      // Batched admission: the capacity bound covers every unprocessed
      // request — pending in the former or waiting on a formed batch.
      if (waiting_.size() >= static_cast<size_t>(config_.queue_capacity)) {
        if (!config_.block_when_full) {
          metrics_.counter("serve.shed").Add(1);
          return Status::ResourceExhausted(
              "queue full (" + std::to_string(waiting_.size()) + ")");
        }
        not_full_.wait(lock, [this] {
          return stopping_ || waiting_.size() <
                                  static_cast<size_t>(config_.queue_capacity);
        });
        if (stopping_) {
          return Status::Unavailable("service shutting down");
        }
      }
      AdmitToGeneration(req);
      const uint64_t ticket = req.ticket;
      auto flushed =
          former_->Arrive(ticket, req.query.path, req.query.depart_time_s,
                          req.gen->generation);
      waiting_.emplace(ticket, std::move(req));
      // One logical tick per admission; ages partial batches out. An
      // arrival can fill a batch OR age one out, never both (a size
      // flush empties the former).
      if (auto aged = former_->Tick()) {
        TPR_CHECK(!flushed.has_value());
        flushed = std::move(aged);
      }
      metrics_.gauge("serve.queue_depth")
          .Set(static_cast<double>(waiting_.size()));
      // Wake a worker only when a batch actually flushed — idle workers
      // otherwise drain partial batches prematurely.
      notify = flushed.has_value();
      if (flushed.has_value()) ready_.push_back(std::move(*flushed));
    } else {
      if (queue_.size() >= static_cast<size_t>(config_.queue_capacity)) {
        if (!config_.block_when_full) {
          metrics_.counter("serve.shed").Add(1);
          return Status::ResourceExhausted(
              "queue full (" + std::to_string(queue_.size()) + ")");
        }
        not_full_.wait(lock, [this] {
          return stopping_ ||
                 queue_.size() < static_cast<size_t>(config_.queue_capacity);
        });
        if (stopping_) {
          return Status::Unavailable("service shutting down");
        }
      }
      AdmitToGeneration(req);
      queue_.push_back(std::move(req));
      metrics_.gauge("serve.queue_depth")
          .Set(static_cast<double>(queue_.size()));
    }
  }
  if (notify) not_empty_.notify_one();
  return future;
}

ServeResult InferenceService::SubmitAndWait(PathQuery query,
                                            double deadline_ms) {
  auto submitted = Submit(std::move(query), deadline_ms);
  if (!submitted.ok()) {
    ServeResult result;
    result.status = submitted.status();
    return result;
  }
  return submitted->get();
}

void InferenceService::WorkerLoop() {
  fault::ScopedShard shard_scope(config_.shard);
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_, queue drained by Shutdown
      req = std::move(queue_.front());
      queue_.pop_front();
      metrics_.gauge("serve.queue_depth")
          .Set(static_cast<double>(queue_.size()));
    }
    not_full_.notify_one();
    ServeResult result = Process(req);
    req.promise.set_value(std::move(result));
  }
}

void InferenceService::BatchedWorkerLoop() {
  fault::ScopedShard shard_scope(config_.shard);
  for (;;) {
    batch::FormedBatch batch;
    std::vector<std::vector<Request>> members;
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (ready_.empty()) {
        if (stopping_) return;  // ready_ cleared by Shutdown
        // Submit only signals when a batch flushes; wake periodically so
        // a partial batch with no follow-up admissions to age it out is
        // drained instead of stranded (idle flush).
        const bool signalled = not_empty_.wait_for(
            lock, std::chrono::milliseconds(1),
            [this] { return stopping_ || !ready_.empty(); });
        if (!signalled && ready_.empty() && former_->has_pending()) {
          if (auto flushed = former_->FlushAll()) {
            ready_.push_back(std::move(*flushed));
          }
        }
      }
      batch = std::move(ready_.front());
      ready_.pop_front();
      // Extract the members atomically with the pop: a request is either
      // in waiting_ (and fails Unavailable at Shutdown) or owned by
      // exactly one worker — never both.
      members.reserve(batch.groups.size());
      for (const auto& group : batch.groups) {
        std::vector<Request> reqs;
        reqs.reserve(group.tickets.size());
        for (uint64_t ticket : group.tickets) {
          auto it = waiting_.find(ticket);
          TPR_CHECK(it != waiting_.end());
          reqs.push_back(std::move(it->second));
          waiting_.erase(it);
        }
        members.push_back(std::move(reqs));
      }
      metrics_.gauge("serve.queue_depth")
          .Set(static_cast<double>(waiting_.size()));
    }
    not_full_.notify_all();
    ProcessBatch(batch, members);
  }
}

void InferenceService::ProcessBatch(batch::FormedBatch& batch,
                                    std::vector<std::vector<Request>>& members) {
  Stopwatch sw;
  const size_t n_groups = batch.groups.size();
  size_t total = 0;
  for (const auto& m : members) total += m.size();
  metrics_.counter("serve.batches").Add(1);
  metrics_.counter("serve.batched_requests").Add(total);
  metrics_.counter("serve.batch_coalesced").Add(total - n_groups);

  const auto base_result = [](const Request& req) {
    ServeResult r;
    r.ticket = req.ticket;
    r.generation = req.gen->generation;
    r.canary = req.canary;
    return r;
  };
  const auto past_deadline = [](const Request& r) {
    return r.has_deadline && std::chrono::steady_clock::now() >= r.deadline;
  };

  // Injected worker slowness, once per batch. Latency only — deadlines
  // are outside the determinism contract in both pipelines.
  SleepMs(fault::DelayMs(fault::kSlowWorker, batch.seq));

  // Resolve the fates decided before any encode: breaker-open skips,
  // injected scratch-alloc failures, and injected batch-flush drops (the
  // whole group degrades with no rung-0 attempt — like alloc, not a
  // breaker signal). Everyone else queues for the batched rung-0 ladder.
  std::vector<std::vector<Request*>> pending(n_groups);
  for (size_t gi = 0; gi < n_groups; ++gi) {
    const bool flush_drop =
        fault::ShouldFail(fault::kBatchFlush, batch.groups[gi].key_hash);
    for (Request& req : members[gi]) {
      if (req.skip_rung0 || flush_drop ||
          fault::ShouldFail(fault::kAlloc,
                            MixSeed(kAllocSalt, req.query.id))) {
        req.promise.set_value(DegradedLadder(req, base_result(req), sw));
      } else {
        pending[gi].push_back(&req);
      }
    }
  }
  std::vector<size_t> live;
  live.reserve(n_groups);
  for (size_t gi = 0; gi < n_groups; ++gi) {
    if (!pending[gi].empty()) live.push_back(gi);
  }

  // Rung 0, batched: the whole round's surviving groups go through ONE
  // padded forward per model generation. The retry ladder matches the
  // per-request pipeline, but verdicts and backoff jitter are keyed by
  // the group hash — a pure function of the request, so its outcome is
  // identical whichever batch it rode in.
  for (int a = 0; a <= config_.max_retries && !live.empty(); ++a) {
    // Members out of time resolve before the attempt, mirroring the
    // per-request ladder's top-of-attempt deadline check.
    for (size_t gi : live) {
      auto& mem = pending[gi];
      mem.erase(std::remove_if(mem.begin(), mem.end(),
                               [&](Request* r) {
                                 if (!past_deadline(*r)) return false;
                                 ServeResult res = DeadlineResult(*r);
                                 res.attempts = a;
                                 r->promise.set_value(std::move(res));
                                 return true;
                               }),
                mem.end());
    }
    live.erase(std::remove_if(live.begin(), live.end(),
                              [&](size_t gi) { return pending[gi].empty(); }),
               live.end());
    if (live.empty()) break;

    std::vector<size_t> ready;
    std::vector<size_t> failed;
    for (size_t gi : live) {
      if (a > 0) metrics_.counter("serve.retries").Add(1);
      const uint64_t attempt_key =
          MixSeed(batch.groups[gi].key_hash, static_cast<uint64_t>(a));
      if (fault::ShouldFail(fault::kEncoderForward, attempt_key)) {
        failed.push_back(gi);
      } else {
        ready.push_back(gi);
      }
    }

    if (!ready.empty()) {
      // A batch may mix groups pinned to different generations
      // (incumbent + canary — each group is generation-homogeneous by
      // construction of its hash salt): one padded forward per model.
      std::vector<std::pair<GenState*, std::vector<size_t>>> parts;
      for (size_t gi : ready) {
        GenState* gen = pending[gi].front()->gen.get();
        bool found = false;
        for (auto& p : parts) {
          if (p.first == gen) {
            p.second.push_back(gi);
            found = true;
            break;
          }
        }
        if (!found) parts.emplace_back(gen, std::vector<size_t>{gi});
      }
      const auto encode_span = [&](GenState* gen, const size_t* gis,
                                   size_t count) {
        std::vector<core::PathTimeItem> items;
        items.reserve(count);
        bool all_deadlined = true;
        for (size_t i = 0; i < count; ++i) {
          const size_t gi = gis[i];
          items.push_back(core::PathTimeItem{&batch.groups[gi].path,
                                             batch.groups[gi].encode_time_s});
          for (Request* r : pending[gi]) all_deadlined &= r->has_deadline;
        }
        // Cancel the shared forward only when EVERY waiting member is
        // out of time; one expired member must not cancel the others.
        std::function<bool()> cancelled;
        if (all_deadlined) {
          cancelled = [gis, count, &pending] {
            const auto now = std::chrono::steady_clock::now();
            for (size_t i = 0; i < count; ++i) {
              for (Request* r : pending[gis[i]]) {
                if (now < r->deadline) return false;
              }
            }
            return true;
          };
        } else {
          cancelled = [] { return false; };
        }
        auto encoded =
            gen->model->EncodeValueBatchCancellable(items, cancelled);
        if (!encoded.has_value()) {
          for (size_t i = 0; i < count; ++i) {
            const size_t gi = gis[i];
            for (Request* r : pending[gi]) {
              ServeResult res = DeadlineResult(*r);
              res.attempts = a + 1;
              r->promise.set_value(std::move(res));
            }
            pending[gi].clear();
          }
          return;
        }
        for (size_t i = 0; i < count; ++i) {
          const size_t gi = gis[i];
          for (Request* r : pending[gi]) {
            if (past_deadline(*r)) {
              ServeResult res = DeadlineResult(*r);
              res.attempts = a + 1;
              r->promise.set_value(std::move(res));
              continue;
            }
            if (!r->breaker_predicted) {
              BreakerRecord(*r->gen, true, r->breaker_probe);
            }
            ServeResult res = base_result(*r);
            res.status = Status::OK();
            res.rung = Rung::kFull;
            res.attempts = a + 1;
            res.embedding = (*encoded)[i];
            ObserveRungLatency(Rung::kFull, sw.ElapsedSeconds());
            r->promise.set_value(std::move(res));
          }
          pending[gi].clear();
        }
      };
      for (auto& part : parts) {
        std::vector<size_t>& gis = part.second;
        // Length-sorted sub-batching: a padded forward costs
        // max_len * count rows, so one long path in a batch of short
        // ones multiplies the whole batch's work. Sorting by length
        // (stable — deterministic for a fixed batch) and splitting
        // greedily whenever padding the next group would push the
        // padded/true row ratio past 5/4 keeps the waste bounded while
        // leaving the per-group results bitwise untouched (every batch
        // row is independent of its neighbours).
        std::stable_sort(gis.begin(), gis.end(), [&](size_t x, size_t y) {
          return batch.groups[x].path.size() > batch.groups[y].path.size();
        });
        constexpr size_t kMinSubBatch = 8;
        size_t start = 0;
        while (start < gis.size()) {
          const size_t max_len = batch.groups[gis[start]].path.size();
          size_t true_rows = max_len;
          size_t end = start + 1;
          while (end < gis.size()) {
            const size_t next = batch.groups[gis[end]].path.size();
            if (end - start >= kMinSubBatch &&
                4 * max_len * (end - start + 1) > 5 * (true_rows + next)) {
              break;
            }
            true_rows += next;
            ++end;
          }
          encode_span(part.first, gis.data() + start, end - start);
          start = end;
        }
      }
    }

    live = std::move(failed);
    // Deterministic jittered backoff before the retry round: the failed
    // groups retry together, so sleep once for the slowest group.
    if (!live.empty() && a < config_.max_retries) {
      const double base = std::min(
          config_.backoff_max_ms,
          config_.backoff_base_ms * static_cast<double>(1ULL << a));
      double delay = 0.0;
      for (size_t gi : live) {
        const uint64_t attempt_key =
            MixSeed(batch.groups[gi].key_hash, static_cast<uint64_t>(a));
        Rng jitter(MixSeed(config_.seed, attempt_key));
        delay = std::max(delay, base * (0.5 + 0.5 * jitter.Uniform()));
      }
      SleepMs(delay);
    }
  }

  // Exhausted groups: every remaining member degrades, reporting the
  // rung-0 failure to its generation's breaker in observed mode. The
  // first step down is the GROUP-LEVEL quantized rung: one int8
  // EncodeValueBatch per group at the group encode time, verdict keyed
  // by the group hash — the whole group serves quantized or the whole
  // group falls through together (retry/breaker/deadline semantics
  // untouched, and never a breaker signal).
  for (size_t gi : live) {
    for (Request* r : pending[gi]) {
      if (!r->breaker_predicted) {
        BreakerRecord(*r->gen, false, r->breaker_probe);
      }
    }
    GenState* gen = pending[gi].front()->gen.get();
    if (config_.quantized_rung && gen->quant != nullptr &&
        !fault::ShouldFail(fault::kQuantEncode, batch.groups[gi].key_hash)) {
      const std::vector<core::PathTimeItem> items{
          {&batch.groups[gi].path, batch.groups[gi].encode_time_s}};
      const std::vector<std::vector<float>> encoded =
          gen->quant->EncodeValueBatch(items);
      for (Request* r : pending[gi]) {
        if (past_deadline(*r)) {
          ServeResult res = DeadlineResult(*r);
          res.attempts = config_.max_retries + 1;
          r->promise.set_value(std::move(res));
          continue;
        }
        metrics_.counter("serve.quant_hits").Add(1);
        ServeResult res = base_result(*r);
        res.status = Status::OK();
        res.rung = Rung::kQuantized;
        res.attempts = config_.max_retries + 1;
        res.embedding = encoded[0];
        ObserveRungLatency(Rung::kQuantized, sw.ElapsedSeconds());
        r->promise.set_value(std::move(res));
      }
      continue;
    }
    for (Request* r : pending[gi]) {
      // The group-level quantized attempt is settled (twin absent or
      // quant-encode verdict failed) — the per-request ladder must not
      // re-try the rung.
      r->quant_decided = true;
      ServeResult res = base_result(*r);
      res.attempts = config_.max_retries + 1;
      r->promise.set_value(DegradedLadder(*r, std::move(res), sw));
    }
  }
}

ServeResult InferenceService::Process(Request& req) {
  Stopwatch sw;
  ServeResult result;
  result.ticket = req.ticket;
  result.generation = req.gen->generation;
  result.canary = req.canary;
  const PathQuery& q = req.query;

  // The generation was pinned at admission: model and cache reads are
  // lock-free (both pointers are immutable after the slot is built), and
  // a LoadModel/promotion racing past cannot tear this request.
  const core::TemporalPathEncoder& model = *req.gen->model;

  const auto deadline_passed = [&req] {
    return req.has_deadline &&
           std::chrono::steady_clock::now() >= req.deadline;
  };
  const std::function<bool()> cancelled = deadline_passed;
  const auto deadline_result = [&] {
    // A probe that times out reports failure so the breaker never waits
    // on a probe that will not come back.
    if (!req.breaker_predicted && req.breaker_probe) {
      BreakerRecord(*req.gen, false, /*was_probe=*/true);
    }
    metrics_.counter("serve.deadline_exceeded").Add(1);
    result.status = Status::DeadlineExceeded(
        "deadline elapsed (ticket " + std::to_string(req.ticket) + ")");
    return result;
  };

  // Injected worker slowness: the latency the ladder protects against.
  SleepMs(fault::DelayMs(fault::kSlowWorker, q.id));

  // Rung 0: full temporal encoder at the exact request time, with
  // retries. Skipped when the breaker is open or the per-request scratch
  // allocation "fails".
  if (!req.skip_rung0 &&
      !fault::ShouldFail(fault::kAlloc, MixSeed(kAllocSalt, q.id))) {
    for (int a = 0; a <= config_.max_retries; ++a) {
      if (deadline_passed()) return deadline_result();
      result.attempts = a + 1;
      if (a > 0) metrics_.counter("serve.retries").Add(1);
      const uint64_t attempt_key = MixSeed(q.id, static_cast<uint64_t>(a));
      if (!fault::ShouldFail(fault::kEncoderForward, attempt_key)) {
        auto embedding =
            model.EncodeValueCancellable(q.path, q.depart_time_s, cancelled);
        if (!embedding.has_value()) return deadline_result();
        if (!req.breaker_predicted) {
          BreakerRecord(*req.gen, true, req.breaker_probe);
        }
        result.status = Status::OK();
        result.rung = Rung::kFull;
        result.embedding = *std::move(embedding);
        ObserveRungLatency(result.rung, sw.ElapsedSeconds());
        return result;
      }
      // Deterministic jittered exponential backoff before the retry.
      if (a < config_.max_retries) {
        const double base = std::min(
            config_.backoff_max_ms,
            config_.backoff_base_ms * static_cast<double>(1ULL << a));
        Rng jitter(MixSeed(config_.seed, attempt_key));
        SleepMs(base * (0.5 + 0.5 * jitter.Uniform()));
      }
    }
    if (!req.breaker_predicted) {
      BreakerRecord(*req.gen, false, req.breaker_probe);
    }
  }

  return DegradedLadder(req, std::move(result), sw);
}

ServeResult InferenceService::DeadlineResult(Request& req) {
  // A probe that times out reports failure so the breaker never waits
  // on a probe that will not come back.
  if (!req.breaker_predicted && req.breaker_probe) {
    BreakerRecord(*req.gen, false, /*was_probe=*/true);
  }
  metrics_.counter("serve.deadline_exceeded").Add(1);
  ServeResult result;
  result.ticket = req.ticket;
  result.generation = req.gen->generation;
  result.canary = req.canary;
  result.status = Status::DeadlineExceeded(
      "deadline elapsed (ticket " + std::to_string(req.ticket) + ")");
  return result;
}

ServeResult InferenceService::DegradedLadder(Request& req, ServeResult result,
                                             const Stopwatch& sw) {
  const PathQuery& q = req.query;
  const core::TemporalPathEncoder& model = *req.gen->model;
  EmbeddingLruCache& cache = *req.gen->cache;

  const auto deadline_passed = [&req] {
    return req.has_deadline &&
           std::chrono::steady_clock::now() >= req.deadline;
  };
  const std::function<bool()> cancelled = deadline_passed;
  const auto deadline_result = [&] {
    if (!req.breaker_predicted && req.breaker_probe) {
      BreakerRecord(*req.gen, false, /*was_probe=*/true);
    }
    metrics_.counter("serve.deadline_exceeded").Add(1);
    result.status = Status::DeadlineExceeded(
        "deadline elapsed (ticket " + std::to_string(req.ticket) + ")");
    return result;
  };

  // Rung 1: int8-quantized twin at the EXACT request time — the cheap
  // path that still honours the paper's departure-time conditioning.
  // Fault verdicts key by the group hash in batched mode (the group
  // shares one encode, so it must share one verdict) and by the request
  // id otherwise. Never a breaker signal: the breaker describes the
  // fp32 model's health.
  if (config_.quantized_rung && req.gen->quant != nullptr &&
      !req.quant_decided) {
    if (deadline_passed()) return deadline_result();
    const uint64_t quant_key = former_ != nullptr ? req.group_key : q.id;
    if (!fault::ShouldFail(fault::kQuantEncode, quant_key)) {
      metrics_.counter("serve.quant_hits").Add(1);
      result.status = Status::OK();
      result.rung = Rung::kQuantized;
      result.embedding = req.gen->quant->EncodeValue(q.path, q.depart_time_s);
      ObserveRungLatency(result.rung, sw.ElapsedSeconds());
      return result;
    }
  }

  // Rung 2: bucket-level cache. Values are computed at the bucket's
  // representative time, so every request mapping to the key sees the
  // same bytes whether it hits or recomputes. Rung-0 successes never
  // populate this cache: they are exact-time embeddings and would make
  // the cached bytes depend on which request got there first. (Batched
  // rung-0 successes don't populate it either: a coalesced group encodes
  // at the bucket-representative time, but routing them through the same
  // no-Put rule keeps the cache's provenance single-sourced.)
  if (deadline_passed()) return deadline_result();
  int64_t bucket = 0;
  const std::string key = CacheKey(q, &bucket);
  if (auto hit = cache.Get(key)) {
    metrics_.counter("serve.cache_hits").Add(1);
    result.status = Status::OK();
    result.rung = Rung::kCached;
    result.embedding = *std::move(hit);
    ObserveRungLatency(result.rung, sw.ElapsedSeconds());
    return result;
  }
  metrics_.counter("serve.cache_misses").Add(1);
  // Keyed by the cache key, not the request id: every request for this
  // (path, bucket) gets the same recompute verdict, so which of them
  // arrives first cannot change anyone's outcome.
  const uint64_t cache_fault_key =
      MixSeed(kCacheSalt, std::hash<std::string>{}(key));
  if (!fault::ShouldFail(fault::kEncoderForward, cache_fault_key)) {
    const int64_t bucket_time = bucket * config_.time_bucket_s;
    auto embedding =
        model.EncodeValueCancellable(q.path, bucket_time, cancelled);
    if (!embedding.has_value()) return deadline_result();
    cache.Put(key, *embedding);
    result.status = Status::OK();
    result.rung = Rung::kCached;
    result.embedding = *std::move(embedding);
    ObserveRungLatency(result.rung, sw.ElapsedSeconds());
    return result;
  }

  // Rung 3: frozen node2vec mean-pool. Pure arithmetic — always succeeds.
  if (deadline_passed()) return deadline_result();
  result.status = Status::OK();
  result.rung = Rung::kFallback;
  result.embedding = FallbackEmbedding(q);
  ObserveRungLatency(result.rung, sw.ElapsedSeconds());
  return result;
}

std::string InferenceService::CacheKey(const PathQuery& query,
                                       int64_t* bucket) const {
  *bucket = query.depart_time_s / config_.time_bucket_s;
  std::string key;
  key.reserve(query.path.size() * sizeof(int) + sizeof(int64_t));
  key.append(reinterpret_cast<const char*>(bucket), sizeof(*bucket));
  key.append(reinterpret_cast<const char*>(query.path.data()),
             query.path.size() * sizeof(int));
  return key;
}

std::vector<float> InferenceService::FallbackEmbedding(
    const PathQuery& query) const {
  const auto& network = *features_->data->network;
  const int d_road = features_->road_embeddings.dim;
  const int dim = encoder_config_.d_hidden;
  std::vector<float> pooled(static_cast<size_t>(2 * d_road), 0.0f);
  for (int edge_id : query.path) {
    const auto& e = network.edge(edge_id);
    const auto& from_vec = features_->road_embeddings[e.from];
    const auto& to_vec = features_->road_embeddings[e.to];
    for (int j = 0; j < d_road; ++j) {
      pooled[static_cast<size_t>(j)] += from_vec[static_cast<size_t>(j)];
      pooled[static_cast<size_t>(d_road + j)] += to_vec[static_cast<size_t>(j)];
    }
  }
  if (!query.path.empty()) {
    const float inv = 1.0f / static_cast<float>(query.path.size());
    for (float& v : pooled) v *= inv;
  }
  // Shape to the encoder's representation_dim so downstream consumers
  // never see a rung-dependent dimensionality.
  std::vector<float> out(static_cast<size_t>(dim), 0.0f);
  const size_t n = std::min(out.size(), pooled.size());
  std::copy(pooled.begin(), pooled.begin() + static_cast<long>(n),
            out.begin());
  return out;
}

}  // namespace tpr::serve
