#include "serve/service.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "ckpt/checkpoint.h"
#include "ckpt/serialize.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace tpr::serve {
namespace {

// Salts decorrelating the keyed fault verdicts of the different sites a
// single request touches (rung-0 attempts vs alloc vs rung-1 compute).
constexpr uint64_t kAllocSalt = 0xA110C5EEDULL;
constexpr uint64_t kCacheSalt = 0xCAC4E5EEDULL;

void SleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

void ObserveRungLatency(Rung rung, double seconds) {
  if (!obs::MetricsEnabled()) return;
  switch (rung) {
    case Rung::kFull:
      obs::GetHistogram("serve.rung_full_seconds").Observe(seconds);
      break;
    case Rung::kCached:
      obs::GetHistogram("serve.rung_cached_seconds").Observe(seconds);
      break;
    case Rung::kFallback:
      obs::GetHistogram("serve.rung_fallback_seconds").Observe(seconds);
      break;
  }
}

constexpr char kModelTag[] = "tpr-serve-model";

}  // namespace

const char* RungName(Rung r) {
  switch (r) {
    case Rung::kFull:
      return "full";
    case Rung::kCached:
      return "cached";
    case Rung::kFallback:
      return "fallback";
  }
  return "?";
}

InferenceService::InferenceService(
    std::shared_ptr<const core::FeatureSpace> features,
    const core::EncoderConfig& encoder_config, const ServiceConfig& config)
    : features_(std::move(features)),
      encoder_config_(encoder_config),
      config_(config),
      cache_(config.cache_capacity) {
  TPR_CHECK(features_ != nullptr);
  TPR_CHECK(config_.num_workers > 0);
  TPR_CHECK(config_.queue_capacity > 0);
  TPR_CHECK(config_.max_retries >= 0);
  TPR_CHECK(config_.time_bucket_s > 0);
}

InferenceService::~InferenceService() { Shutdown(); }

Status InferenceService::SaveModel(const core::TemporalPathEncoder& encoder,
                                   const std::string& dir,
                                   uint64_t generation) {
  ckpt::Writer w;
  w.Str(kModelTag);
  w.U64(generation);
  w.I32(encoder.representation_dim());
  ckpt::WriteParamValues(w, encoder.Parameters());
  return ckpt::CheckpointDir(dir).Save(generation, w.bytes());
}

Status InferenceService::LoadModel(const std::string& dir) {
  auto loaded = ckpt::CheckpointDir(dir).LoadLatest();
  if (!loaded.ok()) {
    obs::GetCounter("serve.model_load_failures").Add(1);
    return loaded.status();
  }
  ckpt::Reader r(loaded->payload);
  std::string tag;
  uint64_t generation = 0;
  int32_t dim = 0;
  TPR_RETURN_IF_ERROR(r.Str(&tag));
  if (tag != kModelTag) {
    return Status::FailedPrecondition("not a serve model checkpoint");
  }
  TPR_RETURN_IF_ERROR(r.U64(&generation));
  TPR_RETURN_IF_ERROR(r.I32(&dim));
  if (dim != encoder_config_.d_hidden) {
    return Status::FailedPrecondition(
        "serve model dim " + std::to_string(dim) + " != configured " +
        std::to_string(encoder_config_.d_hidden));
  }
  auto encoder = std::make_shared<core::TemporalPathEncoder>(features_,
                                                             encoder_config_);
  TPR_RETURN_IF_ERROR(ckpt::ReadParamValuesInto(r, encoder->Parameters()));
  InstallModel(std::move(encoder), generation);
  return Status::OK();
}

void InferenceService::InstallModel(
    std::shared_ptr<const core::TemporalPathEncoder> encoder,
    uint64_t generation) {
  TPR_CHECK(encoder != nullptr);
  bool new_generation = false;
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    new_generation = generation != generation_;
    model_ = std::move(encoder);
    generation_ = generation;
  }
  if (new_generation) {
    // Breaker state and cached embeddings described the old parameters;
    // a new generation starts with a clean slate.
    cache_.Clear();
    std::lock_guard<std::mutex> lock(mu_);
    breaker_ = Breaker{};
  }
  obs::GetGauge("serve.model_generation").Set(static_cast<double>(generation));
}

uint64_t InferenceService::model_generation() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return generation_;
}

Status InferenceService::Start() {
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    if (model_ == nullptr) {
      return Status::FailedPrecondition("no model installed");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return Status::FailedPrecondition("already started");
  started_ = true;
  stopping_ = false;
  workers_.reserve(static_cast<size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void InferenceService::Shutdown() {
  std::deque<Request> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
    orphaned.swap(queue_);
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& req : orphaned) {
    ServeResult result;
    result.status = Status::Unavailable("service shutting down");
    result.ticket = req.ticket;
    req.promise.set_value(std::move(result));
  }
  for (auto& t : workers_) t.join();
  workers_.clear();
  obs::GetGauge("serve.queue_depth").Set(0);
}

bool InferenceService::PredictRung0Failure(const PathQuery& query) const {
  if (fault::WouldFail(fault::kAlloc, MixSeed(kAllocSalt, query.id))) {
    // The worker will degrade without attempting rung 0 — neither a
    // success nor a failure signal for the breaker.
    return false;
  }
  for (int a = 0; a <= config_.max_retries; ++a) {
    if (!fault::WouldFail(fault::kEncoderForward,
                          MixSeed(query.id, static_cast<uint64_t>(a)))) {
      return false;
    }
  }
  return true;
}

void InferenceService::BreakerAdmit(Request& req) {
  if (!fault::PlanActive()) return;  // observed mode: workers report
  req.breaker_predicted = true;
  const bool alloc_fail =
      fault::WouldFail(fault::kAlloc, MixSeed(kAllocSalt, req.query.id));
  const bool predicted_fail = PredictRung0Failure(req.query);
  switch (breaker_.state) {
    case Breaker::State::kClosed:
      if (alloc_fail) break;  // no rung-0 attempt, no signal
      if (predicted_fail) {
        if (++breaker_.consecutive_failures >= config_.breaker_trip_threshold) {
          breaker_.state = Breaker::State::kOpen;
          breaker_.open_skips_remaining = config_.breaker_open_requests;
          obs::GetCounter("serve.breaker_trips").Add(1);
        }
      } else {
        breaker_.consecutive_failures = 0;
      }
      break;
    case Breaker::State::kOpen:
      req.skip_rung0 = true;
      obs::GetCounter("serve.breaker_open_skips").Add(1);
      if (--breaker_.open_skips_remaining <= 0) {
        breaker_.state = Breaker::State::kHalfOpen;
      }
      break;
    case Breaker::State::kHalfOpen:
      // This request is the probe: it goes to rung 0 and its predicted
      // outcome resolves the breaker immediately, in admission order.
      if (alloc_fail || predicted_fail) {
        breaker_.state = Breaker::State::kOpen;
        breaker_.open_skips_remaining = config_.breaker_open_requests;
        if (predicted_fail) obs::GetCounter("serve.breaker_trips").Add(1);
      } else {
        breaker_.state = Breaker::State::kClosed;
        breaker_.consecutive_failures = 0;
      }
      break;
  }
}

void InferenceService::BreakerRecord(bool success, bool was_probe) {
  std::lock_guard<std::mutex> lock(mu_);
  if (was_probe) breaker_.probe_in_flight = false;
  if (success) {
    breaker_.state = Breaker::State::kClosed;
    breaker_.consecutive_failures = 0;
    return;
  }
  if (breaker_.state == Breaker::State::kHalfOpen ||
      ++breaker_.consecutive_failures >= config_.breaker_trip_threshold) {
    if (breaker_.state != Breaker::State::kOpen) {
      obs::GetCounter("serve.breaker_trips").Add(1);
    }
    breaker_.state = Breaker::State::kOpen;
    breaker_.open_skips_remaining = config_.breaker_open_requests;
  }
}

StatusOr<std::future<ServeResult>> InferenceService::Submit(
    PathQuery query, double deadline_ms) {
  const auto admitted_at = std::chrono::steady_clock::now();
  Request req;
  req.query = std::move(query);
  if (deadline_ms > 0) {
    req.has_deadline = true;
    req.deadline =
        admitted_at + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              deadline_ms));
  }
  std::future<ServeResult> future = req.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_ || stopping_) {
      return Status::Unavailable("service not accepting requests");
    }
    req.ticket = next_ticket_++;
    obs::GetCounter("serve.requests").Add(1);
    // Injected admission failure: behaves exactly like a full queue.
    if (fault::ShouldFail(fault::kQueueFull, req.ticket)) {
      obs::GetCounter("serve.shed").Add(1);
      return Status::ResourceExhausted("queue full (injected)");
    }
    if (queue_.size() >= static_cast<size_t>(config_.queue_capacity)) {
      if (!config_.block_when_full) {
        obs::GetCounter("serve.shed").Add(1);
        return Status::ResourceExhausted(
            "queue full (" + std::to_string(queue_.size()) + ")");
      }
      not_full_.wait(lock, [this] {
        return stopping_ ||
               queue_.size() < static_cast<size_t>(config_.queue_capacity);
      });
      if (stopping_) {
        return Status::Unavailable("service shutting down");
      }
    }
    BreakerAdmit(req);
    // Observed-mode half-open probe: admit exactly one request back into
    // rung 0; others keep degrading until the probe reports.
    if (!req.breaker_predicted) {
      if (breaker_.state == Breaker::State::kOpen) {
        req.skip_rung0 = true;
        obs::GetCounter("serve.breaker_open_skips").Add(1);
        if (--breaker_.open_skips_remaining <= 0) {
          breaker_.state = Breaker::State::kHalfOpen;
        }
      } else if (breaker_.state == Breaker::State::kHalfOpen) {
        if (breaker_.probe_in_flight) {
          req.skip_rung0 = true;
          obs::GetCounter("serve.breaker_open_skips").Add(1);
        } else {
          breaker_.probe_in_flight = true;
          req.breaker_probe = true;
        }
      }
    }
    queue_.push_back(std::move(req));
    obs::GetGauge("serve.queue_depth")
        .Set(static_cast<double>(queue_.size()));
  }
  not_empty_.notify_one();
  return future;
}

ServeResult InferenceService::SubmitAndWait(PathQuery query,
                                            double deadline_ms) {
  auto submitted = Submit(std::move(query), deadline_ms);
  if (!submitted.ok()) {
    ServeResult result;
    result.status = submitted.status();
    return result;
  }
  return submitted->get();
}

void InferenceService::WorkerLoop() {
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_, queue drained by Shutdown
      req = std::move(queue_.front());
      queue_.pop_front();
      obs::GetGauge("serve.queue_depth")
          .Set(static_cast<double>(queue_.size()));
    }
    not_full_.notify_one();
    ServeResult result = Process(req);
    req.promise.set_value(std::move(result));
  }
}

ServeResult InferenceService::Process(Request& req) {
  Stopwatch sw;
  ServeResult result;
  result.ticket = req.ticket;
  const PathQuery& q = req.query;

  std::shared_ptr<const core::TemporalPathEncoder> model;
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    model = model_;
  }

  const auto deadline_passed = [&req] {
    return req.has_deadline &&
           std::chrono::steady_clock::now() >= req.deadline;
  };
  const std::function<bool()> cancelled = deadline_passed;
  const auto deadline_result = [&] {
    // A probe that times out reports failure so the breaker never waits
    // on a probe that will not come back.
    if (!req.breaker_predicted && req.breaker_probe) {
      BreakerRecord(false, /*was_probe=*/true);
    }
    obs::GetCounter("serve.deadline_exceeded").Add(1);
    result.status = Status::DeadlineExceeded(
        "deadline elapsed (ticket " + std::to_string(req.ticket) + ")");
    return result;
  };

  // Injected worker slowness: the latency the ladder protects against.
  SleepMs(fault::DelayMs(fault::kSlowWorker, q.id));

  // Rung 0: full temporal encoder at the exact request time, with
  // retries. Skipped when the breaker is open or the per-request scratch
  // allocation "fails".
  bool attempted_rung0 = false;
  if (!req.skip_rung0 &&
      !fault::ShouldFail(fault::kAlloc, MixSeed(kAllocSalt, q.id))) {
    attempted_rung0 = true;
    for (int a = 0; a <= config_.max_retries; ++a) {
      if (deadline_passed()) return deadline_result();
      result.attempts = a + 1;
      if (a > 0) obs::GetCounter("serve.retries").Add(1);
      const uint64_t attempt_key = MixSeed(q.id, static_cast<uint64_t>(a));
      if (!fault::ShouldFail(fault::kEncoderForward, attempt_key)) {
        auto embedding =
            model->EncodeValueCancellable(q.path, q.depart_time_s, cancelled);
        if (!embedding.has_value()) return deadline_result();
        if (!req.breaker_predicted) {
          BreakerRecord(true, req.breaker_probe);
        }
        result.status = Status::OK();
        result.rung = Rung::kFull;
        result.embedding = *std::move(embedding);
        ObserveRungLatency(result.rung, sw.ElapsedSeconds());
        return result;
      }
      // Deterministic jittered exponential backoff before the retry.
      if (a < config_.max_retries) {
        const double base = std::min(
            config_.backoff_max_ms,
            config_.backoff_base_ms * static_cast<double>(1ULL << a));
        Rng jitter(MixSeed(config_.seed, attempt_key));
        SleepMs(base * (0.5 + 0.5 * jitter.Uniform()));
      }
    }
    if (!req.breaker_predicted) {
      BreakerRecord(false, req.breaker_probe);
    }
  }
  (void)attempted_rung0;

  // Rung 1: bucket-level cache. Values are computed at the bucket's
  // representative time, so every request mapping to the key sees the
  // same bytes whether it hits or recomputes. Rung-0 successes never
  // populate this cache: they are exact-time embeddings and would make
  // the cached bytes depend on which request got there first.
  if (deadline_passed()) return deadline_result();
  int64_t bucket = 0;
  const std::string key = CacheKey(q, &bucket);
  if (auto hit = cache_.Get(key)) {
    obs::GetCounter("serve.cache_hits").Add(1);
    result.status = Status::OK();
    result.rung = Rung::kCached;
    result.embedding = *std::move(hit);
    ObserveRungLatency(result.rung, sw.ElapsedSeconds());
    return result;
  }
  obs::GetCounter("serve.cache_misses").Add(1);
  // Keyed by the cache key, not the request id: every request for this
  // (path, bucket) gets the same recompute verdict, so which of them
  // arrives first cannot change anyone's outcome.
  const uint64_t cache_fault_key =
      MixSeed(kCacheSalt, std::hash<std::string>{}(key));
  if (!fault::ShouldFail(fault::kEncoderForward, cache_fault_key)) {
    const int64_t bucket_time = bucket * config_.time_bucket_s;
    auto embedding =
        model->EncodeValueCancellable(q.path, bucket_time, cancelled);
    if (!embedding.has_value()) return deadline_result();
    cache_.Put(key, *embedding);
    result.status = Status::OK();
    result.rung = Rung::kCached;
    result.embedding = *std::move(embedding);
    ObserveRungLatency(result.rung, sw.ElapsedSeconds());
    return result;
  }

  // Rung 2: frozen node2vec mean-pool. Pure arithmetic — always succeeds.
  if (deadline_passed()) return deadline_result();
  result.status = Status::OK();
  result.rung = Rung::kFallback;
  result.embedding = FallbackEmbedding(q);
  ObserveRungLatency(result.rung, sw.ElapsedSeconds());
  return result;
}

std::string InferenceService::CacheKey(const PathQuery& query,
                                       int64_t* bucket) const {
  *bucket = query.depart_time_s / config_.time_bucket_s;
  std::string key;
  key.reserve(query.path.size() * sizeof(int) + sizeof(int64_t));
  key.append(reinterpret_cast<const char*>(bucket), sizeof(*bucket));
  key.append(reinterpret_cast<const char*>(query.path.data()),
             query.path.size() * sizeof(int));
  return key;
}

std::vector<float> InferenceService::FallbackEmbedding(
    const PathQuery& query) const {
  const auto& network = *features_->data->network;
  const int d_road = features_->road_embeddings.dim;
  const int dim = encoder_config_.d_hidden;
  std::vector<float> pooled(static_cast<size_t>(2 * d_road), 0.0f);
  for (int edge_id : query.path) {
    const auto& e = network.edge(edge_id);
    const auto& from_vec = features_->road_embeddings[e.from];
    const auto& to_vec = features_->road_embeddings[e.to];
    for (int j = 0; j < d_road; ++j) {
      pooled[static_cast<size_t>(j)] += from_vec[static_cast<size_t>(j)];
      pooled[static_cast<size_t>(d_road + j)] += to_vec[static_cast<size_t>(j)];
    }
  }
  if (!query.path.empty()) {
    const float inv = 1.0f / static_cast<float>(query.path.size());
    for (float& v : pooled) v *= inv;
  }
  // Shape to the encoder's representation_dim so downstream consumers
  // never see a rung-dependent dimensionality.
  std::vector<float> out(static_cast<size_t>(dim), 0.0f);
  const size_t n = std::min(out.size(), pooled.size());
  std::copy(pooled.begin(), pooled.begin() + static_cast<long>(n),
            out.begin());
  return out;
}

}  // namespace tpr::serve
