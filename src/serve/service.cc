#include "serve/service.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>

#include "ckpt/checkpoint.h"
#include "ckpt/serialize.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace tpr::serve {
namespace {

// Salts decorrelating the keyed fault verdicts of the different sites a
// single request touches (rung-0 attempts vs alloc vs rung-1 compute),
// and the canary routing hash from all of them.
constexpr uint64_t kAllocSalt = 0xA110C5EEDULL;
constexpr uint64_t kCacheSalt = 0xCAC4E5EEDULL;
constexpr uint64_t kRouteSalt = 0xCA9A995EEDULL;

void SleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

void ObserveRungLatency(Rung rung, double seconds) {
  if (!obs::MetricsEnabled()) return;
  switch (rung) {
    case Rung::kFull:
      obs::GetHistogram("serve.rung_full_seconds").Observe(seconds);
      break;
    case Rung::kCached:
      obs::GetHistogram("serve.rung_cached_seconds").Observe(seconds);
      break;
    case Rung::kFallback:
      obs::GetHistogram("serve.rung_fallback_seconds").Observe(seconds);
      break;
  }
}

constexpr char kModelTag[] = "tpr-serve-model";

}  // namespace

const char* RungName(Rung r) {
  switch (r) {
    case Rung::kFull:
      return "full";
    case Rung::kCached:
      return "cached";
    case Rung::kFallback:
      return "fallback";
  }
  return "?";
}

const char* CanaryVerdictName(CanaryVerdict v) {
  switch (v) {
    case CanaryVerdict::kPromoted:
      return "promoted";
    case CanaryVerdict::kRolledBack:
      return "rolled-back";
  }
  return "?";
}

InferenceService::InferenceService(
    std::shared_ptr<const core::FeatureSpace> features,
    const core::EncoderConfig& encoder_config, const ServiceConfig& config)
    : features_(std::move(features)),
      encoder_config_(encoder_config),
      config_(config) {
  TPR_CHECK(features_ != nullptr);
  TPR_CHECK(config_.num_workers > 0);
  TPR_CHECK(config_.queue_capacity > 0);
  TPR_CHECK(config_.max_retries >= 0);
  TPR_CHECK(config_.time_bucket_s > 0);
  TPR_CHECK(config_.canary_permille >= 0 && config_.canary_permille <= 1000);
  TPR_CHECK(config_.canary_promote_after > 0);
}

InferenceService::~InferenceService() { Shutdown(); }

Status InferenceService::SaveModel(const core::TemporalPathEncoder& encoder,
                                   const std::string& dir,
                                   uint64_t generation) {
  ckpt::Writer w;
  w.Str(kModelTag);
  w.U64(generation);
  w.I32(encoder.representation_dim());
  ckpt::WriteParamValues(w, encoder.Parameters());
  return ckpt::CheckpointDir(dir).Save(generation, w.bytes());
}

StatusOr<InferenceService::DecodedModel> InferenceService::DecodeModelPayload(
    std::string_view payload,
    std::shared_ptr<const core::FeatureSpace> features,
    const core::EncoderConfig& config) {
  ckpt::Reader r(payload);
  std::string tag;
  uint64_t generation = 0;
  int32_t dim = 0;
  TPR_RETURN_IF_ERROR(r.Str(&tag));
  if (tag != kModelTag) {
    return Status::FailedPrecondition("not a serve model checkpoint");
  }
  TPR_RETURN_IF_ERROR(r.U64(&generation));
  TPR_RETURN_IF_ERROR(r.I32(&dim));
  if (dim != config.d_hidden) {
    return Status::FailedPrecondition(
        "serve model dim " + std::to_string(dim) + " != configured " +
        std::to_string(config.d_hidden));
  }
  auto encoder =
      std::make_shared<core::TemporalPathEncoder>(std::move(features), config);
  TPR_RETURN_IF_ERROR(ckpt::ReadParamValuesInto(r, encoder->Parameters()));
  DecodedModel out;
  out.encoder = std::move(encoder);
  out.generation = generation;
  return out;
}

Status InferenceService::LoadModel(const std::string& dir) {
  auto loaded = ckpt::CheckpointDir(dir).LoadLatest();
  if (!loaded.ok()) {
    obs::GetCounter("serve.model_load_failures").Add(1);
    return loaded.status();
  }
  auto decoded = DecodeModelPayload(loaded->payload, features_, encoder_config_);
  if (!decoded.ok()) {
    obs::GetCounter("serve.model_load_failures").Add(1);
    return decoded.status();
  }
  InstallModel(std::move(decoded->encoder), decoded->generation);
  return Status::OK();
}

std::shared_ptr<InferenceService::GenState> InferenceService::MakeGenState(
    std::shared_ptr<const core::TemporalPathEncoder> encoder,
    uint64_t generation) const {
  auto gen = std::make_shared<GenState>();
  gen->model = std::move(encoder);
  gen->generation = generation;
  gen->cache = std::make_unique<EmbeddingLruCache>(config_.cache_capacity);
  return gen;
}

void InferenceService::InstallModel(
    std::shared_ptr<const core::TemporalPathEncoder> encoder,
    uint64_t generation) {
  TPR_CHECK(encoder != nullptr);
  auto gen = MakeGenState(std::move(encoder), generation);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (canary_ != nullptr) {
      // The incumbent the canary was being compared against is gone, so
      // the comparison is void: roll the canary back rather than keep
      // scoring it against a different baseline.
      ResolveCanaryLocked(CanaryVerdict::kRolledBack,
                          "superseded by InstallModel");
    }
    live_ = std::move(gen);
  }
  obs::GetGauge("serve.model_generation").Set(static_cast<double>(generation));
}

Status InferenceService::BeginCanary(
    std::shared_ptr<const core::TemporalPathEncoder> encoder,
    uint64_t generation) {
  if (encoder == nullptr) {
    return Status::InvalidArgument("null canary encoder");
  }
  auto gen = MakeGenState(std::move(encoder), generation);
  std::lock_guard<std::mutex> lock(mu_);
  if (live_ == nullptr) {
    return Status::FailedPrecondition("no incumbent model to canary against");
  }
  if (canary_ != nullptr) {
    return Status::FailedPrecondition("a canary is already in flight");
  }
  canary_ = std::move(gen);
  obs::GetCounter("serve.canaries").Add(1);
  obs::GetGauge("serve.canary_generation").Set(static_cast<double>(generation));
  return Status::OK();
}

Status InferenceService::PromoteCanary(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (canary_ == nullptr) {
    return Status::FailedPrecondition("no canary in flight");
  }
  ResolveCanaryLocked(CanaryVerdict::kPromoted, reason);
  return Status::OK();
}

Status InferenceService::AbortCanary(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (canary_ == nullptr) {
    return Status::FailedPrecondition("no canary in flight");
  }
  ResolveCanaryLocked(CanaryVerdict::kRolledBack, reason);
  return Status::OK();
}

std::optional<CanaryResolution> InferenceService::TakeCanaryResolution() {
  std::lock_guard<std::mutex> lock(mu_);
  if (resolutions_.empty()) return std::nullopt;
  CanaryResolution res = std::move(resolutions_.front());
  resolutions_.pop_front();
  return res;
}

CanaryStatus InferenceService::canary_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  CanaryStatus s;
  if (canary_ != nullptr) {
    s.installed = true;
    s.generation = canary_->generation;
    s.routed = canary_->routed;
    s.clean = canary_->clean;
  }
  return s;
}

void InferenceService::ResolveCanaryLocked(CanaryVerdict verdict,
                                           const std::string& reason) {
  CanaryResolution res;
  res.generation = canary_->generation;
  res.verdict = verdict;
  res.reason = reason;
  res.routed = canary_->routed;
  res.clean = canary_->clean;
  if (verdict == CanaryVerdict::kPromoted) {
    // The canary slot — fresh breaker, warm cache, its own metrics —
    // becomes the incumbent wholesale; nothing about its state resets.
    live_ = std::move(canary_);
    obs::GetCounter("serve.canary_promotions").Add(1);
    obs::GetGauge("serve.model_generation")
        .Set(static_cast<double>(live_->generation));
  } else {
    obs::GetCounter("serve.canary_rollbacks").Add(1);
  }
  canary_.reset();
  obs::GetGauge("serve.canary_generation").Set(0);
  resolutions_.push_back(std::move(res));
}

uint64_t InferenceService::model_generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_ != nullptr ? live_->generation : 0;
}

std::shared_ptr<const core::TemporalPathEncoder>
InferenceService::live_model() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_ != nullptr ? live_->model : nullptr;
}

bool InferenceService::RoutesToCanary(uint64_t id) const {
  // Pure hash of the request id: the same id routes the same way at any
  // worker count, on any run. (Whether a canary is actually installed is
  // a separate question — this is only the routing predicate.)
  return MixSeed(kRouteSalt, id) % 1000 <
         static_cast<uint64_t>(config_.canary_permille);
}

Status InferenceService::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (live_ == nullptr) {
    return Status::FailedPrecondition("no model installed");
  }
  if (started_) return Status::FailedPrecondition("already started");
  started_ = true;
  stopping_ = false;
  workers_.reserve(static_cast<size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void InferenceService::Shutdown() {
  std::deque<Request> orphaned;
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Claim the queue AND the worker threads under the lock so racing
    // Shutdown calls (or Shutdown vs destructor) each join a disjoint —
    // possibly empty — set of threads instead of double-joining.
    orphaned.swap(queue_);
    workers.swap(workers_);
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& req : orphaned) {
    ServeResult result;
    result.status = Status::Unavailable("service shutting down");
    result.ticket = req.ticket;
    if (req.gen != nullptr) result.generation = req.gen->generation;
    result.canary = req.canary;
    req.promise.set_value(std::move(result));
  }
  for (auto& t : workers) t.join();
  if (!workers.empty()) obs::GetGauge("serve.queue_depth").Set(0);
}

bool InferenceService::PredictRung0Failure(const PathQuery& query) const {
  if (fault::WouldFail(fault::kAlloc, MixSeed(kAllocSalt, query.id))) {
    // The worker will degrade without attempting rung 0 — neither a
    // success nor a failure signal for the breaker.
    return false;
  }
  for (int a = 0; a <= config_.max_retries; ++a) {
    if (!fault::WouldFail(fault::kEncoderForward,
                          MixSeed(query.id, static_cast<uint64_t>(a)))) {
      return false;
    }
  }
  return true;
}

bool InferenceService::BreakerAdmit(GenState& gen, Request& req) {
  Breaker& b = gen.breaker;
  req.breaker_predicted = true;
  const bool alloc_fail =
      fault::WouldFail(fault::kAlloc, MixSeed(kAllocSalt, req.query.id));
  const bool predicted_fail = PredictRung0Failure(req.query);
  bool tripped = false;
  switch (b.state) {
    case Breaker::State::kClosed:
      if (alloc_fail) break;  // no rung-0 attempt, no signal
      if (predicted_fail) {
        if (++b.consecutive_failures >= config_.breaker_trip_threshold) {
          b.state = Breaker::State::kOpen;
          b.open_skips_remaining = config_.breaker_open_requests;
          obs::GetCounter("serve.breaker_trips").Add(1);
          tripped = true;
        }
      } else {
        b.consecutive_failures = 0;
      }
      break;
    case Breaker::State::kOpen:
      req.skip_rung0 = true;
      obs::GetCounter("serve.breaker_open_skips").Add(1);
      if (--b.open_skips_remaining <= 0) {
        b.state = Breaker::State::kHalfOpen;
      }
      break;
    case Breaker::State::kHalfOpen:
      // This request is the probe: it goes to rung 0 and its predicted
      // outcome resolves the breaker immediately, in admission order.
      if (alloc_fail || predicted_fail) {
        b.state = Breaker::State::kOpen;
        b.open_skips_remaining = config_.breaker_open_requests;
        if (predicted_fail) {
          obs::GetCounter("serve.breaker_trips").Add(1);
          tripped = true;
        }
      } else {
        b.state = Breaker::State::kClosed;
        b.consecutive_failures = 0;
      }
      break;
  }
  return tripped;
}

void InferenceService::BreakerRecord(GenState& gen, bool success,
                                     bool was_probe) {
  std::lock_guard<std::mutex> lock(mu_);
  Breaker& b = gen.breaker;
  if (was_probe) b.probe_in_flight = false;
  if (success) {
    b.state = Breaker::State::kClosed;
    b.consecutive_failures = 0;
    // Observed-mode canary accounting: clean rung-0 completions promote.
    // (Completion order is thread-dependent, so observed-mode canarying
    // is outside the bitwise-determinism contract — see the header.)
    if (&gen == canary_.get()) {
      if (++gen.clean >=
          static_cast<uint64_t>(config_.canary_promote_after)) {
        ResolveCanaryLocked(CanaryVerdict::kPromoted, "clean-requests");
      }
    }
    return;
  }
  const bool was_open = b.state == Breaker::State::kOpen;
  if (b.state == Breaker::State::kHalfOpen ||
      ++b.consecutive_failures >= config_.breaker_trip_threshold) {
    if (b.state != Breaker::State::kOpen) {
      obs::GetCounter("serve.breaker_trips").Add(1);
    }
    b.state = Breaker::State::kOpen;
    b.open_skips_remaining = config_.breaker_open_requests;
  }
  if (&gen == canary_.get() && !was_open &&
      b.state == Breaker::State::kOpen) {
    ResolveCanaryLocked(CanaryVerdict::kRolledBack, "breaker-trip");
  }
}

void InferenceService::AdmitToGeneration(Request& req) {
  req.gen = live_;
  if (canary_ != nullptr && RoutesToCanary(req.query.id)) {
    ++canary_->routed;
    obs::GetCounter("serve.canary_requests").Add(1);
    // Injected quality regression: the canary rolls back the moment
    // traffic reaches it, and this request is served by the incumbent —
    // canary failures must never cost a user a good answer.
    if (fault::ShouldFail(fault::kCanaryRegression, canary_->generation)) {
      ResolveCanaryLocked(CanaryVerdict::kRolledBack,
                          "injected canary-regression");
    } else {
      req.gen = canary_;
      req.canary = true;
    }
  }
  GenState& gen = *req.gen;
  if (fault::PlanActive()) {
    const bool tripped = BreakerAdmit(gen, req);
    if (req.canary) {
      if (tripped) {
        // The request stays pinned to the now-detached canary state and
        // serves degraded; every later request routes to the incumbent.
        ResolveCanaryLocked(CanaryVerdict::kRolledBack, "breaker-trip");
      } else if (!req.skip_rung0 &&
                 !fault::WouldFail(fault::kAlloc,
                                   MixSeed(kAllocSalt, req.query.id)) &&
                 !PredictRung0Failure(req.query)) {
        if (++gen.clean >=
            static_cast<uint64_t>(config_.canary_promote_after)) {
          ResolveCanaryLocked(CanaryVerdict::kPromoted, "clean-requests");
        }
      }
    }
    return;
  }
  // Observed mode (no fault plan): breaker outcomes are reported by the
  // workers; admission only applies the current state. Half-open admits
  // exactly one probe back into rung 0; others keep degrading until the
  // probe reports.
  Breaker& b = gen.breaker;
  if (b.state == Breaker::State::kOpen) {
    req.skip_rung0 = true;
    obs::GetCounter("serve.breaker_open_skips").Add(1);
    if (--b.open_skips_remaining <= 0) {
      b.state = Breaker::State::kHalfOpen;
    }
  } else if (b.state == Breaker::State::kHalfOpen) {
    if (b.probe_in_flight) {
      req.skip_rung0 = true;
      obs::GetCounter("serve.breaker_open_skips").Add(1);
    } else {
      b.probe_in_flight = true;
      req.breaker_probe = true;
    }
  }
}

StatusOr<std::future<ServeResult>> InferenceService::Submit(
    PathQuery query, double deadline_ms) {
  const auto admitted_at = std::chrono::steady_clock::now();
  Request req;
  req.query = std::move(query);
  if (deadline_ms > 0) {
    req.has_deadline = true;
    req.deadline =
        admitted_at + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              deadline_ms));
  }
  std::future<ServeResult> future = req.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_ || stopping_) {
      return Status::Unavailable("service not accepting requests");
    }
    req.ticket = next_ticket_++;
    obs::GetCounter("serve.requests").Add(1);
    // Injected admission failure: behaves exactly like a full queue.
    if (fault::ShouldFail(fault::kQueueFull, req.ticket)) {
      obs::GetCounter("serve.shed").Add(1);
      return Status::ResourceExhausted("queue full (injected)");
    }
    if (queue_.size() >= static_cast<size_t>(config_.queue_capacity)) {
      if (!config_.block_when_full) {
        obs::GetCounter("serve.shed").Add(1);
        return Status::ResourceExhausted(
            "queue full (" + std::to_string(queue_.size()) + ")");
      }
      not_full_.wait(lock, [this] {
        return stopping_ ||
               queue_.size() < static_cast<size_t>(config_.queue_capacity);
      });
      if (stopping_) {
        return Status::Unavailable("service shutting down");
      }
    }
    AdmitToGeneration(req);
    queue_.push_back(std::move(req));
    obs::GetGauge("serve.queue_depth")
        .Set(static_cast<double>(queue_.size()));
  }
  not_empty_.notify_one();
  return future;
}

ServeResult InferenceService::SubmitAndWait(PathQuery query,
                                            double deadline_ms) {
  auto submitted = Submit(std::move(query), deadline_ms);
  if (!submitted.ok()) {
    ServeResult result;
    result.status = submitted.status();
    return result;
  }
  return submitted->get();
}

void InferenceService::WorkerLoop() {
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_, queue drained by Shutdown
      req = std::move(queue_.front());
      queue_.pop_front();
      obs::GetGauge("serve.queue_depth")
          .Set(static_cast<double>(queue_.size()));
    }
    not_full_.notify_one();
    ServeResult result = Process(req);
    req.promise.set_value(std::move(result));
  }
}

ServeResult InferenceService::Process(Request& req) {
  Stopwatch sw;
  ServeResult result;
  result.ticket = req.ticket;
  result.generation = req.gen->generation;
  result.canary = req.canary;
  const PathQuery& q = req.query;

  // The generation was pinned at admission: model and cache reads are
  // lock-free (both pointers are immutable after the slot is built), and
  // a LoadModel/promotion racing past cannot tear this request.
  const core::TemporalPathEncoder& model = *req.gen->model;
  EmbeddingLruCache& cache = *req.gen->cache;

  const auto deadline_passed = [&req] {
    return req.has_deadline &&
           std::chrono::steady_clock::now() >= req.deadline;
  };
  const std::function<bool()> cancelled = deadline_passed;
  const auto deadline_result = [&] {
    // A probe that times out reports failure so the breaker never waits
    // on a probe that will not come back.
    if (!req.breaker_predicted && req.breaker_probe) {
      BreakerRecord(*req.gen, false, /*was_probe=*/true);
    }
    obs::GetCounter("serve.deadline_exceeded").Add(1);
    result.status = Status::DeadlineExceeded(
        "deadline elapsed (ticket " + std::to_string(req.ticket) + ")");
    return result;
  };

  // Injected worker slowness: the latency the ladder protects against.
  SleepMs(fault::DelayMs(fault::kSlowWorker, q.id));

  // Rung 0: full temporal encoder at the exact request time, with
  // retries. Skipped when the breaker is open or the per-request scratch
  // allocation "fails".
  if (!req.skip_rung0 &&
      !fault::ShouldFail(fault::kAlloc, MixSeed(kAllocSalt, q.id))) {
    for (int a = 0; a <= config_.max_retries; ++a) {
      if (deadline_passed()) return deadline_result();
      result.attempts = a + 1;
      if (a > 0) obs::GetCounter("serve.retries").Add(1);
      const uint64_t attempt_key = MixSeed(q.id, static_cast<uint64_t>(a));
      if (!fault::ShouldFail(fault::kEncoderForward, attempt_key)) {
        auto embedding =
            model.EncodeValueCancellable(q.path, q.depart_time_s, cancelled);
        if (!embedding.has_value()) return deadline_result();
        if (!req.breaker_predicted) {
          BreakerRecord(*req.gen, true, req.breaker_probe);
        }
        result.status = Status::OK();
        result.rung = Rung::kFull;
        result.embedding = *std::move(embedding);
        ObserveRungLatency(result.rung, sw.ElapsedSeconds());
        return result;
      }
      // Deterministic jittered exponential backoff before the retry.
      if (a < config_.max_retries) {
        const double base = std::min(
            config_.backoff_max_ms,
            config_.backoff_base_ms * static_cast<double>(1ULL << a));
        Rng jitter(MixSeed(config_.seed, attempt_key));
        SleepMs(base * (0.5 + 0.5 * jitter.Uniform()));
      }
    }
    if (!req.breaker_predicted) {
      BreakerRecord(*req.gen, false, req.breaker_probe);
    }
  }

  // Rung 1: bucket-level cache. Values are computed at the bucket's
  // representative time, so every request mapping to the key sees the
  // same bytes whether it hits or recomputes. Rung-0 successes never
  // populate this cache: they are exact-time embeddings and would make
  // the cached bytes depend on which request got there first.
  if (deadline_passed()) return deadline_result();
  int64_t bucket = 0;
  const std::string key = CacheKey(q, &bucket);
  if (auto hit = cache.Get(key)) {
    obs::GetCounter("serve.cache_hits").Add(1);
    result.status = Status::OK();
    result.rung = Rung::kCached;
    result.embedding = *std::move(hit);
    ObserveRungLatency(result.rung, sw.ElapsedSeconds());
    return result;
  }
  obs::GetCounter("serve.cache_misses").Add(1);
  // Keyed by the cache key, not the request id: every request for this
  // (path, bucket) gets the same recompute verdict, so which of them
  // arrives first cannot change anyone's outcome.
  const uint64_t cache_fault_key =
      MixSeed(kCacheSalt, std::hash<std::string>{}(key));
  if (!fault::ShouldFail(fault::kEncoderForward, cache_fault_key)) {
    const int64_t bucket_time = bucket * config_.time_bucket_s;
    auto embedding =
        model.EncodeValueCancellable(q.path, bucket_time, cancelled);
    if (!embedding.has_value()) return deadline_result();
    cache.Put(key, *embedding);
    result.status = Status::OK();
    result.rung = Rung::kCached;
    result.embedding = *std::move(embedding);
    ObserveRungLatency(result.rung, sw.ElapsedSeconds());
    return result;
  }

  // Rung 2: frozen node2vec mean-pool. Pure arithmetic — always succeeds.
  if (deadline_passed()) return deadline_result();
  result.status = Status::OK();
  result.rung = Rung::kFallback;
  result.embedding = FallbackEmbedding(q);
  ObserveRungLatency(result.rung, sw.ElapsedSeconds());
  return result;
}

std::string InferenceService::CacheKey(const PathQuery& query,
                                       int64_t* bucket) const {
  *bucket = query.depart_time_s / config_.time_bucket_s;
  std::string key;
  key.reserve(query.path.size() * sizeof(int) + sizeof(int64_t));
  key.append(reinterpret_cast<const char*>(bucket), sizeof(*bucket));
  key.append(reinterpret_cast<const char*>(query.path.data()),
             query.path.size() * sizeof(int));
  return key;
}

std::vector<float> InferenceService::FallbackEmbedding(
    const PathQuery& query) const {
  const auto& network = *features_->data->network;
  const int d_road = features_->road_embeddings.dim;
  const int dim = encoder_config_.d_hidden;
  std::vector<float> pooled(static_cast<size_t>(2 * d_road), 0.0f);
  for (int edge_id : query.path) {
    const auto& e = network.edge(edge_id);
    const auto& from_vec = features_->road_embeddings[e.from];
    const auto& to_vec = features_->road_embeddings[e.to];
    for (int j = 0; j < d_road; ++j) {
      pooled[static_cast<size_t>(j)] += from_vec[static_cast<size_t>(j)];
      pooled[static_cast<size_t>(d_road + j)] += to_vec[static_cast<size_t>(j)];
    }
  }
  if (!query.path.empty()) {
    const float inv = 1.0f / static_cast<float>(query.path.size());
    for (float& v : pooled) v *= inv;
  }
  // Shape to the encoder's representation_dim so downstream consumers
  // never see a rung-dependent dimensionality.
  std::vector<float> out(static_cast<size_t>(dim), 0.0f);
  const size_t n = std::min(out.size(), pooled.size());
  std::copy(pooled.begin(), pooled.begin() + static_cast<long>(n),
            out.begin());
  return out;
}

}  // namespace tpr::serve
