#include "nn/tensor.h"

#include <algorithm>
#include <cmath>

namespace tpr::nn {

Tensor Tensor::RowVector(std::vector<float> values) {
  Tensor t;
  t.rows_ = 1;
  t.cols_ = static_cast<int>(values.size());
  t.data_ = std::move(values);
  return t;
}

Tensor Tensor::FromValues(int rows, int cols, std::vector<float> values) {
  TPR_CHECK(static_cast<size_t>(rows) * cols == values.size());
  Tensor t;
  t.rows_ = rows;
  t.cols_ = cols;
  t.data_ = std::move(values);
  return t;
}

void Tensor::Fill(float v) {
  for (auto& x : data_) x = v;
}

float Tensor::Sum() const {
  float s = 0.0f;
  for (float x : data_) s += x;
  return s;
}

float Tensor::Norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(s));
}

namespace {

// Cache-blocking tile (floats). 64x64 fp32 tiles of a and b together fit
// comfortably in a 32 KiB L1. Each kernel keeps the per-output-element
// accumulation order of the naive loop, so results are bit-identical.
constexpr int kTile = 64;

}  // namespace

void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  TPR_CHECK(a.cols() == b.rows());
  TPR_CHECK(out.rows() == a.rows() && out.cols() == b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  // Blocked i-k-j: for each (j, kk) tile, the touched rows of b stay hot
  // in cache while every row of a streams through. kk remains increasing
  // for each output element.
  for (int j0 = 0; j0 < n; j0 += kTile) {
    const int j1 = std::min(n, j0 + kTile);
    for (int k0 = 0; k0 < k; k0 += kTile) {
      const int k1 = std::min(k, k0 + kTile);
      for (int i = 0; i < m; ++i) {
        float* out_row = out.data() + static_cast<size_t>(i) * n;
        const float* a_row = a.data() + static_cast<size_t>(i) * k;
        for (int kk = k0; kk < k1; ++kk) {
          const float av = a_row[kk];
          if (av == 0.0f) continue;
          const float* b_row = b.data() + static_cast<size_t>(kk) * n;
          for (int j = j0; j < j1; ++j) out_row[j] += av * b_row[j];
        }
      }
    }
  }
}

void MatMulTransAAccumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  TPR_CHECK(a.rows() == b.rows());
  TPR_CHECK(out.rows() == a.cols() && out.cols() == b.cols());
  const int k = a.rows(), m = a.cols(), n = b.cols();
  // Blocked over (i, j) output tiles with the full kk sweep innermost-
  // but-two, so each out tile stays resident while a and b stream.
  for (int i0 = 0; i0 < m; i0 += kTile) {
    const int i1 = std::min(m, i0 + kTile);
    for (int j0 = 0; j0 < n; j0 += kTile) {
      const int j1 = std::min(n, j0 + kTile);
      for (int kk = 0; kk < k; ++kk) {
        const float* a_row = a.data() + static_cast<size_t>(kk) * m;
        const float* b_row = b.data() + static_cast<size_t>(kk) * n;
        for (int i = i0; i < i1; ++i) {
          const float av = a_row[i];
          if (av == 0.0f) continue;
          float* out_row = out.data() + static_cast<size_t>(i) * n;
          for (int j = j0; j < j1; ++j) out_row[j] += av * b_row[j];
        }
      }
    }
  }
}

void MatMulTransBAccumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  TPR_CHECK(a.cols() == b.cols());
  TPR_CHECK(out.rows() == a.rows() && out.cols() == b.rows());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  // Blocked over j: the tile's rows of b (kTile * k floats) are reused
  // across every row of a. The full-k dot per output element keeps the
  // naive summation order.
  for (int j0 = 0; j0 < n; j0 += kTile) {
    const int j1 = std::min(n, j0 + kTile);
    for (int i = 0; i < m; ++i) {
      const float* a_row = a.data() + static_cast<size_t>(i) * k;
      float* out_row = out.data() + static_cast<size_t>(i) * n;
      for (int j = j0; j < j1; ++j) {
        const float* b_row = b.data() + static_cast<size_t>(j) * k;
        float s = 0.0f;
        for (int kk = 0; kk < k; ++kk) s += a_row[kk] * b_row[kk];
        out_row[j] += s;
      }
    }
  }
}

}  // namespace tpr::nn
