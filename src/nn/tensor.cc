#include "nn/tensor.h"

#include <cmath>

namespace tpr::nn {

Tensor Tensor::RowVector(std::vector<float> values) {
  Tensor t;
  t.rows_ = 1;
  t.cols_ = static_cast<int>(values.size());
  t.data_ = std::move(values);
  return t;
}

Tensor Tensor::FromValues(int rows, int cols, std::vector<float> values) {
  TPR_CHECK(static_cast<size_t>(rows) * cols == values.size());
  Tensor t;
  t.rows_ = rows;
  t.cols_ = cols;
  t.data_ = std::move(values);
  return t;
}

void Tensor::Fill(float v) {
  for (auto& x : data_) x = v;
}

float Tensor::Sum() const {
  float s = 0.0f;
  for (float x : data_) s += x;
  return s;
}

float Tensor::Norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(s));
}

void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  TPR_CHECK(a.cols() == b.rows());
  TPR_CHECK(out.rows() == a.rows() && out.cols() == b.cols());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int i = 0; i < m; ++i) {
    float* out_row = out.data() + static_cast<size_t>(i) * n;
    const float* a_row = a.data() + static_cast<size_t>(i) * k;
    for (int kk = 0; kk < k; ++kk) {
      const float av = a_row[kk];
      if (av == 0.0f) continue;
      const float* b_row = b.data() + static_cast<size_t>(kk) * n;
      for (int j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void MatMulTransAAccumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  TPR_CHECK(a.rows() == b.rows());
  TPR_CHECK(out.rows() == a.cols() && out.cols() == b.cols());
  const int k = a.rows(), m = a.cols(), n = b.cols();
  for (int kk = 0; kk < k; ++kk) {
    const float* a_row = a.data() + static_cast<size_t>(kk) * m;
    const float* b_row = b.data() + static_cast<size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float av = a_row[i];
      if (av == 0.0f) continue;
      float* out_row = out.data() + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void MatMulTransBAccumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  TPR_CHECK(a.cols() == b.cols());
  TPR_CHECK(out.rows() == a.rows() && out.cols() == b.rows());
  const int m = a.rows(), k = a.cols(), n = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* a_row = a.data() + static_cast<size_t>(i) * k;
    float* out_row = out.data() + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* b_row = b.data() + static_cast<size_t>(j) * k;
      float s = 0.0f;
      for (int kk = 0; kk < k; ++kk) s += a_row[kk] * b_row[kk];
      out_row[j] += s;
    }
  }
}

}  // namespace tpr::nn
