#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "kern/kern.h"

namespace tpr::nn {

Tensor Tensor::Uninitialized(int rows, int cols) {
  TPR_CHECK(rows >= 0 && cols >= 0);
  Tensor t;
  t.rows_ = rows;
  t.cols_ = cols;
  t.data_ = kern::FloatBuffer(static_cast<size_t>(rows) * cols);
  return t;
}

Tensor Tensor::RowVector(const std::vector<float>& values) {
  return FromValues(1, static_cast<int>(values.size()), values);
}

Tensor Tensor::FromValues(int rows, int cols,
                          const std::vector<float>& values) {
  TPR_CHECK(static_cast<size_t>(rows) * cols == values.size());
  Tensor t = Uninitialized(rows, cols);
  if (!values.empty()) {
    std::memcpy(t.data(), values.data(), values.size() * sizeof(float));
  }
  return t;
}

void Tensor::Fill(float v) { data_.Fill(v); }

float Tensor::Sum() const {
  float s = 0.0f;
  const float* d = data_.data();
  for (size_t i = 0; i < data_.size(); ++i) s += d[i];
  return s;
}

float Tensor::Norm() const {
  double s = 0.0;
  const float* d = data_.data();
  for (size_t i = 0; i < data_.size(); ++i) {
    s += static_cast<double>(d[i]) * d[i];
  }
  return static_cast<float>(std::sqrt(s));
}

void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  TPR_CHECK(a.cols() == b.rows());
  TPR_CHECK(out.rows() == a.rows() && out.cols() == b.cols());
  kern::GemmAcc(a.data(), b.data(), out.data(), a.rows(), a.cols(),
                b.cols());
}

void MatMulTransAAccumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  TPR_CHECK(a.rows() == b.rows());
  TPR_CHECK(out.rows() == a.cols() && out.cols() == b.cols());
  kern::GemmTransAAcc(a.data(), b.data(), out.data(), a.rows(), a.cols(),
                      b.cols());
}

void MatMulTransBAccumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  TPR_CHECK(a.cols() == b.cols());
  TPR_CHECK(out.rows() == a.rows() && out.cols() == b.rows());
  kern::GemmTransBAcc(a.data(), b.data(), out.data(), a.rows(), a.cols(),
                      b.rows());
}

}  // namespace tpr::nn
