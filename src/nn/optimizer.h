#ifndef TPR_NN_OPTIMIZER_H_
#define TPR_NN_OPTIMIZER_H_

#include <vector>

#include "nn/autograd.h"
#include "util/status.h"

namespace tpr::nn {

/// Base optimizer interface over a fixed list of leaf parameters.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently stored on the
  /// parameters, then leaves the gradients untouched (call ZeroGrad()).
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad() {
    for (auto& p : params_) p.ZeroGrad();
  }

  /// Rescales gradients so their global L2 norm is at most max_norm.
  /// Returns the pre-clipping norm.
  float ClipGradNorm(float max_norm);

 protected:
  std::vector<Var> params_;
};

/// Plain stochastic gradient descent with optional weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, float lr, float weight_decay = 0.0f)
      : Optimizer(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float weight_decay_;
};

/// The mutable state of an Adam optimizer: step count and first/second
/// moment estimates, in parameter order. Hyper-parameters (lr, betas,
/// eps) are configuration, not state — a restored optimizer keeps the
/// values it was constructed with.
struct AdamState {
  int t = 0;
  std::vector<Tensor> m;
  std::vector<Tensor> v;
};

/// Adam (Kingma & Ba). The paper trains with lr = 3e-4.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

  /// Copies out the moment estimates and step count (checkpointing).
  AdamState ExportState() const;

  /// Restores previously exported state. The moment tensors must match
  /// this optimizer's parameter list in count and shape.
  Status ImportState(AdamState state);

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace tpr::nn

#endif  // TPR_NN_OPTIMIZER_H_
