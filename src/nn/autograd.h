#ifndef TPR_NN_AUTOGRAD_H_
#define TPR_NN_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace tpr::nn {

class Var;

namespace internal {

/// Node of the dynamic computation graph. Holds the forward value, the
/// accumulated gradient, and a closure that pushes this node's gradient to
/// its parents. Not used directly by clients; see Var.
struct VarImpl {
  Tensor value;
  Tensor grad;  // allocated lazily, same shape as value
  bool requires_grad = false;
  std::vector<std::shared_ptr<VarImpl>> parents;
  std::function<void(VarImpl*)> backward_fn;

  /// Allocates (zeroed) the gradient tensor if absent.
  void EnsureGrad() {
    if (grad.empty() && !value.empty()) {
      grad = Tensor(value.rows(), value.cols());
    }
  }
};

}  // namespace internal

/// While a NoGradGuard is alive, newly created ops do not record backward
/// closures, making pure inference cheaper. Guards nest.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;
};

/// True when gradient recording is currently enabled.
bool GradEnabled();

/// A differentiable variable: a shared handle to a graph node. Ops on Vars
/// build a define-by-run graph; calling Backward() on a scalar result
/// accumulates gradients into every reachable leaf with requires_grad.
class Var {
 public:
  Var() = default;

  /// Creates a leaf holding `value`. Set requires_grad for parameters.
  static Var Leaf(Tensor value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }
  const Tensor& value() const { return impl_->value; }
  Tensor& mutable_value() { return impl_->value; }
  const Tensor& grad() const { return impl_->grad; }
  bool requires_grad() const { return impl_ && impl_->requires_grad; }

  int rows() const { return impl_->value.rows(); }
  int cols() const { return impl_->value.cols(); }

  /// Convenience for 1x1 results.
  float scalar() const {
    TPR_CHECK(rows() == 1 && cols() == 1);
    return impl_->value.at(0, 0);
  }

  /// Zeroes this leaf's gradient (used by optimizers between steps).
  void ZeroGrad() {
    if (impl_ && !impl_->grad.empty()) impl_->grad.Fill(0.0f);
  }

  /// Runs reverse-mode accumulation from this node. The node must be a
  /// 1x1 scalar; its seed gradient is 1.
  void Backward() const;

  internal::VarImpl* impl() const { return impl_.get(); }
  const std::shared_ptr<internal::VarImpl>& impl_ptr() const { return impl_; }

 private:
  explicit Var(std::shared_ptr<internal::VarImpl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<internal::VarImpl> impl_;

  friend Var MakeOp(Tensor value, std::vector<Var> parents,
                    std::function<void(internal::VarImpl*)> backward_fn);
};

/// Creates an interior graph node. Exposed for clients that add custom
/// fused ops; library ops below cover the common cases.
Var MakeOp(Tensor value, std::vector<Var> parents,
           std::function<void(internal::VarImpl*)> backward_fn);

// ---------------------------------------------------------------------------
// Core ops. All return fresh graph nodes.
// ---------------------------------------------------------------------------

/// Matrix product: (m x k) * (k x n) -> (m x n).
Var MatMul(const Var& a, const Var& b);

/// Elementwise sum of two same-shaped tensors.
Var Add(const Var& a, const Var& b);

/// Adds a 1 x n row vector to every row of an m x n matrix.
Var AddRow(const Var& m, const Var& row);

/// Elementwise difference a - b.
Var Sub(const Var& a, const Var& b);

/// Elementwise (Hadamard) product.
Var Mul(const Var& a, const Var& b);

/// Elementwise quotient a / b. b must be nonzero.
Var Div(const Var& a, const Var& b);

/// Multiplies every element by constant s.
Var Scale(const Var& a, float s);

/// Adds constant s to every element.
Var AddScalar(const Var& a, float s);

/// Elementwise hyperbolic tangent.
Var Tanh(const Var& a);

/// Elementwise logistic sigmoid.
Var Sigmoid(const Var& a);

/// Elementwise rectified linear unit.
Var Relu(const Var& a);

/// Elementwise exponential.
Var Exp(const Var& a);

/// Elementwise natural log. Inputs must be positive.
Var Log(const Var& a);

/// Elementwise numerically-stable softplus log(1 + e^x).
Var Softplus(const Var& a);

/// Elementwise square root. Inputs must be non-negative.
Var Sqrt(const Var& a);

/// Sum of all elements -> 1x1.
Var Sum(const Var& a);

/// Mean of all elements -> 1x1.
Var Mean(const Var& a);

/// Mean over rows: (m x n) -> (1 x n). This is the paper's aggregate
/// function (Eq. 8) applied to the sequence of edge representations.
Var RowMean(const Var& a);

/// Max over rows: (m x n) -> (1 x n), used by max-pooling baselines.
Var RowMax(const Var& a);

/// Horizontal concatenation of row-compatible tensors.
Var ConcatCols(const std::vector<Var>& parts);

/// Vertical stacking of column-compatible tensors.
Var ConcatRows(const std::vector<Var>& parts);

/// Column slice [start, start + len).
Var SliceCols(const Var& a, int start, int len);

/// Selects row r of an m x n matrix as a 1 x n vector.
Var SliceRow(const Var& a, int r);

/// Row gather: selects rows of `table` by index (embedding lookup).
/// Backward scatter-adds into the table's gradient.
Var Gather(const Var& table, const std::vector<int>& indices);

/// Cosine similarity of two 1 x n row vectors -> 1x1. Fused op with an
/// epsilon-stabilised gradient (used by the WSC losses, Eq. 10-11).
Var CosineSim(const Var& a, const Var& b);

/// Dot product of two same-shaped tensors -> 1x1.
Var Dot(const Var& a, const Var& b);

/// Numerically stable log(sum(exp(a))) over all elements -> 1x1.
Var LogSumExp(const Var& a);

/// Row-wise softmax of an m x n matrix.
Var SoftmaxRows(const Var& a);

/// Mean squared error between prediction and constant target.
Var MseLoss(const Var& pred, const Tensor& target);

/// Binary cross-entropy with logits against a constant target in [0,1].
Var BceWithLogits(const Var& logit, float target);

}  // namespace tpr::nn

#endif  // TPR_NN_AUTOGRAD_H_
