#ifndef TPR_NN_AUTOGRAD_H_
#define TPR_NN_AUTOGRAD_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "kern/arena.h"
#include "nn/tensor.h"

namespace tpr::nn {

class Var;

namespace internal {

struct VarImpl;

/// Parent edges and backward closures of the tape live in the
/// thread-local arena, like tensor storage, so a steady-state training
/// step allocates nothing fresh.
using ParentVec =
    std::vector<std::shared_ptr<VarImpl>,
                kern::ArenaStlAllocator<std::shared_ptr<VarImpl>>>;
using BackwardFn = kern::ArenaFn<void(VarImpl*)>;

/// Node of the dynamic computation graph. Holds the forward value, the
/// accumulated gradient, and a closure that pushes this node's gradient to
/// its parents. Not used directly by clients; see Var.
struct VarImpl {
  Tensor value;
  Tensor grad;  // allocated lazily, same shape as value
  bool requires_grad = false;
  uint64_t visit_epoch = 0;  // Backward() traversal mark; see autograd.cc
  ParentVec parents;
  BackwardFn backward_fn;

  /// Allocates (zeroed) the gradient tensor if absent.
  void EnsureGrad() {
    if (grad.empty() && !value.empty()) {
      grad = Tensor(value.rows(), value.cols());
    }
  }
};

/// Allocates a graph node in the thread arena (via allocate_shared, so
/// the control block recycles too).
std::shared_ptr<VarImpl> NewVarImpl();

/// Wraps a node handle as a Var (private-constructor access point for
/// the MakeOp templates).
Var WrapVar(std::shared_ptr<VarImpl> impl);

}  // namespace internal

/// While a NoGradGuard is alive, newly created ops do not record backward
/// closures, making pure inference cheaper. Guards nest.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;
};

/// True when gradient recording is currently enabled.
bool GradEnabled();

/// A differentiable variable: a shared handle to a graph node. Ops on Vars
/// build a define-by-run graph; calling Backward() on a scalar result
/// accumulates gradients into every reachable leaf with requires_grad.
class Var {
 public:
  Var() = default;

  /// Creates a leaf holding `value`. Set requires_grad for parameters.
  static Var Leaf(Tensor value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }
  const Tensor& value() const { return impl_->value; }
  Tensor& mutable_value() { return impl_->value; }
  const Tensor& grad() const { return impl_->grad; }
  bool requires_grad() const { return impl_ && impl_->requires_grad; }

  int rows() const { return impl_->value.rows(); }
  int cols() const { return impl_->value.cols(); }

  /// Convenience for 1x1 results.
  float scalar() const {
    TPR_CHECK(rows() == 1 && cols() == 1);
    return impl_->value.at(0, 0);
  }

  /// Zeroes this leaf's gradient (used by optimizers between steps).
  void ZeroGrad() {
    if (impl_ && !impl_->grad.empty()) impl_->grad.Fill(0.0f);
  }

  /// Runs reverse-mode accumulation from this node. The node must be a
  /// 1x1 scalar; its seed gradient is 1.
  void Backward() const;

  internal::VarImpl* impl() const { return impl_.get(); }
  const std::shared_ptr<internal::VarImpl>& impl_ptr() const { return impl_; }

 private:
  explicit Var(std::shared_ptr<internal::VarImpl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<internal::VarImpl> impl_;

  friend Var internal::WrapVar(std::shared_ptr<internal::VarImpl> impl);
};

/// Creates an interior graph node from a parent range. The backward
/// closure is stored in the arena-backed BackwardFn (no std::function, no
/// per-op heap allocation). Exposed for clients that add custom fused
/// ops; library ops below cover the common cases.
template <typename ParentRange, typename F>
Var MakeOpRange(Tensor value, const ParentRange& parents, F&& backward_fn) {
  auto impl = internal::NewVarImpl();
  impl->value = std::move(value);
  bool needs_grad = false;
  if (GradEnabled()) {
    for (const Var& p : parents) needs_grad = needs_grad || p.requires_grad();
  }
  impl->requires_grad = needs_grad;
  if (needs_grad) {
    impl->parents.reserve(parents.size());
    for (const Var& p : parents) impl->parents.push_back(p.impl_ptr());
    impl->backward_fn = std::forward<F>(backward_fn);
  }
  return internal::WrapVar(std::move(impl));
}

template <typename F>
Var MakeOp(Tensor value, std::initializer_list<Var> parents, F&& backward_fn) {
  return MakeOpRange(std::move(value), parents, std::forward<F>(backward_fn));
}

template <typename F>
Var MakeOp(Tensor value, const std::vector<Var>& parents, F&& backward_fn) {
  return MakeOpRange(std::move(value), parents, std::forward<F>(backward_fn));
}

// ---------------------------------------------------------------------------
// Core ops. All return fresh graph nodes.
// ---------------------------------------------------------------------------

/// Matrix product: (m x k) * (k x n) -> (m x n).
Var MatMul(const Var& a, const Var& b);

/// Elementwise sum of two same-shaped tensors.
Var Add(const Var& a, const Var& b);

/// Adds a 1 x n row vector to every row of an m x n matrix.
Var AddRow(const Var& m, const Var& row);

/// Elementwise difference a - b.
Var Sub(const Var& a, const Var& b);

/// Elementwise (Hadamard) product.
Var Mul(const Var& a, const Var& b);

/// Elementwise quotient a / b. b must be nonzero.
Var Div(const Var& a, const Var& b);

/// Multiplies every element by constant s.
Var Scale(const Var& a, float s);

/// Adds constant s to every element.
Var AddScalar(const Var& a, float s);

/// Elementwise hyperbolic tangent.
Var Tanh(const Var& a);

/// Elementwise logistic sigmoid.
Var Sigmoid(const Var& a);

/// Elementwise rectified linear unit.
Var Relu(const Var& a);

/// Elementwise exponential.
Var Exp(const Var& a);

/// Elementwise natural log. Inputs must be positive.
Var Log(const Var& a);

/// Elementwise numerically-stable softplus log(1 + e^x).
Var Softplus(const Var& a);

/// Elementwise square root. Inputs must be non-negative.
Var Sqrt(const Var& a);

/// Sum of all elements -> 1x1.
Var Sum(const Var& a);

/// Mean of all elements -> 1x1.
Var Mean(const Var& a);

/// Mean over rows: (m x n) -> (1 x n). This is the paper's aggregate
/// function (Eq. 8) applied to the sequence of edge representations.
Var RowMean(const Var& a);

/// Max over rows: (m x n) -> (1 x n), used by max-pooling baselines.
Var RowMax(const Var& a);

/// Horizontal concatenation of row-compatible tensors.
Var ConcatCols(const std::vector<Var>& parts);
Var ConcatCols(std::initializer_list<Var> parts);

/// Vertical stacking of column-compatible tensors.
Var ConcatRows(const std::vector<Var>& parts);
Var ConcatRows(const kern::ArenaVector<Var>& parts);
Var ConcatRows(std::initializer_list<Var> parts);

/// Column slice [start, start + len).
Var SliceCols(const Var& a, int start, int len);

/// Selects row r of an m x n matrix as a 1 x n vector.
Var SliceRow(const Var& a, int r);

/// Contiguous row slice [start, start + len) of an m x n matrix as a
/// len x n matrix. The time-major batched recurrent step: timestep t of
/// a PaddedBatch is SliceRows(data, t * batch, batch).
Var SliceRows(const Var& a, int start, int len);

/// Row gather: selects rows of `table` by index (embedding lookup).
/// Backward scatter-adds into the table's gradient.
Var Gather(const Var& table, const std::vector<int>& indices);

/// Cosine similarity of two 1 x n row vectors -> 1x1. Fused op with an
/// epsilon-stabilised gradient (used by the WSC losses, Eq. 10-11).
Var CosineSim(const Var& a, const Var& b);

/// Dot product of two same-shaped tensors -> 1x1.
Var Dot(const Var& a, const Var& b);

/// Numerically stable log(sum(exp(a))) over all elements -> 1x1.
Var LogSumExp(const Var& a);

/// Row-wise softmax of an m x n matrix.
Var SoftmaxRows(const Var& a);

/// Masked row-wise softmax: each row is a softmax over its first `valid`
/// columns only; columns >= valid are exactly 0.0f in the output and
/// receive zero gradient. The element operations over the valid prefix
/// are identical to SoftmaxRows on a `valid`-wide row, so a masked row
/// is bitwise equal to the unmasked softmax of the unpadded row.
Var SoftmaxRowsMasked(const Var& a, int valid);

/// Product of w's first `valid` columns with v's first `valid` rows:
/// out (m x n) = w[:, :valid] (m x valid) * v[:valid, :] (valid x n).
/// The masked-attention weighted sum: padded key/value positions carry
/// zero softmax weight AND are excluded from the reduction, so the
/// valid rows of the result are bitwise equal to the unpadded MatMul.
Var MatMulValidCols(const Var& w, const Var& v, int valid);

/// Masked per-sequence mean over a time-major PaddedBatch payload
/// ((max_len * batch) x n, lengths.size() == batch): row b of the
/// (batch x n) result averages rows t*batch + b for t < lengths[b],
/// with the exact element-operation order of RowMean on the unpadded
/// sequence (bitwise-equal rows).
Var SequenceMeanBatch(const Var& data, const std::vector<int>& lengths);

/// Masked per-sequence column-wise max over a time-major PaddedBatch
/// payload; RowMax per sequence, restricted to valid steps.
Var SequenceMaxBatch(const Var& data, const std::vector<int>& lengths);

/// Mean squared error between prediction and constant target.
Var MseLoss(const Var& pred, const Tensor& target);

/// Binary cross-entropy with logits against a constant target in [0,1].
Var BceWithLogits(const Var& logit, float target);

// ---------------------------------------------------------------------------
// Fused ops. One graph node and one output tensor where the naive
// composition would record several of each; the recurrent cells stop
// materialising per-gate intermediates entirely.
// ---------------------------------------------------------------------------

/// Fused affine map: x (m x k) * w (k x n) + bias (1 x n, row-broadcast).
/// Equivalent to AddRow(MatMul(x, w), bias) with one node and no
/// intermediate.
Var Affine(const Var& x, const Var& w, const Var& bias);

/// Fused gate preactivation x1*w1 + x2*w2 + bias (row-broadcast): the
/// recurrent-cell input path, replacing two MatMuls, an Add, and an
/// AddRow.
Var AffineSum(const Var& x1, const Var& w1, const Var& x2, const Var& w2,
              const Var& bias);

/// Fused LSTM cell. gates: (m x 4h) preactivations in order [i f g o];
/// c_prev: (m x h). Returns (m x 2h) = [h_t | c_t], where
/// c_t = sigmoid(f)*c_prev + sigmoid(i)*tanh(g), h_t = sigmoid(o)*tanh(c_t).
Var LstmCellOp(const Var& gates, const Var& c_prev);

/// Fused GRU cell. gi, gh: (m x 3h) preactivations in order [r z n];
/// h_prev: (m x h). Returns h_t = (1-z)*n + z*h_prev with
/// r = sigmoid(gi_r + gh_r), z = sigmoid(gi_z + gh_z),
/// n = tanh(gi_n + r*gh_n).
Var GruCellOp(const Var& gi, const Var& gh, const Var& h_prev);

}  // namespace tpr::nn

#endif  // TPR_NN_AUTOGRAD_H_
