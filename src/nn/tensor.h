#ifndef TPR_NN_TENSOR_H_
#define TPR_NN_TENSOR_H_

#include <cstddef>
#include <vector>

#include "util/logging.h"

namespace tpr::nn {

/// A dense, row-major, 2-D float tensor (rows x cols). Rank-1 data is
/// represented as a 1 x n row vector. This is the storage type underlying
/// the autograd engine; it is a plain value type with copy semantics.
class Tensor {
 public:
  Tensor() : rows_(0), cols_(0) {}
  Tensor(int rows, int cols, float fill = 0.0f)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {
    TPR_CHECK(rows >= 0 && cols >= 0);
  }

  /// Builds a 1 x n row vector from the given values.
  static Tensor RowVector(std::vector<float> values);

  /// Builds a rows x cols tensor from row-major values.
  static Tensor FromValues(int rows, int cols, std::vector<float> values);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(int r, int c) {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float at(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Sets every element to the given value.
  void Fill(float v);

  /// Returns true iff both tensors have identical shape.
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Sum of all elements.
  float Sum() const;

  /// Euclidean norm of all elements.
  float Norm() const;

 private:
  int rows_;
  int cols_;
  std::vector<float> data_;
};

/// out += a * b (matrix product). Shapes: (m x k) * (k x n) -> (m x n).
void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor& out);

/// out += a^T * b. Shapes: (k x m)^T * (k x n) -> (m x n).
void MatMulTransAAccumulate(const Tensor& a, const Tensor& b, Tensor& out);

/// out += a * b^T. Shapes: (m x k) * (n x k)^T -> (m x n).
void MatMulTransBAccumulate(const Tensor& a, const Tensor& b, Tensor& out);

}  // namespace tpr::nn

#endif  // TPR_NN_TENSOR_H_
