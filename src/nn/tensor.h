#ifndef TPR_NN_TENSOR_H_
#define TPR_NN_TENSOR_H_

#include <cstddef>
#include <vector>

#include "kern/arena.h"
#include "util/logging.h"

namespace tpr::nn {

/// A dense, row-major, 2-D float tensor (rows x cols). Rank-1 data is
/// represented as a 1 x n row vector. This is the storage type underlying
/// the autograd engine; it is a plain value type with copy semantics.
/// Storage comes from the thread-local caching arena (kern/arena.h), so
/// steady-state training recycles buffers instead of touching the heap.
class Tensor {
 public:
  Tensor() : rows_(0), cols_(0) {}
  Tensor(int rows, int cols, float fill = 0.0f)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols) {
    TPR_CHECK(rows >= 0 && cols >= 0);
    data_.Fill(fill);
  }

  /// Builds a rows x cols tensor without initialising its elements.
  /// Only for callers that overwrite every element before reading.
  static Tensor Uninitialized(int rows, int cols);

  /// Builds a 1 x n row vector from the given values.
  static Tensor RowVector(const std::vector<float>& values);

  /// Builds a rows x cols tensor from row-major values.
  static Tensor FromValues(int rows, int cols,
                           const std::vector<float>& values);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(int r, int c) {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float at(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Sets every element to the given value.
  void Fill(float v);

  /// Returns true iff both tensors have identical shape.
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Sum of all elements.
  float Sum() const;

  /// Euclidean norm of all elements.
  float Norm() const;

 private:
  int rows_;
  int cols_;
  kern::FloatBuffer data_;
};

/// out += a * b (matrix product). Shapes: (m x k) * (k x n) -> (m x n).
/// Dispatches to the active kern GEMM kernel (see kern/kern.h).
void MatMulAccumulate(const Tensor& a, const Tensor& b, Tensor& out);

/// out += a^T * b. Shapes: (k x m)^T * (k x n) -> (m x n).
void MatMulTransAAccumulate(const Tensor& a, const Tensor& b, Tensor& out);

/// out += a * b^T. Shapes: (m x k) * (n x k)^T -> (m x n).
void MatMulTransBAccumulate(const Tensor& a, const Tensor& b, Tensor& out);

}  // namespace tpr::nn

#endif  // TPR_NN_TENSOR_H_
