#include "nn/transformer.h"

#include <cmath>
#include <cstring>
#include <vector>

namespace tpr::nn {

SelfAttention::SelfAttention(int input_dim, int attention_dim, Rng& rng)
    : input_dim_(input_dim),
      attention_dim_(attention_dim),
      query_(input_dim, attention_dim, rng),
      key_(input_dim, attention_dim, rng),
      value_(input_dim, attention_dim, rng) {}

namespace {

// Fused scores = q k^T / sqrt(d) op (there is no standalone transpose
// in the autograd vocabulary; the gradient is pushed manually). Shared
// by the single-sequence and padded-batch attention paths.
Var ScaledDotScores(const Var& q, const Var& k, float scale) {
  const Tensor& qv = q.value();
  const Tensor& kv = k.value();
  const int t = qv.rows();
  Tensor scores(t, t);
  MatMulTransBAccumulate(qv, kv, scores);
  for (size_t i = 0; i < scores.size(); ++i) scores[i] *= scale;
  auto q_impl = q.impl_ptr();
  auto k_impl = k.impl_ptr();
  return MakeOp(
      std::move(scores), {q, k},
      [q_impl, k_impl, scale](internal::VarImpl* self) {
        // dQ = dS * K * scale ; dK = dS^T * Q * scale
        if (q_impl->requires_grad) {
          q_impl->EnsureGrad();
          Tensor tmp(q_impl->value.rows(), q_impl->value.cols());
          MatMulAccumulate(self->grad, k_impl->value, tmp);
          float* g = q_impl->grad.data();
          for (size_t i = 0; i < tmp.size(); ++i) g[i] += tmp[i] * scale;
        }
        if (k_impl->requires_grad) {
          k_impl->EnsureGrad();
          Tensor tmp(k_impl->value.rows(), k_impl->value.cols());
          MatMulTransAAccumulate(self->grad, q_impl->value, tmp);
          float* g = k_impl->grad.data();
          for (size_t i = 0; i < tmp.size(); ++i) g[i] += tmp[i] * scale;
        }
      });
}

}  // namespace

Var SelfAttention::Forward(const Var& sequence) const {
  TPR_CHECK(sequence.cols() == input_dim_);
  Var q = query_.Forward(sequence);  // T x d
  Var k = key_.Forward(sequence);
  Var v = value_.Forward(sequence);
  const float scale = 1.0f / std::sqrt(static_cast<float>(attention_dim_));
  Var scores_var = ScaledDotScores(q, k, scale);
  Var weights = SoftmaxRows(scores_var);  // T x T
  return MatMul(weights, v);              // T x d
}

Var SelfAttention::ForwardBatch(const PaddedBatch& in) const {
  TPR_CHECK(in.data.cols() == input_dim_);
  TPR_CHECK(in.batch > 0 && in.data.rows() == in.rows());
  const int B = in.batch;
  const int Tm = in.max_len;
  // One projection GEMM over all B sequences at once.
  Var q = query_.Forward(in.data);  // (Tm*B) x d, time-major
  Var k = key_.Forward(in.data);
  Var v = value_.Forward(in.data);
  const float scale = 1.0f / std::sqrt(static_cast<float>(attention_dim_));
  // Attention itself is per sequence: gather sequence b's padded column
  // into sequence-major (Tm x d) views, score, softmax over the valid
  // prefix, and reduce over the valid keys only.
  std::vector<Var> per_seq;
  per_seq.reserve(B);
  std::vector<int> col(Tm);
  for (int b = 0; b < B; ++b) {
    for (int t = 0; t < Tm; ++t) col[t] = t * B + b;
    Var qb = Gather(q, col);
    Var kb = Gather(k, col);
    Var vb = Gather(v, col);
    Var scores_var = ScaledDotScores(qb, kb, scale);  // Tm x Tm
    Var weights = SoftmaxRowsMasked(scores_var, in.lengths[b]);
    per_seq.push_back(MatMulValidCols(weights, vb, in.lengths[b]));
  }
  // ConcatRows is sequence-major (row b*Tm + t); permute back to the
  // batch's time-major layout.
  Var cat = ConcatRows(per_seq);
  std::vector<int> perm(static_cast<size_t>(B) * Tm);
  for (int t = 0; t < Tm; ++t) {
    for (int b = 0; b < B; ++b) perm[static_cast<size_t>(t) * B + b] = b * Tm + t;
  }
  return Gather(cat, perm);
}

std::vector<Var> SelfAttention::Parameters() const {
  std::vector<Var> params = query_.Parameters();
  for (const auto* layer : {&key_, &value_}) {
    auto p = layer->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

TransformerBlock::TransformerBlock(int dim, int ff_dim, Rng& rng)
    : attention_(dim, dim, rng),
      ff1_(dim, ff_dim, rng),
      ff2_(ff_dim, dim, rng) {}

Var TransformerBlock::Forward(const Var& sequence) const {
  Var attended = Add(sequence, attention_.Forward(sequence));
  Var ff = ff2_.Forward(Relu(ff1_.Forward(attended)));
  return Tanh(Add(attended, ff));  // tanh bounds activations sans layernorm
}

PaddedBatch TransformerBlock::ForwardBatch(const PaddedBatch& in) const {
  Var attended = Add(in.data, attention_.ForwardBatch(in));
  // The residual FF is position-wise, so running it over padded rows is
  // harmless (their outputs are tanh-bounded and never read).
  Var ff = ff2_.Forward(Relu(ff1_.Forward(attended)));
  PaddedBatch out;
  out.data = Tanh(Add(attended, ff));
  out.lengths = in.lengths;
  out.batch = in.batch;
  out.max_len = in.max_len;
  return out;
}

std::vector<Var> TransformerBlock::Parameters() const {
  std::vector<Var> params = attention_.Parameters();
  for (const auto* layer : {&ff1_, &ff2_}) {
    auto p = layer->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

TransformerEncoder::TransformerEncoder(int input_dim, int hidden_dim,
                                       int num_layers, Rng& rng)
    : hidden_dim_(hidden_dim), input_proj_(input_dim, hidden_dim, rng) {
  TPR_CHECK(num_layers >= 1);
  blocks_.reserve(num_layers);
  for (int l = 0; l < num_layers; ++l) {
    blocks_.emplace_back(hidden_dim, 2 * hidden_dim, rng);
  }
}

Tensor TransformerEncoder::PositionEncoding(int steps) const {
  Tensor pe(steps, hidden_dim_);
  for (int pos = 0; pos < steps; ++pos) {
    for (int i = 0; i < hidden_dim_; ++i) {
      const double angle =
          pos / std::pow(10000.0, 2.0 * (i / 2) / hidden_dim_);
      pe.at(pos, i) = static_cast<float>(i % 2 == 0 ? std::sin(angle)
                                                    : std::cos(angle));
    }
  }
  return pe;
}

Var TransformerEncoder::Forward(const Var& sequence) const {
  Var x = input_proj_.Forward(sequence);
  x = Add(x, Var::Leaf(PositionEncoding(x.rows())));
  for (const auto& block : blocks_) x = block.Forward(x);
  return x;
}

PaddedBatch TransformerEncoder::ForwardBatch(const PaddedBatch& in) const {
  TPR_CHECK(in.batch > 0 && in.data.rows() == in.rows());
  Var x = input_proj_.Forward(in.data);
  // Broadcast PE(t) to every sequence's row t*B + b: the encoding
  // depends only on (position, channel), so the broadcast rows are the
  // exact bytes the single-sequence path adds.
  const Tensor pe = PositionEncoding(in.max_len);
  Tensor peb = Tensor::Uninitialized(in.rows(), hidden_dim_);
  for (int t = 0; t < in.max_len; ++t) {
    const float* src = pe.data() + static_cast<size_t>(t) * hidden_dim_;
    for (int b = 0; b < in.batch; ++b) {
      float* dst = peb.data() +
                   (static_cast<size_t>(t) * in.batch + b) * hidden_dim_;
      std::memcpy(dst, src,
                  static_cast<size_t>(hidden_dim_) * sizeof(float));
    }
  }
  PaddedBatch cur;
  cur.data = Add(x, Var::Leaf(std::move(peb)));
  cur.lengths = in.lengths;
  cur.batch = in.batch;
  cur.max_len = in.max_len;
  for (const auto& block : blocks_) cur = block.ForwardBatch(cur);
  return cur;
}

std::vector<Var> TransformerEncoder::Parameters() const {
  std::vector<Var> params = input_proj_.Parameters();
  for (const auto& block : blocks_) {
    auto p = block.Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

}  // namespace tpr::nn
