#include "nn/transformer.h"

#include <cmath>

namespace tpr::nn {

SelfAttention::SelfAttention(int input_dim, int attention_dim, Rng& rng)
    : input_dim_(input_dim),
      attention_dim_(attention_dim),
      query_(input_dim, attention_dim, rng),
      key_(input_dim, attention_dim, rng),
      value_(input_dim, attention_dim, rng) {}

Var SelfAttention::Forward(const Var& sequence) const {
  TPR_CHECK(sequence.cols() == input_dim_);
  Var q = query_.Forward(sequence);  // T x d
  Var k = key_.Forward(sequence);
  Var v = value_.Forward(sequence);
  const float scale = 1.0f / std::sqrt(static_cast<float>(attention_dim_));
  // Fused scores = q k^T / sqrt(d) op (there is no standalone transpose
  // in the autograd vocabulary; the gradient is pushed manually).
  const Tensor& qv = q.value();
  const Tensor& kv = k.value();
  const int t = qv.rows();
  Tensor scores(t, t);
  MatMulTransBAccumulate(qv, kv, scores);
  for (size_t i = 0; i < scores.size(); ++i) scores[i] *= scale;
  auto q_impl = q.impl_ptr();
  auto k_impl = k.impl_ptr();
  Var scores_var = MakeOp(
      std::move(scores), {q, k},
      [q_impl, k_impl, scale](internal::VarImpl* self) {
        // dQ = dS * K * scale ; dK = dS^T * Q * scale
        if (q_impl->requires_grad) {
          q_impl->EnsureGrad();
          Tensor tmp(q_impl->value.rows(), q_impl->value.cols());
          MatMulAccumulate(self->grad, k_impl->value, tmp);
          float* g = q_impl->grad.data();
          for (size_t i = 0; i < tmp.size(); ++i) g[i] += tmp[i] * scale;
        }
        if (k_impl->requires_grad) {
          k_impl->EnsureGrad();
          Tensor tmp(k_impl->value.rows(), k_impl->value.cols());
          MatMulTransAAccumulate(self->grad, q_impl->value, tmp);
          float* g = k_impl->grad.data();
          for (size_t i = 0; i < tmp.size(); ++i) g[i] += tmp[i] * scale;
        }
      });
  Var weights = SoftmaxRows(scores_var);  // T x T
  return MatMul(weights, v);              // T x d
}

std::vector<Var> SelfAttention::Parameters() const {
  std::vector<Var> params = query_.Parameters();
  for (const auto* layer : {&key_, &value_}) {
    auto p = layer->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

TransformerBlock::TransformerBlock(int dim, int ff_dim, Rng& rng)
    : attention_(dim, dim, rng),
      ff1_(dim, ff_dim, rng),
      ff2_(ff_dim, dim, rng) {}

Var TransformerBlock::Forward(const Var& sequence) const {
  Var attended = Add(sequence, attention_.Forward(sequence));
  Var ff = ff2_.Forward(Relu(ff1_.Forward(attended)));
  return Tanh(Add(attended, ff));  // tanh bounds activations sans layernorm
}

std::vector<Var> TransformerBlock::Parameters() const {
  std::vector<Var> params = attention_.Parameters();
  for (const auto* layer : {&ff1_, &ff2_}) {
    auto p = layer->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

TransformerEncoder::TransformerEncoder(int input_dim, int hidden_dim,
                                       int num_layers, Rng& rng)
    : hidden_dim_(hidden_dim), input_proj_(input_dim, hidden_dim, rng) {
  TPR_CHECK(num_layers >= 1);
  blocks_.reserve(num_layers);
  for (int l = 0; l < num_layers; ++l) {
    blocks_.emplace_back(hidden_dim, 2 * hidden_dim, rng);
  }
}

Tensor TransformerEncoder::PositionEncoding(int steps) const {
  Tensor pe(steps, hidden_dim_);
  for (int pos = 0; pos < steps; ++pos) {
    for (int i = 0; i < hidden_dim_; ++i) {
      const double angle =
          pos / std::pow(10000.0, 2.0 * (i / 2) / hidden_dim_);
      pe.at(pos, i) = static_cast<float>(i % 2 == 0 ? std::sin(angle)
                                                    : std::cos(angle));
    }
  }
  return pe;
}

Var TransformerEncoder::Forward(const Var& sequence) const {
  Var x = input_proj_.Forward(sequence);
  x = Add(x, Var::Leaf(PositionEncoding(x.rows())));
  for (const auto& block : blocks_) x = block.Forward(x);
  return x;
}

std::vector<Var> TransformerEncoder::Parameters() const {
  std::vector<Var> params = input_proj_.Parameters();
  for (const auto& block : blocks_) {
    auto p = block.Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

}  // namespace tpr::nn
