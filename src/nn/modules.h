#ifndef TPR_NN_MODULES_H_
#define TPR_NN_MODULES_H_

#include <string>
#include <vector>

#include "nn/autograd.h"
#include "nn/padded_batch.h"
#include "util/rng.h"
#include "util/status.h"

namespace tpr::nn {

/// Base class for parameterised layers. Parameters are leaf Vars with
/// requires_grad=true; optimizers operate on the flat parameter list.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters of this module (recursively).
  virtual std::vector<Var> Parameters() const = 0;

  /// Total number of scalar parameters.
  size_t NumParams() const {
    size_t n = 0;
    for (const auto& p : Parameters()) n += p.value().size();
    return n;
  }

  /// Copies parameter values (not gradients) from another module with an
  /// identical parameter layout. Used to transplant a pre-trained encoder
  /// into a supervised model (paper Fig. 7).
  Status CopyParamsFrom(const Module& other);
};

/// Fully connected layer: y = x W + b, with optional bias.
class Linear : public Module {
 public:
  /// Initialises weights Xavier-uniform with the given RNG.
  Linear(int in_features, int out_features, Rng& rng, bool bias = true);

  /// Forward: (m x in) -> (m x out).
  Var Forward(const Var& x) const;

  std::vector<Var> Parameters() const override;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  Var weight_;  // in x out
  Var bias_;    // 1 x out (undefined when bias=false)
};

/// Lookup table mapping integer ids to dense rows. Implements the paper's
/// one-hot-times-matrix embeddings (Eq. 3) without materialising one-hots.
class Embedding : public Module {
 public:
  Embedding(int num_embeddings, int dim, Rng& rng);

  /// Looks up a batch of ids -> (|ids| x dim).
  Var Forward(const std::vector<int>& ids) const;

  /// Direct access to the table (e.g., to freeze node2vec vectors).
  Var& table() { return table_; }
  const Var& table() const { return table_; }

  int dim() const { return dim_; }
  int num_embeddings() const { return num_embeddings_; }

  std::vector<Var> Parameters() const override;

 private:
  int num_embeddings_;
  int dim_;
  Var table_;  // num_embeddings x dim
};

/// Single LSTM layer processing a sequence step by step.
class LstmLayer : public Module {
 public:
  LstmLayer(int input_size, int hidden_size, Rng& rng);

  /// Processes a (T x input) sequence, returns the (T x hidden) outputs.
  Var Forward(const Var& sequence) const;

  /// Batched step-wise forward over a padded time-major batch: one
  /// (batch x input) gate GEMM per step instead of batch small ones.
  /// Valid output rows are bitwise equal to per-sequence Forward rows
  /// (see padded_batch.h); the recurrence is deliberately unmasked.
  PaddedBatch ForwardBatch(const PaddedBatch& in) const;

  std::vector<Var> Parameters() const override;

  int hidden_size() const { return hidden_size_; }

 private:
  int input_size_;
  int hidden_size_;
  Var w_ih_;  // input x 4*hidden, gate order [i, f, g, o]
  Var w_hh_;  // hidden x 4*hidden
  Var bias_;  // 1 x 4*hidden
};

/// Multi-layer LSTM (paper: 2 layers, Eq. 7).
class Lstm : public Module {
 public:
  Lstm(int input_size, int hidden_size, int num_layers, Rng& rng);

  /// (T x input) -> (T x hidden) from the top layer.
  Var Forward(const Var& sequence) const;

  /// Padded-batch variant of Forward (see LstmLayer::ForwardBatch).
  PaddedBatch ForwardBatch(const PaddedBatch& in) const;

  std::vector<Var> Parameters() const override;

  int hidden_size() const { return hidden_size_; }

 private:
  int hidden_size_;
  std::vector<LstmLayer> layers_;
};

/// Single GRU layer (used by the PathRank baseline).
class GruLayer : public Module {
 public:
  GruLayer(int input_size, int hidden_size, Rng& rng);

  /// Processes a (T x input) sequence, returns the (T x hidden) outputs.
  Var Forward(const Var& sequence) const;

  /// Padded-batch variant of Forward (see LstmLayer::ForwardBatch).
  PaddedBatch ForwardBatch(const PaddedBatch& in) const;

  std::vector<Var> Parameters() const override;

 private:
  int input_size_;
  int hidden_size_;
  Var w_ih_;  // input x 3*hidden, gate order [r, z, n]
  Var w_hh_;  // hidden x 3*hidden
  Var b_ih_;  // 1 x 3*hidden
  Var b_hh_;  // 1 x 3*hidden
};

/// A small multi-layer perceptron head: Linear -> ReLU -> ... -> Linear.
class Mlp : public Module {
 public:
  /// dims = {in, h1, ..., out}; at least {in, out}.
  Mlp(const std::vector<int>& dims, Rng& rng);

  Var Forward(const Var& x) const;

  std::vector<Var> Parameters() const override;

 private:
  std::vector<Linear> layers_;
};

/// Xavier-uniform initialised leaf parameter of the given shape.
Var XavierParam(int rows, int cols, Rng& rng);

/// Uniform(-bound, bound) initialised leaf parameter.
Var UniformParam(int rows, int cols, float bound, Rng& rng);

}  // namespace tpr::nn

#endif  // TPR_NN_MODULES_H_
