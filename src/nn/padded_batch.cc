#include "nn/padded_batch.h"

#include <algorithm>
#include <cstring>

namespace tpr::nn {

PaddedBatch PackSequences(const std::vector<Tensor>& sequences) {
  TPR_CHECK(!sequences.empty());
  const int batch = static_cast<int>(sequences.size());
  const int dim = sequences[0].cols();
  int max_len = 0;
  std::vector<int> lengths(sequences.size());
  for (int b = 0; b < batch; ++b) {
    TPR_CHECK(sequences[b].rows() >= 1 && sequences[b].cols() == dim);
    lengths[b] = sequences[b].rows();
    max_len = std::max(max_len, lengths[b]);
  }
  // Zero-initialised: padding rows stay zero.
  Tensor data(max_len * batch, dim);
  for (int b = 0; b < batch; ++b) {
    for (int t = 0; t < lengths[b]; ++t) {
      const float* src =
          sequences[b].data() + static_cast<size_t>(t) * dim;
      float* dst = data.data() +
                   (static_cast<size_t>(t) * batch + b) * dim;
      std::memcpy(dst, src, static_cast<size_t>(dim) * sizeof(float));
    }
  }
  PaddedBatch out;
  out.data = Var::Leaf(std::move(data));
  out.lengths = std::move(lengths);
  out.batch = batch;
  out.max_len = max_len;
  return out;
}

}  // namespace tpr::nn
