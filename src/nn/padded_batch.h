#ifndef TPR_NN_PADDED_BATCH_H_
#define TPR_NN_PADDED_BATCH_H_

// Variable-length sequence batches for the recurrent and attention
// modules.
//
// A PaddedBatch packs B sequences of lengths len_0..len_{B-1} into one
// dense tensor in TIME-MAJOR layout: row t*batch + b holds timestep t of
// sequence b, for t in [0, max_len). Timestep t of the whole batch is
// therefore the contiguous row slice [t*batch, (t+1)*batch), which is
// exactly what a step-wise recurrent cell wants: one (batch x input)
// GEMM per gate instead of batch small ones.
//
// Padding rows (t >= lengths[b]) carry zeros on entry. The recurrent
// forwards do NOT mask the recurrence: the output at a valid step t <
// lengths[b] depends only on states from earlier valid steps of the same
// sequence, so padded-step pollution only ever reaches padded-step
// outputs — which the masked aggregations (SequenceMeanBatch,
// SequenceMaxBatch, last-state gather) and the masked attention softmax
// never read. Padded states stay finite because the cells are
// sigmoid/tanh-bounded and padded inputs are zeros.
//
// Bitwise contract: for every op in this pipeline, output row t*batch+b
// with t < lengths[b] is bitwise identical to row t of the same module's
// single-sequence Forward on sequence b alone, for any kernel whose GEMM
// is row-independent (the scalar kernel always; see DESIGN.md §13).

#include <vector>

#include "nn/autograd.h"

namespace tpr::nn {

struct PaddedBatch {
  Var data;                  // (max_len * batch) x dim, row t*batch + b
  std::vector<int> lengths;  // per-sequence true lengths, each in [1, max_len]
  int batch = 0;
  int max_len = 0;

  int rows() const { return batch * max_len; }
  int row(int t, int b) const { return t * batch + b; }
};

/// Packs B single sequences (each rows x dim, rows >= 1) into a padded
/// time-major batch. Padding rows are zero. This is the leaf-building
/// path used by tests and by callers that already hold per-sequence
/// tensors; the encoder assembles its batch directly from feature ids.
PaddedBatch PackSequences(const std::vector<Tensor>& sequences);

}  // namespace tpr::nn

#endif  // TPR_NN_PADDED_BATCH_H_
