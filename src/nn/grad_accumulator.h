#ifndef TPR_NN_GRAD_ACCUMULATOR_H_
#define TPR_NN_GRAD_ACCUMULATOR_H_

#include <vector>

#include "nn/autograd.h"

namespace tpr::nn {

/// Deterministic gradient reduction for data-parallel training.
///
/// Each minibatch is split into a fixed number of shards — a pure
/// function of the batch, never of the thread count. Every worker runs
/// forward + Backward() on a parameter *replica* (leaf Vars with the same
/// layout as the master list), then hands its gradients to the slot of
/// the shard it processed. Reduce() sums the slots into the master
/// parameters' gradients in increasing shard order, so the reduced
/// gradient is bitwise identical no matter how many threads ran the
/// shards — including a single thread.
class GradAccumulator {
 public:
  explicit GradAccumulator(std::vector<Var> master_params);

  const std::vector<Var>& params() const { return master_; }

  /// Prepares `num_shards` empty gradient slots for the next reduction.
  void BeginBatch(int num_shards);

  /// Moves the gradients accumulated on `replica_params` (same layout as
  /// the master list) into slot `shard`, leaving the replica's gradients
  /// cleared for its next shard. Safe to call concurrently for distinct
  /// shard indices.
  void CaptureShard(int shard, const std::vector<Var>& replica_params);

  /// Number of slots filled since BeginBatch. Call only after all
  /// CaptureShard calls of the batch have completed.
  int captured() const;

  /// master.grad += scale * sum over filled slots, iterating slots in
  /// increasing index order. Does not zero the master gradients first;
  /// pair with Optimizer::ZeroGrad().
  void Reduce(float scale);

 private:
  std::vector<Var> master_;
  std::vector<std::vector<Tensor>> shard_grads_;
  std::vector<char> filled_;
};

/// Copies parameter values between two same-layout parameter lists (used
/// to refresh per-worker replicas after each optimizer step).
void CopyParamValues(const std::vector<Var>& from, std::vector<Var>& to);

}  // namespace tpr::nn

#endif  // TPR_NN_GRAD_ACCUMULATOR_H_
