#include "nn/grad_accumulator.h"

namespace tpr::nn {

GradAccumulator::GradAccumulator(std::vector<Var> master_params)
    : master_(std::move(master_params)) {}

void GradAccumulator::BeginBatch(int num_shards) {
  TPR_CHECK(num_shards >= 1);
  shard_grads_.assign(num_shards, {});
  filled_.assign(num_shards, 0);
}

void GradAccumulator::CaptureShard(int shard,
                                   const std::vector<Var>& replica_params) {
  TPR_CHECK(shard >= 0 && shard < static_cast<int>(shard_grads_.size()));
  TPR_CHECK(replica_params.size() == master_.size());
  auto& slot = shard_grads_[shard];
  slot.resize(replica_params.size());
  for (size_t p = 0; p < replica_params.size(); ++p) {
    internal::VarImpl* impl = replica_params[p].impl();
    // Moving leaves the replica's grad empty == zeroed for the next use.
    slot[p] = std::move(impl->grad);
    impl->grad = Tensor();
  }
  filled_[shard] = 1;
}

int GradAccumulator::captured() const {
  int n = 0;
  for (char f : filled_) n += f;
  return n;
}

void GradAccumulator::Reduce(float scale) {
  for (size_t s = 0; s < shard_grads_.size(); ++s) {
    if (!filled_[s]) continue;
    const auto& slot = shard_grads_[s];
    for (size_t p = 0; p < master_.size(); ++p) {
      const Tensor& g = slot[p];
      if (g.empty()) continue;  // parameter unused by this shard's graph
      internal::VarImpl* impl = master_[p].impl();
      impl->EnsureGrad();
      TPR_CHECK(impl->grad.SameShape(g));
      float* dst = impl->grad.data();
      const float* src = g.data();
      for (size_t i = 0; i < g.size(); ++i) dst[i] += scale * src[i];
    }
  }
}

void CopyParamValues(const std::vector<Var>& from, std::vector<Var>& to) {
  TPR_CHECK(from.size() == to.size());
  for (size_t p = 0; p < from.size(); ++p) {
    const Tensor& src = from[p].value();
    Tensor& dst = to[p].mutable_value();
    TPR_CHECK(dst.SameShape(src));
    std::copy(src.data(), src.data() + src.size(), dst.data());
  }
}

}  // namespace tpr::nn
