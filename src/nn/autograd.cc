#include "nn/autograd.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "obs/metrics.h"

namespace tpr::nn {

namespace {

// Thread-local so that concurrent workers can build autograd graphs (or
// run inference under NoGradGuard) without observing each other's mode.
thread_local int g_no_grad_depth = 0;

constexpr float kCosineEps = 1e-8f;

}  // namespace

NoGradGuard::NoGradGuard() { ++g_no_grad_depth; }
NoGradGuard::~NoGradGuard() { --g_no_grad_depth; }

bool GradEnabled() { return g_no_grad_depth == 0; }

Var Var::Leaf(Tensor value, bool requires_grad) {
  auto impl = std::make_shared<internal::VarImpl>();
  impl->value = std::move(value);
  impl->requires_grad = requires_grad;
  return Var(std::move(impl));
}

Var MakeOp(Tensor value, std::vector<Var> parents,
           std::function<void(internal::VarImpl*)> backward_fn) {
  auto impl = std::make_shared<internal::VarImpl>();
  impl->value = std::move(value);
  bool needs_grad = false;
  if (GradEnabled()) {
    for (const auto& p : parents) needs_grad = needs_grad || p.requires_grad();
  }
  impl->requires_grad = needs_grad;
  if (needs_grad) {
    impl->parents.reserve(parents.size());
    for (auto& p : parents) impl->parents.push_back(p.impl_ptr());
    impl->backward_fn = std::move(backward_fn);
  }
  return Var(std::move(impl));
}

void Var::Backward() const {
  TPR_CHECK(defined());
  TPR_CHECK(rows() == 1 && cols() == 1) << "Backward() requires a scalar";
  if (!impl_->requires_grad) return;

  // Iterative post-order topological sort over the parent DAG.
  std::vector<internal::VarImpl*> order;
  std::unordered_set<internal::VarImpl*> visited;
  std::vector<std::pair<internal::VarImpl*, size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->parents.size()) {
      internal::VarImpl* parent = node->parents[idx].get();
      ++idx;
      if (parent->requires_grad && !visited.count(parent)) {
        visited.insert(parent);
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  impl_->EnsureGrad();
  impl_->grad.at(0, 0) = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::VarImpl* node = *it;
    if (node->backward_fn && !node->grad.empty()) node->backward_fn(node);
  }
}

namespace {

// Accumulates `delta` into the gradient of `p` if it participates in
// differentiation.
void AccumulateGrad(internal::VarImpl* p, const Tensor& delta) {
  if (!p->requires_grad) return;
  p->EnsureGrad();
  TPR_CHECK(p->grad.SameShape(delta));
  float* g = p->grad.data();
  const float* d = delta.data();
  for (size_t i = 0; i < delta.size(); ++i) g[i] += d[i];
}

// Elementwise unary op helper: forward maps x->f(x); backward multiplies
// incoming gradient by dfd(value_in, value_out).
template <typename Fwd, typename Bwd>
Var UnaryOp(const Var& a, Fwd fwd, Bwd dfd) {
  Tensor out(a.rows(), a.cols());
  const Tensor& in = a.value();
  for (size_t i = 0; i < in.size(); ++i) out[i] = fwd(in[i]);
  Tensor out_copy = out;  // captured for backward
  auto a_impl = a.impl_ptr();
  return MakeOp(std::move(out), {a},
                [a_impl, out_copy, dfd](internal::VarImpl* self) {
                  internal::VarImpl* p = a_impl.get();
                  if (!p->requires_grad) return;
                  p->EnsureGrad();
                  const Tensor& in = p->value;
                  float* g = p->grad.data();
                  const float* go = self->grad.data();
                  for (size_t i = 0; i < in.size(); ++i) {
                    g[i] += go[i] * dfd(in[i], out_copy[i]);
                  }
                });
}

}  // namespace

Var MatMul(const Var& a, const Var& b) {
  static obs::Counter& ops = obs::GetCounter("nn.matmul_ops");
  static obs::Counter& flops = obs::GetCounter("nn.matmul_flops");
  ops.Add();
  flops.Add(2ull * a.rows() * a.cols() * b.cols());
  Tensor out(a.rows(), b.cols());
  MatMulAccumulate(a.value(), b.value(), out);
  auto a_impl = a.impl_ptr();
  auto b_impl = b.impl_ptr();
  return MakeOp(std::move(out), {a, b},
                [a_impl, b_impl](internal::VarImpl* self) {
                  // dA = dOut * B^T ; dB = A^T * dOut
                  if (a_impl->requires_grad) {
                    a_impl->EnsureGrad();
                    MatMulTransBAccumulate(self->grad, b_impl->value,
                                           a_impl->grad);
                  }
                  if (b_impl->requires_grad) {
                    b_impl->EnsureGrad();
                    MatMulTransAAccumulate(a_impl->value, self->grad,
                                           b_impl->grad);
                  }
                });
}

Var Add(const Var& a, const Var& b) {
  TPR_CHECK(a.value().SameShape(b.value()));
  Tensor out = a.value();
  const float* bd = b.value().data();
  for (size_t i = 0; i < out.size(); ++i) out[i] += bd[i];
  auto a_impl = a.impl_ptr();
  auto b_impl = b.impl_ptr();
  return MakeOp(std::move(out), {a, b},
                [a_impl, b_impl](internal::VarImpl* self) {
                  AccumulateGrad(a_impl.get(), self->grad);
                  AccumulateGrad(b_impl.get(), self->grad);
                });
}

Var AddRow(const Var& m, const Var& row) {
  TPR_CHECK(row.rows() == 1 && row.cols() == m.cols());
  Tensor out = m.value();
  const float* r = row.value().data();
  for (int i = 0; i < out.rows(); ++i) {
    float* o = out.data() + static_cast<size_t>(i) * out.cols();
    for (int j = 0; j < out.cols(); ++j) o[j] += r[j];
  }
  auto m_impl = m.impl_ptr();
  auto r_impl = row.impl_ptr();
  return MakeOp(std::move(out), {m, row},
                [m_impl, r_impl](internal::VarImpl* self) {
                  AccumulateGrad(m_impl.get(), self->grad);
                  if (r_impl->requires_grad) {
                    r_impl->EnsureGrad();
                    const Tensor& g = self->grad;
                    float* rg = r_impl->grad.data();
                    for (int i = 0; i < g.rows(); ++i) {
                      const float* gr =
                          g.data() + static_cast<size_t>(i) * g.cols();
                      for (int j = 0; j < g.cols(); ++j) rg[j] += gr[j];
                    }
                  }
                });
}

Var Sub(const Var& a, const Var& b) {
  TPR_CHECK(a.value().SameShape(b.value()));
  Tensor out = a.value();
  const float* bd = b.value().data();
  for (size_t i = 0; i < out.size(); ++i) out[i] -= bd[i];
  auto a_impl = a.impl_ptr();
  auto b_impl = b.impl_ptr();
  return MakeOp(std::move(out), {a, b},
                [a_impl, b_impl](internal::VarImpl* self) {
                  AccumulateGrad(a_impl.get(), self->grad);
                  if (b_impl->requires_grad) {
                    b_impl->EnsureGrad();
                    const float* go = self->grad.data();
                    float* g = b_impl->grad.data();
                    for (size_t i = 0; i < self->grad.size(); ++i)
                      g[i] -= go[i];
                  }
                });
}

Var Mul(const Var& a, const Var& b) {
  TPR_CHECK(a.value().SameShape(b.value()));
  Tensor out = a.value();
  const float* bd = b.value().data();
  for (size_t i = 0; i < out.size(); ++i) out[i] *= bd[i];
  auto a_impl = a.impl_ptr();
  auto b_impl = b.impl_ptr();
  return MakeOp(std::move(out), {a, b},
                [a_impl, b_impl](internal::VarImpl* self) {
                  const float* go = self->grad.data();
                  if (a_impl->requires_grad) {
                    a_impl->EnsureGrad();
                    float* g = a_impl->grad.data();
                    const float* bv = b_impl->value.data();
                    for (size_t i = 0; i < self->grad.size(); ++i)
                      g[i] += go[i] * bv[i];
                  }
                  if (b_impl->requires_grad) {
                    b_impl->EnsureGrad();
                    float* g = b_impl->grad.data();
                    const float* av = a_impl->value.data();
                    for (size_t i = 0; i < self->grad.size(); ++i)
                      g[i] += go[i] * av[i];
                  }
                });
}

Var Div(const Var& a, const Var& b) {
  TPR_CHECK(a.value().SameShape(b.value()));
  Tensor out = a.value();
  const float* bd = b.value().data();
  for (size_t i = 0; i < out.size(); ++i) out[i] /= bd[i];
  auto a_impl = a.impl_ptr();
  auto b_impl = b.impl_ptr();
  return MakeOp(std::move(out), {a, b},
                [a_impl, b_impl](internal::VarImpl* self) {
                  const float* go = self->grad.data();
                  const float* av = a_impl->value.data();
                  const float* bv = b_impl->value.data();
                  if (a_impl->requires_grad) {
                    a_impl->EnsureGrad();
                    float* g = a_impl->grad.data();
                    for (size_t i = 0; i < self->grad.size(); ++i)
                      g[i] += go[i] / bv[i];
                  }
                  if (b_impl->requires_grad) {
                    b_impl->EnsureGrad();
                    float* g = b_impl->grad.data();
                    for (size_t i = 0; i < self->grad.size(); ++i)
                      g[i] -= go[i] * av[i] / (bv[i] * bv[i]);
                  }
                });
}

Var Scale(const Var& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x * s; },
      [s](float, float) { return s; });
}

Var AddScalar(const Var& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x + s; },
      [](float, float) { return 1.0f; });
}

Var Tanh(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Var Sigmoid(const Var& a) {
  return UnaryOp(
      a,
      [](float x) {
        return x >= 0 ? 1.0f / (1.0f + std::exp(-x))
                      : std::exp(x) / (1.0f + std::exp(x));
      },
      [](float, float y) { return y * (1.0f - y); });
}

Var Relu(const Var& a) {
  return UnaryOp(
      a, [](float x) { return x > 0 ? x : 0.0f; },
      [](float x, float) { return x > 0 ? 1.0f : 0.0f; });
}

Var Exp(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Var Log(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; });
}

Var Softplus(const Var& a) {
  return UnaryOp(
      a,
      [](float x) {
        // log(1 + e^x) = max(x, 0) + log(1 + e^{-|x|})
        return std::max(x, 0.0f) + std::log1p(std::exp(-std::fabs(x)));
      },
      [](float x, float) {
        return x >= 0 ? 1.0f / (1.0f + std::exp(-x))
                      : std::exp(x) / (1.0f + std::exp(x));
      });
}

Var Sqrt(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::sqrt(x); },
      [](float, float y) { return 0.5f / std::max(y, 1e-12f); });
}

Var Sum(const Var& a) {
  Tensor out(1, 1);
  out.at(0, 0) = a.value().Sum();
  auto a_impl = a.impl_ptr();
  return MakeOp(std::move(out), {a}, [a_impl](internal::VarImpl* self) {
    if (!a_impl->requires_grad) return;
    a_impl->EnsureGrad();
    const float g = self->grad.at(0, 0);
    float* pg = a_impl->grad.data();
    for (size_t i = 0; i < a_impl->grad.size(); ++i) pg[i] += g;
  });
}

Var Mean(const Var& a) {
  const float inv = 1.0f / static_cast<float>(a.value().size());
  return Scale(Sum(a), inv);
}

Var RowMean(const Var& a) {
  const int m = a.rows(), n = a.cols();
  TPR_CHECK(m > 0);
  Tensor out(1, n);
  for (int i = 0; i < m; ++i) {
    const float* row = a.value().data() + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) out[j] += row[j];
  }
  const float inv = 1.0f / static_cast<float>(m);
  for (int j = 0; j < n; ++j) out[j] *= inv;
  auto a_impl = a.impl_ptr();
  return MakeOp(std::move(out), {a},
                [a_impl, m, n, inv](internal::VarImpl* self) {
                  if (!a_impl->requires_grad) return;
                  a_impl->EnsureGrad();
                  const float* go = self->grad.data();
                  for (int i = 0; i < m; ++i) {
                    float* g =
                        a_impl->grad.data() + static_cast<size_t>(i) * n;
                    for (int j = 0; j < n; ++j) g[j] += go[j] * inv;
                  }
                });
}

Var RowMax(const Var& a) {
  const int m = a.rows(), n = a.cols();
  TPR_CHECK(m > 0);
  Tensor out(1, n);
  std::vector<int> argmax(n, 0);
  for (int j = 0; j < n; ++j) {
    float best = a.value().at(0, j);
    for (int i = 1; i < m; ++i) {
      if (a.value().at(i, j) > best) {
        best = a.value().at(i, j);
        argmax[j] = i;
      }
    }
    out[j] = best;
  }
  auto a_impl = a.impl_ptr();
  return MakeOp(std::move(out), {a},
                [a_impl, argmax, n](internal::VarImpl* self) {
                  if (!a_impl->requires_grad) return;
                  a_impl->EnsureGrad();
                  const float* go = self->grad.data();
                  for (int j = 0; j < n; ++j) {
                    a_impl->grad.at(argmax[j], j) += go[j];
                  }
                });
}

Var ConcatCols(const std::vector<Var>& parts) {
  static obs::Counter& ops = obs::GetCounter("nn.concat_ops");
  ops.Add();
  TPR_CHECK(!parts.empty());
  const int m = parts[0].rows();
  int total = 0;
  for (const auto& p : parts) {
    TPR_CHECK(p.rows() == m);
    total += p.cols();
  }
  // Build the result with a single reserved append pass instead of
  // zero-filling an (m x total) tensor and overwriting it.
  std::vector<float> data;
  data.reserve(static_cast<size_t>(m) * total);
  for (int i = 0; i < m; ++i) {
    for (const auto& p : parts) {
      const float* src =
          p.value().data() + static_cast<size_t>(i) * p.cols();
      data.insert(data.end(), src, src + p.cols());
    }
  }
  Tensor out = Tensor::FromValues(m, total, std::move(data));
  std::vector<std::shared_ptr<internal::VarImpl>> impls;
  impls.reserve(parts.size());
  for (const auto& p : parts) impls.push_back(p.impl_ptr());
  return MakeOp(std::move(out), parts,
                [impls, m, total](internal::VarImpl* self) {
                  int offset = 0;
                  for (const auto& p : impls) {
                    const int n = p->value.cols();
                    if (p->requires_grad) {
                      p->EnsureGrad();
                      for (int i = 0; i < m; ++i) {
                        const float* src = self->grad.data() +
                                           static_cast<size_t>(i) * total +
                                           offset;
                        float* dst =
                            p->grad.data() + static_cast<size_t>(i) * n;
                        for (int j = 0; j < n; ++j) dst[j] += src[j];
                      }
                    }
                    offset += n;
                  }
                });
}

Var ConcatRows(const std::vector<Var>& parts) {
  static obs::Counter& ops = obs::GetCounter("nn.concat_ops");
  ops.Add();
  TPR_CHECK(!parts.empty());
  const int n = parts[0].cols();
  int total = 0;
  for (const auto& p : parts) {
    TPR_CHECK(p.cols() == n);
    total += p.rows();
  }
  // Row stacking is a pure append in row-major layout; reserve once and
  // skip the zero-fill of a fresh (total x n) tensor.
  std::vector<float> data;
  data.reserve(static_cast<size_t>(total) * n);
  for (const auto& p : parts) {
    data.insert(data.end(), p.value().data(),
                p.value().data() + p.value().size());
  }
  Tensor out = Tensor::FromValues(total, n, std::move(data));
  std::vector<std::shared_ptr<internal::VarImpl>> impls;
  impls.reserve(parts.size());
  for (const auto& p : parts) impls.push_back(p.impl_ptr());
  return MakeOp(std::move(out), parts, [impls, n](internal::VarImpl* self) {
    int offset = 0;
    for (const auto& p : impls) {
      const int m = p->value.rows();
      if (p->requires_grad) {
        p->EnsureGrad();
        const float* src =
            self->grad.data() + static_cast<size_t>(offset) * n;
        float* dst = p->grad.data();
        for (size_t i = 0; i < static_cast<size_t>(m) * n; ++i)
          dst[i] += src[i];
      }
      offset += m;
    }
  });
}

Var SliceCols(const Var& a, int start, int len) {
  TPR_CHECK(start >= 0 && len > 0 && start + len <= a.cols());
  const int m = a.rows(), n = a.cols();
  Tensor out(m, len);
  for (int i = 0; i < m; ++i) {
    const float* src = a.value().data() + static_cast<size_t>(i) * n + start;
    std::copy(src, src + len, out.data() + static_cast<size_t>(i) * len);
  }
  auto a_impl = a.impl_ptr();
  return MakeOp(std::move(out), {a},
                [a_impl, start, len, m, n](internal::VarImpl* self) {
                  if (!a_impl->requires_grad) return;
                  a_impl->EnsureGrad();
                  for (int i = 0; i < m; ++i) {
                    const float* src =
                        self->grad.data() + static_cast<size_t>(i) * len;
                    float* dst = a_impl->grad.data() +
                                 static_cast<size_t>(i) * n + start;
                    for (int j = 0; j < len; ++j) dst[j] += src[j];
                  }
                });
}

Var SliceRow(const Var& a, int r) {
  TPR_CHECK(r >= 0 && r < a.rows());
  const int n = a.cols();
  Tensor out(1, n);
  const float* src = a.value().data() + static_cast<size_t>(r) * n;
  std::copy(src, src + n, out.data());
  auto a_impl = a.impl_ptr();
  return MakeOp(std::move(out), {a}, [a_impl, r, n](internal::VarImpl* self) {
    if (!a_impl->requires_grad) return;
    a_impl->EnsureGrad();
    const float* src = self->grad.data();
    float* dst = a_impl->grad.data() + static_cast<size_t>(r) * n;
    for (int j = 0; j < n; ++j) dst[j] += src[j];
  });
}

Var Gather(const Var& table, const std::vector<int>& indices) {
  const int n = table.cols();
  Tensor out(static_cast<int>(indices.size()), n);
  for (size_t i = 0; i < indices.size(); ++i) {
    TPR_CHECK(indices[i] >= 0 && indices[i] < table.rows());
    const float* src =
        table.value().data() + static_cast<size_t>(indices[i]) * n;
    std::copy(src, src + n, out.data() + i * n);
  }
  auto t_impl = table.impl_ptr();
  return MakeOp(std::move(out), {table},
                [t_impl, indices, n](internal::VarImpl* self) {
                  if (!t_impl->requires_grad) return;
                  t_impl->EnsureGrad();
                  for (size_t i = 0; i < indices.size(); ++i) {
                    const float* src = self->grad.data() + i * n;
                    float* dst = t_impl->grad.data() +
                                 static_cast<size_t>(indices[i]) * n;
                    for (int j = 0; j < n; ++j) dst[j] += src[j];
                  }
                });
}

Var CosineSim(const Var& a, const Var& b) {
  TPR_CHECK(a.rows() == 1 && b.rows() == 1 && a.cols() == b.cols());
  const int n = a.cols();
  const float* av = a.value().data();
  const float* bv = b.value().data();
  double dot = 0, na2 = 0, nb2 = 0;
  for (int i = 0; i < n; ++i) {
    dot += static_cast<double>(av[i]) * bv[i];
    na2 += static_cast<double>(av[i]) * av[i];
    nb2 += static_cast<double>(bv[i]) * bv[i];
  }
  const float na = static_cast<float>(std::sqrt(na2)) + kCosineEps;
  const float nb = static_cast<float>(std::sqrt(nb2)) + kCosineEps;
  const float cos = static_cast<float>(dot) / (na * nb);
  Tensor out(1, 1);
  out.at(0, 0) = cos;
  auto a_impl = a.impl_ptr();
  auto b_impl = b.impl_ptr();
  return MakeOp(
      std::move(out), {a, b},
      [a_impl, b_impl, na, nb, cos, n](internal::VarImpl* self) {
        const float g = self->grad.at(0, 0);
        const float* av = a_impl->value.data();
        const float* bv = b_impl->value.data();
        if (a_impl->requires_grad) {
          a_impl->EnsureGrad();
          float* ga = a_impl->grad.data();
          for (int i = 0; i < n; ++i) {
            ga[i] += g * (bv[i] / (na * nb) - cos * av[i] / (na * na));
          }
        }
        if (b_impl->requires_grad) {
          b_impl->EnsureGrad();
          float* gb = b_impl->grad.data();
          for (int i = 0; i < n; ++i) {
            gb[i] += g * (av[i] / (na * nb) - cos * bv[i] / (nb * nb));
          }
        }
      });
}

Var Dot(const Var& a, const Var& b) { return Sum(Mul(a, b)); }

Var LogSumExp(const Var& a) {
  const Tensor& v = a.value();
  TPR_CHECK(!v.empty());
  float mx = v[0];
  for (size_t i = 1; i < v.size(); ++i) mx = std::max(mx, v[i]);
  double s = 0;
  for (size_t i = 0; i < v.size(); ++i) s += std::exp(v[i] - mx);
  Tensor out(1, 1);
  out.at(0, 0) = mx + static_cast<float>(std::log(s));
  const float lse = out.at(0, 0);
  auto a_impl = a.impl_ptr();
  return MakeOp(std::move(out), {a}, [a_impl, lse](internal::VarImpl* self) {
    if (!a_impl->requires_grad) return;
    a_impl->EnsureGrad();
    const float g = self->grad.at(0, 0);
    const float* v = a_impl->value.data();
    float* pg = a_impl->grad.data();
    for (size_t i = 0; i < a_impl->value.size(); ++i) {
      pg[i] += g * std::exp(v[i] - lse);
    }
  });
}

Var SoftmaxRows(const Var& a) {
  const int m = a.rows(), n = a.cols();
  Tensor out(m, n);
  for (int i = 0; i < m; ++i) {
    const float* row = a.value().data() + static_cast<size_t>(i) * n;
    float* orow = out.data() + static_cast<size_t>(i) * n;
    float mx = row[0];
    for (int j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float s = 0;
    for (int j = 0; j < n; ++j) {
      orow[j] = std::exp(row[j] - mx);
      s += orow[j];
    }
    for (int j = 0; j < n; ++j) orow[j] /= s;
  }
  Tensor out_copy = out;
  auto a_impl = a.impl_ptr();
  return MakeOp(std::move(out), {a},
                [a_impl, out_copy, m, n](internal::VarImpl* self) {
                  if (!a_impl->requires_grad) return;
                  a_impl->EnsureGrad();
                  for (int i = 0; i < m; ++i) {
                    const float* y =
                        out_copy.data() + static_cast<size_t>(i) * n;
                    const float* go =
                        self->grad.data() + static_cast<size_t>(i) * n;
                    float* g =
                        a_impl->grad.data() + static_cast<size_t>(i) * n;
                    float dotv = 0;
                    for (int j = 0; j < n; ++j) dotv += go[j] * y[j];
                    for (int j = 0; j < n; ++j)
                      g[j] += y[j] * (go[j] - dotv);
                  }
                });
}

Var MseLoss(const Var& pred, const Tensor& target) {
  TPR_CHECK(pred.value().SameShape(target));
  Var t = Var::Leaf(target, /*requires_grad=*/false);
  Var diff = Sub(pred, t);
  return Mean(Mul(diff, diff));
}

Var BceWithLogits(const Var& logit, float target) {
  TPR_CHECK(logit.rows() == 1 && logit.cols() == 1);
  // loss = softplus(x) - target * x  (stable form of -[t log s + (1-t) log(1-s)])
  return Sub(Softplus(logit), Scale(logit, target));
}

}  // namespace tpr::nn
