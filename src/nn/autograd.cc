#include "nn/autograd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "kern/kern.h"
#include "obs/metrics.h"

namespace tpr::nn {

namespace {

// Thread-local so that concurrent workers can build autograd graphs (or
// run inference under NoGradGuard) without observing each other's mode.
thread_local int g_no_grad_depth = 0;

constexpr float kCosineEps = 1e-8f;

}  // namespace

NoGradGuard::NoGradGuard() { ++g_no_grad_depth; }
NoGradGuard::~NoGradGuard() { --g_no_grad_depth; }

bool GradEnabled() { return g_no_grad_depth == 0; }

namespace internal {

std::shared_ptr<VarImpl> NewVarImpl() {
  return std::allocate_shared<VarImpl>(kern::ArenaStlAllocator<VarImpl>());
}

Var WrapVar(std::shared_ptr<VarImpl> impl) { return Var(std::move(impl)); }

}  // namespace internal

Var Var::Leaf(Tensor value, bool requires_grad) {
  auto impl = internal::NewVarImpl();
  impl->value = std::move(value);
  impl->requires_grad = requires_grad;
  return internal::WrapVar(std::move(impl));
}

namespace {

// Monotone traversal stamp shared by all Backward() calls. Each call
// claims a fresh epoch and marks reached nodes with it, which replaces a
// per-call unordered_set with one integer compare per edge. Concurrent
// Backward() calls on *disjoint* graphs are fine (distinct epochs, each
// node written by one thread); graphs are never shared across threads in
// this codebase.
std::atomic<uint64_t> g_backward_epoch{0};

}  // namespace

void Var::Backward() const {
  TPR_CHECK(defined());
  TPR_CHECK(rows() == 1 && cols() == 1) << "Backward() requires a scalar";
  if (!impl_->requires_grad) return;

  const uint64_t epoch = g_backward_epoch.fetch_add(1) + 1;

  // Iterative post-order topological sort over the parent DAG. The
  // scratch vectors persist per thread so steady-state steps reuse their
  // capacity instead of reallocating.
  thread_local std::vector<internal::VarImpl*> order;
  thread_local std::vector<std::pair<internal::VarImpl*, size_t>> stack;
  order.clear();
  stack.clear();
  stack.emplace_back(impl_.get(), 0);
  impl_->visit_epoch = epoch;
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->parents.size()) {
      internal::VarImpl* parent = node->parents[idx].get();
      ++idx;
      if (parent->requires_grad && parent->visit_epoch != epoch) {
        parent->visit_epoch = epoch;
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  impl_->EnsureGrad();
  impl_->grad.at(0, 0) = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::VarImpl* node = *it;
    if (node->backward_fn && !node->grad.empty()) node->backward_fn(node);
  }
}

namespace {

// Accumulates `delta` into the gradient of `p` if it participates in
// differentiation.
void AccumulateGrad(internal::VarImpl* p, const Tensor& delta) {
  if (!p->requires_grad) return;
  p->EnsureGrad();
  TPR_CHECK(p->grad.SameShape(delta));
  kern::AddAcc(delta.data(), p->grad.data(),
               static_cast<int>(delta.size()));
}

// Elementwise unary op helper: forward maps x->f(x); backward multiplies
// incoming gradient by dfd(value_in, value_out). The backward closure
// reads the forward output straight from the node (self->value), so no
// copy of the output is captured.
template <typename Fwd, typename Bwd>
Var UnaryOp(const Var& a, Fwd fwd, Bwd dfd) {
  Tensor out = Tensor::Uninitialized(a.rows(), a.cols());
  const Tensor& in = a.value();
  for (size_t i = 0; i < in.size(); ++i) out[i] = fwd(in[i]);
  return MakeOp(std::move(out), {a}, [dfd](internal::VarImpl* self) {
    internal::VarImpl* p = self->parents[0].get();
    if (!p->requires_grad) return;
    p->EnsureGrad();
    const Tensor& in = p->value;
    const Tensor& out = self->value;
    float* g = p->grad.data();
    const float* go = self->grad.data();
    for (size_t i = 0; i < in.size(); ++i) {
      g[i] += go[i] * dfd(in[i], out[i]);
    }
  });
}

// Copies the 1 x n bias row into every row of an uninitialised m x n
// output (shared by the fused affine forwards).
void BroadcastBiasRows(const Tensor& bias, Tensor& out) {
  const int m = out.rows(), n = out.cols();
  TPR_CHECK(bias.rows() == 1 && bias.cols() == n);
  const float* b = bias.data();
  for (int i = 0; i < m; ++i) {
    std::memcpy(out.data() + static_cast<size_t>(i) * n, b,
                static_cast<size_t>(n) * sizeof(float));
  }
}

// dBias += column sums of dOut.
void AccumulateBiasGrad(internal::VarImpl* bias, const Tensor& gout) {
  if (!bias->requires_grad) return;
  bias->EnsureGrad();
  const int m = gout.rows(), n = gout.cols();
  float* bg = bias->grad.data();
  for (int i = 0; i < m; ++i) {
    kern::AddAcc(gout.data() + static_cast<size_t>(i) * n, bg, n);
  }
}

}  // namespace

Var MatMul(const Var& a, const Var& b) {
  static obs::Counter& ops = obs::GetCounter("nn.matmul_ops");
  static obs::Counter& flops = obs::GetCounter("nn.matmul_flops");
  ops.Add();
  flops.Add(2ull * a.rows() * a.cols() * b.cols());
  Tensor out(a.rows(), b.cols());
  MatMulAccumulate(a.value(), b.value(), out);
  return MakeOp(std::move(out), {a, b}, [](internal::VarImpl* self) {
    internal::VarImpl* a_impl = self->parents[0].get();
    internal::VarImpl* b_impl = self->parents[1].get();
    // dA = dOut * B^T ; dB = A^T * dOut
    if (a_impl->requires_grad) {
      a_impl->EnsureGrad();
      MatMulTransBAccumulate(self->grad, b_impl->value, a_impl->grad);
    }
    if (b_impl->requires_grad) {
      b_impl->EnsureGrad();
      MatMulTransAAccumulate(a_impl->value, self->grad, b_impl->grad);
    }
  });
}

Var Add(const Var& a, const Var& b) {
  TPR_CHECK(a.value().SameShape(b.value()));
  Tensor out = a.value();
  const float* bd = b.value().data();
  for (size_t i = 0; i < out.size(); ++i) out[i] += bd[i];
  return MakeOp(std::move(out), {a, b}, [](internal::VarImpl* self) {
    AccumulateGrad(self->parents[0].get(), self->grad);
    AccumulateGrad(self->parents[1].get(), self->grad);
  });
}

Var AddRow(const Var& m, const Var& row) {
  TPR_CHECK(row.rows() == 1 && row.cols() == m.cols());
  Tensor out = m.value();
  const float* r = row.value().data();
  for (int i = 0; i < out.rows(); ++i) {
    float* o = out.data() + static_cast<size_t>(i) * out.cols();
    for (int j = 0; j < out.cols(); ++j) o[j] += r[j];
  }
  return MakeOp(std::move(out), {m, row}, [](internal::VarImpl* self) {
    AccumulateGrad(self->parents[0].get(), self->grad);
    AccumulateBiasGrad(self->parents[1].get(), self->grad);
  });
}

Var Sub(const Var& a, const Var& b) {
  TPR_CHECK(a.value().SameShape(b.value()));
  Tensor out = a.value();
  const float* bd = b.value().data();
  for (size_t i = 0; i < out.size(); ++i) out[i] -= bd[i];
  return MakeOp(std::move(out), {a, b}, [](internal::VarImpl* self) {
    AccumulateGrad(self->parents[0].get(), self->grad);
    internal::VarImpl* b_impl = self->parents[1].get();
    if (b_impl->requires_grad) {
      b_impl->EnsureGrad();
      kern::AxpyAcc(-1.0f, self->grad.data(), b_impl->grad.data(),
                    static_cast<int>(self->grad.size()));
    }
  });
}

Var Mul(const Var& a, const Var& b) {
  TPR_CHECK(a.value().SameShape(b.value()));
  Tensor out = a.value();
  const float* bd = b.value().data();
  for (size_t i = 0; i < out.size(); ++i) out[i] *= bd[i];
  return MakeOp(std::move(out), {a, b}, [](internal::VarImpl* self) {
    internal::VarImpl* a_impl = self->parents[0].get();
    internal::VarImpl* b_impl = self->parents[1].get();
    const int n = static_cast<int>(self->grad.size());
    if (a_impl->requires_grad) {
      a_impl->EnsureGrad();
      kern::HadamardAcc(self->grad.data(), b_impl->value.data(),
                        a_impl->grad.data(), n);
    }
    if (b_impl->requires_grad) {
      b_impl->EnsureGrad();
      kern::HadamardAcc(self->grad.data(), a_impl->value.data(),
                        b_impl->grad.data(), n);
    }
  });
}

Var Div(const Var& a, const Var& b) {
  TPR_CHECK(a.value().SameShape(b.value()));
  Tensor out = a.value();
  const float* bd = b.value().data();
  for (size_t i = 0; i < out.size(); ++i) out[i] /= bd[i];
  return MakeOp(std::move(out), {a, b}, [](internal::VarImpl* self) {
    internal::VarImpl* a_impl = self->parents[0].get();
    internal::VarImpl* b_impl = self->parents[1].get();
    const float* go = self->grad.data();
    const float* av = a_impl->value.data();
    const float* bv = b_impl->value.data();
    if (a_impl->requires_grad) {
      a_impl->EnsureGrad();
      float* g = a_impl->grad.data();
      for (size_t i = 0; i < self->grad.size(); ++i) g[i] += go[i] / bv[i];
    }
    if (b_impl->requires_grad) {
      b_impl->EnsureGrad();
      float* g = b_impl->grad.data();
      for (size_t i = 0; i < self->grad.size(); ++i)
        g[i] -= go[i] * av[i] / (bv[i] * bv[i]);
    }
  });
}

Var Scale(const Var& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x * s; },
      [s](float, float) { return s; });
}

Var AddScalar(const Var& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x + s; },
      [](float, float) { return 1.0f; });
}

Var Tanh(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Var Sigmoid(const Var& a) {
  return UnaryOp(
      a, [](float x) { return kern::SigmoidScalar(x); },
      [](float, float y) { return y * (1.0f - y); });
}

Var Relu(const Var& a) {
  return UnaryOp(
      a, [](float x) { return x > 0 ? x : 0.0f; },
      [](float x, float) { return x > 0 ? 1.0f : 0.0f; });
}

Var Exp(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Var Log(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; });
}

Var Softplus(const Var& a) {
  return UnaryOp(
      a,
      [](float x) {
        // log(1 + e^x) = max(x, 0) + log(1 + e^{-|x|})
        return std::max(x, 0.0f) + std::log1p(std::exp(-std::fabs(x)));
      },
      [](float x, float) { return kern::SigmoidScalar(x); });
}

Var Sqrt(const Var& a) {
  return UnaryOp(
      a, [](float x) { return std::sqrt(x); },
      [](float, float y) { return 0.5f / std::max(y, 1e-12f); });
}

Var Sum(const Var& a) {
  Tensor out(1, 1);
  out.at(0, 0) = a.value().Sum();
  return MakeOp(std::move(out), {a}, [](internal::VarImpl* self) {
    internal::VarImpl* a_impl = self->parents[0].get();
    if (!a_impl->requires_grad) return;
    a_impl->EnsureGrad();
    const float g = self->grad.at(0, 0);
    float* pg = a_impl->grad.data();
    for (size_t i = 0; i < a_impl->grad.size(); ++i) pg[i] += g;
  });
}

Var Mean(const Var& a) {
  const float inv = 1.0f / static_cast<float>(a.value().size());
  return Scale(Sum(a), inv);
}

Var RowMean(const Var& a) {
  const int m = a.rows(), n = a.cols();
  TPR_CHECK(m > 0);
  Tensor out(1, n);
  for (int i = 0; i < m; ++i) {
    const float* row = a.value().data() + static_cast<size_t>(i) * n;
    kern::AddAcc(row, out.data(), n);
  }
  const float inv = 1.0f / static_cast<float>(m);
  for (int j = 0; j < n; ++j) out[j] *= inv;
  return MakeOp(std::move(out), {a}, [m, n, inv](internal::VarImpl* self) {
    internal::VarImpl* a_impl = self->parents[0].get();
    if (!a_impl->requires_grad) return;
    a_impl->EnsureGrad();
    const float* go = self->grad.data();
    for (int i = 0; i < m; ++i) {
      float* g = a_impl->grad.data() + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) g[j] += go[j] * inv;
    }
  });
}

Var RowMax(const Var& a) {
  const int m = a.rows(), n = a.cols();
  TPR_CHECK(m > 0);
  Tensor out(1, n);
  kern::ArenaVector<int> argmax(n, 0);
  for (int j = 0; j < n; ++j) {
    float best = a.value().at(0, j);
    for (int i = 1; i < m; ++i) {
      if (a.value().at(i, j) > best) {
        best = a.value().at(i, j);
        argmax[j] = i;
      }
    }
    out[j] = best;
  }
  return MakeOp(std::move(out), {a},
                [argmax = std::move(argmax), n](internal::VarImpl* self) {
                  internal::VarImpl* a_impl = self->parents[0].get();
                  if (!a_impl->requires_grad) return;
                  a_impl->EnsureGrad();
                  const float* go = self->grad.data();
                  for (int j = 0; j < n; ++j) {
                    a_impl->grad.at(argmax[j], j) += go[j];
                  }
                });
}

namespace {

// Shared concat-columns implementation over any contiguous Var range.
template <typename PartsVec>
Var ConcatColsImpl(const PartsVec& parts) {
  static obs::Counter& ops = obs::GetCounter("nn.concat_ops");
  ops.Add();
  TPR_CHECK(parts.size() > 0);
  const int m = parts.begin()->rows();
  int total = 0;
  for (const Var& p : parts) {
    TPR_CHECK(p.rows() == m);
    total += p.cols();
  }
  Tensor out = Tensor::Uninitialized(m, total);
  for (int i = 0; i < m; ++i) {
    float* dst = out.data() + static_cast<size_t>(i) * total;
    for (const Var& p : parts) {
      const float* src = p.value().data() + static_cast<size_t>(i) * p.cols();
      std::memcpy(dst, src, static_cast<size_t>(p.cols()) * sizeof(float));
      dst += p.cols();
    }
  }
  return MakeOpRange(std::move(out), parts,
                     [m, total](internal::VarImpl* self) {
                       int offset = 0;
                       for (const auto& p : self->parents) {
                         const int n = p->value.cols();
                         if (p->requires_grad) {
                           p->EnsureGrad();
                           for (int i = 0; i < m; ++i) {
                             const float* src = self->grad.data() +
                                                static_cast<size_t>(i) * total +
                                                offset;
                             float* dst =
                                 p->grad.data() + static_cast<size_t>(i) * n;
                             kern::AddAcc(src, dst, n);
                           }
                         }
                         offset += n;
                       }
                     });
}

// Shared concat-rows implementation: row stacking is a pure append in
// row-major layout.
template <typename PartsVec>
Var ConcatRowsImpl(const PartsVec& parts) {
  static obs::Counter& ops = obs::GetCounter("nn.concat_ops");
  ops.Add();
  TPR_CHECK(parts.size() > 0);
  const int n = parts.begin()->cols();
  int total = 0;
  for (const Var& p : parts) {
    TPR_CHECK(p.cols() == n);
    total += p.rows();
  }
  Tensor out = Tensor::Uninitialized(total, n);
  float* dst = out.data();
  for (const Var& p : parts) {
    std::memcpy(dst, p.value().data(), p.value().size() * sizeof(float));
    dst += p.value().size();
  }
  return MakeOpRange(std::move(out), parts, [n](internal::VarImpl* self) {
    size_t offset = 0;
    for (const auto& p : self->parents) {
      const size_t sz = static_cast<size_t>(p->value.rows()) * n;
      if (p->requires_grad) {
        p->EnsureGrad();
        kern::AddAcc(self->grad.data() + offset, p->grad.data(),
                     static_cast<int>(sz));
      }
      offset += sz;
    }
  });
}

}  // namespace

Var ConcatCols(const std::vector<Var>& parts) { return ConcatColsImpl(parts); }

Var ConcatCols(std::initializer_list<Var> parts) {
  return ConcatColsImpl(parts);
}

Var ConcatRows(const std::vector<Var>& parts) { return ConcatRowsImpl(parts); }

Var ConcatRows(const kern::ArenaVector<Var>& parts) {
  return ConcatRowsImpl(parts);
}

Var ConcatRows(std::initializer_list<Var> parts) {
  return ConcatRowsImpl(parts);
}

Var SliceCols(const Var& a, int start, int len) {
  TPR_CHECK(start >= 0 && len > 0 && start + len <= a.cols());
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::Uninitialized(m, len);
  for (int i = 0; i < m; ++i) {
    const float* src = a.value().data() + static_cast<size_t>(i) * n + start;
    std::copy(src, src + len, out.data() + static_cast<size_t>(i) * len);
  }
  return MakeOp(std::move(out), {a},
                [start, len, m, n](internal::VarImpl* self) {
                  internal::VarImpl* a_impl = self->parents[0].get();
                  if (!a_impl->requires_grad) return;
                  a_impl->EnsureGrad();
                  for (int i = 0; i < m; ++i) {
                    const float* src =
                        self->grad.data() + static_cast<size_t>(i) * len;
                    float* dst = a_impl->grad.data() +
                                 static_cast<size_t>(i) * n + start;
                    kern::AddAcc(src, dst, len);
                  }
                });
}

Var SliceRow(const Var& a, int r) {
  TPR_CHECK(r >= 0 && r < a.rows());
  const int n = a.cols();
  Tensor out = Tensor::Uninitialized(1, n);
  const float* src = a.value().data() + static_cast<size_t>(r) * n;
  std::copy(src, src + n, out.data());
  return MakeOp(std::move(out), {a}, [r, n](internal::VarImpl* self) {
    internal::VarImpl* a_impl = self->parents[0].get();
    if (!a_impl->requires_grad) return;
    a_impl->EnsureGrad();
    kern::AddAcc(self->grad.data(),
                 a_impl->grad.data() + static_cast<size_t>(r) * n, n);
  });
}

Var SliceRows(const Var& a, int start, int len) {
  TPR_CHECK(start >= 0 && len > 0 && start + len <= a.rows());
  const int n = a.cols();
  Tensor out = Tensor::Uninitialized(len, n);
  const float* src = a.value().data() + static_cast<size_t>(start) * n;
  std::copy(src, src + static_cast<size_t>(len) * n, out.data());
  return MakeOp(std::move(out), {a}, [start, len, n](internal::VarImpl* self) {
    internal::VarImpl* a_impl = self->parents[0].get();
    if (!a_impl->requires_grad) return;
    a_impl->EnsureGrad();
    kern::AddAcc(self->grad.data(),
                 a_impl->grad.data() + static_cast<size_t>(start) * n,
                 len * n);
  });
}

Var Gather(const Var& table, const std::vector<int>& indices) {
  const int n = table.cols();
  Tensor out = Tensor::Uninitialized(static_cast<int>(indices.size()), n);
  for (size_t i = 0; i < indices.size(); ++i) {
    TPR_CHECK(indices[i] >= 0 && indices[i] < table.rows());
    const float* src =
        table.value().data() + static_cast<size_t>(indices[i]) * n;
    std::copy(src, src + n, out.data() + i * n);
  }
  kern::ArenaVector<int> idx(indices.begin(), indices.end());
  return MakeOp(std::move(out), {table},
                [idx = std::move(idx), n](internal::VarImpl* self) {
                  internal::VarImpl* t_impl = self->parents[0].get();
                  if (!t_impl->requires_grad) return;
                  t_impl->EnsureGrad();
                  for (size_t i = 0; i < idx.size(); ++i) {
                    const float* src = self->grad.data() + i * n;
                    float* dst = t_impl->grad.data() +
                                 static_cast<size_t>(idx[i]) * n;
                    kern::AddAcc(src, dst, n);
                  }
                });
}

Var CosineSim(const Var& a, const Var& b) {
  TPR_CHECK(a.rows() == 1 && b.rows() == 1 && a.cols() == b.cols());
  const int n = a.cols();
  const float* av = a.value().data();
  const float* bv = b.value().data();
  double dot = 0, na2 = 0, nb2 = 0;
  for (int i = 0; i < n; ++i) {
    dot += static_cast<double>(av[i]) * bv[i];
    na2 += static_cast<double>(av[i]) * av[i];
    nb2 += static_cast<double>(bv[i]) * bv[i];
  }
  const float na = static_cast<float>(std::sqrt(na2)) + kCosineEps;
  const float nb = static_cast<float>(std::sqrt(nb2)) + kCosineEps;
  const float cos = static_cast<float>(dot) / (na * nb);
  Tensor out(1, 1);
  out.at(0, 0) = cos;
  return MakeOp(std::move(out), {a, b},
                [na, nb, cos, n](internal::VarImpl* self) {
                  internal::VarImpl* a_impl = self->parents[0].get();
                  internal::VarImpl* b_impl = self->parents[1].get();
                  const float g = self->grad.at(0, 0);
                  const float* av = a_impl->value.data();
                  const float* bv = b_impl->value.data();
                  if (a_impl->requires_grad) {
                    a_impl->EnsureGrad();
                    float* ga = a_impl->grad.data();
                    for (int i = 0; i < n; ++i) {
                      ga[i] +=
                          g * (bv[i] / (na * nb) - cos * av[i] / (na * na));
                    }
                  }
                  if (b_impl->requires_grad) {
                    b_impl->EnsureGrad();
                    float* gb = b_impl->grad.data();
                    for (int i = 0; i < n; ++i) {
                      gb[i] +=
                          g * (av[i] / (na * nb) - cos * bv[i] / (nb * nb));
                    }
                  }
                });
}

Var Dot(const Var& a, const Var& b) { return Sum(Mul(a, b)); }

Var LogSumExp(const Var& a) {
  const Tensor& v = a.value();
  TPR_CHECK(!v.empty());
  float mx = v[0];
  for (size_t i = 1; i < v.size(); ++i) mx = std::max(mx, v[i]);
  double s = 0;
  for (size_t i = 0; i < v.size(); ++i) s += std::exp(v[i] - mx);
  Tensor out(1, 1);
  out.at(0, 0) = mx + static_cast<float>(std::log(s));
  const float lse = out.at(0, 0);
  return MakeOp(std::move(out), {a}, [lse](internal::VarImpl* self) {
    internal::VarImpl* a_impl = self->parents[0].get();
    if (!a_impl->requires_grad) return;
    a_impl->EnsureGrad();
    const float g = self->grad.at(0, 0);
    const float* v = a_impl->value.data();
    float* pg = a_impl->grad.data();
    for (size_t i = 0; i < a_impl->value.size(); ++i) {
      pg[i] += g * std::exp(v[i] - lse);
    }
  });
}

Var SoftmaxRows(const Var& a) {
  const int m = a.rows(), n = a.cols();
  Tensor out = Tensor::Uninitialized(m, n);
  for (int i = 0; i < m; ++i) {
    const float* row = a.value().data() + static_cast<size_t>(i) * n;
    float* orow = out.data() + static_cast<size_t>(i) * n;
    float mx = row[0];
    for (int j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float s = 0;
    for (int j = 0; j < n; ++j) {
      orow[j] = std::exp(row[j] - mx);
      s += orow[j];
    }
    for (int j = 0; j < n; ++j) orow[j] /= s;
  }
  return MakeOp(std::move(out), {a}, [m, n](internal::VarImpl* self) {
    internal::VarImpl* a_impl = self->parents[0].get();
    if (!a_impl->requires_grad) return;
    a_impl->EnsureGrad();
    for (int i = 0; i < m; ++i) {
      const float* y = self->value.data() + static_cast<size_t>(i) * n;
      const float* go = self->grad.data() + static_cast<size_t>(i) * n;
      float* g = a_impl->grad.data() + static_cast<size_t>(i) * n;
      float dotv = 0;
      for (int j = 0; j < n; ++j) dotv += go[j] * y[j];
      for (int j = 0; j < n; ++j) g[j] += y[j] * (go[j] - dotv);
    }
  });
}

Var SoftmaxRowsMasked(const Var& a, int valid) {
  const int m = a.rows(), n = a.cols();
  TPR_CHECK(valid > 0 && valid <= n);
  // Zero-initialised so the masked tail is exactly 0.0f.
  Tensor out(m, n);
  for (int i = 0; i < m; ++i) {
    const float* row = a.value().data() + static_cast<size_t>(i) * n;
    float* orow = out.data() + static_cast<size_t>(i) * n;
    float mx = row[0];
    for (int j = 1; j < valid; ++j) mx = std::max(mx, row[j]);
    float s = 0;
    for (int j = 0; j < valid; ++j) {
      orow[j] = std::exp(row[j] - mx);
      s += orow[j];
    }
    for (int j = 0; j < valid; ++j) orow[j] /= s;
  }
  return MakeOp(std::move(out), {a}, [m, n, valid](internal::VarImpl* self) {
    internal::VarImpl* a_impl = self->parents[0].get();
    if (!a_impl->requires_grad) return;
    a_impl->EnsureGrad();
    for (int i = 0; i < m; ++i) {
      const float* y = self->value.data() + static_cast<size_t>(i) * n;
      const float* go = self->grad.data() + static_cast<size_t>(i) * n;
      float* g = a_impl->grad.data() + static_cast<size_t>(i) * n;
      float dotv = 0;
      for (int j = 0; j < valid; ++j) dotv += go[j] * y[j];
      for (int j = 0; j < valid; ++j) g[j] += y[j] * (go[j] - dotv);
    }
  });
}

Var MatMulValidCols(const Var& w, const Var& v, int valid) {
  const int m = w.rows(), n = v.cols();
  TPR_CHECK(valid > 0 && valid <= w.cols() && valid <= v.rows());
  static obs::Counter& ops = obs::GetCounter("nn.matmul_ops");
  static obs::Counter& flops = obs::GetCounter("nn.matmul_flops");
  ops.Add();
  flops.Add(2ull * m * valid * n);
  // Compact the valid column prefix of each w row so the reduction runs
  // through the same GEMM as the unpadded MatMul (v's valid row prefix
  // is already contiguous in row-major layout).
  const auto compact_w = [m, valid](const Tensor& full) {
    Tensor wc = Tensor::Uninitialized(m, valid);
    for (int i = 0; i < m; ++i) {
      const float* src =
          full.data() + static_cast<size_t>(i) * full.cols();
      std::copy(src, src + valid,
                wc.data() + static_cast<size_t>(i) * valid);
    }
    return wc;
  };
  Tensor out(m, n);
  {
    const Tensor wc = compact_w(w.value());
    kern::GemmAcc(wc.data(), v.value().data(), out.data(), m, valid, n);
  }
  return MakeOp(
      std::move(out), {w, v},
      [m, n, valid, compact_w](internal::VarImpl* self) {
        internal::VarImpl* w_impl = self->parents[0].get();
        internal::VarImpl* v_impl = self->parents[1].get();
        if (w_impl->requires_grad) {
          w_impl->EnsureGrad();
          // dW[:, :valid] += dOut * v[:valid]^T, scattered back into the
          // full-width gradient.
          Tensor tmp(m, valid);
          kern::GemmTransBAcc(self->grad.data(), v_impl->value.data(),
                              tmp.data(), m, n, valid);
          const int wn = w_impl->value.cols();
          for (int i = 0; i < m; ++i) {
            kern::AddAcc(tmp.data() + static_cast<size_t>(i) * valid,
                         w_impl->grad.data() + static_cast<size_t>(i) * wn,
                         valid);
          }
        }
        if (v_impl->requires_grad) {
          v_impl->EnsureGrad();
          // dV[:valid] += w[:, :valid]^T * dOut (a contiguous row prefix).
          const Tensor wc = compact_w(w_impl->value);
          kern::GemmTransAAcc(wc.data(), self->grad.data(),
                              v_impl->grad.data(), m, valid, n);
        }
      });
}

Var SequenceMeanBatch(const Var& data, const std::vector<int>& lengths) {
  const int batch = static_cast<int>(lengths.size());
  const int n = data.cols();
  TPR_CHECK(batch > 0 && data.rows() % batch == 0);
  const int max_len = data.rows() / batch;
  Tensor out(batch, n);
  for (int b = 0; b < batch; ++b) {
    TPR_CHECK(lengths[b] >= 1 && lengths[b] <= max_len);
    float* orow = out.data() + static_cast<size_t>(b) * n;
    for (int t = 0; t < lengths[b]; ++t) {
      const float* row = data.value().data() +
                         (static_cast<size_t>(t) * batch + b) * n;
      kern::AddAcc(row, orow, n);
    }
    const float inv = 1.0f / static_cast<float>(lengths[b]);
    for (int j = 0; j < n; ++j) orow[j] *= inv;
  }
  kern::ArenaVector<int> lens(lengths.begin(), lengths.end());
  return MakeOp(std::move(out), {data},
                [lens = std::move(lens), batch, n](internal::VarImpl* self) {
                  internal::VarImpl* d_impl = self->parents[0].get();
                  if (!d_impl->requires_grad) return;
                  d_impl->EnsureGrad();
                  for (int b = 0; b < batch; ++b) {
                    const float* go =
                        self->grad.data() + static_cast<size_t>(b) * n;
                    const float inv = 1.0f / static_cast<float>(lens[b]);
                    for (int t = 0; t < lens[b]; ++t) {
                      float* g = d_impl->grad.data() +
                                 (static_cast<size_t>(t) * batch + b) * n;
                      for (int j = 0; j < n; ++j) g[j] += go[j] * inv;
                    }
                  }
                });
}

Var SequenceMaxBatch(const Var& data, const std::vector<int>& lengths) {
  const int batch = static_cast<int>(lengths.size());
  const int n = data.cols();
  TPR_CHECK(batch > 0 && data.rows() % batch == 0);
  const int max_len = data.rows() / batch;
  Tensor out = Tensor::Uninitialized(batch, n);
  kern::ArenaVector<int> argmax(static_cast<size_t>(batch) * n, 0);
  for (int b = 0; b < batch; ++b) {
    TPR_CHECK(lengths[b] >= 1 && lengths[b] <= max_len);
    for (int j = 0; j < n; ++j) {
      float best = data.value().at(b, j);  // t = 0 row of sequence b
      int best_t = 0;
      for (int t = 1; t < lengths[b]; ++t) {
        if (data.value().at(t * batch + b, j) > best) {
          best = data.value().at(t * batch + b, j);
          best_t = t;
        }
      }
      out.at(b, j) = best;
      argmax[static_cast<size_t>(b) * n + j] = best_t;
    }
  }
  return MakeOp(std::move(out), {data},
                [argmax = std::move(argmax), batch, n](internal::VarImpl* self) {
                  internal::VarImpl* d_impl = self->parents[0].get();
                  if (!d_impl->requires_grad) return;
                  d_impl->EnsureGrad();
                  for (int b = 0; b < batch; ++b) {
                    const float* go =
                        self->grad.data() + static_cast<size_t>(b) * n;
                    for (int j = 0; j < n; ++j) {
                      const int t = argmax[static_cast<size_t>(b) * n + j];
                      d_impl->grad.at(t * batch + b, j) += go[j];
                    }
                  }
                });
}

Var MseLoss(const Var& pred, const Tensor& target) {
  TPR_CHECK(pred.value().SameShape(target));
  Var t = Var::Leaf(target, /*requires_grad=*/false);
  Var diff = Sub(pred, t);
  return Mean(Mul(diff, diff));
}

Var BceWithLogits(const Var& logit, float target) {
  TPR_CHECK(logit.rows() == 1 && logit.cols() == 1);
  // loss = softplus(x) - target * x  (stable form of -[t log s + (1-t) log(1-s)])
  return Sub(Softplus(logit), Scale(logit, target));
}

// ---------------------------------------------------------------------------
// Fused ops
// ---------------------------------------------------------------------------

Var Affine(const Var& x, const Var& w, const Var& bias) {
  static obs::Counter& ops = obs::GetCounter("nn.matmul_ops");
  static obs::Counter& flops = obs::GetCounter("nn.matmul_flops");
  ops.Add();
  flops.Add(2ull * x.rows() * x.cols() * w.cols());
  TPR_CHECK(x.cols() == w.rows());
  Tensor out = Tensor::Uninitialized(x.rows(), w.cols());
  BroadcastBiasRows(bias.value(), out);
  kern::GemmAcc(x.value().data(), w.value().data(), out.data(), x.rows(),
                x.cols(), w.cols());
  return MakeOp(std::move(out), {x, w, bias}, [](internal::VarImpl* self) {
    internal::VarImpl* x_impl = self->parents[0].get();
    internal::VarImpl* w_impl = self->parents[1].get();
    if (x_impl->requires_grad) {
      x_impl->EnsureGrad();
      MatMulTransBAccumulate(self->grad, w_impl->value, x_impl->grad);
    }
    if (w_impl->requires_grad) {
      w_impl->EnsureGrad();
      MatMulTransAAccumulate(x_impl->value, self->grad, w_impl->grad);
    }
    AccumulateBiasGrad(self->parents[2].get(), self->grad);
  });
}

Var AffineSum(const Var& x1, const Var& w1, const Var& x2, const Var& w2,
              const Var& bias) {
  static obs::Counter& ops = obs::GetCounter("nn.matmul_ops");
  static obs::Counter& flops = obs::GetCounter("nn.matmul_flops");
  ops.Add(2);
  flops.Add(2ull * x1.rows() * x1.cols() * w1.cols() +
            2ull * x2.rows() * x2.cols() * w2.cols());
  TPR_CHECK(x1.cols() == w1.rows() && x2.cols() == w2.rows());
  TPR_CHECK(x1.rows() == x2.rows() && w1.cols() == w2.cols());
  Tensor out = Tensor::Uninitialized(x1.rows(), w1.cols());
  BroadcastBiasRows(bias.value(), out);
  kern::GemmAcc(x1.value().data(), w1.value().data(), out.data(), x1.rows(),
                x1.cols(), w1.cols());
  kern::GemmAcc(x2.value().data(), w2.value().data(), out.data(), x2.rows(),
                x2.cols(), w2.cols());
  return MakeOp(std::move(out), {x1, w1, x2, w2, bias},
                [](internal::VarImpl* self) {
                  for (int pair = 0; pair < 2; ++pair) {
                    internal::VarImpl* x_impl = self->parents[2 * pair].get();
                    internal::VarImpl* w_impl =
                        self->parents[2 * pair + 1].get();
                    if (x_impl->requires_grad) {
                      x_impl->EnsureGrad();
                      MatMulTransBAccumulate(self->grad, w_impl->value,
                                             x_impl->grad);
                    }
                    if (w_impl->requires_grad) {
                      w_impl->EnsureGrad();
                      MatMulTransAAccumulate(x_impl->value, self->grad,
                                             w_impl->grad);
                    }
                  }
                  AccumulateBiasGrad(self->parents[4].get(), self->grad);
                });
}

Var LstmCellOp(const Var& gates, const Var& c_prev) {
  static obs::Counter& cells = obs::GetCounter("nn.fused_cell_ops");
  cells.Add();
  const int m = gates.rows();
  const int h = c_prev.cols();
  TPR_CHECK(gates.cols() == 4 * h && c_prev.rows() == m);
  Tensor out = Tensor::Uninitialized(m, 2 * h);
  // Saved activations for backward: [i f g o tanh(c)] per row.
  Tensor act = Tensor::Uninitialized(m, 5 * h);
  const float* gv = gates.value().data();
  const float* cpv = c_prev.value().data();
  for (int r = 0; r < m; ++r) {
    kern::LstmCellRow(gv + static_cast<size_t>(r) * 4 * h,
                      cpv + static_cast<size_t>(r) * h,
                      act.data() + static_cast<size_t>(r) * 5 * h,
                      out.data() + static_cast<size_t>(r) * 2 * h, h);
  }
  return MakeOp(
      std::move(out), {gates, c_prev},
      [act = std::move(act), m, h](internal::VarImpl* self) {
        internal::VarImpl* g_impl = self->parents[0].get();
        internal::VarImpl* c_impl = self->parents[1].get();
        const bool need_g = g_impl->requires_grad;
        const bool need_c = c_impl->requires_grad;
        if (need_g) g_impl->EnsureGrad();
        if (need_c) c_impl->EnsureGrad();
        const float* cpv = c_impl->value.data();
        for (int r = 0; r < m; ++r) {
          const float* go = self->grad.data() + static_cast<size_t>(r) * 2 * h;
          const float* a = act.data() + static_cast<size_t>(r) * 5 * h;
          const float* cp = cpv + static_cast<size_t>(r) * h;
          float* dg = need_g
                          ? g_impl->grad.data() + static_cast<size_t>(r) * 4 * h
                          : nullptr;
          float* dcp = need_c
                           ? c_impl->grad.data() + static_cast<size_t>(r) * h
                           : nullptr;
          for (int j = 0; j < h; ++j) {
            const float ig = a[j];
            const float fg = a[h + j];
            const float gg = a[2 * h + j];
            const float og = a[3 * h + j];
            const float tc = a[4 * h + j];
            const float dh = go[j];
            const float dc_in = go[h + j];
            const float dc = dc_in + dh * og * (1.0f - tc * tc);
            if (need_g) {
              dg[j] += dc * gg * ig * (1.0f - ig);
              dg[h + j] += dc * cp[j] * fg * (1.0f - fg);
              dg[2 * h + j] += dc * ig * (1.0f - gg * gg);
              dg[3 * h + j] += dh * tc * og * (1.0f - og);
            }
            if (need_c) dcp[j] += dc * fg;
          }
        }
      });
}

Var GruCellOp(const Var& gi, const Var& gh, const Var& h_prev) {
  static obs::Counter& cells = obs::GetCounter("nn.fused_cell_ops");
  cells.Add();
  const int m = gi.rows();
  const int h = h_prev.cols();
  TPR_CHECK(gi.cols() == 3 * h && gh.cols() == 3 * h);
  TPR_CHECK(gh.rows() == m && h_prev.rows() == m);
  Tensor out = Tensor::Uninitialized(m, h);
  // Saved activations for backward: [r z n] per row.
  Tensor act = Tensor::Uninitialized(m, 3 * h);
  const float* giv = gi.value().data();
  const float* ghv = gh.value().data();
  const float* hpv = h_prev.value().data();
  for (int r = 0; r < m; ++r) {
    kern::GruCellRow(giv + static_cast<size_t>(r) * 3 * h,
                     ghv + static_cast<size_t>(r) * 3 * h,
                     hpv + static_cast<size_t>(r) * h,
                     act.data() + static_cast<size_t>(r) * 3 * h,
                     out.data() + static_cast<size_t>(r) * h, h);
  }
  return MakeOp(
      std::move(out), {gi, gh, h_prev},
      [act = std::move(act), m, h](internal::VarImpl* self) {
        internal::VarImpl* gi_impl = self->parents[0].get();
        internal::VarImpl* gh_impl = self->parents[1].get();
        internal::VarImpl* hp_impl = self->parents[2].get();
        const bool need_gi = gi_impl->requires_grad;
        const bool need_gh = gh_impl->requires_grad;
        const bool need_hp = hp_impl->requires_grad;
        if (need_gi) gi_impl->EnsureGrad();
        if (need_gh) gh_impl->EnsureGrad();
        if (need_hp) hp_impl->EnsureGrad();
        const float* ghv = gh_impl->value.data();
        const float* hpv = hp_impl->value.data();
        for (int r = 0; r < m; ++r) {
          const float* go = self->grad.data() + static_cast<size_t>(r) * h;
          const float* a = act.data() + static_cast<size_t>(r) * 3 * h;
          const float* ghr = ghv + static_cast<size_t>(r) * 3 * h;
          const float* hp = hpv + static_cast<size_t>(r) * h;
          float* dgi =
              need_gi ? gi_impl->grad.data() + static_cast<size_t>(r) * 3 * h
                      : nullptr;
          float* dgh =
              need_gh ? gh_impl->grad.data() + static_cast<size_t>(r) * 3 * h
                      : nullptr;
          float* dhp = need_hp
                           ? hp_impl->grad.data() + static_cast<size_t>(r) * h
                           : nullptr;
          for (int j = 0; j < h; ++j) {
            const float rg = a[j];
            const float zg = a[h + j];
            const float ng = a[2 * h + j];
            const float dh = go[j];
            const float dz = dh * (hp[j] - ng);
            const float dn = dh * (1.0f - zg);
            const float dn_pre = dn * (1.0f - ng * ng);
            const float dr = dn_pre * ghr[2 * h + j];
            const float dr_pre = dr * rg * (1.0f - rg);
            const float dz_pre = dz * zg * (1.0f - zg);
            if (need_gi) {
              dgi[j] += dr_pre;
              dgi[h + j] += dz_pre;
              dgi[2 * h + j] += dn_pre;
            }
            if (need_gh) {
              dgh[j] += dr_pre;
              dgh[h + j] += dz_pre;
              dgh[2 * h + j] += dn_pre * rg;
            }
            if (need_hp) dhp[j] += dh * zg;
          }
        }
      });
}

}  // namespace tpr::nn
