#include "nn/modules.h"

#include <cmath>

namespace tpr::nn {

Status Module::CopyParamsFrom(const Module& other) {
  auto dst = Parameters();
  auto src = other.Parameters();
  if (dst.size() != src.size()) {
    return Status::InvalidArgument("parameter count mismatch");
  }
  for (size_t i = 0; i < dst.size(); ++i) {
    if (!dst[i].value().SameShape(src[i].value())) {
      return Status::InvalidArgument("parameter shape mismatch at index " +
                                     std::to_string(i));
    }
    dst[i].mutable_value() = src[i].value();
  }
  return Status::OK();
}

Var XavierParam(int rows, int cols, Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(rows + cols));
  return UniformParam(rows, cols, bound, rng);
}

Var UniformParam(int rows, int cols, float bound, Rng& rng) {
  Tensor t(rows, cols);
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.Uniform(-bound, bound));
  }
  return Var::Leaf(std::move(t), /*requires_grad=*/true);
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

Linear::Linear(int in_features, int out_features, Rng& rng, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(XavierParam(in_features, out_features, rng)) {
  if (bias) bias_ = Var::Leaf(Tensor(1, out_features), /*requires_grad=*/true);
}

Var Linear::Forward(const Var& x) const {
  if (bias_.defined()) return Affine(x, weight_, bias_);
  return MatMul(x, weight_);
}

std::vector<Var> Linear::Parameters() const {
  std::vector<Var> params = {weight_};
  if (bias_.defined()) params.push_back(bias_);
  return params;
}

// ---------------------------------------------------------------------------
// Embedding
// ---------------------------------------------------------------------------

Embedding::Embedding(int num_embeddings, int dim, Rng& rng)
    : num_embeddings_(num_embeddings),
      dim_(dim),
      table_(UniformParam(num_embeddings, dim,
                          1.0f / std::sqrt(static_cast<float>(dim)), rng)) {}

Var Embedding::Forward(const std::vector<int>& ids) const {
  return Gather(table_, ids);
}

std::vector<Var> Embedding::Parameters() const { return {table_}; }

// ---------------------------------------------------------------------------
// LSTM
// ---------------------------------------------------------------------------

LstmLayer::LstmLayer(int input_size, int hidden_size, Rng& rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      w_ih_(XavierParam(input_size, 4 * hidden_size, rng)),
      w_hh_(XavierParam(hidden_size, 4 * hidden_size, rng)),
      bias_(Var::Leaf(Tensor(1, 4 * hidden_size), /*requires_grad=*/true)) {
  // Initialise the forget-gate bias to 1 (standard trick for gradient flow).
  Tensor& b = bias_.mutable_value();
  for (int j = hidden_size; j < 2 * hidden_size; ++j) b.at(0, j) = 1.0f;
}

Var LstmLayer::Forward(const Var& sequence) const {
  TPR_CHECK(sequence.cols() == input_size_);
  const int steps = sequence.rows();
  const int h = hidden_size_;
  Var h_prev = Var::Leaf(Tensor(1, h));
  Var c_prev = Var::Leaf(Tensor(1, h));
  kern::ArenaVector<Var> outputs;
  outputs.reserve(steps);
  for (int t = 0; t < steps; ++t) {
    Var row_t = SliceRow(sequence, t);
    Var gates = AffineSum(row_t, w_ih_, h_prev, w_hh_, bias_);
    // Fused cell: [h_t | c_t] in one node instead of ten.
    Var hc = LstmCellOp(gates, c_prev);
    Var h_t = SliceCols(hc, 0, h);
    Var c_t = SliceCols(hc, h, h);
    outputs.push_back(h_t);
    h_prev = h_t;
    c_prev = c_t;
  }
  return ConcatRows(outputs);
}

PaddedBatch LstmLayer::ForwardBatch(const PaddedBatch& in) const {
  TPR_CHECK(in.data.cols() == input_size_);
  TPR_CHECK(in.batch > 0 && in.data.rows() == in.rows());
  const int B = in.batch;
  const int h = hidden_size_;
  Var h_prev = Var::Leaf(Tensor(B, h));
  Var c_prev = Var::Leaf(Tensor(B, h));
  kern::ArenaVector<Var> outputs;
  outputs.reserve(in.max_len);
  for (int t = 0; t < in.max_len; ++t) {
    Var x_t = SliceRows(in.data, t * B, B);
    Var gates = AffineSum(x_t, w_ih_, h_prev, w_hh_, bias_);
    Var hc = LstmCellOp(gates, c_prev);
    Var h_t = SliceCols(hc, 0, h);
    Var c_t = SliceCols(hc, h, h);
    outputs.push_back(h_t);
    h_prev = h_t;
    c_prev = c_t;
  }
  PaddedBatch out;
  out.data = ConcatRows(outputs);
  out.lengths = in.lengths;
  out.batch = B;
  out.max_len = in.max_len;
  return out;
}

std::vector<Var> LstmLayer::Parameters() const { return {w_ih_, w_hh_, bias_}; }

Lstm::Lstm(int input_size, int hidden_size, int num_layers, Rng& rng)
    : hidden_size_(hidden_size) {
  TPR_CHECK(num_layers >= 1);
  layers_.reserve(num_layers);
  layers_.emplace_back(input_size, hidden_size, rng);
  for (int l = 1; l < num_layers; ++l) {
    layers_.emplace_back(hidden_size, hidden_size, rng);
  }
}

Var Lstm::Forward(const Var& sequence) const {
  Var x = sequence;
  for (const auto& layer : layers_) x = layer.Forward(x);
  return x;
}

PaddedBatch Lstm::ForwardBatch(const PaddedBatch& in) const {
  PaddedBatch x = in;
  for (const auto& layer : layers_) x = layer.ForwardBatch(x);
  return x;
}

std::vector<Var> Lstm::Parameters() const {
  std::vector<Var> params;
  for (const auto& layer : layers_) {
    auto p = layer.Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

// ---------------------------------------------------------------------------
// GRU
// ---------------------------------------------------------------------------

GruLayer::GruLayer(int input_size, int hidden_size, Rng& rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      w_ih_(XavierParam(input_size, 3 * hidden_size, rng)),
      w_hh_(XavierParam(hidden_size, 3 * hidden_size, rng)),
      b_ih_(Var::Leaf(Tensor(1, 3 * hidden_size), /*requires_grad=*/true)),
      b_hh_(Var::Leaf(Tensor(1, 3 * hidden_size), /*requires_grad=*/true)) {}

Var GruLayer::Forward(const Var& sequence) const {
  TPR_CHECK(sequence.cols() == input_size_);
  const int steps = sequence.rows();
  const int h = hidden_size_;
  Var h_prev = Var::Leaf(Tensor(1, h));
  kern::ArenaVector<Var> outputs;
  outputs.reserve(steps);
  for (int t = 0; t < steps; ++t) {
    Var row_t = SliceRow(sequence, t);
    Var gi = Affine(row_t, w_ih_, b_ih_);
    Var gh = Affine(h_prev, w_hh_, b_hh_);
    // Fused cell: h_t = (1 - z) * n + z * h_prev with r/z/n computed
    // in one pass over the gate preactivations.
    Var h_t = GruCellOp(gi, gh, h_prev);
    outputs.push_back(h_t);
    h_prev = h_t;
  }
  return ConcatRows(outputs);
}

PaddedBatch GruLayer::ForwardBatch(const PaddedBatch& in) const {
  TPR_CHECK(in.data.cols() == input_size_);
  TPR_CHECK(in.batch > 0 && in.data.rows() == in.rows());
  const int B = in.batch;
  const int h = hidden_size_;
  Var h_prev = Var::Leaf(Tensor(B, h));
  kern::ArenaVector<Var> outputs;
  outputs.reserve(in.max_len);
  for (int t = 0; t < in.max_len; ++t) {
    Var x_t = SliceRows(in.data, t * B, B);
    Var gi = Affine(x_t, w_ih_, b_ih_);
    Var gh = Affine(h_prev, w_hh_, b_hh_);
    Var h_t = GruCellOp(gi, gh, h_prev);
    outputs.push_back(h_t);
    h_prev = h_t;
  }
  PaddedBatch out;
  out.data = ConcatRows(outputs);
  out.lengths = in.lengths;
  out.batch = B;
  out.max_len = in.max_len;
  return out;
}

std::vector<Var> GruLayer::Parameters() const {
  return {w_ih_, w_hh_, b_ih_, b_hh_};
}

// ---------------------------------------------------------------------------
// MLP
// ---------------------------------------------------------------------------

Mlp::Mlp(const std::vector<int>& dims, Rng& rng) {
  TPR_CHECK(dims.size() >= 2);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Var Mlp::Forward(const Var& x) const {
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = Relu(h);
  }
  return h;
}

std::vector<Var> Mlp::Parameters() const {
  std::vector<Var> params;
  for (const auto& layer : layers_) {
    auto p = layer.Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

}  // namespace tpr::nn
