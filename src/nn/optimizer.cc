#include "nn/optimizer.h"

#include <chrono>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tpr::nn {

float Optimizer::ClipGradNorm(float max_norm) {
  double total = 0.0;
  for (const auto& p : params_) {
    const Tensor& g = p.grad();
    for (size_t i = 0; i < g.size(); ++i) {
      total += static_cast<double>(g[i]) * g[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (obs::MetricsEnabled()) {
    obs::GetHistogram("nn.grad_norm",
                      {1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 2, 5, 10, 50, 1e3, 1e6})
        .Observe(norm);
    obs::GetGauge("nn.last_grad_norm").Set(norm);
  }
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& p : params_) {
      if (p.grad().empty()) continue;
      Tensor& g = const_cast<Tensor&>(p.grad());
      for (size_t i = 0; i < g.size(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

void Sgd::Step() {
  for (auto& p : params_) {
    const Tensor& g = p.grad();
    if (g.empty()) continue;
    Tensor& w = p.mutable_value();
    for (size_t i = 0; i < w.size(); ++i) {
      float grad = g[i];
      if (weight_decay_ != 0.0f) grad += weight_decay_ * w[i];
      w[i] -= lr_ * grad;
    }
  }
}

Adam::Adam(std::vector<Var> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::Step() {
  obs::ScopedSpan span("nn.adam_step");
  const bool observe = obs::MetricsEnabled();
  const auto start = observe ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point();
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    const Tensor& g = params_[k].grad();
    if (g.empty()) continue;
    Tensor& w = params_[k].mutable_value();
    Tensor& m = m_[k];
    Tensor& v = v_[k];
    for (size_t i = 0; i < w.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
  if (observe) {
    obs::GetCounter("nn.adam_steps").Add();
    obs::GetHistogram("nn.adam_step_seconds")
        .Observe(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count());
    double norm = 0.0;
    for (const auto& p : params_) {
      const Tensor& w = p.value();
      for (size_t i = 0; i < w.size(); ++i) {
        norm += static_cast<double>(w[i]) * w[i];
      }
    }
    obs::GetGauge("nn.param_norm").Set(std::sqrt(norm));
  }
}

AdamState Adam::ExportState() const {
  AdamState state;
  state.t = t_;
  state.m = m_;
  state.v = v_;
  return state;
}

Status Adam::ImportState(AdamState state) {
  if (state.m.size() != params_.size() ||
      state.v.size() != params_.size()) {
    return Status::FailedPrecondition(
        "Adam state holds " + std::to_string(state.m.size()) +
        " moment tensors, optimizer has " + std::to_string(params_.size()) +
        " parameters");
  }
  for (size_t k = 0; k < params_.size(); ++k) {
    if (!state.m[k].SameShape(params_[k].value()) ||
        !state.v[k].SameShape(params_[k].value())) {
      return Status::FailedPrecondition(
          "Adam moment shape mismatch at parameter " + std::to_string(k));
    }
  }
  t_ = state.t;
  m_ = std::move(state.m);
  v_ = std::move(state.v);
  return Status::OK();
}

}  // namespace tpr::nn
