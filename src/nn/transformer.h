#ifndef TPR_NN_TRANSFORMER_H_
#define TPR_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/modules.h"

namespace tpr::nn {

/// Single-head scaled dot-product self-attention over a (T x d) sequence.
/// Returns a (T x d_out) sequence.
class SelfAttention : public Module {
 public:
  SelfAttention(int input_dim, int attention_dim, Rng& rng);

  Var Forward(const Var& sequence) const;

  /// Padded-batch attention. The q/k/v projections run as one GEMM over
  /// the whole padded batch (the batching win); scores and the masked
  /// softmax then run per sequence, attending over that sequence's first
  /// lengths[b] positions only. Returns the time-major (rows x d_out)
  /// payload; valid rows are bitwise equal to the per-sequence Forward
  /// under the scalar kernel (see padded_batch.h).
  Var ForwardBatch(const PaddedBatch& in) const;

  std::vector<Var> Parameters() const override;

  int attention_dim() const { return attention_dim_; }

 private:
  int input_dim_;
  int attention_dim_;
  Linear query_;
  Linear key_;
  Linear value_;
};

/// A small pre-norm-free transformer encoder block: self-attention with a
/// residual connection followed by a position-wise feed-forward layer with
/// a residual connection. Kept deliberately minimal (no layer norm — at
/// these depths tanh-bounded activations stay stable) so it can serve as
/// the drop-in "more advanced sequential model" the paper mentions as an
/// alternative to the LSTM (Section IV-C).
class TransformerBlock : public Module {
 public:
  TransformerBlock(int dim, int ff_dim, Rng& rng);

  Var Forward(const Var& sequence) const;

  /// Padded-batch variant: masked attention + the position-wise residual
  /// feed-forward applied to every (valid or padded) row.
  PaddedBatch ForwardBatch(const PaddedBatch& in) const;

  std::vector<Var> Parameters() const override;

 private:
  SelfAttention attention_;
  Linear ff1_;
  Linear ff2_;
};

/// Stacked transformer encoder with an input projection and sinusoidal
/// position encodings, mirroring the Lstm interface: (T x input) ->
/// (T x hidden).
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(int input_dim, int hidden_dim, int num_layers, Rng& rng);

  Var Forward(const Var& sequence) const;

  /// Padded-batch variant of Forward: per-row input projection, the
  /// per-timestep position encoding broadcast across the batch, then the
  /// masked blocks.
  PaddedBatch ForwardBatch(const PaddedBatch& in) const;

  std::vector<Var> Parameters() const override;

  int hidden_size() const { return hidden_dim_; }

 private:
  /// (T x hidden) sinusoidal position encoding.
  Tensor PositionEncoding(int steps) const;

  int hidden_dim_;
  Linear input_proj_;
  std::vector<TransformerBlock> blocks_;
};

}  // namespace tpr::nn

#endif  // TPR_NN_TRANSFORMER_H_
