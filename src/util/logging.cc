#include "util/logging.h"

namespace tpr {
namespace {

LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_level) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace tpr
