#include "util/table_printer.h"

#include <cstdio>

#include "util/logging.h"

namespace tpr {
namespace {
const char* kSeparatorTag = "\x01sep";
}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  TPR_CHECK(row.size() == header_.size())
      << "row arity " << row.size() << " != header arity " << header_.size();
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.push_back({kSeparatorTag}); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorTag) continue;
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  auto hline = [&]() {
    std::string s = "+";
    for (size_t w : widths) {
      s.append(w + 2, '-');
      s += "+";
    }
    s += "\n";
    return s;
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      s += " " + row[c];
      s.append(widths[c] - row[c].size() + 1, ' ');
      s += "|";
    }
    s += "\n";
    return s;
  };

  std::string out = hline();
  out += render_row(header_);
  out += hline();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorTag) {
      out += hline();
    } else {
      out += render_row(row);
    }
  }
  out += hline();
  return out;
}

std::string TablePrinter::Num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace tpr
