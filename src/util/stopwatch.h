#ifndef TPR_UTIL_STOPWATCH_H_
#define TPR_UTIL_STOPWATCH_H_

#include <chrono>

namespace tpr {

/// Wall-clock stopwatch for coarse experiment timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tpr

#endif  // TPR_UTIL_STOPWATCH_H_
