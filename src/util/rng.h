#ifndef TPR_UTIL_RNG_H_
#define TPR_UTIL_RNG_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

namespace tpr {

/// Deterministic, fast pseudo-random number generator (xoshiro256**),
/// seeded via splitmix64. Used everywhere instead of std::mt19937 so that
/// experiment results are reproducible across platforms and standard
/// library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) { return NextU64() % n; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(static_cast<uint64_t>(i)));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples an index from an unnormalised non-negative weight vector.
  /// Returns weights.size() - 1 if rounding leaves residual mass.
  size_t SampleDiscrete(const std::vector<double>& weights);

  /// The full 256-bit generator state, for checkpointing. A generator
  /// restored from this state reproduces the exact draw sequence the
  /// original would have produced (there is no hidden carry state: every
  /// draw, including Gaussian(), is a pure function of s_).
  std::array<uint64_t, 4> Serialize() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void Restore(const std::array<uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state[i];
    // Guard against a hand-crafted all-zero state, as in Seed().
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

 private:
  uint64_t s_[4];
};

/// Deterministically mixes two 64-bit values into a well-distributed seed
/// (splitmix64 finaliser). Used to derive independent per-item RNG
/// streams — per shard, per trajectory, per walk — from one base seed, so
/// parallel loops produce the same output for any thread count.
uint64_t MixSeed(uint64_t a, uint64_t b);

}  // namespace tpr

#endif  // TPR_UTIL_RNG_H_
