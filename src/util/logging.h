#ifndef TPR_UTIL_LOGGING_H_
#define TPR_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tpr {

/// Log severity levels; messages below the global threshold are dropped.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that will be printed. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink: accumulates a line and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Fatal variant: prints and aborts the process.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace tpr

#define TPR_LOG(level)                                                  \
  ::tpr::internal_logging::LogMessage(::tpr::LogLevel::k##level, __FILE__, \
                                      __LINE__)

#define TPR_FATAL() ::tpr::internal_logging::FatalLogMessage(__FILE__, __LINE__)

/// Invariant check that is active in all build modes. Use for conditions
/// whose violation indicates a bug in this library, not bad user input
/// (user input errors return Status instead).
#define TPR_CHECK(cond)                                       \
  if (!(cond)) TPR_FATAL() << "Check failed: " #cond " "

#endif  // TPR_UTIL_LOGGING_H_
