#include "util/status.h"

namespace tpr {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace tpr
