#ifndef TPR_UTIL_TABLE_PRINTER_H_
#define TPR_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace tpr {

/// Renders aligned ASCII tables in the style of the paper's result tables.
/// Used by the bench binaries to print one table per experiment.
///
///   TablePrinter t({"Method", "MAE", "MARE", "MAPE"});
///   t.AddRow({"WSCCL", "31.66", "0.14", "21.39"});
///   std::cout << t.ToString();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Inserts a horizontal separator before the next row.
  void AddSeparator();

  /// Renders the full table with column alignment and borders.
  std::string ToString() const;

  /// Formats a double with the given number of decimals.
  static std::string Num(double v, int decimals = 2);

 private:
  std::vector<std::string> header_;
  // Each row is either a data row or the sentinel {"--"} for a separator.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tpr

#endif  // TPR_UTIL_TABLE_PRINTER_H_
