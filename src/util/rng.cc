#include "util/rng.h"

namespace tpr {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
  // Avoid the all-zero state, which xoshiro cannot escape.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Gaussian() {
  // Box-Muller; draw until u1 is nonzero to keep log() finite.
  double u1 = Uniform();
  while (u1 <= 0.0) u1 = Uniform();
  const double u2 = Uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

uint64_t MixSeed(uint64_t a, uint64_t b) {
  uint64_t x = a ^ (b * 0x9E3779B97F4A7C15ULL + 0x2545F4914F6CDD1DULL);
  return SplitMix64(x);
}

size_t Rng::SampleDiscrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

}  // namespace tpr
