#ifndef TPR_UTIL_STATUS_H_
#define TPR_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace tpr {

/// Error codes used across the library. Mirrors the RocksDB convention of
/// returning a Status object rather than throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kResourceExhausted,   // admission refused: queue full, quota spent
  kDeadlineExceeded,    // request deadline elapsed before completion
  kUnavailable,         // transiently unusable: breaker open, shutting down
  kCancelled,           // caller or shutdown cancelled the work
  kDataLoss,            // unrecoverable corruption: NaN cascade, bad bytes
};

/// A Status encapsulates the result of an operation: success, or an error
/// code plus a human-readable message. All fallible public APIs in this
/// library return Status or StatusOr<T>; exceptions are never thrown.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of a
/// non-ok StatusOr is a programming error (checked via assert in debug).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-ok Status from an expression to the caller.
#define TPR_RETURN_IF_ERROR(expr)          \
  do {                                     \
    ::tpr::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

}  // namespace tpr

#endif  // TPR_UTIL_STATUS_H_
