#include "fault/fault.h"

#include <atomic>
#include <charconv>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/rng.h"

namespace tpr::fault {
namespace {

// The active plan plus per-site call counters, swapped atomically as one
// unit so a query never sees a new plan with old counters. Leaked (like
// the obs registry) so exit-time queries from atexit hooks stay safe.
struct ActivePlan {
  FaultPlan plan;
  // One counter per rule, same order as plan.rules().
  std::unique_ptr<std::atomic<uint64_t>[]> counters;
};

std::mutex g_mu;
std::atomic<ActivePlan*> g_active{nullptr};
std::atomic<bool> g_env_loaded{false};

std::function<size_t(size_t)>& CkptKillPoint() {
  static auto* hook = new std::function<size_t(size_t)>();
  return *hook;
}

/// The calling thread's shard scope. A function-local thread_local keeps
/// initialization lazy and exit-safe (queries from atexit hooks see an
/// empty scope, never a destroyed one, because the string is only
/// destroyed with the thread itself).
std::string& ShardScopeStorage() {
  thread_local std::string scope;
  return scope;
}

void Activate(FaultPlan plan) {
  auto* next = new ActivePlan();
  next->counters = std::make_unique<std::atomic<uint64_t>[]>(
      plan.rules().size() == 0 ? 1 : plan.rules().size());
  for (size_t i = 0; i < plan.rules().size(); ++i) next->counters[i] = 0;
  next->plan = std::move(plan);
  std::lock_guard<std::mutex> lock(g_mu);
  // The previous plan is never freed — a concurrent reader may still
  // hold the pointer — but it is parked in a reachable registry so the
  // retention is deliberate to LeakSanitizer too. Plans are tiny
  // test/bench objects.
  static auto* retired = new std::vector<ActivePlan*>();
  if (ActivePlan* prev = g_active.load(std::memory_order_relaxed)) {
    retired->push_back(prev);
  }
  g_active.store(next->plan.empty() ? nullptr : next,
                 std::memory_order_release);
  if (next->plan.empty()) delete next;
}

/// Loads TPR_FAULT exactly once for lazy (library-site) callers.
ActivePlan* LazyActive() {
  ActivePlan* active = g_active.load(std::memory_order_acquire);
  if (active != nullptr) return active;
  if (g_env_loaded.load(std::memory_order_acquire)) return nullptr;
  const Status st = InstallPlanFromEnv();
  if (!st.ok()) {
    TPR_LOG(Error) << "ignoring malformed TPR_FAULT: " << st.ToString();
  }
  return g_active.load(std::memory_order_acquire);
}

/// splitmix64 finalizer over (site hash, seed, key): the pure p-mode
/// verdict function. The site name is hashed so rules decorrelate even
/// with equal seeds.
uint64_t HashSite(std::string_view site) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool PVerdict(const SiteRule& rule, std::string_view site, uint64_t key) {
  if (rule.probability <= 0.0) return false;
  // Qualified rules hash site + scope so shard-targeted rules on the
  // same site decorrelate; bare rules keep the historical verdicts.
  uint64_t h = HashSite(site);
  if (!rule.scope.empty()) h = MixSeed(h, HashSite(rule.scope));
  const uint64_t mixed = MixSeed(MixSeed(h, rule.seed), key);
  // Map the top 53 bits to [0, 1), matching Rng::Uniform's resolution.
  const double u = static_cast<double>(mixed >> 11) * 0x1.0p-53;
  return u < rule.probability;
}

void CountInjected(const SiteRule& rule, std::string_view site,
                   const char* kind) {
  if (!obs::MetricsEnabled()) return;
  std::string name = "fault." + std::string(site);
  if (!rule.scope.empty()) name += "@" + rule.scope;
  obs::GetCounter(name + "." + kind).Add();
}

struct SiteLookup {
  const SiteRule* rule = nullptr;
  std::atomic<uint64_t>* counter = nullptr;
};

SiteLookup Lookup(std::string_view site) {
  ActivePlan* active = LazyActive();
  if (active == nullptr) return {};
  const std::string& scope = ShardScopeStorage();
  const auto& rules = active->plan.rules();
  SiteLookup bare;
  for (size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].site != site) continue;
    if (!rules[i].scope.empty()) {
      if (rules[i].scope == scope) return {&rules[i], &active->counters[i]};
    } else if (bare.rule == nullptr) {
      bare = {&rules[i], &active->counters[i]};
    }
  }
  return bare;
}

bool ParseU64(std::string_view s, uint64_t* out) {
  const char* end = s.data() + s.size();
  auto [p, ec] = std::from_chars(s.data(), end, *out);
  return ec == std::errc() && p == end;
}

bool ParseF64(std::string_view s, double* out) {
  if (s.empty()) return false;
  // std::from_chars<double> is not universally available; strtod with a
  // bounded copy keeps the parser dependency-free.
  std::string buf(s);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

}  // namespace

StatusOr<FaultPlan> FaultPlan::Parse(std::string_view spec) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t semi = spec.find(';', pos);
    std::string_view entry = spec.substr(
        pos, semi == std::string_view::npos ? spec.size() - pos : semi - pos);
    pos = semi == std::string_view::npos ? spec.size() + 1 : semi + 1;
    if (entry.empty()) continue;
    const size_t colon = entry.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument("fault rule needs 'site:options': \"" +
                                     std::string(entry) + "\"");
    }
    SiteRule rule;
    std::string_view site_token = entry.substr(0, colon);
    const size_t at = site_token.find('@');
    if (at != std::string_view::npos) {
      if (at == 0 || at + 1 == site_token.size() ||
          site_token.find('@', at + 1) != std::string_view::npos) {
        return Status::InvalidArgument(
            "fault shard qualifier needs 'site@shard': \"" +
            std::string(site_token) + "\"");
      }
      rule.scope = std::string(site_token.substr(at + 1));
      site_token = site_token.substr(0, at);
    }
    rule.site = std::string(site_token);
    std::string_view opts = entry.substr(colon + 1);
    size_t opos = 0;
    bool any = false;
    while (opos <= opts.size()) {
      const size_t comma = opts.find(',', opos);
      std::string_view opt = opts.substr(
          opos,
          comma == std::string_view::npos ? opts.size() - opos : comma - opos);
      opos = comma == std::string_view::npos ? opts.size() + 1 : comma + 1;
      if (opt.empty()) continue;
      const size_t eq = opt.find('=');
      if (eq == std::string_view::npos) {
        return Status::InvalidArgument("fault option needs 'name=value': \"" +
                                       std::string(opt) + "\"");
      }
      const std::string_view name = opt.substr(0, eq);
      const std::string_view value = opt.substr(eq + 1);
      bool ok = true;
      if (name == "p") {
        ok = ParseF64(value, &rule.probability) && rule.probability >= 0.0 &&
             rule.probability <= 1.0;
      } else if (name == "seed") {
        ok = ParseU64(value, &rule.seed);
      } else if (name == "nth") {
        ok = ParseU64(value, &rule.nth) && rule.nth > 0;
      } else if (name == "after") {
        ok = ParseU64(value, &rule.after);
        rule.has_after = ok;
      } else if (name == "until") {
        ok = ParseU64(value, &rule.until) && rule.until > 0;
      } else if (name == "delay_ms") {
        ok = ParseF64(value, &rule.delay_ms) && rule.delay_ms >= 0.0;
      } else {
        return Status::InvalidArgument("unknown fault option \"" +
                                       std::string(name) + "\"");
      }
      if (!ok) {
        return Status::InvalidArgument("bad fault option value \"" +
                                       std::string(opt) + "\" for site " +
                                       rule.site);
      }
      any = true;
    }
    if (!any) {
      return Status::InvalidArgument("fault rule for " + rule.site +
                                     " has no options");
    }
    if (rule.until > 0 && (!rule.has_after || rule.until <= rule.after)) {
      return Status::InvalidArgument(
          "'until' needs a smaller 'after' on site " + rule.site);
    }
    for (const auto& existing : plan.rules_) {
      if (existing.site == rule.site && existing.scope == rule.scope) {
        return Status::InvalidArgument(
            "duplicate fault rule for site " + rule.site +
            (rule.scope.empty() ? "" : "@" + rule.scope));
      }
    }
    plan.rules_.push_back(std::move(rule));
  }
  return plan;
}

const SiteRule* FaultPlan::Find(std::string_view site,
                                std::string_view scope) const {
  const SiteRule* bare = nullptr;
  for (const auto& rule : rules_) {
    if (rule.site != site) continue;
    if (!rule.scope.empty()) {
      if (rule.scope == scope) return &rule;
    } else if (bare == nullptr) {
      bare = &rule;
    }
  }
  return bare;
}

void InstallPlan(FaultPlan plan) {
  g_env_loaded.store(true, std::memory_order_release);
  Activate(std::move(plan));
}

void ClearPlan() { InstallPlan(FaultPlan()); }

Status InstallPlanFromEnv() {
  g_env_loaded.store(true, std::memory_order_release);
  const char* spec = std::getenv("TPR_FAULT");
  if (spec == nullptr || *spec == '\0') return Status::OK();
  auto plan = FaultPlan::Parse(spec);
  if (!plan.ok()) return plan.status();
  Activate(*std::move(plan));
  return Status::OK();
}

bool PlanActive() { return LazyActive() != nullptr; }

ScopedShard::ScopedShard(std::string_view shard) {
  if (shard.empty()) return;  // leave any outer scope in place
  std::string& storage = ShardScopeStorage();
  prev_ = std::move(storage);
  storage.assign(shard);
  installed_ = true;
}

ScopedShard::~ScopedShard() {
  if (installed_) ShardScopeStorage() = std::move(prev_);
}

std::string_view CurrentShard() { return ShardScopeStorage(); }

bool ShouldFail(std::string_view site, uint64_t key) {
  const SiteLookup hit = Lookup(site);
  if (hit.rule == nullptr) return false;
  const uint64_t call =
      hit.counter->fetch_add(1, std::memory_order_relaxed) + 1;  // 1-based
  bool fail = PVerdict(*hit.rule, site, key);
  if (hit.rule->nth > 0 && call % hit.rule->nth == 0) fail = true;
  if (hit.rule->has_after && call > hit.rule->after &&
      (hit.rule->until == 0 || call <= hit.rule->until)) {
    fail = true;
  }
  if (fail) CountInjected(*hit.rule, site, "injected");
  return fail;
}

bool ShouldFail(std::string_view site) {
  const SiteLookup hit = Lookup(site);
  if (hit.rule == nullptr) return false;
  const uint64_t call =
      hit.counter->fetch_add(1, std::memory_order_relaxed) + 1;
  bool fail = PVerdict(*hit.rule, site, call);
  if (hit.rule->nth > 0 && call % hit.rule->nth == 0) fail = true;
  if (hit.rule->has_after && call > hit.rule->after &&
      (hit.rule->until == 0 || call <= hit.rule->until)) {
    fail = true;
  }
  if (fail) CountInjected(*hit.rule, site, "injected");
  return fail;
}

bool WouldFail(std::string_view site, uint64_t key) {
  const SiteLookup hit = Lookup(site);
  if (hit.rule == nullptr) return false;
  return PVerdict(*hit.rule, site, key);
}

double DelayMs(std::string_view site, uint64_t key) {
  const SiteLookup hit = Lookup(site);
  if (hit.rule == nullptr || hit.rule->delay_ms <= 0.0) return 0.0;
  if (hit.rule->probability > 0.0 && !PVerdict(*hit.rule, site, key)) {
    return 0.0;  // p gates the delay when both are present
  }
  CountInjected(*hit.rule, site, "delays");
  return hit.rule->delay_ms;
}

void SetCkptWriteKillPoint(std::function<size_t(size_t)> hook) {
  std::lock_guard<std::mutex> lock(g_mu);
  CkptKillPoint() = std::move(hook);
}

const std::function<size_t(size_t)>& CkptWriteKillPoint() {
  return CkptKillPoint();
}

}  // namespace tpr::fault
