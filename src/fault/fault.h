#ifndef TPR_FAULT_FAULT_H_
#define TPR_FAULT_FAULT_H_

// Deterministic fault injection (`tpr::fault`).
//
// A FaultPlan maps named call sites to failure rules. Instrumented code
// asks ShouldFail(site[, key]) at the site and turns a `true` into the
// same failure a real fault would produce (an error Status, a dropped
// work item, a forced queue-full). With no plan installed — the default —
// every query is one relaxed atomic load plus a branch, so sites can
// live on hot paths.
//
// Spec grammar (the TPR_FAULT environment variable, or Parse()):
//
//   spec  := site_rule (';' site_rule)*
//   site_rule := site ('@' shard)? ':' option (',' option)*
//   option := 'p=' float        — keyed-probabilistic failure
//           | 'seed=' uint      — decorrelates p-mode across sites/runs
//           | 'nth=' uint       — every nth call to the site fails
//           | 'after=' uint     — every call after the first N fails
//           | 'until=' uint     — bounds after-mode: calls in (after, until]
//                                 fail, later calls recover (outage window)
//           | 'delay_ms=' float — latency injection instead of failure
//
//   TPR_FAULT="encoder-forward:p=0.1;ckpt-read:p=0.1;slow-worker:p=0.05,delay_ms=2"
//   TPR_FAULT="encoder-forward@shard1:p=0.9;rollout-publish@shard1:after=0,until=1"
//
// Shard qualifier. `site@shard` restricts a rule to threads whose active
// shard scope (set with ScopedShard, see below) equals `shard`. A
// qualified rule overrides an unqualified rule for the same site inside
// its scope; threads with no scope — and scopes with no qualified rule —
// fall back to the unqualified rule, so specs without '@' keep today's
// semantics exactly. Qualified p-mode verdicts hash the qualified name,
// so `encoder-forward@shard0` and `encoder-forward@shard1` decorrelate
// even with equal seeds.
//
// Determinism. p-mode decides by hashing (site, seed, key): for a fixed
// spec the verdict for a key is a pure function, independent of thread
// interleaving — callers that pass a stable key (request id, batch
// counter) get bitwise-reproducible failure patterns at any thread
// count. nth/after-modes use a per-site atomic call counter and are
// deterministic only when the site's calls are themselves ordered
// (single-threaded loops, sequential tests). ShouldFail(site) without a
// key uses the call counter as the key.
//
// Sites are just strings; the constants below name the ones instrumented
// today. Every injected failure increments the obs counter
// "fault.<site>.injected" (and delays "fault.<site>.delays").

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace tpr::fault {

// Instrumented sites.
inline constexpr char kAlloc[] = "alloc";                    // serve worker scratch alloc
inline constexpr char kCkptRead[] = "ckpt-read";             // ckpt::ReadFileBytes
inline constexpr char kCkptWrite[] = "ckpt-write";           // ckpt::AtomicWriteFile
inline constexpr char kEncoderForward[] = "encoder-forward"; // serve rung-1/2 forwards
inline constexpr char kQueueFull[] = "queue-full";           // serve admission
inline constexpr char kSlowWorker[] = "slow-worker";         // serve worker latency
inline constexpr char kNanLoss[] = "nan-loss";               // trainer watchdog drills
inline constexpr char kRolloutPublish[] = "rollout-publish"; // rollout manifest publish
inline constexpr char kCanaryRegression[] = "canary-regression";  // serve canary quality drills
inline constexpr char kBatchFlush[] = "batch-flush";         // serve batched rung-0 encode
inline constexpr char kQuantEncode[] = "quant-encode";       // serve int8 rung encode
inline constexpr char kDriftDetect[] = "drift-detect";       // drift detector verdicts
inline constexpr char kRouteDispatch[] = "route-dispatch";   // router shard dispatch

/// Failure rule for one site. A rule may combine modes; the site fails
/// when ANY active mode fires.
struct SiteRule {
  std::string site;
  std::string scope;          // '@' qualifier; empty = matches every thread
  double probability = 0.0;   // p-mode; 0 disables
  uint64_t seed = 0;          // p-mode decorrelation
  uint64_t nth = 0;           // nth-mode; 0 disables
  uint64_t after = 0;         // after-mode; 0 disables (calls are 1-based)
  bool has_after = false;
  uint64_t until = 0;         // after-mode window end; 0 = never recovers
  double delay_ms = 0.0;      // latency injection; 0 disables
};

/// A parsed fault plan: an immutable list of site rules.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses the spec grammar above. Unknown options, malformed numbers,
  /// or empty site names are InvalidArgument — a mistyped TPR_FAULT must
  /// never silently test nothing.
  static StatusOr<FaultPlan> Parse(std::string_view spec);

  bool empty() const { return rules_.empty(); }
  const std::vector<SiteRule>& rules() const { return rules_; }
  /// The rule that applies to `site` under shard scope `scope`: a
  /// matching qualified rule wins, else the unqualified rule, else null.
  const SiteRule* Find(std::string_view site,
                       std::string_view scope = {}) const;

 private:
  std::vector<SiteRule> rules_;
};

/// Installs `plan` process-wide, replacing any previous plan (including
/// one loaded from TPR_FAULT). Thread-safe, but intended for test/bench
/// setup, not concurrent flipping under load.
void InstallPlan(FaultPlan plan);

/// Removes the active plan. Queries return false until a new plan is
/// installed; TPR_FAULT is NOT re-read.
void ClearPlan();

/// Parses TPR_FAULT and installs it. OK (and a no-op) when the variable
/// is unset; InvalidArgument on a malformed spec. Benches and services
/// call this at startup so a bad spec fails loudly; library code that
/// queries a site lazily falls back to the same env load on first use,
/// logging (not throwing) on malformed input.
Status InstallPlanFromEnv();

/// True when a non-empty plan is active. One relaxed atomic load.
bool PlanActive();

/// RAII guard installing a shard scope on the calling thread; site
/// queries made while it lives match `site@shard` rules for that shard.
/// Scopes nest (the previous scope is restored on destruction); an empty
/// shard name is a no-op that leaves any outer scope in place, so
/// components constructed without a shard label compose transparently
/// with a scoped caller (e.g. the router).
class ScopedShard {
 public:
  explicit ScopedShard(std::string_view shard);
  ~ScopedShard();
  ScopedShard(const ScopedShard&) = delete;
  ScopedShard& operator=(const ScopedShard&) = delete;

 private:
  std::string prev_;
  bool installed_ = false;
};

/// The calling thread's active shard scope; empty when none.
std::string_view CurrentShard();

/// Deterministic failure verdict for an explicitly keyed call: p-mode
/// hashes (site, seed, key); nth/after-modes consult the site's call
/// counter (which this query advances). False when no plan is active or
/// the site has no rule. Increments "fault.<site>.injected" on true.
bool ShouldFail(std::string_view site, uint64_t key);

/// Counter-keyed variant: uses the site's (advancing) call count as the
/// p-mode key. For sites with no natural request identity (ckpt reads).
bool ShouldFail(std::string_view site);

/// Pure lookahead for ShouldFail(site, key): same verdict for p-mode,
/// but no counter advance, no metrics, and nth/after-modes are ignored
/// (they are call-order dependent, so a lookahead cannot know them).
/// Lets a coordinator fold keyed failure predictions in a deterministic
/// order (tpr::serve's admission-time circuit breaker).
bool WouldFail(std::string_view site, uint64_t key);

/// Injected latency in milliseconds for (site, key); 0 when none. The
/// caller sleeps — the framework never blocks by itself. Increments
/// "fault.<site>.delays" when non-zero.
double DelayMs(std::string_view site, uint64_t key);

/// Byte-granular kill point for checkpoint writes, migrated here from
/// tpr::ckpt (PR 3). The hook is called once per AtomicWriteFile with
/// the total byte count and returns how many bytes survive the simulated
/// crash (see ckpt/checkpoint.h for the k </=/> size semantics). Pass
/// nullptr to uninstall. Orthogonal to the plan: the ckpt kill-sweep
/// tests need per-byte control that the spec grammar cannot express.
void SetCkptWriteKillPoint(std::function<size_t(size_t size)> hook);

/// The installed kill point (empty function when none).
const std::function<size_t(size_t)>& CkptWriteKillPoint();

}  // namespace tpr::fault

#endif  // TPR_FAULT_FAULT_H_
