#ifndef TPR_NODE2VEC_ALIAS_H_
#define TPR_NODE2VEC_ALIAS_H_

#include <vector>

#include "util/rng.h"

namespace tpr::node2vec {

/// Walker's alias method: O(n) construction, O(1) sampling from a discrete
/// distribution. Used for first-order walk transitions and for the unigram
/// negative-sampling table.
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table from unnormalised non-negative weights.
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index according to the weights.
  size_t Sample(Rng& rng) const;

  bool empty() const { return prob_.empty(); }
  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
};

}  // namespace tpr::node2vec

#endif  // TPR_NODE2VEC_ALIAS_H_
