#include "node2vec/alias.h"

#include "util/logging.h"

namespace tpr::node2vec {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  TPR_CHECK(n > 0);
  double total = 0;
  for (double w : weights) {
    TPR_CHECK(w >= 0);
    total += w;
  }
  TPR_CHECK(total > 0);
  prob_.resize(n);
  alias_.resize(n);
  std::vector<double> scaled(n);
  std::vector<size_t> small, large;
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (size_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (size_t i : small) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

size_t AliasTable::Sample(Rng& rng) const {
  const size_t i = static_cast<size_t>(rng.UniformInt(prob_.size()));
  return rng.Uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace tpr::node2vec
