#include "node2vec/node2vec.h"

#include <cmath>

#include "node2vec/alias.h"
#include "par/thread_pool.h"
#include "util/logging.h"

namespace tpr::node2vec {
namespace {

// Second-order transition weight from (prev -> cur -> next).
double BiasWeight(const graph::Graph& g, int prev, int next, double p,
                  double q, double base_weight) {
  if (next == prev) return base_weight / p;      // return to previous node
  if (g.HasEdge(prev, next)) return base_weight; // distance-1 neighbor
  return base_weight / q;                        // moving outward
}

}  // namespace

double NodeEmbeddings::Cosine(int a, int b) const {
  const auto& va = vectors[a];
  const auto& vb = vectors[b];
  double dot = 0, na = 0, nb = 0;
  for (int i = 0; i < dim; ++i) {
    dot += static_cast<double>(va[i]) * vb[i];
    na += static_cast<double>(va[i]) * va[i];
    nb += static_cast<double>(vb[i]) * vb[i];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0 ? dot / denom : 0.0;
}

std::vector<std::vector<int>> GenerateWalks(const graph::Graph& g,
                                            const Node2VecConfig& cfg,
                                            Rng& rng) {
  const int n = g.num_nodes();
  // First-order alias tables for the initial step of each walk.
  std::vector<AliasTable> first_order(n);
  for (int u = 0; u < n; ++u) {
    const auto& nbrs = g.Neighbors(u);
    if (nbrs.empty()) continue;
    std::vector<double> w;
    w.reserve(nbrs.size());
    for (const auto& [v, weight] : nbrs) w.push_back(weight);
    first_order[u] = AliasTable(w);
  }

  // Shuffles and per-walk seeds are drawn sequentially from the caller's
  // rng, then the walks themselves — each on its own seeded stream —
  // generate in parallel into fixed slots, so the output is identical
  // for any thread count.
  struct PendingWalk {
    int start;
    uint64_t seed;
  };
  std::vector<PendingWalk> pending;
  pending.reserve(static_cast<size_t>(n) * cfg.walks_per_node);
  std::vector<int> starts(n);
  for (int i = 0; i < n; ++i) starts[i] = i;
  for (int r = 0; r < cfg.walks_per_node; ++r) {
    rng.Shuffle(starts);
    for (int start : starts) {
      if (g.Neighbors(start).empty()) continue;
      pending.push_back({start, rng.NextU64()});
    }
  }

  std::vector<std::vector<int>> walks(pending.size());
  par::DefaultPool().ParallelFor(
      static_cast<int>(pending.size()), [&](int t) {
        Rng walk_rng(pending[t].seed);
        std::vector<double> bias_weights;
        std::vector<int> walk;
        walk.reserve(cfg.walk_length);
        walk.push_back(pending[t].start);
        int cur = pending[t].start;
        int prev = -1;
        while (static_cast<int>(walk.size()) < cfg.walk_length) {
          const auto& nbrs = g.Neighbors(cur);
          if (nbrs.empty()) break;
          int next;
          if (prev < 0) {
            next = nbrs[first_order[cur].Sample(walk_rng)].first;
          } else {
            bias_weights.clear();
            bias_weights.reserve(nbrs.size());
            for (const auto& [v, weight] : nbrs) {
              bias_weights.push_back(
                  BiasWeight(g, prev, v, cfg.p, cfg.q, weight));
            }
            next = nbrs[walk_rng.SampleDiscrete(bias_weights)].first;
          }
          walk.push_back(next);
          prev = cur;
          cur = next;
        }
        walks[t] = std::move(walk);
      });
  return walks;
}

StatusOr<NodeEmbeddings> TrainNode2Vec(const graph::Graph& g,
                                       const Node2VecConfig& cfg) {
  const int n = g.num_nodes();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (cfg.dim <= 0 || cfg.walk_length < 2 || cfg.walks_per_node < 1) {
    return Status::InvalidArgument("bad node2vec config");
  }
  Rng rng(cfg.seed);
  const auto walks = GenerateWalks(g, cfg, rng);

  // Unigram^{3/4} negative-sampling table over walk occurrences.
  std::vector<double> freq(n, 0.0);
  for (const auto& walk : walks) {
    for (int node : walk) freq[node] += 1.0;
  }
  for (auto& f : freq) f = std::pow(f + 1.0, 0.75);
  AliasTable negative_table(freq);

  const int d = cfg.dim;
  std::vector<float> in_emb(static_cast<size_t>(n) * d);
  std::vector<float> out_emb(static_cast<size_t>(n) * d, 0.0f);
  const float init = 0.5f / static_cast<float>(d);
  for (auto& x : in_emb) x = static_cast<float>(rng.Uniform(-init, init));

  auto sigmoid = [](float x) {
    return x >= 0 ? 1.0f / (1.0f + std::exp(-x))
                  : std::exp(x) / (1.0f + std::exp(x));
  };

  const size_t total_steps =
      static_cast<size_t>(cfg.epochs) * walks.size();
  size_t step = 0;
  std::vector<float> grad_center(d);

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    for (const auto& walk : walks) {
      const float progress =
          static_cast<float>(step++) / static_cast<float>(total_steps);
      const float lr = cfg.lr * std::max(0.05f, 1.0f - progress);
      const int len = static_cast<int>(walk.size());
      for (int i = 0; i < len; ++i) {
        const int center = walk[i];
        float* vc = in_emb.data() + static_cast<size_t>(center) * d;
        const int lo = std::max(0, i - cfg.window);
        const int hi = std::min(len - 1, i + cfg.window);
        for (int j = lo; j <= hi; ++j) {
          if (j == i) continue;
          const int context = walk[j];
          std::fill(grad_center.begin(), grad_center.end(), 0.0f);
          // One positive plus cfg.negatives sampled negatives.
          for (int s = 0; s <= cfg.negatives; ++s) {
            int target;
            float label;
            if (s == 0) {
              target = context;
              label = 1.0f;
            } else {
              target = static_cast<int>(negative_table.Sample(rng));
              if (target == context) continue;
              label = 0.0f;
            }
            float* vo = out_emb.data() + static_cast<size_t>(target) * d;
            float dot = 0;
            for (int k = 0; k < d; ++k) dot += vc[k] * vo[k];
            const float gscale = (label - sigmoid(dot)) * lr;
            for (int k = 0; k < d; ++k) {
              grad_center[k] += gscale * vo[k];
              vo[k] += gscale * vc[k];
            }
          }
          for (int k = 0; k < d; ++k) vc[k] += grad_center[k];
        }
      }
    }
  }

  NodeEmbeddings result;
  result.dim = d;
  result.vectors.resize(n);
  for (int u = 0; u < n; ++u) {
    result.vectors[u].assign(in_emb.begin() + static_cast<size_t>(u) * d,
                             in_emb.begin() + static_cast<size_t>(u + 1) * d);
  }
  return result;
}

}  // namespace tpr::node2vec
