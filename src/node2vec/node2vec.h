#ifndef TPR_NODE2VEC_NODE2VEC_H_
#define TPR_NODE2VEC_NODE2VEC_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace tpr::node2vec {

/// Hyper-parameters of node2vec (Grover & Leskovec, KDD 2016). The paper
/// applies node2vec to both the road-network topology graph (Eq. 5) and
/// the temporal graph (Eq. 2).
struct Node2VecConfig {
  int dim = 32;             // embedding dimensionality
  int walks_per_node = 4;   // r
  int walk_length = 20;     // l
  double p = 1.0;           // return parameter
  double q = 1.0;           // in-out parameter
  int window = 4;           // skip-gram context window
  int negatives = 4;        // negative samples per positive
  int epochs = 2;           // passes over the walk corpus
  float lr = 0.025f;        // initial SGD learning rate (linearly decayed)
  uint64_t seed = 42;
};

/// Learned embeddings: row i is the vector of node i.
struct NodeEmbeddings {
  int dim = 0;
  std::vector<std::vector<float>> vectors;

  const std::vector<float>& operator[](int node) const {
    return vectors[node];
  }
  int num_nodes() const { return static_cast<int>(vectors.size()); }

  /// Cosine similarity between the embeddings of two nodes.
  double Cosine(int a, int b) const;
};

/// Generates the second-order biased random-walk corpus for a graph.
/// Exposed separately so tests can inspect walk statistics.
std::vector<std::vector<int>> GenerateWalks(const graph::Graph& g,
                                            const Node2VecConfig& cfg,
                                            Rng& rng);

/// Trains node2vec on the graph: biased walks + skip-gram with negative
/// sampling (hand-rolled SGD on two embedding matrices; the input matrix
/// is returned). Returns InvalidArgument for empty graphs or bad config.
StatusOr<NodeEmbeddings> TrainNode2Vec(const graph::Graph& g,
                                       const Node2VecConfig& cfg);

}  // namespace tpr::node2vec

#endif  // TPR_NODE2VEC_NODE2VEC_H_
