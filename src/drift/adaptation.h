#ifndef TPR_DRIFT_ADAPTATION_H_
#define TPR_DRIFT_ADAPTATION_H_

// Drift adaptation: the self-healing half of `tpr::drift`.
//
// The AdaptationController turns a drift detection into a *candidate*
// model generation, never into an incumbent swap — promotion stays the
// rollout controller's call, behind its full gate stack (envelope,
// decode, finiteness, probe budget, int8 twin, canary, auto-rollback).
// The incumbent keeps serving untouched the whole time.
//
// Lifecycle (one explicit Tick() at a time, caller's thread, no threads
// or sleeps of its own — the same tick discipline as tpr::rollout):
//
//   idle ──alarm──▶ fine-tuning ──budget spent──▶ cooldown ──▶ idle
//
//   fine-tuning   warm-starts a WscModel from the LIVE generation's
//                 serve checkpoint (read back through tpr::ckpt), swaps
//                 the feature space's dataset for the fresh post-shift
//                 trajectory window, and trains a heuristic curriculum
//                 over ONLY that fresh pool. After every epoch the full
//                 trainer state (parameters, Adam moments, minibatch
//                 counter, RNG, curriculum stages, fresh-pool
//                 fingerprint) is checkpointed to `finetune_dir`, so a
//                 controller killed at any epoch boundary resumes
//                 bitwise-identically: the published candidate bytes are
//                 the same whether or not the run was interrupted.
//   cooldown      the candidate has been published into the rollout
//                 model dir; the controller waits for the rollout
//                 lineage to resolve it (live / quarantined) before
//                 re-arming. The drift detector is Reset() at publish,
//                 so post-adaptation windows rebuild a fresh baseline.
//
// Determinism: training is bitwise thread-independent (tpr::par), the
// curriculum and probe sampling are seeded, fault verdicts are keyed,
// and time never enters the loop — so the full detect → fine-tune →
// publish trace is identical across runs and thread counts.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/curriculum.h"
#include "core/features.h"
#include "core/probe.h"
#include "core/wsc_trainer.h"
#include "drift/detector.h"
#include "rollout/controller.h"
#include "serve/service.h"
#include "synth/dataset.h"
#include "util/status.h"

namespace tpr::drift {

struct AdaptationConfig {
  /// The rollout-watched ckpt::CheckpointDir: the live generation is
  /// read from here and the fine-tuned candidate is published back into
  /// it (unless `publish_dir` overrides the destination).
  std::string model_dir;

  /// Candidate destination; empty means `model_dir`. A reference run
  /// (tests, the bitwise kill/resume drill) publishes to a scratch dir
  /// so its bytes can be compared against the real candidate's.
  std::string publish_dir;

  /// Where in-flight fine-tune trainer state is checkpointed (its own
  /// CheckpointDir; removed after a successful publish).
  std::string finetune_dir;

  /// Fine-tune trainer config. `wsc.encoder` must architecturally match
  /// the serving encoder config (the warm start copies parameters).
  core::WscConfig wsc;

  /// Curriculum over the fresh pool. Defaults to the cheap heuristic
  /// (edge-count easy-to-hard) — an incremental fine-tune should not
  /// pay for expert difficulty scoring.
  core::CurriculumConfig curriculum{
      core::CurriculumStrategy::kHeuristic, /*num_meta_sets=*/2,
      /*expert_epochs=*/1};

  /// Fine-tune budget: total epochs over the fresh pool. Epoch e runs
  /// curriculum stage e while stages remain, then full-pool epochs.
  int total_epochs = 3;

  /// Epochs executed per Tick() (the caller interleaves ticks with
  /// serving work).
  int epochs_per_tick = 1;

  /// Fresh-probe construction for the rollout quality gate: on launch
  /// the rollout controller's probe set is refreshed to labels sampled
  /// from the fresh (post-shift) dataset, so incumbent and candidate
  /// are both scored on the current world.
  size_t probe_queries = 64;
  uint64_t probe_seed = 7;

  /// Non-zero pins the candidate's generation number (reference runs);
  /// 0 derives max(existing generations) + 1.
  uint64_t forced_candidate_generation = 0;

  /// Shard identity (fleet mode): `shard` scopes the fault sites
  /// touched during Tick (ckpt reads/writes of the fine-tune state) to
  /// `site@shard` rules and is copied onto the detector; a non-empty
  /// `metrics_prefix` namespaces the drift counters/gauges
  /// ("shard0." -> "shard0.drift.publishes") and likewise flows into the
  /// detector config. Empty defaults keep the global names.
  std::string shard;
  std::string metrics_prefix;
};

/// Overlays TPR_DRIFT_EPOCHS / TPR_DRIFT_EPOCHS_PER_TICK onto
/// `defaults` (detector knobs live on DriftDetectorConfig).
AdaptationConfig AdaptationConfigFromEnv(AdaptationConfig defaults);

enum class AdaptState { kIdle = 0, kFineTuning = 1, kCooldown = 2 };

const char* AdaptStateName(AdaptState s);

/// What one Tick() did.
struct AdaptReport {
  std::vector<std::string> events;
  bool published = false;
};

class AdaptationController {
 public:
  /// `service` must outlive the controller and provides the live
  /// generation number. `rollout` may be null (reference runs): then no
  /// probe refresh happens and cooldown resolves immediately.
  AdaptationController(std::shared_ptr<const core::FeatureSpace> features,
                       serve::InferenceService* service,
                       rollout::RolloutController* rollout,
                       const DriftDetectorConfig& detector_config,
                       const AdaptationConfig& config);
  ~AdaptationController();

  AdaptationController(const AdaptationController&) = delete;
  AdaptationController& operator=(const AdaptationController&) = delete;

  /// Feeds one serving-time probe-MAE observation to the detector.
  /// Ignored (returns false) unless idle: while a fine-tune or rollout
  /// resolution is in flight the controller already knows the world
  /// moved. Returns true when this observation raised the alarm.
  bool ObserveProbeMae(double mae);

  /// One control step. `fresh` is the current fresh-trajectory window
  /// (the post-shift stream); it must stay the same object between the
  /// launch of a fine-tune and its publish. The first Tick() also
  /// checks `finetune_dir` for an interrupted run and resumes it —
  /// alarm state is not required to resume, only to launch.
  StatusOr<AdaptReport> Tick(
      const std::shared_ptr<const synth::CityDataset>& fresh);

  /// Launches a fine-tune immediately, without an alarm (reference
  /// runs, tests). FailedPrecondition when not idle or no live model.
  Status ForceStartFineTune(
      const std::shared_ptr<const synth::CityDataset>& fresh);

  AdaptState state() const { return state_; }
  DriftDetector& detector() { return detector_; }
  const DriftDetector& detector() const { return detector_; }
  /// Candidate generation of the in-flight or last-published fine-tune
  /// (0 before any launch).
  uint64_t candidate_generation() const { return candidate_gen_; }
  uint64_t fine_tunes_launched() const { return launches_; }
  uint64_t fine_tunes_published() const { return publishes_; }
  uint64_t fine_tunes_resumed() const { return resumes_; }

  /// Deterministic content fingerprint of a fresh pool; a resume
  /// refuses to continue onto a different window than it started on.
  static uint64_t FingerprintPool(const synth::CityDataset& data);

 private:
  Status StartFineTune(const std::shared_ptr<const synth::CityDataset>& fresh,
                       AdaptReport* report);
  Status TryResume(const std::shared_ptr<const synth::CityDataset>& fresh,
                   AdaptReport* report);
  Status RunEpochs(AdaptReport* report);
  Status PublishCandidate(AdaptReport* report);
  void RefreshRolloutProbe(AdaptReport* report);
  Status SaveFineTuneState() const;
  std::string EncodeFineTuneState() const;

  /// Fresh-window FeatureSpace: the base space's frozen node2vec
  /// embeddings over the post-shift dataset.
  std::shared_ptr<const core::FeatureSpace> FreshFeatures(
      const std::shared_ptr<const synth::CityDataset>& fresh) const;

  const std::shared_ptr<const core::FeatureSpace> base_features_;
  serve::InferenceService* const service_;
  rollout::RolloutController* const rollout_;
  const AdaptationConfig config_;
  const obs::MetricScope metrics_;  // prefix = config_.metrics_prefix
  DriftDetector detector_;

  AdaptState state_ = AdaptState::kIdle;
  bool resume_checked_ = false;

  // In-flight fine-tune state (valid while state_ == kFineTuning, and
  // candidate_gen_ survives into cooldown).
  std::shared_ptr<const synth::CityDataset> fresh_data_;
  std::unique_ptr<core::WscModel> model_;
  std::vector<std::vector<int>> stages_;
  uint64_t candidate_gen_ = 0;
  uint64_t source_gen_ = 0;
  uint64_t pool_fingerprint_ = 0;
  int epochs_done_ = 0;

  uint64_t launches_ = 0;
  uint64_t publishes_ = 0;
  uint64_t resumes_ = 0;
};

}  // namespace tpr::drift

#endif  // TPR_DRIFT_ADAPTATION_H_
