#include "drift/detector.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace tpr::drift {
namespace {

double EnvDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || !std::isfinite(v)) return fallback;
  return v;
}

int EnvInt(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<int>(v);
}

}  // namespace

DriftDetectorConfig DriftDetectorConfigFromEnv(DriftDetectorConfig defaults) {
  defaults.window = EnvInt("TPR_DRIFT_WINDOW", defaults.window);
  defaults.delta = EnvDouble("TPR_DRIFT_DELTA", defaults.delta);
  defaults.lambda = EnvDouble("TPR_DRIFT_LAMBDA", defaults.lambda);
  defaults.min_windows = EnvInt("TPR_DRIFT_MIN_WINDOWS", defaults.min_windows);
  defaults.cooldown_windows =
      EnvInt("TPR_DRIFT_COOLDOWN", defaults.cooldown_windows);
  return defaults;
}

DriftDetector::DriftDetector(const DriftDetectorConfig& config)
    : config_(config), metrics_(config_.metrics_prefix) {
  TPR_CHECK(config_.window > 0);
  TPR_CHECK(config_.min_windows > 0);
  TPR_CHECK(config_.cooldown_windows >= 0);
  TPR_CHECK(config_.delta >= 0.0);
  TPR_CHECK(config_.lambda > 0.0);
}

bool DriftDetector::Observe(double mae) {
  if (!std::isfinite(mae) || mae <= 0.0) {
    mae = std::numeric_limits<double>::min();
  }
  window_sum_ += mae;
  if (++window_count_ < config_.window) return false;
  const double window_mean = window_sum_ / config_.window;
  window_sum_ = 0.0;
  window_count_ = 0;
  return CloseWindow(window_mean);
}

bool DriftDetector::CloseWindow(double window_mean_mae) {
  // Per-instance handles: two detectors in one process (fleet shards)
  // must not fold into whichever instance's prefix resolved first, which
  // is exactly what the former function-local statics did.
  obs::Counter& windows_counter = metrics_.counter("drift.windows");
  obs::Counter& detections_counter = metrics_.counter("drift.detections");
  obs::Gauge& mae_gauge = metrics_.gauge("drift.window_mae");
  obs::Gauge& stat_gauge = metrics_.gauge("drift.ph_statistic");
  obs::Gauge& mean_gauge = metrics_.gauge("drift.baseline_log_mean");

  ++windows_;
  windows_counter.Add();
  mae_gauge.Set(window_mean_mae);
  if (cooldown_left_ > 0) {
    --cooldown_left_;
    return false;
  }
  if (alarmed_) return false;  // sticky: hold until Reset()

  const double x = std::log(window_mean_mae);
  ++run_windows_;
  mean_ += (x - mean_) / static_cast<double>(run_windows_);
  m_ += x - mean_ - config_.delta;
  m_min_ = std::min(m_min_, m_);
  const double stat = m_ - m_min_;
  stat_gauge.Set(stat);
  mean_gauge.Set(mean_);

  bool alarm = run_windows_ >= static_cast<uint64_t>(config_.min_windows) &&
               stat > config_.lambda;
  // The fault site flips the verdict: injected false positives exercise
  // the spurious-fine-tune path, injected false negatives delay
  // detection by a window. Keyed by the monotone window counter, so a
  // p-mode plan yields the same flip pattern on every run.
  bool flipped;
  {
    fault::ScopedShard shard_scope(config_.shard);
    flipped = fault::ShouldFail(fault::kDriftDetect, windows_);
  }
  if (flipped) alarm = !alarm;
  if (alarm) {
    alarmed_ = true;
    ++detections_;
    detections_counter.Add();
  }
  return alarm;
}

void DriftDetector::Reset() {
  window_sum_ = 0.0;
  window_count_ = 0;
  run_windows_ = 0;
  cooldown_left_ = config_.cooldown_windows;
  mean_ = 0.0;
  m_ = 0.0;
  m_min_ = 0.0;
  alarmed_ = false;
}

core::ProbeSet RelabelProbeSet(const core::ProbeSet& base,
                               const synth::TrafficModel& traffic) {
  core::ProbeSet fresh;
  fresh.ridge_lambda = base.ridge_lambda;
  fresh.queries.reserve(base.queries.size());
  for (const core::ProbeQuery& q : base.queries) {
    core::ProbeQuery r = q;
    r.travel_time_s = traffic.PathTravelTime(
        q.path, static_cast<double>(q.depart_time_s));
    fresh.queries.push_back(std::move(r));
  }
  return fresh;
}

}  // namespace tpr::drift
