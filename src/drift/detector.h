#ifndef TPR_DRIFT_DETECTOR_H_
#define TPR_DRIFT_DETECTOR_H_

// Serving-time drift detection (`tpr::drift`).
//
// The detector watches the golden-probe travel-time MAE — the same
// deterministic quality signal the rollout gates score candidates on —
// and raises an alarm when it climbs persistently, via a windowed
// Page–Hinkley test in log space:
//
//   observations are averaged into windows of `window` samples; for
//   each closed window with mean u_w, the test tracks
//     x_w   = ln(u_w)
//     mean  = running mean of x_1..x_w
//     m_w   = m_{w-1} + (x_w - mean - delta)
//     PH_w  = m_w - min(m_1..m_w)
//   and alarms when PH_w > lambda after at least `min_windows` windows.
//
// Working in ln(MAE) makes delta/lambda relative: delta is the tolerated
// fractional growth per window (drift allowance), lambda the cumulative
// fractional excess that constitutes drift — so one threshold setting
// works at any MAE scale. Everything is pure sequential arithmetic over
// the observation stream: the statistic is bitwise identical at any
// thread count because thread count never enters the computation.
//
// The verdict of every closed window passes through the `drift-detect`
// fault site: an injected fault flips it, yielding deterministic false
// positives (spurious fine-tunes the rollout gates must absorb) and
// false negatives (missed windows the next window must catch).

#include <cstdint>
#include <string>

#include "core/probe.h"
#include "obs/metrics.h"
#include "synth/traffic_model.h"

namespace tpr::drift {

/// Detector thresholds. Deterministic and config-driven; `FromEnv`
/// overlays the TPR_DRIFT_* environment knobs.
struct DriftDetectorConfig {
  /// Probe-MAE observations averaged into one window.
  int window = 4;

  /// Page–Hinkley drift allowance per window, in log-MAE units
  /// (0.01 tolerates ~1% MAE growth per window).
  double delta = 0.01;

  /// Alarm threshold on the PH statistic, in log-MAE units
  /// (0.25 alarms on ~28% cumulative MAE excess over the baseline).
  double lambda = 0.25;

  /// Windows observed before alarms may fire (baseline warm-up).
  int min_windows = 3;

  /// Windows ignored entirely after Reset() (post-adaptation settling).
  int cooldown_windows = 1;

  /// Obs namespace for this detector's metrics ("shard0." ->
  /// "shard0.drift.windows"). Per-instance — two detectors in one
  /// process with distinct prefixes record independently; the empty
  /// default keeps the historical global names.
  std::string metrics_prefix;

  /// Shard scope installed around each window's `drift-detect` fault
  /// verdict so `drift-detect@shardK` rules target one detector.
  std::string shard;
};

/// Overlays TPR_DRIFT_WINDOW / TPR_DRIFT_DELTA / TPR_DRIFT_LAMBDA /
/// TPR_DRIFT_MIN_WINDOWS / TPR_DRIFT_COOLDOWN onto `defaults`.
/// Malformed values are ignored (the default survives).
DriftDetectorConfig DriftDetectorConfigFromEnv(
    DriftDetectorConfig defaults = {});

/// Windowed Page–Hinkley detector over probe-MAE observations. Not
/// thread-safe: feed it from one control thread (determinism depends on
/// observation order, which is the caller's to fix).
class DriftDetector {
 public:
  explicit DriftDetector(const DriftDetectorConfig& config);

  /// Feeds one probe-MAE observation (must be > 0 and finite; anything
  /// else is clamped to the smallest positive normal). Returns true
  /// exactly when this observation closes a window whose — possibly
  /// fault-flipped — verdict raises the alarm. The alarm is sticky:
  /// once raised, further windows are not scored until Reset().
  bool Observe(double mae);

  /// Restarts the baseline (new world after an adaptation) and enters
  /// the cooldown: the next `cooldown_windows` windows are dropped.
  void Reset();

  bool alarmed() const { return alarmed_; }
  double statistic() const { return m_ - m_min_; }
  double baseline_log_mean() const { return mean_; }
  /// Closed windows since construction (monotone; fault-site key).
  uint64_t windows() const { return windows_; }
  uint64_t detections() const { return detections_; }
  const DriftDetectorConfig& config() const { return config_; }

 private:
  bool CloseWindow(double window_mean_mae);

  DriftDetectorConfig config_;
  obs::MetricScope metrics_;  // prefix = config_.metrics_prefix
  double window_sum_ = 0.0;
  int window_count_ = 0;
  uint64_t windows_ = 0;         // all closed windows, never reset
  uint64_t run_windows_ = 0;     // closed windows since last Reset
  int cooldown_left_ = 0;
  double mean_ = 0.0;            // running mean of ln(window MAE)
  double m_ = 0.0;               // PH cumulative deviation
  double m_min_ = 0.0;           // running min of m_
  bool alarmed_ = false;
  uint64_t detections_ = 0;
};

/// Relabels `base`'s probe queries with noise-free travel times under
/// `traffic` — the serving-time ground truth of the current (possibly
/// shifted) regime, on the same fixed query paths/departures.
core::ProbeSet RelabelProbeSet(const core::ProbeSet& base,
                               const synth::TrafficModel& traffic);

}  // namespace tpr::drift

#endif  // TPR_DRIFT_DETECTOR_H_
