#include "drift/adaptation.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <numeric>
#include <utility>

#include "ckpt/checkpoint.h"
#include "ckpt/serialize.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/rng.h"

namespace tpr::drift {
namespace {

constexpr char kStateTag[] = "tpr-drift-finetune";
constexpr uint32_t kStateVersion = 1;

int EnvInt(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<int>(v);
}

std::vector<int> AllIndices(const synth::CityDataset& data) {
  std::vector<int> indices(data.unlabeled.size());
  std::iota(indices.begin(), indices.end(), 0);
  return indices;
}

void RemoveStateDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);  // best effort
}

}  // namespace

AdaptationConfig AdaptationConfigFromEnv(AdaptationConfig defaults) {
  defaults.total_epochs = EnvInt("TPR_DRIFT_EPOCHS", defaults.total_epochs);
  defaults.epochs_per_tick =
      EnvInt("TPR_DRIFT_EPOCHS_PER_TICK", defaults.epochs_per_tick);
  return defaults;
}

const char* AdaptStateName(AdaptState s) {
  switch (s) {
    case AdaptState::kIdle: return "idle";
    case AdaptState::kFineTuning: return "fine-tuning";
    case AdaptState::kCooldown: return "cooldown";
  }
  return "unknown";
}

AdaptationController::AdaptationController(
    std::shared_ptr<const core::FeatureSpace> features,
    serve::InferenceService* service, rollout::RolloutController* rollout,
    const DriftDetectorConfig& detector_config, const AdaptationConfig& config)
    : base_features_(std::move(features)),
      service_(service),
      rollout_(rollout),
      config_(config),
      metrics_(config_.metrics_prefix),
      detector_([&] {
        // The shard identity flows into the detector so its metrics and
        // drift-detect fault verdicts carry the same namespace.
        DriftDetectorConfig dc = detector_config;
        if (dc.metrics_prefix.empty()) dc.metrics_prefix = config.metrics_prefix;
        if (dc.shard.empty()) dc.shard = config.shard;
        return dc;
      }()) {
  TPR_CHECK(base_features_ != nullptr);
  TPR_CHECK(service_ != nullptr);
  TPR_CHECK(!config_.model_dir.empty());
  TPR_CHECK(!config_.finetune_dir.empty());
  TPR_CHECK(config_.total_epochs > 0);
  TPR_CHECK(config_.epochs_per_tick > 0);
}

AdaptationController::~AdaptationController() = default;

uint64_t AdaptationController::FingerprintPool(const synth::CityDataset& data) {
  uint64_t h = MixSeed(0xD21F7A5EULL, data.unlabeled.size());
  for (const auto& s : data.unlabeled) {
    h = MixSeed(h, static_cast<uint64_t>(s.depart_time_s));
    for (int e : s.path) {
      h = MixSeed(h, static_cast<uint64_t>(static_cast<uint32_t>(e)) + 1);
    }
  }
  return h;
}

bool AdaptationController::ObserveProbeMae(double mae) {
  if (state_ != AdaptState::kIdle) return false;
  return detector_.Observe(mae);
}

std::shared_ptr<const core::FeatureSpace> AdaptationController::FreshFeatures(
    const std::shared_ptr<const synth::CityDataset>& fresh) const {
  // The frozen node2vec embeddings carry over — the network topology did
  // not change — while the dataset (trajectories, traffic, weak labels)
  // is the fresh post-shift window the trainer learns from.
  auto fs = std::make_shared<core::FeatureSpace>(*base_features_);
  fs->data = fresh;
  return fs;
}

StatusOr<AdaptReport> AdaptationController::Tick(
    const std::shared_ptr<const synth::CityDataset>& fresh) {
  TPR_CHECK(fresh != nullptr);
  fault::ScopedShard shard_scope(config_.shard);
  AdaptReport report;
  if (!resume_checked_) {
    resume_checked_ = true;
    TPR_RETURN_IF_ERROR(TryResume(fresh, &report));
  }
  switch (state_) {
    case AdaptState::kIdle: {
      if (detector_.alarmed()) {
        TPR_RETURN_IF_ERROR(StartFineTune(fresh, &report));
      }
      break;
    }
    case AdaptState::kFineTuning: {
      TPR_RETURN_IF_ERROR(RunEpochs(&report));
      break;
    }
    case AdaptState::kCooldown: {
      bool resolved = rollout_ == nullptr;
      if (rollout_ != nullptr) {
        const rollout::ModelRecord* rec =
            rollout_->manifest().Find(candidate_gen_);
        resolved = rec != nullptr &&
                   (rec->state == rollout::ModelState::kLive ||
                    rec->state == rollout::ModelState::kRetired ||
                    rec->state == rollout::ModelState::kQuarantined);
      }
      if (resolved) {
        state_ = AdaptState::kIdle;
        report.events.push_back("cooldown resolved: candidate gen " +
                                std::to_string(candidate_gen_) +
                                " reached a terminal rollout state");
      }
      break;
    }
  }
  metrics_.gauge("drift.adapt_state")
      .Set(static_cast<double>(static_cast<int>(state_)));
  return report;
}

Status AdaptationController::ForceStartFineTune(
    const std::shared_ptr<const synth::CityDataset>& fresh) {
  if (state_ != AdaptState::kIdle) {
    return Status::FailedPrecondition("adaptation already in flight");
  }
  resume_checked_ = true;  // an explicit launch supersedes stale state
  AdaptReport report;
  return StartFineTune(fresh, &report);
}

Status AdaptationController::StartFineTune(
    const std::shared_ptr<const synth::CityDataset>& fresh,
    AdaptReport* report) {
  obs::Counter& launches = metrics_.counter("drift.finetune_launches");
  const uint64_t source_gen = service_->model_generation();
  if (source_gen == 0) {
    return Status::FailedPrecondition(
        "drift adaptation needs a live generation to warm-start from");
  }
  ckpt::CheckpointDir model_dir(config_.model_dir);
  auto bytes = ckpt::ReadFileBytes(model_dir.PathFor(source_gen));
  if (!bytes.ok()) return bytes.status();
  auto payload = ckpt::UnwrapPayload(*bytes);
  if (!payload.ok()) return payload.status();

  auto fresh_features = FreshFeatures(fresh);
  auto decoded = serve::InferenceService::DecodeModelPayload(
      *payload, fresh_features, config_.wsc.encoder);
  if (!decoded.ok()) return decoded.status();

  auto model = std::make_unique<core::WscModel>(fresh_features, config_.wsc);
  {
    // Warm start: copy the live generation's parameter values into the
    // fine-tune model (shape-checked by the serializer).
    ckpt::Writer w;
    ckpt::WriteParamValues(w, decoded->encoder->Parameters());
    ckpt::Reader r(w.bytes());
    TPR_RETURN_IF_ERROR(
        ckpt::ReadParamValuesInto(r, model->mutable_encoder()->Parameters()));
  }

  auto stages = core::BuildCurriculum(fresh_features, config_.wsc,
                                      config_.curriculum, AllIndices(*fresh));
  if (!stages.ok()) return stages.status();

  uint64_t max_gen = source_gen;
  for (uint64_t s : model_dir.ListSeqs()) max_gen = std::max(max_gen, s);
  if (rollout_ != nullptr) {
    for (const auto& rec : rollout_->manifest().records()) {
      max_gen = std::max(max_gen, rec.generation);
    }
  }
  candidate_gen_ = config_.forced_candidate_generation != 0
                       ? config_.forced_candidate_generation
                       : max_gen + 1;
  source_gen_ = source_gen;
  fresh_data_ = fresh;
  model_ = std::move(model);
  stages_ = std::move(*stages);
  pool_fingerprint_ = FingerprintPool(*fresh);
  epochs_done_ = 0;
  state_ = AdaptState::kFineTuning;
  ++launches_;
  launches.Add();
  report->events.push_back(
      "fine-tune launched: warm start from live gen " +
      std::to_string(source_gen_) + ", candidate gen " +
      std::to_string(candidate_gen_) + ", " +
      std::to_string(fresh->unlabeled.size()) + " fresh trajectories");
  // Persist the launch record so a kill before the first epoch still
  // resumes instead of needing a second alarm.
  TPR_RETURN_IF_ERROR(SaveFineTuneState());
  RefreshRolloutProbe(report);
  return Status::OK();
}

std::string AdaptationController::EncodeFineTuneState() const {
  ckpt::Writer w;
  w.Str(kStateTag);
  w.U32(kStateVersion);
  w.U64(candidate_gen_);
  w.U64(source_gen_);
  w.U64(pool_fingerprint_);
  w.I32(config_.total_epochs);
  w.I32(epochs_done_);
  w.U64(stages_.size());
  for (const auto& stage : stages_) {
    w.U64(stage.size());
    for (int idx : stage) w.I32(idx);
  }
  Status st = model_->SaveState(w);
  TPR_CHECK(st.ok());  // serialization into memory cannot fail
  return w.TakeBytes();
}

Status AdaptationController::SaveFineTuneState() const {
  ckpt::CheckpointDir cdir(config_.finetune_dir);
  return cdir.Save(static_cast<uint64_t>(epochs_done_) + 1,
                   EncodeFineTuneState());
}

Status AdaptationController::TryResume(
    const std::shared_ptr<const synth::CityDataset>& fresh,
    AdaptReport* report) {
  obs::Counter& resumed = metrics_.counter("drift.finetune_resumes");
  ckpt::CheckpointDir cdir(config_.finetune_dir);
  auto loaded = cdir.LoadLatest();
  if (!loaded.ok()) {
    if (loaded.status().code() != StatusCode::kNotFound) {
      report->events.push_back("resume skipped: " +
                               loaded.status().message());
    }
    return Status::OK();
  }
  // Any decode failure from here on means the state is foreign, corrupt,
  // or from a different world — refuse it, wipe the directory, and stay
  // idle rather than wedging the control loop on a bad file.
  uint64_t candidate_gen = 0, source_gen = 0, fingerprint = 0;
  int32_t total_epochs = 0, epochs_done = 0;
  std::vector<std::vector<int>> stages;
  std::unique_ptr<core::WscModel> model;
  std::string refusal;
  Status parsed = [&]() -> Status {
    ckpt::Reader r(loaded->payload);
    std::string tag;
    uint32_t version = 0;
    TPR_RETURN_IF_ERROR(r.Str(&tag));
    TPR_RETURN_IF_ERROR(r.U32(&version));
    if (tag != kStateTag || version != kStateVersion) {
      refusal = "foreign fine-tune state";
      return Status::InvalidArgument(refusal);
    }
    TPR_RETURN_IF_ERROR(r.U64(&candidate_gen));
    TPR_RETURN_IF_ERROR(r.U64(&source_gen));
    TPR_RETURN_IF_ERROR(r.U64(&fingerprint));
    TPR_RETURN_IF_ERROR(r.I32(&total_epochs));
    TPR_RETURN_IF_ERROR(r.I32(&epochs_done));
    if (fingerprint != FingerprintPool(*fresh)) {
      refusal = "fresh pool changed since the fine-tune started";
      return Status::InvalidArgument(refusal);
    }
    uint64_t num_stages = 0;
    TPR_RETURN_IF_ERROR(r.U64(&num_stages));
    stages.resize(num_stages);
    for (auto& stage : stages) {
      uint64_t n = 0;
      TPR_RETURN_IF_ERROR(r.U64(&n));
      stage.resize(n);
      for (auto& idx : stage) {
        int32_t v = 0;
        TPR_RETURN_IF_ERROR(r.I32(&v));
        idx = v;
      }
    }
    auto fresh_features = FreshFeatures(fresh);
    model = std::make_unique<core::WscModel>(fresh_features, config_.wsc);
    return model->LoadState(r);
  }();
  if (!parsed.ok()) {
    if (refusal.empty()) refusal = parsed.message();
    report->events.push_back("resume refused: " + refusal);
    RemoveStateDir(config_.finetune_dir);
    return Status::OK();
  }

  candidate_gen_ = candidate_gen;
  source_gen_ = source_gen;
  pool_fingerprint_ = fingerprint;
  epochs_done_ = epochs_done;
  fresh_data_ = fresh;
  model_ = std::move(model);
  stages_ = std::move(stages);
  state_ = AdaptState::kFineTuning;
  ++resumes_;
  resumed.Add();
  report->events.push_back(
      "fine-tune resumed: candidate gen " + std::to_string(candidate_gen_) +
      " at epoch " + std::to_string(epochs_done_) + "/" +
      std::to_string(config_.total_epochs));
  RefreshRolloutProbe(report);
  return Status::OK();
}

Status AdaptationController::RunEpochs(AdaptReport* report) {
  obs::Counter& epochs = metrics_.counter("drift.finetune_epochs");
  for (int i = 0; i < config_.epochs_per_tick &&
                  epochs_done_ < config_.total_epochs;
       ++i) {
    const std::vector<int>& indices =
        epochs_done_ < static_cast<int>(stages_.size())
            ? stages_[epochs_done_]
            : AllIndices(*fresh_data_);
    auto loss = model_->TrainEpoch(indices);
    if (!loss.ok()) return loss.status();
    ++epochs_done_;
    epochs.Add();
    TPR_RETURN_IF_ERROR(SaveFineTuneState());
    report->events.push_back(
        "fine-tune epoch " + std::to_string(epochs_done_) + "/" +
        std::to_string(config_.total_epochs) + " on " +
        std::to_string(indices.size()) + " samples");
  }
  if (epochs_done_ >= config_.total_epochs) {
    TPR_RETURN_IF_ERROR(PublishCandidate(report));
  }
  return Status::OK();
}

Status AdaptationController::PublishCandidate(AdaptReport* report) {
  obs::Counter& published = metrics_.counter("drift.publishes");
  const std::string& dir =
      config_.publish_dir.empty() ? config_.model_dir : config_.publish_dir;
  TPR_RETURN_IF_ERROR(serve::InferenceService::SaveModel(
      model_->encoder(), dir, candidate_gen_));
  report->events.push_back("candidate gen " + std::to_string(candidate_gen_) +
                           " published for rollout validation");
  report->published = true;
  ++publishes_;
  published.Add();
  // The candidate is durable; the in-flight trainer state is obsolete.
  RemoveStateDir(config_.finetune_dir);
  model_.reset();
  stages_.clear();
  fresh_data_.reset();
  detector_.Reset();
  state_ = AdaptState::kCooldown;
  return Status::OK();
}

void AdaptationController::RefreshRolloutProbe(AdaptReport* report) {
  if (rollout_ == nullptr) return;
  core::ProbeSet probe =
      core::BuildProbeSet(*fresh_data_, config_.probe_queries,
                          config_.probe_seed);
  rollout_->RefreshProbe(std::move(probe));
  report->events.push_back(
      "rollout probe refreshed onto the fresh window (" +
      std::to_string(config_.probe_queries) + " queries)");
}

}  // namespace tpr::drift
