#ifndef TPR_GRAPH_GRAPH_H_
#define TPR_GRAPH_GRAPH_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace tpr::graph {

/// Lightweight weighted adjacency-list graph used as the substrate for
/// node2vec random walks (road network topology and the temporal graph).
class Graph {
 public:
  explicit Graph(int num_nodes) : adj_(num_nodes) {}

  int num_nodes() const { return static_cast<int>(adj_.size()); }

  /// Adds an edge u -> v with the given weight; if undirected, also v -> u.
  void AddEdge(int u, int v, float weight = 1.0f, bool undirected = true);

  /// Neighbors of u as (node, weight) pairs.
  const std::vector<std::pair<int, float>>& Neighbors(int u) const {
    return adj_[u];
  }

  /// Total number of directed arcs.
  size_t num_arcs() const;

  /// True if v is a direct neighbor of u (linear scan; degrees are small).
  bool HasEdge(int u, int v) const;

 private:
  std::vector<std::vector<std::pair<int, float>>> adj_;
};

}  // namespace tpr::graph

#endif  // TPR_GRAPH_GRAPH_H_
