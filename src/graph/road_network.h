#ifndef TPR_GRAPH_ROAD_NETWORK_H_
#define TPR_GRAPH_ROAD_NETWORK_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace tpr::graph {

/// Road classes. These are the "Road Type (RT)" categorical spatial
/// feature of the paper (Section IV-B).
enum class RoadType : int {
  kHighway = 0,
  kPrimary = 1,
  kSecondary = 2,
  kTertiary = 3,
  kResidential = 4,
};

/// Number of distinct RoadType values (n_rt in the paper).
inline constexpr int kNumRoadTypes = 5;

/// Maximum number of lanes we model (n_l distinct values: 1..kMaxLanes).
inline constexpr int kMaxLanes = 4;

/// Human-readable name of a road type.
const char* RoadTypeName(RoadType t);

/// A vertex of the road network: an intersection with planar coordinates
/// (meters in a local frame).
struct RoadNode {
  double x = 0.0;
  double y = 0.0;
};

/// A directed road segment with the paper's four spatial features
/// (RT, NoL, OW, TS) plus geometry and a congestion zone used by the
/// synthetic traffic model.
struct RoadEdge {
  int id = -1;
  int from = -1;
  int to = -1;
  double length_m = 0.0;
  RoadType road_type = RoadType::kResidential;
  int num_lanes = 1;      // 1..kMaxLanes
  bool one_way = false;
  bool has_signal = false;
  int zone = 0;           // 0 = downtown, 1 = midtown, 2 = suburb
};

/// A path: a sequence of adjacent edge ids (paper Definition 3).
using Path = std::vector<int>;

/// A directed road network G = (V, E) (paper Definition 1).
class RoadNetwork {
 public:
  RoadNetwork() = default;

  /// Adds a node and returns its id.
  int AddNode(double x, double y);

  /// Adds a directed edge and returns its id. Endpoints must exist and the
  /// geometric length is computed from node coordinates unless overridden.
  StatusOr<int> AddEdge(int from, int to, RoadType type, int num_lanes,
                        bool one_way, bool has_signal, int zone,
                        double length_m = -1.0);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  const RoadNode& node(int id) const { return nodes_[id]; }
  const RoadEdge& edge(int id) const { return edges_[id]; }
  const std::vector<RoadEdge>& edges() const { return edges_; }

  /// Outgoing edge ids of a node.
  const std::vector<int>& OutEdges(int node) const { return out_edges_[node]; }

  /// Incoming edge ids of a node.
  const std::vector<int>& InEdges(int node) const { return in_edges_[node]; }

  /// Validates that consecutive edges share endpoints (edge i's head is
  /// edge i+1's tail) and the path is non-empty.
  Status ValidatePath(const Path& path) const;

  /// Total geometric length of a path in meters.
  double PathLength(const Path& path) const;

  /// Builds the undirected node-level topology graph used to learn
  /// node2vec road-network embeddings (Section IV-B-b).
  Graph BuildTopologyGraph() const;

 private:
  std::vector<RoadNode> nodes_;
  std::vector<RoadEdge> edges_;
  std::vector<std::vector<int>> out_edges_;
  std::vector<std::vector<int>> in_edges_;
};

}  // namespace tpr::graph

#endif  // TPR_GRAPH_ROAD_NETWORK_H_
