#ifndef TPR_GRAPH_TEMPORAL_GRAPH_H_
#define TPR_GRAPH_TEMPORAL_GRAPH_H_

#include <cstdint>

#include "graph/graph.h"

namespace tpr::graph {

/// Configuration for the temporal graph of Section IV-A. The paper uses
/// 5-minute slots (288 per day) across 7 days = 2016 nodes; smaller slot
/// counts are supported to keep CPU experiments fast.
struct TemporalGraphConfig {
  int slots_per_day = 288;
  int days_per_week = 7;

  int num_nodes() const { return slots_per_day * days_per_week; }
};

/// Maps (day_of_week in [0,7), slot in [0,slots_per_day)) to a temporal
/// graph node id.
int TemporalNodeId(const TemporalGraphConfig& cfg, int day, int slot);

/// Maps a departure time in seconds-since-Monday-00:00 to its temporal
/// graph node id.
int TemporalNodeIdForTime(const TemporalGraphConfig& cfg, int64_t time_s);

/// Builds the temporal graph G' = (V', E'): adjacent slots within a day are
/// connected (local similarity), the same slot on neighboring days is
/// connected (daily periodicity), the last slot of a day connects to the
/// first slot of the next day (midnight continuity), and Sunday wraps to
/// Monday (weekly periodicity).
Graph BuildTemporalGraph(const TemporalGraphConfig& cfg);

}  // namespace tpr::graph

#endif  // TPR_GRAPH_TEMPORAL_GRAPH_H_
