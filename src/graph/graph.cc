#include "graph/graph.h"

#include "util/logging.h"

namespace tpr::graph {

void Graph::AddEdge(int u, int v, float weight, bool undirected) {
  TPR_CHECK(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  adj_[u].emplace_back(v, weight);
  if (undirected) adj_[v].emplace_back(u, weight);
}

size_t Graph::num_arcs() const {
  size_t n = 0;
  for (const auto& nbrs : adj_) n += nbrs.size();
  return n;
}

bool Graph::HasEdge(int u, int v) const {
  for (const auto& [nbr, w] : adj_[u]) {
    if (nbr == v) return true;
  }
  return false;
}

}  // namespace tpr::graph
