#include "graph/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

namespace tpr::graph {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct QueueEntry {
  double dist;
  int node;
  bool operator>(const QueueEntry& o) const { return dist > o.dist; }
};

// Shared Dijkstra core: label(v) = min over edges of label(u) + w(e, label(u)).
// When `cost` ignores its second argument this is static Dijkstra.
StatusOr<PathResult> DijkstraImpl(const RoadNetwork& network, int src, int dst,
                                  double start_label,
                                  const TimeDependentCostFn& cost) {
  if (src < 0 || src >= network.num_nodes() || dst < 0 ||
      dst >= network.num_nodes()) {
    return Status::InvalidArgument("node id out of range");
  }
  std::vector<double> dist(network.num_nodes(), kInf);
  std::vector<int> via_edge(network.num_nodes(), -1);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      pq;
  dist[src] = start_label;
  pq.push({start_label, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    for (int eid : network.OutEdges(u)) {
      const RoadEdge& e = network.edge(eid);
      const double w = cost(eid, d);
      if (w < 0) return Status::InvalidArgument("negative edge cost");
      const double nd = d + w;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        via_edge[e.to] = eid;
        pq.push({nd, e.to});
      }
    }
  }
  if (dist[dst] == kInf) {
    return Status::NotFound("destination unreachable");
  }
  PathResult result;
  result.cost = dist[dst] - start_label;
  for (int v = dst; v != src;) {
    const int eid = via_edge[v];
    result.edges.push_back(eid);
    v = network.edge(eid).from;
  }
  std::reverse(result.edges.begin(), result.edges.end());
  return result;
}

}  // namespace

StatusOr<PathResult> ShortestPath(const RoadNetwork& network, int src, int dst,
                                  const EdgeCostFn& cost) {
  return DijkstraImpl(network, src, dst, 0.0,
                      [&cost](int eid, double) { return cost(eid); });
}

StatusOr<PathResult> TimeDependentFastestPath(
    const RoadNetwork& network, int src, int dst, double depart_time_s,
    const TimeDependentCostFn& cost) {
  return DijkstraImpl(network, src, dst, depart_time_s, cost);
}

StatusOr<std::vector<PathResult>> KAlternativePaths(
    const RoadNetwork& network, int src, int dst, int k,
    const EdgeCostFn& cost, double penalty_factor) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  std::vector<double> penalty(network.num_edges(), 1.0);
  std::vector<PathResult> results;
  std::set<Path> seen;
  // A few extra attempts beyond k compensate for duplicate paths that the
  // penalty method occasionally re-finds.
  const int max_attempts = 2 * k + 4;
  for (int attempt = 0; attempt < max_attempts && static_cast<int>(results.size()) < k;
       ++attempt) {
    auto sp = ShortestPath(network, src, dst, [&](int eid) {
      return cost(eid) * penalty[eid];
    });
    if (!sp.ok()) {
      if (results.empty()) return sp.status();
      break;
    }
    if (seen.insert(sp->edges).second) {
      // Recompute the true (unpenalised) cost of the found path.
      double true_cost = 0;
      for (int eid : sp->edges) true_cost += cost(eid);
      results.push_back({sp->edges, true_cost});
    }
    for (int eid : sp->edges) penalty[eid] *= penalty_factor;
  }
  return results;
}

}  // namespace tpr::graph
