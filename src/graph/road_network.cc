#include "graph/road_network.h"

#include <cmath>
#include <unordered_set>

namespace tpr::graph {

const char* RoadTypeName(RoadType t) {
  switch (t) {
    case RoadType::kHighway:
      return "highway";
    case RoadType::kPrimary:
      return "primary";
    case RoadType::kSecondary:
      return "secondary";
    case RoadType::kTertiary:
      return "tertiary";
    case RoadType::kResidential:
      return "residential";
  }
  return "unknown";
}

int RoadNetwork::AddNode(double x, double y) {
  nodes_.push_back({x, y});
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return static_cast<int>(nodes_.size()) - 1;
}

StatusOr<int> RoadNetwork::AddEdge(int from, int to, RoadType type,
                                   int num_lanes, bool one_way,
                                   bool has_signal, int zone,
                                   double length_m) {
  if (from < 0 || from >= num_nodes() || to < 0 || to >= num_nodes()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (num_lanes < 1 || num_lanes > kMaxLanes) {
    return Status::InvalidArgument("num_lanes out of range");
  }
  RoadEdge e;
  e.id = static_cast<int>(edges_.size());
  e.from = from;
  e.to = to;
  e.road_type = type;
  e.num_lanes = num_lanes;
  e.one_way = one_way;
  e.has_signal = has_signal;
  e.zone = zone;
  if (length_m > 0) {
    e.length_m = length_m;
  } else {
    const double dx = nodes_[to].x - nodes_[from].x;
    const double dy = nodes_[to].y - nodes_[from].y;
    e.length_m = std::sqrt(dx * dx + dy * dy);
  }
  edges_.push_back(e);
  out_edges_[from].push_back(e.id);
  in_edges_[to].push_back(e.id);
  return e.id;
}

Status RoadNetwork::ValidatePath(const Path& path) const {
  if (path.empty()) return Status::InvalidArgument("empty path");
  for (size_t i = 0; i < path.size(); ++i) {
    if (path[i] < 0 || path[i] >= num_edges()) {
      return Status::OutOfRange("edge id out of range in path");
    }
    if (i > 0 && edges_[path[i - 1]].to != edges_[path[i]].from) {
      return Status::InvalidArgument("non-adjacent edges at position " +
                                     std::to_string(i));
    }
  }
  return Status::OK();
}

double RoadNetwork::PathLength(const Path& path) const {
  double total = 0.0;
  for (int e : path) total += edges_[e].length_m;
  return total;
}

Graph RoadNetwork::BuildTopologyGraph() const {
  Graph g(num_nodes());
  std::unordered_set<int64_t> seen;
  for (const auto& e : edges_) {
    const int64_t key = static_cast<int64_t>(std::min(e.from, e.to)) *
                            num_nodes() +
                        std::max(e.from, e.to);
    if (seen.insert(key).second) {
      g.AddEdge(e.from, e.to, 1.0f, /*undirected=*/true);
    }
  }
  return g;
}

}  // namespace tpr::graph
