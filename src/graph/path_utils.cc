#include "graph/path_utils.h"

#include <unordered_set>

namespace tpr::graph {

double PathSimilarity(const RoadNetwork& network, const Path& a,
                      const Path& b) {
  std::unordered_set<int> set_a(a.begin(), a.end());
  std::unordered_set<int> set_b(b.begin(), b.end());
  double shared = 0.0, uni = 0.0;
  for (int e : set_a) {
    uni += network.edge(e).length_m;
    if (set_b.count(e)) shared += network.edge(e).length_m;
  }
  for (int e : set_b) {
    if (!set_a.count(e)) uni += network.edge(e).length_m;
  }
  return uni > 0 ? shared / uni : 0.0;
}

double PathJaccard(const Path& a, const Path& b) {
  std::unordered_set<int> set_a(a.begin(), a.end());
  std::unordered_set<int> set_b(b.begin(), b.end());
  size_t shared = 0;
  for (int e : set_b) shared += set_a.count(e);
  const size_t uni = set_a.size() + set_b.size() - shared;
  return uni > 0 ? static_cast<double>(shared) / static_cast<double>(uni) : 0.0;
}

int SharedEdgeCount(const Path& a, const Path& b) {
  std::unordered_set<int> set_a(a.begin(), a.end());
  std::unordered_set<int> set_b(b.begin(), b.end());
  int shared = 0;
  for (int e : set_b) shared += static_cast<int>(set_a.count(e));
  return shared;
}

}  // namespace tpr::graph
