#include "graph/temporal_graph.h"

#include "util/logging.h"

namespace tpr::graph {

int TemporalNodeId(const TemporalGraphConfig& cfg, int day, int slot) {
  TPR_CHECK(day >= 0 && day < cfg.days_per_week);
  TPR_CHECK(slot >= 0 && slot < cfg.slots_per_day);
  return day * cfg.slots_per_day + slot;
}

int TemporalNodeIdForTime(const TemporalGraphConfig& cfg, int64_t time_s) {
  const int64_t week_s =
      static_cast<int64_t>(cfg.days_per_week) * 24 * 3600;
  int64_t t = time_s % week_s;
  if (t < 0) t += week_s;
  const int day = static_cast<int>(t / (24 * 3600));
  const int64_t sec_of_day = t % (24 * 3600);
  const int slot = static_cast<int>(sec_of_day * cfg.slots_per_day / (24 * 3600));
  return TemporalNodeId(cfg, day, slot);
}

Graph BuildTemporalGraph(const TemporalGraphConfig& cfg) {
  Graph g(cfg.num_nodes());
  const int s = cfg.slots_per_day;
  const int d = cfg.days_per_week;
  for (int day = 0; day < d; ++day) {
    for (int slot = 0; slot < s; ++slot) {
      const int u = TemporalNodeId(cfg, day, slot);
      // Local similarity: adjacent slots within the day.
      if (slot + 1 < s) {
        g.AddEdge(u, TemporalNodeId(cfg, day, slot + 1));
      } else if (day + 1 < d) {
        // Midnight continuity into the next day.
        g.AddEdge(u, TemporalNodeId(cfg, day + 1, 0));
      } else {
        // Sunday's last slot wraps to Monday's first slot.
        g.AddEdge(u, TemporalNodeId(cfg, 0, 0));
      }
      // Daily periodicity: same slot on the next day (with Sunday->Monday
      // wrap closing the weekly cycle).
      const int next_day = (day + 1) % d;
      g.AddEdge(u, TemporalNodeId(cfg, next_day, slot));
    }
  }
  return g;
}

}  // namespace tpr::graph
