#ifndef TPR_GRAPH_SHORTEST_PATH_H_
#define TPR_GRAPH_SHORTEST_PATH_H_

#include <functional>
#include <vector>

#include "graph/road_network.h"
#include "util/status.h"

namespace tpr::graph {

/// Static edge cost: cost(edge_id) -> non-negative weight.
using EdgeCostFn = std::function<double(int)>;

/// Time-dependent edge cost: cost(edge_id, entry_time_s) -> traversal
/// seconds. Used for time-dependent fastest paths over the traffic model.
using TimeDependentCostFn = std::function<double(int, double)>;

/// Result of a shortest-path query.
struct PathResult {
  Path edges;      // edge ids, source to destination
  double cost = 0; // total cost (seconds or weight units)
};

/// Dijkstra with a static edge cost. Returns NotFound if dst is
/// unreachable from src.
StatusOr<PathResult> ShortestPath(const RoadNetwork& network, int src, int dst,
                                  const EdgeCostFn& cost);

/// Time-dependent Dijkstra: the label of a node is the earliest arrival
/// time; edge cost is evaluated at the entry time. Assumes the FIFO
/// property (later entry never yields earlier exit), which the synthetic
/// traffic model satisfies.
StatusOr<PathResult> TimeDependentFastestPath(const RoadNetwork& network,
                                              int src, int dst,
                                              double depart_time_s,
                                              const TimeDependentCostFn& cost);

/// Generates up to k distinct alternative paths between src and dst with
/// the penalty method: after each found path, the weights of its edges are
/// multiplied by penalty_factor and Dijkstra is re-run. Duplicates are
/// dropped. Always includes the original shortest path first.
StatusOr<std::vector<PathResult>> KAlternativePaths(
    const RoadNetwork& network, int src, int dst, int k,
    const EdgeCostFn& cost, double penalty_factor = 1.4);

}  // namespace tpr::graph

#endif  // TPR_GRAPH_SHORTEST_PATH_H_
