#ifndef TPR_GRAPH_PATH_UTILS_H_
#define TPR_GRAPH_PATH_UTILS_H_

#include "graph/road_network.h"

namespace tpr::graph {

/// Length-weighted Jaccard similarity of two paths: the total length of
/// shared edges divided by the total length of the union. Used to derive
/// path-ranking scores from a trajectory path (Section VII-A-2b); the
/// trajectory path itself scores 1.
double PathSimilarity(const RoadNetwork& network, const Path& a,
                      const Path& b);

/// Unweighted edge-set Jaccard similarity.
double PathJaccard(const Path& a, const Path& b);

/// Number of edges shared by the two paths.
int SharedEdgeCount(const Path& a, const Path& b);

}  // namespace tpr::graph

#endif  // TPR_GRAPH_PATH_UTILS_H_
