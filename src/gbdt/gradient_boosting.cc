#include "gbdt/gradient_boosting.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace tpr::gbdt {
namespace {

std::vector<int> SampleRows(int n, double fraction, Rng& rng) {
  std::vector<int> all(n);
  std::iota(all.begin(), all.end(), 0);
  if (fraction >= 1.0) return all;
  rng.Shuffle(all);
  const int keep = std::max(1, static_cast<int>(n * fraction));
  all.resize(keep);
  return all;
}

float Sigmoid(float x) {
  return x >= 0 ? 1.0f / (1.0f + std::exp(-x))
                : std::exp(x) / (1.0f + std::exp(x));
}

}  // namespace

Status GradientBoostingRegressor::Fit(const Matrix& x,
                                      const std::vector<float>& y) {
  if (x.rows == 0 || x.cols == 0) {
    return Status::InvalidArgument("empty feature matrix");
  }
  if (static_cast<int>(y.size()) != x.rows) {
    return Status::InvalidArgument("target size mismatch");
  }
  Rng rng(config_.seed);
  trees_.clear();

  double sum = 0.0;
  for (float v : y) sum += v;
  base_prediction_ = static_cast<float>(sum / y.size());

  std::vector<float> current(y.size(), base_prediction_);
  std::vector<float> residuals(y.size());
  trees_.reserve(config_.num_trees);
  for (int t = 0; t < config_.num_trees; ++t) {
    for (size_t i = 0; i < y.size(); ++i) residuals[i] = y[i] - current[i];
    const auto rows = SampleRows(x.rows, config_.subsample, rng);
    RegressionTree tree;
    tree.Fit(x, residuals, rows, config_.tree, rng);
    for (int i = 0; i < x.rows; ++i) {
      current[i] += config_.learning_rate * tree.Predict(x.row(i));
    }
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

float GradientBoostingRegressor::Predict(const float* features) const {
  float pred = base_prediction_;
  for (const auto& tree : trees_) {
    pred += config_.learning_rate * tree.Predict(features);
  }
  return pred;
}

std::vector<float> GradientBoostingRegressor::PredictBatch(
    const Matrix& x) const {
  std::vector<float> out(x.rows);
  for (int i = 0; i < x.rows; ++i) out[i] = Predict(x.row(i));
  return out;
}

Status GradientBoostingClassifier::Fit(const Matrix& x,
                                       const std::vector<int>& y) {
  if (x.rows == 0 || x.cols == 0) {
    return Status::InvalidArgument("empty feature matrix");
  }
  if (static_cast<int>(y.size()) != x.rows) {
    return Status::InvalidArgument("label size mismatch");
  }
  Rng rng(config_.seed);
  trees_.clear();

  double pos = 0.0;
  for (int v : y) pos += v;
  const double p = std::clamp(pos / y.size(), 1e-4, 1.0 - 1e-4);
  base_score_ = static_cast<float>(std::log(p / (1.0 - p)));

  std::vector<float> score(y.size(), base_score_);
  std::vector<float> gradients(y.size());
  trees_.reserve(config_.num_trees);
  for (int t = 0; t < config_.num_trees; ++t) {
    // Negative gradient of logistic loss: y - sigmoid(score).
    for (size_t i = 0; i < y.size(); ++i) {
      gradients[i] = static_cast<float>(y[i]) - Sigmoid(score[i]);
    }
    const auto rows = SampleRows(x.rows, config_.subsample, rng);
    RegressionTree tree;
    tree.Fit(x, gradients, rows, config_.tree, rng);
    for (int i = 0; i < x.rows; ++i) {
      score[i] += config_.learning_rate * tree.Predict(x.row(i));
    }
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

float GradientBoostingClassifier::Score(const float* features) const {
  float s = base_score_;
  for (const auto& tree : trees_) {
    s += config_.learning_rate * tree.Predict(features);
  }
  return s;
}

float GradientBoostingClassifier::PredictProba(const float* features) const {
  return Sigmoid(Score(features));
}

}  // namespace tpr::gbdt
