#ifndef TPR_GBDT_GRADIENT_BOOSTING_H_
#define TPR_GBDT_GRADIENT_BOOSTING_H_

#include <vector>

#include "gbdt/tree.h"
#include "util/status.h"

namespace tpr::gbdt {

/// Shared boosting hyper-parameters. Defaults mirror scikit-learn's
/// GradientBoostingRegressor/Classifier, the downstream probes the paper
/// uses on frozen path representations (Section VII-A-4).
struct BoostingConfig {
  int num_trees = 120;
  float learning_rate = 0.1f;
  TreeConfig tree;
  /// Row subsampling fraction per tree (stochastic gradient boosting).
  double subsample = 0.9;
  uint64_t seed = 17;
};

/// Gradient-boosted regression with squared loss.
class GradientBoostingRegressor {
 public:
  explicit GradientBoostingRegressor(BoostingConfig config = {})
      : config_(config) {}

  /// Fits on the full matrix. Targets must have x.rows entries.
  Status Fit(const Matrix& x, const std::vector<float>& y);

  /// Predicts one feature row.
  float Predict(const float* features) const;

  /// Predicts every row of a matrix.
  std::vector<float> PredictBatch(const Matrix& x) const;

 private:
  BoostingConfig config_;
  float base_prediction_ = 0.0f;
  std::vector<RegressionTree> trees_;
};

/// Gradient-boosted binary classification with logistic loss. Predicts
/// P(y = 1 | x).
class GradientBoostingClassifier {
 public:
  explicit GradientBoostingClassifier(BoostingConfig config = {})
      : config_(config) {}

  /// Fits on 0/1 labels.
  Status Fit(const Matrix& x, const std::vector<int>& y);

  /// Probability of the positive class for one feature row.
  float PredictProba(const float* features) const;

  /// Hard 0/1 prediction at threshold 0.5.
  int Predict(const float* features) const {
    return PredictProba(features) >= 0.5f ? 1 : 0;
  }

 private:
  float Score(const float* features) const;

  BoostingConfig config_;
  float base_score_ = 0.0f;
  std::vector<RegressionTree> trees_;
};

}  // namespace tpr::gbdt

#endif  // TPR_GBDT_GRADIENT_BOOSTING_H_
