#ifndef TPR_GBDT_TREE_H_
#define TPR_GBDT_TREE_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace tpr::gbdt {

/// Dense feature matrix: samples x features, row major.
struct Matrix {
  int rows = 0;
  int cols = 0;
  std::vector<float> data;

  Matrix() = default;
  Matrix(int r, int c) : rows(r), cols(c), data(static_cast<size_t>(r) * c) {}

  float at(int r, int c) const { return data[static_cast<size_t>(r) * cols + c]; }
  float& at(int r, int c) { return data[static_cast<size_t>(r) * cols + c]; }
  const float* row(int r) const { return data.data() + static_cast<size_t>(r) * cols; }
};

/// Hyper-parameters of a single CART regression tree.
struct TreeConfig {
  int max_depth = 3;
  int min_samples_leaf = 8;
  /// Fraction of features considered at each split (column subsampling).
  double feature_fraction = 1.0;
};

/// A CART regression tree fit with exact greedy variance-reduction splits.
/// Used as the weak learner inside gradient boosting.
class RegressionTree {
 public:
  /// Fits the tree on the subset `indices` of the rows of x against the
  /// per-row targets. rng drives feature subsampling.
  void Fit(const Matrix& x, const std::vector<float>& targets,
           const std::vector<int>& indices, const TreeConfig& config,
           Rng& rng);

  /// Predicts a single feature row.
  float Predict(const float* features) const;

  /// Number of nodes (diagnostics).
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    int feature = -1;      // -1 for leaves
    float threshold = 0.0f;
    float value = 0.0f;    // leaf prediction
    int left = -1;
    int right = -1;
  };

  int Build(const Matrix& x, const std::vector<float>& targets,
            std::vector<int>& indices, int begin, int end, int depth,
            const TreeConfig& config, Rng& rng);

  std::vector<Node> nodes_;
};

}  // namespace tpr::gbdt

#endif  // TPR_GBDT_TREE_H_
