#include "gbdt/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace tpr::gbdt {

void RegressionTree::Fit(const Matrix& x, const std::vector<float>& targets,
                         const std::vector<int>& indices,
                         const TreeConfig& config, Rng& rng) {
  TPR_CHECK(!indices.empty());
  nodes_.clear();
  std::vector<int> work = indices;
  Build(x, targets, work, 0, static_cast<int>(work.size()), 0, config, rng);
}

int RegressionTree::Build(const Matrix& x, const std::vector<float>& targets,
                          std::vector<int>& indices, int begin, int end,
                          int depth, const TreeConfig& config, Rng& rng) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  const int n = end - begin;
  double sum = 0.0;
  for (int i = begin; i < end; ++i) sum += targets[indices[i]];
  const float mean = static_cast<float>(sum / n);
  nodes_[node_id].value = mean;

  if (depth >= config.max_depth || n < 2 * config.min_samples_leaf) {
    return node_id;
  }

  // Exact greedy split: for each candidate feature, sort the index range
  // by feature value and scan split points maximising variance reduction.
  int best_feature = -1;
  float best_threshold = 0.0f;
  double best_gain = 1e-12;
  std::vector<int> sorted(indices.begin() + begin, indices.begin() + end);

  for (int f = 0; f < x.cols; ++f) {
    if (config.feature_fraction < 1.0 &&
        rng.Uniform() > config.feature_fraction) {
      continue;
    }
    std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
      return x.at(a, f) < x.at(b, f);
    });
    double left_sum = 0.0;
    const double total_sum = sum;
    for (int i = 0; i + 1 < n; ++i) {
      left_sum += targets[sorted[i]];
      const int left_n = i + 1;
      const int right_n = n - left_n;
      if (left_n < config.min_samples_leaf || right_n < config.min_samples_leaf)
        continue;
      const float v = x.at(sorted[i], f);
      const float v_next = x.at(sorted[i + 1], f);
      if (v == v_next) continue;  // cannot split between equal values
      const double right_sum = total_sum - left_sum;
      // Variance reduction is equivalent (up to constants) to maximising
      // sum_left^2/n_left + sum_right^2/n_right.
      const double gain = left_sum * left_sum / left_n +
                          right_sum * right_sum / right_n -
                          total_sum * total_sum / n;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5f * (v + v_next);
      }
    }
  }

  if (best_feature < 0) return node_id;

  const auto mid_it = std::partition(
      indices.begin() + begin, indices.begin() + end,
      [&](int i) { return x.at(i, best_feature) <= best_threshold; });
  const int mid = static_cast<int>(mid_it - indices.begin());
  if (mid == begin || mid == end) return node_id;

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left = Build(x, targets, indices, begin, mid, depth + 1, config, rng);
  const int right = Build(x, targets, indices, mid, end, depth + 1, config, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

float RegressionTree::Predict(const float* features) const {
  int node = 0;
  while (nodes_[node].feature >= 0) {
    node = features[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].value;
}

}  // namespace tpr::gbdt
