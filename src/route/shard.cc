#include "route/shard.h"

#include <filesystem>
#include <utility>

namespace tpr::route {
namespace {

std::string ShardName(int city_id) {
  return "shard" + std::to_string(city_id);
}

std::string ShardDir(const std::string& root, int city_id) {
  return root + "/shard-" + std::to_string(city_id);
}

}  // namespace

CityShard::CityShard(std::shared_ptr<const core::FeatureSpace> features,
                     const core::EncoderConfig& encoder_config,
                     core::ProbeSet probe, const CityShardConfig& config)
    : city_id_(config.city_id),
      name_(ShardName(config.city_id)),
      dir_(ShardDir(config.root, config.city_id)),
      model_dir_(dir_ + "/models") {
  std::filesystem::create_directories(model_dir_);

  serve::ServiceConfig sc = config.service;
  if (sc.shard.empty()) sc.shard = name_;
  if (sc.metrics_prefix.empty()) sc.metrics_prefix = name_ + ".";
  service_ = std::make_unique<serve::InferenceService>(features,
                                                       encoder_config, sc);

  rollout::RolloutConfig rc = config.rollout;
  if (rc.model_dir.empty()) rc.model_dir = model_dir_;
  if (rc.shard.empty()) rc.shard = name_;
  if (rc.metrics_prefix.empty()) rc.metrics_prefix = name_ + ".";
  rollout_ = std::make_unique<rollout::RolloutController>(
      service_.get(), features, encoder_config, std::move(probe), rc);

  if (config.enable_drift) {
    drift::AdaptationConfig ac = config.adaptation;
    if (ac.model_dir.empty()) ac.model_dir = model_dir_;
    if (ac.finetune_dir.empty()) ac.finetune_dir = dir_ + "/finetune";
    if (ac.shard.empty()) ac.shard = name_;
    if (ac.metrics_prefix.empty()) ac.metrics_prefix = name_ + ".";
    std::filesystem::create_directories(ac.finetune_dir);
    adaptation_ = std::make_unique<drift::AdaptationController>(
        features, service_.get(), rollout_.get(), config.detector, ac);
  }
}

}  // namespace tpr::route
