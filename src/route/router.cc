#include "route/router.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "fault/fault.h"
#include "util/logging.h"
#include "util/rng.h"

namespace tpr::route {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || v <= 0) return fallback;
  return static_cast<int>(v);
}

double EnvDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || !std::isfinite(v)) return fallback;
  return v;
}

/// Well-distributed pure hash of a city id (splitmix64 finaliser via
/// MixSeed against a fixed salt).
uint64_t CityHash(int city_id) {
  return MixSeed(0x524F555445ull /* "ROUTE" */,
                 static_cast<uint64_t>(city_id));
}

}  // namespace

RouterConfig RouterConfigFromEnv(RouterConfig defaults) {
  defaults.quarantine_after =
      EnvInt("TPR_ROUTE_QUARANTINE_AFTER", defaults.quarantine_after);
  defaults.backoff_initial = static_cast<uint64_t>(EnvInt(
      "TPR_ROUTE_BACKOFF", static_cast<int>(defaults.backoff_initial)));
  defaults.backoff_max = static_cast<uint64_t>(EnvInt(
      "TPR_ROUTE_BACKOFF_MAX", static_cast<int>(defaults.backoff_max)));
  defaults.default_deadline_ms =
      EnvDouble("TPR_ROUTE_DEADLINE_MS", defaults.default_deadline_ms);
  return defaults;
}

const char* ShardStateName(ShardState s) {
  switch (s) {
    case ShardState::kHealthy: return "healthy";
    case ShardState::kQuarantined: return "quarantined";
  }
  return "?";
}

const char* RouteErrorName(RouteError e) {
  switch (e) {
    case RouteError::kNone: return "none";
    case RouteError::kNoShardForCity: return "no-shard-for-city";
    case RouteError::kShardQuarantined: return "shard-quarantined";
    case RouteError::kDispatchFault: return "dispatch-fault";
    case RouteError::kShardRejected: return "shard-rejected";
  }
  return "?";
}

Router::Router(std::vector<ShardEndpoint> shards, const RouterConfig& config)
    : config_(config), shards_(std::move(shards)) {
  TPR_CHECK(!shards_.empty());
  TPR_CHECK(config_.quarantine_after > 0);
  TPR_CHECK(config_.backoff_initial > 0);
  TPR_CHECK(config_.backoff_max >= config_.backoff_initial);
  // Canonical order: sorted by city id. Shard index is the city's rank,
  // so the table is a pure function of the city SET — registration
  // order never leaks into routing.
  std::sort(shards_.begin(), shards_.end(),
            [](const ShardEndpoint& a, const ShardEndpoint& b) {
              return a.city_id < b.city_id;
            });
  for (size_t i = 0; i < shards_.size(); ++i) {
    TPR_CHECK(shards_[i].service != nullptr);
    TPR_CHECK(i == 0 || shards_[i - 1].city_id < shards_[i].city_id);
    if (shards_[i].name.empty()) {
      shards_[i].name = "shard" + std::to_string(shards_[i].city_id);
    }
  }

  // Open-addressed hash table, linear probing, power-of-two size with
  // load factor <= 0.5.
  size_t cap = 4;
  while (cap < shards_.size() * 2) cap <<= 1;
  table_.assign(cap, {0, -1});
  table_mask_ = cap - 1;
  for (size_t i = 0; i < shards_.size(); ++i) {
    uint64_t slot = CityHash(shards_[i].city_id) & table_mask_;
    while (table_[slot].second >= 0) slot = (slot + 1) & table_mask_;
    table_[slot] = {shards_[i].city_id, static_cast<int>(i)};
  }

  rt_ = std::make_unique<ShardRt[]>(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    rt_[i].metrics = obs::MetricScope(shards_[i].name + ".");
    rt_[i].metrics.gauge("route.state")
        .Set(static_cast<double>(static_cast<int>(ShardState::kHealthy)));
  }
}

int Router::ShardForCity(int city_id) const {
  uint64_t slot = CityHash(city_id) & table_mask_;
  while (true) {
    const auto& [city, idx] = table_[slot];
    if (idx < 0) return -1;
    if (city == city_id) return idx;
    slot = (slot + 1) & table_mask_;
  }
}

uint64_t Router::NextProbeAt(const ShardRt& rt, int city_id) const {
  uint64_t window = config_.backoff_initial;
  for (uint64_t i = 0; i < rt.probe_attempts && window < config_.backoff_max;
       ++i) {
    window <<= 1;
  }
  window = std::min(window, config_.backoff_max);
  // Deterministic jitter: a fresh stream per (shard, quarantine episode,
  // probe attempt). Spreads simultaneous re-probes across a half-window
  // without ever consulting a clock.
  Rng jitter(MixSeed(MixSeed(config_.seed, static_cast<uint64_t>(city_id)),
                     rt.quarantines * 4096 + rt.probe_attempts));
  return rt.dispatches + window + jitter.UniformInt(window / 2 + 1);
}

void Router::RecordOutcome(int shard_index, ShardRt& rt, bool success) {
  const ShardEndpoint& sh = shards_[static_cast<size_t>(shard_index)];
  if (success) {
    rt.consecutive_failures = 0;
    if (rt.state == ShardState::kQuarantined) {
      rt.state = ShardState::kHealthy;
      rt.probe_attempts = 0;
      rt.next_probe_at = 0;
      rt.metrics.counter("route.recoveries").Add();
    }
  } else {
    ++rt.failures;
    rt.metrics.counter("route.failures").Add();
    if (rt.state == ShardState::kQuarantined) {
      // A failed probe: back off again, doubling the window.
      ++rt.probe_attempts;
      rt.next_probe_at = NextProbeAt(rt, sh.city_id);
    } else if (++rt.consecutive_failures >= config_.quarantine_after) {
      rt.state = ShardState::kQuarantined;
      ++rt.quarantines;
      rt.probe_attempts = 0;
      rt.next_probe_at = NextProbeAt(rt, sh.city_id);
      rt.metrics.counter("route.quarantines").Add();
    }
  }
  rt.metrics.gauge("route.state")
      .Set(static_cast<double>(static_cast<int>(rt.state)));
}

RoutedSubmit Router::Submit(const CityRequest& req) {
  RoutedSubmit out;
  const int idx = ShardForCity(req.city_id);
  if (idx < 0) {
    out.error = RouteError::kNoShardForCity;
    out.status = Status::NotFound(
        "no shard for city " + std::to_string(req.city_id));
    obs::GetCounter("route.unmapped").Add();
    return out;
  }
  const ShardEndpoint& sh = shards_[static_cast<size_t>(idx)];
  ShardRt& rt = rt_[idx];
  out.shard_index = idx;
  out.shard = sh.name;

  const double deadline =
      req.deadline_ms > 0 ? req.deadline_ms : config_.default_deadline_ms;

  std::lock_guard<std::mutex> lock(rt.mu);
  // Logical time at this shard: every attempt — admitted, faulted, or
  // shed — advances it, so quarantine/probe schedules depend only on
  // the per-shard dispatch order.
  ++rt.dispatches;
  rt.metrics.counter("route.dispatches").Add();

  if (rt.state == ShardState::kQuarantined &&
      rt.dispatches < rt.next_probe_at) {
    ++rt.shed;
    rt.metrics.counter("route.shed").Add();
    out.error = RouteError::kShardQuarantined;
    out.status = Status::Unavailable(
        sh.name + ": quarantined (probe at dispatch " +
        std::to_string(rt.next_probe_at) + ")");
    return out;
  }
  const bool probing = rt.state == ShardState::kQuarantined;
  if (probing) rt.metrics.counter("route.probes").Add();

  // The router's own fault site, evaluated under the shard's scope so
  // plans can bomb exactly one shard's dispatch path. Keyed by request
  // id: the verdict is a property of the request, not of timing.
  bool dispatch_fault;
  {
    fault::ScopedShard scope(sh.name);
    dispatch_fault = fault::ShouldFail(fault::kRouteDispatch, req.query.id);
  }
  if (dispatch_fault) {
    RecordOutcome(idx, rt, /*success=*/false);
    out.error = RouteError::kDispatchFault;
    out.status = Status::Unavailable(sh.name + ": route-dispatch fault");
    return out;
  }

  auto admitted = sh.service->Submit(req.query, deadline);
  if (!admitted.ok()) {
    RecordOutcome(idx, rt, /*success=*/false);
    out.error = RouteError::kShardRejected;
    out.status = Status(admitted.status().code(),
                        sh.name + ": " + admitted.status().message());
    return out;
  }
  RecordOutcome(idx, rt, /*success=*/true);
  ++rt.admitted;
  rt.metrics.counter("route.admitted").Add();
  out.status = Status::OK();
  out.result = std::move(admitted).value();
  return out;
}

RouteResult Router::Dispatch(const CityRequest& req) {
  RouteResult out;
  out.city_id = req.city_id;
  RoutedSubmit sub = Submit(req);
  out.status = std::move(sub.status);
  out.error = sub.error;
  out.shard_index = sub.shard_index;
  out.shard = std::move(sub.shard);
  if (out.status.ok()) {
    out.serve = sub.result.get();
    out.status = out.serve.status;
  }
  return out;
}

std::vector<RouteResult> Router::DispatchMulti(
    const std::vector<CityRequest>& legs) {
  // Admit every leg first (pipelining the shards), then collect. Each
  // leg degrades or sheds on its own; one sick city never poisons the
  // others' legs.
  std::vector<RoutedSubmit> subs;
  subs.reserve(legs.size());
  for (const CityRequest& leg : legs) subs.push_back(Submit(leg));
  std::vector<RouteResult> out(legs.size());
  for (size_t i = 0; i < legs.size(); ++i) {
    out[i].city_id = legs[i].city_id;
    out[i].status = std::move(subs[i].status);
    out[i].error = subs[i].error;
    out[i].shard_index = subs[i].shard_index;
    out[i].shard = std::move(subs[i].shard);
    if (out[i].status.ok()) {
      out[i].serve = subs[i].result.get();
      out[i].status = out[i].serve.status;
    }
  }
  return out;
}

ShardHealth Router::Health(int shard_index) const {
  TPR_CHECK(shard_index >= 0 && shard_index < num_shards());
  const ShardEndpoint& sh = shards_[static_cast<size_t>(shard_index)];
  const ShardRt& rt = rt_[shard_index];
  ShardHealth h;
  h.city_id = sh.city_id;
  h.name = sh.name;
  {
    std::lock_guard<std::mutex> lock(rt.mu);
    h.state = rt.state;
    h.dispatches = rt.dispatches;
    h.admitted = rt.admitted;
    h.failures = rt.failures;
    h.shed = rt.shed;
    h.consecutive_failures = rt.consecutive_failures;
    h.quarantines = rt.quarantines;
    h.next_probe_at = rt.next_probe_at;
  }
  h.service = sh.service->Health();
  return h;
}

std::vector<ShardHealth> Router::FleetHealth() const {
  std::vector<ShardHealth> out;
  out.reserve(shards_.size());
  for (int i = 0; i < num_shards(); ++i) out.push_back(Health(i));
  return out;
}

}  // namespace tpr::route
