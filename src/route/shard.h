#ifndef TPR_ROUTE_SHARD_H_
#define TPR_ROUTE_SHARD_H_

// One city's serving shard: the full vertical slice — inference
// service, checkpoint directory, rollout controller, and (optionally)
// the drift adaptation controller — namespaced under
// `<root>/shard-<city>/` with the shard's fault scope and metric prefix
// wired through every layer.
//
// Isolation is the point: each shard owns its own model lineage
// (manifest, quarantine, pins), its own breaker/cache/canary state, its
// own drift detector, and its own `shard<k>.{serve,rollout,drift}.*`
// metric namespace. A fault plan targeting `site@shard<k>` touches
// exactly this shard; rollouts, quarantines, and drift fine-tunes on
// one shard never synchronize with — or even observe — another's.

#include <memory>
#include <string>

#include "core/encoder.h"
#include "core/features.h"
#include "core/probe.h"
#include "drift/adaptation.h"
#include "drift/detector.h"
#include "rollout/controller.h"
#include "route/router.h"
#include "serve/service.h"
#include "util/status.h"

namespace tpr::route {

struct CityShardConfig {
  int city_id = 0;

  /// Fleet root; this shard lives under `<root>/shard-<city_id>/`.
  std::string root;

  /// Service knobs. `shard` and `metrics_prefix` are auto-filled with
  /// the shard identity when left empty (the normal case).
  serve::ServiceConfig service;

  /// Rollout knobs. `model_dir`, `shard`, and `metrics_prefix` are
  /// auto-filled when left empty.
  rollout::RolloutConfig rollout;

  /// Construct the drift adaptation controller too. Off by default —
  /// soaks that only exercise routing/rollout skip the trainer stack.
  bool enable_drift = false;
  drift::DriftDetectorConfig detector;
  /// `model_dir`/`finetune_dir`/`shard`/`metrics_prefix` auto-filled
  /// when left empty; the caller supplies the fine-tune `wsc` config.
  drift::AdaptationConfig adaptation;
};

class CityShard {
 public:
  /// Creates `<root>/shard-<city>/models` (and `finetune` when drift is
  /// enabled) on disk and wires service -> rollout (-> adaptation) with
  /// the shard's scope and metric prefix. `probe` is the rollout gate's
  /// golden probe set for THIS city's world.
  CityShard(std::shared_ptr<const core::FeatureSpace> features,
            const core::EncoderConfig& encoder_config, core::ProbeSet probe,
            const CityShardConfig& config);

  CityShard(const CityShard&) = delete;
  CityShard& operator=(const CityShard&) = delete;

  int city_id() const { return city_id_; }
  /// "shard<city_id>": the fault scope and metric-prefix stem.
  const std::string& name() const { return name_; }
  /// `<root>/shard-<city>` and its model checkpoint dir.
  const std::string& dir() const { return dir_; }
  const std::string& model_dir() const { return model_dir_; }

  serve::InferenceService& service() { return *service_; }
  rollout::RolloutController& rollout() { return *rollout_; }
  /// Null unless CityShardConfig::enable_drift.
  drift::AdaptationController* adaptation() { return adaptation_.get(); }

  /// rollout().Init(): recover lineage from this shard's manifest.
  Status Init() { return rollout_->Init(); }

  /// The router-facing endpoint for this shard.
  ShardEndpoint endpoint() {
    return ShardEndpoint{city_id_, name_, service_.get()};
  }

 private:
  const int city_id_;
  const std::string name_;
  const std::string dir_;
  const std::string model_dir_;
  std::unique_ptr<serve::InferenceService> service_;
  std::unique_ptr<rollout::RolloutController> rollout_;
  std::unique_ptr<drift::AdaptationController> adaptation_;
};

}  // namespace tpr::route

#endif  // TPR_ROUTE_SHARD_H_
