#ifndef TPR_ROUTE_ROUTER_H_
#define TPR_ROUTE_ROUTER_H_

// Deterministic routing tier over per-city serving shards.
//
// The Router fronts a fleet of fault-isolated InferenceService shards,
// one per city. Its job splits in two:
//
//   routing     request -> shard is a PURE HASH of the city id over the
//               canonical (sorted) city set: the same cities always
//               yield the same table, independent of the order shards
//               were registered or which of N router threads asks.
//   failover    each shard carries a health state machine driven ONLY
//               by deterministic signals — injected "route-dispatch"
//               fault verdicts (keyed by request id, evaluated under
//               the shard's fault scope) and admission errors — folded
//               in per-shard dispatch order. `quarantine_after`
//               consecutive failures quarantine the shard; requests
//               then shed with a typed per-shard error until a
//               deterministically jittered re-probe backoff (counted in
//               LOGICAL dispatches at that shard, never wall clock)
//               admits one probe request back through.
//
// Partial availability is the core guarantee: a sick shard degrades
// through its own service's rungs or sheds with a typed error, while
// every other shard's request stream is untouched — the fleet soak
// asserts healthy shards' traces are byte-identical to a no-fault run.
//
// Determinism contract: for a fixed fault spec and a fixed per-shard
// request order, every routing decision, health transition, and
// re-probe schedule is identical across runs and router thread counts.
// Shard state is guarded per shard, so the contract holds whenever each
// shard's requests arrive in a fixed order (e.g. one submitter per city,
// or cities partitioned across threads). ServiceHealth::queue_depth is
// exposed for operators but NEVER consulted for routing — it is the one
// wall-clock-raced signal in the snapshot.

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/service.h"
#include "util/status.h"

namespace tpr::route {

struct RouterConfig {
  /// Consecutive dispatch failures (route-dispatch fault or admission
  /// error) that quarantine a shard.
  int quarantine_after = 3;

  /// Re-probe backoff, in logical dispatches at the quarantined shard:
  /// the first probe is admitted `backoff_initial + jitter` dispatches
  /// after quarantine; each failed probe doubles the window up to
  /// `backoff_max`. Jitter is deterministic (seeded by shard + attempt).
  uint64_t backoff_initial = 8;
  uint64_t backoff_max = 64;

  /// Seeds the re-probe jitter streams.
  uint64_t seed = 31;

  /// Deadline propagated to shard admission when the request carries
  /// none (<= 0 keeps "no deadline").
  double default_deadline_ms = 0;
};

/// Overlays TPR_ROUTE_QUARANTINE_AFTER / TPR_ROUTE_BACKOFF /
/// TPR_ROUTE_BACKOFF_MAX / TPR_ROUTE_DEADLINE_MS onto `defaults`.
RouterConfig RouterConfigFromEnv(RouterConfig defaults);

/// One shard as the router sees it: a city, a name (also the shard's
/// fault scope + metric prefix stem), and its service.
struct ShardEndpoint {
  int city_id = 0;
  /// Fault-scope name, e.g. "shard0"; must match the service's
  /// ServiceConfig::shard for @-qualified fault rules to line up.
  std::string name;
  /// Must outlive the router.
  serve::InferenceService* service = nullptr;
};

enum class ShardState { kHealthy = 0, kQuarantined = 1 };

const char* ShardStateName(ShardState s);

/// Typed routing outcome, distinguishing who refused the request.
enum class RouteError {
  kNone = 0,          // admitted to the shard
  kNoShardForCity,    // city not in the routing table
  kShardQuarantined,  // shed: shard quarantined, not yet probe time
  kDispatchFault,     // injected route-dispatch fault for this request
  kShardRejected,     // shard admission refused (shed/stopping/fault)
};

const char* RouteErrorName(RouteError e);

/// Router-level health snapshot of one shard. The route_* fields fold
/// deterministically in per-shard dispatch order; `service` is the
/// shard's own snapshot (its queue_depth is advisory — see service.h).
struct ShardHealth {
  int city_id = 0;
  std::string name;
  ShardState state = ShardState::kHealthy;
  uint64_t dispatches = 0;       // logical time: attempts at this shard
  uint64_t admitted = 0;
  uint64_t failures = 0;         // faults + rejections folded
  uint64_t shed = 0;             // refused while quarantined
  int consecutive_failures = 0;
  uint64_t quarantines = 0;      // times the shard entered quarantine
  uint64_t next_probe_at = 0;    // dispatch index of the next probe
  serve::ServiceHealth service;
};

/// A request addressed to a city.
struct CityRequest {
  int city_id = 0;
  serve::PathQuery query;
  double deadline_ms = 0;  // <= 0: RouterConfig::default_deadline_ms
};

/// Admission outcome of one routed request.
struct RoutedSubmit {
  Status status;                   // OK when admitted
  RouteError error = RouteError::kNone;
  int shard_index = -1;            // -1 only for kNoShardForCity
  std::string shard;               // shard name ("" when unmapped)
  std::future<serve::ServeResult> result;  // valid when status.ok()
};

/// Submit + wait outcome of one leg.
struct RouteResult {
  Status status;
  RouteError error = RouteError::kNone;
  int city_id = 0;
  int shard_index = -1;
  std::string shard;
  serve::ServeResult serve;  // valid when status.ok()
};

class Router {
 public:
  /// Endpoints may arrive in any order; the routing table is canonical
  /// over the sorted city set. InvalidArgument-checks (via TPR_CHECK)
  /// duplicate cities and null services.
  Router(std::vector<ShardEndpoint> shards, const RouterConfig& config);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Pure lookup: shard index for a city, -1 when unmapped. Stable
  /// across construction orders and identical on every thread.
  int ShardForCity(int city_id) const;

  /// Routes + health-gates + admits one request. Never blocks on the
  /// embedding result; callers pipeline futures for throughput.
  RoutedSubmit Submit(const CityRequest& req);

  /// Submit + wait.
  RouteResult Dispatch(const CityRequest& req);

  /// A cross-city query: every leg routes independently, any leg may
  /// independently degrade or shed, and the composition reports each
  /// leg's own typed outcome in input order.
  std::vector<RouteResult> DispatchMulti(const std::vector<CityRequest>& legs);

  ShardHealth Health(int shard_index) const;
  std::vector<ShardHealth> FleetHealth() const;

 private:
  /// Mutable per-shard routing state, guarded by its own mutex so
  /// shards never serialize against each other.
  struct ShardRt {
    mutable std::mutex mu;
    ShardState state = ShardState::kHealthy;
    uint64_t dispatches = 0;
    uint64_t admitted = 0;
    uint64_t failures = 0;
    uint64_t shed = 0;
    int consecutive_failures = 0;
    uint64_t quarantines = 0;
    uint64_t probe_attempts = 0;  // failed probes this quarantine
    uint64_t next_probe_at = 0;
    obs::MetricScope metrics;  // "<name>." prefix
  };

  /// Fold one dispatch outcome into the shard's health machine.
  /// Caller holds rt.mu.
  void RecordOutcome(int shard_index, ShardRt& rt, bool success);

  /// Next re-probe dispatch index: doubling window + deterministic
  /// jitter from (seed, city, quarantine episode, attempt).
  uint64_t NextProbeAt(const ShardRt& rt, int city_id) const;

  const RouterConfig config_;
  std::vector<ShardEndpoint> shards_;           // sorted by city_id
  std::unique_ptr<ShardRt[]> rt_;               // parallel to shards_
  std::vector<std::pair<int, int>> table_;      // open-addressed (city, idx)
  uint64_t table_mask_ = 0;
};

}  // namespace tpr::route

#endif  // TPR_ROUTE_ROUTER_H_
