#include "batch/batch.h"

#include <cstdlib>
#include <string>

#include "util/logging.h"
#include "util/rng.h"

namespace tpr::batch {
namespace {

// Salt decorrelating group hashes from every other keyed hash in the
// system (fault verdicts, canary routing, cache keys).
constexpr uint64_t kGroupSalt = 0xBA7C45EEDULL;

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<int64_t>(v);
}

}  // namespace

BatchConfig FromEnv(BatchConfig defaults) {
  defaults.max_batch = static_cast<int>(
      EnvInt64("TPR_BATCH_MAX", defaults.max_batch));
  defaults.max_ticks = static_cast<int>(
      EnvInt64("TPR_BATCH_TICKS", defaults.max_ticks));
  return defaults;
}

BatchFormer::BatchFormer(const BatchConfig& config) : config_(config) {
  TPR_CHECK(config_.max_batch > 0);
  TPR_CHECK(config_.max_ticks > 0);
  TPR_CHECK(config_.time_bucket_s > 0);
}

uint64_t BatchFormer::GroupHash(const graph::Path& path,
                                int64_t encode_time_s, uint64_t salt) {
  uint64_t h = MixSeed(kGroupSalt, salt);
  h = MixSeed(h, static_cast<uint64_t>(encode_time_s));
  for (int edge : path) {
    h = MixSeed(h, static_cast<uint64_t>(static_cast<uint32_t>(edge)) + 1);
  }
  return h;
}

int64_t BatchFormer::EncodeTime(int64_t depart_time_s) const {
  if (!config_.coalesce) return depart_time_s;
  return (depart_time_s / config_.time_bucket_s) * config_.time_bucket_s;
}

std::optional<FormedBatch> BatchFormer::Arrive(uint64_t ticket,
                                               const graph::Path& path,
                                               int64_t depart_time_s,
                                               uint64_t salt) {
  const int64_t encode_time = EncodeTime(depart_time_s);
  const uint64_t key =
      GroupHash(path, encode_time,
                config_.coalesce ? salt : MixSeed(salt, ticket));
  if (config_.coalesce) {
    for (FormedGroup& g : pending_) {
      if (g.key_hash == key && g.encode_time_s == encode_time &&
          g.path == path) {
        g.tickets.push_back(ticket);
        return std::nullopt;  // joined an existing group: no growth
      }
    }
  }
  if (pending_.empty()) oldest_arrival_time_ = logical_time_;
  FormedGroup g;
  g.key_hash = key;
  g.path = path;
  g.encode_time_s = encode_time;
  g.tickets.push_back(ticket);
  pending_.push_back(std::move(g));
  if (pending_.size() >= static_cast<size_t>(config_.max_batch)) {
    return Flush();
  }
  return std::nullopt;
}

std::optional<FormedBatch> BatchFormer::Tick() {
  ++logical_time_;
  if (!pending_.empty() &&
      logical_time_ - oldest_arrival_time_ >=
          static_cast<uint64_t>(config_.max_ticks)) {
    return Flush();
  }
  return std::nullopt;
}

std::optional<FormedBatch> BatchFormer::FlushAll() { return Flush(); }

std::optional<FormedBatch> BatchFormer::Flush() {
  if (pending_.empty()) return std::nullopt;
  FormedBatch batch;
  batch.seq = next_seq_++;
  batch.groups.assign(std::make_move_iterator(pending_.begin()),
                      std::make_move_iterator(pending_.end()));
  pending_.clear();
  return batch;
}

}  // namespace tpr::batch
