#ifndef TPR_BATCH_BATCH_H_
#define TPR_BATCH_BATCH_H_

// Deterministic batch formation for the inference service (`tpr::batch`).
//
// A BatchFormer sits between admission and the encoder workers. It
// collects arriving requests into groups keyed by
// (path, encode-time, generation) and flushes a batch when either
//
//   * the pending batch reaches max_batch distinct groups (size flush), or
//   * the oldest pending arrival is max_ticks logical ticks old (age
//     flush) — a tick is an explicit Tick() call, one per admission in
//     tpr::serve, NEVER wall clock.
//
// Batch formation is therefore a pure function of the Arrive/Tick call
// sequence: the same arrival trace produces the same batch boundaries
// and the same coalescing decisions at any worker count, on any run.
// (The service's idle flush — draining a partial batch when the queue
// goes quiet — is wall-clock triggered and changes only WHICH batch a
// request rides in, never its outcome; see serve/service.h.)
//
// Coalescing. When `coalesce` is on, requests for the same path in the
// same time bucket share one group: the group is encoded ONCE at the
// bucket-representative time (bucket * time_bucket_s — the exact
// contract of the serve rung-1 cache, so the embedding is a pure
// function of the group key) and the result fans out to every waiter.
// With coalescing off, every request is its own group keyed by ticket
// and encodes at its exact departure time.
//
// The group key hash also keys the serve layer's batched fault verdicts
// ("batch-flush", grouped "encoder-forward" retries), which is what
// keeps per-request outcomes independent of batch composition: the
// verdict for a group is the same whether its batch flushed by size, by
// age, or by idle drain.

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "graph/road_network.h"

namespace tpr::batch {

struct BatchConfig {
  /// Size flush threshold: maximum distinct groups per batch (also the
  /// padded GEMM width). Coalesced waiters do not count extra.
  int max_batch = 32;
  /// Age flush threshold in logical ticks. One tick fires per admission,
  /// so this also bounds how many requests an unfilled batch can absorb:
  /// under a duplicate-heavy workload a batch holds up to ~max_ticks
  /// requests coalesced into at most max_batch groups. Sparse traffic
  /// never waits this long — the service's idle drain flushes a partial
  /// batch as soon as the queue goes quiet.
  int max_ticks = 128;
  /// Coalesce duplicate (path, time-bucket) keys into one encode.
  bool coalesce = true;
  /// Time-bucket width for coalescing keys (mirror of the serving
  /// config's rung-1 bucket).
  int64_t time_bucket_s = 900;
};

/// Reads TPR_BATCH_MAX / TPR_BATCH_TICKS over `defaults`. Unset or
/// unparsable variables leave the default untouched.
BatchConfig FromEnv(BatchConfig defaults = {});

/// One formed group: a path to encode once at `encode_time_s`, fanned
/// out to every ticket that joined it.
struct FormedGroup {
  uint64_t key_hash = 0;
  graph::Path path;
  int64_t encode_time_s = 0;
  std::vector<uint64_t> tickets;
};

/// One flushed batch, in group-arrival order.
struct FormedBatch {
  uint64_t seq = 0;  // 0-based flush sequence number
  std::vector<FormedGroup> groups;

  size_t total_requests() const {
    size_t n = 0;
    for (const auto& g : groups) n += g.tickets.size();
    return n;
  }
};

/// Single-threaded batch former (the service calls it under its lock).
class BatchFormer {
 public:
  explicit BatchFormer(const BatchConfig& config);

  /// The group key for (path, encode_time, salt). Pure; `salt` carries
  /// the caller's extra identity (tpr::serve mixes in the pinned model
  /// generation so coalesced groups are generation-homogeneous, plus
  /// the ticket when coalescing is off).
  static uint64_t GroupHash(const graph::Path& path, int64_t encode_time_s,
                            uint64_t salt);

  /// The time a request's group encodes at: the bucket-representative
  /// time when coalescing, the exact departure time otherwise.
  int64_t EncodeTime(int64_t depart_time_s) const;

  /// Adds a request. `salt` must be stable for the request (see
  /// GroupHash). Returns the flushed batch when this arrival filled it
  /// to max_batch groups.
  std::optional<FormedBatch> Arrive(uint64_t ticket, const graph::Path& path,
                                    int64_t depart_time_s, uint64_t salt);

  /// Advances logical time by one tick. Returns the flushed batch when
  /// the oldest pending arrival has aged out.
  std::optional<FormedBatch> Tick();

  /// Unconditionally flushes whatever is pending (service idle drain and
  /// shutdown). Returns nullopt when nothing is pending.
  std::optional<FormedBatch> FlushAll();

  bool has_pending() const { return !pending_.empty(); }
  int pending_groups() const { return static_cast<int>(pending_.size()); }
  uint64_t logical_time() const { return logical_time_; }
  const BatchConfig& config() const { return config_; }

 private:
  std::optional<FormedBatch> Flush();

  BatchConfig config_;
  std::deque<FormedGroup> pending_;  // group-arrival order
  uint64_t logical_time_ = 0;
  uint64_t oldest_arrival_time_ = 0;  // logical time of pending_.front()
  uint64_t next_seq_ = 0;
};

}  // namespace tpr::batch

#endif  // TPR_BATCH_BATCH_H_
