#include "rollout/controller.h"

#include <cstdio>
#include <utility>

#include "ckpt/checkpoint.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "quant/quant.h"
#include "util/logging.h"

namespace tpr::rollout {
namespace {

std::string FormatMae(double mae) {
  if (mae < 0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", mae);
  return buf;
}

}  // namespace

RolloutController::RolloutController(
    serve::InferenceService* service,
    std::shared_ptr<const core::FeatureSpace> features,
    const core::EncoderConfig& encoder_config, core::ProbeSet probe,
    const RolloutConfig& config)
    : service_(service),
      features_(std::move(features)),
      encoder_config_(encoder_config),
      probe_(std::move(probe)),
      config_(config),
      metrics_(config_.metrics_prefix) {
  TPR_CHECK(service_ != nullptr);
  TPR_CHECK(!config_.model_dir.empty());
  TPR_CHECK(config_.quality_budget >= 0.0);
}

Status RolloutController::Init() {
  fault::ScopedShard shard_scope(config_.shard);
  auto loaded = Manifest::Load(config_.model_dir, config_.metrics_prefix);
  if (loaded.ok()) {
    manifest_ = *std::move(loaded);
    // The incumbent's probe score travels with its manifest record, so a
    // restarted controller gates candidates against the same baseline.
    if (const ModelRecord* live = manifest_.Find(manifest_.live_generation())) {
      incumbent_mae_ = live->probe_mae;
    }
  } else if (loaded.status().code() != StatusCode::kNotFound) {
    return loaded.status();
  }
  UpdateGauges();
  return Status::OK();
}

void RolloutController::RefreshProbe(core::ProbeSet probe) {
  probe_ = std::move(probe);
  // Invalidate the cached incumbent score: the next gate evaluation
  // re-scores the live model on the new probe (the `incumbent_mae_ < 0`
  // lazy-recompute path in ScanForCandidate).
  incumbent_mae_ = -1.0;
  metrics_.counter("rollout.probe_refreshes").Add(1);
}

StatusOr<TickReport> RolloutController::Tick() {
  fault::ScopedShard shard_scope(config_.shard);
  TickReport report;
  while (auto res = service_->TakeCanaryResolution()) {
    ApplyResolution(*res, &report);
  }
  if (!service_->canary_status().installed) {
    bool advanced = false;
    TPR_RETURN_IF_ERROR(ScanForCandidate(&report, &advanced));
  }
  if (dirty_) {
    Status published =
        manifest_.Publish(config_.model_dir, config_.metrics_prefix);
    if (published.ok()) {
      dirty_ = false;
      report.published = true;
      report.events.push_back(
          "published manifest (publish " +
          std::to_string(manifest_.publish_count()) + ")");
    } else {
      // A torn publish left a corrupt MANIFEST behind; the mirror still
      // holds the last good state and the next tick republishes.
      report.events.push_back("publish failed: " + published.message());
    }
  }
  UpdateGauges();
  return report;
}

void RolloutController::ApplyResolution(const serve::CanaryResolution& res,
                                        TickReport* report) {
  const std::string traffic = " (routed " + std::to_string(res.routed) +
                              ", clean " + std::to_string(res.clean) + ")";
  if (res.verdict == serve::CanaryVerdict::kPromoted) {
    const uint64_t prev_live = manifest_.live_generation();
    if (ModelRecord* old_live = manifest_.Find(prev_live)) {
      ModelRecord retired = *old_live;
      retired.state = ModelState::kRetired;
      retired.reason = "superseded by gen " + std::to_string(res.generation);
      manifest_.Upsert(std::move(retired));
    }
    ModelRecord rec;
    if (const ModelRecord* existing = manifest_.Find(res.generation)) {
      rec = *existing;
    }
    rec.generation = res.generation;
    rec.state = ModelState::kLive;
    rec.reason = res.reason;
    incumbent_mae_ = rec.probe_mae;
    manifest_.Upsert(std::move(rec));
    manifest_.set_live_generation(res.generation);
    manifest_.set_canary_generation(0);
    // Best-effort retention pin: the live generation's ckpt file is
    // exempt from keep-last-K pruning so a restart can always reload
    // the serving model even after many candidate publishes.
    (void)ckpt::CheckpointDir(config_.model_dir).Pin(res.generation);
    metrics_.counter("rollout.promoted").Add(1);
    report->events.push_back("canary gen " + std::to_string(res.generation) +
                             " promoted: " + res.reason + traffic);
  } else {
    double probe_mae = -1.0;
    if (const ModelRecord* existing = manifest_.Find(res.generation)) {
      probe_mae = existing->probe_mae;
    }
    QuarantineGeneration(res.generation, probe_mae,
                         "canary rolled back: " + res.reason + traffic,
                         report);
    manifest_.set_canary_generation(0);
    metrics_.counter("rollout.rolled_back").Add(1);
  }
  dirty_ = true;
}

Status RolloutController::ScanForCandidate(TickReport* report,
                                           bool* advanced) {
  *advanced = false;
  ckpt::CheckpointDir dir(config_.model_dir);
  for (uint64_t seq : dir.ListSeqs()) {
    if (manifest_.Find(seq) != nullptr) continue;  // already decided

    // Gate 1: the file must read and its envelope must validate. Read
    // errors are transient (a flaky disk, an injected ckpt-read fault):
    // leave the file alone and retry on a later tick.
    auto bytes = ckpt::ReadFileBytes(dir.PathFor(seq));
    if (!bytes.ok()) {
      report->events.push_back("gen " + std::to_string(seq) +
                               " unreadable, will retry: " +
                               bytes.status().message());
      return Status::OK();
    }
    metrics_.counter("rollout.candidates").Add(1);
    auto payload = ckpt::UnwrapPayload(*bytes);
    if (!payload.ok()) {
      QuarantineGeneration(
          seq, -1.0, "envelope: " + payload.status().message(), report);
      continue;
    }

    // Gate 2: decode against the configured encoder shape.
    auto decoded = serve::InferenceService::DecodeModelPayload(
        *payload, features_, encoder_config_);
    if (!decoded.ok()) {
      QuarantineGeneration(seq, -1.0,
                           "decode: " + decoded.status().message(), report);
      continue;
    }
    if (decoded->generation != seq) {
      QuarantineGeneration(seq, -1.0,
                           "generation mismatch: payload says " +
                               std::to_string(decoded->generation),
                           report);
      continue;
    }

    // Gate 3: finite parameters.
    if (!core::AllParametersFinite(*decoded->encoder)) {
      QuarantineGeneration(seq, -1.0, "non-finite parameters", report);
      continue;
    }

    // Gate 4: golden-probe quality.
    auto cand_mae = core::ProbeTravelTimeMae(*decoded->encoder, probe_);
    if (!cand_mae.ok()) {
      QuarantineGeneration(seq, -1.0,
                           "probe: " + cand_mae.status().message(), report);
      continue;
    }

    const bool bootstrap = service_->live_model() == nullptr;
    if (!bootstrap) {
      if (incumbent_mae_ < 0) {
        // The live model was installed outside the controller (e.g. a
        // direct LoadModel); score it once so the gate has a baseline.
        auto inc = core::ProbeTravelTimeMae(*service_->live_model(), probe_);
        if (inc.ok()) incumbent_mae_ = *inc;
      }
      metrics_.gauge("rollout.canary_probe_delta")
          .Set(incumbent_mae_ >= 0 ? *cand_mae - incumbent_mae_ : 0.0);
      if (incumbent_mae_ >= 0 &&
          *cand_mae > incumbent_mae_ * (1.0 + config_.quality_budget)) {
        QuarantineGeneration(seq, *cand_mae,
                             "quality regression: probe mae " +
                                 FormatMae(*cand_mae) + " vs incumbent " +
                                 FormatMae(incumbent_mae_) + " (budget " +
                                 std::to_string(config_.quality_budget) + ")",
                             report);
        continue;
      }
    }

    // Gate 5: the int8-quantized twin. Most expensive gate, so it runs
    // last; the golden-probe queries double as the calibration set, so
    // twin and candidate are calibrated and scored on identical inputs.
    std::shared_ptr<const quant::QuantizedEncoder> twin;
    if (config_.quantize_twins && quant::QuantEnabledFromEnv() &&
        encoder_config_.sequence_model == core::SequenceModel::kLstm) {
      std::vector<core::PathTimeItem> calibration;
      calibration.reserve(probe_.queries.size());
      for (const auto& q : probe_.queries) {
        calibration.push_back({&q.path, q.depart_time_s});
      }
      auto qmodel = quant::QuantizeEncoder(*decoded->encoder, calibration);
      if (!qmodel.ok()) {
        QuarantineGeneration(
            seq, *cand_mae,
            "quantized twin build: " + qmodel.status().message(), report);
        continue;
      }
      qmodel->generation = seq;
      auto built = std::make_shared<const quant::QuantizedEncoder>(
          features_, *std::move(qmodel));
      auto twin_mae = core::ProbeTravelTimeMaeWith(
          [&built](const graph::Path& path, int64_t depart_time_s) {
            return built->EncodeValue(path, depart_time_s);
          },
          built->representation_dim(), probe_);
      if (!twin_mae.ok()) {
        QuarantineGeneration(
            seq, *cand_mae,
            "quantized twin probe: " + twin_mae.status().message(), report);
        continue;
      }
      metrics_.gauge("rollout.quant_probe_delta").Set(*twin_mae - *cand_mae);
      if (*twin_mae > *cand_mae * (1.0 + config_.quant_mae_delta)) {
        // The twin fails -> the candidate it shadows goes with it: a
        // generation is only servable as the fp32 + int8 pair.
        QuarantineGeneration(seq, *cand_mae,
                             "quantized twin mae " + FormatMae(*twin_mae) +
                                 " vs fp32 candidate " + FormatMae(*cand_mae) +
                                 " (delta budget " +
                                 std::to_string(config_.quant_mae_delta) + ")",
                             report);
        continue;
      }
      Status saved = quant::SaveQuantizedModel(config_.model_dir,
                                               built->model(), seq);
      if (!saved.ok()) {
        // The in-memory twin still serves this process; only a restarted
        // service loses the quantized rung for this generation.
        metrics_.counter("rollout.quant_artifact_failures").Add(1);
        report->events.push_back("gen " + std::to_string(seq) +
                                 " quant artifact save failed: " +
                                 saved.message());
      }
      metrics_.counter("rollout.quant_twins").Add(1);
      report->events.push_back("gen " + std::to_string(seq) +
                               " quantized twin passed (mae " +
                               FormatMae(*twin_mae) + " vs fp32 " +
                               FormatMae(*cand_mae) + ")");
      twin = std::move(built);
    } else {
      report->events.push_back("gen " + std::to_string(seq) +
                               " quantized twin skipped");
    }

    if (bootstrap) {
      // Bootstrap: the first valid generation goes straight to live —
      // there is no incumbent to canary against.
      service_->InstallModel(decoded->encoder, seq, twin);
      incumbent_mae_ = *cand_mae;
      ModelRecord rec;
      rec.generation = seq;
      rec.state = ModelState::kLive;
      rec.probe_mae = *cand_mae;
      rec.reason = "bootstrap";
      manifest_.Upsert(std::move(rec));
      manifest_.set_live_generation(seq);
      (void)ckpt::CheckpointDir(config_.model_dir).Pin(seq);
      dirty_ = true;
      metrics_.counter("rollout.bootstraps").Add(1);
      report->events.push_back("gen " + std::to_string(seq) +
                               " bootstrapped live (mae " +
                               FormatMae(*cand_mae) + ")");
      *advanced = true;
      return Status::OK();
    }

    TPR_RETURN_IF_ERROR(service_->BeginCanary(decoded->encoder, seq, twin));
    ModelRecord rec;
    rec.generation = seq;
    rec.state = ModelState::kCanary;
    rec.probe_mae = *cand_mae;
    rec.incumbent_mae = incumbent_mae_;
    rec.reason = "validated";
    manifest_.Upsert(std::move(rec));
    manifest_.set_canary_generation(seq);
    dirty_ = true;
    metrics_.counter("rollout.canaries").Add(1);
    report->events.push_back("gen " + std::to_string(seq) +
                             " passed validation, canarying (mae " +
                             FormatMae(*cand_mae) + " vs incumbent " +
                             FormatMae(incumbent_mae_) + ")");
    *advanced = true;
    return Status::OK();
  }
  return Status::OK();
}

void RolloutController::QuarantineGeneration(uint64_t generation,
                                             double probe_mae,
                                             const std::string& reason,
                                             TickReport* report) {
  // Best effort on disk: the file may already be gone (pruned) or the
  // quarantine may race a prune; the manifest record is what guarantees
  // the generation is never offered again. The quantized twin artifact
  // never outlives its fp32 generation.
  (void)ckpt::CheckpointDir(config_.model_dir).Quarantine(generation);
  quant::RemoveQuantArtifact(config_.model_dir, generation);
  ModelRecord rec;
  rec.generation = generation;
  rec.state = ModelState::kQuarantined;
  rec.probe_mae = probe_mae;
  rec.incumbent_mae = incumbent_mae_;
  rec.reason = reason;
  manifest_.Upsert(std::move(rec));
  dirty_ = true;
  metrics_.counter("rollout.quarantined").Add(1);
  report->events.push_back("gen " + std::to_string(generation) +
                           " quarantined: " + reason);
}

void RolloutController::UpdateGauges() const {
  metrics_.gauge("rollout.live_generation")
      .Set(static_cast<double>(manifest_.live_generation()));
  metrics_.gauge("rollout.canary_generation")
      .Set(static_cast<double>(manifest_.canary_generation()));
}

}  // namespace tpr::rollout
