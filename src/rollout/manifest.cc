#include "rollout/manifest.h"

#include <fstream>
#include <utility>

#include "ckpt/checkpoint.h"
#include "ckpt/serialize.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace tpr::rollout {
namespace {

constexpr char kManifestTag[] = "tpr-rollout-manifest";
constexpr uint32_t kManifestVersion = 1;

}  // namespace

const char* ModelStateName(ModelState s) {
  switch (s) {
    case ModelState::kCandidate:
      return "candidate";
    case ModelState::kCanary:
      return "canary";
    case ModelState::kLive:
      return "live";
    case ModelState::kQuarantined:
      return "quarantined";
    case ModelState::kRetired:
      return "retired";
  }
  return "?";
}

const ModelRecord* Manifest::Find(uint64_t generation) const {
  for (const ModelRecord& r : records_) {
    if (r.generation == generation) return &r;
  }
  return nullptr;
}

ModelRecord* Manifest::Find(uint64_t generation) {
  for (ModelRecord& r : records_) {
    if (r.generation == generation) return &r;
  }
  return nullptr;
}

void Manifest::Upsert(ModelRecord rec) {
  rec.decided_at_publish = publish_count_ + 1;  // the upcoming publish
  if (ModelRecord* existing = Find(rec.generation)) {
    *existing = std::move(rec);
    return;
  }
  records_.push_back(std::move(rec));
}

std::string Manifest::Encode() const {
  ckpt::Writer w;
  w.Str(kManifestTag);
  w.U32(kManifestVersion);
  w.U64(publish_count_);
  w.U64(live_generation_);
  w.U64(canary_generation_);
  w.U64(records_.size());
  for (const ModelRecord& r : records_) {
    w.U64(r.generation);
    w.U8(static_cast<uint8_t>(r.state));
    w.F64(r.probe_mae);
    w.F64(r.incumbent_mae);
    w.U64(r.decided_at_publish);
    w.Str(r.reason);
  }
  return w.TakeBytes();
}

StatusOr<Manifest> Manifest::Decode(std::string_view payload) {
  ckpt::Reader r(payload);
  std::string tag;
  uint32_t version = 0;
  TPR_RETURN_IF_ERROR(r.Str(&tag));
  if (tag != kManifestTag) {
    return Status::FailedPrecondition("not a rollout manifest");
  }
  TPR_RETURN_IF_ERROR(r.U32(&version));
  if (version == 0 || version > kManifestVersion) {
    return Status::FailedPrecondition("unsupported manifest version " +
                                      std::to_string(version));
  }
  Manifest m;
  uint64_t count = 0;
  TPR_RETURN_IF_ERROR(r.U64(&m.publish_count_));
  TPR_RETURN_IF_ERROR(r.U64(&m.live_generation_));
  TPR_RETURN_IF_ERROR(r.U64(&m.canary_generation_));
  TPR_RETURN_IF_ERROR(r.U64(&count));
  m.records_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ModelRecord rec;
    uint8_t state = 0;
    TPR_RETURN_IF_ERROR(r.U64(&rec.generation));
    TPR_RETURN_IF_ERROR(r.U8(&state));
    if (state > static_cast<uint8_t>(ModelState::kRetired)) {
      return Status::FailedPrecondition("unknown model state " +
                                        std::to_string(state));
    }
    rec.state = static_cast<ModelState>(state);
    TPR_RETURN_IF_ERROR(r.F64(&rec.probe_mae));
    TPR_RETURN_IF_ERROR(r.F64(&rec.incumbent_mae));
    TPR_RETURN_IF_ERROR(r.U64(&rec.decided_at_publish));
    TPR_RETURN_IF_ERROR(r.Str(&rec.reason));
    m.records_.push_back(std::move(rec));
  }
  return m;
}

Status Manifest::Publish(const std::string& dir,
                         const std::string& metrics_prefix) {
  ++publish_count_;
  const std::string bytes = ckpt::WrapPayload(Encode());
  const std::string path = dir + "/" + kFileName;
  // Injected torn publish: a plain (non-atomic) truncated write lands in
  // MANIFEST — exactly what a crash mid-write without the rename
  // protocol would leave. Load() detects it via the envelope CRC and
  // falls back to the mirror.
  if (fault::ShouldFail(fault::kRolloutPublish)) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
    obs::GetCounter(metrics_prefix + "rollout.publish_torn").Add(1);
    return Status::Internal("injected torn manifest publish in " + dir);
  }
  TPR_RETURN_IF_ERROR(ckpt::AtomicWriteFile(path, bytes));
  TPR_RETURN_IF_ERROR(
      ckpt::AtomicWriteFile(dir + "/" + kBackupName, bytes));
  obs::GetCounter(metrics_prefix + "rollout.publishes").Add(1);
  return Status::OK();
}

StatusOr<Manifest> Manifest::Load(const std::string& dir,
                                  const std::string& metrics_prefix) {
  for (const char* name : {kFileName, kBackupName}) {
    auto bytes = ckpt::ReadFileBytes(dir + "/" + std::string(name));
    if (!bytes.ok()) continue;
    auto payload = ckpt::UnwrapPayload(*bytes);
    if (!payload.ok()) {
      obs::GetCounter(metrics_prefix + "rollout.manifest_torn").Add(1);
      continue;
    }
    auto manifest = Manifest::Decode(*payload);
    if (manifest.ok()) return manifest;
    obs::GetCounter(metrics_prefix + "rollout.manifest_torn").Add(1);
  }
  return Status::NotFound("no valid rollout manifest in " + dir);
}

}  // namespace tpr::rollout
