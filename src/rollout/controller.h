#ifndef TPR_ROLLOUT_CONTROLLER_H_
#define TPR_ROLLOUT_CONTROLLER_H_

// Validated hot-model rollout.
//
// The RolloutController closes the loop between the trainer's serve
// checkpoints and the inference service: it watches a ckpt directory for
// new model generations, validates each candidate *offline* before it
// can touch traffic, canaries the survivors on a deterministic keyed
// slice of requests, and promotes or rolls back based on what the
// traffic shows — recording every decision in the durable lineage
// manifest (manifest.h).
//
// Validation gate, in order, cheapest first:
//   1. envelope      the ckpt CRC envelope must validate (else the file
//                    is moved to quarantine/ on disk)
//   2. decode        the payload must decode against the configured
//                    EncoderConfig (tag, dims, parameter shapes)
//   3. finiteness    every parameter value must be finite
//   4. quality       golden-probe travel-time MAE must stay within
//                    `quality_budget` (relative) of the incumbent's
//   5. quant twin    the candidate's int8-quantized twin (tpr::quant)
//                    must hold probe MAE within `quant_mae_delta`
//                    (relative) of the fp32 candidate's; a passing twin
//                    is published beside the ckpt as quant-<seq>.q8 and
//                    installed with the candidate, a failing twin
//                    quarantines the candidate with it
//
// A gate failure quarantines the generation — on disk AND in the
// manifest — so it is never offered again, including across controller
// restarts. A gate pass starts a canary via the serving layer, whose
// promote/rollback resolution the controller folds back into the
// manifest on a later tick.
//
// Tick discipline. All work happens in explicit Tick() calls on the
// caller's thread; the controller owns no threads and never sleeps.
// Callers that interleave Tick() with request traffic at fixed points
// (the soak tests, the churn bench) therefore get a bitwise-reproducible
// rollout trace at any worker count.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/encoder.h"
#include "core/features.h"
#include "core/probe.h"
#include "obs/metrics.h"
#include "rollout/manifest.h"
#include "serve/service.h"
#include "util/status.h"

namespace tpr::rollout {

struct RolloutConfig {
  /// The ckpt::CheckpointDir the trainer publishes serve models into;
  /// the manifest lives alongside the generation files.
  std::string model_dir;
  /// Relative probe-MAE regression budget: a candidate passes the
  /// quality gate when probe_mae <= incumbent_mae * (1 + budget).
  double quality_budget = 0.10;
  /// Quantized-twin budget: the int8 twin passes gate 5 when
  /// twin_mae <= candidate_mae * (1 + quant_mae_delta). A negative
  /// delta fails every twin deterministically — a quarantine drill.
  double quant_mae_delta = 0.25;
  /// Build, gate, and publish an int8 twin with every candidate.
  /// TPR_QUANT=0/off also disables twins process-wide.
  bool quantize_twins = true;
  /// Shard identity (fleet mode): a non-empty `shard` scopes the fault
  /// sites touched during Init/Tick (rollout-publish, ckpt reads) to
  /// `site@shard` rules; `metrics_prefix` namespaces the rollout
  /// counters/gauges ("shard0." -> "shard0.rollout.promoted"). Empty
  /// defaults keep the single-controller behavior and global names.
  std::string shard;
  std::string metrics_prefix;
};

/// What one Tick() did, for logging and assertions. Events are ordered,
/// human-readable, and deterministic under the tick discipline above.
struct TickReport {
  std::vector<std::string> events;
  bool published = false;
};

class RolloutController {
 public:
  /// `service` must outlive the controller. `probe` is the golden probe
  /// set every candidate (and incumbent) is scored on.
  RolloutController(serve::InferenceService* service,
                    std::shared_ptr<const core::FeatureSpace> features,
                    const core::EncoderConfig& encoder_config,
                    core::ProbeSet probe, const RolloutConfig& config);

  /// Recovers state from an existing manifest (quarantined generations
  /// stay quarantined across restarts). A missing manifest is a fresh
  /// start, not an error.
  Status Init();

  /// One control-loop step:
  ///   1. fold any canary resolution from the service into the manifest
  ///      (promote -> live, retire the old incumbent; rollback ->
  ///      quarantine on disk and in the manifest),
  ///   2. when no canary is in flight, scan for the oldest unseen
  ///      generation and run it through the validation gate — starting a
  ///      canary, bootstrapping the first live model, or quarantining,
  ///   3. publish the manifest if anything changed (a torn publish is
  ///      reported in the TickReport and retried next tick).
  StatusOr<TickReport> Tick();

  const Manifest& manifest() const { return manifest_; }

  /// Incumbent probe MAE (negative before a live model exists).
  double incumbent_mae() const { return incumbent_mae_; }

  /// Replaces the golden probe set — the drift loop swaps in queries
  /// labeled under the CURRENT (post-shift) traffic so incumbent and
  /// adapted candidate are scored on the same world. The cached
  /// incumbent MAE is invalidated and lazily recomputed against the new
  /// probe at the next gate evaluation.
  void RefreshProbe(core::ProbeSet probe);

 private:
  /// Folds one canary resolution into the manifest.
  void ApplyResolution(const serve::CanaryResolution& res,
                       TickReport* report);

  /// Runs the oldest unseen generation through the validation gate.
  /// Returns true when a canary was started or a live model installed
  /// (at most one per tick).
  Status ScanForCandidate(TickReport* report, bool* advanced);

  /// Quarantines `generation` on disk (best effort) and in the manifest.
  void QuarantineGeneration(uint64_t generation, double probe_mae,
                            const std::string& reason, TickReport* report);

  void UpdateGauges() const;

  serve::InferenceService* const service_;
  const std::shared_ptr<const core::FeatureSpace> features_;
  const core::EncoderConfig encoder_config_;
  core::ProbeSet probe_;  // mutable: RefreshProbe swaps in fresh labels
  const RolloutConfig config_;
  const obs::MetricScope metrics_;  // prefix = config_.metrics_prefix
  Manifest manifest_;
  /// Probe MAE of the current incumbent; recomputed on bootstrap and
  /// carried over from the candidate's score on promotion.
  double incumbent_mae_ = -1.0;
  bool dirty_ = false;  // manifest changed since last successful publish
};

}  // namespace tpr::rollout

#endif  // TPR_ROLLOUT_CONTROLLER_H_
