#ifndef TPR_ROLLOUT_MANIFEST_H_
#define TPR_ROLLOUT_MANIFEST_H_

// Rollout lineage manifest.
//
// The manifest is the durable record of every model generation the
// rollout controller has ever seen and what became of it:
//
//   candidate ──validation──▶ canary ──clean traffic──▶ live ─▶ retired
//        │                      │
//        └──────── gate ────────┴──── trip / regression ──▶ quarantined
//
// It is published to `<dir>/MANIFEST` as a CRC-enveloped file written
// with the ckpt atomic-write protocol, mirrored to `MANIFEST.bak` so a
// torn publish (simulated by the `rollout-publish` fault site, which
// writes a deliberately truncated non-atomic file) is detected by the
// envelope CRC on load and recovered from the mirror. Terminal states
// (quarantined, retired) are how the controller remembers across
// restarts that a generation must never be offered again.
//
// Time is logical: decisions are stamped with the manifest's publish
// counter, never wall clock, so two runs of the same rollout sequence
// produce byte-identical manifests.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace tpr::rollout {

/// Lifecycle state of one model generation.
enum class ModelState {
  kCandidate = 0,    // discovered, not yet validated
  kCanary = 1,       // validated, taking a keyed fraction of traffic
  kLive = 2,         // the incumbent
  kQuarantined = 3,  // failed a gate, a canary, or envelope validation
  kRetired = 4,      // was live, superseded by a promoted canary
};

const char* ModelStateName(ModelState s);

/// One generation's lineage entry.
struct ModelRecord {
  uint64_t generation = 0;
  ModelState state = ModelState::kCandidate;
  /// Golden-probe travel-time MAE of this generation; negative when it
  /// was never probed (e.g. quarantined before decoding).
  double probe_mae = -1.0;
  /// The incumbent's probe MAE at decision time (the gate baseline);
  /// negative when there was no incumbent (bootstrap).
  double incumbent_mae = -1.0;
  /// Logical decision time: the manifest publish count when this record
  /// last changed state.
  uint64_t decided_at_publish = 0;
  std::string reason;
};

/// In-memory manifest: an ordered list of generation records plus the
/// current live/canary pointers and the logical publish clock.
class Manifest {
 public:
  static constexpr char kFileName[] = "MANIFEST";
  static constexpr char kBackupName[] = "MANIFEST.bak";

  /// Record for `generation`, or nullptr. Records are unique per
  /// generation.
  const ModelRecord* Find(uint64_t generation) const;
  ModelRecord* Find(uint64_t generation);

  /// Inserts or replaces the record for `rec.generation`, stamping its
  /// decided_at_publish with the upcoming publish count. First insertion
  /// order is preserved.
  void Upsert(ModelRecord rec);

  const std::vector<ModelRecord>& records() const { return records_; }
  uint64_t live_generation() const { return live_generation_; }
  uint64_t canary_generation() const { return canary_generation_; }
  void set_live_generation(uint64_t g) { live_generation_ = g; }
  void set_canary_generation(uint64_t g) { canary_generation_ = g; }
  uint64_t publish_count() const { return publish_count_; }

  /// Serialized payload (before envelope wrapping).
  std::string Encode() const;

  /// Inverse of Encode. FailedPrecondition on a foreign tag or version.
  static StatusOr<Manifest> Decode(std::string_view payload);

  /// Increments the publish clock and durably writes the manifest to
  /// `<dir>/MANIFEST` (atomic write) and then to the `MANIFEST.bak`
  /// mirror. An active `rollout-publish` fault instead leaves a torn,
  /// non-atomically-written MANIFEST behind — the failure mode the
  /// backup exists for — and returns Internal; the caller retries on a
  /// later tick. `metrics_prefix` namespaces the publish counters
  /// (per-shard controllers pass theirs; the default keeps the global
  /// "rollout.publishes" names).
  Status Publish(const std::string& dir, const std::string& metrics_prefix = "");

  /// Loads `<dir>/MANIFEST`, falling back to the mirror when the primary
  /// is missing or fails envelope validation (counting the fallback via
  /// the rollout.manifest_torn counter). NotFound when neither exists.
  static StatusOr<Manifest> Load(const std::string& dir,
                                 const std::string& metrics_prefix = "");

 private:
  std::vector<ModelRecord> records_;
  uint64_t live_generation_ = 0;    // 0 = none
  uint64_t canary_generation_ = 0;  // 0 = none
  uint64_t publish_count_ = 0;
};

}  // namespace tpr::rollout

#endif  // TPR_ROLLOUT_MANIFEST_H_
