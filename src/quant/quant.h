#ifndef TPR_QUANT_QUANT_H_
#define TPR_QUANT_QUANT_H_

// Post-training int8 quantization of the temporal path encoder
// (tpr::quant). The serving ladder's intermediate rung: ~4x smaller
// weights and a >=2x faster forward than fp32 EncodeValue, at a probe
// MAE gated within a configurable delta of the fp32 candidate by
// tpr::rollout.
//
// Scheme: per-channel symmetric int8. Every output channel c of a
// weight matrix gets scale_c = max|w_c| / 127 and stores
// q = round_to_nearest_even(w / scale_c), so dequantized error is
// <= scale_c / 2 element-wise. Activations use static per-layer scales
// from min/max observers run over a calibration set (the golden probe
// queries): the observed range maps to [-127, 127]; runtime values
// beyond it saturate. Observers reduce with max, which is
// order-independent, so calibration is bitwise identical run-to-run,
// across thread counts, and across TPR_KERNEL legs (the calibration
// forward is a local scalar fp32 reference, never the dispatched
// kernels).
//
// The quantized forward runs gate GEMMs in int8 via kern::GemmInt8Wide
// (exact integer accumulation over construction-time int16-widened
// weight panels — scalar and avx2 agree bitwise) with dequant/quantize
// epilogues that are themselves bitwise kernel-independent, then the
// dispatched fused LSTM cell. The projection head is dropped entirely:
// serving consumes the pre-projection TPR, so the quantized artifact
// never carries it.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/encoder.h"
#include "core/features.h"
#include "util/status.h"

namespace tpr::quant {

/// Per-channel symmetric int8 matrix, stored pre-packed for
/// kern::GemmInt8: row c holds output channel c's `cols` weights
/// contiguously (the transpose of the fp32 (k x n) layout).
struct QuantizedTensor {
  int rows = 0;  // output channels (n of the fp32 matrix)
  int cols = 0;  // inputs per channel (k)
  std::vector<int8_t> data;   // rows * cols
  std::vector<float> scales;  // rows (per-channel dequant scales)
};

/// One quantized LSTM layer. Bias stays fp32 (it is added after
/// dequantization); in_scale / hidden_scale are the static activation
/// scales for the layer input rows and the recurrent hidden state.
struct QuantizedLstmLayer {
  QuantizedTensor w_ih;  // 4h x input
  QuantizedTensor w_hh;  // 4h x h
  std::vector<float> bias;  // 4h
  float in_scale = 1.0f;
  float hidden_scale = 1.0f;
};

/// A small fp32 lookup table (the categorical embeddings — a few
/// hundred floats, not worth quantizing).
struct FloatTable {
  int rows = 0;
  int cols = 0;
  std::vector<float> data;  // rows * cols
};

/// The complete int8 serving artifact for one encoder generation.
/// Everything EncodeValue needs except the frozen FeatureSpace, which
/// the quantized twin shares with its fp32 counterpart.
struct QuantizedModel {
  uint64_t generation = 0;
  int input_dim = 0;
  int d_hidden = 0;
  uint8_t aggregation = 0;  // core::Aggregation
  bool use_temporal = true;
  FloatTable road_type_table;
  FloatTable lanes_table;
  FloatTable oneway_table;
  FloatTable signal_table;
  std::vector<QuantizedLstmLayer> layers;

  /// Bytes of int8 weight payload (the ~4x-compressed part).
  size_t WeightBytes() const;
};

/// Running |max| observer. Max-reduction is order-independent, which is
/// what makes calibration deterministic across thread counts.
struct MinMaxObserver {
  float max_abs = 0.0f;
  void Observe(const float* x, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      const float a = x[i] < 0.0f ? -x[i] : x[i];
      if (a > max_abs) max_abs = a;
    }
  }
  void Merge(const MinMaxObserver& other) {
    if (other.max_abs > max_abs) max_abs = other.max_abs;
  }
  /// Symmetric int8 scale; an all-zero range maps to 1.0f so
  /// quant/dequant stay well-defined.
  float Scale() const { return max_abs > 0.0f ? max_abs / 127.0f : 1.0f; }
};

/// Quantizes a (k x n) fp32 weight matrix per output channel (column)
/// into the packed-transposed int8 form. Round-to-nearest-even on
/// w / scale_c, so |dequant(quant(w)) - w| <= scale_c / 2 element-wise.
QuantizedTensor QuantizePerChannel(const nn::Tensor& w);

/// Quantizes an LSTM encoder's weights with activation scales calibrated
/// over `calibration` (typically the golden-probe queries). The
/// calibration forward is a self-contained scalar fp32 reference — the
/// result is bitwise independent of TPR_KERNEL and TPR_THREADS.
/// FailedPrecondition for transformer encoders, InvalidArgument for an
/// empty calibration set.
StatusOr<QuantizedModel> QuantizeEncoder(
    const core::TemporalPathEncoder& encoder,
    const std::vector<core::PathTimeItem>& calibration);

// ---------------------------------------------------------------------------
// Artifact serialization. The payload goes inside the standard TPRC
// CRC envelope (ckpt::WrapPayload), written beside each checkpoint
// generation as quant-<seq>.q8.
// ---------------------------------------------------------------------------

std::string EncodeQuantizedModel(const QuantizedModel& model);
StatusOr<QuantizedModel> DecodeQuantizedModel(std::string_view payload);

/// `<dir>/quant-<seq>.q8`.
std::string QuantArtifactPath(const std::string& dir, uint64_t seq);

/// Envelope-wraps and atomically writes the artifact beside the
/// checkpoint generation.
Status SaveQuantizedModel(const std::string& dir, const QuantizedModel& model,
                          uint64_t seq);

/// Reads (through the ckpt-read fault site), validates the envelope,
/// and decodes. NotFound when no artifact exists for `seq`.
StatusOr<QuantizedModel> LoadQuantizedModel(const std::string& dir,
                                            uint64_t seq);

/// Best-effort removal (quarantine cleanup); missing file is fine.
void RemoveQuantArtifact(const std::string& dir, uint64_t seq);

// ---------------------------------------------------------------------------
// Inference
// ---------------------------------------------------------------------------

/// Int8 inference twin of core::TemporalPathEncoder. EncodeValue returns
/// the pre-projection TPR exactly like the fp32 EncodeValue does, from
/// the same FeatureSpace. Deterministic for a fixed TPR_KERNEL;
/// identical across kernels up to the fused LSTM cell (the GEMMs are
/// exact, the epilogues scalar).
class QuantizedEncoder {
 public:
  QuantizedEncoder(std::shared_ptr<const core::FeatureSpace> features,
                   QuantizedModel model);

  std::vector<float> EncodeValue(const graph::Path& path,
                                 int64_t depart_time_s) const;

  /// Batched form used by the serve rung's group-level path. All items'
  /// timesteps share one input-side GEMM and the recurrent steps run in
  /// lockstep across items (per-step GEMMs are m = active items, not
  /// m = 1), which is where the rung's encode-rate advantage over the
  /// fp32 path comes from. Every per-row op matches the single-item
  /// path exactly, so a batch result row is bitwise equal to the
  /// corresponding single EncodeValue.
  std::vector<std::vector<float>> EncodeValueBatch(
      const std::vector<core::PathTimeItem>& items) const;

  int representation_dim() const { return model_.d_hidden; }
  uint64_t generation() const { return model_.generation; }
  const QuantizedModel& model() const { return model_; }

 private:
  /// T x input_dim feature matrix, assembled exactly like the fp32
  /// encoder's (categorical lookups + node2vec endpoints + temporal
  /// vector).
  std::vector<float> BuildFeatures(const graph::Path& path,
                                   int64_t depart_time_s) const;

  std::shared_ptr<const core::FeatureSpace> features_;
  QuantizedModel model_;
  /// Runtime-only int16 copies of each layer's packed weight panels,
  /// widened once at construction for kern::GemmInt8Wide. The artifact
  /// stays int8 (the ~4x size win); this trades 2x in-memory weight
  /// bytes for the avx2 inner loop skipping per-iteration sign
  /// extension. Indexed [layer], w_ih then w_hh.
  std::vector<std::vector<int16_t>> w_ih_wide_;
  std::vector<std::vector<int16_t>> w_hh_wide_;
};

/// TPR_QUANT knob: "0" or "off" disables the quantized rung and twin
/// building; anything else (including unset) leaves them on.
bool QuantEnabledFromEnv();

}  // namespace tpr::quant

#endif  // TPR_QUANT_QUANT_H_
