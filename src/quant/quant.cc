#include "quant/quant.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ckpt/checkpoint.h"
#include "ckpt/serialize.h"
#include "graph/road_network.h"
#include "kern/kern.h"
#include "par/thread_pool.h"
#include "util/logging.h"

namespace tpr::quant {
namespace {

constexpr char kModelTag[] = "tpr-quant-model";
constexpr uint32_t kModelVersion = 1;

// Sanity ceiling for decoded dimensions: far above any real encoder
// config, low enough that a corrupt length can never drive a huge
// allocation.
constexpr int kMaxDim = 1 << 20;

const float* TableRow(const FloatTable& table, int id) {
  TPR_CHECK(id >= 0 && id < table.rows)
      << "quant table lookup out of range: " << id << " vs " << table.rows;
  return table.data.data() + static_cast<size_t>(id) * table.cols;
}

FloatTable CopyTable(const nn::Tensor& t) {
  FloatTable out;
  out.rows = t.rows();
  out.cols = t.cols();
  out.data.assign(t.data(), t.data() + t.size());
  return out;
}

/// Writes the T x input_dim fp32 feature rows for one path into `x` —
/// the exact assembly of TemporalPathEncoder::EncodeImpl: [rt | lanes |
/// oneway | signal | from | to | t_vec], with the same temporal vector
/// on every row. `x` must hold path.size() * model.input_dim floats;
/// the raw-pointer form lets the batched forward interleave many items
/// into one time-major buffer.
void FillFeatureRows(const core::FeatureSpace& features,
                     const QuantizedModel& model, const graph::Path& path,
                     int64_t depart_time_s, float* x) {
  TPR_CHECK(!path.empty());
  const auto& network = *features.data->network;
  const int d_road = features.config.road_embedding_dim;
  const int T = static_cast<int>(path.size());
  const int dim = model.input_dim;

  const int t_node = features.TemporalNodeFor(depart_time_s);
  const auto& t_vec = features.temporal_embeddings[t_node];
  for (int i = 0; i < T; ++i) {
    const auto& e = network.edge(path[i]);
    float* row = x + static_cast<size_t>(i) * dim;
    const float* rt = TableRow(model.road_type_table,
                               static_cast<int>(e.road_type));
    const float* lanes = TableRow(model.lanes_table, e.num_lanes - 1);
    const float* ow = TableRow(model.oneway_table, e.one_way ? 1 : 0);
    const float* ts = TableRow(model.signal_table, e.has_signal ? 1 : 0);
    float* p = row;
    p = std::copy(rt, rt + model.road_type_table.cols, p);
    p = std::copy(lanes, lanes + model.lanes_table.cols, p);
    p = std::copy(ow, ow + model.oneway_table.cols, p);
    p = std::copy(ts, ts + model.signal_table.cols, p);
    const auto& from_vec = features.road_embeddings[e.from];
    const auto& to_vec = features.road_embeddings[e.to];
    p = std::copy(from_vec.begin(), from_vec.begin() + d_road, p);
    p = std::copy(to_vec.begin(), to_vec.begin() + d_road, p);
    if (model.use_temporal) p = std::copy(t_vec.begin(), t_vec.end(), p);
    TPR_CHECK(p == row + dim);
  }
}

/// Vector-filling wrapper over FillFeatureRows; reuses `out`'s capacity.
void BuildFeatureMatrix(const core::FeatureSpace& features,
                        const QuantizedModel& model, const graph::Path& path,
                        int64_t depart_time_s, std::vector<float>* out) {
  out->resize(path.size() * static_cast<size_t>(model.input_dim));
  FillFeatureRows(features, model, path, depart_time_s, out->data());
}

/// The fp32 weight views of one LSTM layer, in Parameters() order.
struct FpLayer {
  const nn::Tensor* w_ih;  // input x 4h
  const nn::Tensor* w_hh;  // h x 4h
  const nn::Tensor* bias;  // 1 x 4h
};

/// Scalar fp32 reference forward of one layer (fixed loop order,
/// std::exp-based cell) feeding the min/max observers. This is the
/// calibration anchor: it never touches the dispatched kernels, so the
/// observed ranges — and therefore the artifact bytes — are identical
/// under any TPR_KERNEL / TPR_THREADS setting.
void ReferenceLayerForward(const FpLayer& layer, const std::vector<float>& x,
                           int T, int in_dim, int h, std::vector<float>* out,
                           MinMaxObserver* in_obs, MinMaxObserver* hid_obs) {
  in_obs->Observe(x.data(), x.size());
  const float* w_ih = layer.w_ih->data();
  const float* w_hh = layer.w_hh->data();
  const float* bias = layer.bias->data();
  const int n4 = 4 * h;
  out->assign(static_cast<size_t>(T) * h, 0.0f);
  std::vector<float> h_prev(h, 0.0f), c_prev(h, 0.0f), gates(n4, 0.0f);
  for (int t = 0; t < T; ++t) {
    const float* xr = x.data() + static_cast<size_t>(t) * in_dim;
    for (int j = 0; j < n4; ++j) gates[j] = bias[j];
    for (int kk = 0; kk < in_dim; ++kk) {
      const float xv = xr[kk];
      if (xv == 0.0f) continue;
      const float* wr = w_ih + static_cast<size_t>(kk) * n4;
      for (int j = 0; j < n4; ++j) gates[j] += xv * wr[j];
    }
    for (int kk = 0; kk < h; ++kk) {
      const float hv = h_prev[kk];
      if (hv == 0.0f) continue;
      const float* wr = w_hh + static_cast<size_t>(kk) * n4;
      for (int j = 0; j < n4; ++j) gates[j] += hv * wr[j];
    }
    float* hr = out->data() + static_cast<size_t>(t) * h;
    for (int j = 0; j < h; ++j) {
      const float ig = kern::SigmoidScalar(gates[j]);
      const float fg = kern::SigmoidScalar(gates[h + j]);
      const float gg = std::tanh(gates[2 * h + j]);
      const float og = kern::SigmoidScalar(gates[3 * h + j]);
      const float c = fg * c_prev[j] + ig * gg;
      c_prev[j] = c;
      hr[j] = og * std::tanh(c);
    }
    std::copy(hr, hr + h, h_prev.begin());
    hid_obs->Observe(hr, static_cast<size_t>(h));
  }
}

void WriteFloatTable(ckpt::Writer& w, const FloatTable& t) {
  w.I32(t.rows);
  w.I32(t.cols);
  w.Bytes(t.data.data(), t.data.size() * sizeof(float));
}

Status ReadFloatTable(ckpt::Reader& r, FloatTable* t) {
  if (auto s = r.I32(&t->rows); !s.ok()) return s;
  if (auto s = r.I32(&t->cols); !s.ok()) return s;
  if (t->rows < 0 || t->cols < 0 || t->rows > kMaxDim || t->cols > kMaxDim) {
    return Status::DataLoss("quant table shape out of range");
  }
  t->data.resize(static_cast<size_t>(t->rows) * t->cols);
  return r.Bytes(t->data.data(), t->data.size() * sizeof(float));
}

void WriteQuantTensor(ckpt::Writer& w, const QuantizedTensor& t) {
  w.I32(t.rows);
  w.I32(t.cols);
  w.Bytes(t.data.data(), t.data.size());
  w.Bytes(t.scales.data(), t.scales.size() * sizeof(float));
}

Status ReadQuantTensor(ckpt::Reader& r, QuantizedTensor* t) {
  if (auto s = r.I32(&t->rows); !s.ok()) return s;
  if (auto s = r.I32(&t->cols); !s.ok()) return s;
  if (t->rows < 0 || t->cols < 0 || t->rows > kMaxDim || t->cols > kMaxDim) {
    return Status::DataLoss("quant tensor shape out of range");
  }
  t->data.resize(static_cast<size_t>(t->rows) * t->cols);
  if (auto s = r.Bytes(t->data.data(), t->data.size()); !s.ok()) return s;
  t->scales.resize(static_cast<size_t>(t->rows));
  return r.Bytes(t->scales.data(), t->scales.size() * sizeof(float));
}

}  // namespace

size_t QuantizedModel::WeightBytes() const {
  size_t n = 0;
  for (const auto& layer : layers) {
    n += layer.w_ih.data.size() + layer.w_hh.data.size();
  }
  return n;
}

QuantizedTensor QuantizePerChannel(const nn::Tensor& w) {
  const int k = w.rows();
  const int n = w.cols();
  QuantizedTensor out;
  out.rows = n;
  out.cols = k;
  out.data.resize(static_cast<size_t>(n) * k);
  out.scales.resize(n);
  for (int j = 0; j < n; ++j) {
    float max_abs = 0.0f;
    for (int kk = 0; kk < k; ++kk) {
      const float v = w.data()[static_cast<size_t>(kk) * n + j];
      const float a = v < 0.0f ? -v : v;
      if (a > max_abs) max_abs = a;
    }
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    out.scales[j] = scale;
    int8_t* row = out.data.data() + static_cast<size_t>(j) * k;
    for (int kk = 0; kk < k; ++kk) {
      const float v = w.data()[static_cast<size_t>(kk) * n + j];
      // Division (not multiply-by-reciprocal): |v / scale| <= 127 by
      // construction of scale, so dequantization error is a true
      // half-step bound.
      float r = std::nearbyintf(v / scale);
      if (r > 127.0f) r = 127.0f;
      if (r < -127.0f) r = -127.0f;
      row[kk] = static_cast<int8_t>(r);
    }
  }
  return out;
}

StatusOr<QuantizedModel> QuantizeEncoder(
    const core::TemporalPathEncoder& encoder,
    const std::vector<core::PathTimeItem>& calibration) {
  const core::EncoderConfig& config = encoder.config();
  if (config.sequence_model != core::SequenceModel::kLstm) {
    return Status::FailedPrecondition(
        "int8 quantization supports LSTM encoders only");
  }
  if (calibration.empty()) {
    return Status::InvalidArgument("empty quantization calibration set");
  }

  // Parameters() order: 4 categorical tables, then per LSTM layer
  // {w_ih, w_hh, bias}, then the projection head (dropped — serving
  // consumes the pre-projection TPR).
  const std::vector<nn::Var> params = encoder.Parameters();
  const int num_layers = config.lstm_layers;
  TPR_CHECK(static_cast<int>(params.size()) >= 4 + 3 * num_layers)
      << "unexpected encoder parameter count " << params.size();

  QuantizedModel model;
  model.input_dim = encoder.input_dim();
  model.d_hidden = config.d_hidden;
  model.aggregation = static_cast<uint8_t>(config.aggregation);
  model.use_temporal = config.use_temporal;
  model.road_type_table = CopyTable(params[0].value());
  model.lanes_table = CopyTable(params[1].value());
  model.oneway_table = CopyTable(params[2].value());
  model.signal_table = CopyTable(params[3].value());

  std::vector<FpLayer> fp_layers(num_layers);
  model.layers.resize(num_layers);
  for (int l = 0; l < num_layers; ++l) {
    const nn::Tensor& w_ih = params[4 + 3 * l].value();
    const nn::Tensor& w_hh = params[4 + 3 * l + 1].value();
    const nn::Tensor& bias = params[4 + 3 * l + 2].value();
    fp_layers[l] = {&w_ih, &w_hh, &bias};
    QuantizedLstmLayer& q = model.layers[l];
    q.w_ih = QuantizePerChannel(w_ih);
    q.w_hh = QuantizePerChannel(w_hh);
    q.bias.assign(bias.data(), bias.data() + bias.size());
  }

  // Activation observers over the calibration set, parallel over items.
  // Each item reduces into its own observer slot; the final sequential
  // merge is a max-reduction, so the result is bitwise identical at any
  // thread count.
  const int n_items = static_cast<int>(calibration.size());
  std::vector<std::vector<MinMaxObserver>> item_in(n_items),
      item_hid(n_items);
  const core::FeatureSpace& features = *encoder.features();
  par::DefaultPool().ParallelFor(n_items, [&](int i) {
    item_in[i].resize(num_layers);
    item_hid[i].resize(num_layers);
    const core::PathTimeItem& item = calibration[i];
    TPR_CHECK(item.path != nullptr && !item.path->empty());
    const int T = static_cast<int>(item.path->size());
    std::vector<float> x;
    BuildFeatureMatrix(features, model, *item.path, item.depart_time_s, &x);
    int in_dim = model.input_dim;
    std::vector<float> next;
    for (int l = 0; l < num_layers; ++l) {
      ReferenceLayerForward(fp_layers[l], x, T, in_dim, model.d_hidden,
                            &next, &item_in[i][l], &item_hid[i][l]);
      x = std::move(next);
      in_dim = model.d_hidden;
    }
  });
  for (int l = 0; l < num_layers; ++l) {
    MinMaxObserver in_obs, hid_obs;
    for (int i = 0; i < n_items; ++i) {
      in_obs.Merge(item_in[i][l]);
      hid_obs.Merge(item_hid[i][l]);
    }
    model.layers[l].in_scale = in_obs.Scale();
    model.layers[l].hidden_scale = hid_obs.Scale();
  }
  return model;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

std::string EncodeQuantizedModel(const QuantizedModel& model) {
  ckpt::Writer w;
  w.Str(kModelTag);
  w.U32(kModelVersion);
  w.U64(model.generation);
  w.I32(model.input_dim);
  w.I32(model.d_hidden);
  w.U8(model.aggregation);
  w.U8(model.use_temporal ? 1 : 0);
  WriteFloatTable(w, model.road_type_table);
  WriteFloatTable(w, model.lanes_table);
  WriteFloatTable(w, model.oneway_table);
  WriteFloatTable(w, model.signal_table);
  w.U32(static_cast<uint32_t>(model.layers.size()));
  for (const auto& layer : model.layers) {
    WriteQuantTensor(w, layer.w_ih);
    WriteQuantTensor(w, layer.w_hh);
    w.U64(layer.bias.size());
    w.Bytes(layer.bias.data(), layer.bias.size() * sizeof(float));
    w.F32(layer.in_scale);
    w.F32(layer.hidden_scale);
  }
  return w.TakeBytes();
}

StatusOr<QuantizedModel> DecodeQuantizedModel(std::string_view payload) {
  ckpt::Reader r(payload);
  std::string tag;
  if (auto s = r.Str(&tag); !s.ok()) return s;
  if (tag != kModelTag) {
    return Status::DataLoss("not a quantized-model payload: tag '" + tag +
                            "'");
  }
  uint32_t version = 0;
  if (auto s = r.U32(&version); !s.ok()) return s;
  if (version != kModelVersion) {
    return Status::DataLoss("unsupported quantized-model version " +
                            std::to_string(version));
  }
  QuantizedModel model;
  if (auto s = r.U64(&model.generation); !s.ok()) return s;
  if (auto s = r.I32(&model.input_dim); !s.ok()) return s;
  if (auto s = r.I32(&model.d_hidden); !s.ok()) return s;
  uint8_t aggregation = 0, use_temporal = 0;
  if (auto s = r.U8(&aggregation); !s.ok()) return s;
  if (auto s = r.U8(&use_temporal); !s.ok()) return s;
  model.aggregation = aggregation;
  model.use_temporal = use_temporal != 0;
  if (model.input_dim <= 0 || model.input_dim > kMaxDim ||
      model.d_hidden <= 0 || model.d_hidden > kMaxDim) {
    return Status::DataLoss("quantized-model dims out of range");
  }
  if (auto s = ReadFloatTable(r, &model.road_type_table); !s.ok()) return s;
  if (auto s = ReadFloatTable(r, &model.lanes_table); !s.ok()) return s;
  if (auto s = ReadFloatTable(r, &model.oneway_table); !s.ok()) return s;
  if (auto s = ReadFloatTable(r, &model.signal_table); !s.ok()) return s;
  uint32_t num_layers = 0;
  if (auto s = r.U32(&num_layers); !s.ok()) return s;
  if (num_layers == 0 || num_layers > 64) {
    return Status::DataLoss("quantized-model layer count out of range");
  }
  model.layers.resize(num_layers);
  for (auto& layer : model.layers) {
    if (auto s = ReadQuantTensor(r, &layer.w_ih); !s.ok()) return s;
    if (auto s = ReadQuantTensor(r, &layer.w_hh); !s.ok()) return s;
    uint64_t bias_n = 0;
    if (auto s = r.U64(&bias_n); !s.ok()) return s;
    if (bias_n > static_cast<uint64_t>(kMaxDim)) {
      return Status::DataLoss("quantized-model bias size out of range");
    }
    layer.bias.resize(bias_n);
    if (auto s = r.Bytes(layer.bias.data(), bias_n * sizeof(float)); !s.ok())
      return s;
    if (auto s = r.F32(&layer.in_scale); !s.ok()) return s;
    if (auto s = r.F32(&layer.hidden_scale); !s.ok()) return s;
    const int h4 = 4 * model.d_hidden;
    if (layer.w_ih.rows != h4 || layer.w_hh.rows != h4 ||
        layer.w_hh.cols != model.d_hidden ||
        static_cast<int>(layer.bias.size()) != h4) {
      return Status::DataLoss("quantized-model layer shape mismatch");
    }
  }
  if (model.layers[0].w_ih.cols != model.input_dim) {
    return Status::DataLoss("quantized-model input_dim mismatch");
  }
  if (!r.AtEnd()) {
    return Status::DataLoss("quantized-model payload has trailing bytes");
  }
  return model;
}

std::string QuantArtifactPath(const std::string& dir, uint64_t seq) {
  return dir + "/quant-" + std::to_string(seq) + ".q8";
}

Status SaveQuantizedModel(const std::string& dir, const QuantizedModel& model,
                          uint64_t seq) {
  return ckpt::AtomicWriteFile(QuantArtifactPath(dir, seq),
                               ckpt::WrapPayload(EncodeQuantizedModel(model)));
}

StatusOr<QuantizedModel> LoadQuantizedModel(const std::string& dir,
                                            uint64_t seq) {
  auto bytes = ckpt::ReadFileBytes(QuantArtifactPath(dir, seq));
  if (!bytes.ok()) return bytes.status();
  auto payload = ckpt::UnwrapPayload(*bytes);
  if (!payload.ok()) return payload.status();
  return DecodeQuantizedModel(*payload);
}

void RemoveQuantArtifact(const std::string& dir, uint64_t seq) {
  std::remove(QuantArtifactPath(dir, seq).c_str());
}

// ---------------------------------------------------------------------------
// Inference
// ---------------------------------------------------------------------------

QuantizedEncoder::QuantizedEncoder(
    std::shared_ptr<const core::FeatureSpace> features, QuantizedModel model)
    : features_(std::move(features)), model_(std::move(model)) {
  TPR_CHECK(features_ != nullptr);
  TPR_CHECK(!model_.layers.empty());
  w_ih_wide_.reserve(model_.layers.size());
  w_hh_wide_.reserve(model_.layers.size());
  auto widen = [](const QuantizedTensor& t) {
    return std::vector<int16_t>(t.data.begin(), t.data.end());
  };
  for (const QuantizedLstmLayer& layer : model_.layers) {
    w_ih_wide_.push_back(widen(layer.w_ih));
    w_hh_wide_.push_back(widen(layer.w_hh));
  }
}

std::vector<float> QuantizedEncoder::BuildFeatures(
    const graph::Path& path, int64_t depart_time_s) const {
  std::vector<float> x;
  BuildFeatureMatrix(*features_, model_, path, depart_time_s, &x);
  return x;
}

namespace {

/// Per-thread scratch for the quantized forward. EncodeValue sits on the
/// serving hot path where the recurrent steps are tiny (m=1 GEMMs), so a
/// dozen per-call heap allocations — several tens of KB each for the
/// time-batched buffers — are a measurable slice of the latency budget.
/// Reusing capacity across calls keeps the rung's speedup intact without
/// touching the math.
struct EncodeScratch {
  std::vector<float> x, next, gates, h_prev, c_prev, act, hc;
  std::vector<int8_t> qx, qh;
  std::vector<int32_t> acc, acc_h;
  std::vector<int> active;
};

EncodeScratch& Scratch() {
  static thread_local EncodeScratch s;
  return s;
}

/// Pools T hidden-state rows into one representation — the tail of both
/// the single and the batched forward, so their outputs agree bitwise.
std::vector<float> AggregateRows(core::Aggregation agg, const float* x, int T,
                                 int h) {
  std::vector<float> out(h, 0.0f);
  switch (agg) {
    case core::Aggregation::kMean:
      for (int t = 0; t < T; ++t) {
        const float* row = x + static_cast<size_t>(t) * h;
        for (int j = 0; j < h; ++j) out[j] += row[j];
      }
      for (int j = 0; j < h; ++j) out[j] /= static_cast<float>(T);
      break;
    case core::Aggregation::kMax:
      std::copy(x, x + h, out.begin());
      for (int t = 1; t < T; ++t) {
        const float* row = x + static_cast<size_t>(t) * h;
        for (int j = 0; j < h; ++j) out[j] = std::max(out[j], row[j]);
      }
      break;
    case core::Aggregation::kLast:
      std::copy(x + static_cast<size_t>(T - 1) * h,
                x + static_cast<size_t>(T) * h, out.begin());
      break;
  }
  return out;
}

}  // namespace

std::vector<float> QuantizedEncoder::EncodeValue(const graph::Path& path,
                                                 int64_t depart_time_s) const {
  const int T = static_cast<int>(path.size());
  const int h = model_.d_hidden;
  const int n4 = 4 * h;
  EncodeScratch& s = Scratch();
  std::vector<float>& x = s.x;
  BuildFeatureMatrix(*features_, model_, path, depart_time_s, &x);
  int in_dim = model_.input_dim;

  std::vector<int8_t>& qx = s.qx;
  std::vector<int8_t>& qh = s.qh;
  qh.resize(h);
  std::vector<int32_t>& acc = s.acc;
  std::vector<int32_t>& acc_h = s.acc_h;
  acc.resize(static_cast<size_t>(T) * n4);
  acc_h.resize(n4);
  std::vector<float>& gates = s.gates;
  gates.resize(static_cast<size_t>(T) * n4);
  std::vector<float>& h_prev = s.h_prev;
  std::vector<float>& c_prev = s.c_prev;
  std::vector<float>& act = s.act;
  std::vector<float>& hc = s.hc;
  h_prev.resize(h);
  c_prev.resize(h);
  act.resize(5 * h);
  hc.resize(2 * h);
  std::vector<float>& next = s.next;
  next.resize(static_cast<size_t>(T) * h);

  for (size_t li = 0; li < model_.layers.size(); ++li) {
    const QuantizedLstmLayer& layer = model_.layers[li];
    // All T input-side gate GEMMs in one int8 call — the batched-over-
    // time shape is what buys the >=2x speedup over the stepwise fp32
    // path. Both GEMMs run against the pre-widened weight panels;
    // GemmInt8Wide is bit-identical to GemmInt8.
    qx.resize(x.size());
    kern::QuantizeRow(x.data(), 1.0f / layer.in_scale, qx.data(),
                      static_cast<int>(x.size()));
    kern::GemmInt8Wide(qx.data(), w_ih_wide_[li].data(), acc.data(), T,
                       in_dim, n4);
    kern::DequantBias(acc.data(), layer.in_scale, layer.w_ih.scales.data(),
                      layer.bias.data(), gates.data(), T, n4);

    std::fill(h_prev.begin(), h_prev.end(), 0.0f);
    std::fill(c_prev.begin(), c_prev.end(), 0.0f);
    for (int t = 0; t < T; ++t) {
      float* g = gates.data() + static_cast<size_t>(t) * n4;
      kern::QuantizeRow(h_prev.data(), 1.0f / layer.hidden_scale, qh.data(),
                        h);
      kern::GemmInt8Wide(qh.data(), w_hh_wide_[li].data(), acc_h.data(), 1, h,
                         n4);
      kern::DequantAcc(acc_h.data(), layer.hidden_scale,
                       layer.w_hh.scales.data(), g, 1, n4);
      kern::LstmCellRow(g, c_prev.data(), act.data(), hc.data(), h);
      std::copy(hc.begin(), hc.begin() + h, h_prev.begin());
      std::copy(hc.begin() + h, hc.end(), c_prev.begin());
      std::copy(h_prev.begin(), h_prev.end(),
                next.begin() + static_cast<size_t>(t) * h);
    }
    x.assign(next.begin(), next.begin() + static_cast<size_t>(T) * h);
    in_dim = h;
  }

  return AggregateRows(static_cast<core::Aggregation>(model_.aggregation),
                       x.data(), T, h);
}

std::vector<std::vector<float>> QuantizedEncoder::EncodeValueBatch(
    const std::vector<core::PathTimeItem>& items) const {
  // Truly batched forward: all items' timesteps share one input-side
  // GEMM, and the recurrent steps run in lockstep across items so every
  // per-step GEMM is m = (items still active) instead of m = 1 — the
  // shape that keeps the int8 kernels compute-bound under serving
  // traffic. Every per-row operation (quantize, exact GEMM row, dequant,
  // cell) is identical to the single-item path, so a batch row is
  // bitwise the single EncodeValue of that item and group-level serving
  // decisions never change an embedding.
  const int n_items = static_cast<int>(items.size());
  std::vector<std::vector<float>> out(n_items);
  if (n_items == 0) return out;
  if (n_items == 1) {
    TPR_CHECK(items[0].path != nullptr);
    out[0] = EncodeValue(*items[0].path, items[0].depart_time_s);
    return out;
  }
  const int h = model_.d_hidden;
  const int n4 = 4 * h;

  // Item i owns rows [off[i], off[i] + T[i]) of every time-major buffer.
  std::vector<int> T(n_items), off(n_items);
  int total = 0, t_max = 0;
  for (int i = 0; i < n_items; ++i) {
    TPR_CHECK(items[i].path != nullptr && !items[i].path->empty());
    T[i] = static_cast<int>(items[i].path->size());
    off[i] = total;
    total += T[i];
    if (T[i] > t_max) t_max = T[i];
  }

  EncodeScratch& s = Scratch();
  int in_dim = model_.input_dim;
  std::vector<float>& x = s.x;
  x.resize(static_cast<size_t>(total) * in_dim);
  for (int i = 0; i < n_items; ++i) {
    FillFeatureRows(*features_, model_, *items[i].path, items[i].depart_time_s,
                    x.data() + static_cast<size_t>(off[i]) * in_dim);
  }

  std::vector<int8_t>& qx = s.qx;
  std::vector<int32_t>& acc = s.acc;
  std::vector<float>& gates = s.gates;
  std::vector<float>& next = s.next;
  std::vector<float>& h_prev = s.h_prev;
  std::vector<float>& c_prev = s.c_prev;
  std::vector<float>& act = s.act;
  std::vector<float>& hc = s.hc;
  std::vector<int8_t>& qh = s.qh;
  std::vector<int32_t>& acc_h = s.acc_h;
  // active[r] maps row r of a step GEMM back to its item slot; items
  // whose paths have ended simply drop out of the packed activation.
  std::vector<int>& active = s.active;
  h_prev.resize(static_cast<size_t>(n_items) * h);
  c_prev.resize(static_cast<size_t>(n_items) * h);
  qh.resize(static_cast<size_t>(n_items) * h);
  acc_h.resize(static_cast<size_t>(n_items) * n4);
  act.resize(5 * h);
  hc.resize(2 * h);
  active.resize(n_items);

  for (size_t li = 0; li < model_.layers.size(); ++li) {
    const QuantizedLstmLayer& layer = model_.layers[li];
    qx.resize(x.size());
    kern::QuantizeRow(x.data(), 1.0f / layer.in_scale, qx.data(),
                      static_cast<int>(x.size()));
    acc.resize(static_cast<size_t>(total) * n4);
    kern::GemmInt8Wide(qx.data(), w_ih_wide_[li].data(), acc.data(), total,
                       in_dim, n4);
    gates.resize(static_cast<size_t>(total) * n4);
    kern::DequantBias(acc.data(), layer.in_scale, layer.w_ih.scales.data(),
                      layer.bias.data(), gates.data(), total, n4);

    std::fill(h_prev.begin(), h_prev.end(), 0.0f);
    std::fill(c_prev.begin(), c_prev.end(), 0.0f);
    next.resize(static_cast<size_t>(total) * h);
    for (int t = 0; t < t_max; ++t) {
      int m = 0;
      for (int i = 0; i < n_items; ++i) {
        if (T[i] <= t) continue;
        kern::QuantizeRow(h_prev.data() + static_cast<size_t>(i) * h,
                          1.0f / layer.hidden_scale,
                          qh.data() + static_cast<size_t>(m) * h, h);
        active[m++] = i;
      }
      kern::GemmInt8Wide(qh.data(), w_hh_wide_[li].data(), acc_h.data(), m, h,
                         n4);
      for (int r = 0; r < m; ++r) {
        const int i = active[r];
        float* g = gates.data() + (static_cast<size_t>(off[i]) + t) * n4;
        kern::DequantAcc(acc_h.data() + static_cast<size_t>(r) * n4,
                         layer.hidden_scale, layer.w_hh.scales.data(), g, 1,
                         n4);
        float* hp = h_prev.data() + static_cast<size_t>(i) * h;
        float* cp = c_prev.data() + static_cast<size_t>(i) * h;
        kern::LstmCellRow(g, cp, act.data(), hc.data(), h);
        std::copy(hc.begin(), hc.begin() + h, hp);
        std::copy(hc.begin() + h, hc.end(), cp);
        std::copy(hp, hp + h,
                  next.begin() + (static_cast<size_t>(off[i]) + t) * h);
      }
    }
    x.assign(next.begin(), next.begin() + static_cast<size_t>(total) * h);
    in_dim = h;
  }

  for (int i = 0; i < n_items; ++i) {
    out[i] = AggregateRows(static_cast<core::Aggregation>(model_.aggregation),
                           x.data() + static_cast<size_t>(off[i]) * h, T[i], h);
  }
  return out;
}

bool QuantEnabledFromEnv() {
  const char* v = std::getenv("TPR_QUANT");
  if (v == nullptr) return true;
  return std::strcmp(v, "0") != 0 && std::strcmp(v, "off") != 0;
}

}  // namespace tpr::quant
