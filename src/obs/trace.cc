#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace tpr::obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One buffered trace event. `name`/`arg_name` are borrowed pointers
// (string literals per the header contract); `str_arg` owns the payload
// of metadata events.
struct Event {
  const char* name = nullptr;
  char phase = 'X';
  int tid = 0;
  int64_t ts_us = 0;
  int64_t dur_us = 0;
  const char* arg_name = nullptr;
  double arg_value = 0.0;
  std::string str_arg;
};

// Completed events are buffered per thread: appends lock only the
// owning thread's (uncontended) mutex; the flusher locks the registry
// and then each buffer. Buffers are kept alive by the registry's
// shared_ptr even after their thread exits.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<Event> events;
  int tid = 0;
};

struct TraceRegistry {
  std::mutex mu;
  std::string path;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::atomic<int> next_tid{0};
  // Trace epoch: steady-clock microseconds at StartTrace. Atomic so
  // span threads can read it without taking the registry lock.
  std::atomic<int64_t> epoch_us{0};
};

TraceRegistry& GetTraceRegistry() {
  static TraceRegistry* r = new TraceRegistry();  // leaked: exit-safe
  return *r;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    TraceRegistry& r = GetTraceRegistry();
    auto b = std::make_shared<ThreadBuffer>();
    b->tid = r.next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(r.mu);
    r.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

void AppendEvent(Event e) {
  ThreadBuffer& b = LocalBuffer();
  e.tid = b.tid;
  std::lock_guard<std::mutex> lock(b.mu);
  b.events.push_back(std::move(e));
}

void AppendEscaped(std::ostringstream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') os << '\\';
    os << *s;
  }
}

void WriteEventJson(std::ostringstream& os, const Event& e) {
  os << "{\"name\":\"";
  AppendEscaped(os, e.phase == 'M' ? "thread_name" : e.name);
  os << "\",\"cat\":\"tpr\",\"ph\":\"" << e.phase << "\",\"ts\":" << e.ts_us
     << ",\"pid\":1,\"tid\":" << e.tid;
  if (e.phase == 'X') os << ",\"dur\":" << e.dur_us;
  if (e.phase == 'M') {
    os << ",\"args\":{\"name\":\"";
    AppendEscaped(os, e.str_arg.c_str());
    os << "\"}";
  } else if (e.phase == 'C') {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", e.arg_value);
    os << ",\"args\":{\"value\":" << buf << "}";
  } else if (e.arg_name != nullptr) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", e.arg_value);
    os << ",\"args\":{\"";
    AppendEscaped(os, e.arg_name);
    os << "\":" << buf << "}";
  }
  os << "}";
}

}  // namespace

void StartTrace(std::string path) {
  TraceRegistry& r = GetTraceRegistry();
  internal::g_trace_enabled.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& b : r.buffers) {
    std::lock_guard<std::mutex> block(b->mu);
    b->events.clear();
  }
  r.path = std::move(path);
  r.epoch_us.store(SteadyNowUs(), std::memory_order_relaxed);
  internal::g_trace_enabled.store(true, std::memory_order_release);
}

bool StopTrace() {
  TraceRegistry& r = GetTraceRegistry();
  if (!TraceEnabled()) return false;
  internal::g_trace_enabled.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(r.mu);
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (auto& b : r.buffers) {
    std::lock_guard<std::mutex> block(b->mu);
    for (const Event& e : b->events) {
      os << (first ? "\n" : ",\n");
      first = false;
      WriteEventJson(os, e);
    }
    b->events.clear();
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  const std::string json = os.str();
  std::FILE* f = std::fopen(r.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[obs] cannot open trace file %s\n", r.path.c_str());
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 && written == json.size();
}

int TraceThreadId() { return LocalBuffer().tid; }

void SetTraceThreadName(const std::string& name) {
  if (!TraceEnabled()) return;
  Event e;
  e.phase = 'M';
  e.str_arg = name;
  AppendEvent(std::move(e));
}

void TraceCounter(const char* name, double value) {
  if (!TraceEnabled()) return;
  TraceRegistry& r = GetTraceRegistry();
  Event e;
  e.name = name;
  e.phase = 'C';
  e.ts_us = SteadyNowUs() - r.epoch_us.load(std::memory_order_relaxed);
  e.arg_value = value;
  if (e.ts_us < 0) return;  // trace restarted concurrently; drop
  AppendEvent(std::move(e));
}

ScopedSpan::ScopedSpan(const char* name, const char* arg_name,
                       double arg_value) {
  if (!TraceEnabled()) return;
  name_ = name;
  arg_name_ = arg_name;
  arg_value_ = arg_value;
  start_us_ = SteadyNowUs();
}

ScopedSpan::~ScopedSpan() {
  if (name_ == nullptr || !TraceEnabled()) return;
  TraceRegistry& r = GetTraceRegistry();
  Event e;
  e.name = name_;
  e.phase = 'X';
  e.ts_us = start_us_ - r.epoch_us.load(std::memory_order_relaxed);
  e.dur_us = SteadyNowUs() - start_us_;
  e.arg_name = arg_name_;
  e.arg_value = arg_value_;
  if (e.ts_us < 0) return;  // span outlived the trace it started in
  AppendEvent(std::move(e));
}

namespace {

// Reads TPR_TRACE once at load time: starts the trace immediately and
// writes it when the process exits.
struct TraceEnvInit {
  TraceEnvInit() {
    if (const char* p = std::getenv("TPR_TRACE")) {
      if (*p != '\0') {
        StartTrace(p);
        std::atexit([] { StopTrace(); });
      }
    }
  }
} g_trace_env_init;

}  // namespace

}  // namespace tpr::obs
