#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "util/logging.h"

namespace tpr::obs {

namespace internal {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  TPR_CHECK(!bounds_.empty());
  TPR_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

std::vector<double> Histogram::DurationBuckets() {
  std::vector<double> bounds;
  for (double b = 1e-6; b < 200.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

void Histogram::Observe(double v) {
  if (!MetricsEnabled()) return;
  const size_t i =
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  // CAS loops for min/max (fetch_min/max are C++26).
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double Histogram::Percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  const double lo_obs = min();
  const double hi_obs = max();
  // Rank of the requested percentile, 1-based, clamped into [1, n]. The
  // extreme ranks are answered exactly from the observed range; bucket
  // interpolation only covers the interior.
  const double rank = std::clamp(p / 100.0 * n, 1.0, static_cast<double>(n));
  if (rank <= 1.0) return lo_obs;
  if (rank >= static_cast<double>(n)) return hi_obs;
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    if (cum + in_bucket < rank) {
      cum += in_bucket;
      continue;
    }
    // Interpolate inside bucket i between its edges, clamped to the
    // observed range so single-bucket distributions stay tight.
    const double lo = std::max(i == 0 ? lo_obs : bounds_[i - 1], lo_obs);
    const double hi = std::min(i == bounds_.size() ? hi_obs : bounds_[i],
                               hi_obs);
    const double frac = (rank - cum) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return hi_obs;  // unreachable when counts are consistent
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

// std::map keeps the JSON output deterministically ordered. Values are
// unique_ptrs so handed-out references survive rehash-free forever; the
// registry itself is leaked so exit-time writers can't use-after-free.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();
  return *r;
}

std::string g_metrics_out_path;  // set by the env initializer below

void AppendJsonKey(std::ostringstream& os, const std::string& name) {
  os << '"';
  for (char c : name) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << "\":";
}

// Plain %.17g keeps doubles round-trippable; inf (empty histogram
// min/max) serializes as 0 to stay valid JSON.
void AppendJsonNumber(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

Counter& GetCounter(const std::string& name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto& slot = r.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& GetGauge(const std::string& name) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto& slot = r.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& GetHistogram(const std::string& name) {
  return GetHistogram(name, Histogram::DurationBuckets());
}

Histogram& GetHistogram(const std::string& name, std::vector<double> bounds) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto& slot = r.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::string MetricsToJson() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : r.counters) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonKey(os, name);
    os << c->value();
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : r.gauges) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonKey(os, name);
    AppendJsonNumber(os, g->value());
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : r.histograms) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonKey(os, name);
    os << "{\"count\":" << h->count() << ",\"sum\":";
    AppendJsonNumber(os, h->sum());
    os << ",\"min\":";
    AppendJsonNumber(os, h->count() ? h->min() : 0.0);
    os << ",\"max\":";
    AppendJsonNumber(os, h->count() ? h->max() : 0.0);
    os << ",\"p50\":";
    AppendJsonNumber(os, h->Percentile(50));
    os << ",\"p90\":";
    AppendJsonNumber(os, h->Percentile(90));
    os << ",\"p99\":";
    AppendJsonNumber(os, h->Percentile(99));
    os << "}";
  }
  os << "\n  }\n}\n";
  return os.str();
}

bool WriteMetricsJson(const std::string& path) {
  const std::string json = MetricsToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

void ResetAllMetrics() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) c->Reset();
  for (auto& [name, h] : r.histograms) h->Reset();
  for (auto& [name, g] : r.gauges) g->Reset();
}

namespace {

// Reads TPR_METRICS_OUT once at load time; enables recording and
// arranges the exit snapshot.
struct MetricsEnvInit {
  MetricsEnvInit() {
    if (const char* p = std::getenv("TPR_METRICS_OUT")) {
      if (*p != '\0') {
        g_metrics_out_path = p;
        SetMetricsEnabled(true);
        std::atexit([] {
          if (!WriteMetricsJson(g_metrics_out_path)) {
            std::fprintf(stderr, "[obs] failed to write metrics to %s\n",
                         g_metrics_out_path.c_str());
          }
        });
      }
    }
  }
} g_metrics_env_init;

}  // namespace

}  // namespace tpr::obs
