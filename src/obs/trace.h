#ifndef TPR_OBS_TRACE_H_
#define TPR_OBS_TRACE_H_

// RAII scoped-span tracing that exports chrome://tracing-compatible JSON
// (load the file at chrome://tracing or https://ui.perfetto.dev).
//
// Enabled by TPR_TRACE=<path> in the environment (the trace is written
// to <path> at process exit) or programmatically with StartTrace(). When
// disabled — the default — constructing a ScopedSpan is one relaxed
// atomic load plus a branch: no clock read, no allocation.
//
// Span names must be string literals (or otherwise outlive the trace):
// events store the pointer, not a copy. Completed spans are buffered
// per thread and merged on flush, so recording from pool workers stays
// contention-free and race-free under TSan.

#include <atomic>
#include <cstdint>
#include <string>

namespace tpr::obs {

namespace internal {
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

/// True while a trace is being collected. The fast gate checked by every
/// span constructor.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_acquire);
}

/// Begins collecting a trace to be written to `path`. Resets previously
/// buffered events. Safe to call when already tracing (restarts).
void StartTrace(std::string path);

/// Stops collecting and writes the JSON file. Returns false on I/O
/// failure or if tracing was not active. Also invoked automatically at
/// process exit when tracing was enabled via TPR_TRACE.
bool StopTrace();

/// Stable small integer identifying the calling thread in trace output
/// (assigned on first use; the process main thread is usually 0).
int TraceThreadId();

/// Names the calling thread in the trace viewer (chrome "thread_name"
/// metadata). No-op while tracing is disabled.
void SetTraceThreadName(const std::string& name);

/// Emits a counter track sample (chrome "C" phase), e.g. queue depth
/// over time. No-op while tracing is disabled.
void TraceCounter(const char* name, double value);

/// Times the enclosing scope as one complete ("X") event on the calling
/// thread's track. Nesting works naturally: inner spans close first and
/// the viewer stacks them. Optionally carries one numeric argument
/// (shown in the viewer's args pane).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(name, nullptr, 0.0) {}
  ScopedSpan(const char* name, const char* arg_name, double arg_value);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr: tracing was off at entry
  const char* arg_name_ = nullptr;
  double arg_value_ = 0.0;
  int64_t start_us_ = 0;
};

}  // namespace tpr::obs

#endif  // TPR_OBS_TRACE_H_
