#ifndef TPR_OBS_METRICS_H_
#define TPR_OBS_METRICS_H_

// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms with percentile estimation. Instrumented code keeps a
// stable handle (GetCounter/GetGauge/GetHistogram, usually a function
// local static) and records through it on the hot path.
//
// Recording is gated on a single flag: set TPR_METRICS_OUT=<path> in the
// environment (the merged JSON snapshot is written to <path> at process
// exit) or call SetMetricsEnabled(true). When disabled — the default —
// every record call is one relaxed atomic load plus a branch and
// allocates nothing, so instrumentation can live on training hot paths.
//
// All handles are safe to use concurrently from any thread; recording
// never takes a lock.

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace tpr::obs {

namespace internal {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace internal

/// True when metric recording is on (TPR_METRICS_OUT set, or enabled
/// programmatically). The fast gate used by every record call.
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Turns recording on or off at runtime (tests, tools). Does not change
/// where — or whether — the exit snapshot is written.
void SetMetricsEnabled(bool enabled);

/// Enables recording for a scope and restores the previous state on
/// exit. The flag is process-global, so scopes on concurrent threads
/// still interleave — this only makes the common test/bench pattern
/// (enable, measure, restore) exception-safe.
class ScopedMetricsEnabled {
 public:
  explicit ScopedMetricsEnabled(bool enabled = true)
      : previous_(MetricsEnabled()) {
    SetMetricsEnabled(enabled);
  }
  ~ScopedMetricsEnabled() { SetMetricsEnabled(previous_); }
  ScopedMetricsEnabled(const ScopedMetricsEnabled&) = delete;
  ScopedMetricsEnabled& operator=(const ScopedMetricsEnabled&) = delete;

 private:
  bool previous_;
};

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) {
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Ascending boundaries split the line into
/// half-open buckets: bucket i holds [bounds[i-1], bounds[i]), with an
/// implicit overflow bucket above the last boundary. Percentile()
/// interpolates linearly inside the selected bucket, clamped to the
/// observed min/max.
class Histogram {
 public:
  /// `bounds` are ascending bucket boundaries (must be non-empty).
  explicit Histogram(std::vector<double> bounds);

  /// Upper bounds suited to durations in seconds: powers of two from
  /// 1 microsecond to ~128 seconds.
  static std::vector<double> DurationBuckets();

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }

  /// Estimated value at percentile p in [0, 100]. Returns 0 with no
  /// observations. Exact at the observed min/max; elsewhere accurate to
  /// within the width of the containing bucket.
  double Percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Registry accessors: return the metric registered under `name`,
/// creating it on first use. The returned reference is stable for the
/// process lifetime (the registry is never destroyed), so callers cache
/// it in a function-local static. Thread-safe.
Counter& GetCounter(const std::string& name);
Gauge& GetGauge(const std::string& name);
Histogram& GetHistogram(const std::string& name);  // DurationBuckets()
Histogram& GetHistogram(const std::string& name, std::vector<double> bounds);

/// A name prefix over the registry, for components that exist more than
/// once per process (per-shard services, rollout controllers, drift
/// detectors). Each instance resolves its handles through its own scope
/// ("shard0." + "serve.requests" -> "shard0.serve.requests"); the default
/// empty prefix yields the historical global names, so single-instance
/// code and existing dashboards are unchanged. Handles resolved through
/// a scope are the same stable registry references as GetCounter's.
class MetricScope {
 public:
  MetricScope() = default;
  explicit MetricScope(std::string prefix) : prefix_(std::move(prefix)) {}

  const std::string& prefix() const { return prefix_; }
  std::string Name(const std::string& name) const { return prefix_ + name; }

  Counter& counter(const std::string& name) const {
    return GetCounter(prefix_ + name);
  }
  Gauge& gauge(const std::string& name) const {
    return GetGauge(prefix_ + name);
  }
  Histogram& histogram(const std::string& name) const {
    return GetHistogram(prefix_ + name);
  }

 private:
  std::string prefix_;
};

/// JSON snapshot of every registered metric:
/// {"counters":{name:n}, "gauges":{name:v},
///  "histograms":{name:{count,sum,min,max,p50,p90,p99}}}.
std::string MetricsToJson();

/// Writes MetricsToJson() to `path`. Returns false on I/O failure.
bool WriteMetricsJson(const std::string& path);

/// Zeroes every registered metric (test isolation).
void ResetAllMetrics();

}  // namespace tpr::obs

#endif  // TPR_OBS_METRICS_H_
