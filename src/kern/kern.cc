#include "kern/kern.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "kern/kern_internal.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace tpr::kern {

namespace {

// Cache-blocking tile for the scalar kernels (floats). 64x64 fp32 tiles
// of a and b together fit comfortably in a 32 KiB L1. Each scalar kernel
// keeps the per-output-element accumulation order of the original naive
// loops in src/nn/tensor.cc, so scalar results are bit-identical to the
// pre-kern library.
constexpr int kTile = 64;

namespace scalar {

void GemmAcc(const float* a, const float* b, float* out, int m, int k,
             int n) {
  // Blocked i-k-j: for each (j, kk) tile, the touched rows of b stay hot
  // in cache while every row of a streams through. kk remains increasing
  // for each output element.
  for (int j0 = 0; j0 < n; j0 += kTile) {
    const int j1 = std::min(n, j0 + kTile);
    for (int k0 = 0; k0 < k; k0 += kTile) {
      const int k1 = std::min(k, k0 + kTile);
      for (int i = 0; i < m; ++i) {
        float* out_row = out + static_cast<size_t>(i) * n;
        const float* a_row = a + static_cast<size_t>(i) * k;
        for (int kk = k0; kk < k1; ++kk) {
          const float av = a_row[kk];
          if (av == 0.0f) continue;
          const float* b_row = b + static_cast<size_t>(kk) * n;
          for (int j = j0; j < j1; ++j) out_row[j] += av * b_row[j];
        }
      }
    }
  }
}

void GemmTransAAcc(const float* a, const float* b, float* out, int k, int m,
                   int n) {
  // Blocked over (i, j) output tiles with the full kk sweep innermost-
  // but-two, so each out tile stays resident while a and b stream.
  for (int i0 = 0; i0 < m; i0 += kTile) {
    const int i1 = std::min(m, i0 + kTile);
    for (int j0 = 0; j0 < n; j0 += kTile) {
      const int j1 = std::min(n, j0 + kTile);
      for (int kk = 0; kk < k; ++kk) {
        const float* a_row = a + static_cast<size_t>(kk) * m;
        const float* b_row = b + static_cast<size_t>(kk) * n;
        for (int i = i0; i < i1; ++i) {
          const float av = a_row[i];
          if (av == 0.0f) continue;
          float* out_row = out + static_cast<size_t>(i) * n;
          for (int j = j0; j < j1; ++j) out_row[j] += av * b_row[j];
        }
      }
    }
  }
}

void GemmTransBAcc(const float* a, const float* b, float* out, int m, int k,
                   int n) {
  // Blocked over j: the tile's rows of b (kTile * k floats) are reused
  // across every row of a. The full-k dot per output element keeps the
  // naive summation order.
  for (int j0 = 0; j0 < n; j0 += kTile) {
    const int j1 = std::min(n, j0 + kTile);
    for (int i = 0; i < m; ++i) {
      const float* a_row = a + static_cast<size_t>(i) * k;
      float* out_row = out + static_cast<size_t>(i) * n;
      for (int j = j0; j < j1; ++j) {
        const float* b_row = b + static_cast<size_t>(j) * k;
        float s = 0.0f;
        for (int kk = 0; kk < k; ++kk) s += a_row[kk] * b_row[kk];
        out_row[j] += s;
      }
    }
  }
}

void GemmInt8(const int8_t* a, const int8_t* bt, int32_t* out, int m, int k,
              int n) {
  // Same j-blocked shape as GemmTransBAcc: a tile of bt rows is reused
  // across every row of a. Summation order is irrelevant here — the
  // int32 accumulation is exact — but the blocking keeps the packed
  // weight panel hot.
  for (int j0 = 0; j0 < n; j0 += kTile) {
    const int j1 = std::min(n, j0 + kTile);
    for (int i = 0; i < m; ++i) {
      const int8_t* a_row = a + static_cast<size_t>(i) * k;
      int32_t* out_row = out + static_cast<size_t>(i) * n;
      for (int j = j0; j < j1; ++j) {
        const int8_t* b_row = bt + static_cast<size_t>(j) * k;
        int32_t s = 0;
        for (int kk = 0; kk < k; ++kk) {
          s += static_cast<int32_t>(a_row[kk]) *
               static_cast<int32_t>(b_row[kk]);
        }
        out_row[j] = s;
      }
    }
  }
}

void GemmInt8Wide(const int8_t* a, const int16_t* bt, int32_t* out, int m,
                  int k, int n) {
  // Identical math to GemmInt8; the weights are merely stored widened.
  for (int j0 = 0; j0 < n; j0 += kTile) {
    const int j1 = std::min(n, j0 + kTile);
    for (int i = 0; i < m; ++i) {
      const int8_t* a_row = a + static_cast<size_t>(i) * k;
      int32_t* out_row = out + static_cast<size_t>(i) * n;
      for (int j = j0; j < j1; ++j) {
        const int16_t* b_row = bt + static_cast<size_t>(j) * k;
        int32_t s = 0;
        for (int kk = 0; kk < k; ++kk) {
          s += static_cast<int32_t>(a_row[kk]) *
               static_cast<int32_t>(b_row[kk]);
        }
        out_row[j] = s;
      }
    }
  }
}

}  // namespace scalar

// -1 = unresolved; otherwise the int value of the Kernel enum.
std::atomic<int> g_kernel{-1};

}  // namespace

bool CpuSupportsAvx2() {
#if defined(TPR_NO_AVX2)
  return false;
#elif defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const char* KernelName(Kernel k) {
  return k == Kernel::kAvx2 ? "avx2" : "scalar";
}

Kernel ResolveKernelSpec(const char* spec) {
  const char* s = spec != nullptr ? spec : "auto";
  if (std::strcmp(s, "scalar") == 0) return Kernel::kScalar;
  if (std::strcmp(s, "avx2") == 0) {
    TPR_CHECK(CpuSupportsAvx2())
        << "TPR_KERNEL=avx2 requested but this CPU/build lacks AVX2+FMA; "
           "a silent fallback would break run reproducibility";
    return Kernel::kAvx2;
  }
  TPR_CHECK(std::strcmp(s, "auto") == 0 || *s == '\0')
      << "TPR_KERNEL must be scalar, avx2, or auto (got '" << s << "')";
  return CpuSupportsAvx2() ? Kernel::kAvx2 : Kernel::kScalar;
}

Kernel ActiveKernel() {
  int k = g_kernel.load(std::memory_order_acquire);
  if (k < 0) {
    const Kernel resolved = ResolveKernelSpec(std::getenv("TPR_KERNEL"));
    int expected = -1;
    // First resolver wins; concurrent callers agree because the spec is
    // process-wide.
    g_kernel.compare_exchange_strong(expected, static_cast<int>(resolved),
                                     std::memory_order_acq_rel);
    k = g_kernel.load(std::memory_order_acquire);
    obs::GetGauge("kern.active").Set(static_cast<double>(k));
  }
  return static_cast<Kernel>(k);
}

void SetKernel(Kernel k) {
  TPR_CHECK(k == Kernel::kScalar || CpuSupportsAvx2())
      << "cannot select avx2 kernels: unsupported on this CPU/build";
  g_kernel.store(static_cast<int>(k), std::memory_order_release);
  obs::GetGauge("kern.active").Set(static_cast<double>(static_cast<int>(k)));
}

void GemmAcc(const float* a, const float* b, float* out, int m, int k,
             int n) {
  if (m <= 0 || n <= 0 || k <= 0) return;
#if !defined(TPR_NO_AVX2)
  if (ActiveKernel() == Kernel::kAvx2) {
    avx2::GemmAcc(a, b, out, m, k, n);
    return;
  }
#endif
  scalar::GemmAcc(a, b, out, m, k, n);
}

void GemmTransAAcc(const float* a, const float* b, float* out, int k, int m,
                   int n) {
  if (m <= 0 || n <= 0 || k <= 0) return;
#if !defined(TPR_NO_AVX2)
  if (ActiveKernel() == Kernel::kAvx2) {
    avx2::GemmTransAAcc(a, b, out, k, m, n);
    return;
  }
#endif
  scalar::GemmTransAAcc(a, b, out, k, m, n);
}

void GemmTransBAcc(const float* a, const float* b, float* out, int m, int k,
                   int n) {
  if (m <= 0 || n <= 0) return;
#if !defined(TPR_NO_AVX2)
  if (ActiveKernel() == Kernel::kAvx2) {
    avx2::GemmTransBAcc(a, b, out, m, k, n);
    return;
  }
#endif
  scalar::GemmTransBAcc(a, b, out, m, k, n);
}

void GemmInt8(const int8_t* a, const int8_t* bt, int32_t* out, int m, int k,
              int n) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    std::memset(out, 0, static_cast<size_t>(m) * n * sizeof(int32_t));
    return;
  }
#if !defined(TPR_NO_AVX2)
  if (ActiveKernel() == Kernel::kAvx2) {
    avx2::GemmInt8(a, bt, out, m, k, n);
    return;
  }
#endif
  scalar::GemmInt8(a, bt, out, m, k, n);
}

void GemmInt8Wide(const int8_t* a, const int16_t* btw, int32_t* out, int m,
                  int k, int n) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    std::memset(out, 0, static_cast<size_t>(m) * n * sizeof(int32_t));
    return;
  }
#if !defined(TPR_NO_AVX2)
  if (ActiveKernel() == Kernel::kAvx2) {
    avx2::GemmInt8Wide(a, btw, out, m, k, n);
    return;
  }
#endif
  scalar::GemmInt8Wide(a, btw, out, m, k, n);
}

void DequantBias(const int32_t* acc, float a_scale, const float* b_scales,
                 const float* bias, float* y, int m, int n) {
  // The avx2 epilogue applies the identical lane-wise op sequence (one
  // mul + one mul + one add, no FMA), so the quantized forward stays
  // bitwise kernel-independent up to the fused cell.
#if !defined(TPR_NO_AVX2)
  if (n >= 8 && ActiveKernel() == Kernel::kAvx2) {
    avx2::DequantBias(acc, a_scale, b_scales, bias, y, m, n);
    return;
  }
#endif
  for (int i = 0; i < m; ++i) {
    const int32_t* acc_row = acc + static_cast<size_t>(i) * n;
    float* y_row = y + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float v = static_cast<float>(acc_row[j]) * (a_scale * b_scales[j]);
      y_row[j] = bias != nullptr ? v + bias[j] : v;
    }
  }
}

void DequantAcc(const int32_t* acc, float a_scale, const float* b_scales,
                float* y, int m, int n) {
#if !defined(TPR_NO_AVX2)
  if (n >= 8 && ActiveKernel() == Kernel::kAvx2) {
    avx2::DequantAcc(acc, a_scale, b_scales, y, m, n);
    return;
  }
#endif
  for (int i = 0; i < m; ++i) {
    const int32_t* acc_row = acc + static_cast<size_t>(i) * n;
    float* y_row = y + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      y_row[j] += static_cast<float>(acc_row[j]) * (a_scale * b_scales[j]);
    }
  }
}

void QuantizeRow(const float* x, float inv_scale, int8_t* q, int n) {
#if !defined(TPR_NO_AVX2)
  if (n >= 8 && ActiveKernel() == Kernel::kAvx2) {
    avx2::QuantizeRow(x, inv_scale, q, n);
    return;
  }
#endif
  for (int i = 0; i < n; ++i) {
    // nearbyintf under the default rounding mode is round-to-nearest-
    // even, matching the offline weight quantizer.
    float r = std::nearbyintf(x[i] * inv_scale);
    if (r > 127.0f) r = 127.0f;
    if (r < -127.0f) r = -127.0f;
    q[i] = static_cast<int8_t>(r);
  }
}

void AddSigmoid(const float* x, const float* b, float* y, int n) {
  for (int i = 0; i < n; ++i) y[i] = SigmoidScalar(x[i] + b[i]);
}

void AddTanh(const float* x, const float* b, float* y, int n) {
  for (int i = 0; i < n; ++i) y[i] = std::tanh(x[i] + b[i]);
}

void HadamardAcc(const float* a, const float* b, float* out, int n) {
#if !defined(TPR_NO_AVX2)
  if (n >= 16 && ActiveKernel() == Kernel::kAvx2) {
    avx2::HadamardAcc(a, b, out, n);
    return;
  }
#endif
  for (int i = 0; i < n; ++i) out[i] += a[i] * b[i];
}

void AxpyAcc(float alpha, const float* x, float* y, int n) {
#if !defined(TPR_NO_AVX2)
  if (n >= 16 && ActiveKernel() == Kernel::kAvx2) {
    avx2::AxpyAcc(alpha, x, y, n);
    return;
  }
#endif
  for (int i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void AddAcc(const float* x, float* y, int n) {
#if !defined(TPR_NO_AVX2)
  if (n >= 16 && ActiveKernel() == Kernel::kAvx2) {
    avx2::AddAcc(x, y, n);
    return;
  }
#endif
  for (int i = 0; i < n; ++i) y[i] += x[i];
}

void LstmCellRow(const float* g, const float* c_prev, float* act, float* out,
                 int h) {
#if !defined(TPR_NO_AVX2)
  if (h >= 8 && ActiveKernel() == Kernel::kAvx2) {
    avx2::LstmCellRow(g, c_prev, act, out, h);
    return;
  }
#endif
  for (int j = 0; j < h; ++j) {
    const float ig = SigmoidScalar(g[j]);
    const float fg = SigmoidScalar(g[h + j]);
    const float gg = std::tanh(g[2 * h + j]);
    const float og = SigmoidScalar(g[3 * h + j]);
    const float c = fg * c_prev[j] + ig * gg;
    const float tc = std::tanh(c);
    act[j] = ig;
    act[h + j] = fg;
    act[2 * h + j] = gg;
    act[3 * h + j] = og;
    act[4 * h + j] = tc;
    out[j] = og * tc;
    out[h + j] = c;
  }
}

void GruCellRow(const float* gi, const float* gh, const float* h_prev,
                float* act, float* out, int h) {
#if !defined(TPR_NO_AVX2)
  if (h >= 8 && ActiveKernel() == Kernel::kAvx2) {
    avx2::GruCellRow(gi, gh, h_prev, act, out, h);
    return;
  }
#endif
  for (int j = 0; j < h; ++j) {
    const float rg = SigmoidScalar(gi[j] + gh[j]);
    const float zg = SigmoidScalar(gi[h + j] + gh[h + j]);
    const float ng = std::tanh(gi[2 * h + j] + rg * gh[2 * h + j]);
    act[j] = rg;
    act[h + j] = zg;
    act[2 * h + j] = ng;
    // Matches the unfused composition (n - z*n) + z*h_prev exactly.
    out[j] = (ng - zg * ng) + zg * h_prev[j];
  }
}

}  // namespace tpr::kern
