#include "kern/arena.h"

#include <cstdlib>
#include <vector>

#include "obs/metrics.h"
#include "util/logging.h"

namespace tpr::kern {

namespace {

constexpr size_t kAlignment = 64;  // one cache line; covers AVX loads
constexpr int kMinBucketLog2 = 6;  // 64 B — smallest recyclable block
constexpr int kMaxBucketLog2 = 26; // 64 MiB — larger requests bypass caching
constexpr int kNumBuckets = kMaxBucketLog2 + 1;

int BucketLog2(size_t bytes) {
  int b = kMinBucketLog2;
  while ((size_t{1} << b) < bytes) ++b;
  return b;
}

void* SystemAlloc(size_t bytes) {
  void* p = ::operator new(bytes, std::align_val_t(kAlignment));
  static obs::Counter& alloc_bytes = obs::GetCounter("nn.alloc_bytes");
  static obs::Counter& misses = obs::GetCounter("nn.arena_misses");
  alloc_bytes.Add(bytes);
  misses.Add();
  return p;
}

void SystemFree(void* p) noexcept {
  ::operator delete(p, std::align_val_t(kAlignment));
}

struct Arena {
  std::vector<void*> free_lists[kNumBuckets];
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t alloc_bytes = 0;
  uint64_t cached_bytes = 0;

  ~Arena() { ReleaseAll(); }

  void ReleaseAll() {
    for (auto& list : free_lists) {
      for (void* p : list) SystemFree(p);
      list.clear();
      list.shrink_to_fit();
    }
    cached_bytes = 0;
  }
};

// Frees can arrive after the thread's arena has been destroyed (objects
// torn down by process-exit statics); the flag outlives the arena because
// it is trivially destructible, and routes late traffic to the system
// allocator. Function-local so the first use constructs in order.
thread_local bool t_arena_dead = false;

Arena* ThreadArena() {
  if (t_arena_dead) return nullptr;
  thread_local struct ArenaHolder {
    Arena arena;
    ~ArenaHolder() { t_arena_dead = true; }
  } holder;
  return &holder.arena;
}

}  // namespace

size_t ArenaBucketBytes(size_t bytes) {
  if (bytes == 0) return 0;
  if (bytes > (size_t{1} << kMaxBucketLog2)) return bytes;
  return size_t{1} << BucketLog2(bytes);
}

void* ArenaAlloc(size_t bytes) {
  if (bytes == 0) return nullptr;
  Arena* a = ThreadArena();
  if (a == nullptr || bytes > (size_t{1} << kMaxBucketLog2)) {
    return SystemAlloc(bytes);
  }
  const int b = BucketLog2(bytes);
  auto& list = a->free_lists[b];
  if (!list.empty()) {
    void* p = list.back();
    list.pop_back();
    a->cached_bytes -= size_t{1} << b;
    ++a->hits;
    static obs::Counter& hits = obs::GetCounter("nn.arena_hits");
    hits.Add();
    return p;
  }
  ++a->misses;
  a->alloc_bytes += size_t{1} << b;
  return SystemAlloc(size_t{1} << b);
}

void ArenaFree(void* p, size_t bytes) noexcept {
  if (p == nullptr) return;
  Arena* a = ThreadArena();
  if (a == nullptr || bytes > (size_t{1} << kMaxBucketLog2)) {
    SystemFree(p);
    return;
  }
  const int b = BucketLog2(bytes);
  a->free_lists[b].push_back(p);
  a->cached_bytes += size_t{1} << b;
}

ArenaStats ThreadArenaStats() {
  ArenaStats s;
  Arena* a = ThreadArena();
  if (a == nullptr) return s;
  s.hits = a->hits;
  s.misses = a->misses;
  s.alloc_bytes = a->alloc_bytes;
  s.cached_bytes = a->cached_bytes;
  for (const auto& list : a->free_lists) s.cached_blocks += list.size();
  return s;
}

uint64_t TrimThreadArena() {
  Arena* a = ThreadArena();
  if (a == nullptr) return 0;
  const uint64_t released = a->cached_bytes;
  a->ReleaseAll();
  return released;
}

}  // namespace tpr::kern
